(* Tests for the GriPPS application substrate: PRNG, synthetic databanks,
   PROSITE motif language, the scanner (two independent implementations
   cross-checked), the calibrated cost model, the Figure 1 divisibility
   experiments and the workload generators. *)

module R = Numeric.Rat
module P = Gripps.Prng
module Db = Gripps.Databank
module M = Gripps.Motif
module Sc = Gripps.Scanner
module Cm = Gripps.Cost_model
module Dv = Gripps.Divisibility
module W = Gripps.Workload

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = P.create 7 and b = P.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (P.next a) (P.next b)
  done;
  let c = P.create 8 in
  Alcotest.(check bool) "different seed differs" true (P.next a <> P.next c)

let test_prng_ranges () =
  let rng = P.create 1 in
  for _ = 1 to 1000 do
    let x = P.int rng 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = P.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let e = P.exponential rng ~mean:2.0 in
    Alcotest.(check bool) "exponential nonnegative" true (e >= 0.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (P.int rng 0))

let test_prng_exponential_mean () =
  let rng = P.create 3 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. P.exponential rng ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "empirical mean near 5" true (mean > 4.7 && mean < 5.3)

let test_prng_shuffle_permutes () =
  let rng = P.create 4 in
  let arr = Array.init 50 (fun i -> i) in
  P.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Databank                                                            *)
(* ------------------------------------------------------------------ *)

let test_databank_generation () =
  let rng = P.create 10 in
  let bank = Db.generate rng ~name:"test" ~num_sequences:200 ~mean_length:100 in
  Alcotest.(check int) "count" 200 (Db.num_sequences bank);
  Array.iter
    (fun seq ->
      Alcotest.(check bool) "min length" true (String.length seq >= 8);
      String.iter
        (fun c ->
          Alcotest.(check bool) "alphabet only" true (String.contains Db.alphabet c))
        seq)
    bank.Db.sequences;
  let mean =
    float_of_int (Db.total_residues bank) /. 200.0
  in
  Alcotest.(check bool) "mean length plausible" true (mean > 50.0 && mean < 200.0)

let test_databank_sub () =
  let rng = P.create 11 in
  let bank = Db.generate rng ~name:"test" ~num_sequences:100 ~mean_length:50 in
  let block = Db.sub bank rng ~size:30 in
  Alcotest.(check int) "block size" 30 (Db.num_sequences block);
  (* Every sequence of the block comes from the bank. *)
  Array.iter
    (fun seq ->
      Alcotest.(check bool) "from bank" true (Array.exists (String.equal seq) bank.Db.sequences))
    block.Db.sequences;
  Alcotest.(check bool) "oversize rejected" true
    (try ignore (Db.sub bank rng ~size:101); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Motif language                                                      *)
(* ------------------------------------------------------------------ *)

let test_motif_parse_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (M.to_string (M.of_string s)))
    [ "C"; "C-A"; "x"; "x(2)"; "x(2,4)"; "[ACD]"; "{P}"; "C-x(2,4)-[ST]-{P}-G";
      "A(3)-x-[KR](1,2)" ]

let test_motif_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try ignore (M.of_string s); false with Invalid_argument _ -> true))
    [ ""; "B"; "[|]"; "[]"; "C-"; "C--A"; "x("; "x(3,1)"; "x(-1)"; "C?" ]

let test_motif_lengths () =
  let m = M.of_string "C-x(2,4)-[ST]" in
  Alcotest.(check int) "min" 4 (M.min_length m);
  Alcotest.(check int) "max" 6 (M.max_length m)

let test_prosite_library () =
  let lib = M.prosite_examples in
  Alcotest.(check int) "seven patterns" 7 (List.length lib);
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.M.name ^ " roundtrips") true
        (M.to_string (M.of_string (M.to_string m)) = M.to_string m);
      Alcotest.(check bool) (m.M.name ^ " has positive span") true (M.min_length m > 0))
    lib;
  (* The N-glycosylation sequon N-{P}-[ST]-{P} on crafted subjects. *)
  let glyco = List.hd lib in
  Alcotest.(check bool) "NASA matches" true (Sc.matches_at glyco "NASA" 0);
  Alcotest.(check bool) "NATG matches" true (Sc.matches_at glyco "NATG" 0);
  Alcotest.(check bool) "NPSA rejected (proline at 2)" false (Sc.matches_at glyco "NPSA" 0);
  Alcotest.(check bool) "NASP rejected (proline at 4)" false (Sc.matches_at glyco "NASP" 0);
  Alcotest.(check bool) "NAGA rejected (no S/T)" false (Sc.matches_at glyco "NAGA" 0);
  (* The C2H2 zinc finger on a canonical finger sequence. *)
  let zinc =
    List.find (fun m -> String.length m.M.name > 7 && String.sub m.M.name 0 7 = "PS00028") lib
  in
  (* C, 2-gap, C, 3-gap, L, 8-gap, H, 3-gap, H. *)
  Alcotest.(check bool) "canonical C2H2 finger" true
    (Sc.matches_at zinc "CAACAAALAAAAAAAAHAAAH" 0);
  Alcotest.(check bool) "broken finger (missing His)" false
    (Sc.matches_at zinc "CAACAAALAAAAAAAAAAAAA" 0)

let prop_motif_random_roundtrip =
  QCheck.Test.make ~name:"random motifs roundtrip through syntax" ~count:200
    (QCheck.make (QCheck.Gen.map (fun seed ->
         M.random (P.create seed) ~name:"r") QCheck.Gen.int))
    (fun m ->
      let s = M.to_string m in
      M.to_string (M.of_string s) = s)

(* ------------------------------------------------------------------ *)
(* Scanner                                                             *)
(* ------------------------------------------------------------------ *)

let test_scanner_hand_cases () =
  let check pattern seq pos expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s @ %d in %s" pattern pos seq)
      expected
      (Sc.matches_at (M.of_string pattern) seq pos)
  in
  check "C" "ACA" 1 true;
  check "C" "ACA" 0 false;
  check "A-C" "ACA" 0 true;
  check "A-x-A" "ACA" 0 true;
  check "A-x(2)-A" "ACA" 0 false;
  check "A-x(0,2)-C" "ACA" 0 true; (* zero-width gap *)
  check "[AC]-[AC]" "CA" 0 true;
  check "{A}-A" "CA" 0 true;
  check "{C}-A" "CA" 0 false;
  check "A-x(1,3)-G" "ACCG" 0 true;
  check "A-x(1,3)-G" "ACCCCG" 0 false;
  (* Backtracking matters: the gap must not swallow the G. *)
  check "A-x(1,3)-G-A" "ACGGA" 0 true;
  (* Match at end of sequence. *)
  check "G-A" "CCGA" 2 true;
  check "G-A" "CCGA" 3 false

let test_scanner_count () =
  Alcotest.(check int) "three As" 3 (Sc.count_matches (M.of_string "A") "ACADA");
  Alcotest.(check int) "overlapping" 2 (Sc.count_matches (M.of_string "A-x-A") "ACADA");
  Alcotest.(check int) "none" 0 (Sc.count_matches (M.of_string "W-W") "ACADA")

let random_sequence_gen =
  QCheck.Gen.map
    (fun seed ->
      let rng = P.create seed in
      let len = 5 + P.int rng 40 in
      String.init len (fun _ -> Db.alphabet.[P.int rng 20]))
    QCheck.Gen.int

let prop_scanner_matches_reference =
  QCheck.Test.make ~name:"backtracking matcher agrees with NFA reference" ~count:500
    (QCheck.make
       (QCheck.Gen.pair
          (QCheck.Gen.map (fun seed -> M.random (P.create seed) ~name:"r") QCheck.Gen.int)
          random_sequence_gen))
    (fun (motif, seq) ->
      let ok = ref true in
      for pos = 0 to String.length seq - 1 do
        if Sc.matches_at motif seq pos <> Sc.matches_at_reference motif seq pos then
          ok := false
      done;
      !ok)

let test_scan_stats () =
  let rng = P.create 20 in
  let bank = Db.generate rng ~name:"b" ~num_sequences:10 ~mean_length:30 in
  let motifs = [ M.of_string "A"; M.of_string "C-x-D" ] in
  let stats = Sc.scan motifs bank in
  Alcotest.(check int) "invocations" 20 stats.Sc.invocations;
  Alcotest.(check int) "positions = total residues × motifs" (2 * Db.total_residues bank)
    stats.Sc.positions_tried;
  Alcotest.(check bool) "single-residue motif matches a lot" true (stats.Sc.matches > 0)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_model_calibration () =
  let m = Cm.default in
  let full =
    Cm.block_time m ~num_sequences:Cm.reference_sequences ~num_motifs:Cm.reference_motifs
  in
  Alcotest.(check (float 1e-6)) "full run is 110 s" 110.0 full;
  (* Figure 1a intercept: sequence block of size 0. *)
  Alcotest.(check (float 1e-6)) "sequence overhead 1.1 s" 1.1
    (Cm.block_time m ~num_sequences:0 ~num_motifs:Cm.reference_motifs);
  (* Figure 1b intercept: zero motifs against the full databank. *)
  Alcotest.(check (float 1e-6)) "motif overhead 10.5 s" 10.5
    (Cm.block_time m ~num_sequences:Cm.reference_sequences ~num_motifs:0)

let test_cost_model_linearity () =
  let m = Cm.default in
  (* Linear in sequences at fixed motifs: equal increments. *)
  let t s = Cm.block_time m ~num_sequences:s ~num_motifs:300 in
  Alcotest.(check (float 1e-9)) "linear in s" (t 2000 -. t 1000) (t 3000 -. t 2000);
  let u mo = Cm.block_time m ~num_sequences:38_000 ~num_motifs:mo in
  Alcotest.(check (float 1e-9)) "linear in m" (u 20 -. u 10) (u 30 -. u 20)

let test_cost_model_noise_bounded () =
  let m = Cm.default in
  let rng = P.create 30 in
  for _ = 1 to 200 do
    let noisy =
      Cm.block_time_noisy m rng ~relative_noise:0.05 ~num_sequences:1000 ~num_motifs:100
    in
    let clean = Cm.block_time m ~num_sequences:1000 ~num_motifs:100 in
    Alcotest.(check bool) "within 5%" true (Float.abs (noisy -. clean) <= 0.05 *. clean +. 1e-9)
  done

(* ------------------------------------------------------------------ *)
(* Divisibility experiments (Figure 1)                                 *)
(* ------------------------------------------------------------------ *)

let test_regression_exact () =
  let points = List.map (fun (s, t) -> { Dv.size = s; time = t })
      [ (0, 1.0); (10, 21.0); (20, 41.0); (30, 61.0) ]
  in
  let r = Dv.linear_regression points in
  Alcotest.(check (float 1e-9)) "slope" 2.0 r.Dv.slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 r.Dv.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 r.Dv.r2

let test_regression_rejects_degenerate () =
  Alcotest.(check bool) "one point" true
    (try ignore (Dv.linear_regression [ { Dv.size = 1; time = 1.0 } ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "same size twice" true
    (try
       ignore
         (Dv.linear_regression [ { Dv.size = 1; time = 1.0 }; { Dv.size = 1; time = 2.0 } ]);
       false
     with Invalid_argument _ -> true)

let test_figure_1a_shape () =
  let points = Dv.sequence_experiment () in
  Alcotest.(check int) "20 sizes × 10 iterations" 200 (List.length points);
  let r = Dv.linear_regression points in
  (* The paper's regression: overhead ≈ 1.1 s, near-perfect linearity. *)
  Alcotest.(check bool) "intercept near 1.1" true
    (Float.abs (r.Dv.intercept -. 1.1) < 1.5);
  Alcotest.(check bool) "strong linearity" true (r.Dv.r2 > 0.98);
  let full = List.fold_left (fun acc p -> max acc p.Dv.time) 0.0 points in
  Alcotest.(check bool) "full block near 110 s" true (full > 95.0 && full < 125.0)

let test_figure_1b_shape () =
  let points = Dv.motif_experiment () in
  let r = Dv.linear_regression points in
  (* The paper's regression: overhead ≈ 10.5 s. *)
  Alcotest.(check bool) "intercept near 10.5" true
    (Float.abs (r.Dv.intercept -. 10.5) < 3.0);
  Alcotest.(check bool) "strong linearity" true (r.Dv.r2 > 0.98)

let test_overhead_contrast () =
  (* The paper's central observation: motif partitioning pays an order of
     magnitude more overhead than sequence partitioning. *)
  let ra = Dv.linear_regression (Dv.sequence_experiment ()) in
  let rb = Dv.linear_regression (Dv.motif_experiment ()) in
  Alcotest.(check bool) "overhead ratio > 5" true
    (rb.Dv.intercept > 5.0 *. ra.Dv.intercept)

let test_measured_experiment_is_linear () =
  (* Real scans on a small databank: wall-clock time must still regress
     linearly with block size. *)
  let points = Dv.measured_sequence_experiment ~num_sequences:400 ~num_motifs:6 () in
  let r = Dv.linear_regression points in
  Alcotest.(check bool) "positive slope" true (r.Dv.slope > 0.0);
  Alcotest.(check bool) "decent linearity" true (r.Dv.r2 > 0.8)

(* ------------------------------------------------------------------ *)
(* Network / communication accounting (Section 2, third experiment)    *)
(* ------------------------------------------------------------------ *)

let test_transfer_time () =
  let net = { Gripps.Network.latency = 0.001; bandwidth = 1000.0 } in
  Alcotest.(check (float 1e-9)) "latency + size/bw" 0.501
    (Gripps.Network.transfer_time net ~bytes:500);
  Alcotest.(check (float 1e-9)) "empty message costs latency" 0.001
    (Gripps.Network.transfer_time net ~bytes:0)

let test_motif_set_bytes () =
  let m1 = [ M.of_string "C-x(2,4)-[ST]" ] in
  let m2 = m1 @ [ M.of_string "A-A-A" ] in
  let b1 = Gripps.Network.motif_set_bytes m1 in
  let b2 = Gripps.Network.motif_set_bytes m2 in
  Alcotest.(check bool) "positive" true (b1 > 0);
  Alcotest.(check bool) "monotone" true (b2 > b1)

let test_communication_negligible () =
  (* The paper's conclusion: transfers are negligible next to computation. *)
  List.iter
    (fun net ->
      let a = Gripps.Network.full_request_accounting ~network:net () in
      Alcotest.(check bool) "request is kilobytes" true
        (a.Gripps.Network.request_bytes > 1000 && a.Gripps.Network.request_bytes < 1_000_000);
      Alcotest.(check (float 1e-6)) "compute is the full run" 110.0
        a.Gripps.Network.compute_time;
      Alcotest.(check bool) "overhead below 1%" true
        (a.Gripps.Network.overhead_fraction < 0.01))
    [ Gripps.Network.fast_ethernet; Gripps.Network.gigabit ]

let test_selective_motifs_rarely_match () =
  let rng = P.create 50 in
  let bank = Db.generate rng ~name:"b" ~num_sequences:50 ~mean_length:150 in
  let motifs = List.init 20 (fun k -> M.random_selective rng ~name:(string_of_int k)) in
  let stats = Sc.scan motifs bank in
  (* 20 selective motifs over 50 sequences: a handful of matches at most. *)
  Alcotest.(check bool) "sparse matches" true
    (stats.Sc.matches < stats.Sc.invocations)

(* ------------------------------------------------------------------ *)
(* Workload generators                                                 *)
(* ------------------------------------------------------------------ *)

let test_platform_invariants () =
  let rng = P.create 40 in
  let p = W.random_platform rng ~machines:5 ~banks:4 ~replication:2 in
  Alcotest.(check int) "machines" 5 (Array.length p.W.speeds);
  Alcotest.(check int) "banks" 4 (Array.length p.W.bank_sizes);
  for b = 0 to 3 do
    let copies = ref 0 in
    for i = 0 to 4 do
      if p.W.has_bank.(i).(b) then incr copies
    done;
    Alcotest.(check int) (Printf.sprintf "bank %d replicated" b) 2 !copies
  done;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "speed in [1,4.25]" true
        (R.compare s R.one >= 0 && R.compare s (R.of_ints 17 4) <= 0))
    p.W.speeds

let test_requests_ordered_and_quantized () =
  let rng = P.create 41 in
  let reqs = W.poisson_requests rng ~rate:0.1 ~count:50 ~max_motifs:30 ~banks:3 in
  Alcotest.(check int) "count" 50 (List.length reqs);
  let rec ordered = function
    | (a : W.request) :: (b :: _ as rest) ->
      R.compare a.W.arrival b.W.arrival <= 0 && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals non-decreasing" true (ordered reqs);
  List.iter
    (fun (r : W.request) ->
      let cs = R.mul_int r.W.arrival 100 in
      Alcotest.(check bool) "centisecond quantization" true (R.is_integer cs);
      Alcotest.(check bool) "motifs in range" true (r.W.num_motifs >= 1 && r.W.num_motifs <= 30);
      Alcotest.(check bool) "bank in range" true (r.W.bank >= 0 && r.W.bank < 3))
    reqs

let test_to_instance () =
  let rng = P.create 42 in
  let p = W.random_platform rng ~machines:3 ~banks:2 ~replication:1 in
  let reqs = W.poisson_requests rng ~rate:0.05 ~count:6 ~max_motifs:20 ~banks:2 in
  let inst = W.to_instance p reqs in
  Alcotest.(check int) "jobs" 6 (Sched_core.Instance.num_jobs inst);
  Alcotest.(check int) "machines" 3 (Sched_core.Instance.num_machines inst);
  List.iteri
    (fun j (r : W.request) ->
      Alcotest.(check bool) "release = arrival" true
        (R.equal (Sched_core.Instance.release inst j) r.W.arrival);
      for i = 0 to 2 do
        let available = p.W.has_bank.(i).(r.W.bank) in
        let has_cost = Sched_core.Instance.cost inst ~machine:i ~job:j <> None in
        Alcotest.(check bool) "cost iff bank present" available has_cost
      done)
    reqs

let test_request_cost_scaling () =
  (* Slower machines pay proportionally more. *)
  let p =
    {
      W.speeds = [| R.one; R.of_int 2 |];
      bank_sizes = [| 1000 |];
      has_bank = [| [| true |]; [| true |] |];
    }
  in
  let req = { W.arrival = R.zero; bank = 0; num_motifs = 10 } in
  match (W.request_cost p ~machine:0 req, W.request_cost p ~machine:1 req) with
  | Some c0, Some c1 -> Alcotest.(check bool) "double speed factor" true (R.equal c1 (R.mul_int c0 2))
  | _ -> Alcotest.fail "both machines hold the bank"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gripps"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes
        ] );
      ( "databank",
        [ Alcotest.test_case "generation" `Quick test_databank_generation;
          Alcotest.test_case "random sub-bank" `Quick test_databank_sub
        ] );
      ( "motif",
        [ Alcotest.test_case "parse roundtrip" `Quick test_motif_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_motif_parse_errors;
          Alcotest.test_case "match lengths" `Quick test_motif_lengths;
          Alcotest.test_case "prosite library" `Quick test_prosite_library;
          QCheck_alcotest.to_alcotest prop_motif_random_roundtrip
        ] );
      ( "scanner",
        [ Alcotest.test_case "hand cases" `Quick test_scanner_hand_cases;
          Alcotest.test_case "count matches" `Quick test_scanner_count;
          Alcotest.test_case "scan stats" `Quick test_scan_stats;
          QCheck_alcotest.to_alcotest prop_scanner_matches_reference
        ] );
      ( "cost-model",
        [ Alcotest.test_case "calibration" `Quick test_cost_model_calibration;
          Alcotest.test_case "bilinearity" `Quick test_cost_model_linearity;
          Alcotest.test_case "noise bounded" `Quick test_cost_model_noise_bounded
        ] );
      ( "divisibility",
        [ Alcotest.test_case "regression exact" `Quick test_regression_exact;
          Alcotest.test_case "regression degenerate" `Quick test_regression_rejects_degenerate;
          Alcotest.test_case "figure 1a shape" `Quick test_figure_1a_shape;
          Alcotest.test_case "figure 1b shape" `Quick test_figure_1b_shape;
          Alcotest.test_case "overhead contrast" `Quick test_overhead_contrast;
          Alcotest.test_case "measured linearity" `Slow test_measured_experiment_is_linear
        ] );
      ( "network",
        [ Alcotest.test_case "transfer time" `Quick test_transfer_time;
          Alcotest.test_case "motif set bytes" `Quick test_motif_set_bytes;
          Alcotest.test_case "communication negligible" `Quick test_communication_negligible;
          Alcotest.test_case "selective motifs sparse" `Quick test_selective_motifs_rarely_match
        ] );
      ( "workload",
        [ Alcotest.test_case "platform invariants" `Quick test_platform_invariants;
          Alcotest.test_case "requests ordered" `Quick test_requests_ordered_and_quantized;
          Alcotest.test_case "to_instance" `Quick test_to_instance;
          Alcotest.test_case "cost scaling" `Quick test_request_cost_scaling
        ] )
    ]
