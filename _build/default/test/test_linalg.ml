(* Tests for the dense linear algebra layer: vectors, matrices, Gaussian
   elimination — on both the exact rational and the float field. *)

module R = Numeric.Rat
module LQ = Linalg.Dense.Rational
module LF = Linalg.Dense.Approx
module F = Linalg.Field

let rat = Alcotest.testable R.pp R.equal
let ri = R.of_int
let rm rows = Array.map (Array.map ri) rows
let rv = Array.map ri

(* ------------------------------------------------------------------ *)
(* Field instances                                                     *)
(* ------------------------------------------------------------------ *)

let test_field_rational () =
  Alcotest.(check rat) "add" (R.of_ints 5 6) (F.Rational.add (R.of_ints 1 2) (R.of_ints 1 3));
  Alcotest.(check int) "sign" (-1) (F.Rational.sign (R.of_ints (-1) 7));
  Alcotest.(check bool) "is_zero exact" true (F.Rational.is_zero R.zero);
  Alcotest.(check bool) "tiny is not zero" false (F.Rational.is_zero (R.of_ints 1 1000000000))

let test_field_approx_tolerance () =
  Alcotest.(check bool) "1e-12 is zero" true (F.Approx.is_zero 1e-12);
  Alcotest.(check bool) "1e-6 is not zero" false (F.Approx.is_zero 1e-6);
  Alcotest.(check int) "compare within eps" 0 (F.Approx.compare 1.0 (1.0 +. 1e-12));
  Alcotest.(check int) "sign of small negative" 0 (F.Approx.sign (-1e-12))

(* ------------------------------------------------------------------ *)
(* Vectors                                                             *)
(* ------------------------------------------------------------------ *)

let test_vec_ops () =
  let a = rv [| 1; 2; 3 |] and b = rv [| 4; 5; 6 |] in
  Alcotest.(check rat) "dot" (ri 32) (LQ.Vec.dot a b);
  Alcotest.(check bool) "add" true (LQ.Vec.equal (rv [| 5; 7; 9 |]) (LQ.Vec.add a b));
  Alcotest.(check bool) "sub" true (LQ.Vec.equal (rv [| -3; -3; -3 |]) (LQ.Vec.sub a b));
  Alcotest.(check bool) "scale" true (LQ.Vec.equal (rv [| 2; 4; 6 |]) (LQ.Vec.scale (ri 2) a));
  Alcotest.(check bool) "zero" true (LQ.Vec.is_zero (LQ.Vec.sub a a))

(* ------------------------------------------------------------------ *)
(* Matrices                                                            *)
(* ------------------------------------------------------------------ *)

let test_mat_mul () =
  let a = rm [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = rm [| [| 5; 6 |]; [| 7; 8 |] |] in
  Alcotest.(check bool) "product" true
    (LQ.Mat.equal (rm [| [| 19; 22 |]; [| 43; 50 |] |]) (LQ.Mat.mul a b));
  Alcotest.(check bool) "identity neutral" true
    (LQ.Mat.equal a (LQ.Mat.mul a (LQ.Mat.identity 2)));
  Alcotest.(check bool) "transpose twice" true
    (LQ.Mat.equal a (LQ.Mat.transpose (LQ.Mat.transpose a)))

let test_mat_det_rank () =
  Alcotest.(check rat) "det 2x2" (ri (-2)) (LQ.Mat.det (rm [| [| 1; 2 |]; [| 3; 4 |] |]));
  Alcotest.(check rat) "det singular" R.zero (LQ.Mat.det (rm [| [| 1; 2 |]; [| 2; 4 |] |]));
  Alcotest.(check rat) "det identity" R.one (LQ.Mat.det (LQ.Mat.identity 4));
  Alcotest.(check int) "rank full" 2 (LQ.Mat.rank (rm [| [| 1; 2 |]; [| 3; 4 |] |]));
  Alcotest.(check int) "rank deficient" 1 (LQ.Mat.rank (rm [| [| 1; 2 |]; [| 2; 4 |] |]));
  Alcotest.(check int) "rank wide" 2 (LQ.Mat.rank (rm [| [| 1; 0; 1 |]; [| 0; 1; 1 |] |]))

let test_solve_unique () =
  (* x + 2y = 5; 3x + 4y = 11  →  x = 1, y = 2 *)
  let a = rm [| [| 1; 2 |]; [| 3; 4 |] |] in
  match LQ.Mat.solve a (rv [| 5; 11 |]) with
  | Some x ->
    Alcotest.(check rat) "x" (ri 1) x.(0);
    Alcotest.(check rat) "y" (ri 2) x.(1)
  | None -> Alcotest.fail "solvable system"

let test_solve_inconsistent () =
  let a = rm [| [| 1; 2 |]; [| 2; 4 |] |] in
  (match LQ.Mat.solve a (rv [| 1; 3 |]) with
   | None -> ()
   | Some _ -> Alcotest.fail "inconsistent system must fail");
  (* Consistent but underdetermined: returns one valid solution. *)
  match LQ.Mat.solve a (rv [| 1; 2 |]) with
  | Some x ->
    Alcotest.(check rat) "satisfies row" (ri 1) (R.add x.(0) (R.mul_int x.(1) 2))
  | None -> Alcotest.fail "consistent system"

let test_float_instance () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  match LF.Mat.solve a [| 3.0; 5.0 |] with
  | Some x ->
    Alcotest.(check (float 1e-9)) "x" 0.8 x.(0);
    Alcotest.(check (float 1e-9)) "y" 1.4 x.(1)
  | None -> Alcotest.fail "solvable float system"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let mat_gen =
  let open QCheck.Gen in
  let* n = int_range 1 5 in
  let* m = array_size (return n) (array_size (return n) (int_range (-9) 9)) in
  return (Array.map (Array.map R.of_int) m)

let vec_gen n =
  QCheck.Gen.(array_size (return n) (int_range (-9) 9))

let prop_solve_satisfies =
  QCheck.Test.make ~name:"solve result satisfies the system" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* a = mat_gen in
         let* b = vec_gen (Array.length a) in
         return (a, Array.map R.of_int b)))
    (fun (a, b) ->
      match LQ.Mat.solve a b with
      | None -> true (* inconsistent; checked by construction below *)
      | Some x ->
        let ax = LQ.Mat.mul_vec a x in
        Array.for_all2 R.equal ax b)

let prop_solve_finds_constructed_solution =
  QCheck.Test.make ~name:"ax = b with b := a·x0 is always solvable" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* a = mat_gen in
         let* x0 = vec_gen (Array.length a) in
         return (a, Array.map R.of_int x0)))
    (fun (a, x0) ->
      let b = LQ.Mat.mul_vec a x0 in
      match LQ.Mat.solve a b with
      | None -> false
      | Some x -> Array.for_all2 R.equal (LQ.Mat.mul_vec a x) b)

let prop_det_multiplicative =
  QCheck.Test.make ~name:"det (a·b) = det a · det b" ~count:100
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 1 4 in
         let* a = array_size (return n) (array_size (return n) (int_range (-5) 5)) in
         let* b = array_size (return n) (array_size (return n) (int_range (-5) 5)) in
         return (Array.map (Array.map R.of_int) a, Array.map (Array.map R.of_int) b)))
    (fun (a, b) ->
      R.equal (LQ.Mat.det (LQ.Mat.mul a b)) (R.mul (LQ.Mat.det a) (LQ.Mat.det b)))

let prop_rank_bounds =
  QCheck.Test.make ~name:"0 ≤ rank ≤ n; rank n ⇔ det ≠ 0" ~count:200
    (QCheck.make mat_gen) (fun a ->
      let n = LQ.Mat.rows a in
      let r = LQ.Mat.rank a in
      r >= 0 && r <= n && (r = n) = not (R.is_zero (LQ.Mat.det a)))

let () =
  Alcotest.run "linalg"
    [ ( "field",
        [ Alcotest.test_case "rational" `Quick test_field_rational;
          Alcotest.test_case "approx tolerance" `Quick test_field_approx_tolerance
        ] );
      ("vec", [ Alcotest.test_case "operations" `Quick test_vec_ops ]);
      ( "mat",
        [ Alcotest.test_case "multiplication" `Quick test_mat_mul;
          Alcotest.test_case "det and rank" `Quick test_mat_det_rank;
          Alcotest.test_case "solve unique" `Quick test_solve_unique;
          Alcotest.test_case "solve inconsistent/under" `Quick test_solve_inconsistent;
          Alcotest.test_case "float instance" `Quick test_float_instance
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_solve_satisfies; prop_solve_finds_constructed_solution;
            prop_det_multiplicative; prop_rank_bounds
          ] )
    ]
