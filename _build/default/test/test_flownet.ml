(* Tests for the exact max-flow substrate and the uniform-machines
   deadline-feasibility reduction (Section 3's special case).

   The headline property is differential: on uniform instances, the
   flow-based feasibility oracle must agree exactly with the LP-based one
   of Lemma 1, for deadlines probing both sides of the boundary. *)

module R = Numeric.Rat
module D = Flownet.Dinic
module U = Sched_core.Uniform
module Dl = Sched_core.Deadline
module S = Sched_core.Schedule

let rat = Alcotest.testable R.pp R.equal
let ri = R.of_int
let q = R.of_ints

(* ------------------------------------------------------------------ *)
(* Dinic                                                               *)
(* ------------------------------------------------------------------ *)

let test_single_edge () =
  let net = D.create 2 in
  D.add_edge net ~src:0 ~dst:1 ~capacity:(q 7 3);
  Alcotest.(check rat) "single edge" (q 7 3) (D.max_flow net ~source:0 ~sink:1)

let test_classic_diamond () =
  (* 0→1 (3), 0→2 (2), 1→2 (5), 1→3 (2), 2→3 (3): max flow 5. *)
  let net = D.create 4 in
  D.add_edge net ~src:0 ~dst:1 ~capacity:(ri 3);
  D.add_edge net ~src:0 ~dst:2 ~capacity:(ri 2);
  D.add_edge net ~src:1 ~dst:2 ~capacity:(ri 5);
  D.add_edge net ~src:1 ~dst:3 ~capacity:(ri 2);
  D.add_edge net ~src:2 ~dst:3 ~capacity:(ri 3);
  Alcotest.(check rat) "diamond" (ri 5) (D.max_flow net ~source:0 ~sink:3)

let test_needs_residual_push () =
  (* The textbook example where a naive greedy gets stuck and the residual
     edge is required: two crossing paths. *)
  let net = D.create 4 in
  D.add_edge net ~src:0 ~dst:1 ~capacity:(ri 1);
  D.add_edge net ~src:0 ~dst:2 ~capacity:(ri 1);
  D.add_edge net ~src:1 ~dst:2 ~capacity:(ri 1);
  D.add_edge net ~src:1 ~dst:3 ~capacity:(ri 1);
  D.add_edge net ~src:2 ~dst:3 ~capacity:(ri 1);
  Alcotest.(check rat) "cross" (ri 2) (D.max_flow net ~source:0 ~sink:3)

let test_disconnected () =
  let net = D.create 3 in
  D.add_edge net ~src:0 ~dst:1 ~capacity:(ri 4);
  Alcotest.(check rat) "no path" R.zero (D.max_flow net ~source:0 ~sink:2)

let test_parallel_edges () =
  let net = D.create 2 in
  D.add_edge net ~src:0 ~dst:1 ~capacity:(q 1 2);
  D.add_edge net ~src:0 ~dst:1 ~capacity:(q 1 3);
  Alcotest.(check rat) "parallel sum" (q 5 6) (D.max_flow net ~source:0 ~sink:1)

let test_idempotent () =
  let net = D.create 2 in
  D.add_edge net ~src:0 ~dst:1 ~capacity:(ri 4);
  Alcotest.(check rat) "first" (ri 4) (D.max_flow net ~source:0 ~sink:1);
  Alcotest.(check rat) "second call same value" (ri 4) (D.max_flow net ~source:0 ~sink:1)

let test_rejects () =
  let net = D.create 2 in
  Alcotest.(check bool) "negative capacity" true
    (try D.add_edge net ~src:0 ~dst:1 ~capacity:(ri (-1)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad vertex" true
    (try D.add_edge net ~src:0 ~dst:5 ~capacity:R.one; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "source = sink" true
    (try ignore (D.max_flow net ~source:0 ~sink:0); false
     with Invalid_argument _ -> true)

(* Random layered networks; check conservation, capacities, and agreement
   with a simple Ford–Fulkerson reference. *)
let random_net_gen =
  let open QCheck.Gen in
  let* n = int_range 2 7 in
  let* edge_specs =
    list_size (int_range 1 15)
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 9))
  in
  return (n, edge_specs)

(* Reference: BFS augmenting paths (Edmonds–Karp) on a capacity matrix. *)
let reference_max_flow n edges ~source ~sink =
  let cap = Array.make_matrix n n R.zero in
  List.iter
    (fun (s, d, c) -> if s <> d then cap.(s).(d) <- R.add cap.(s).(d) (ri c))
    edges;
  let total = ref R.zero in
  let rec loop () =
    (* BFS for an augmenting path. *)
    let prev = Array.make n (-1) in
    prev.(source) <- source;
    let queue = Queue.create () in
    Queue.push source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      for v = 0 to n - 1 do
        if prev.(v) < 0 && R.sign cap.(u).(v) > 0 then begin
          prev.(v) <- u;
          Queue.push v queue
        end
      done
    done;
    if prev.(sink) >= 0 then begin
      let rec bottleneck v acc =
        if v = source then acc
        else bottleneck prev.(v) (R.min acc cap.(prev.(v)).(v))
      in
      let b = bottleneck sink (ri max_int) in
      let rec apply v =
        if v <> source then begin
          cap.(prev.(v)).(v) <- R.sub cap.(prev.(v)).(v) b;
          cap.(v).(prev.(v)) <- R.add cap.(v).(prev.(v)) b;
          apply prev.(v)
        end
      in
      apply sink;
      total := R.add !total b;
      loop ()
    end
  in
  loop ();
  !total

let prop_dinic_matches_reference =
  QCheck.Test.make ~name:"dinic agrees with Edmonds-Karp reference" ~count:300
    (QCheck.make random_net_gen) (fun (n, edges) ->
      let source = 0 and sink = n - 1 in
      let net = D.create n in
      List.iter
        (fun (s, d, c) -> if s <> d then D.add_edge net ~src:s ~dst:d ~capacity:(ri c))
        edges;
      R.equal (D.max_flow net ~source ~sink) (reference_max_flow n edges ~source ~sink))

let prop_dinic_flow_is_valid =
  QCheck.Test.make ~name:"dinic edge flows conserve and respect capacity" ~count:300
    (QCheck.make random_net_gen) (fun (n, edges) ->
      let source = 0 and sink = n - 1 in
      let net = D.create n in
      let caps = Hashtbl.create 16 in
      List.iter
        (fun (s, d, c) ->
          if s <> d then begin
            D.add_edge net ~src:s ~dst:d ~capacity:(ri c);
            let cur = try Hashtbl.find caps (s, d) with Not_found -> R.zero in
            Hashtbl.replace caps (s, d) (R.add cur (ri c))
          end)
        edges;
      let value = D.max_flow net ~source ~sink in
      let balance = Array.make n R.zero in
      let by_pair = Hashtbl.create 16 in
      List.iter
        (fun (s, d, f) ->
          balance.(s) <- R.sub balance.(s) f;
          balance.(d) <- R.add balance.(d) f;
          let cur = try Hashtbl.find by_pair (s, d) with Not_found -> R.zero in
          Hashtbl.replace by_pair (s, d) (R.add cur f))
        (D.edge_flows net);
      let caps_ok =
        Hashtbl.fold
          (fun pair f ok ->
            ok && R.compare f (try Hashtbl.find caps pair with Not_found -> R.zero) <= 0)
          by_pair true
      in
      let conservation_ok =
        List.for_all
          (fun v -> v = source || v = sink || R.is_zero balance.(v))
          (List.init n (fun v -> v))
      in
      caps_ok && conservation_ok
      && R.equal balance.(sink) value
      && R.equal balance.(source) (R.neg value))

(* ------------------------------------------------------------------ *)
(* Uniform feasibility vs the LP of Lemma 1                            *)
(* ------------------------------------------------------------------ *)

let uniform_gen =
  let open QCheck.Gen in
  let* m = int_range 1 3 in
  let* n = int_range 1 4 in
  let* speeds = array_size (return m) (int_range 1 4) in
  let* sizes = array_size (return n) (int_range 1 6) in
  let* releases = array_size (return n) (int_range 0 8) in
  let* avail = array_size (return m) (array_size (return n) bool) in
  (* Ensure every job is available somewhere. *)
  let avail =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j a -> if i = 0 && Array.for_all (fun r -> not r.(j)) avail then true else a)
          row)
      avail
  in
  let* slack = array_size (return n) (int_range 0 40)
  in
  return
    ( U.make
        ~speeds:(Array.map R.of_int speeds)
        ~sizes:(Array.map R.of_int sizes)
        ~releases:(Array.map R.of_int releases)
        ~weights:(Array.make n R.one)
        ~available:avail,
      slack )

let prop_uniform_matches_lp =
  QCheck.Test.make ~name:"flow feasibility agrees with LP feasibility (Lemma 1)"
    ~count:150 (QCheck.make uniform_gen)
    (fun (u, slack) ->
      let n = Array.length u.U.sizes in
      (* Deadlines of varying tightness: release + slack/4 (often
         infeasible when slack is small, feasible when large). *)
      let deadlines =
        Array.init n (fun j -> R.add u.U.releases.(j) (q (1 + slack.(j)) 4))
      in
      let via_flow = U.is_feasible u ~deadlines in
      let via_lp = Dl.is_feasible (U.to_instance u) ~deadlines in
      via_flow = via_lp)

let prop_uniform_witness_valid =
  QCheck.Test.make ~name:"flow witness schedule valid and meets deadlines" ~count:150
    (QCheck.make uniform_gen) (fun (u, slack) ->
      let n = Array.length u.U.sizes in
      let deadlines =
        Array.init n (fun j -> R.add u.U.releases.(j) (q (1 + slack.(j)) 4))
      in
      match U.feasible u ~deadlines with
      | None -> true
      | Some sched ->
        Result.is_ok (S.validate_divisible sched)
        && List.for_all
             (fun j -> R.compare (S.completion_time sched j) deadlines.(j) <= 0)
             (List.init n (fun j -> j)))

let test_uniform_hand_case () =
  (* Two unit-speed machines, one job of size 4 available on both: the job
     can finish at time 2 by splitting, not earlier. *)
  let u =
    U.make ~speeds:[| R.one; R.one |] ~sizes:[| ri 4 |] ~releases:[| R.zero |]
      ~weights:[| R.one |]
      ~available:[| [| true |]; [| true |] |]
  in
  Alcotest.(check bool) "t=2 feasible" true (U.is_feasible u ~deadlines:[| ri 2 |]);
  Alcotest.(check bool) "t<2 infeasible" false (U.is_feasible u ~deadlines:[| q 19 10 |])

let test_uniform_restricted () =
  (* The databank restriction bites: the fast machine lacks the bank. *)
  let u =
    U.make ~speeds:[| R.one; ri 4 |] ~sizes:[| ri 2 |] ~releases:[| R.zero |]
      ~weights:[| R.one |]
      ~available:[| [| false |]; [| true |] |]
  in
  Alcotest.(check bool) "slow machine only: 8 needed" true
    (U.is_feasible u ~deadlines:[| ri 8 |]);
  Alcotest.(check bool) "7 is too tight" false (U.is_feasible u ~deadlines:[| ri 7 |])

let () =
  Alcotest.run "flownet"
    [ ( "dinic",
        [ Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "diamond" `Quick test_classic_diamond;
          Alcotest.test_case "residual push" `Quick test_needs_residual_push;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "rejects bad input" `Quick test_rejects;
          QCheck_alcotest.to_alcotest prop_dinic_matches_reference;
          QCheck_alcotest.to_alcotest prop_dinic_flow_is_valid
        ] );
      ( "uniform",
        [ Alcotest.test_case "split job" `Quick test_uniform_hand_case;
          Alcotest.test_case "restricted availability" `Quick test_uniform_restricted;
          QCheck_alcotest.to_alcotest prop_uniform_matches_lp;
          QCheck_alcotest.to_alcotest prop_uniform_witness_valid
        ] )
    ]
