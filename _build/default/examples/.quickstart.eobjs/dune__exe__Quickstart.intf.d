examples/quickstart.mli:
