examples/divisibility_study.ml: Array Format Gripps Hashtbl List String Sys
