examples/quickstart.ml: Format List Numeric Sched_core
