examples/gripps_day.ml: Array Format Gripps List Numeric Online Sched_core String Sys
