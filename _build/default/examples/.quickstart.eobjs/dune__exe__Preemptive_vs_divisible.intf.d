examples/preemptive_vs_divisible.mli:
