examples/divisibility_study.mli:
