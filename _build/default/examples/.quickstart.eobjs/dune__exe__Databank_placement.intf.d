examples/databank_placement.mli:
