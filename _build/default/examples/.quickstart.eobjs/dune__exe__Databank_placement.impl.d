examples/databank_placement.ml: Array Format Gripps List Numeric Online Sched_core Sys
