examples/gripps_day.mli:
