examples/preemptive_vs_divisible.ml: Format Numeric Sched_core
