(* Quickstart: build a small heterogeneous instance and run every solver
   of the library on it.

     dune exec examples/quickstart.exe

   Three jobs arrive over time on two machines; job 1's databank is absent
   from machine 0 (infinite cost), the situation that motivates the paper's
   unrelated-machines model. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule

let ri = R.of_int

let () =
  let inst =
    I.make
      ~releases:[| ri 0; ri 2; ri 3 |]
      ~weights:[| ri 1; ri 2; ri 1 |]
      [| (* machine 0 *) [| Some (ri 6); None; Some (ri 2) |];
         (* machine 1 *) [| Some (ri 12); Some (ri 4); Some (ri 4) |]
      |]
  in
  Format.printf "Instance:@.%a@." I.pp inst;

  (* Theorem 1: makespan minimization. *)
  let mk = Sched_core.Makespan.solve inst in
  Format.printf "== Makespan (Theorem 1) ==@.";
  Format.printf "optimal makespan: %a (lower bound %a)@." R.pp mk.Sched_core.Makespan.makespan
    R.pp
    (Sched_core.Makespan.lower_bound inst);
  Format.printf "%a@." S.pp mk.Sched_core.Makespan.schedule;

  (* Lemma 1: deadline feasibility. *)
  Format.printf "== Deadline scheduling (Lemma 1) ==@.";
  let deadlines = [| ri 8; ri 7; ri 6 |] in
  (match Sched_core.Deadline.feasible inst ~deadlines with
   | Some sched ->
     Format.printf "deadlines (8, 7, 6) are feasible:@.%a@." S.pp sched
   | None -> Format.printf "deadlines (8, 7, 6) are infeasible@.");
  (match Sched_core.Deadline.feasible inst ~deadlines:[| ri 8; ri 7; ri 4 |] with
   | Some _ -> Format.printf "deadlines (8, 7, 4) are feasible@."
   | None -> Format.printf "deadlines (8, 7, 4) are infeasible (job 2 window too small)@.");

  (* Theorem 2: maximum weighted flow, divisible. *)
  let mf = Sched_core.Max_flow.solve inst in
  Format.printf "== Max weighted flow (Theorem 2, divisible) ==@.";
  Format.printf "optimal F* = %a  (found among %d milestones, range (%a, %a])@."
    R.pp mf.Sched_core.Max_flow.objective
    (List.length mf.Sched_core.Max_flow.milestones)
    R.pp (fst mf.Sched_core.Max_flow.search_range)
    R.pp (snd mf.Sched_core.Max_flow.search_range);
  Format.printf "%a@." S.pp mf.Sched_core.Max_flow.schedule;

  (* Section 4.4: preemption without divisibility. *)
  let pre = Sched_core.Preemptive.solve inst in
  Format.printf "== Max weighted flow (Section 4.4, preemptive) ==@.";
  Format.printf "optimal F* = %a (%d open-shop slots; divisible gave %a)@."
    R.pp pre.Sched_core.Preemptive.objective pre.Sched_core.Preemptive.preemption_slots
    R.pp mf.Sched_core.Max_flow.objective;
  Format.printf "%a@." S.pp pre.Sched_core.Preemptive.schedule;

  (* Sanity: both schedules validate. *)
  (match S.validate_divisible mf.Sched_core.Max_flow.schedule with
   | Ok () -> Format.printf "divisible schedule: valid@."
   | Error e -> Format.printf "divisible schedule: INVALID (%s)@." e);
  (match S.validate_preemptive pre.Sched_core.Preemptive.schedule with
   | Ok () -> Format.printf "preemptive schedule: valid@."
   | Error e -> Format.printf "preemptive schedule: INVALID (%s)@." e)
