(* Divisible load vs preemption-only (Section 4.3 vs Section 4.4).

     dune exec examples/preemptive_vs_divisible.exe

   Divisibility lets one job run on several machines at once, so its
   optimal maximum weighted flow is at most the preemptive one; the gap is
   largest when a single big job could profit from all machines.  This
   example walks through instances where the gap is zero, small, and
   extreme, printing both optima and the reconstructed preemptive
   timetable. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule

let ri = R.of_int

let study name inst =
  let d = Sched_core.Max_flow.solve inst in
  let p = Sched_core.Preemptive.solve inst in
  let fd = d.Sched_core.Max_flow.objective and fp = p.Sched_core.Preemptive.objective in
  Format.printf "@.== %s ==@." name;
  Format.printf "divisible  F* = %-8s preemptive F* = %-8s gap = %.1f%%  (%d slots)@."
    (R.to_string fd) (R.to_string fp)
    (100.0 *. ((R.to_float fp /. R.to_float fd) -. 1.0))
    p.Sched_core.Preemptive.preemption_slots;
  (match S.validate_preemptive p.Sched_core.Preemptive.schedule with
   | Ok () -> ()
   | Error e -> failwith ("invalid preemptive schedule: " ^ e));
  Format.printf "preemptive timetable:@.%a" S.pp p.Sched_core.Preemptive.schedule

let () =
  (* One machine: the models coincide (nothing to parallelize). *)
  study "single machine — no gap"
    (I.make
       ~releases:[| ri 0; ri 1 |]
       ~weights:[| ri 1; ri 2 |]
       [| [| Some (ri 3); Some (ri 2) |] |]);

  (* One big job, four identical machines: divisibility quarters the flow,
     preemption gains nothing — the extreme gap. *)
  study "one job, four machines — maximal gap"
    (I.make ~releases:[| ri 0 |] ~weights:[| ri 1 |]
       [| [| Some (ri 8) |]; [| Some (ri 8) |]; [| Some (ri 8) |]; [| Some (ri 8) |] |]);

  (* A balanced mix: several jobs share two unrelated machines; the gap is
     strictly between the extremes and the open-shop reconstruction has to
     interleave jobs to avoid intra-job parallelism. *)
  study "mixed workload — intermediate gap"
    (I.make
       ~releases:[| ri 0; ri 0; ri 1 |]
       ~weights:[| ri 1; ri 1; ri 3 |]
       [| [| Some (ri 4); Some (ri 6); Some (ri 2) |];
          [| Some (ri 6); Some (ri 3); Some (ri 5) |]
       |])
