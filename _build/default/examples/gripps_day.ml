(* A day in the life of a GriPPS deployment: protein-motif comparison
   requests arrive as a Poisson stream on a heterogeneous platform with
   partially replicated databanks; we compare the online heuristics against
   the offline optimum of Theorem 2 on the max-stretch objective.

     dune exec examples/gripps_day.exe [seed]

   This is the scenario of the paper's conclusion: the online adaptation of
   the offline algorithm ("online-opt") against Minimum Completion Time and
   friends. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module W = Gripps.Workload

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2005 in
  let rng = Gripps.Prng.create seed in
  let platform = W.random_platform rng ~machines:4 ~banks:3 ~replication:2 in
  let requests =
    W.poisson_requests rng ~rate:(1.0 /. 45.0) ~count:12 ~max_motifs:60 ~banks:3
  in
  Format.printf "Platform: %d machines, %d databanks (sizes %s), replication 2@."
    (Array.length platform.W.speeds)
    (Array.length platform.W.bank_sizes)
    (String.concat ", " (Array.to_list (Array.map string_of_int platform.W.bank_sizes)));
  Format.printf "Requests:@.";
  List.iteri
    (fun k (r : W.request) ->
      Format.printf "  #%d at t=%ss: %d motifs vs bank %d@." k (R.to_string r.W.arrival)
        r.W.num_motifs r.W.bank)
    requests;

  (* Max-stretch objective: weight = 1 / best-case processing time. *)
  let inst = I.stretch_weights (W.to_instance platform requests) in
  let report = Online.Compare.run inst in
  Format.printf "@.%a@." Online.Compare.pp report;
  Format.printf
    "The online adaptation of the offline algorithm (Theorem 2, re-solved at@.\
     every event with preemption) is the paper's conclusion in action.@."
