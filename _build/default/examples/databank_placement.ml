(* Databank placement study: how much does replication buy?

     dune exec examples/databank_placement.exe [seed]

   The paper's platform model fixes databank locations ("located at fixed
   locations in a distributed heterogeneous computing platform") and the
   scheduler must live with them.  A deployment question immediately
   follows: how many replicas of each databank are worth holding?  We sweep
   the replication factor on otherwise identical platforms and request
   streams and report the offline-optimal max stretch (Theorem 2) plus the
   online-adaptation and MCT results — quantifying how availability
   restrictions, not scheduling, dominate at low replication. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module W = Gripps.Workload

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7 in
  let machines = 4 and banks = 3 in
  Format.printf
    "Replication study: %d machines, %d databanks, identical request stream.@.@."
    machines banks;
  Format.printf "%12s %16s %16s %12s@." "replication" "optimal stretch" "online-opt"
    "mct";
  List.iter
    (fun replication ->
      (* Same seed: the stream and machine speeds are identical across
         rows; only the placement differs. *)
      let rng = Gripps.Prng.create seed in
      let platform = W.random_platform rng ~machines ~banks ~replication in
      let requests =
        W.poisson_requests rng ~rate:(1.0 /. 40.0) ~count:10 ~max_motifs:50 ~banks
      in
      let inst = I.stretch_weights (W.to_instance platform requests) in
      let offline = Sched_core.Max_flow.solve inst in
      let run (module P : Online.Sim.POLICY) =
        let r = Online.Sim.run (module P) inst in
        S.max_stretch r.Online.Sim.schedule
      in
      let oo = run (module Online.Online_opt.Divisible) in
      let mct = run (module Online.Policies.Mct) in
      Format.printf "%12d %16.3f %16.3f %12.3f@." replication
        (R.to_float offline.Sched_core.Max_flow.objective)
        (R.to_float oo) (R.to_float mct))
    [ 1; 2; 3; 4 ];
  Format.printf
    "@.Each added replica widens every job's machine set, and the divisible@.\
     schedulers convert that directly into lower stretch; MCT, which never@.\
     splits or migrates a job, cannot profit from replication at all.@.\
     Placement only pays off with a scheduler able to exploit it.@."
