(* The divisibility study of Section 2: regenerate the data behind
   Figure 1a (sequence-databank partitioning) and Figure 1b (motif-set
   partitioning), run the linear regressions, and contrast the two fixed
   overheads — the paper reports 1.1 s vs 10.5 s.

     dune exec examples/divisibility_study.exe [--measured]

   With --measured, the study additionally runs the real scanner on a
   laptop-scale synthetic databank and regresses wall-clock time, showing
   that the linearity is a property of the computation, not of the model. *)

module Dv = Gripps.Divisibility

let print_series title points =
  Format.printf "@.%s@." title;
  Format.printf "%10s %12s@." "size" "time (s)";
  (* Average the iterations per size for a compact display. *)
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (p : Dv.point) ->
      let sum, count = try Hashtbl.find tbl p.Dv.size with Not_found -> (0.0, 0) in
      Hashtbl.replace tbl p.Dv.size (sum +. p.Dv.time, count + 1))
    points;
  Hashtbl.fold (fun size acc l -> (size, acc) :: l) tbl []
  |> List.sort compare
  |> List.iter (fun (size, (sum, count)) ->
         Format.printf "%10d %12.2f@." size (sum /. float_of_int count));
  let r = Dv.linear_regression points in
  Format.printf "regression: time = %.4g·size + %.2f   (r² = %.4f)@." r.Dv.slope
    r.Dv.intercept r.Dv.r2;
  r

let () =
  let measured = Array.exists (String.equal "--measured") Sys.argv in
  Format.printf "Divisibility study (simulated at the paper's scale: 38000 sequences, 300 motifs)@.";
  let ra = print_series "Figure 1a — sequence databank partitioning" (Dv.sequence_experiment ()) in
  let rb = print_series "Figure 1b — motif set partitioning" (Dv.motif_experiment ()) in
  Format.printf "@.Fixed overheads: sequence partitioning %.2f s (paper: 1.1 s), " ra.Dv.intercept;
  Format.printf "motif partitioning %.2f s (paper: 10.5 s)@." rb.Dv.intercept;
  Format.printf "Conclusion (as in the paper): partition the sequence set, not the motif set.@.";
  if measured then begin
    Format.printf "@.Measured mode: real scans on a synthetic databank (wall-clock).@.";
    let rm =
      print_series "Measured — sequence block scans"
        (Dv.measured_sequence_experiment ())
    in
    Format.printf "measured linearity r² = %.4f@." rm.Dv.r2
  end
