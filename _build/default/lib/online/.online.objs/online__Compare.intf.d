lib/online/compare.mli: Format Numeric Sched_core Sim
