lib/online/online_opt.mli: Sim
