lib/online/adversarial.ml: Array Numeric Sched_core
