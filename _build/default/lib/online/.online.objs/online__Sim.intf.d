lib/online/sim.mli: Numeric Sched_core
