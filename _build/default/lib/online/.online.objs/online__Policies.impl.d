lib/online/policies.ml: Array List Numeric Queue Sched_core Sim
