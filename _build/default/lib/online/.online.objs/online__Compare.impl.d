lib/online/compare.ml: Format List Numeric Online_opt Policies Printf Sched_core Sim
