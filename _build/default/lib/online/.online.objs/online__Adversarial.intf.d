lib/online/adversarial.mli: Numeric Sched_core
