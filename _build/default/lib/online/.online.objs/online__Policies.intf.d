lib/online/policies.mli: Sim
