lib/online/online_opt.ml: Array List Numeric Option Sched_core Sim
