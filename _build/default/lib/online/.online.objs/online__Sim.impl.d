lib/online/sim.ml: Array List Numeric Printf Sched_core
