(** Online adaptation of the offline optimal algorithm (the strategy the
    paper's conclusion reports as beating MCT in preliminary simulations).

    At every event the policy re-solves the offline maximum-weighted-flow
    problem of Theorem 2 on the jobs currently in the system: each active
    job contributes its *remaining* fraction, is re-released "now" (work
    already done cannot be undone, work to come cannot start in the past)
    and keeps its original arrival as flow origin, so the objective still
    measures true flow [w_j (C_j − r_j)].  The resulting divisible schedule
    is followed until its first epochal boundary or the next event,
    whichever comes first — a "simple preemption scheme" in the paper's
    words, since each re-solve freely preempts and re-allocates everything.

    This policy is clairvoyance-free (it never looks at future arrivals)
    but knows job sizes on arrival, as does the paper's model. *)

module Divisible : Sim.POLICY

(** Like {!Divisible} but re-optimizing only on arrivals (and when the
    cached plan window expires): completions just retire the finished job's
    shares, leaving the freed capacity idle until the next re-solve.  The
    [reopt] bench measures what the extra re-solves of {!Divisible} buy. *)
module Lazy_divisible : Sim.POLICY
