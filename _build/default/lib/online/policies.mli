(** Classical online scheduling heuristics, the baselines of the paper's
    concluding simulations.

    All three are non-divisible: at any instant a machine runs a single job
    at full share.  [Mct] and [Fcfs] are additionally non-preemptive. *)

(** Minimum Completion Time — the baseline the paper names explicitly.  On
    arrival a job is queued on the machine that minimizes its estimated
    completion time (machine availability plus processing cost); queues are
    FIFO and never revisited. *)
module Mct : Sim.POLICY

(** First come, first served with a single global queue: an idle machine
    picks the oldest waiting job whose databank it holds; a started job
    stays on its machine.  *)
module Fcfs : Sim.POLICY

(** Shortest Remaining Processing Time, preemptive with migration: at every
    event, jobs are ranked by remaining work on their fastest machine and
    greedily (re)assigned. *)
module Srpt : Sim.POLICY

(** Earliest Virtual Deadline first: jobs are ranked by
    [flow_origin + 1/weight] (the deadline ordering a unit flow objective
    would induce, cf. Section 4.3.1) and greedily assigned to their fastest
    idle machines.  Preemptive, non-divisible — the natural list-scheduling
    cousin of the optimal algorithm. *)
module Evd : Sim.POLICY

(** Divisible fair sharing: every active job gets an equal share of every
    machine able to run it.  The simplest policy that actually exploits
    divisibility; a useful baseline between the one-job-per-machine
    heuristics and the re-optimizing {!Online_opt.Divisible}. *)
module Fair : Sim.POLICY
