(** Policy comparison harness.

    Runs a set of online policies on one instance, validates every produced
    schedule, and reports the metrics next to the offline optimum of
    Theorem 2 — the experimental protocol behind the paper's concluding
    claim.  Used by the [online] bench, the examples and the CLI. *)

module Rat = Numeric.Rat

type entry = {
  policy : string;
  max_stretch : Rat.t;
  max_weighted_flow : Rat.t;
  sum_flow : Rat.t;
  makespan : Rat.t;
  decisions : int;
  vs_offline : float;
      (** achieved max weighted flow relative to the offline optimum
          (1.0 = optimal) *)
}

type report = {
  offline_objective : Rat.t;  (** optimal max weighted flow of the instance *)
  entries : entry list;  (** one per policy, in input order *)
}

val default_policies : (module Sim.POLICY) list
(** MCT, FCFS, SRPT and the online adaptation of the offline algorithm. *)

val run : ?policies:(module Sim.POLICY) list -> Sched_core.Instance.t -> report
(** @raise Failure if a policy produces an invalid schedule (this is a
    harness for experiments; an invalid schedule is a bug, not a data
    point). *)

val pp : Format.formatter -> report -> unit
(** A compact comparison table. *)
