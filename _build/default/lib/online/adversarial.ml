module Rat = Numeric.Rat
module I = Sched_core.Instance

let ri = Rat.of_int

let mct_trap ~scale =
  if scale < 2 then invalid_arg "Adversarial.mct_trap: scale must be at least 2";
  let k = scale in
  (* Job 0: the long job; jobs 1..k: unit jobs, one released per time unit.
     Costs on the slow machine are k+2 per unit of fast-machine work so
     MCT's completion-time estimates strictly prefer the fast machine and
     it deterministically queues everything there. *)
  let n = k + 1 in
  let releases = Array.init n (fun j -> if j = 0 then Rat.zero else ri j) in
  let weights = Array.make n Rat.one in
  let cost =
    [| Array.init n (fun j -> Some (if j = 0 then ri k else Rat.one));
       Array.init n (fun j -> Some (if j = 0 then ri (k * (k + 2)) else ri (k + 2)))
    |]
  in
  I.make ~releases ~weights cost

let srpt_starvation ~jobs =
  if jobs < 1 then invalid_arg "Adversarial.srpt_starvation: need at least one job";
  let n = jobs + 1 in
  (* Job 0 (cost 3) is repeatedly preempted by the unit jobs arriving back
     to back from time 1 on: SRPT finishes it last, flow Θ(jobs). *)
  let releases = Array.init n (fun j -> if j = 0 then Rat.zero else ri j) in
  let weights = Array.make n Rat.one in
  let cost = [| Array.init n (fun j -> Some (if j = 0 then ri 3 else Rat.one)) |] in
  I.make ~releases ~weights cost
