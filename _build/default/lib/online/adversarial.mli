(** Adversarial instance families for the online heuristics.

    The paper's conclusion observes that MCT loses to the online adaptation
    of the offline algorithm; these parameterized families make the loss
    unbounded, which is the standard way to show a greedy list scheduler is
    not competitive for max-flow objectives. *)

module Rat = Numeric.Rat

val mct_trap : scale:int -> Sched_core.Instance.t
(** Two machines: a fast one and one [scale]× slower.  A long job (cost
    [scale] on the fast machine) arrives at time 0 and MCT greedily commits
    it to the fast machine; [scale] unit jobs then arrive one per time unit
    and are stuck — the fast machine is busy for [scale] seconds and the
    slow machine needs [scale] seconds per unit job.  Their flow grows like
    [scale] while the optimum stays O(1)-ish by preempting/sharing the long
    job, so MCT's max-flow ratio grows without bound as [scale] does.
    @raise Invalid_argument if [scale < 2]. *)

val srpt_starvation : jobs:int -> Sched_core.Instance.t
(** Single machine: a unit job arrives at time 0, then [jobs] short jobs
    arrive back to back; SRPT keeps preempting the first job, starving it.
    Exhibits the starvation that makes sum-flow-optimal policies bad for
    max flow (the paper's Section 3 discussion of objective functions).
    @raise Invalid_argument if [jobs < 1]. *)
