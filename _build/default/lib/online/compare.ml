module Rat = Numeric.Rat
module S = Sched_core.Schedule

type entry = {
  policy : string;
  max_stretch : Rat.t;
  max_weighted_flow : Rat.t;
  sum_flow : Rat.t;
  makespan : Rat.t;
  decisions : int;
  vs_offline : float;
}

type report = { offline_objective : Rat.t; entries : entry list }

let default_policies : (module Sim.POLICY) list =
  [ (module Policies.Mct); (module Policies.Fcfs); (module Policies.Srpt);
    (module Policies.Evd); (module Policies.Fair); (module Online_opt.Divisible) ]

let run ?(policies = default_policies) inst =
  let offline = (Sched_core.Max_flow.solve inst).Sched_core.Max_flow.objective in
  let entries =
    List.map
      (fun (module P : Sim.POLICY) ->
        let r = Sim.run (module P) inst in
        (match S.validate_divisible r.Sim.schedule with
         | Ok () -> ()
         | Error e -> failwith (Printf.sprintf "Compare.run: %s produced an invalid schedule: %s" P.name e));
        let achieved = S.max_weighted_flow r.Sim.schedule in
        {
          policy = P.name;
          max_stretch = S.max_stretch r.Sim.schedule;
          max_weighted_flow = achieved;
          sum_flow = S.sum_flow r.Sim.schedule;
          makespan = S.makespan r.Sim.schedule;
          decisions = r.Sim.decisions;
          vs_offline = Rat.to_float achieved /. Rat.to_float offline;
        })
      policies
  in
  { offline_objective = offline; entries }

let pp fmt r =
  Format.fprintf fmt "@[<v>offline optimal max weighted flow: %a@,%-12s %12s %12s %12s %10s %6s@,"
    Rat.pp r.offline_objective "policy" "max w-flow" "vs offline" "max stretch" "sum flow"
    "calls";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-12s %12.3f %11.2fx %12.3f %10.1f %6d@," e.policy
        (Rat.to_float e.max_weighted_flow)
        e.vs_offline
        (Rat.to_float e.max_stretch)
        (Rat.to_float e.sum_flow)
        e.decisions)
    r.entries;
  Format.fprintf fmt "@]"
