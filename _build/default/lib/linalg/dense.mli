(** Dense vectors and matrices over an ordered field.

    Functorized so the same Gaussian elimination runs on exact rationals
    (tests, optimality certificates) and on floats (quick numeric checks).
    Matrices are row-major arrays of rows. *)

module Make (F : Field.S) : sig
  module Vec : sig
    type t = F.t array

    val make : int -> F.t -> t
    val init : int -> (int -> F.t) -> t
    val dim : t -> int
    val copy : t -> t
    val add : t -> t -> t
    val sub : t -> t -> t
    val scale : F.t -> t -> t
    val neg : t -> t
    val dot : t -> t -> F.t
    val equal : t -> t -> bool
    val is_zero : t -> bool
    val pp : Format.formatter -> t -> unit
  end

  module Mat : sig
    type t = F.t array array

    val make : int -> int -> F.t -> t
    val init : int -> int -> (int -> int -> F.t) -> t
    val rows : t -> int
    val cols : t -> int
    val copy : t -> t
    val identity : int -> t
    val transpose : t -> t
    val mul_vec : t -> Vec.t -> Vec.t
    val mul : t -> t -> t
    val add : t -> t -> t
    val equal : t -> t -> bool

    val row_reduce : t -> int
    (** In-place reduced row echelon form; returns the rank.  Pivots by
        largest magnitude (matters for the float instance only). *)

    val rank : t -> int

    val det : t -> F.t
    (** @raise Invalid_argument on a non-square matrix. *)

    val solve : t -> Vec.t -> Vec.t option
    (** [solve m b] is a solution of [m·x = b], or [None] when the system
        is inconsistent.  Underdetermined systems yield one solution with
        free variables set to zero. *)

    val pp : Format.formatter -> t -> unit
  end
end

module Rational : module type of Make (Field.Rational)
module Approx : module type of Make (Field.Approx)
