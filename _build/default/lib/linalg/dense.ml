(* Dense vectors and matrices over an ordered field, with Gaussian
   elimination.  Used by the LP tests (optimality certificates), by the
   open-shop decomposition checks, and by property tests that need an
   independent linear solver to compare against the simplex. *)

module Make (F : Field.S) = struct
  module Vec = struct
    type t = F.t array

    let make n v : t = Array.make n v
    let init = Array.init
    let dim (v : t) = Array.length v
    let copy = Array.copy

    let add a b = Array.mapi (fun i x -> F.add x b.(i)) a
    let sub a b = Array.mapi (fun i x -> F.sub x b.(i)) a
    let scale k = Array.map (F.mul k)
    let neg = Array.map F.neg

    let dot a b =
      let acc = ref F.zero in
      Array.iteri (fun i x -> acc := F.add !acc (F.mul x b.(i))) a;
      !acc

    let equal a b =
      dim a = dim b && Array.for_all2 F.equal a b

    let is_zero v = Array.for_all F.is_zero v

    let pp fmt v =
      Format.fprintf fmt "[@[%a@]]"
        (Format.pp_print_array ~pp_sep:(fun f () -> Format.fprintf f ";@ ") F.pp)
        v
  end

  module Mat = struct
    type t = F.t array array (* row-major; all rows same length *)

    let make rows cols v : t = Array.init rows (fun _ -> Array.make cols v)
    let init rows cols f : t = Array.init rows (fun i -> Array.init cols (fun j -> f i j))
    let rows (m : t) = Array.length m
    let cols (m : t) = if Array.length m = 0 then 0 else Array.length m.(0)
    let copy (m : t) : t = Array.map Array.copy m

    let identity n = init n n (fun i j -> if i = j then F.one else F.zero)

    let transpose m = init (cols m) (rows m) (fun i j -> m.(j).(i))

    let mul_vec m v = Array.map (fun row -> Vec.dot row v) m

    let mul a b =
      let bt = transpose b in
      init (rows a) (cols b) (fun i j -> Vec.dot a.(i) bt.(j))

    let add a b = init (rows a) (cols a) (fun i j -> F.add a.(i).(j) b.(i).(j))

    let equal a b =
      rows a = rows b && cols a = cols b
      && Array.for_all2 Vec.equal a b

    (* Row-reduce [m] in place; returns the rank.  Partial pivoting: pick
       the largest-magnitude pivot for the float instance (harmless for
       rationals). *)
    let row_reduce (m : t) =
      let nr = rows m and nc = cols m in
      let rank = ref 0 in
      let col = ref 0 in
      while !rank < nr && !col < nc do
        let best = ref (-1) in
        for i = !rank to nr - 1 do
          if (not (F.is_zero m.(i).(!col)))
             && (!best < 0 || F.compare (F.abs m.(i).(!col)) (F.abs m.(!best).(!col)) > 0)
          then best := i
        done;
        if !best < 0 then incr col
        else begin
          let r = !rank in
          if !best <> r then begin
            let tmp = m.(r) in
            m.(r) <- m.(!best);
            m.(!best) <- tmp
          end;
          let piv = m.(r).(!col) in
          for j = !col to nc - 1 do
            m.(r).(j) <- F.div m.(r).(j) piv
          done;
          for i = 0 to nr - 1 do
            if i <> r && not (F.is_zero m.(i).(!col)) then begin
              let factor = m.(i).(!col) in
              for j = !col to nc - 1 do
                m.(i).(j) <- F.sub m.(i).(j) (F.mul factor m.(r).(j))
              done
            end
          done;
          incr rank;
          incr col
        end
      done;
      !rank

    let rank m = row_reduce (copy m)

    let det m =
      if rows m <> cols m then invalid_arg "Dense.Mat.det: not square";
      let n = rows m in
      let a = copy m in
      let sign = ref 1 and d = ref F.one in
      (try
         for k = 0 to n - 1 do
           let best = ref (-1) in
           for i = k to n - 1 do
             if (not (F.is_zero a.(i).(k)))
                && (!best < 0 || F.compare (F.abs a.(i).(k)) (F.abs a.(!best).(k)) > 0)
             then best := i
           done;
           if !best < 0 then begin d := F.zero; raise Exit end;
           if !best <> k then begin
             let tmp = a.(k) in
             a.(k) <- a.(!best);
             a.(!best) <- tmp;
             sign := - !sign
           end;
           d := F.mul !d a.(k).(k);
           for i = k + 1 to n - 1 do
             let factor = F.div a.(i).(k) a.(k).(k) in
             for j = k to n - 1 do
               a.(i).(j) <- F.sub a.(i).(j) (F.mul factor a.(k).(j))
             done
           done
         done
       with Exit -> ());
      if !sign < 0 then F.neg !d else !d

    (* Solve [m x = b]; returns [None] when the system is singular or
       inconsistent.  When the system is underdetermined, returns one
       solution (free variables set to zero). *)
    let solve (m : t) (b : Vec.t) : Vec.t option =
      let nr = rows m and nc = cols m in
      let aug = init nr (nc + 1) (fun i j -> if j < nc then m.(i).(j) else b.(i)) in
      let _ = row_reduce aug in
      (* Detect inconsistency: a row [0 ... 0 | c] with c <> 0. *)
      let inconsistent =
        Array.exists
          (fun row ->
            let all_zero = ref true in
            for j = 0 to nc - 1 do
              if not (F.is_zero row.(j)) then all_zero := false
            done;
            !all_zero && not (F.is_zero row.(nc)))
          aug
      in
      if inconsistent then None
      else begin
        let x = Array.make nc F.zero in
        Array.iter
          (fun row ->
            match Array.find_index (fun v -> not (F.is_zero v)) (Array.sub row 0 nc) with
            | Some lead -> x.(lead) <- row.(nc)
            | None -> ())
          aug;
        Some x
      end

    let pp fmt m =
      Format.fprintf fmt "@[<v>%a@]"
        (Format.pp_print_array ~pp_sep:Format.pp_print_cut Vec.pp)
        m
  end
end

module Rational = Make (Field.Rational)
module Approx = Make (Field.Approx)
