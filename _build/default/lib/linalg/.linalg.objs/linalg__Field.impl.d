lib/linalg/field.ml: Float Format Numeric
