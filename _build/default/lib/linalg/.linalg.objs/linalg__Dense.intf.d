lib/linalg/dense.mli: Field Format
