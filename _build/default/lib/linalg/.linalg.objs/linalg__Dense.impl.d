lib/linalg/dense.ml: Array Field Format
