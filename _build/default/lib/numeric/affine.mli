(** Exact affine functions [a + b·F] of a single parameter.

    Section 4.3.2 of the paper makes epochal times affine functions of the
    objective value [F]: a release date is the constant function [r_j] and a
    deadline is [r_j + F/w_j].  Interval bounds and interval durations on a
    milestone-free range are therefore affine in [F]; this module carries
    them exactly. *)

type t = { const : Rat.t; slope : Rat.t }

val make : const:Rat.t -> slope:Rat.t -> t

val const : Rat.t -> t
(** The constant function. *)

val var : t
(** The identity function [F ↦ F]. *)

val zero : t

val eval : t -> Rat.t -> Rat.t
(** [eval f x] is [f.const + f.slope · x]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t

val is_const : t -> bool
val equal : t -> t -> bool

val compare_at : Rat.t -> t -> t -> int
(** [compare_at x f g] compares [eval f x] with [eval g x]. *)

val intersection : t -> t -> Rat.t option
(** The parameter value at which the two functions meet, if they are not
    parallel ([None] when slopes are equal). *)

val pp : Format.formatter -> t -> unit
