lib/numeric/affine.ml: Format Rat
