lib/numeric/affine.mli: Format Rat
