lib/numeric/rat.ml: Bigint Float Format Hashtbl String
