lib/numeric/bigint.ml: Array Buffer Char Float Format Hashtbl Int64 List Printf Stdlib String
