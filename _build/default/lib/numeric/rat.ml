(* Normalized rationals over Bigint: den > 0, gcd (num, den) = 1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.equal g B.one then { num; den }
    else { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let two = { num = B.two; den = B.one }
let minus_one = { num = B.minus_one; den = B.one }

let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints a b = make (B.of_int a) (B.of_int b)

let num x = x.num
let den x = x.den
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num
let is_integer x = B.equal x.den B.one

let equal a b = B.equal a.num b.num && B.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0) *)
  B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let hash x = Hashtbl.hash (B.hash x.num, B.hash x.den)

let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else make (B.mul a.num b.num) (B.mul a.den b.den)

let inv x =
  if is_zero x then raise Division_by_zero;
  if B.sign x.num < 0 then { num = B.neg x.den; den = B.neg x.num }
  else { num = x.den; den = x.num }

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)

let to_float x = B.to_float x.num /. B.to_float x.den

let of_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    invalid_arg "Rat.of_float: not finite";
  if Float.is_integer f then of_bigint (B.of_float f)
  else begin
    let m, e = Float.frexp f in
    let mantissa = B.of_float (Float.ldexp m 53) in
    let shift = e - 53 in
    if shift >= 0 then of_bigint (B.shift_left mantissa shift)
    else make mantissa (B.shift_left B.one (-shift))
  end

let floor x =
  let q, r = B.divmod x.num x.den in
  if B.sign r < 0 then B.pred q else q

let ceil x =
  let q, r = B.divmod x.num x.den in
  if B.sign r > 0 then B.succ q else q

(* Best approximation with bounded denominator, by the Stern–Brocot walk:
   continued-fraction convergents interleaved with the last admissible
   semiconvergent.  The result q/d with d ≤ max_den minimizes |x − q/d|. *)
let approx ~max_den x =
  if max_den < 1 then invalid_arg "Rat.approx: max_den must be at least 1";
  let bound = B.of_int max_den in
  if B.compare x.den bound <= 0 then x
  else begin
    let target = abs x in
    (* Convergents p/q of the continued fraction of |x|. *)
    let rec walk num den p0 q0 p1 q1 =
      (* invariant: p1/q1 is the latest convergent, q1 <= bound *)
      if B.is_zero den then (p1, q1)
      else begin
        let a, r = B.divmod num den in
        let p2 = B.add (B.mul a p1) p0 and q2 = B.add (B.mul a q1) q0 in
        if B.compare q2 bound > 0 then begin
          (* The full step overshoots: take the best semiconvergent
             p1*k + p0 / q1*k + q0 with the largest k keeping q <= bound,
             then pick the closer of it and the last convergent. *)
          let k = B.div (B.sub bound q0) q1 in
          if B.is_zero k then (p1, q1)
          else begin
            let ps = B.add (B.mul k p1) p0 and qs = B.add (B.mul k q1) q0 in
            let conv = make p1 q1 and semi = make ps qs in
            (* Semiconvergents closer than the previous convergent require
               k > a/2; comparing distances directly is simplest. *)
            if compare (abs (sub semi target)) (abs (sub conv target)) < 0 then (ps, qs)
            else (p1, q1)
          end
        end
        else walk den r p1 q1 p2 q2
      end
    in
    (* Seeds: p_{-2}/q_{-2} = 0/1 and p_{-1}/q_{-1} = 1/0, so the first
       step yields the convergent a0/1 (and 1 ≤ max_den, so the walk never
       returns the formal 1/0). *)
    let p, q = walk (B.abs x.num) x.den B.zero B.one B.one B.zero in
    let r = make p q in
    if sign x < 0 then neg r else r
  end

let to_string x =
  if is_integer x then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let n = B.of_string (String.sub s 0 i) in
    let d = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (B.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
       if frac_part = "" then of_bigint (B.of_string int_part)
       else begin
         let digits = String.length frac_part in
         let whole = B.of_string (int_part ^ frac_part) in
         make whole (B.pow (B.of_int 10) digits)
       end)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
