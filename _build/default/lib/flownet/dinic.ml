module Rat = Numeric.Rat

(* Adjacency as arrays of edge indices; each edge stores its reverse twin
   (the classic residual-graph representation). *)
type edge = {
  dst : int;
  mutable cap : Rat.t; (* residual capacity *)
  twin : int; (* index of the reverse edge *)
  original : bool; (* false for residual twins *)
  original_cap : Rat.t;
}

type t = {
  n : int;
  mutable edges : edge array;
  mutable num_edges : int;
  adj : int list array; (* edge indices out of each vertex, reversed order *)
}

let create n =
  if n <= 0 then invalid_arg "Dinic.create: need at least one vertex";
  { n; edges = Array.make 16 { dst = 0; cap = Rat.zero; twin = 0; original = false; original_cap = Rat.zero };
    num_edges = 0;
    adj = Array.make n [] }

let num_vertices t = t.n

let push_edge t e =
  if t.num_edges = Array.length t.edges then begin
    let bigger = Array.make (2 * t.num_edges) e in
    Array.blit t.edges 0 bigger 0 t.num_edges;
    t.edges <- bigger
  end;
  t.edges.(t.num_edges) <- e;
  t.num_edges <- t.num_edges + 1;
  t.num_edges - 1

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Dinic.add_edge: vertex out of range";
  if Rat.sign capacity < 0 then invalid_arg "Dinic.add_edge: negative capacity";
  let fwd_idx = t.num_edges in
  let fwd =
    { dst; cap = capacity; twin = fwd_idx + 1; original = true; original_cap = capacity }
  in
  let bwd =
    { dst = src; cap = Rat.zero; twin = fwd_idx; original = false; original_cap = Rat.zero }
  in
  ignore (push_edge t fwd);
  ignore (push_edge t bwd);
  t.adj.(src) <- fwd_idx :: t.adj.(src);
  t.adj.(dst) <- (fwd_idx + 1) :: t.adj.(dst)

(* BFS level graph from the source over positive-residual edges. *)
let levels t ~source =
  let level = Array.make t.n (-1) in
  level.(source) <- 0;
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun ei ->
        let e = t.edges.(ei) in
        if Rat.sign e.cap > 0 && level.(e.dst) < 0 then begin
          level.(e.dst) <- level.(u) + 1;
          Queue.push e.dst queue
        end)
      t.adj.(u)
  done;
  level

(* DFS blocking flow along strictly increasing levels.  [iter] caches the
   remaining out-edges per vertex so each edge is scanned once per phase. *)
let blocking_flow t ~source ~sink ~level =
  let iter = Array.map (fun l -> ref l) t.adj in
  let total = ref Rat.zero in
  let rec push u limit =
    if u = sink then limit
    else begin
      let sent = ref Rat.zero in
      let continue = ref true in
      while !continue do
        match !(iter.(u)) with
        | [] -> continue := false
        | ei :: rest ->
          let e = t.edges.(ei) in
          let room = Rat.sub limit !sent in
          if Rat.sign room <= 0 then continue := false
          else if Rat.sign e.cap > 0 && level.(e.dst) = level.(u) + 1 then begin
            let pushed = push e.dst (Rat.min room e.cap) in
            if Rat.sign pushed > 0 then begin
              e.cap <- Rat.sub e.cap pushed;
              let tw = t.edges.(e.twin) in
              tw.cap <- Rat.add tw.cap pushed;
              sent := Rat.add !sent pushed;
              if Rat.is_zero e.cap then iter.(u) := rest
            end
            else iter.(u) := rest
          end
          else iter.(u) := rest
      done;
      !sent
    end
  in
  (* Push from the source until the level graph is saturated; the sum of
     source-out capacities serves as the "infinite" initial limit. *)
  let source_cap =
    List.fold_left
      (fun acc ei ->
        let e = t.edges.(ei) in
        if e.original then Rat.add acc e.original_cap else acc)
      Rat.zero t.adj.(source)
  in
  let rec drain () =
    let sent = push source source_cap in
    if Rat.sign sent > 0 then begin
      total := Rat.add !total sent;
      drain ()
    end
  in
  drain ();
  !total

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Dinic.max_flow: source equals sink";
  let continue = ref true in
  while !continue do
    let level = levels t ~source in
    if level.(sink) < 0 then continue := false
    else ignore (blocking_flow t ~source ~sink ~level)
  done;
  (* Report the cumulative flow from the original source edges, so that
     repeated calls are idempotent in value. *)
  List.fold_left
    (fun acc ei ->
      let e = t.edges.(ei) in
      if e.original then Rat.add acc (Rat.sub e.original_cap e.cap) else acc)
    Rat.zero t.adj.(source)

let edge_flows t =
  let acc = ref [] in
  for ei = t.num_edges - 1 downto 0 do
    let e = t.edges.(ei) in
    if e.original then begin
      let flow = Rat.sub e.original_cap e.cap in
      if Rat.sign flow > 0 then begin
        (* Recover the source endpoint from the twin. *)
        let src = t.edges.(e.twin).dst in
        acc := (src, e.dst, flow) :: !acc
      end
    end
  done;
  !acc
