lib/flownet/dinic.ml: Array List Numeric Queue
