lib/flownet/dinic.mli: Numeric
