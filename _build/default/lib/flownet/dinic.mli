(** Maximum flow on directed networks with exact rational capacities
    (Dinic's algorithm).

    Substrate for the uniform-machines special case of the paper
    (Section 3): when [c_{i,j} = W_j·s_i], deadline feasibility reduces to
    a transportation problem that this module solves without any LP.  The
    number of phases of Dinic's algorithm is bounded by the number of
    vertices, independent of capacities, so exact rational capacities cost
    nothing in termination. *)

module Rat = Numeric.Rat

type t

val create : int -> t
(** A network with vertices [0 .. n-1] and no edges. *)

val add_edge : t -> src:int -> dst:int -> capacity:Rat.t -> unit
(** Adds a directed edge.  Parallel edges are allowed.
    @raise Invalid_argument on negative capacity or bad vertex. *)

val max_flow : t -> source:int -> sink:int -> Rat.t
(** Computes the maximum flow; the edge flows are left in the network for
    inspection via {!edge_flows}.  Calling it twice continues from the
    current flow (idempotent in value). *)

val edge_flows : t -> (int * int * Rat.t) list
(** [(src, dst, flow)] for every original edge with positive flow, in
    insertion order. *)

val num_vertices : t -> int
