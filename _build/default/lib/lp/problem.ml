(* Linear-program description, generic in the coefficient field.

   Conventions: every variable is nonnegative; constraints are sparse rows
   [terms rel rhs] with [terms] a list of (variable index, coefficient).
   This is exactly the shape of the paper's systems (1), (2), (3) and (5):
   all [α] fractions and the flow objective [F] are nonnegative. *)

type relation = Le | Ge | Eq

type direction = Minimize | Maximize

type 'f constr = {
  cname : string;
  terms : (int * 'f) list;
  rel : relation;
  rhs : 'f;
}

type 'f t = {
  num_vars : int;
  direction : direction;
  objective : (int * 'f) list;
  constraints : 'f constr list;
  var_names : string array;
}

let pp_relation fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

(* Imperative builder: formulation code allocates variables one by one and
   accumulates constraints, then seals the problem. *)
module Builder = struct
  type 'f state = {
    mutable next_var : int;
    mutable names : string list; (* reversed *)
    mutable constrs : 'f constr list; (* reversed *)
    mutable obj : (int * 'f) list;
    mutable dir : direction;
  }

  let create () = { next_var = 0; names = []; constrs = []; obj = []; dir = Minimize }

  let fresh_var st ~name =
    let v = st.next_var in
    st.next_var <- v + 1;
    st.names <- name :: st.names;
    v

  let add_constr st ?(name = "") terms rel rhs =
    st.constrs <- { cname = name; terms; rel; rhs } :: st.constrs

  let set_objective st dir obj =
    st.dir <- dir;
    st.obj <- obj

  let finish st =
    {
      num_vars = st.next_var;
      direction = st.dir;
      objective = st.obj;
      constraints = List.rev st.constrs;
      var_names = Array.of_list (List.rev st.names);
    }
end

let num_constraints p = List.length p.constraints

(* Change the coefficient field (e.g. exact rationals to floats for the
   accelerated feasibility pre-checks). *)
let map f p =
  {
    num_vars = p.num_vars;
    direction = p.direction;
    objective = List.map (fun (v, c) -> (v, f c)) p.objective;
    constraints =
      List.map
        (fun c ->
          { c with terms = List.map (fun (v, k) -> (v, f k)) c.terms; rhs = f c.rhs })
        p.constraints;
    var_names = p.var_names;
  }

let pp pp_coeff fmt p =
  let pp_terms fmt terms =
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.fprintf f "@ + ")
      (fun f (v, c) -> Format.fprintf f "%a·%s" pp_coeff c p.var_names.(v))
      fmt terms
  in
  Format.fprintf fmt "@[<v>%s %a@,subject to:@,"
    (match p.direction with Minimize -> "minimize" | Maximize -> "maximize")
    pp_terms p.objective;
  List.iter
    (fun c ->
      Format.fprintf fmt "  @[%s: %a %a %a@]@," c.cname pp_terms c.terms pp_relation c.rel
        pp_coeff c.rhs)
    p.constraints;
  Format.fprintf fmt "@]"
