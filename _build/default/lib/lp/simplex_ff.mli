(** Fraction-free exact simplex (Edmonds-style integer pivoting).

    Drop-in alternative to {!Simplex.Exact} with identical outcomes.  The
    naive rational tableau normalizes every entry with a gcd after every
    pivot; entries' numerators and denominators still grow quickly on dense
    problems (the [lp] bench measures the blow-up).  This implementation
    keeps the constraint tableau as arbitrary-precision *integers* with one
    common denominator — after a pivot on element [p], every entry is
    updated as [(p·a − b·c) / d_prev], an exact division by the previous
    pivot (Bareiss/Edmonds: all entries are minors of the original matrix,
    so their bit size stays polynomially bounded without any gcd).

    Pivot selection matches {!Simplex}: Dantzig's rule with a Bland
    fallback, smallest-ratio leaving row with ties broken by basic variable
    index — so the two solvers traverse the same vertices and return the
    same optima, which the differential tests rely on. *)

val solve : Numeric.Rat.t Problem.t -> Simplex.Exact.outcome
