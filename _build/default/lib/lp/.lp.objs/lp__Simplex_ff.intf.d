lib/lp/simplex_ff.mli: Numeric Problem Simplex
