lib/lp/simplex_ff.ml: Array List Numeric Option Problem Simplex
