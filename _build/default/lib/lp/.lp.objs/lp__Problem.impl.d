lib/lp/problem.ml: Array Format List
