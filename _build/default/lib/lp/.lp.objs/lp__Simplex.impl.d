lib/lp/simplex.ml: Array Buffer Format Linalg List Option Printf Problem
