module Rat = Numeric.Rat

(* A fixed qualitative palette, cycled over job indices. *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac" |]

let color_of_job j = palette.(j mod Array.length palette)

let render ?(width = 800) ?(lane_height = 28) sched =
  let inst = Schedule.instance sched in
  let m = Instance.num_machines inst in
  let horizon = Schedule.makespan sched in
  let margin_left = 40 and margin_top = 20 and axis_height = 30 in
  let chart_width = width - margin_left - 10 in
  let height = margin_top + (m * lane_height) + axis_height in
  let x_of time =
    if Rat.sign horizon <= 0 then float_of_int margin_left
    else
      float_of_int margin_left
      +. (Rat.to_float (Rat.div time horizon) *. float_of_int chart_width)
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     font-family=\"sans-serif\" font-size=\"11\">\n"
    width height;
  out "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n";
  (* Machine lanes. *)
  for i = 0 to m - 1 do
    let y = margin_top + (i * lane_height) in
    out
      "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>\n"
      margin_left y chart_width (lane_height - 2)
      (if i mod 2 = 0 then "#f4f4f4" else "#ececec");
    out "<text x=\"4\" y=\"%d\">M%d</text>\n" (y + (lane_height / 2) + 4) i
  done;
  (* Slices. *)
  List.iter
    (fun (s : Schedule.slice) ->
      let x0 = x_of s.start and x1 = x_of s.stop in
      let y = margin_top + (s.machine * lane_height) in
      out
        "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" fill=\"%s\" \
         stroke=\"white\" stroke-width=\"0.5\"><title>J%d [%s, %s)</title></rect>\n"
        x0 (y + 2)
        (Float.max 0.5 (x1 -. x0))
        (lane_height - 6) (color_of_job s.job) s.job (Rat.to_string s.start)
        (Rat.to_string s.stop);
      if x1 -. x0 > 14.0 then
        out
          "<text x=\"%.2f\" y=\"%d\" fill=\"white\" text-anchor=\"middle\">%d</text>\n"
          ((x0 +. x1) /. 2.0)
          (y + (lane_height / 2) + 3)
          s.job)
    (Schedule.slices sched);
  (* Time axis: origin and horizon. *)
  let axis_y = margin_top + (m * lane_height) + 14 in
  out "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#555\"/>\n" margin_left
    (axis_y - 10) (margin_left + chart_width) (axis_y - 10);
  out "<text x=\"%d\" y=\"%d\">0</text>\n" margin_left axis_y;
  out "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n"
    (margin_left + chart_width) axis_y
    (if Rat.sign horizon <= 0 then "0" else Rat.to_string horizon);
  out "</svg>\n";
  Buffer.contents buf

let save path sched =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render sched))
