module Rat = Numeric.Rat

type slot = { duration : Rat.t; assignment : int option array }

(* Kuhn's augmenting-path maximum matching on the support of [d] (entries
   with positive value).  Returns, for every column, the matched row (-1 if
   unmatched).  The embedded matrix is doubly stochastic (up to scale), so a
   perfect matching always exists. *)
let perfect_matching d k =
  let match_of_col = Array.make k (-1) in
  let try_row row =
    let visited = Array.make k false in
    let rec augment i =
      let rec cols j =
        if j >= k then false
        else if (not visited.(j)) && Rat.sign d.(i).(j) > 0 then begin
          visited.(j) <- true;
          if match_of_col.(j) < 0 || augment match_of_col.(j) then begin
            match_of_col.(j) <- i;
            true
          end
          else cols (j + 1)
        end
        else cols (j + 1)
      in
      cols 0
    in
    augment row
  in
  for i = 0 to k - 1 do
    if not (try_row i) then
      (* Birkhoff–von Neumann guarantees this never happens on a scaled
         doubly stochastic matrix. *)
      invalid_arg "Openshop.perfect_matching: support has no perfect matching"
  done;
  let match_of_row = Array.make k (-1) in
  Array.iteri (fun j i -> match_of_row.(i) <- j) match_of_col;
  match_of_row

let decompose ~matrix ~limit =
  let m = Array.length matrix in
  let n = if m = 0 then 0 else Array.length matrix.(0) in
  if m = 0 || n = 0 then []
  else begin
    Array.iter
      (Array.iter (fun v ->
           if Rat.sign v < 0 then invalid_arg "Openshop.decompose: negative entry"))
      matrix;
    let row_sum i = Array.fold_left Rat.add Rat.zero matrix.(i) in
    let col_sum j =
      let acc = ref Rat.zero in
      for i = 0 to m - 1 do
        acc := Rat.add !acc matrix.(i).(j)
      done;
      !acc
    in
    for i = 0 to m - 1 do
      if Rat.compare (row_sum i) limit > 0 then
        invalid_arg "Openshop.decompose: row sum exceeds limit"
    done;
    for j = 0 to n - 1 do
      if Rat.compare (col_sum j) limit > 0 then
        invalid_arg "Openshop.decompose: column sum exceeds limit"
    done;
    if Rat.sign limit <= 0 then []
    else begin
      (* Embedding with every row and column summing to [limit]:
           D = [ A              diag(limit - rowsum) ]
               [ diag(limit - colsum)     Aᵀ         ]
         Rows 0..m-1 are real machines; columns 0..n-1 are real jobs. *)
      let k = m + n in
      let d = Array.make_matrix k k Rat.zero in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          d.(i).(j) <- matrix.(i).(j);
          d.(m + j).(n + i) <- matrix.(i).(j)
        done
      done;
      for i = 0 to m - 1 do
        d.(i).(n + i) <- Rat.sub limit (row_sum i)
      done;
      for j = 0 to n - 1 do
        d.(m + j).(j) <- Rat.sub limit (col_sum j)
      done;
      let slots = ref [] in
      let remaining = ref limit in
      while Rat.sign !remaining > 0 do
        let match_of_row = perfect_matching d k in
        (* Slot length: smallest matched entry (never longer than what
           remains, since every row sums to [remaining]). *)
        let delta = ref !remaining in
        for i = 0 to k - 1 do
          delta := Rat.min !delta d.(i).(match_of_row.(i))
        done;
        assert (Rat.sign !delta > 0);
        for i = 0 to k - 1 do
          let j = match_of_row.(i) in
          d.(i).(j) <- Rat.sub d.(i).(j) !delta
        done;
        let assignment =
          Array.init m (fun i ->
              let j = match_of_row.(i) in
              if j < n then Some j else None)
        in
        slots := { duration = !delta; assignment } :: !slots;
        remaining := Rat.sub !remaining !delta
      done;
      List.rev !slots
    end
  end

let total_assigned slots ~machines ~jobs =
  let acc = Array.make_matrix machines jobs Rat.zero in
  List.iter
    (fun slot ->
      Array.iteri
        (fun i assn ->
          match assn with
          | Some j -> acc.(i).(j) <- Rat.add acc.(i).(j) slot.duration
          | None -> ())
        slot.assignment)
    slots;
  acc
