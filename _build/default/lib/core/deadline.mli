(** Deadline scheduling in the divisible-load model (Section 4.2 of the
    paper, Lemma 1): there is a schedule meeting every job's release date
    and deadline if, and only if, LP system (2) is feasible. *)

module Rat = Numeric.Rat

val feasible : Instance.t -> deadlines:Rat.t array -> Schedule.t option
(** [Some schedule] iff every job [J_j] can be fully processed within
    [\[r_j, deadlines.(j)\]].  The returned schedule is valid for
    {!Schedule.validate_divisible} and meets all deadlines. *)

val is_feasible : ?divisible:bool -> Instance.t -> deadlines:Rat.t array -> bool
(** Feasibility only, skipping schedule construction.  [divisible] (default
    [true]) selects system (2) or, when [false], system (5) at a fixed
    objective (the preemptive model of Section 4.4). *)

val is_feasible_approx : ?divisible:bool -> Instance.t -> deadlines:Rat.t array -> bool
(** Same question answered with the float simplex: much faster, possibly
    wrong near the feasibility boundary.  The milestone search uses it as a
    pre-check and verifies the answer exactly at the decision points. *)

val flow_deadlines : Instance.t -> objective:Rat.t -> Rat.t array
(** The deadlines [d̄_j(F) = r_j + F/w_j] induced by a maximum weighted
    flow objective [F] (Section 4.3.1). *)
