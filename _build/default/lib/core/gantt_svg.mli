(** SVG rendering of schedules.

    Produces a self-contained SVG Gantt chart: one lane per machine, one
    rectangle per slice, colored by job, with a time axis and a legend.
    Used by the CLI ([dlsched solve --svg out.svg]) and handy for inspecting
    the open-shop reconstructions of Section 4.4, whose slot structure is
    hard to read from slice lists. *)

val render : ?width:int -> ?lane_height:int -> Schedule.t -> string
(** The SVG document as a string.  [width] is the drawing width in pixels
    (default 800); [lane_height] the machine-lane height (default 28).
    Schedules with no slices render as an empty chart. *)

val save : string -> Schedule.t -> unit
(** Write {!render} output to a file. *)
