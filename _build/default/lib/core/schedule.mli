(** Explicit schedules and their metrics.

    A schedule is a set of slices: machine [i] processes (a fraction of)
    job [j] during [\[start, stop)].  The divisible-load model allows a job
    to occupy several machines simultaneously; the preemptive model of
    Section 4.4 of the paper forbids it.  Both validity notions are checked
    exactly. *)

module Rat = Numeric.Rat

type slice = { machine : int; job : int; start : Rat.t; stop : Rat.t }

type t = private { instance : Instance.t; slices : slice list }

val make : Instance.t -> slice list -> t
(** Zero-length slices are dropped; slices are sorted by start time.
    @raise Invalid_argument on negative-length slices or out-of-range
    machine/job indices. *)

val slices : t -> slice list
val instance : t -> Instance.t

(** {1 Construction from LP interval allocations} *)

val pack :
  Instance.t ->
  intervals:(Rat.t * Rat.t) array ->
  fractions:(int * int * int * Rat.t) list ->
  t
(** [pack inst ~intervals ~fractions] lays out the job fractions produced by
    the LP solvers: for every [(t, i, j, α)] with [α > 0], a slice of
    duration [α·c_{i,j}] is placed on machine [i] within interval [t],
    consecutively in list order (the paper: "we can schedule in any order,
    and without idle time, the non-null fractions α^{(t)}_{i,j}").
    @raise Invalid_argument if a machine's interval capacity is exceeded or
    the job cannot run on the machine. *)

(** {1 Validation} *)

val validate_divisible : t -> (unit, string) result
(** Checks: slices respect release dates; no two slices overlap on one
    machine; every job is processed to completion
    ([Σ (stop-start)/c_{i,j} = 1], exactly). *)

val validate_preemptive : t -> (unit, string) result
(** [validate_divisible] plus: no two slices of the same job overlap in
    time (a job never runs on two machines simultaneously). *)

(** {1 Metrics} *)

val completion_time : t -> int -> Rat.t
(** Latest [stop] over the job's slices; the job's release date if it has
    none (a job of zero remaining work). *)

val completion_times : t -> Rat.t array
val makespan : t -> Rat.t

val flow : t -> int -> Rat.t
(** [C_j - r_j]. *)

val max_flow : t -> Rat.t
val sum_flow : t -> Rat.t

val weighted_flow : t -> int -> Rat.t
(** [w_j (C_j - r_j)]. *)

val max_weighted_flow : t -> Rat.t

val max_stretch : t -> Rat.t
(** Maximum over jobs of [(C_j - r_j) / fastest_cost j]. *)

val machine_busy_time : t -> int -> Rat.t

val pp : Format.formatter -> t -> unit

val pp_gantt : ?width:int -> Format.formatter -> t -> unit
(** ASCII Gantt chart, one row per machine, [width] columns (default 64)
    spanning [\[0, makespan\]].  Each cell shows the job occupying most of
    that cell's time span ([.] when idle). *)
