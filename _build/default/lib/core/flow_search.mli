(** Verified accelerated binary search over milestone candidates.

    Feasibility of a flow objective is monotone (a larger [F] only loosens
    deadlines), so the optimal objective lies between the last infeasible
    and the first feasible candidate.  The exact LP feasibility test is
    expensive; this module drives the binary search with the float LP and
    then certifies the answer with at most two exact tests — falling back
    to a fully exact binary search in the (rare) case the float search was
    fooled by a near-boundary instance.  The result is therefore exactly
    the one a purely exact search would produce. *)

module Rat = Numeric.Rat

val first_feasible :
  exact:(Rat.t -> bool) ->
  approx:(Rat.t -> bool) ->
  Rat.t array ->
  int
(** [first_feasible ~exact ~approx candidates] returns the smallest index
    [i] with [exact candidates.(i)], given that feasibility is monotone
    increasing and [exact candidates.(last)] holds.  [approx] must answer
    the same question approximately. *)
