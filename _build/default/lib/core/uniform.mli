(** The uniform-machines-with-restricted-availabilities special case.

    Section 3 of the paper notes that the GriPPS platform is really this
    case: [c_{i,j} = W_j · s_i] where [s_i] is machine [i]'s slowness and
    [W_j] the job's size, masked by databank availability — "a uniform
    machines with restricted availabilities scheduling problem, which is a
    specific instance of the more general unrelated machines scheduling
    problem".  The paper then works in the general model; this module
    exploits the special structure: measuring work in job-size units makes
    deadline feasibility a pure transportation problem, solved by maximum
    flow ({!Flownet.Dinic}) with no linear programming at all.

    Used as a differential oracle for {!Deadline} in the tests and as a
    performance ablation in the bench. *)

module Rat = Numeric.Rat

type t = {
  speeds : Rat.t array;  (** [s_i > 0], seconds per unit of work *)
  sizes : Rat.t array;  (** [W_j > 0], units of work *)
  releases : Rat.t array;
  weights : Rat.t array;
  available : bool array array;  (** [available.(i).(j)] *)
}

val make :
  speeds:Rat.t array ->
  sizes:Rat.t array ->
  releases:Rat.t array ->
  weights:Rat.t array ->
  available:bool array array ->
  t
(** @raise Invalid_argument on inconsistent dimensions, non-positive
    speeds/sizes/weights, or a job with no available machine. *)

val to_instance : t -> Instance.t
(** The equivalent unrelated-machines instance
    ({!Instance.uniform} with the same data). *)

val feasible : t -> deadlines:Rat.t array -> Schedule.t option
(** Deadline feasibility by maximum flow: source → job ([W_j]) →
    (interval, machine) pairs (allowed when the job is live in the interval
    and the machine holds its databank) → sink ([len_t / s_i]).  Feasible
    iff the max flow saturates [Σ_j W_j]; the flow decomposition is decoded
    into a valid divisible schedule. *)

val is_feasible : t -> deadlines:Rat.t array -> bool
