(** Preemptive schedule reconstruction à la Gonzalez–Sahni and
    Lawler–Labetoulle (Section 4.4 of the paper).

    Given the per-interval processing-time matrix [t_{i,j} = α_{i,j}·c_{i,j}]
    whose row sums (machine usage) and column sums (per-job processing) are
    at most the interval length [T], build a schedule of length [T] in which
    at every instant each machine runs at most one job and each job runs on
    at most one machine.

    The construction embeds the matrix into an [(m+n)×(m+n)] nonnegative
    matrix all of whose rows and columns sum exactly to [T] (adding one
    dummy job per machine and one dummy machine per job), then applies the
    Birkhoff–von Neumann decomposition: repeatedly extract a perfect
    matching on the support and subtract the minimum matched entry.  Each
    extraction zeroes at least one entry, so there are at most [(m+n)²]
    slots.  All arithmetic is exact. *)

module Rat = Numeric.Rat

type slot = {
  duration : Rat.t;  (** strictly positive *)
  assignment : int option array;
      (** [assignment.(i) = Some j]: machine [i] runs job [j] during this
          slot; [None]: machine [i] is idle *)
}

val decompose : matrix:Rat.t array array -> limit:Rat.t -> slot list
(** [decompose ~matrix ~limit] with [matrix] of shape machines × jobs.
    The slot durations sum to exactly [limit], and for every pair [(i,j)],
    the total duration of slots assigning [j] to [i] equals
    [matrix.(i).(j)].
    @raise Invalid_argument if some entry is negative or a row/column sum
    exceeds [limit]. *)

val total_assigned : slot list -> machines:int -> jobs:int -> Rat.t array array
(** Reconstruct the per-pair totals (test helper, inverse of the above). *)
