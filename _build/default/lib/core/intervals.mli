(** Epochal time intervals.

    Sections 4.1–4.4 of the paper all start the same way: collect the
    relevant epochal times (release dates, possibly deadlines), order them,
    and work interval by interval between consecutive ones.  This module is
    that shared step. *)

module Rat = Numeric.Rat

val of_epochals : Rat.t list -> (Rat.t * Rat.t) array
(** Sort, deduplicate, and pair consecutive values:
    [of_epochals \[3; 1; 2; 1\]] is [\[|(1,2); (2,3)|\]].  Fewer than two
    distinct values yield no intervals. *)
