module Rat = Numeric.Rat

type t = {
  speeds : Rat.t array;
  sizes : Rat.t array;
  releases : Rat.t array;
  weights : Rat.t array;
  available : bool array array;
}

let make ~speeds ~sizes ~releases ~weights ~available =
  let m = Array.length speeds and n = Array.length sizes in
  if m = 0 then invalid_arg "Uniform.make: no machines";
  if Array.length releases <> n || Array.length weights <> n then
    invalid_arg "Uniform.make: job array length mismatch";
  if Array.length available <> m then invalid_arg "Uniform.make: availability rows";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Uniform.make: availability cols")
    available;
  Array.iter
    (fun s -> if Rat.sign s <= 0 then invalid_arg "Uniform.make: speed must be positive")
    speeds;
  Array.iter
    (fun w -> if Rat.sign w <= 0 then invalid_arg "Uniform.make: size must be positive")
    sizes;
  Array.iter
    (fun w -> if Rat.sign w <= 0 then invalid_arg "Uniform.make: weight must be positive")
    weights;
  for j = 0 to n - 1 do
    let ok = ref false in
    for i = 0 to m - 1 do
      if available.(i).(j) then ok := true
    done;
    if not !ok then
      invalid_arg (Printf.sprintf "Uniform.make: job %d has no available machine" j)
  done;
  { speeds; sizes; releases; weights; available }

let to_instance t =
  Instance.uniform ~speeds:t.speeds ~sizes:t.sizes ~releases:t.releases ~weights:t.weights
    ~available:t.available

let feasible t ~deadlines =
  let n = Array.length t.sizes and m = Array.length t.speeds in
  if Array.length deadlines <> n then invalid_arg "Uniform.feasible: deadlines length";
  let intervals =
    Intervals.of_epochals (Array.to_list t.releases @ Array.to_list deadlines)
  in
  let nint = Array.length intervals in
  (* Vertex layout: 0 = source; 1..n = jobs; n+1 .. n+nint*m = (t, i)
     pairs; last = sink. *)
  let source = 0 in
  let job_vertex j = 1 + j in
  let pool_vertex ti i = 1 + n + (ti * m) + i in
  let sink = 1 + n + (nint * m) in
  let net = Flownet.Dinic.create (sink + 1) in
  let total_work = Array.fold_left Rat.add Rat.zero t.sizes in
  for j = 0 to n - 1 do
    Flownet.Dinic.add_edge net ~src:source ~dst:(job_vertex j) ~capacity:t.sizes.(j)
  done;
  Array.iteri
    (fun ti (lo, hi) ->
      let len = Rat.sub hi lo in
      for i = 0 to m - 1 do
        (* Machine i delivers at most len / s_i units of work during t. *)
        Flownet.Dinic.add_edge net ~src:(pool_vertex ti i) ~dst:sink
          ~capacity:(Rat.div len t.speeds.(i));
        for j = 0 to n - 1 do
          if t.available.(i).(j)
             && Rat.compare lo t.releases.(j) >= 0
             && Rat.compare hi deadlines.(j) <= 0
          then
            Flownet.Dinic.add_edge net ~src:(job_vertex j) ~dst:(pool_vertex ti i)
              ~capacity:t.sizes.(j)
        done
      done)
    intervals;
  let value = Flownet.Dinic.max_flow net ~source ~sink in
  if not (Rat.equal value total_work) then None
  else begin
    (* Decode job → (t, i) flows into fractions of each job. *)
    let inst = to_instance t in
    let fractions =
      List.filter_map
        (fun (src, dst, flow) ->
          if src >= 1 && src <= n && dst > n && dst < sink then begin
            let j = src - 1 in
            let k = dst - 1 - n in
            let ti = k / m and i = k mod m in
            Some (ti, i, j, Rat.div flow t.sizes.(j))
          end
          else None)
        (Flownet.Dinic.edge_flows net)
    in
    Some (Schedule.pack inst ~intervals ~fractions)
  end

let is_feasible t ~deadlines = Option.is_some (feasible t ~deadlines)
