module Rat = Numeric.Rat

type job = { release : Rat.t; weight : Rat.t; flow_origin : Rat.t }

type t = {
  jobs : job array;
  num_machines : int;
  cost : Rat.t option array array;
}

let make ?flow_origins ~releases ~weights cost =
  let n = Array.length releases in
  if Array.length weights <> n then invalid_arg "Instance.make: weights length mismatch";
  let flow_origins = Option.value flow_origins ~default:releases in
  if Array.length flow_origins <> n then
    invalid_arg "Instance.make: flow_origins length mismatch";
  let m = Array.length cost in
  if m = 0 then invalid_arg "Instance.make: no machines";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Instance.make: cost row length mismatch")
    cost;
  Array.iter
    (fun r -> if Rat.sign r < 0 then invalid_arg "Instance.make: negative release date")
    releases;
  Array.iteri
    (fun j o ->
      if Rat.sign o < 0 then invalid_arg "Instance.make: negative flow origin";
      if Rat.compare o releases.(j) > 0 then
        invalid_arg "Instance.make: flow origin after release date")
    flow_origins;
  Array.iter
    (fun w -> if Rat.sign w <= 0 then invalid_arg "Instance.make: weight must be positive")
    weights;
  Array.iter
    (Array.iter (function
      | Some c when Rat.sign c <= 0 ->
        invalid_arg "Instance.make: finite cost must be positive"
      | _ -> ()))
    cost;
  for j = 0 to n - 1 do
    let runnable = ref false in
    for i = 0 to m - 1 do
      if cost.(i).(j) <> None then runnable := true
    done;
    if not !runnable then
      invalid_arg (Printf.sprintf "Instance.make: job %d cannot run on any machine" j)
  done;
  {
    jobs =
      Array.init n (fun j ->
          { release = releases.(j); weight = weights.(j); flow_origin = flow_origins.(j) });
    num_machines = m;
    cost = Array.map Array.copy cost;
  }

let uniform ~speeds ~sizes ~releases ~weights ~available =
  let m = Array.length speeds and n = Array.length sizes in
  if Array.length available <> m then invalid_arg "Instance.uniform: availability rows";
  let cost =
    Array.init m (fun i ->
        if Array.length available.(i) <> n then
          invalid_arg "Instance.uniform: availability cols";
        Array.init n (fun j ->
            if available.(i).(j) then Some (Rat.mul sizes.(j) speeds.(i)) else None))
  in
  make ~releases ~weights cost

let num_jobs t = Array.length t.jobs
let num_machines t = t.num_machines
let job t j = t.jobs.(j)
let release t j = t.jobs.(j).release
let weight t j = t.jobs.(j).weight
let flow_origin t j = t.jobs.(j).flow_origin
let cost t ~machine ~job = t.cost.(machine).(job)
let can_run t ~machine ~job = t.cost.(machine).(job) <> None

let fastest_cost t ~job =
  let best = ref None in
  for i = 0 to t.num_machines - 1 do
    match t.cost.(i).(job) with
    | Some c -> (
      match !best with
      | None -> best := Some c
      | Some b -> if Rat.compare c b < 0 then best := Some c)
    | None -> ()
  done;
  match !best with
  | Some c -> c
  | None -> assert false (* ruled out by [make] *)

let max_release t =
  Array.fold_left (fun acc j -> Rat.max acc j.release) Rat.zero t.jobs

let stretch_weights t =
  let n = Array.length t.jobs in
  {
    t with
    jobs =
      Array.init n (fun j ->
          { t.jobs.(j) with weight = Rat.inv (fastest_cost t ~job:j) });
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>%d jobs on %d machines@," (num_jobs t) t.num_machines;
  Array.iteri
    (fun j job ->
      Format.fprintf fmt "  J%d: r=%a w=%a" j Rat.pp job.release Rat.pp job.weight;
      if not (Rat.equal job.flow_origin job.release) then
        Format.fprintf fmt " o=%a" Rat.pp job.flow_origin;
      Format.fprintf fmt " costs=[";
      for i = 0 to t.num_machines - 1 do
        (match t.cost.(i).(j) with
         | Some c -> Format.fprintf fmt "%a" Rat.pp c
         | None -> Format.pp_print_string fmt "∞");
        if i < t.num_machines - 1 then Format.pp_print_string fmt "; "
      done;
      Format.fprintf fmt "]@,")
    t.jobs;
  Format.fprintf fmt "@]"
