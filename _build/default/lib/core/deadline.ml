module Rat = Numeric.Rat
module Sx = Lp.Simplex.Exact

let solve_form inst (form : Formulations.deadline_form) =
  match Lp.Simplex_ff.solve form.dl_problem with
  | Sx.Optimal sol ->
    let fractions = form.dl_decode sol.values in
    Some (Schedule.pack inst ~intervals:form.dl_intervals ~fractions)
  | Sx.Infeasible -> None
  | Sx.Unbounded -> assert false (* feasibility system: bounded by construction *)

let feasible inst ~deadlines =
  solve_form inst (Formulations.deadline_system inst ~deadlines)

let is_feasible ?divisible inst ~deadlines =
  let form = Formulations.deadline_system ?divisible inst ~deadlines in
  match Lp.Simplex_ff.solve form.dl_problem with
  | Sx.Optimal _ -> true
  | Sx.Infeasible -> false
  | Sx.Unbounded -> assert false

let is_feasible_approx ?divisible inst ~deadlines =
  let form = Formulations.deadline_system ?divisible inst ~deadlines in
  let module Sf = Lp.Simplex.Approx in
  match Sf.solve (Lp.Problem.map Rat.to_float form.dl_problem) with
  | Sf.Optimal _ -> true
  | Sf.Infeasible -> false
  | Sf.Unbounded -> assert false

let flow_deadlines inst ~objective =
  Array.init (Instance.num_jobs inst) (fun j ->
      Rat.add (Instance.flow_origin inst j)
        (Rat.div objective (Instance.weight inst j)))
