module Rat = Numeric.Rat

let binary_search ~feasible candidates lo hi =
  (* invariant: candidates.(hi) feasible, everything below lo infeasible *)
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if feasible candidates.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let first_feasible ~exact ~approx candidates =
  let last = Array.length candidates - 1 in
  let guess = binary_search ~feasible:approx candidates 0 last in
  (* Certify the float answer with exact tests at the boundary. *)
  let guess_ok = exact candidates.(guess) in
  if guess_ok then begin
    if guess = 0 || not (exact candidates.(guess - 1)) then guess
    else
      (* Float search overshot: the exact boundary is at or below guess-1. *)
      binary_search ~feasible:exact candidates 0 (guess - 1)
  end
  else
    (* Float search undershot: the exact boundary is above guess. *)
    binary_search ~feasible:exact candidates (guess + 1) last
