module Rat = Numeric.Rat

type slice = { machine : int; job : int; start : Rat.t; stop : Rat.t }

type t = { instance : Instance.t; slices : slice list }

let make instance slices =
  let n = Instance.num_jobs instance and m = Instance.num_machines instance in
  List.iter
    (fun s ->
      if s.machine < 0 || s.machine >= m then invalid_arg "Schedule.make: bad machine";
      if s.job < 0 || s.job >= n then invalid_arg "Schedule.make: bad job";
      if Rat.compare s.stop s.start < 0 then
        invalid_arg "Schedule.make: negative-length slice")
    slices;
  let slices =
    slices
    |> List.filter (fun s -> Rat.compare s.start s.stop < 0)
    |> List.sort (fun a b ->
           let c = Rat.compare a.start b.start in
           if c <> 0 then c else compare (a.machine, a.job) (b.machine, b.job))
  in
  { instance; slices }

let slices t = t.slices
let instance t = t.instance

let pack inst ~intervals ~fractions =
  (* Cursor per (interval, machine): next free time inside that interval. *)
  let m = Instance.num_machines inst in
  let cursors =
    Array.init (Array.length intervals) (fun t -> Array.make m (fst intervals.(t)))
  in
  let slices =
    List.filter_map
      (fun (t, i, j, frac) ->
        if Rat.sign frac <= 0 then None
        else begin
          let c =
            match Instance.cost inst ~machine:i ~job:j with
            | Some c -> c
            | None -> invalid_arg "Schedule.pack: fraction on unavailable machine"
          in
          let duration = Rat.mul frac c in
          let start = cursors.(t).(i) in
          let stop = Rat.add start duration in
          if Rat.compare stop (snd intervals.(t)) > 0 then
            invalid_arg
              (Printf.sprintf "Schedule.pack: machine %d overfull in interval %d" i t);
          cursors.(t).(i) <- stop;
          Some { machine = i; job = j; start; stop }
        end)
      fractions
  in
  make inst slices

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Check that no two time ranges in [ranges] (already sorted by start)
   overlap; [what] labels the error message. *)
let check_disjoint what ranges =
  let rec go = function
    | (_, stop1, id1) :: ((start2, _, id2) :: _ as rest) ->
      if Rat.compare stop1 start2 > 0 then
        err "%s: slices %s and %s overlap" what id1 id2
      else go rest
    | _ -> Ok ()
  in
  go ranges

let ( let* ) = Result.bind

let validate_common t =
  let inst = t.instance in
  (* Release dates. *)
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Rat.compare s.start (Instance.release inst s.job) < 0 then
          err "job %d processed before its release date" s.job
        else Ok ())
      (Ok ()) t.slices
  in
  (* Machine-disjointness. *)
  let* () =
    let rec per_machine i =
      if i >= Instance.num_machines inst then Ok ()
      else begin
        let ranges =
          t.slices
          |> List.filter (fun s -> s.machine = i)
          |> List.map (fun s ->
                 (s.start, s.stop, Printf.sprintf "(m%d,j%d@%s)" s.machine s.job
                                     (Rat.to_string s.start)))
        in
        let* () = check_disjoint (Printf.sprintf "machine %d" i) ranges in
        per_machine (i + 1)
      end
    in
    per_machine 0
  in
  (* Completion: fractions of every job sum to exactly one. *)
  let fractions = Array.make (Instance.num_jobs inst) Rat.zero in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        match Instance.cost inst ~machine:s.machine ~job:s.job with
        | None -> err "job %d scheduled on unavailable machine %d" s.job s.machine
        | Some c ->
          fractions.(s.job) <-
            Rat.add fractions.(s.job) (Rat.div (Rat.sub s.stop s.start) c);
          Ok ())
      (Ok ()) t.slices
  in
  let rec check_complete j =
    if j >= Array.length fractions then Ok ()
    else if not (Rat.equal fractions.(j) Rat.one) then
      err "job %d fractions sum to %s, not 1" j (Rat.to_string fractions.(j))
    else check_complete (j + 1)
  in
  check_complete 0

let validate_divisible t = validate_common t

let validate_preemptive t =
  let* () = validate_common t in
  let rec per_job j =
    if j >= Instance.num_jobs t.instance then Ok ()
    else begin
      let ranges =
        t.slices
        |> List.filter (fun s -> s.job = j)
        |> List.map (fun s ->
               (s.start, s.stop, Printf.sprintf "(m%d@%s)" s.machine (Rat.to_string s.start)))
      in
      let* () = check_disjoint (Printf.sprintf "job %d (intra-job parallelism)" j) ranges in
      per_job (j + 1)
    end
  in
  per_job 0

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let completion_time t j =
  List.fold_left
    (fun acc s -> if s.job = j then Rat.max acc s.stop else acc)
    (Instance.release t.instance j)
    t.slices

let completion_times t = Array.init (Instance.num_jobs t.instance) (completion_time t)

let makespan t = Array.fold_left Rat.max Rat.zero (completion_times t)

let flow t j = Rat.sub (completion_time t j) (Instance.flow_origin t.instance j)

let fold_jobs f t init =
  let n = Instance.num_jobs t.instance in
  let rec go j acc = if j >= n then acc else go (j + 1) (f acc j) in
  go 0 init

let max_flow t = fold_jobs (fun acc j -> Rat.max acc (flow t j)) t Rat.zero
let sum_flow t = fold_jobs (fun acc j -> Rat.add acc (flow t j)) t Rat.zero

let weighted_flow t j = Rat.mul (Instance.weight t.instance j) (flow t j)

let max_weighted_flow t = fold_jobs (fun acc j -> Rat.max acc (weighted_flow t j)) t Rat.zero

let max_stretch t =
  fold_jobs
    (fun acc j ->
      Rat.max acc (Rat.div (flow t j) (Instance.fastest_cost t.instance ~job:j)))
    t Rat.zero

let machine_busy_time t i =
  List.fold_left
    (fun acc s -> if s.machine = i then Rat.add acc (Rat.sub s.stop s.start) else acc)
    Rat.zero t.slices

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf fmt "M%d: J%d [%a, %a)@," s.machine s.job Rat.pp s.start Rat.pp
        s.stop)
    t.slices;
  Format.fprintf fmt "@]"

let job_glyph j =
  (* 0-9 then a-z then '#': enough to tell small instances apart. *)
  if j < 10 then Char.chr (Char.code '0' + j)
  else if j < 36 then Char.chr (Char.code 'a' + j - 10)
  else '#'

let pp_gantt ?(width = 64) fmt t =
  let horizon = makespan t in
  if Rat.sign horizon <= 0 then Format.fprintf fmt "(empty schedule)@."
  else begin
    let cell_of time =
      (* time / horizon * width, clamped *)
      let x = Rat.to_float (Rat.div time horizon) *. float_of_int width in
      Stdlib.min (width - 1) (Stdlib.max 0 (int_of_float x))
    in
    for i = 0 to Instance.num_machines t.instance - 1 do
      let row = Bytes.make width '.' in
      List.iter
        (fun s ->
          if s.machine = i then
            for c = cell_of s.start to cell_of (Rat.sub s.stop (Rat.div horizon (Rat.of_int (width * 4)))) do
              Bytes.set row c (job_glyph s.job)
            done)
        t.slices;
      Format.fprintf fmt "M%d |%s|@." i (Bytes.to_string row)
    done;
    Format.fprintf fmt "    0%*s@." (width - 1) (Rat.to_string horizon)
  end
