lib/core/openshop.mli: Numeric
