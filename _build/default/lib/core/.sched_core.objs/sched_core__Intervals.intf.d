lib/core/intervals.mli: Numeric
