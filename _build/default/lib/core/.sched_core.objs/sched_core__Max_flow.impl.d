lib/core/max_flow.ml: Array Deadline Flow_search Formulations Instance List Lp Milestones Numeric Schedule
