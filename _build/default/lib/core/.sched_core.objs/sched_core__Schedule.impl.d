lib/core/schedule.ml: Array Bytes Char Format Instance List Numeric Printf Result Stdlib
