lib/core/milestones.mli: Instance Numeric
