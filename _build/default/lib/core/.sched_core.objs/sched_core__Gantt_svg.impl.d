lib/core/gantt_svg.ml: Array Buffer Float Fun Instance List Numeric Printf Schedule
