lib/core/milestones.ml: Instance List Numeric
