lib/core/preemptive.mli: Instance Numeric Schedule
