lib/core/flow_search.mli: Numeric
