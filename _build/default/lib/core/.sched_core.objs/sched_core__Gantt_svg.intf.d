lib/core/gantt_svg.mli: Schedule
