lib/core/formulations.ml: Array Hashtbl Instance Intervals List Lp Numeric Printf
