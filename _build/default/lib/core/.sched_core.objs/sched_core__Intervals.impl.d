lib/core/intervals.ml: Array List Numeric
