lib/core/uniform.mli: Instance Numeric Schedule
