lib/core/uniform.ml: Array Flownet Instance Intervals List Numeric Option Printf Schedule
