lib/core/openshop.ml: Array List Numeric
