lib/core/makespan.ml: Array Formulations Instance Lp Numeric Schedule
