lib/core/flow_search.ml: Array Numeric
