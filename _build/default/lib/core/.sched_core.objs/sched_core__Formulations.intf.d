lib/core/formulations.mli: Instance Lp Numeric
