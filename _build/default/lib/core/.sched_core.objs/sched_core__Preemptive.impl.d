lib/core/preemptive.ml: Array Deadline Flow_search Formulations Instance List Lp Max_flow Milestones Numeric Openshop Schedule
