lib/core/deadline.mli: Instance Numeric Schedule
