lib/core/max_flow.mli: Instance Numeric Schedule
