lib/core/makespan.mli: Instance Numeric Schedule
