lib/core/instance_io.ml: Array Buffer Fun In_channel Instance List Numeric Printf String
