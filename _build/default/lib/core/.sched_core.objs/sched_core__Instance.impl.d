lib/core/instance.ml: Array Format Numeric Option Printf
