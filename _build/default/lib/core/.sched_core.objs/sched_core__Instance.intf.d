lib/core/instance.mli: Format Numeric
