lib/core/deadline.ml: Array Formulations Instance Lp Numeric Schedule
