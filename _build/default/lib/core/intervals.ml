module Rat = Numeric.Rat

let of_epochals values =
  let sorted = List.sort_uniq Rat.compare values in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  Array.of_list (pairs sorted)
