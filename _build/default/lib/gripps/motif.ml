type atom =
  | Any
  | Exact of char
  | One_of of string
  | Not_of of string

type element = { atom : atom; min_rep : int; max_rep : int }

type t = { name : string; elements : element list }

let is_residue c = String.contains Databank.alphabet c

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf invalid_arg ("Motif.of_string: " ^^ fmt)

(* Parse one element starting at [pos]; returns (element, next position). *)
let parse_element s pos =
  let len = String.length s in
  let atom, pos =
    match s.[pos] with
    | 'x' -> (Any, pos + 1)
    | '[' | '{' ->
      let closing = if s.[pos] = '[' then ']' else '}' in
      let rec find i =
        if i >= len then fail "unterminated class at %d" pos
        else if s.[i] = closing then i
        else find (i + 1)
      in
      let close = find (pos + 1) in
      let body = String.sub s (pos + 1) (close - pos - 1) in
      if body = "" then fail "empty class at %d" pos;
      String.iter (fun c -> if not (is_residue c) then fail "bad residue %c" c) body;
      ((if closing = ']' then One_of body else Not_of body), close + 1)
    | c when is_residue c -> (Exact c, pos + 1)
    | c -> fail "unexpected character %c at %d" c pos
  in
  (* Optional repetition suffix (n) or (n,m). *)
  if pos < len && s.[pos] = '(' then begin
    let rec find i =
      if i >= len then fail "unterminated repetition at %d" pos
      else if s.[i] = ')' then i
      else find (i + 1)
    in
    let close = find (pos + 1) in
    let body = String.sub s (pos + 1) (close - pos - 1) in
    let min_rep, max_rep =
      match String.split_on_char ',' body with
      | [ n ] -> (int_of_string (String.trim n), int_of_string (String.trim n))
      | [ n; m ] -> (int_of_string (String.trim n), int_of_string (String.trim m))
      | _ -> fail "bad repetition %s" body
    in
    if min_rep < 0 || max_rep < min_rep then fail "bad repetition bounds %s" body;
    ({ atom; min_rep; max_rep }, close + 1)
  end
  else ({ atom; min_rep = 1; max_rep = 1 }, pos)

let of_string ?(name = "") s =
  if s = "" then fail "empty pattern";
  let len = String.length s in
  let rec go pos acc =
    let el, pos = parse_element s pos in
    let acc = el :: acc in
    if pos >= len then List.rev acc
    else if s.[pos] = '-' then
      if pos + 1 >= len then fail "trailing dash"
      else go (pos + 1) acc
    else fail "expected dash at %d" pos
  in
  let name = if name = "" then s else name in
  { name; elements = go 0 [] }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let atom_to_string = function
  | Any -> "x"
  | Exact c -> String.make 1 c
  | One_of body -> "[" ^ body ^ "]"
  | Not_of body -> "{" ^ body ^ "}"

let element_to_string { atom; min_rep; max_rep } =
  let base = atom_to_string atom in
  if min_rep = 1 && max_rep = 1 then base
  else if min_rep = max_rep then Printf.sprintf "%s(%d)" base min_rep
  else Printf.sprintf "%s(%d,%d)" base min_rep max_rep

let to_string t = String.concat "-" (List.map element_to_string t.elements)

let min_length t = List.fold_left (fun acc e -> acc + e.min_rep) 0 t.elements
let max_length t = List.fold_left (fun acc e -> acc + e.max_rep) 0 t.elements

(* ------------------------------------------------------------------ *)
(* Random generation                                                   *)
(* ------------------------------------------------------------------ *)

let random_class rng =
  let k = 2 + Prng.int rng 3 in
  let picked = Array.init k (fun _ -> Databank.alphabet.[Prng.int rng 20]) in
  let dedup = List.sort_uniq Char.compare (Array.to_list picked) in
  String.init (List.length dedup) (List.nth dedup)

let random_element rng =
  match Prng.int rng 10 with
  | 0 | 1 ->
    (* bounded wildcard gap, the most selective-to-cheap PROSITE idiom *)
    let lo = Prng.int rng 3 in
    let hi = lo + 1 + Prng.int rng 3 in
    { atom = Any; min_rep = lo; max_rep = hi }
  | 2 | 3 -> { atom = One_of (random_class rng); min_rep = 1; max_rep = 1 }
  | 4 -> { atom = Not_of (random_class rng); min_rep = 1; max_rep = 1 }
  | _ -> { atom = Exact Databank.alphabet.[Prng.int rng 20]; min_rep = 1; max_rep = 1 }

let random rng ~name =
  let k = 3 + Prng.int rng 6 in
  { name; elements = List.init k (fun _ -> random_element rng) }

let prosite_examples =
  List.map
    (fun (name, pattern) -> of_string ~name pattern)
    [ ("PS00001 ASN_GLYCOSYLATION", "N-{P}-[ST]-{P}");
      ("PS00004 CAMP_PHOSPHO_SITE", "[RK](2)-x-[ST]");
      ("PS00005 PKC_PHOSPHO_SITE", "[ST]-x-[RK]");
      ("PS00006 CK2_PHOSPHO_SITE", "[ST]-x(2)-[DE]");
      ("PS00007 TYR_PHOSPHO_SITE", "[RK]-x(2,3)-[DE]-x(2,3)-Y");
      ("PS00008 MYRISTYL", "G-{EDRKHPFYW}-x(2)-[STAGCN]-{P}");
      ("PS00028 ZINC_FINGER_C2H2", "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H")
    ]

let random_selective_element rng =
  match Prng.int rng 10 with
  | 0 ->
    let lo = Prng.int rng 2 in
    { atom = Any; min_rep = lo; max_rep = lo + 1 + Prng.int rng 2 }
  | 1 | 2 -> { atom = One_of (random_class rng); min_rep = 1; max_rep = 1 }
  | _ -> { atom = Exact Databank.alphabet.[Prng.int rng 20]; min_rep = 1; max_rep = 1 }

let random_selective rng ~name =
  let k = 6 + Prng.int rng 7 in
  { name; elements = List.init k (fun _ -> random_selective_element rng) }
