(* SplitMix64 (Steele, Lea & Flood 2014): tiny, fast, and passes BigCrush
   when used as a 64-bit stream; entirely sufficient for workload
   synthesis. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Modulo bias is negligible for the small bounds used here. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t =
  (* 53 random bits mapped to [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let bool t = Int64.logand (next t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  (* u is in [0,1); 1 - u is in (0,1] so log is finite. *)
  -.mean *. log (1.0 -. u)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
