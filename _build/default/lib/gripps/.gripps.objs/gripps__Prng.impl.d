lib/gripps/prng.ml: Array Int64
