lib/gripps/divisibility.ml: Array Cost_model Databank Float List Motif Printf Prng Scanner Unix
