lib/gripps/motif.ml: Array Char Databank List Printf Prng String
