lib/gripps/motif.mli: Prng
