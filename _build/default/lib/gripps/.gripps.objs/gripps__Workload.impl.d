lib/gripps/workload.ml: Array Cost_model Float List Numeric Prng Sched_core
