lib/gripps/network.ml: Cost_model Databank List Motif Printf Prng Scanner String
