lib/gripps/scanner.mli: Databank Motif
