lib/gripps/prng.mli:
