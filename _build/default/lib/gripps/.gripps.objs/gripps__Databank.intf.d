lib/gripps/databank.mli: Prng
