lib/gripps/divisibility.mli:
