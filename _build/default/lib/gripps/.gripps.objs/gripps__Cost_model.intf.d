lib/gripps/cost_model.mli: Prng
