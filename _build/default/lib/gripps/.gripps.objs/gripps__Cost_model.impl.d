lib/gripps/cost_model.ml: Prng
