lib/gripps/databank.ml: Array Printf Prng String
