lib/gripps/workload.mli: Numeric Prng Sched_core
