lib/gripps/network.mli: Motif
