lib/gripps/scanner.ml: Array Char Databank Int List Motif Set String
