(** The sequence-comparison engine: matches motif sets against databank
    sequences ("sequence comparison servers … capable of accepting a set of
    motifs and identifying matches over any subset of the databank",
    Section 2).

    Two independent implementations of the match predicate are provided:
    the production backtracking matcher and a dynamic-programming reference
    used by the property tests. *)

type stats = {
  invocations : int;  (** number of (motif, sequence) scans *)
  positions_tried : int;  (** match attempts, the unit of real work *)
  matches : int;  (** successful motif occurrences *)
}

val matches_at : Motif.t -> string -> int -> bool
(** Does the motif match the sequence starting exactly at this offset? *)

val matches_at_reference : Motif.t -> string -> int -> bool
(** Independent DP implementation of the same predicate (tests only). *)

val count_matches : Motif.t -> string -> int
(** Number of offsets at which the motif matches. *)

val scan : Motif.t list -> Databank.t -> stats
(** Full scan of a motif set against a databank block — the unit of work
    whose divisibility Figure 1 of the paper establishes. *)
