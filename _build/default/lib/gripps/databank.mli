(** Synthetic protein databanks.

    Stands in for the reference amino-acid sequence databases of the GriPPS
    application (Section 2 of the paper: "large reference databases of amino
    acid sequences, located at fixed locations in a distributed
    heterogeneous computing platform").  Sequences are drawn over the
    standard 20-letter amino-acid alphabet with lengths clustered around a
    configurable mean, mimicking protein length distributions. *)

val alphabet : string
(** The 20 standard amino-acid one-letter codes. *)

type t = {
  name : string;
  sequences : string array;
}

val generate :
  Prng.t -> name:string -> num_sequences:int -> mean_length:int -> t
(** Lengths are [mean_length/2 + geometric-ish noise]; every residue is
    uniform over {!alphabet}. *)

val num_sequences : t -> int

val total_residues : t -> int

val sub : t -> Prng.t -> size:int -> t
(** A random sub-databank of [size] sequences drawn without replacement —
    the paper's partitioning protocol for the divisibility experiments
    ("the sequences chosen randomly from the complete set").
    @raise Invalid_argument if [size] exceeds the databank size. *)
