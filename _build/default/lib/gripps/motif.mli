(** PROSITE-style protein motifs.

    Motifs are the "compact representations of amino acid patterns that are
    biologically significant" of Section 2.  The supported language is the
    core of PROSITE pattern syntax:

    - [A]        — an exact residue;
    - [x]        — any residue;
    - [\[ACD\]]  — any of the listed residues;
    - [{P}]      — any residue except the listed ones;
    - [e(n)]     — element [e] repeated exactly [n] times;
    - [e(n,m)]   — element [e] repeated [n] to [m] times;

    elements being separated by dashes, e.g. ["C-x(2,4)-\[ST\]-{P}-G"]. *)

type atom =
  | Any
  | Exact of char
  | One_of of string
  | Not_of of string

type element = {
  atom : atom;
  min_rep : int;
  max_rep : int;  (** [>= min_rep] *)
}

type t = {
  name : string;
  elements : element list;
}

val of_string : ?name:string -> string -> t
(** Parse PROSITE syntax.  @raise Invalid_argument on malformed patterns. *)

val to_string : t -> string
(** Round-trips with {!of_string}. *)

val min_length : t -> int
(** Shortest subject length the motif can match. *)

val max_length : t -> int
(** Longest match length. *)

val random : Prng.t -> name:string -> t
(** A random plausible motif: 3–8 elements mixing exact residues,
    classes, negations and bounded wildcard gaps. *)

val prosite_examples : t list
(** A small library of real PROSITE patterns (by accession): the
    N-glycosylation site PS00001, protein-kinase phosphorylation sites
    PS00004–PS00007, the N-myristoylation site PS00008 and the C2H2 zinc
    finger PS00028 — authentic instances of the motif language the GriPPS
    requests carry. *)

val random_selective : Prng.t -> name:string -> t
(** A random motif with the selectivity of real PROSITE patterns: 6–12
    mostly-exact elements, so that matches against random sequences are
    rare events.  Used by the communication-cost accounting, where the
    size of the match report matters. *)
