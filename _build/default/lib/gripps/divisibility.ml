type point = { size : int; time : float }

type regression = { slope : float; intercept : float; r2 : float }

let linear_regression points =
  let n = List.length points in
  if n < 2 then invalid_arg "Divisibility.linear_regression: need at least two points";
  let xs = List.map (fun p -> float_of_int p.size) points in
  let ys = List.map (fun p -> p.time) points in
  let sum = List.fold_left ( +. ) 0.0 in
  let nf = float_of_int n in
  let sx = sum xs and sy = sum ys in
  let sxx = sum (List.map (fun x -> x *. x) xs) in
  let sxy = sum (List.map2 ( *. ) xs ys) in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-9 then
    invalid_arg "Divisibility.linear_regression: need at least two distinct sizes";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let mean_y = sy /. nf in
  let ss_tot = sum (List.map (fun y -> (y -. mean_y) ** 2.0) ys) in
  let ss_res =
    sum (List.map2 (fun x y -> (y -. (intercept +. (slope *. x))) ** 2.0) xs ys)
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

(* Simulated experiments at the paper's scale. *)

let simulated_sweep ~seed ~iterations ~steps ~full ~time_of =
  let rng = Prng.create seed in
  List.concat_map
    (fun k ->
      let size = full * k / steps in
      List.init iterations (fun _ -> { size; time = time_of rng size }))
    (List.init steps (fun k -> k + 1))

let sequence_experiment ?(seed = 42) ?(iterations = 10) ?(steps = 20) () =
  simulated_sweep ~seed ~iterations ~steps ~full:Cost_model.reference_sequences
    ~time_of:(fun rng size ->
      Cost_model.block_time_noisy Cost_model.default rng ~relative_noise:0.03
        ~num_sequences:size ~num_motifs:Cost_model.reference_motifs)

let motif_experiment ?(seed = 43) ?(iterations = 10) ?(steps = 20) () =
  simulated_sweep ~seed ~iterations ~steps ~full:Cost_model.reference_motifs
    ~time_of:(fun rng size ->
      Cost_model.block_time_noisy Cost_model.default rng ~relative_noise:0.03
        ~num_sequences:Cost_model.reference_sequences ~num_motifs:size)

(* Measured experiments: real scans, timed in process CPU seconds so that
   other load on the machine does not pollute the regression. *)

let cpu_time f =
  let start = (Unix.times ()).Unix.tms_utime in
  let result = f () in
  (result, (Unix.times ()).Unix.tms_utime -. start)

let measured_setup ~seed ~num_sequences ~num_motifs =
  let rng = Prng.create seed in
  let bank =
    Databank.generate rng ~name:"measured" ~num_sequences ~mean_length:120
  in
  let motifs =
    List.init num_motifs (fun k -> Motif.random rng ~name:(Printf.sprintf "M%d" k))
  in
  (rng, bank, motifs)

let measured_sequence_experiment ?(seed = 44) ?(num_sequences = 800) ?(num_motifs = 12)
    ?(steps = 8) () =
  let rng, bank, motifs = measured_setup ~seed ~num_sequences ~num_motifs in
  List.map
    (fun k ->
      let size = num_sequences * (k + 1) / steps in
      let block = Databank.sub bank rng ~size in
      let _, time = cpu_time (fun () -> Scanner.scan motifs block) in
      { size; time })
    (List.init steps (fun k -> k))

let measured_motif_experiment ?(seed = 45) ?(num_sequences = 800) ?(num_motifs = 12)
    ?(steps = 6) () =
  let _rng, bank, motifs = measured_setup ~seed ~num_sequences ~num_motifs in
  let motifs = Array.of_list motifs in
  List.map
    (fun k ->
      let size = max 1 (num_motifs * (k + 1) / steps) in
      let subset = Array.to_list (Array.sub motifs 0 size) in
      let _, time = cpu_time (fun () -> Scanner.scan subset bank) in
      { size; time })
    (List.init steps (fun k -> k))
