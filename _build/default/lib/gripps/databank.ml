let alphabet = "ACDEFGHIKLMNPQRSTVWY"

type t = { name : string; sequences : string array }

let random_sequence rng ~mean_length =
  (* Half deterministic, half exponential: protein lengths have a heavy
     right tail but a hard minimum. *)
  let base = mean_length / 2 in
  let extra = int_of_float (Prng.exponential rng ~mean:(float_of_int (mean_length - base))) in
  let len = max 8 (base + extra) in
  String.init len (fun _ -> alphabet.[Prng.int rng (String.length alphabet)])

let generate rng ~name ~num_sequences ~mean_length =
  { name; sequences = Array.init num_sequences (fun _ -> random_sequence rng ~mean_length) }

let num_sequences t = Array.length t.sequences

let total_residues t =
  Array.fold_left (fun acc s -> acc + String.length s) 0 t.sequences

let sub t rng ~size =
  let n = num_sequences t in
  if size > n then invalid_arg "Databank.sub: size exceeds databank";
  let indices = Array.init n (fun i -> i) in
  Prng.shuffle rng indices;
  {
    name = Printf.sprintf "%s[%d/%d]" t.name size n;
    sequences = Array.init size (fun k -> t.sequences.(indices.(k)));
  }
