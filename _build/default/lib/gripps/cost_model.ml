type t = { base : float; bank : float; work : float }

let reference_sequences = 38_000
let reference_motifs = 300

(* Solve the three calibration equations of the interface comment:
   T(0⁺, 300) = 1.1;  T(38000, m) intercept = 10.5;  T(38000, 300) = 110. *)
let default =
  let base = 1.1 in
  let bank = (10.5 -. base) /. float_of_int reference_sequences in
  let work =
    (110.0 -. 10.5)
    /. (float_of_int reference_sequences *. float_of_int reference_motifs)
  in
  { base; bank; work }

let block_time t ~num_sequences ~num_motifs =
  let s = float_of_int num_sequences and m = float_of_int num_motifs in
  t.base +. (t.bank *. s) +. (t.work *. s *. m)

let block_time_noisy t rng ~relative_noise ~num_sequences ~num_motifs =
  let clean = block_time t ~num_sequences ~num_motifs in
  let factor = 1.0 +. (relative_noise *. ((2.0 *. Prng.float rng) -. 1.0)) in
  clean *. factor
