type stats = { invocations : int; positions_tried : int; matches : int }

let atom_matches atom c =
  match atom with
  | Motif.Any -> true
  | Motif.Exact e -> Char.equal e c
  | Motif.One_of body -> String.contains body c
  | Motif.Not_of body -> not (String.contains body c)

(* Backtracking matcher: for each element, try every admissible repetition
   count.  Repetition counts are tried shortest-first; PROSITE semantics is
   existential so the order does not matter. *)
let matches_at motif seq pos =
  let len = String.length seq in
  let rec elems es pos =
    match es with
    | [] -> true
    | (e : Motif.element) :: rest ->
      (* Consume k in [min_rep, max_rep] occurrences of the atom. *)
      let rec consume k pos =
        if k >= e.min_rep && elems rest pos then true
        else if k >= e.max_rep then false
        else if pos < len && atom_matches e.atom seq.[pos] then consume (k + 1) (pos + 1)
        else false
      in
      consume 0 pos
  in
  pos >= 0 && pos <= len && elems motif.Motif.elements pos

(* Reference implementation: set-of-positions propagation (equivalent to
   running the obvious NFA breadth-first).  Used by tests to cross-check
   the backtracking matcher. *)
let matches_at_reference motif seq pos =
  let len = String.length seq in
  if pos < 0 || pos > len then false
  else begin
    let module IS = Set.Make (Int) in
    let step_atom atom positions =
      IS.fold
        (fun p acc ->
          if p < len && atom_matches atom seq.[p] then IS.add (p + 1) acc else acc)
        positions IS.empty
    in
    let step_element (e : Motif.element) positions =
      (* Exactly min_rep mandatory repetitions… *)
      let rec mandatory k ps = if k = 0 then ps else mandatory (k - 1) (step_atom e.atom ps) in
      let ps = mandatory e.min_rep positions in
      (* …then up to (max_rep - min_rep) optional ones. *)
      let rec optional k ps acc =
        if k = 0 then acc
        else begin
          let next = step_atom e.atom ps in
          optional (k - 1) next (IS.union acc next)
        end
      in
      optional (e.max_rep - e.min_rep) ps ps
    in
    let final = List.fold_left (fun ps e -> step_element e ps) (IS.singleton pos) motif.Motif.elements in
    not (IS.is_empty final)
  end

let count_matches motif seq =
  let count = ref 0 in
  for pos = 0 to String.length seq - 1 do
    if matches_at motif seq pos then incr count
  done;
  !count

let scan motifs bank =
  let invocations = ref 0 and positions = ref 0 and matches = ref 0 in
  List.iter
    (fun motif ->
      Array.iter
        (fun seq ->
          incr invocations;
          positions := !positions + String.length seq;
          matches := !matches + count_matches motif seq)
        bank.Databank.sequences)
    motifs;
  { invocations = !invocations; positions_tried = !positions; matches = !matches }
