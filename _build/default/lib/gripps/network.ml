type t = { latency : float; bandwidth : float }

let fast_ethernet = { latency = 100e-6; bandwidth = 12.5e6 }
let gigabit = { latency = 50e-6; bandwidth = 125e6 }

let transfer_time net ~bytes = net.latency +. (float_of_int bytes /. net.bandwidth)

(* PROSITE text plus a small per-motif header (name, ids, lengths). *)
let per_motif_framing = 32

let motif_set_bytes motifs =
  List.fold_left
    (fun acc m -> acc + String.length (Motif.to_string m) + per_motif_framing)
    0 motifs

(* One occurrence record: sequence id, offset, motif id, score. *)
let bytes_per_match = 16

let result_bytes ~matches = matches * bytes_per_match

type accounting = {
  request_bytes : int;
  request_time : float;
  response_bytes : int;
  response_time : float;
  compute_time : float;
  overhead_fraction : float;
}

let full_request_accounting ?(network = fast_ethernet) ?(seed = 46) () =
  let rng = Prng.create seed in
  let motifs =
    (* Real PROSITE patterns are long and specific; an unselective random
       motif would flood the report with spurious matches. *)
    List.init Cost_model.reference_motifs (fun k ->
        Motif.random_selective rng ~name:(Printf.sprintf "M%d" k))
  in
  let request_bytes = motif_set_bytes motifs in
  (* Estimate the match density on a small sample and extrapolate to the
     full databank, rather than scanning 38 000 sequences here. *)
  let sample = Databank.generate rng ~name:"sample" ~num_sequences:60 ~mean_length:120 in
  let stats = Scanner.scan motifs sample in
  let matches_per_seq =
    float_of_int stats.Scanner.matches /. float_of_int (Databank.num_sequences sample)
  in
  let total_matches =
    int_of_float (matches_per_seq *. float_of_int Cost_model.reference_sequences)
  in
  let response_bytes = result_bytes ~matches:total_matches in
  let request_time = transfer_time network ~bytes:request_bytes in
  let response_time = transfer_time network ~bytes:response_bytes in
  let compute_time =
    Cost_model.block_time Cost_model.default
      ~num_sequences:Cost_model.reference_sequences
      ~num_motifs:Cost_model.reference_motifs
  in
  {
    request_bytes;
    request_time;
    response_bytes;
    response_time;
    compute_time;
    overhead_fraction = (request_time +. response_time) /. compute_time;
  }
