(** Calibrated execution-time model of a GriPPS invocation.

    The paper's Figure 1 measurements constrain three quantities on the
    authors' reference machine:

    - the full run (38 000 sequences × ~300 motifs) takes ≈ 110 s;
    - partitioning the sequence set leaves a fixed overhead of ≈ 1.1 s per
      invocation (regression intercept of Figure 1a);
    - partitioning the motif set leaves a fixed overhead of ≈ 10.5 s per
      invocation (regression intercept of Figure 1b).

    A single bilinear model reproduces all three:

    [T(s, m) = base + bank·s + work·s·m]

    where [s] is the sequence block size and [m] the motif count.  The
    Figure 1a intercept is [base]; the Figure 1b intercept is
    [base + bank·38000]; fitting gives [base = 1.1 s],
    [bank = 9.4/38000 s/seq] (per-sequence databank handling done once per
    invocation whatever the motif count) and
    [work = 99.5/(38000·300) s/(seq·motif)].  This reproduces the shape of
    both figures and the asymmetry the paper stresses: splitting the motif
    set re-pays the databank pass on every piece, splitting the sequence
    set does not. *)

type t = {
  base : float;  (** per-invocation fixed cost, seconds *)
  bank : float;  (** per-sequence databank handling, seconds *)
  work : float;  (** per-(sequence×motif) comparison cost, seconds *)
}

val default : t
(** The calibration above ([base = 1.1], [bank = 9.4/38000],
    [work = 99.5/11 400 000]). *)

val reference_sequences : int
(** 38 000, the paper's databank size. *)

val reference_motifs : int
(** 300, the paper's motif-set size. *)

val block_time : t -> num_sequences:int -> num_motifs:int -> float
(** Execution time of one invocation, in seconds. *)

val block_time_noisy :
  t -> Prng.t -> relative_noise:float -> num_sequences:int -> num_motifs:int -> float
(** Same with multiplicative uniform noise [±relative_noise], mimicking the
    measurement scatter visible in Figure 1. *)
