(** Communication-cost model for the GriPPS platform.

    Section 2's third experiment: "we performed a set of experiments to
    study the time needed to send the full motif set across a typical
    cluster interconnection network, and the time to report the results …
    these communication overhead costs are negligible, compared to the
    computational workload".  This module reproduces that accounting with
    a latency+bandwidth network model and the serialized sizes of actual
    motif sets and match reports, justifying why the scheduling model (and
    this library) neglects data-transfer costs. *)

type t = {
  latency : float;  (** seconds per message *)
  bandwidth : float;  (** bytes per second *)
}

val fast_ethernet : t
(** 100 Mb/s switched Ethernet, 100 µs latency — a typical 2004 cluster
    interconnect (the paper's era). *)

val gigabit : t
(** 1 Gb/s, 50 µs latency. *)

val transfer_time : t -> bytes:int -> float
(** [latency + bytes/bandwidth] seconds. *)

val motif_set_bytes : Motif.t list -> int
(** Serialized size of a motif set (PROSITE text plus per-motif framing). *)

val result_bytes : matches:int -> int
(** Size of a match report: one fixed-size record per occurrence. *)

type accounting = {
  request_bytes : int;
  request_time : float;  (** motif set transfer *)
  response_bytes : int;
  response_time : float;  (** match report transfer *)
  compute_time : float;  (** full scan per {!Cost_model} *)
  overhead_fraction : float;  (** (request + response) / compute *)
}

val full_request_accounting : ?network:t -> ?seed:int -> unit -> accounting
(** The paper's scenario: a full motif set (≈300 motifs, randomly
    generated) against the full databank, with a match report sized from
    the observed match density of the synthetic scanner. *)
