(** Deterministic pseudo-random number generator (SplitMix64).

    Every synthetic artifact in the reproduction — databanks, motifs,
    request streams, noise on simulated timings — is derived from an
    explicit seed through this module, so experiments are reproducible
    bit-for-bit regardless of OCaml stdlib changes. *)

type t

val create : int -> t
(** A generator seeded with the given integer. *)

val copy : t -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (inter-arrival times of
    Poisson request streams). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
