(** The divisibility experiments of Section 2 (Figure 1a and Figure 1b).

    Each experiment sweeps a partition size, runs ten iterations per size
    with randomly drawn subsets, and records the block execution time; a
    linear regression then quantifies the fixed overhead (the paper reports
    1.1 s for sequence partitioning and 10.5 s for motif partitioning).

    Two modes are provided: [simulated] uses the calibrated {!Cost_model}
    at the paper's scale (38 000 sequences, 300 motifs) with measurement
    noise; [measured] actually runs the {!Scanner} on a synthetic databank
    and measures wall-clock time, demonstrating the linearity claim on real
    computation rather than on a model. *)

type point = {
  size : int;  (** block size (sequences for 1a, motifs for 1b) *)
  time : float;  (** seconds *)
}

type regression = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear_regression : point list -> regression
(** Ordinary least squares.  @raise Invalid_argument on fewer than two
    distinct sizes. *)

val sequence_experiment :
  ?seed:int -> ?iterations:int -> ?steps:int -> unit -> point list
(** Figure 1a, simulated: block sizes [k/steps · 38000] for [k = 1..steps],
    [iterations] draws each (paper: steps = 20, iterations = 10). *)

val motif_experiment :
  ?seed:int -> ?iterations:int -> ?steps:int -> unit -> point list
(** Figure 1b, simulated: motif subsets of size [k/steps · 300]. *)

val measured_sequence_experiment :
  ?seed:int -> ?num_sequences:int -> ?num_motifs:int -> ?steps:int -> unit -> point list
(** Figure 1a on real computation: generates a databank and motif set,
    scans growing sequence blocks with {!Scanner.scan} and measures
    wall-clock seconds.  Defaults are laptop-scale (800 sequences,
    12 motifs). *)

val measured_motif_experiment :
  ?seed:int -> ?num_sequences:int -> ?num_motifs:int -> ?steps:int -> unit -> point list
