#!/bin/sh
# End-to-end check of the serving subsystem through the dlsched binary:
# generate a diurnal trace, replay it under a virtual clock, and drive the
# serve command protocol over stdin/stdout.  Run by `dune runtest`.
set -eu

DLSCHED=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "serve_e2e: FAIL: $*" >&2; exit 1; }

# --- replay a generated 200-request diurnal trace -------------------------

"$DLSCHED" trace --profile diurnal --requests 200 --seed 42 -o "$WORK/trace.txt" \
  > /dev/null
grep -q '^trace v1$' "$WORK/trace.txt" || fail "trace missing header"
[ "$(grep -c '^req ' "$WORK/trace.txt")" -eq 200 ] || fail "trace not 200 requests"

"$DLSCHED" replay "$WORK/trace.txt" --policy mct --report "$WORK/report.txt" \
  > "$WORK/replay.out"
grep -q 'p50=.*p95=.*p99=' "$WORK/report.txt" || fail "report missing quantiles"
grep -q '^stretch ' "$WORK/report.txt" || fail "report missing stretch histogram"
grep -q 'requests_completed  *200' "$WORK/report.txt" || fail "not all requests completed"
grep -q '^schedule valid' "$WORK/replay.out" || fail "replay schedule invalid"

"$DLSCHED" replay "$WORK/trace.txt" --policy fair --json > "$WORK/replay-json.out"
grep -q '"stretch"' "$WORK/replay-json.out" || fail "json report missing stretch"
grep -q '^schedule valid' "$WORK/replay-json.out" || fail "json replay schedule invalid"

"$DLSCHED" replay "$WORK/trace.txt" --policy mct --batch 30 > "$WORK/replay-batch.out"
grep -q '^schedule valid' "$WORK/replay-batch.out" || fail "batched replay invalid"

# --- fault injection: trace generation and replay -------------------------

"$DLSCHED" trace --profile poisson --requests 40 --seed 7 --faults \
  --mtbf 60 --mttr 10 -o "$WORK/faulty.txt" > "$WORK/faulty.gen"
grep -q 'fault events' "$WORK/faulty.gen" || fail "trace gen did not report fault events"
FAILS=$(grep -c '^fail ' "$WORK/faulty.txt")
RECOVERS=$(grep -c '^recover ' "$WORK/faulty.txt")
[ "$FAILS" -ge 1 ] || fail "faulted trace has no fail events"
[ "$FAILS" -eq "$RECOVERS" ] || fail "fail/recover counts differ ($FAILS vs $RECOVERS)"

# Every failure in the generated overlay is recovered, so replay must still
# complete every request and produce a valid schedule under both regimes.
"$DLSCHED" replay "$WORK/faulty.txt" --policy mct > "$WORK/replay-fault.out"
grep -q '^schedule valid' "$WORK/replay-fault.out" || fail "faulted replay invalid"
"$DLSCHED" replay "$WORK/faulty.txt" --policy srpt --lost-work preserved \
  > "$WORK/replay-fault-p.out"
grep -q '^schedule valid' "$WORK/replay-fault-p.out" \
  || fail "preserved-work faulted replay invalid"

# --- loading errors exit nonzero with one line, not a backtrace -----------

if "$DLSCHED" solve "$WORK/nonexistent.txt" > /dev/null 2> "$WORK/err.txt"; then
  fail "solve on a missing file should fail"
fi
printf 'trace v1\nmachines 0\n' > "$WORK/bad.txt"
if "$DLSCHED" replay "$WORK/bad.txt" > /dev/null 2> "$WORK/err.txt"; then
  fail "replay on a malformed trace should fail"
fi
grep -q 'line 2' "$WORK/err.txt" || fail "malformed-trace error not line-numbered"
[ "$(wc -l < "$WORK/err.txt")" -eq 1 ] || fail "expected a one-line error"

# --- serve: the line protocol over stdin/stdout ---------------------------

"$DLSCHED" serve --clock virtual --seed 42 --policy mct > "$WORK/serve.out" \
  2> /dev/null <<'EOF'
# comments and blank lines are ignored

submit a 0 40
submit b 1 20
submit a 0 10
status
tick 10
fail 0
status
recover 0
metrics
drain
status
metrics json
bogus
quit
EOF

expect() { grep -q "$1" "$WORK/serve.out" || fail "serve: no \"$1\""; }
expect '^hello dlsched proto=2'
expect '^ok submitted a job=0'
expect '^ok submitted b job=1'
expect '^err bad_request .*duplicate'
expect '^ok now=0 submitted=2 active=0 completed=0'
expect '^ok now=10'
expect '^ok machine 0 down up='
expect 'up=[0-9]*/[0-9]* starved='
expect '^ok machine 0 up up='
expect '^stretch '
expect '^ok drained .*completed=2'
expect '^ok now=.* submitted=2 active=0 completed=2'
expect '"requests_completed":2'
expect '^err unknown_command'
expect '^ok bye'

# --- serve: socket daemon survives a client that vanishes mid-session -----

SOCK="$WORK/dlsched.sock"
"$DLSCHED" serve --socket "$SOCK" --clock virtual --seed 42 --policy mct \
  > "$WORK/daemon.out" 2>&1 &
DAEMON=$!

if ! python3 - "$SOCK" <<'PYEOF'
import socket, sys, time
path = sys.argv[1]
for _ in range(100):
    try:
        s = socket.socket(socket.AF_UNIX)
        s.connect(path)
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("daemon socket never appeared")
# Client 1: submit work, then vanish without reading a byte of the reply.
# The daemon's write to this dead socket must not kill it (EPIPE, not SIGPIPE).
s.sendall(b"submit a 0 40\nstatus\n")
s.close()
time.sleep(0.2)
# Client 2: the daemon must still be serving, with client 1's submission kept.
c = socket.socket(socket.AF_UNIX)
c.connect(path)
f = c.makefile("rw")
assert f.readline().startswith("hello dlsched proto=2"), "banner"
def rt(cmd):
    f.write(cmd + "\n")
    f.flush()
    return f.readline().strip()
r = rt("fail 0")
assert r.startswith("ok machine 0 down"), r
r = rt("recover 0")
assert r.startswith("ok machine 0 up"), r
r = rt("status")
assert "submitted=1" in r and "starved=0" in r, r
r = rt("drain")
assert r.startswith("ok drained"), r
r = rt("quit")
assert r == "ok bye", r
c.close()
PYEOF
then
  kill "$DAEMON" 2> /dev/null || true
  fail "socket daemon did not survive a vanished client"
fi

i=0
while kill -0 "$DAEMON" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { kill "$DAEMON"; fail "daemon did not exit after quit"; }
  sleep 0.1
done
wait "$DAEMON" || fail "daemon exited nonzero"
[ ! -e "$SOCK" ] || fail "socket file not cleaned up on exit"

# --- serve: two concurrent clients share one engine -----------------------

SOCK2="$WORK/dlsched2.sock"
"$DLSCHED" serve --socket "$SOCK2" --clock virtual --seed 42 --policy mct \
  > "$WORK/daemon2.out" 2>&1 &
DAEMON2=$!

if ! python3 - "$SOCK2" <<'PYEOF'
import socket, sys, threading, time
path = sys.argv[1]

def connect():
    for _ in range(100):
        try:
            s = socket.socket(socket.AF_UNIX)
            s.connect(path)
            return s
        except OSError:
            time.sleep(0.1)
    sys.exit("daemon socket never appeared")

errors = []

def session(tag, n):
    # Each client submits n requests and interleaves fail/recover churn;
    # the engine behind the shared mutex must accept every command.
    try:
        s = connect()
        f = s.makefile("rw")
        assert f.readline().startswith("hello dlsched proto=2"), "banner"
        def rt(cmd):
            f.write(cmd + "\n")
            f.flush()
            return f.readline().strip()
        for i in range(n):
            r = rt("submit %s%d 0 %d" % (tag, i, 10 + i))
            assert r.startswith("ok submitted"), r
            if i % 3 == 0:
                assert rt("fail 1").startswith("ok machine 1 down"), "fail"
                assert rt("recover 1").startswith("ok machine 1 up"), "recover"
        s.close()
    except Exception as e:
        errors.append("%s: %r" % (tag, e))

t1 = threading.Thread(target=session, args=("a", 8))
t2 = threading.Thread(target=session, args=("b", 8))
t1.start(); t2.start(); t1.join(); t2.join()
if errors:
    sys.exit("; ".join(errors))

# A third session sees the union of both clients' submissions and can
# drain them all: no command was lost or interleaved mid-line.
c = connect()
f = c.makefile("rw")
assert f.readline().startswith("hello dlsched proto=2"), "banner"
def rt(cmd):
    f.write(cmd + "\n")
    f.flush()
    return f.readline().strip()
r = rt("status")
assert "submitted=16" in r, r
r = rt("drain")
assert r.startswith("ok drained") and "completed=16" in r, r
r = rt("quit")
assert r == "ok bye", r
c.close()
PYEOF
then
  kill "$DAEMON2" 2> /dev/null || true
  fail "concurrent socket clients failed"
fi

i=0
while kill -0 "$DAEMON2" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { kill "$DAEMON2"; fail "daemon2 did not exit after quit"; }
  sleep 0.1
done
wait "$DAEMON2" || fail "daemon2 exited nonzero"
[ ! -e "$SOCK2" ] || fail "socket file 2 not cleaned up on exit"

# --- serve: SIGTERM shuts the daemon down and removes the socket ----------

SOCK3="$WORK/dlsched3.sock"
"$DLSCHED" serve --socket "$SOCK3" --clock virtual --seed 42 --policy mct \
  > "$WORK/daemon3.out" 2>&1 &
DAEMON3=$!
i=0
while [ ! -S "$SOCK3" ]; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { kill "$DAEMON3"; fail "daemon3 socket never appeared"; }
  sleep 0.1
done
kill -TERM "$DAEMON3"
i=0
while kill -0 "$DAEMON3" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { kill -9 "$DAEMON3"; fail "daemon3 ignored SIGTERM"; }
  sleep 0.1
done
wait "$DAEMON3" || fail "daemon3 exited nonzero after SIGTERM"
[ ! -e "$SOCK3" ] || fail "socket file not cleaned up after SIGTERM"

echo "serve_e2e: PASS"
