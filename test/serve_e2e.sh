#!/bin/sh
# End-to-end check of the serving subsystem through the dlsched binary:
# generate a diurnal trace, replay it under a virtual clock, and drive the
# serve command protocol over stdin/stdout.  Run by `dune runtest`.
set -eu

DLSCHED=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "serve_e2e: FAIL: $*" >&2; exit 1; }

# --- replay a generated 200-request diurnal trace -------------------------

"$DLSCHED" trace --profile diurnal --requests 200 --seed 42 -o "$WORK/trace.txt" \
  > /dev/null
grep -q '^trace v1$' "$WORK/trace.txt" || fail "trace missing header"
[ "$(grep -c '^req ' "$WORK/trace.txt")" -eq 200 ] || fail "trace not 200 requests"

"$DLSCHED" replay "$WORK/trace.txt" --policy mct --report "$WORK/report.txt" \
  > "$WORK/replay.out"
grep -q 'p50=.*p95=.*p99=' "$WORK/report.txt" || fail "report missing quantiles"
grep -q '^stretch ' "$WORK/report.txt" || fail "report missing stretch histogram"
grep -q 'requests_completed  *200' "$WORK/report.txt" || fail "not all requests completed"
grep -q '^schedule valid' "$WORK/replay.out" || fail "replay schedule invalid"

"$DLSCHED" replay "$WORK/trace.txt" --policy fair --json > "$WORK/replay-json.out"
grep -q '"stretch"' "$WORK/replay-json.out" || fail "json report missing stretch"
grep -q '^schedule valid' "$WORK/replay-json.out" || fail "json replay schedule invalid"

"$DLSCHED" replay "$WORK/trace.txt" --policy mct --batch 30 > "$WORK/replay-batch.out"
grep -q '^schedule valid' "$WORK/replay-batch.out" || fail "batched replay invalid"

# --- loading errors exit nonzero with one line, not a backtrace -----------

if "$DLSCHED" solve "$WORK/nonexistent.txt" > /dev/null 2> "$WORK/err.txt"; then
  fail "solve on a missing file should fail"
fi
printf 'trace v1\nmachines 0\n' > "$WORK/bad.txt"
if "$DLSCHED" replay "$WORK/bad.txt" > /dev/null 2> "$WORK/err.txt"; then
  fail "replay on a malformed trace should fail"
fi
grep -q 'line 2' "$WORK/err.txt" || fail "malformed-trace error not line-numbered"
[ "$(wc -l < "$WORK/err.txt")" -eq 1 ] || fail "expected a one-line error"

# --- serve: the line protocol over stdin/stdout ---------------------------

"$DLSCHED" serve --clock virtual --seed 42 --policy mct > "$WORK/serve.out" \
  2> /dev/null <<'EOF'
# comments and blank lines are ignored

submit a 0 40
submit b 1 20
submit a 0 10
status
tick 10
metrics
drain
status
metrics json
bogus
quit
EOF

expect() { grep -q "$1" "$WORK/serve.out" || fail "serve: no \"$1\""; }
expect '^ok submitted a job=0'
expect '^ok submitted b job=1'
expect '^err .*duplicate'
expect '^ok now=0 submitted=2 active=0 completed=0'
expect '^ok now=10'
expect '^stretch '
expect '^ok drained .*completed=2'
expect '^ok now=.* submitted=2 active=0 completed=2'
expect '"requests_completed":2'
expect '^err unknown command'
expect '^ok bye'

echo "serve_e2e: PASS"
