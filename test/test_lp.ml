(* Tests for the two-phase simplex solver, on both the exact-rational and
   the float instances.  Random LPs are generated feasible-by-construction
   so that optimality and feasibility can be checked independently of the
   solver under test. *)

module R = Numeric.Rat
module P = Lp.Problem
module Sx = Lp.Simplex.Exact
module Sf = Lp.Simplex.Approx

let rat = Alcotest.testable R.pp R.equal

let q = R.of_ints

let solve_exact ?(dir = P.Minimize) ~vars ~obj constrs =
  let st = P.Builder.create () in
  for i = 0 to vars - 1 do
    ignore (P.Builder.fresh_var st ~name:(Printf.sprintf "x%d" i))
  done;
  List.iter (fun (terms, rel, rhs) -> P.Builder.add_constr st terms rel rhs) constrs;
  P.Builder.set_objective st dir obj;
  let p = P.Builder.finish st in
  (p, Sx.solve p)

let expect_optimal = function
  | Sx.Optimal s -> s
  | Sx.Infeasible -> Alcotest.fail "expected optimal, got infeasible"
  | Sx.Unbounded -> Alcotest.fail "expected optimal, got unbounded"

(* ------------------------------------------------------------------ *)
(* Hand-checked LPs                                                    *)
(* ------------------------------------------------------------------ *)

(* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  (classic Dantzig
   example; optimum 36 at (2,6)). *)
let test_dantzig () =
  let _, out =
    solve_exact ~dir:P.Maximize ~vars:2
      ~obj:[ (0, R.of_int 3); (1, R.of_int 5) ]
      [ ([ (0, R.one) ], P.Le, R.of_int 4);
        ([ (1, R.of_int 2) ], P.Le, R.of_int 12);
        ([ (0, R.of_int 3); (1, R.of_int 2) ], P.Le, R.of_int 18)
      ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "objective" (R.of_int 36) s.objective;
  Alcotest.(check rat) "x" (R.of_int 2) s.values.(0);
  Alcotest.(check rat) "y" (R.of_int 6) s.values.(1)

(* min x + y s.t. x + 2y >= 4; 3x + y >= 6 → optimum at intersection
   (8/5, 6/5), value 14/5. *)
let test_ge_constraints () =
  let _, out =
    solve_exact ~vars:2
      ~obj:[ (0, R.one); (1, R.one) ]
      [ ([ (0, R.one); (1, R.of_int 2) ], P.Ge, R.of_int 4);
        ([ (0, R.of_int 3); (1, R.one) ], P.Ge, R.of_int 6)
      ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "objective" (q 14 5) s.objective;
  Alcotest.(check rat) "x" (q 8 5) s.values.(0);
  Alcotest.(check rat) "y" (q 6 5) s.values.(1)

(* Equality constraints: min 2x + 3y s.t. x + y = 10; x - y <= 2. *)
let test_eq_constraints () =
  let _, out =
    solve_exact ~vars:2
      ~obj:[ (0, R.of_int 2); (1, R.of_int 3) ]
      [ ([ (0, R.one); (1, R.one) ], P.Eq, R.of_int 10);
        ([ (0, R.one); (1, R.minus_one) ], P.Le, R.of_int 2)
      ]
  in
  let s = expect_optimal out in
  (* Cheapest is to put as much as possible on x: x - y <= 2 and x + y = 10
     give x = 6, y = 4, objective 24. *)
  Alcotest.(check rat) "objective" (R.of_int 24) s.objective;
  Alcotest.(check rat) "x" (R.of_int 6) s.values.(0);
  Alcotest.(check rat) "y" (R.of_int 4) s.values.(1)

let test_infeasible () =
  let _, out =
    solve_exact ~vars:1
      ~obj:[ (0, R.one) ]
      [ ([ (0, R.one) ], P.Ge, R.of_int 5); ([ (0, R.one) ], P.Le, R.of_int 3) ]
  in
  (match out with
   | Sx.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible")

let test_infeasible_eq () =
  let _, out =
    solve_exact ~vars:2
      ~obj:[ (0, R.one) ]
      [ ([ (0, R.one); (1, R.one) ], P.Eq, R.of_int 1);
        ([ (0, R.of_int 2); (1, R.of_int 2) ], P.Eq, R.of_int 3)
      ]
  in
  (match out with
   | Sx.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  let _, out =
    solve_exact ~dir:P.Maximize ~vars:2
      ~obj:[ (0, R.one); (1, R.one) ]
      [ ([ (0, R.one); (1, R.minus_one) ], P.Le, R.of_int 1) ]
  in
  (match out with
   | Sx.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded")

(* Negative right-hand side must be normalized, not rejected. *)
let test_negative_rhs () =
  let _, out =
    solve_exact ~vars:2
      ~obj:[ (0, R.one); (1, R.one) ]
      [ ([ (0, R.minus_one); (1, R.minus_one) ], P.Le, R.of_int (-4)) ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "objective" (R.of_int 4) s.objective

(* Degenerate LP (redundant constraint through the optimum). *)
let test_degenerate () =
  let _, out =
    solve_exact ~dir:P.Maximize ~vars:2
      ~obj:[ (0, R.one); (1, R.one) ]
      [ ([ (0, R.one) ], P.Le, R.of_int 2);
        ([ (1, R.one) ], P.Le, R.of_int 2);
        ([ (0, R.one); (1, R.one) ], P.Le, R.of_int 4);
        ([ (0, R.of_int 2); (1, R.of_int 2) ], P.Le, R.of_int 8)
      ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "objective" (R.of_int 4) s.objective

(* Redundant equality rows (phase 1 ends with a basic artificial on an
   all-zero row). *)
let test_redundant_equalities () =
  let _, out =
    solve_exact ~vars:2
      ~obj:[ (0, R.one); (1, R.of_int 2) ]
      [ ([ (0, R.one); (1, R.one) ], P.Eq, R.of_int 3);
        ([ (0, R.of_int 2); (1, R.of_int 2) ], P.Eq, R.of_int 6);
        ([ (0, R.one) ], P.Le, R.of_int 3)
      ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "objective" (R.of_int 3) s.objective;
  Alcotest.(check rat) "x" (R.of_int 3) s.values.(0)

(* Zero-width constraint 0 <= c and empty objective still work. *)
let test_trivial () =
  let _, out = solve_exact ~vars:1 ~obj:[] [ ([], P.Le, R.of_int 1) ] in
  let s = expect_optimal out in
  Alcotest.(check rat) "objective" R.zero s.objective;
  let _, out = solve_exact ~vars:1 ~obj:[ (0, R.one) ] [ ([], P.Le, R.of_int 1) ] in
  let s = expect_optimal out in
  Alcotest.(check rat) "min x = 0" R.zero s.objective

(* Duplicate terms on the same variable must be accumulated. *)
let test_duplicate_terms () =
  let _, out =
    solve_exact ~dir:P.Maximize ~vars:1
      ~obj:[ (0, R.one); (0, R.one) ] (* objective is really 2x *)
      [ ([ (0, R.one); (0, R.one) ], P.Le, R.of_int 6) (* really 2x <= 6 *) ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "x" (R.of_int 3) s.values.(0);
  Alcotest.(check rat) "objective" (R.of_int 6) s.objective

(* An LP with a fractional optimum exercises exactness: max x s.t. 3x <= 1
   must give exactly 1/3, not 0.33333. *)
let test_exactness () =
  let _, out =
    solve_exact ~dir:P.Maximize ~vars:1
      ~obj:[ (0, R.one) ]
      [ ([ (0, R.of_int 3) ], P.Le, R.one) ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "exactly 1/3" (q 1 3) s.values.(0)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

(* Random feasible-by-construction minimization problems: draw a random
   nonnegative point x0 and random rows a, then add constraints
   a·x >= a·x0 when a·x0 >= 0 favours boundedness below. *)
let random_lp_gen =
  let open QCheck.Gen in
  let* nvars = int_range 1 5 in
  let* ncons = int_range 1 6 in
  let* x0 = array_size (return nvars) (int_range 0 10) in
  let* rows = array_size (return ncons) (array_size (return nvars) (int_range 0 5)) in
  let* obj = array_size (return nvars) (int_range 1 5) in
  return (nvars, x0, rows, obj)

let build_random_min (nvars, x0, rows, obj) =
  let st = P.Builder.create () in
  for i = 0 to nvars - 1 do
    ignore (P.Builder.fresh_var st ~name:(Printf.sprintf "x%d" i))
  done;
  Array.iter
    (fun row ->
      let terms = Array.to_list (Array.mapi (fun v k -> (v, R.of_int k)) row) in
      let rhs =
        Array.fold_left ( + ) 0 (Array.mapi (fun v k -> k * x0.(v)) row)
      in
      P.Builder.add_constr st terms P.Ge (R.of_int rhs))
    rows;
  P.Builder.set_objective st P.Minimize
    (Array.to_list (Array.mapi (fun v k -> (v, R.of_int k)) obj));
  P.Builder.finish st

let prop_optimal_is_feasible =
  QCheck.Test.make ~name:"optimal solution satisfies all constraints" ~count:100
    (QCheck.make random_lp_gen) (fun spec ->
      let p = build_random_min spec in
      match Sx.solve p with
      | Sx.Optimal s -> Result.is_ok (Sx.check_feasible p s.values)
      | Sx.Infeasible -> false (* feasible by construction *)
      | Sx.Unbounded -> false (* min with nonnegative costs is bounded by 0 *))

let prop_optimal_beats_witness =
  QCheck.Test.make ~name:"optimal objective <= witness objective" ~count:100
    (QCheck.make random_lp_gen) (fun ((_, x0, _, obj) as spec) ->
      let p = build_random_min spec in
      match Sx.solve p with
      | Sx.Optimal s ->
        let witness =
          Array.fold_left ( + ) 0 (Array.mapi (fun v k -> k * x0.(v)) obj)
        in
        R.compare s.objective (R.of_int witness) <= 0
      | _ -> false)

let prop_exact_and_float_agree =
  QCheck.Test.make ~name:"exact and float solvers agree" ~count:100
    (QCheck.make random_lp_gen) (fun spec ->
      let p = build_random_min spec in
      let pf : float P.t =
        {
          P.num_vars = p.P.num_vars;
          direction = p.P.direction;
          objective = List.map (fun (v, k) -> (v, R.to_float k)) p.P.objective;
          constraints =
            List.map
              (fun (c : R.t P.constr) ->
                {
                  P.cname = c.P.cname;
                  terms = List.map (fun (v, k) -> (v, R.to_float k)) c.P.terms;
                  rel = c.P.rel;
                  rhs = R.to_float c.P.rhs;
                })
              p.P.constraints;
          var_names = p.P.var_names;
        }
      in
      match (Sx.solve p, Sf.solve pf) with
      | Sx.Optimal a, Sf.Optimal b -> Float.abs (R.to_float a.objective -. b.objective) < 1e-6
      | Sx.Infeasible, Sf.Infeasible | Sx.Unbounded, Sf.Unbounded -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* LP duality                                                          *)
(* ------------------------------------------------------------------ *)

(* Strong duality and dual feasibility of the reported duals, checked on
   both exact solvers.  For a minimization with x ≥ 0:
   - Σ_i y_i·b_i = optimal objective;
   - reduced costs c_j − Σ_i y_i·a_ij ≥ 0 for every variable;
   - y_i ≤ 0 on Le rows, y_i ≥ 0 on Ge rows, free on Eq rows. *)
let dual_certificate_holds (p : R.t P.t) (s : Sx.solution) =
  let constrs = Array.of_list p.P.constraints in
  let strong =
    let yb =
      Array.to_list (Array.mapi (fun i (c : R.t P.constr) -> R.mul s.duals.(i) c.rhs) constrs)
      |> List.fold_left R.add R.zero
    in
    R.equal yb s.objective
  in
  let signs_ok =
    let expected_sign (c : R.t P.constr) =
      match (p.P.direction, c.rel) with
      | P.Minimize, P.Le | P.Maximize, P.Ge -> `NonPositive
      | P.Minimize, P.Ge | P.Maximize, P.Le -> `NonNegative
      | _, P.Eq -> `Free
    in
    Array.for_all2
      (fun (c : R.t P.constr) y ->
        match expected_sign c with
        | `NonPositive -> R.sign y <= 0
        | `NonNegative -> R.sign y >= 0
        | `Free -> true)
      constrs s.duals
  in
  let reduced_costs_ok =
    let reduced = Array.make p.P.num_vars R.zero in
    List.iter (fun (v, k) -> reduced.(v) <- R.add reduced.(v) k) p.P.objective;
    Array.iteri
      (fun i (c : R.t P.constr) ->
        List.iter
          (fun (v, k) -> reduced.(v) <- R.sub reduced.(v) (R.mul s.duals.(i) k))
          c.terms)
      constrs;
    match p.P.direction with
    | P.Minimize -> Array.for_all (fun r -> R.sign r >= 0) reduced
    | P.Maximize -> Array.for_all (fun r -> R.sign r <= 0) reduced
  in
  strong && signs_ok && reduced_costs_ok

let test_duality_hand_case () =
  (* Dantzig's example again: the known dual optimum is y = (0, 3/2, 1). *)
  let p, out =
    solve_exact ~dir:P.Maximize ~vars:2
      ~obj:[ (0, R.of_int 3); (1, R.of_int 5) ]
      [ ([ (0, R.one) ], P.Le, R.of_int 4);
        ([ (1, R.of_int 2) ], P.Le, R.of_int 12);
        ([ (0, R.of_int 3); (1, R.of_int 2) ], P.Le, R.of_int 18)
      ]
  in
  let s = expect_optimal out in
  Alcotest.(check rat) "y1" R.zero s.duals.(0);
  Alcotest.(check rat) "y2" (q 3 2) s.duals.(1);
  Alcotest.(check rat) "y3" R.one s.duals.(2);
  Alcotest.(check bool) "certificate" true (dual_certificate_holds p s)

(* Feasible-by-construction problems with MIXED relations (Le/Ge/Eq) and
   fractional coefficients — the shape of the scheduling formulations.
   This generator exists because a drive-out bug in the fraction-free
   solver survived the Ge-only generator above. *)
let mixed_lp_gen =
  let open QCheck.Gen in
  let* nvars = int_range 1 5 in
  let* ncons = int_range 1 7 in
  let* x0 = array_size (return nvars) (int_range 0 8) in
  let* rows =
    array_size (return ncons)
      (pair
         (array_size (return nvars) (pair (int_range (-4) 4) (int_range 1 3)))
         (pair (int_range 0 2) (int_range 0 5)))
  in
  let* obj = array_size (return nvars) (int_range 0 5) in
  return (nvars, x0, rows, obj)

let build_mixed_min (nvars, x0, rows, obj) =
  let st = P.Builder.create () in
  for i = 0 to nvars - 1 do
    ignore (P.Builder.fresh_var st ~name:(Printf.sprintf "x%d" i))
  done;
  Array.iter
    (fun (coeffs, (rel_pick, slack)) ->
      let terms =
        Array.to_list (Array.mapi (fun v (num, den) -> (v, q num den)) coeffs)
      in
      let at_x0 =
        Array.fold_left
          (fun acc (v, c) -> R.add acc (R.mul_int c x0.(v)))
          R.zero
          (Array.mapi (fun v (num, den) -> (v, q num den)) coeffs)
      in
      match rel_pick with
      | 0 -> P.Builder.add_constr st terms P.Le (R.add at_x0 (R.of_int slack))
      | 1 -> P.Builder.add_constr st terms P.Ge (R.sub at_x0 (R.of_int slack))
      | _ -> P.Builder.add_constr st terms P.Eq at_x0)
    rows;
  P.Builder.set_objective st P.Minimize
    (Array.to_list (Array.mapi (fun v k -> (v, R.of_int k)) obj));
  P.Builder.finish st

let prop_duality_rational =
  QCheck.Test.make ~name:"strong duality certificate (rational solver)" ~count:200
    (QCheck.make mixed_lp_gen) (fun spec ->
      let p = build_mixed_min spec in
      match Sx.solve p with
      | Sx.Optimal s -> dual_certificate_holds p s
      | Sx.Infeasible | Sx.Unbounded -> true)

let prop_duality_fraction_free =
  QCheck.Test.make ~name:"strong duality certificate (fraction-free solver)" ~count:200
    (QCheck.make mixed_lp_gen) (fun spec ->
      let p = build_mixed_min spec in
      match Lp.Simplex_ff.solve p with
      | Sx.Optimal s -> dual_certificate_holds p s
      | Sx.Infeasible | Sx.Unbounded -> true)

let prop_mixed_relations_agree =
  QCheck.Test.make ~name:"fraction-free ≡ rational on mixed Le/Ge/Eq problems"
    ~count:300 (QCheck.make mixed_lp_gen) (fun spec ->
      let p = build_mixed_min spec in
      match (Sx.solve p, Lp.Simplex_ff.solve p) with
      | Sx.Optimal a, Sx.Optimal b ->
        R.equal a.objective b.objective && Result.is_ok (Sx.check_feasible p b.values)
      | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
      | _ -> false)

(* Differential: the fraction-free integer-pivot solver must agree exactly
   with the rational-tableau solver, outcome for outcome. *)
let prop_fraction_free_agrees =
  QCheck.Test.make ~name:"fraction-free solver ≡ rational solver" ~count:150
    (QCheck.make random_lp_gen) (fun spec ->
      let p = build_random_min spec in
      match (Sx.solve p, Lp.Simplex_ff.solve p) with
      | Sx.Optimal a, Sx.Optimal b ->
        R.equal a.objective b.objective && Result.is_ok (Sx.check_feasible p b.values)
      | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
      | _ -> false)

(* The fraction-free solver on LPs with fractional data (scaling path). *)
let prop_fraction_free_fractional_data =
  QCheck.Test.make ~name:"fraction-free handles fractional coefficients" ~count:100
    (QCheck.make random_lp_gen) (fun spec ->
      let p = build_random_min spec in
      (* Divide everything by 7 and by 3: optimum scales by 1/7 relative to
         the divided-by-7-only objective... simpler: just check against the
         rational solver on the scaled problem. *)
      let scale k = List.map (fun (v, c) -> (v, R.div_int c k)) in
      let p' : R.t P.t =
        {
          p with
          P.objective = scale 7 p.P.objective;
          constraints =
            List.map
              (fun (c : R.t P.constr) ->
                { c with P.terms = scale 3 c.P.terms; rhs = R.div_int c.P.rhs 3 })
              p.P.constraints;
        }
      in
      match (Sx.solve p', Lp.Simplex_ff.solve p') with
      | Sx.Optimal a, Sx.Optimal b -> R.equal a.objective b.objective
      | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
      | _ -> false)

let test_fraction_free_hand_cases () =
  (* Re-run the Dantzig example through the fraction-free solver. *)
  let st = P.Builder.create () in
  let x = P.Builder.fresh_var st ~name:"x" and y = P.Builder.fresh_var st ~name:"y" in
  P.Builder.add_constr st [ (x, R.one) ] P.Le (R.of_int 4);
  P.Builder.add_constr st [ (y, R.of_int 2) ] P.Le (R.of_int 12);
  P.Builder.add_constr st [ (x, R.of_int 3); (y, R.of_int 2) ] P.Le (R.of_int 18);
  P.Builder.set_objective st P.Maximize [ (x, R.of_int 3); (y, R.of_int 5) ];
  (match Lp.Simplex_ff.solve (P.Builder.finish st) with
   | Sx.Optimal s ->
     Alcotest.(check rat) "objective" (R.of_int 36) s.objective;
     Alcotest.(check rat) "x" (R.of_int 2) s.values.(0);
     Alcotest.(check rat) "y" (R.of_int 6) s.values.(1)
   | _ -> Alcotest.fail "expected optimal");
  (* Fractional optimum stays exact. *)
  let st = P.Builder.create () in
  let x = P.Builder.fresh_var st ~name:"x" in
  P.Builder.add_constr st [ (x, R.of_int 3) ] P.Le R.one;
  P.Builder.set_objective st P.Maximize [ (x, R.one) ];
  (match Lp.Simplex_ff.solve (P.Builder.finish st) with
   | Sx.Optimal s -> Alcotest.(check rat) "1/3 exact" (q 1 3) s.values.(0)
   | _ -> Alcotest.fail "expected optimal");
  (* Infeasible and unbounded detection. *)
  let st = P.Builder.create () in
  let x = P.Builder.fresh_var st ~name:"x" in
  P.Builder.add_constr st [ (x, R.one) ] P.Ge (R.of_int 5);
  P.Builder.add_constr st [ (x, R.one) ] P.Le (R.of_int 3);
  P.Builder.set_objective st P.Minimize [ (x, R.one) ];
  (match Lp.Simplex_ff.solve (P.Builder.finish st) with
   | Sx.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible");
  let st = P.Builder.create () in
  let x = P.Builder.fresh_var st ~name:"x" in
  P.Builder.set_objective st P.Maximize [ (x, R.one) ];
  P.Builder.add_constr st [] P.Le R.one;
  (match Lp.Simplex_ff.solve (P.Builder.finish st) with
   | Sx.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded")

(* Scaling all constraints and the objective by a positive constant scales
   the optimum by the same constant. *)
let prop_scaling =
  QCheck.Test.make ~name:"objective scales linearly" ~count:50
    (QCheck.pair (QCheck.make random_lp_gen) (QCheck.int_range 2 7))
    (fun (spec, k) ->
      let p = build_random_min spec in
      let scaled : R.t P.t =
        { p with
          P.objective = List.map (fun (v, c) -> (v, R.mul_int c k)) p.P.objective }
      in
      match (Sx.solve p, Sx.solve scaled) with
      | Sx.Optimal a, Sx.Optimal b -> R.equal (R.mul_int a.objective k) b.objective
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Revised simplex (sparse engine)                                     *)
(* ------------------------------------------------------------------ *)

module Rv = Lp.Revised.Exact
module Rva = Lp.Revised.Approx

let solution_equal (a : Sx.solution) (b : Sx.solution) =
  Array.length a.values = Array.length b.values
  && Array.for_all2 R.equal a.values b.values
  && R.equal a.objective b.objective
  && Array.length a.duals = Array.length b.duals
  && Array.for_all2 R.equal a.duals b.duals

let outcome_equal (a : Sx.outcome) (b : Sx.outcome) =
  match (a, b) with
  | Sx.Optimal a, Sx.Optimal b -> solution_equal a b
  | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
  | _ -> false

let to_float_problem (p : R.t P.t) : float P.t = P.map R.to_float p

let test_revised_hand_cases () =
  (* Dantzig's example through the revised engine, checked bit-for-bit
     against the dense tableau (values, objective, and duals). *)
  let p, dense_out =
    solve_exact ~dir:P.Maximize ~vars:2
      ~obj:[ (0, R.of_int 3); (1, R.of_int 5) ]
      [ ([ (0, R.one) ], P.Le, R.of_int 4);
        ([ (1, R.of_int 2) ], P.Le, R.of_int 12);
        ([ (0, R.of_int 3); (1, R.of_int 2) ], P.Le, R.of_int 18)
      ]
  in
  Alcotest.(check bool) "dantzig identical" true (outcome_equal dense_out (Rv.solve p));
  (* Infeasible, unbounded, fractional, negative-rhs cases. *)
  List.iter
    (fun (dir, vars, obj, constrs) ->
      let p, dense_out = solve_exact ~dir ~vars ~obj constrs in
      Alcotest.(check bool) "identical outcome" true
        (outcome_equal dense_out (Rv.solve p)))
    [ (P.Minimize, 1, [ (0, R.one) ],
       [ ([ (0, R.one) ], P.Ge, R.of_int 5); ([ (0, R.one) ], P.Le, R.of_int 3) ]);
      (P.Maximize, 2, [ (0, R.one); (1, R.one) ],
       [ ([ (0, R.one); (1, R.minus_one) ], P.Le, R.of_int 1) ]);
      (P.Maximize, 1, [ (0, R.one) ], [ ([ (0, R.of_int 3) ], P.Le, R.one) ]);
      (P.Minimize, 2, [ (0, R.one); (1, R.one) ],
       [ ([ (0, R.minus_one); (1, R.minus_one) ], P.Le, R.of_int (-4)) ]);
      (P.Minimize, 2, [ (0, R.one); (1, R.of_int 2) ],
       [ ([ (0, R.one); (1, R.one) ], P.Eq, R.of_int 3);
         ([ (0, R.of_int 2); (1, R.of_int 2) ], P.Eq, R.of_int 6);
         ([ (0, R.one) ], P.Le, R.of_int 3) ])
    ]

(* The parity claim behind --solver=dense differential testing: a cold
   revised solve follows the dense pivot rules exactly, so in exact
   arithmetic the full payload (values, objective, duals) is identical. *)
let prop_revised_bit_identical =
  QCheck.Test.make ~name:"revised ≡ dense bit-for-bit (cold, rational)" ~count:300
    (QCheck.make mixed_lp_gen) (fun spec ->
      let p = build_mixed_min spec in
      outcome_equal (Sx.solve p) (Rv.solve p))

let prop_revised_bit_identical_ge =
  QCheck.Test.make ~name:"revised ≡ dense bit-for-bit (Ge-only generator)" ~count:150
    (QCheck.make random_lp_gen) (fun spec ->
      let p = build_random_min spec in
      outcome_equal (Sx.solve p) (Rv.solve p))

let prop_revised_duality =
  QCheck.Test.make ~name:"strong duality certificate (revised solver)" ~count:200
    (QCheck.make mixed_lp_gen) (fun spec ->
      let p = build_mixed_min spec in
      match Rv.solve p with
      | Sx.Optimal s -> dual_certificate_holds p s
      | Sx.Infeasible | Sx.Unbounded -> true)

(* Warm-started re-solve after an rhs change: same classification and
   objective as a cold solve, and any optimum it returns is feasible. *)
let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm-started resolve ≡ cold solve" ~count:300
    (QCheck.pair (QCheck.make mixed_lp_gen) (QCheck.int_range 0 8))
    (fun (spec, delta) ->
      let p = build_mixed_min spec in
      let prep = Rv.prepare p in
      let _, basis = Rv.solve_prepared prep in
      (* Scale every rhs by (10+delta)/10: signs are preserved, so the
         normalized structural shape is unchanged. *)
      let scale = q (10 + delta) 10 in
      let p' : R.t P.t =
        {
          p with
          P.constraints =
            List.map
              (fun (c : R.t P.constr) -> { c with P.rhs = R.mul c.P.rhs scale })
              p.P.constraints;
        }
      in
      let warm_out, _ = Rv.solve_prepared ~warm:basis (Rv.prepare p') in
      let cold_out = Sx.solve p' in
      match (warm_out, cold_out) with
      | Sx.Optimal a, Sx.Optimal b ->
        R.equal a.objective b.objective
        && Result.is_ok (Sx.check_feasible p' a.values)
        && dual_certificate_holds p' a
      | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
      | _ -> false)

(* A garbage basis hint must never change the answer — only the route. *)
let prop_bogus_hint_harmless =
  QCheck.Test.make ~name:"arbitrary basis hints never change the outcome" ~count:200
    (QCheck.pair (QCheck.make mixed_lp_gen) (QCheck.int_range 0 1000))
    (fun (spec, seed) ->
      let p = build_mixed_min spec in
      let prep = Rv.prepare p in
      let m = List.length p.P.constraints in
      let ncols = Rv.num_cols prep in
      let hint =
        Array.init m (fun i -> (seed + (i * 7919)) mod (max ncols 1))
      in
      let warm_out, _ = Rv.solve_prepared ~warm:hint prep in
      let cold_out = Sx.solve p in
      match (warm_out, cold_out) with
      | Sx.Optimal a, Sx.Optimal b ->
        R.equal a.objective b.objective
        && Result.is_ok (Sx.check_feasible p a.values)
      | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
      | _ -> false)

(* Float probe → exact certification: warm-starting the exact solve from
   the float engine's final basis is the handoff the milestone search
   uses; it must agree with a cold exact solve. *)
let prop_float_handoff =
  QCheck.Test.make ~name:"approx-basis handoff ≡ cold exact solve" ~count:200
    (QCheck.make mixed_lp_gen) (fun spec ->
      let p = build_mixed_min spec in
      let _, fbasis = Rva.solve_prepared (Rva.prepare (to_float_problem p)) in
      let warm_out, _ = Rv.solve_prepared ~warm:fbasis (Rv.prepare p) in
      let cold_out = Sx.solve p in
      match (warm_out, cold_out) with
      | Sx.Optimal a, Sx.Optimal b ->
        R.equal a.objective b.objective
        && Result.is_ok (Sx.check_feasible p a.values)
      | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
      | _ -> false)

(* Session API: resolve_rhs keeps the basis across a family of rhs
   variations and must track cold solves exactly. *)
let prop_session_resolve_rhs =
  QCheck.Test.make ~name:"session resolve_rhs tracks cold solves" ~count:150
    (QCheck.make mixed_lp_gen) (fun spec ->
      let p = build_mixed_min spec in
      let session = Lp.Session.Exact.create p in
      let _ = Lp.Session.Exact.solve session in
      List.for_all
        (fun num ->
          let scale = q num 10 in
          let updates =
            List.mapi
              (fun i (c : R.t P.constr) -> (i, R.mul c.P.rhs scale))
              p.P.constraints
          in
          let p' : R.t P.t =
            {
              p with
              P.constraints =
                List.map
                  (fun (c : R.t P.constr) ->
                    { c with P.rhs = R.mul c.P.rhs scale })
                  p.P.constraints;
            }
          in
          let warm_out = Lp.Session.Exact.resolve_rhs session updates in
          match (warm_out, Sx.solve p') with
          | Sx.Optimal a, Sx.Optimal b ->
            R.equal a.objective b.objective
            && Result.is_ok (Sx.check_feasible p' a.values)
          | Sx.Infeasible, Sx.Infeasible | Sx.Unbounded, Sx.Unbounded -> true
          | _ -> false)
        [ 12; 8; 10; 15; 10 ])

(* The approx instance of the revised engine against the dense float
   tableau: same classification, objectives within tolerance. *)
let prop_revised_approx_agrees =
  QCheck.Test.make ~name:"revised approx ≈ dense approx" ~count:150
    (QCheck.make random_lp_gen) (fun spec ->
      let p = build_random_min spec in
      let pf = to_float_problem p in
      match (Sf.solve pf, Rva.solve pf) with
      | Sf.Optimal a, Sf.Optimal b -> Float.abs (a.objective -. b.objective) < 1e-6
      | Sf.Infeasible, Sf.Infeasible | Sf.Unbounded, Sf.Unbounded -> true
      | _ -> false)

let () =
  Alcotest.run "lp"
    [ ( "simplex-unit",
        [ Alcotest.test_case "dantzig example" `Quick test_dantzig;
          Alcotest.test_case ">= constraints" `Quick test_ge_constraints;
          Alcotest.test_case "equality constraints" `Quick test_eq_constraints;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "infeasible equalities" `Quick test_infeasible_eq;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "duplicate terms" `Quick test_duplicate_terms;
          Alcotest.test_case "exact fractional optimum" `Quick test_exactness;
          Alcotest.test_case "fraction-free hand cases" `Quick test_fraction_free_hand_cases;
          Alcotest.test_case "duality hand case" `Quick test_duality_hand_case;
          Alcotest.test_case "revised hand cases" `Quick test_revised_hand_cases
        ] );
      ( "simplex-props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_optimal_is_feasible; prop_optimal_beats_witness;
            prop_exact_and_float_agree; prop_fraction_free_agrees;
            prop_fraction_free_fractional_data; prop_mixed_relations_agree;
            prop_duality_rational; prop_duality_fraction_free; prop_scaling
          ] );
      ( "revised-props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_revised_bit_identical; prop_revised_bit_identical_ge;
            prop_revised_duality; prop_warm_equals_cold;
            prop_bogus_hint_harmless; prop_float_handoff;
            prop_session_resolve_rhs; prop_revised_approx_agrees
          ] )
    ]
