(* Tests for the serving subsystem: trace round-trips, metrics quantile
   correctness, engine-vs-simulator equivalence, batching, live
   submissions, and the server line protocol. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module W = Gripps.Workload
module T = Serve.Trace
module M = Obs.Registry
module E = Serve.Engine

let rat = Alcotest.testable R.pp R.equal

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_valid what sched =
  match S.validate_divisible sched with
  | Ok () -> ()
  | Error e -> Alcotest.fail (what ^ ": invalid schedule: " ^ e)

let trace_equal (a : T.t) (b : T.t) =
  a.platform.W.speeds = b.platform.W.speeds
  && a.platform.W.bank_sizes = b.platform.W.bank_sizes
  && a.platform.W.has_bank = b.platform.W.has_bank
  && List.length a.entries = List.length b.entries
  && List.for_all2
       (fun (x : T.entry) (y : T.entry) ->
         x.id = y.id
         && R.equal x.request.W.arrival y.request.W.arrival
         && x.request.W.bank = y.request.W.bank
         && x.request.W.num_motifs = y.request.W.num_motifs)
       a.entries b.entries
  && List.length a.events = List.length b.events
  && List.for_all2
       (fun (x : T.event) (y : T.event) ->
         R.equal x.at y.at && x.fault = y.fault)
       a.events b.events

let slices_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : S.slice) (y : S.slice) ->
         x.machine = y.machine && x.job = y.job && R.equal x.start y.start
         && R.equal x.stop y.stop)
       a b

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_parse () =
  let t =
    T.of_string
      "trace v1\n\
       machines 2\n\
       banks 2\n\
       # a comment\n\
       speed 1 3/2\n\
       bank 0 3800\n\
       bank 1 1900\n\
       holds 0 0 1\n\
       holds 1 1\n\
       req a 27/100 0 12\n\
       req b 0 1 3\n"
  in
  Alcotest.(check int) "machines" 2 (Array.length t.platform.W.speeds);
  Alcotest.(check rat) "default speed" R.one t.platform.W.speeds.(0);
  Alcotest.(check rat) "parsed speed" (R.of_ints 3 2) t.platform.W.speeds.(1);
  (* Entries come back sorted by arrival. *)
  Alcotest.(check (list string)) "sorted ids" [ "b"; "a" ]
    (List.map (fun (e : T.entry) -> e.id) t.entries)

let test_trace_roundtrip_example () =
  let t = T.poisson ~seed:42 ~rate:(1. /. 30.) ~count:12 () in
  let t' = T.of_string (T.to_string t) in
  Alcotest.(check bool) "roundtrip" true (trace_equal t t')

let prop_trace_roundtrip =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 9999 in
      let* machines = int_range 1 4 in
      let* banks = int_range 1 3 in
      let* replication = int_range 1 machines in
      let* count = int_range 1 10 in
      let* diurnal = bool in
      return
        (if diurnal then
           T.diurnal ~seed ~machines ~banks ~replication ~peak_rate:0.1 ~count ()
         else T.poisson ~seed ~machines ~banks ~replication ~rate:0.05 ~count ()))
  in
  QCheck.Test.make ~name:"trace text roundtrip" ~count:60
    (QCheck.make gen ~print:T.to_string)
    (fun t -> trace_equal t (T.of_string (T.to_string t)))

let test_trace_faults_roundtrip () =
  let base = T.poisson ~seed:9 ~rate:0.2 ~count:15 () in
  let t = T.with_faults ~seed:10 ~mtbf:30. ~mttr:5. base in
  Alcotest.(check bool) "has events" true (t.T.events <> []);
  (* Every failure is eventually recovered, machine by machine. *)
  let m = Array.length t.T.platform.W.speeds in
  let balance = Array.make m 0 in
  List.iter
    (fun (e : T.event) ->
      match e.fault with
      | T.Fail i -> balance.(i) <- balance.(i) + 1
      | T.Recover i -> balance.(i) <- balance.(i) - 1)
    t.T.events;
  Alcotest.(check bool) "fails and recovers balance" true
    (Array.for_all (fun b -> b = 0) balance);
  (* Events are sorted and survive the text round-trip. *)
  let sorted = ref true in
  ignore
    (List.fold_left
       (fun prev (e : T.event) ->
         if R.compare e.at prev < 0 then sorted := false;
         e.T.at)
       R.zero t.T.events);
  Alcotest.(check bool) "events sorted" true !sorted;
  Alcotest.(check bool) "roundtrip with events" true
    (trace_equal t (T.of_string (T.to_string t)))

let test_trace_errors () =
  let bad s =
    Alcotest.(check bool) ("rejects " ^ s) true
      (try
         ignore (T.of_string s);
         false
       with Invalid_argument _ -> true)
  in
  bad "";
  bad "machines 1\nbanks 1\nbank 0 10\nholds 0 0\n" (* missing header *);
  bad "trace v2\nmachines 1\nbanks 1\nbank 0 10\n";
  bad "trace v1\nbanks 1\nbank 0 10\n" (* no machines *);
  bad "trace v1\nmachines 1\nbanks 1\nholds 0 0\n" (* bank without size *);
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 1\n" (* bank index *);
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 2 0\n" (* machine index *);
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nreq a -1 0 5\n";
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nreq a 0 0 0\n";
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nreq a 0 0 5\nreq a 1 0 5\n";
  bad "trace v1\nmachines 2\nbanks 2\nbank 0 10\nbank 1 10\nholds 0 0\nreq a 0 1 5\n"
  (* bank 1 held nowhere *);
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nfrob\n";
  bad "trace v1\nmachines 1\nbanks 1\nspeed 0 0\nbank 0 10\nholds 0 0\n";
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nfail 5 1\n" (* machine *);
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nfail -1 0\n" (* time *);
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nrecover x 0\n";
  (* Redeclaring the dimensions would invalidate every index already
     checked against the old ones (a later bank/machine reference could
     then land out of bounds deep in the engine). *)
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nmachines 2\n";
  bad "trace v1\nmachines 1\nbanks 1\nbank 0 10\nholds 0 0\nreq a 0 0 2\nbanks 2\n";
  bad "trace v1\nmachines 2\nbanks 1\nbank 0 10\nholds 0 0\nfail 1 1\nmachines 1\n"

let test_trace_diurnal_shape () =
  let count = 200 in
  let t = T.diurnal ~seed:7 ~peak_rate:0.5 ~count () in
  Alcotest.(check int) "count" count (List.length t.entries);
  let arrivals = List.map (fun (e : T.entry) -> e.request.W.arrival) t.entries in
  let sorted = ref true in
  ignore
    (List.fold_left
       (fun prev a ->
         if R.compare a prev < 0 then sorted := false;
         a)
       R.zero arrivals);
  Alcotest.(check bool) "sorted" true !sorted;
  let ids = List.map (fun (e : T.entry) -> e.id) t.entries in
  Alcotest.(check int) "unique ids" count (List.length (List.sort_uniq compare ids))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_quantiles () =
  let reg = M.create () in
  let h = M.histogram reg "x" in
  (* 1..100 observed in a scrambled order. *)
  let values = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let rng = Gripps.Prng.create 3 in
  Gripps.Prng.shuffle rng values;
  Array.iter (M.observe h) values;
  Alcotest.(check int) "count" 100 (M.samples h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (M.hmin h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (M.hmax h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (M.mean h);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (M.quantile h 0.);
  Alcotest.(check (float 1e-9)) "p50" 50.5 (M.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p95" 95.05 (M.quantile h 0.95);
  Alcotest.(check (float 1e-9)) "p99" 99.01 (M.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (M.quantile h 1.);
  (* Deciles of a uniform grid stay within a grid step of the ideal. *)
  for d = 1 to 9 do
    let q = float_of_int d /. 10. in
    let got = M.quantile h q in
    Alcotest.(check bool)
      (Printf.sprintf "p%d near ideal" (10 * d))
      true
      (Float.abs (got -. (q *. 100.)) <= 1.0)
  done

let test_metrics_registry () =
  let reg = M.create () in
  let c = M.counter reg "reqs" in
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "counter" 5 (M.count c);
  Alcotest.(check bool) "same instrument" true (M.counter reg "reqs" == c);
  let g = M.gauge reg "depth" in
  M.set g 3.;
  M.set g 1.;
  Alcotest.(check (float 1e-9)) "gauge value" 1. (M.value g);
  Alcotest.(check (float 1e-9)) "gauge peak" 3. (M.peak g);
  (let h = M.histogram reg "lat" in
   M.observe h 1.5);
  let text = M.to_text reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("text mentions " ^ needle) true
        (contains text needle))
    [ "reqs"; "depth"; "lat" ];
  let json = M.to_json reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true
        (contains json needle))
    [ "\"reqs\":5"; "\"depth\""; "\"lat\""; "\"p95\"" ]

(* ------------------------------------------------------------------ *)
(* Engine vs. the plain simulator                                      *)
(* ------------------------------------------------------------------ *)

let policies : (module Online.Sim.POLICY) list =
  [ (module Online.Policies.Mct); (module Online.Policies.Fair);
    (module Online.Policies.Srpt); (module Online.Online_opt.Divisible) ]

let test_engine_matches_sim () =
  let trace = T.poisson ~seed:11 ~rate:(1. /. 40.) ~count:10 () in
  let inst = I.stretch_weights (T.to_instance trace) in
  List.iter
    (fun (module P : Online.Sim.POLICY) ->
      let sim = Online.Sim.run (module P) inst in
      let eng = E.replay ~policy:(module P) trace in
      let esched = E.schedule eng in
      check_valid ("engine " ^ P.name) esched;
      Alcotest.(check rat)
        (P.name ^ " same max stretch")
        (S.max_stretch sim.Online.Sim.schedule)
        (S.max_stretch esched);
      Alcotest.(check rat)
        (P.name ^ " same makespan")
        (S.makespan sim.Online.Sim.schedule)
        (S.makespan esched);
      let decisions = M.count (M.counter (E.metrics eng) "decisions") in
      Alcotest.(check int) (P.name ^ " same decision count") sim.Online.Sim.decisions
        decisions)
    policies

let test_engine_metrics_report () =
  let trace = T.poisson ~seed:5 ~rate:(1. /. 30.) ~count:8 () in
  let eng = E.replay ~policy:(module Online.Policies.Fair) trace in
  Alcotest.(check int) "all completed" 8 (E.completed eng);
  let reg = E.metrics eng in
  Alcotest.(check int) "submitted" 8 (M.count (M.counter reg "requests_submitted"));
  Alcotest.(check int) "completed" 8 (M.count (M.counter reg "requests_completed"));
  let h = M.histogram reg "stretch" in
  Alcotest.(check int) "stretch samples" 8 (M.samples h);
  (* Max stretch of the schedule is the largest stretch observation. *)
  let esched = E.schedule eng in
  Alcotest.(check (float 1e-6))
    "stretch max agrees with schedule"
    (R.to_float (S.max_stretch esched))
    (M.hmax h)

let test_engine_batching () =
  let trace = T.poisson ~seed:13 ~rate:(1. /. 5.) ~count:12 () in
  let plain = E.replay ~policy:(module Online.Policies.Fair) trace in
  let batched =
    E.replay ~batch_window:(R.of_int 30) ~policy:(module Online.Policies.Fair) trace
  in
  check_valid "batched" (E.schedule batched);
  Alcotest.(check int) "all completed" 12 (E.completed batched);
  let d reg = M.count (M.counter (E.metrics reg) "decisions") in
  Alcotest.(check bool) "fewer or equal decisions" true (d batched <= d plain);
  Alcotest.(check bool) "coalesced something" true
    (M.count (M.counter (E.metrics batched) "arrivals_coalesced") > 0)

let mini_platform () =
  (* Two unit-speed machines, each holding the single bank. *)
  {
    W.speeds = [| R.one; R.one |];
    bank_sizes = [| 380 |];
    has_bank = [| [| true |]; [| true |] |];
  }

let test_engine_live_submissions () =
  let clock = Serve.Clock.virtual_ () in
  let eng =
    E.create ~clock ~policy:(module Online.Policies.Srpt) (mini_platform ())
  in
  ignore (E.submit eng ~id:"a" ~arrival:R.zero ~bank:0 ~num_motifs:300 ());
  E.run_until eng R.one;
  Alcotest.(check int) "one active" 1 (E.active eng);
  (* Mid-flight submission: rebuilds the policy, extends the instance. *)
  ignore (E.submit eng ~id:"b" ~arrival:(E.now eng) ~bank:0 ~num_motifs:200 ());
  E.drain eng;
  Alcotest.(check int) "both completed" 2 (E.completed eng);
  check_valid "live" (E.schedule eng);
  Alcotest.(check bool) "rebuild counted" true
    (M.count (M.counter (E.metrics eng) "policy_rebuilds") >= 1);
  (* Duplicate ids and time travel are rejected. *)
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Engine.submit: duplicate request id \"a\"")
    (fun () -> ignore (E.submit eng ~id:"a" ~arrival:(E.now eng) ~bank:0 ~num_motifs:1 ()));
  Alcotest.(check bool) "past arrival rejected" true
    (try
       ignore (E.submit eng ~id:"c" ~arrival:R.zero ~bank:0 ~num_motifs:1 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Machine failures                                                    *)
(* ------------------------------------------------------------------ *)

(* The availability layer must be invisible while every machine is up:
   replaying any failure-free trace produces the simulator's schedule
   slice for slice. *)
let prop_failure_free_identity =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 9999 in
      let* machines = int_range 1 3 in
      let* banks = int_range 1 2 in
      let* replication = int_range 1 machines in
      let* count = int_range 1 6 in
      let* pi = int_range 0 3 in
      return (seed, machines, banks, replication, count, pi))
  in
  let print (seed, machines, banks, replication, count, pi) =
    Printf.sprintf "seed=%d m=%d b=%d r=%d n=%d policy=%d" seed machines banks
      replication count pi
  in
  QCheck.Test.make ~name:"failure-free replay is slice-identical to the simulator"
    ~count:40 (QCheck.make gen ~print)
    (fun (seed, machines, banks, replication, count, pi) ->
      let trace = T.poisson ~seed ~machines ~banks ~replication ~rate:0.1 ~count () in
      let policy = List.nth policies pi in
      let inst = I.stretch_weights (T.to_instance trace) in
      let sim = Online.Sim.run policy inst in
      let eng = E.replay ~policy trace in
      slices_equal
        (S.slices sim.Online.Sim.schedule)
        (S.slices (E.schedule eng)))

(* Two machines sharing one bank.  Machine 0 dies at t=1 and returns at
   t=3: everything still completes, the schedule stays legal, and no work
   is placed on machine 0 while it is down. *)
let test_fail_recover () =
  let clock = Serve.Clock.virtual_ () in
  let eng =
    E.create ~clock ~policy:(module Online.Policies.Fair) (mini_platform ())
  in
  ignore (E.submit eng ~id:"a" ~arrival:R.zero ~bank:0 ~num_motifs:300 ());
  ignore (E.submit eng ~id:"b" ~arrival:R.zero ~bank:0 ~num_motifs:200 ());
  E.inject eng ~at:R.one (T.Fail 0);
  E.inject eng ~at:(R.of_int 3) (T.Recover 0);
  E.run_until eng (R.of_int 2);
  Alcotest.(check bool) "machine 0 down at t=2" false (E.machine_up eng 0);
  Alcotest.(check int) "one machine up" 1 (E.machines_up eng);
  E.drain eng;
  Alcotest.(check bool) "machine 0 back up" true (E.machine_up eng 0);
  Alcotest.(check int) "both completed" 2 (E.completed eng);
  let sched = E.schedule eng in
  check_valid "fail/recover" sched;
  List.iter
    (fun (s : S.slice) ->
      if s.machine = 0 then
        Alcotest.(check bool) "no slice on machine 0 during its downtime" true
          (R.compare s.stop R.one <= 0 || R.compare s.start (R.of_int 3) >= 0))
    (S.slices sched);
  let reg = E.metrics eng in
  Alcotest.(check int) "failure counted" 1 (M.count (M.counter reg "machine_failures"));
  Alcotest.(check int) "recovery counted" 1
    (M.count (M.counter reg "machine_recoveries"))

(* Same failure, both lost-work regimes: [`Lost] drops the dead machine's
   in-flight slices (and redoes the work), [`Preserved] keeps them.  Both
   must still produce complete, legal schedules. *)
let test_lost_vs_preserved () =
  let run lost_work =
    let clock = Serve.Clock.virtual_ () in
    let eng =
      E.create ~lost_work ~clock ~policy:(module Online.Policies.Fair)
        (mini_platform ())
    in
    ignore (E.submit eng ~id:"a" ~arrival:R.zero ~bank:0 ~num_motifs:300 ());
    ignore (E.submit eng ~id:"b" ~arrival:R.zero ~bank:0 ~num_motifs:200 ());
    E.inject eng ~at:R.one (T.Fail 0);
    E.inject eng ~at:(R.of_int 3) (T.Recover 0);
    E.drain eng;
    Alcotest.(check int) "completed" 2 (E.completed eng);
    check_valid "lost-work schedule" (E.schedule eng);
    eng
  in
  let lost = run `Lost and preserved = run `Preserved in
  let lost_count e = M.count (M.counter (E.metrics e) "slices_lost") in
  Alcotest.(check bool) "lost run drops slices" true (lost_count lost > 0);
  Alcotest.(check int) "preserved run keeps everything" 0 (lost_count preserved);
  (* Redoing work can only delay completion. *)
  Alcotest.(check bool) "lost makespan >= preserved" true
    (R.compare (S.makespan (E.schedule lost)) (S.makespan (E.schedule preserved)) >= 0)

(* A job whose only capable machine goes down must surface as starved —
   drain terminates with it incomplete — and complete after a recovery. *)
let test_starvation () =
  let platform =
    (* Bank 0 lives only on machine 0; machine 1 only holds bank 1. *)
    {
      W.speeds = [| R.one; R.one |];
      bank_sizes = [| 380; 380 |];
      has_bank = [| [| true; false |]; [| false; true |] |];
    }
  in
  let clock = Serve.Clock.virtual_ () in
  let eng = E.create ~clock ~policy:(module Online.Policies.Mct) platform in
  ignore (E.submit eng ~id:"x" ~arrival:R.zero ~bank:0 ~num_motifs:300 ());
  E.inject eng ~at:R.one (T.Fail 0);
  E.drain eng;
  Alcotest.(check int) "nothing completed" 0 (E.completed eng);
  Alcotest.(check int) "one starved" 1 (E.starved eng);
  (* A request arriving while its bank is unreachable parks immediately. *)
  ignore (E.submit eng ~id:"y" ~arrival:(E.now eng) ~bank:0 ~num_motifs:100 ());
  E.drain eng;
  Alcotest.(check int) "still starved" 2 (E.starved eng);
  E.inject eng ~at:(E.now eng) (T.Recover 0);
  Alcotest.(check int) "unparked" 0 (E.starved eng);
  E.drain eng;
  Alcotest.(check int) "completed after recovery" 2 (E.completed eng);
  check_valid "starvation schedule" (E.schedule eng)

let test_metrics_json_nonfinite () =
  let reg = M.create () in
  let g = M.gauge reg "weird" in
  M.set g infinity;
  let h = M.histogram reg "h" in
  M.observe h neg_infinity;
  M.observe h nan;
  let json = M.to_json reg in
  Alcotest.(check bool) "no bare inf" false (contains json "inf");
  Alcotest.(check bool) "no bare nan" false (contains json "nan");
  Alcotest.(check bool) "nulls instead" true (contains json "null")

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

module A = Serve.Admission

(* Canonical textual engine state with the admission valve's own
   instruments (the "admission." registry entries) filtered out: the
   transparency claims below are about the engine, not about whether a
   valve happened to be doing its bookkeeping in front of it. *)
let canonical_dump ~platform eng =
  let st = E.dump eng in
  let st =
    {
      st with
      E.st_metrics =
        List.filter
          (fun (k, _) -> not (String.starts_with ~prefix:"admission." k))
          st.E.st_metrics;
    }
  in
  Serve.Snapshot.state_to_string ~seq:0 ~platform st

(* Feed a failure-free trace through an engine — directly, or through an
   uncapped admission valve with the given coalescing window — and drain. *)
let run_stream ?window ~policy (trace : T.t) =
  let eng = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy trace.platform in
  let valve =
    Option.map
      (fun window -> A.create ~config:{ A.default_config with window } eng)
      window
  in
  List.iter
    (fun (e : T.entry) ->
      E.run_until eng e.request.W.arrival;
      match valve with
      | None ->
        ignore
          (E.submit eng ~id:e.id ~arrival:(E.now eng) ~bank:e.request.W.bank
             ~num_motifs:e.request.W.num_motifs ())
      | Some a -> (
        A.poll a;
        match
          A.submit a ~id:e.id ~bank:e.request.W.bank
            ~num_motifs:e.request.W.num_motifs ()
        with
        | A.Admitted _ -> ()
        | A.Shed _ -> Alcotest.fail "uncapped valve shed a request"))
    trace.entries;
  E.drain eng;
  eng

let completed_ids (trace : T.t) eng =
  List.filter_map
    (fun (e : T.entry) ->
      match E.find eng e.id with
      | Some j when E.job_completed eng j -> Some e.id
      | Some _ | None -> None)
    trace.entries

(* Batching is a latency/efficiency trade, not a semantic one: for any
   window the valve completes exactly the same request set as an
   unbatched run, with fewer (or equal) policy consultations; and the
   degenerate zero-window valve is bit-identical — state and engine
   metrics — to no valve at all. *)
let prop_batched_matches_unbatched =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 9999 in
      let* machines = int_range 1 3 in
      let* banks = int_range 1 2 in
      let* replication = int_range 1 machines in
      let* count = int_range 1 8 in
      let* window_tenths = int_range 1 400 in
      let* pi = int_range 0 2 in
      return (seed, machines, banks, replication, count, window_tenths, pi))
  in
  let print (seed, machines, banks, replication, count, w, pi) =
    Printf.sprintf "seed=%d m=%d b=%d r=%d n=%d window=%d/10 policy=%d" seed
      machines banks replication count w pi
  in
  QCheck.Test.make
    ~name:"any-window valve completes the unbatched set; zero-window is invisible"
    ~count:25 (QCheck.make gen ~print)
    (fun (seed, machines, banks, replication, count, w, pi) ->
      let trace = T.poisson ~seed ~machines ~banks ~replication ~rate:0.2 ~count () in
      let policy = List.nth policies pi in
      let direct = run_stream ~policy trace in
      let unbatched = run_stream ~window:R.zero ~policy trace in
      let batched = run_stream ~window:(R.of_ints w 10) ~policy trace in
      check_valid "unbatched schedule" (E.schedule unbatched);
      check_valid "batched schedule" (E.schedule batched);
      let platform = trace.platform in
      let decisions e = M.count (M.counter (E.metrics e) "decisions") in
      canonical_dump ~platform direct = canonical_dump ~platform unbatched
      && completed_ids trace batched = completed_ids trace unbatched
      && E.completed batched = count
      && decisions batched <= decisions unbatched)

let test_admission_shed () =
  let eng =
    E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Mct)
      (mini_platform ())
  in
  let adm = A.create ~config:{ A.default_config with max_inflight = 2 } eng in
  let admit id motifs =
    match A.submit adm ~id ~bank:0 ~num_motifs:motifs () with
    | A.Admitted _ -> true
    | A.Shed _ -> false
  in
  Alcotest.(check bool) "first admitted" true (admit "a" 10);
  Alcotest.(check bool) "second admitted" true (admit "b" 10);
  Alcotest.(check int) "two in flight" 2 (A.inflight adm);
  (match A.submit adm ~id:"c" ~bank:0 ~num_motifs:10 () with
   | A.Shed { retry_after } ->
     Alcotest.(check bool) "positive retry hint" true (R.sign retry_after > 0)
   | A.Admitted _ -> Alcotest.fail "over-cap submit admitted");
  (* Shedding is refusal at the door: the request never reached the
     engine (or the WAL), so its id is still free. *)
  Alcotest.(check int) "engine saw two" 2 (E.submitted eng);
  Alcotest.(check bool) "shed id unknown to engine" true (E.find eng "c" = None);
  Alcotest.(check int) "shed counted" 1
    (M.count (M.counter (E.metrics eng) "admission.sheds"));
  (* Completions retire in-flight entries and reopen the door. *)
  E.drain eng;
  Alcotest.(check int) "drained valve" 0 (A.inflight adm);
  Alcotest.(check bool) "admitted after drain" true (admit "c" 10);
  E.drain eng;
  Alcotest.(check int) "all three done" 3 (E.completed eng)

let test_admission_per_client () =
  let eng =
    E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Mct)
      (mini_platform ())
  in
  let adm = A.create ~config:{ A.default_config with max_per_client = 1 } eng in
  let reply ?client id =
    A.submit adm ?client ~id ~bank:0 ~num_motifs:10 ()
  in
  Alcotest.(check bool) "alice admitted" true
    (match reply ~client:"alice" "a" with A.Admitted _ -> true | A.Shed _ -> false);
  Alcotest.(check bool) "alice capped" true
    (match reply ~client:"alice" "b" with A.Shed _ -> true | A.Admitted _ -> false);
  Alcotest.(check bool) "bob unaffected" true
    (match reply ~client:"bob" "b" with A.Admitted _ -> true | A.Shed _ -> false);
  Alcotest.(check int) "alice in flight" 1 (A.inflight_for adm "alice");
  Alcotest.(check int) "bob in flight" 1 (A.inflight_for adm "bob");
  Alcotest.(check int) "global in flight" 2 (A.inflight adm);
  E.drain eng;
  Alcotest.(check bool) "alice readmitted after drain" true
    (match reply ~client:"alice" "c" with A.Admitted _ -> true | A.Shed _ -> false)

(* Under [`Smallest], pressure at the global cap still admits a request
   strictly smaller than the largest in-flight one, up to 125% of the
   cap; under [`Fifo] the cap is the cap. *)
let test_admission_smallest_priority () =
  let run priority =
    let eng =
      E.create ~clock:(Serve.Clock.virtual_ ())
        ~policy:(module Online.Policies.Mct) (mini_platform ())
    in
    let adm =
      A.create ~config:{ A.default_config with max_inflight = 2; priority } eng
    in
    let admit id motifs =
      match A.submit adm ~id ~bank:0 ~num_motifs:motifs () with
      | A.Admitted _ -> true
      | A.Shed _ -> false
    in
    Alcotest.(check bool) "whale 1" true (admit "w1" 50);
    Alcotest.(check bool) "whale 2" true (admit "w2" 40);
    (adm, admit)
  in
  let _, admit = run `Smallest in
  Alcotest.(check bool) "larger than largest shed" false (admit "big" 60);
  Alcotest.(check bool) "tie with largest shed" false (admit "tie" 50);
  Alcotest.(check bool) "small fry overflows" true (admit "s1" 10);
  Alcotest.(check bool) "overflow is bounded at 125%" false (admit "s2" 5);
  let _, admit = run `Fifo in
  Alcotest.(check bool) "fifo sheds even the small fry" false (admit "s1" 10)

(* Decision caching.  A live submission discards the policy runner but
   keeps the validated plan, so the re-decide at the next completion
   happens at a rebuild barrier — exactly where the cache may answer.
   Two episodes with identical workload shapes (and a far-future
   submission to create the barrier) make the second episode's barrier
   decide a cache hit, by time-translation equivariance of the policies. *)
let cache_episode eng tag t0 =
  ignore (E.submit eng ~id:(tag ^ "-a") ~arrival:t0 ~bank:0 ~num_motifs:10 ());
  ignore (E.submit eng ~id:(tag ^ "-b") ~arrival:t0 ~bank:0 ~num_motifs:20 ());
  E.run_until eng t0;
  ignore
    (E.submit eng ~id:(tag ^ "-z")
       ~arrival:(R.add t0 (R.of_int 1_000_000))
       ~bank:0 ~num_motifs:5 ());
  E.drain eng

let test_decision_cache_hits () =
  let eng =
    E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Mct)
      (mini_platform ())
  in
  E.set_decision_cache eng true;
  let c name = M.count (M.counter (E.metrics eng) name) in
  (* t0 = 1, not 0: the episode's arrival fire must be a real clock
     advance so both episodes decide through the same sequence of
     barriers. *)
  cache_episode eng "one" R.one;
  Alcotest.(check bool) "first episode misses" true (c "decision_cache_misses" > 0);
  Alcotest.(check int) "no hits yet" 0 (c "decision_cache_hits");
  cache_episode eng "two" (R.add (E.now eng) (R.of_int 100));
  Alcotest.(check bool) "recurring shape hits" true (c "decision_cache_hits" > 0);
  Alcotest.(check int) "all six completed" 6 (E.completed eng);
  check_valid "cached schedule" (E.schedule eng)

(* A fail/recover cycle that returns to the very same overlay must still
   re-consult the policy: the disruption purges the cache eagerly, so the
   second episode's barrier decide is a miss, not a resurrected plan. *)
let test_decision_cache_invalidation () =
  let eng =
    E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Mct)
      (mini_platform ())
  in
  E.set_decision_cache eng true;
  let c name = M.count (M.counter (E.metrics eng) name) in
  cache_episode eng "one" R.one;
  let misses_before = c "decision_cache_misses" in
  E.inject eng ~at:(E.now eng) (T.Fail 0);
  E.inject eng ~at:(E.now eng) (T.Recover 0);
  cache_episode eng "two" (R.add (E.now eng) (R.of_int 100));
  Alcotest.(check int) "no hits across the disruption" 0 (c "decision_cache_hits");
  Alcotest.(check bool) "second episode re-decided" true
    (c "decision_cache_misses" > misses_before);
  Alcotest.(check int) "all six completed" 6 (E.completed eng);
  check_valid "invalidated schedule" (E.schedule eng)

(* ------------------------------------------------------------------ *)
(* Server protocol                                                     *)
(* ------------------------------------------------------------------ *)

let test_server_protocol () =
  let clock = Serve.Clock.virtual_ () in
  let eng = E.create ~clock ~policy:(module Online.Policies.Fair) (mini_platform ()) in
  let srv = Serve.Server.create eng in
  let expect_last ?(verdict = `Continue) cmd prefix =
    let replies, v = Serve.Server.handle_line srv cmd in
    Alcotest.(check bool) (cmd ^ " verdict") true (v = verdict);
    match List.rev replies with
    | [] -> Alcotest.fail (cmd ^ ": no reply")
    | last :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s (got %s)" cmd prefix last)
        true
        (String.length last >= String.length prefix
        && String.sub last 0 (String.length prefix) = prefix)
  in
  expect_last "status" "ok now=0 submitted=0";
  expect_last "submit r1 0 10" "ok submitted r1 job=0";
  expect_last "submit r2 0 5" "ok submitted r2 job=1";
  expect_last "submit r2 0 5" "err bad_request";
  expect_last "submit r3 9 5" "err bad_request";
  expect_last "submit r3 9" "err usage" (* wrong arity *);
  expect_last "tick 1" "ok now=1";
  expect_last "status" "ok now=1 submitted=2";
  expect_last "fail 0" "ok machine 0 down up=1/2";
  expect_last "status" "ok now=1 submitted=2 active=2 completed=0 up=1/2";
  expect_last "fail 0" "ok machine 0 down up=1/2" (* idempotent *);
  expect_last "fail 7" "err bad_request";
  expect_last "fail" "err usage" (* wrong arity *);
  expect_last "recover 0" "ok machine 0 up up=2/2";
  expect_last "metrics" "ok";
  expect_last "drain" "ok drained";
  expect_last "nonsense" "err unknown_command";
  expect_last "help" "ok";
  (let replies, _ = Serve.Server.handle_line srv "metrics json" in
   match replies with
   | [ json; "ok" ] ->
     Alcotest.(check bool) "json has completed counter" true
       (contains json "\"requests_completed\":2")
   | _ -> Alcotest.fail "metrics json shape");
  expect_last ~verdict:`Quit "quit" "ok bye";
  check_valid "server schedule" (E.schedule eng)

(* The same protocol unit, with an admission valve in front: submits are
   acknowledged with their coalesced arrival date and shed with a
   machine-parseable retry hint. *)
let test_server_admission () =
  let clock = Serve.Clock.virtual_ () in
  let eng =
    E.create ~clock ~policy:(module Online.Policies.Mct) (mini_platform ())
  in
  let adm =
    A.create
      ~config:{ A.default_config with window = R.of_int 5; max_inflight = 1 }
      eng
  in
  let srv = Serve.Server.create ~admission:adm eng in
  let last cmd =
    match List.rev (fst (Serve.Server.handle_line srv cmd)) with
    | last :: _ -> last
    | [] -> Alcotest.fail (cmd ^ ": no reply")
  in
  Alcotest.(check string) "coalesced ack" "ok submitted r1 job=0 fires_at=5"
    (last "submit r1 0 10");
  Alcotest.(check string) "shed with retry hint" "err shed retry_after=10"
    (last "submit r2 0 10");
  let drained = last "drain" in
  Alcotest.(check bool) ("drained: " ^ drained) true
    (contains drained "completed=1");
  let reopened = last "submit r2 0 10" in
  Alcotest.(check bool) ("door reopens: " ^ reopened) true
    (String.starts_with ~prefix:"ok submitted r2 job=1 fires_at=" reopened)

(* The door rejects malformed submissions before they reach the valve or
   the engine: a negative bank or non-positive motif count is a protocol
   error ([err bad_request]), never a shed — previously such requests at
   full load were counted against capacity and answered [err shed],
   polluting the shed statistics and inviting pointless retries. *)
let test_server_door_validation () =
  let clock = Serve.Clock.virtual_ () in
  let eng = E.create ~clock ~policy:(module Online.Policies.Mct) (mini_platform ()) in
  let adm = A.create ~config:{ A.default_config with max_inflight = 1 } eng in
  let srv = Serve.Server.create ~admission:adm eng in
  let last cmd =
    match List.rev (fst (Serve.Server.handle_line srv cmd)) with
    | last :: _ -> last
    | [] -> Alcotest.fail (cmd ^ ": no reply")
  in
  let expect_bad cmd =
    let reply = last cmd in
    Alcotest.(check bool)
      (Printf.sprintf "%s -> err bad_request (got %s)" cmd reply)
      true
      (String.starts_with ~prefix:"err bad_request" reply)
  in
  expect_bad "submit r1 -1 5";
  expect_bad "submit r1 0 0";
  expect_bad "submit r1 0 -3";
  expect_bad "fail -1";
  expect_bad "recover -2";
  (* Fill the valve, then submit garbage: still a protocol error, not a
     shed, and the shed counter stays untouched. *)
  Alcotest.(check bool) "valve admits r1" true
    (String.starts_with ~prefix:"ok submitted r1" (last "submit r1 0 10"));
  Alcotest.(check bool) "valve at capacity sheds r2" true
    (String.starts_with ~prefix:"err shed" (last "submit r2 0 10"));
  let sheds_before = M.count (M.counter (E.metrics eng) "admission.sheds") in
  expect_bad "submit r3 -1 5";
  expect_bad "submit r3 0 0";
  Alcotest.(check int) "malformed submits are not counted as sheds" sheds_before
    (M.count (M.counter (E.metrics eng) "admission.sheds"));
  Alcotest.(check int) "engine saw only the valid submit" 1 (E.submitted eng)

(* Protocol-grammar lint: every reply the implementation can emit must
   use a registered shape.  Scans the [okf]/[errf] call sites in
   server.ml (declared as a dune dep of this test) against the published
   [error_codes]/[ok_heads] lists — the machine-checkable half of the
   proto=2 contract. *)
let test_protocol_grammar_lint () =
  let src =
    (* dune runtest runs in test/, dune exec from the workspace root. *)
    let path =
      List.find Sys.file_exists
        [ "../lib/serve/server.ml"; "lib/serve/server.ml" ]
    in
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* Positions right after each occurrence of [marker]; the marker ends
     with the opening quote of a string literal (no call site in
     server.ml escapes quotes inside these literals). *)
  let literals_after marker =
    let ml = String.length marker in
    let rec go i acc =
      if i + ml > String.length src then List.rev acc
      else if String.sub src i ml = marker then begin
        let stop = String.index_from src (i + ml) '"' in
        go stop (String.sub src (i + ml) (stop - i - ml) :: acc)
      end
      else go (i + 1) acc
    in
    go 0 []
  in
  let ok_fmts = literals_after "okf \"" in
  let err_codes = literals_after "errf \"" in
  Alcotest.(check bool) "found ok call sites" true (List.length ok_fmts >= 8);
  Alcotest.(check bool) "found err call sites" true (List.length err_codes >= 8);
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "errf %S uses a registered code" code)
        true
        (List.mem code Serve.Server.error_codes))
    err_codes;
  List.iter
    (fun fmt ->
      let head =
        match String.index_opt fmt ' ' with
        | Some i -> String.sub fmt 0 i
        | None -> fmt
      in
      Alcotest.(check bool)
        (Printf.sprintf "okf %S starts with a registered head" fmt)
        true
        (List.exists
           (fun h -> String.starts_with ~prefix:h head)
           Serve.Server.ok_heads))
    ok_fmts

let test_server_tick_guard () =
  let eng =
    E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Fair)
      (mini_platform ())
  in
  let srv = Serve.Server.create eng in
  let last cmd =
    match List.rev (fst (Serve.Server.handle_line srv cmd)) with
    | last :: _ -> last
    | [] -> Alcotest.fail (cmd ^ ": no reply")
  in
  let rejected cmd =
    Alcotest.(check bool) (cmd ^ " rejected") true
      (String.length (last cmd) >= 3 && String.sub (last cmd) 0 3 = "err");
    Alcotest.(check rat) (cmd ^ " left time alone") R.zero (E.now eng)
  in
  (* inf satisfies [> 0.]; without the finiteness guard it would become an
     engine date. *)
  rejected "tick inf";
  rejected "tick infinity";
  rejected "tick nan";
  rejected "tick -1";
  rejected "tick 0";
  rejected "tick bogus";
  Alcotest.(check string) "finite tick works" "ok now=2" (last "tick 2")

(* A wall clock whose source steps backwards (NTP) must stay monotonic,
   and advance_to must not oversleep chasing the stepped-back source. *)
let test_clock_monotonic () =
  let t = ref 100. in
  let clock = Serve.Clock.wall_with ~now:(fun () -> !t) ~sleep:(fun _ -> ()) () in
  let a = Serve.Clock.now clock in
  t := 50.;
  let b = Serve.Clock.now clock in
  Alcotest.(check bool) "never regresses" true (b >= a);
  t := 60.;
  Alcotest.(check (float 1e-9)) "resumes from the high-water mark" (b +. 10.)
    (Serve.Clock.now clock)

let test_clock_bounded_sleep () =
  (* Every sleep is undermined by a 3 s backwards step of the raw source:
     the un-credited retry loop would sleep forever (each pass still sees
     3 s missing); the offset-crediting clock finishes after sleeping the
     requested duration once. *)
  let t = ref 0. in
  let total = ref 0. in
  let clock =
    Serve.Clock.wall_with
      ~now:(fun () -> !t)
      ~sleep:(fun dt ->
        total := !total +. dt;
        if !total > 100. then Alcotest.fail "unbounded oversleep";
        t := !t +. dt -. 3.)
      ()
  in
  let start = Serve.Clock.now clock in
  Serve.Clock.advance_to clock (start +. 5.);
  Alcotest.(check bool) "reached the target" true (Serve.Clock.now clock >= start +. 5.);
  Alcotest.(check bool) "slept roughly the requested duration" true (!total <= 5. +. 1e-9)

(* The engine-side twin of the tick guard: a deranged wall clock must not
   become an engine date via catch_up. *)
let test_engine_catch_up_guard () =
  let t = ref 100. in
  let clock = Serve.Clock.wall_with ~now:(fun () -> !t) ~sleep:(fun _ -> ()) () in
  let eng =
    E.create ~clock ~policy:(module Online.Policies.Fair) (mini_platform ())
  in
  ignore (E.submit eng ~id:"a" ~arrival:R.zero ~bank:0 ~num_motifs:10 ());
  t := infinity;
  E.catch_up eng;
  Alcotest.(check rat) "infinite clock ignored" R.zero (E.now eng);
  t := 103.;
  E.catch_up eng;
  Alcotest.(check rat) "finite clock resumes" (R.of_int 3) (E.now eng)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ( "trace",
        [ Alcotest.test_case "parse" `Quick test_trace_parse;
          Alcotest.test_case "roundtrip example" `Quick test_trace_roundtrip_example;
          Alcotest.test_case "faults roundtrip" `Quick test_trace_faults_roundtrip;
          Alcotest.test_case "errors" `Quick test_trace_errors;
          Alcotest.test_case "diurnal shape" `Quick test_trace_diurnal_shape;
          QCheck_alcotest.to_alcotest prop_trace_roundtrip
        ] );
      ( "metrics",
        [ Alcotest.test_case "quantiles" `Quick test_metrics_quantiles;
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "non-finite json" `Quick test_metrics_json_nonfinite
        ] );
      ( "engine",
        [ Alcotest.test_case "matches simulator" `Quick test_engine_matches_sim;
          Alcotest.test_case "metrics report" `Quick test_engine_metrics_report;
          Alcotest.test_case "batching" `Quick test_engine_batching;
          Alcotest.test_case "live submissions" `Quick test_engine_live_submissions;
          Alcotest.test_case "catch-up guard" `Quick test_engine_catch_up_guard
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic wall" `Quick test_clock_monotonic;
          Alcotest.test_case "bounded sleep" `Quick test_clock_bounded_sleep
        ] );
      ( "faults",
        [ QCheck_alcotest.to_alcotest prop_failure_free_identity;
          Alcotest.test_case "fail and recover" `Quick test_fail_recover;
          Alcotest.test_case "lost vs preserved work" `Quick test_lost_vs_preserved;
          Alcotest.test_case "starvation" `Quick test_starvation
        ] );
      ( "admission",
        [ QCheck_alcotest.to_alcotest prop_batched_matches_unbatched;
          Alcotest.test_case "global shed" `Quick test_admission_shed;
          Alcotest.test_case "per-client shed" `Quick test_admission_per_client;
          Alcotest.test_case "smallest priority" `Quick
            test_admission_smallest_priority;
          Alcotest.test_case "cache hits" `Quick test_decision_cache_hits;
          Alcotest.test_case "cache invalidation" `Quick
            test_decision_cache_invalidation
        ] );
      ( "server",
        [ Alcotest.test_case "protocol" `Quick test_server_protocol;
          Alcotest.test_case "admission valve" `Quick test_server_admission;
          Alcotest.test_case "door validation" `Quick test_server_door_validation;
          Alcotest.test_case "grammar lint" `Quick test_protocol_grammar_lint;
          Alcotest.test_case "tick guard" `Quick test_server_tick_guard
        ] )
    ]
