(* Tests for the parallel execution subsystem (lib/par) and the layers it
   threads through: the pool's determinism contract (results committed by
   input index, smallest-index exception, left-to-right reduction), the
   nesting rules, and the end-to-end oracle checks that the parallel
   k-section search and [Max_flow.solve] are bit-identical to the
   sequential jobs=1 paths. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module Fs = Sched_core.Flow_search
module Mf = Sched_core.Max_flow
module P = Par.Pool

let ri = R.of_int

(* All pool use in this file is scoped with [with_jobs] so the tests do
   not depend on DLSCHED_JOBS or the host's core count. *)

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)
(* ------------------------------------------------------------------ *)

let test_map_matches_array_map () =
  let input = Array.init 201 (fun i -> i - 7) in
  let f x = (x * x) - (3 * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun w ->
      let got = P.with_jobs w (fun () -> P.map f input) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" w)
        expected got)
    [ 1; 2; 4; 8 ]

let test_map_empty_and_singleton () =
  P.with_jobs 4 (fun () ->
      Alcotest.(check (array int)) "empty" [||] (P.map (fun x -> x + 1) [||]);
      Alcotest.(check (array int)) "singleton" [| 42 |] (P.map (fun x -> x * 2) [| 21 |]))

(* Results must be committed by input index even when later tasks finish
   first: give early indices the most spinning to do. *)
let test_ordering_under_uneven_work () =
  let spin n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := !acc + (i mod 13)
    done;
    !acc
  in
  let input = Array.init 64 Fun.id in
  let f i =
    let (_ : int) = spin ((64 - i) * 2000) in
    i * 10
  in
  let got = P.with_jobs 4 (fun () -> P.map f input) in
  Alcotest.(check (array int)) "index order" (Array.map (fun i -> i * 10) input) got

let test_exception_smallest_index_wins () =
  P.with_jobs 4 (fun () ->
      let f i = if i >= 5 then failwith (string_of_int i) else i in
      (match P.map f (Array.init 16 Fun.id) with
      | (_ : int array) -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        Alcotest.(check string) "first raising index" "5" msg);
      (* The pool survives a raising batch and stays usable. *)
      Alcotest.(check (array int))
        "pool usable after exception"
        [| 0; 1; 4; 9 |]
        (P.map (fun i -> i * i) (Array.init 4 Fun.id)))

let test_nested_map_rejected () =
  List.iter
    (fun w ->
      P.with_jobs w (fun () ->
          let verdicts =
            P.map
              (fun i ->
                let flagged = P.in_parallel_task () in
                let rejected =
                  match P.map (fun x -> x) [| i; i + 1 |] with
                  | (_ : int array) -> false
                  | exception Invalid_argument _ -> true
                in
                flagged && rejected)
              (Array.init 6 Fun.id)
          in
          Alcotest.(check bool)
            (Printf.sprintf "nested map rejected at jobs=%d" w)
            true
            (Array.for_all Fun.id verdicts)))
    [ 1; 4 ]

let test_map_or_seq_falls_back_in_task () =
  P.with_jobs 4 (fun () ->
      (* At top level it is a plain parallel map... *)
      Alcotest.(check (array int))
        "top level" [| 1; 2; 3 |]
        (P.map_or_seq (fun x -> x + 1) [| 0; 1; 2 |]);
      (* ...and inside a task it quietly runs sequentially. *)
      let sums =
        P.map
          (fun i -> Array.fold_left ( + ) 0 (P.map_or_seq (fun x -> x * i) [| 1; 2; 3 |]))
          (Array.init 5 Fun.id)
      in
      Alcotest.(check (array int)) "inside task" [| 0; 6; 12; 18; 24 |] sums)

(* The reduction folds mapped values left to right on the caller; float
   rounding order — and hence the bits of the result — must not depend on
   the width. *)
let test_map_reduce_fold_order () =
  let input = Array.init 1000 Fun.id in
  let mapf i = 1.0 /. float_of_int (i + 1) in
  let seq = Array.fold_left (fun acc i -> acc +. mapf i) 0.0 input in
  List.iter
    (fun w ->
      let got =
        P.with_jobs w (fun () ->
            P.map_reduce ~map:mapf ~reduce:( +. ) ~init:0.0 input)
      in
      Alcotest.(check bool)
        (Printf.sprintf "bitwise equal at jobs=%d" w)
        true
        (Int64.equal (Int64.bits_of_float seq) (Int64.bits_of_float got)))
    [ 1; 2; 4; 8 ]

let test_with_jobs_scopes_and_restores () =
  let outside = P.jobs () in
  P.with_jobs 3 (fun () ->
      Alcotest.(check int) "inside" 3 (P.jobs ());
      P.with_jobs 1 (fun () -> Alcotest.(check int) "nested" 1 (P.jobs ()));
      Alcotest.(check int) "restored inner" 3 (P.jobs ()));
  Alcotest.(check int) "restored outer" outside (P.jobs ());
  (match P.set_jobs 0 with
  | () -> Alcotest.fail "set_jobs 0 should raise"
  | exception Invalid_argument _ -> ())

let test_shutdown_then_reuse () =
  P.with_jobs 4 (fun () ->
      let a = P.map (fun i -> i + 1) (Array.init 10 Fun.id) in
      P.shutdown ();
      let b = P.map (fun i -> i + 1) (Array.init 10 Fun.id) in
      Alcotest.(check (array int)) "same after shutdown" a b);
  P.shutdown ()

(* ------------------------------------------------------------------ *)
(* Tracing across domains                                              *)
(* ------------------------------------------------------------------ *)

(* Spans opened inside worker tasks must attach to the submitter's open
   span (context grafting), get process-unique ids, and carry a [domain]
   attribute; the callback sink runs under the emit lock so a plain list
   ref needs no extra synchronization. *)
let test_worker_spans_graft () =
  let spans = ref [] in
  let sink =
    Obs.Sink.callback (function
      | Obs.Sink.Span s -> spans := s :: !spans
      | Obs.Sink.Event _ -> ())
  in
  Obs.Sink.with_sink sink (fun () ->
      P.with_jobs 4 (fun () ->
          let (_ : int array) =
            Obs.Span.with_span "root" (fun () ->
                P.map
                  (fun i -> Obs.Span.with_span "task" (fun () -> i * 2))
                  (Array.init 12 Fun.id))
          in
          ()));
  let all = !spans in
  let root =
    match List.filter (fun s -> s.Obs.Sink.name = "root") all with
    | [ s ] -> s
    | _ -> Alcotest.fail "expected exactly one root span"
  in
  let tasks = List.filter (fun s -> s.Obs.Sink.name = "task") all in
  Alcotest.(check int) "one span per task" 12 (List.length tasks);
  List.iter
    (fun s ->
      Alcotest.(check (option int))
        "task parented under root" (Some root.Obs.Sink.id) s.Obs.Sink.parent;
      match Obs.Sink.attr s "domain" with
      | Some (Obs.Sink.Int _) -> ()
      | _ -> Alcotest.fail "task span missing domain attribute")
    tasks;
  let ids = List.map (fun s -> s.Obs.Sink.id) all in
  Alcotest.(check int)
    "span ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* ------------------------------------------------------------------ *)
(* Parallel search oracle: synthetic monotone predicates               *)
(* ------------------------------------------------------------------ *)

(* A random monotone exact predicate with a deliberately unreliable
   approximation (the float LP stand-in): the k-section certification must
   land on the same boundary index and payload at any width. *)
let search_case_gen =
  let open QCheck.Gen in
  let* n = int_range 2 40 in
  let* boundary = int_range 0 (n - 1) in
  let* flips = list_size (int_range 0 8) (int_range 0 (n - 1)) in
  return (n, boundary, flips)

let arbitrary_search_case =
  QCheck.make search_case_gen ~print:(fun (n, b, flips) ->
      Printf.sprintf "n=%d boundary=%d flips=[%s]" n b
        (String.concat ";" (List.map string_of_int flips)))

let prop_first_feasible_width_independent =
  QCheck.Test.make ~name:"first_feasible jobs=4 = jobs=1 (index and payload)"
    ~count:60 arbitrary_search_case (fun (n, boundary, flips) ->
      let candidates = Array.init n (fun i -> ri (i + 1)) in
      let index_of v = int_of_float (R.to_float v) - 1 in
      let exact v =
        if index_of v >= boundary then Some ("pay:" ^ R.to_string v) else None
      in
      (* Noisy, possibly non-monotone approximation: correct verdict except
         at the flipped indices. *)
      let approx v =
        let i = index_of v in
        let base = i >= boundary in
        if List.mem i flips then not base else base
      in
      let run w = P.with_jobs w (fun () -> Fs.first_feasible ~exact ~approx candidates) in
      let i1, p1 = run 1 in
      let i4, p4 = run 4 in
      i1 = boundary && i4 = boundary && String.equal p1 p4)

(* ------------------------------------------------------------------ *)
(* End-to-end oracle: Max_flow at jobs=1 vs jobs=4                     *)
(* ------------------------------------------------------------------ *)

let instance_gen =
  let open QCheck.Gen in
  let* n = int_range 2 6 in
  let* m = int_range 1 3 in
  let* releases = array_size (return n) (int_range 0 8) in
  let* weights = array_size (return n) (int_range 1 4) in
  let* costs = array_size (return m) (array_size (return n) (int_range 0 6)) in
  (* Entry 0 means unavailable; make sure each job can run somewhere. *)
  let* fallback = array_size (return n) (int_range 1 6) in
  let costs =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j c ->
            let orphan = Array.for_all (fun r -> r.(j) = 0) costs in
            if i = 0 && orphan then fallback.(j) else c)
          row)
      costs
  in
  return
    (I.make
       ~releases:(Array.map R.of_int releases)
       ~weights:(Array.map R.of_int weights)
       (Array.map
          (Array.map (fun c -> if c = 0 then None else Some (R.of_int c)))
          costs))

let arbitrary_instance =
  QCheck.make instance_gen ~print:(fun i -> Format.asprintf "%a" I.pp i)

let same_slices a b =
  let la = S.slices a and lb = S.slices b in
  List.length la = List.length lb
  && List.for_all2
       (fun (x : S.slice) (y : S.slice) ->
         x.machine = y.machine && x.job = y.job
         && R.equal x.start y.start
         && R.equal x.stop y.stop)
       la lb

let prop_max_flow_width_independent =
  QCheck.Test.make ~name:"Max_flow.solve bit-identical at jobs=4 vs jobs=1"
    ~count:25 arbitrary_instance (fun inst ->
      let r1 = P.with_jobs 1 (fun () -> Mf.solve inst) in
      let r4 = P.with_jobs 4 (fun () -> Mf.solve inst) in
      let lo1, hi1 = r1.Mf.search_range and lo4, hi4 = r4.Mf.search_range in
      R.equal r1.Mf.objective r4.Mf.objective
      && R.equal lo1 lo4 && R.equal hi1 hi4
      && List.length r1.Mf.milestones = List.length r4.Mf.milestones
      && List.for_all2 R.equal r1.Mf.milestones r4.Mf.milestones
      && same_slices r1.Mf.schedule r4.Mf.schedule)

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches Array.map at every width" `Quick
            test_map_matches_array_map;
          Alcotest.test_case "empty and singleton inputs" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "results committed by input index" `Quick
            test_ordering_under_uneven_work;
          Alcotest.test_case "smallest-index exception wins" `Quick
            test_exception_smallest_index_wins;
          Alcotest.test_case "nested map is rejected at any width" `Quick
            test_nested_map_rejected;
          Alcotest.test_case "map_or_seq degrades inside tasks" `Quick
            test_map_or_seq_falls_back_in_task;
          Alcotest.test_case "map_reduce folds in index order" `Quick
            test_map_reduce_fold_order;
          Alcotest.test_case "with_jobs scopes and restores" `Quick
            test_with_jobs_scopes_and_restores;
          Alcotest.test_case "shutdown then reuse" `Quick test_shutdown_then_reuse;
        ] );
      ("tracing", [ Alcotest.test_case "worker spans graft onto submitter tree" `Quick test_worker_spans_graft ]);
      ( "oracle",
        [ qt prop_first_feasible_width_independent; qt prop_max_flow_width_independent ] );
    ]
