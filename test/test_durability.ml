(* Durability tests: WAL framing, snapshot text round-trips, and the
   crash property — kill the engine after any prefix of its event stream,
   resume from disk, finish the stream, and the final state (full
   serialized dump + metrics JSON) must be bit-identical to a run that
   never crashed. *)

module R = Numeric.Rat
module W = Gripps.Workload
module T = Serve.Trace
module E = Serve.Engine
module M = Obs.Registry
module Wal = Serve.Wal
module Snap = Serve.Snapshot

let tmp_counter = ref 0

let fresh_dir name =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlsched-test-%s-%d-%d" name (Unix.getpid ()) !tmp_counter)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else ();
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s = Out_channel.with_open_bin path (fun oc -> output_string oc s)

(* Two machines, two banks; machine 1 is the sole holder of bank 0, so a
   [Fail 1] starves bank-0 requests. *)
let platform () =
  {
    W.speeds = [| R.one; R.of_ints 3 2 |];
    bank_sizes = [| 100; 200 |];
    has_bank = [| [| false; true |]; [| true; true |] |];
  }

(* ------------------------------------------------------------------ *)
(* WAL framing                                                         *)
(* ------------------------------------------------------------------ *)

let sample_records =
  [
    Wal.Submit { id = "r1"; arrival = R.of_ints 27 100; bank = 1; num_motifs = 12 };
    Wal.Inject { at = R.of_int 40; fault = T.Fail 1 };
    Wal.Inject { at = R.of_int 55; fault = T.Recover 1 };
    Wal.Advance (R.of_ints 123 10);
    Wal.Drain;
  ]

let test_wal_codec () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "encode/decode round-trip" true (Wal.decode (Wal.encode r) = r))
    sample_records;
  let bad s =
    Alcotest.(check bool) ("rejects " ^ s) true
      (try
         ignore (Wal.decode s);
         false
       with Invalid_argument _ -> true)
  in
  bad "";
  bad "submit a b c d";
  bad "submit a 1 0";
  bad "inject 1 explode 0";
  bad "advance";
  bad "frobnicate";
  Alcotest.(check bool) "whitespace id unencodable" true
    (try
       ignore (Wal.encode (Wal.Submit { id = "a b"; arrival = R.zero; bank = 0; num_motifs = 1 }));
       false
     with Invalid_argument _ -> true)

let test_wal_file_roundtrip () =
  let dir = fresh_dir "walfile" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal" in
  let w = Wal.open_append ~next_seq:1 path in
  List.iteri
    (fun i r -> Alcotest.(check int) "seq" (i + 1) (Wal.append w r))
    sample_records;
  Wal.close w;
  let records, _, torn = Wal.replay path in
  Alcotest.(check bool) "no torn tail" false torn;
  Alcotest.(check (list int)) "seqs" [ 1; 2; 3; 4; 5 ] (List.map fst records);
  Alcotest.(check bool) "payloads" true
    (List.map snd records = sample_records);
  rm_rf dir

let test_wal_torn_tail () =
  let dir = fresh_dir "torn" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal" in
  let w = Wal.open_append ~next_seq:1 path in
  ignore (Wal.append w (List.nth sample_records 0));
  ignore (Wal.append w (List.nth sample_records 1));
  Wal.close w;
  let intact = read_file path in
  (* A crash mid-append leaves half a frame: everything before it must
     survive, the garbage must be dropped and overwritten. *)
  write_file path (intact ^ "r 3 17 99");
  let records, valid, torn = Wal.replay path in
  Alcotest.(check bool) "torn detected" true torn;
  Alcotest.(check int) "valid prefix" (String.length intact) valid;
  Alcotest.(check int) "two records survive" 2 (List.length records);
  let w = Wal.open_append ~valid_length:valid ~next_seq:3 path in
  ignore (Wal.append w Wal.Drain);
  Wal.close w;
  let records, _, torn = Wal.replay path in
  Alcotest.(check bool) "clean after truncate+append" false torn;
  Alcotest.(check (list int)) "seqs" [ 1; 2; 3 ] (List.map fst records);
  (* A flipped payload byte must fail the checksum. *)
  let text = read_file path in
  let flipped = Bytes.of_string text in
  Bytes.set flipped (String.length text - 2)
    (if Bytes.get flipped (String.length text - 2) = 'x' then 'y' else 'x');
  write_file path (Bytes.to_string flipped);
  let records, _, torn = Wal.replay path in
  Alcotest.(check bool) "corruption detected" true torn;
  Alcotest.(check int) "prefix survives corruption" 2 (List.length records);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Snapshot text                                                       *)
(* ------------------------------------------------------------------ *)

(* An engine with a bit of everything: completed and in-flight jobs, a
   down machine, a pending recovery, a parked (starved) request. *)
let busy_engine () =
  let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Srpt) (platform ()) in
  ignore (E.submit e ~id:"a" ~arrival:R.zero ~bank:1 ~num_motifs:30 ());
  ignore (E.submit e ~id:"b" ~arrival:(R.of_int 1) ~bank:0 ~num_motifs:20 ());
  E.run_until e (R.of_int 2);
  E.inject e ~at:(E.now e) (T.Fail 1);
  E.inject e ~at:(R.of_int 500) (T.Recover 1);
  ignore (E.submit e ~id:"c" ~arrival:(E.now e) ~bank:0 ~num_motifs:5 ());
  E.run_until e (R.of_int 3);
  e

let test_snapshot_roundtrip () =
  let e = busy_engine () in
  let st = E.dump e in
  let text = Snap.state_to_string ~seq:17 ~platform:(platform ()) st in
  let seq', platform', st' = Snap.state_of_string text in
  Alcotest.(check int) "seq" 17 seq';
  Alcotest.(check string) "re-serialization is bit-identical" text
    (Snap.state_to_string ~seq:17 ~platform:platform' st');
  (* Restoring and re-dumping must also round-trip. *)
  let e' = E.restore ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Srpt) platform' st' in
  Alcotest.(check string) "restore/dump round-trip" text
    (Snap.state_to_string ~seq:17 ~platform:platform' (E.dump e'));
  Alcotest.(check string) "metrics reproduce" (M.to_json (E.metrics e))
    (M.to_json (E.metrics e'))

let test_snapshot_rejects_corruption () =
  let e = busy_engine () in
  let text = Snap.state_to_string ~seq:3 ~platform:(platform ()) (E.dump e) in
  let n = String.length text in
  let corrupt =
    String.mapi (fun i c -> if i = n / 2 && c <> 'Q' then 'Q' else c) text
  in
  Alcotest.(check bool) "checksum mismatch raises" true
    (try
       ignore (Snap.state_of_string corrupt);
       false
     with Invalid_argument msg ->
       String.length msg > 0 && corrupt <> text);
  Alcotest.(check bool) "wrong policy rejected" true
    (let _, p, st = Snap.state_of_string text in
     try
       ignore (E.restore ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Mct) p st);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Crash / resume                                                      *)
(* ------------------------------------------------------------------ *)

(* The event scripts the crash property drives: everything a live server
   can do to an engine. *)
type op = Submit of int * int | Tick of int | Fault of T.fault | Drain

let apply e counter = function
  | Submit (bank, motifs) ->
    let id = Printf.sprintf "r%d" !counter in
    incr counter;
    ignore (E.submit e ~id ~arrival:(E.now e) ~bank ~num_motifs:motifs ())
  | Tick cs -> E.run_until e (R.add (E.now e) (R.of_ints cs 100))
  | Fault f -> E.inject e ~at:(E.now e) f
  | Drain -> E.drain e

let final_dump e =
  Snap.state_to_string ~seq:0 ~platform:(platform ()) (E.dump e)

(* Run the whole script under an armed WAL, no crash. *)
let oracle_run ~snapshot_every script =
  let dir = fresh_dir "oracle" in
  let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Srpt) (platform ()) in
  let h = Snap.arm ~snapshot_every ~dir e in
  let counter = ref 0 in
  List.iter (apply e counter) script;
  Snap.close h;
  rm_rf dir;
  (final_dump e, M.to_json (E.metrics e))

(* Crash after [k] ops (the process vanishes; only the WAL and any
   snapshots survive), resume, run the rest. *)
let crashed_run ~snapshot_every ~k script =
  let dir = fresh_dir "crash" in
  let before = List.filteri (fun i _ -> i < k) script in
  let after = List.filteri (fun i _ -> i >= k) script in
  let e0 = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Srpt) (platform ()) in
  let h0 = Snap.arm ~snapshot_every ~dir e0 in
  let counter = ref 0 in
  List.iter (apply e0 counter) before;
  Snap.close h0;
  let h1, e1 =
    Snap.resume ~snapshot_every ~dir ~clock:(Serve.Clock.virtual_ ())
      ~policies:[ (module Online.Policies.Srpt); (module Online.Policies.Mct) ]
      ()
  in
  List.iter (apply e1 counter) after;
  Snap.close h1;
  rm_rf dir;
  (final_dump e1, M.to_json (E.metrics e1))

let test_resume_from_meta () =
  (* Crash before the first checkpoint: recovery replays the whole log
     from the arm-time meta state. *)
  let script = [ Submit (1, 10); Tick 150; Submit (0, 5); Drain ] in
  let oracle = oracle_run ~snapshot_every:0 script in
  List.iter
    (fun k ->
      Alcotest.(check (pair string string))
        (Printf.sprintf "crash at %d" k)
        oracle
        (crashed_run ~snapshot_every:0 ~k script))
    [ 0; 1; 2; 3; 4 ]

let test_resume_skips_stale_records () =
  (* A crash can swallow the post-checkpoint truncation: fabricate that by
     restoring the pre-checkpoint log in front of the post-checkpoint one.
     Resume must skip the records the snapshot already covers. *)
  let dir = fresh_dir "stale" in
  let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Srpt) (platform ()) in
  let h = Snap.arm ~snapshot_every:0 ~dir e in
  let counter = ref 0 in
  List.iter (apply e counter) [ Submit (1, 10); Tick 100 ];
  let pre_truncation = read_file (Snap.wal_file dir) in
  Alcotest.(check bool) "snapshot taken" true (E.checkpoint e);
  List.iter (apply e counter) [ Submit (1, 4) ];
  let post = read_file (Snap.wal_file dir) in
  Snap.close h;
  write_file (Snap.wal_file dir) (pre_truncation ^ post);
  let h1, e1 =
    Snap.resume ~dir ~clock:(Serve.Clock.virtual_ ())
      ~policies:[ (module Online.Policies.Srpt) ] ()
  in
  Snap.close h1;
  rm_rf dir;
  Alcotest.(check string) "stale prefix skipped" (final_dump e) (final_dump e1);
  Alcotest.(check int) "both submits present" 2 (E.submitted e1)

let test_arm_refuses_reuse () =
  let dir = fresh_dir "reuse" in
  let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy:(module Online.Policies.Srpt) (platform ()) in
  let h = Snap.arm ~dir e in
  Snap.close h;
  Alcotest.(check bool) "second arm rejected" true
    (try
       ignore (Snap.arm ~dir e);
       false
     with Invalid_argument _ -> true);
  rm_rf dir

(* The centerpiece: crash at a random op index, under a random checkpoint
   cadence, and compare the finished state bit for bit.  SRPT is LP-free,
   so every metric (histograms included) is deterministic. *)
let prop_crash_resume_identical =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (5, map2 (fun b m -> Submit (b, m)) (int_bound 1) (int_range 1 12));
          (3, map (fun cs -> Tick cs) (int_range 0 400));
          (1, map (fun i -> Fault (T.Fail i)) (int_bound 1));
          (1, map (fun i -> Fault (T.Recover i)) (int_bound 1));
          (1, return Drain);
        ])
  in
  let gen =
    QCheck.Gen.(
      map3
        (fun ops k every -> (ops @ [ Drain ], k, every))
        (list_size (int_range 1 16) gen_op)
        (int_bound 17) (int_bound 3))
  in
  let print (ops, k, every) =
    let op_str = function
      | Submit (b, m) -> Printf.sprintf "Submit(%d,%d)" b m
      | Tick cs -> Printf.sprintf "Tick(%d)" cs
      | Fault (T.Fail i) -> Printf.sprintf "Fail(%d)" i
      | Fault (T.Recover i) -> Printf.sprintf "Recover(%d)" i
      | Drain -> "Drain"
    in
    Printf.sprintf "crash at %d, snapshot every %d, ops [%s]" k every
      (String.concat "; " (List.map op_str ops))
  in
  QCheck.Test.make ~count:40 ~name:"crash at any index resumes bit-identically"
    (QCheck.make ~print gen)
    (fun (script, k, snapshot_every) ->
      let k = min k (List.length script) in
      let od, om = oracle_run ~snapshot_every script in
      let cd, cm = crashed_run ~snapshot_every ~k script in
      od = cd && om = cm)

(* ------------------------------------------------------------------ *)

(* Regression: the decision cache is engine state and must survive a
   crash.  Snapshots used to omit it on the assumption that checkpoint's
   quiesce left nothing cached — wrong: quiesce drops the policy runner
   but keeps remembered plans, so a resumed engine was cache-cold where
   the uninterrupted one hit, and the two runs diverged (different
   hit/miss/decision counters, different decision provenance).  Found by
   the wal-crash-resume fuzz oracle; the shrunk script is committed as
   test/fixtures/cache_resume_divergence.script. *)
let test_cache_survives_crash () =
  let uniform () =
    { W.speeds = [| R.one; R.one |];
      bank_sizes = [| 380 |];
      has_bank = [| [| true |]; [| true |] |] }
  in
  (* Two identically-shaped episodes: the second is a cache hit in an
     uninterrupted run, and must stay one across a crash between them.
     The far-future straggler forces a rebuild barrier mid-episode — the
     only point where the cache is consulted. *)
  let episode eng tag t0 =
    ignore (E.submit eng ~id:(tag ^ "-a") ~arrival:t0 ~bank:0 ~num_motifs:10 ());
    ignore (E.submit eng ~id:(tag ^ "-b") ~arrival:t0 ~bank:0 ~num_motifs:20 ());
    E.run_until eng t0;
    ignore (E.submit eng ~id:(tag ^ "-z")
        ~arrival:(R.add t0 (R.of_int 1_000_000)) ~bank:0 ~num_motifs:5 ());
    E.drain eng
  in
  let counts e =
    let c name = M.count (M.counter (E.metrics e) name) in
    (c "decision_cache_hits", c "decision_cache_misses", c "decisions")
  in
  let final e = Snap.state_to_string ~seq:0 ~platform:(uniform ()) (E.dump e) in
  (* Oracle: WAL armed, cache on, no crash. *)
  let dir = fresh_dir "cache-oracle" in
  let e = E.create ~clock:(Serve.Clock.virtual_ ())
      ~policy:(module Online.Policies.Mct) (uniform ()) in
  let h = Snap.arm ~dir e in
  E.set_decision_cache e true;
  episode e "one" R.one;
  ignore (E.checkpoint e);
  episode e "two" (R.add (E.now e) (R.of_int 100));
  Snap.close h;
  let oracle_counts = counts e and oracle_state = final e in
  rm_rf dir;
  let hits, _, _ = oracle_counts in
  Alcotest.(check bool) "second episode hits in the oracle run" true (hits > 0);
  (* Crashed twin: identical up to the checkpoint, then the process dies
     and episode two runs on the resumed engine. *)
  let dir = fresh_dir "cache-crash" in
  let e0 = E.create ~clock:(Serve.Clock.virtual_ ())
      ~policy:(module Online.Policies.Mct) (uniform ()) in
  let h0 = Snap.arm ~dir e0 in
  E.set_decision_cache e0 true;
  episode e0 "one" R.one;
  ignore (E.checkpoint e0);
  Snap.close h0;
  let h1, e1 = Snap.resume ~decision_cache:true ~dir
      ~clock:(Serve.Clock.virtual_ ())
      ~policies:[ (module Online.Policies.Mct) ] () in
  episode e1 "two" (R.add (E.now e1) (R.of_int 100));
  Snap.close h1;
  let crashed_counts = counts e1 and crashed_state = final e1 in
  rm_rf dir;
  let pp_counts (h, m, d) = Printf.sprintf "hits=%d misses=%d decisions=%d" h m d in
  Alcotest.(check string) "cache counters identical across the crash"
    (pp_counts oracle_counts) (pp_counts crashed_counts);
  Alcotest.(check string) "final engine states identical" oracle_state crashed_state

let () =
  Alcotest.run "durability"
    [ ( "wal",
        [ Alcotest.test_case "codec" `Quick test_wal_codec;
          Alcotest.test_case "file roundtrip" `Quick test_wal_file_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail
        ] );
      ( "snapshot",
        [ Alcotest.test_case "text roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_snapshot_rejects_corruption
        ] );
      ( "resume",
        [ Alcotest.test_case "from meta" `Quick test_resume_from_meta;
          Alcotest.test_case "stale records skipped" `Quick test_resume_skips_stale_records;
          Alcotest.test_case "arm refuses reuse" `Quick test_arm_refuses_reuse;
          Alcotest.test_case "decision cache survives crash" `Quick
            test_cache_survives_crash;
          QCheck_alcotest.to_alcotest prop_crash_resume_identical
        ] )
    ]
