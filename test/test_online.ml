(* Tests for the online simulation engine and policies.

   The sandwich invariant drives most property tests: for any policy, the
   offline optimum of Theorem 2 lower-bounds the achieved maximum weighted
   flow.  For the online adaptation of the offline algorithm, equality must
   hold when every job arrives at time zero (no clairvoyance needed). *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module Mf = Sched_core.Max_flow
module Sim = Online.Sim
module Po = Online.Policies
module Oo = Online.Online_opt

let rat = Alcotest.testable R.pp R.equal
let ri = R.of_int

let simple ?releases ?weights costs =
  let cost = Array.map (Array.map (fun c -> if c = 0 then None else Some (ri c))) costs in
  let n = Array.length cost.(0) in
  let releases = Option.value releases ~default:(Array.make n R.zero) in
  let weights = Option.value weights ~default:(Array.make n R.one) in
  I.make ~releases ~weights cost

let check_valid what sched =
  match S.validate_divisible sched with
  | Ok () -> ()
  | Error e -> Alcotest.fail (what ^ ": invalid schedule: " ^ e)

let policies : (module Sim.POLICY) list =
  [ (module Po.Mct); (module Po.Fcfs); (module Po.Srpt); (module Po.Evd);
    (module Po.Fair); (module Oo.Divisible); (module Oo.Lazy_divisible) ]

(* ------------------------------------------------------------------ *)
(* Engine basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_mct_hand_case () =
  (* Two machines, three unit jobs at time 0 with c = 2 everywhere:
     MCT puts jobs 0,1 on distinct machines and job 2 behind job 0.
     Completions: 2, 2, 4. *)
  let inst = simple [| [| 2; 2; 2 |]; [| 2; 2; 2 |] |] in
  let r = Sim.run (module Po.Mct) inst in
  check_valid "mct" r.Sim.schedule;
  Alcotest.(check rat) "C0" (ri 2) (S.completion_time r.Sim.schedule 0);
  Alcotest.(check rat) "C1" (ri 2) (S.completion_time r.Sim.schedule 1);
  Alcotest.(check rat) "C2" (ri 4) (S.completion_time r.Sim.schedule 2);
  Alcotest.(check rat) "makespan" (ri 4) (S.makespan r.Sim.schedule)

let test_mct_respects_affinity () =
  (* Job 1 can only run on the slow machine. *)
  let inst = simple [| [| 1; 0 |]; [| 5; 5 |] |] in
  let r = Sim.run (module Po.Mct) inst in
  check_valid "mct affinity" r.Sim.schedule;
  List.iter
    (fun (s : S.slice) -> if s.job = 1 then Alcotest.(check int) "on machine 1" 1 s.machine)
    (S.slices r.Sim.schedule)

let test_fcfs_order () =
  (* Single machine: strict arrival order. *)
  let inst = simple ~releases:[| R.zero; R.zero; ri 1 |] [| [| 2; 2; 2 |] |] in
  let r = Sim.run (module Po.Fcfs) inst in
  check_valid "fcfs" r.Sim.schedule;
  Alcotest.(check rat) "C0" (ri 2) (S.completion_time r.Sim.schedule 0);
  Alcotest.(check rat) "C1" (ri 4) (S.completion_time r.Sim.schedule 1);
  Alcotest.(check rat) "C2" (ri 6) (S.completion_time r.Sim.schedule 2)

let test_srpt_preempts () =
  (* A long job is preempted by a short one on a single machine. *)
  let inst = simple ~releases:[| R.zero; ri 1 |] [| [| 10; 1 |] |] in
  let r = Sim.run (module Po.Srpt) inst in
  check_valid "srpt" r.Sim.schedule;
  Alcotest.(check rat) "short job served immediately" (ri 2)
    (S.completion_time r.Sim.schedule 1);
  Alcotest.(check rat) "long job finishes last" (ri 11)
    (S.completion_time r.Sim.schedule 0)

let test_fair_processor_sharing () =
  (* Two identical jobs on one machine under fair sharing progress at the
     same rate and both are done at time 4 (total work).  Within the final
     event segment the engine lays the equal shares out back to back, so
     one job's last slice ends at 2 and the other's at 4 — processor
     sharing up to intra-segment sequencing. *)
  let inst = simple [| [| 2; 2 |] |] in
  let r = Sim.run (module Po.Fair) inst in
  check_valid "fair" r.Sim.schedule;
  Alcotest.(check rat) "all work done at 4" (ri 4) (S.makespan r.Sim.schedule);
  Alcotest.(check rat) "flows 2 and 4" (ri 6) (S.sum_flow r.Sim.schedule)

let test_evd_respects_weights () =
  (* Both jobs present at t=0; job 1 has much higher weight, so its virtual
     deadline is earlier and EVD serves it first despite its later index. *)
  let inst = simple ~weights:[| ri 1; ri 10 |] [| [| 2; 2 |] |] in
  let r = Sim.run (module Po.Evd) inst in
  check_valid "evd" r.Sim.schedule;
  Alcotest.(check rat) "heavy job first" (ri 2) (S.completion_time r.Sim.schedule 1);
  Alcotest.(check rat) "light job second" (ri 4) (S.completion_time r.Sim.schedule 0)

let test_engine_honors_review_at () =
  (* A quantum-based round-robin policy exercises the self-wakeup path:
     with no arrivals or completions due, the engine must still cut
     segments at the requested review instants. *)
  let module Rr : Sim.POLICY = struct
    type state = int ref (* decision counter drives the alternation *)

    let name = "round-robin"
    let init _ = ref 0
    let on_arrival _ ~now:_ ~job:_ = ()
    let on_completion _ ~now:_ ~job:_ = ()
    let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
    let on_platform_change = Sim.rebuild_on_platform_change

    let decide counter ~now ~active =
      incr counter;
      let pick = List.nth active (!counter mod List.length active) in
      {
        Sim.shares = [ { Sim.machine = 0; job = pick.Sim.id; share = R.one } ];
        review_at = Some (R.add now R.one) (* quantum of one second *);
      }
  end in
  let inst = simple [| [| 4; 4 |] |] in
  let r = Sim.run (module Rr) inst in
  check_valid "round robin" r.Sim.schedule;
  (* Quantum-sized slices alternate between the two jobs. *)
  Alcotest.(check bool) "many decisions (one per quantum)" true (r.Sim.decisions >= 8);
  List.iter
    (fun (s : S.slice) ->
      Alcotest.(check rat) "quantum slices" (ri 1) (R.sub s.stop s.start))
    (S.slices r.Sim.schedule);
  Alcotest.(check rat) "all work done" (ri 8) (S.makespan r.Sim.schedule)

let test_engine_rejects_bad_policy () =
  let module Bad : Sim.POLICY = struct
    type state = unit

    let name = "bad"
    let init _ = ()
    let on_arrival () ~now:_ ~job:_ = ()
    let on_completion () ~now:_ ~job:_ = ()
    let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
    let on_platform_change = Sim.rebuild_on_platform_change

    let decide () ~now:_ ~active =
      (* Overload machine 0 with total share 2. *)
      match active with
      | (v : Sim.job_view) :: _ ->
        {
          Sim.shares =
            [ { Sim.machine = 0; job = v.id; share = R.one };
              { Sim.machine = 0; job = v.id; share = R.one }
            ];
          review_at = None;
        }
      | [] -> { Sim.shares = []; review_at = None }
  end in
  let inst = simple [| [| 2 |] |] in
  Alcotest.(check bool) "over-capacity rejected" true
    (try ignore (Sim.run (module Bad) inst); false with Invalid_argument _ -> true)

let test_engine_rejects_starvation () =
  let module Lazy_policy : Sim.POLICY = struct
    type state = unit

    let name = "lazy"
    let init _ = ()
    let on_arrival () ~now:_ ~job:_ = ()
    let on_completion () ~now:_ ~job:_ = ()
    let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
    let on_platform_change = Sim.rebuild_on_platform_change
    let decide () ~now:_ ~active:_ = { Sim.shares = []; review_at = None }
  end in
  let inst = simple [| [| 2 |] |] in
  Alcotest.(check bool) "starvation detected" true
    (try ignore (Sim.run (module Lazy_policy) inst); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Online adaptation of the offline algorithm                          *)
(* ------------------------------------------------------------------ *)

let test_online_opt_equals_offline_at_zero () =
  (* All jobs available at time 0: the online adaptation executes the
     offline optimal plan and must achieve exactly F*. *)
  let inst =
    simple ~weights:[| ri 1; ri 4; ri 2 |] [| [| 4; 2; 3 |]; [| 8; 0; 6 |] |]
  in
  let offline = Mf.solve inst in
  let online = Sim.run (module Oo.Divisible) inst in
  check_valid "online-opt" online.Sim.schedule;
  Alcotest.(check rat) "achieves offline optimum" offline.Mf.objective
    (S.max_weighted_flow online.Sim.schedule)

let test_online_opt_single_job () =
  let inst = simple ~releases:[| ri 3 |] ~weights:[| ri 2 |] [| [| 2 |]; [| 6 |] |] in
  let online = Sim.run (module Oo.Divisible) inst in
  check_valid "single" online.Sim.schedule;
  (* Harmonic completion: 3 + 1/(1/2+1/6) = 9/2; weighted flow 2·3/2 = 3. *)
  Alcotest.(check rat) "optimal flow" (ri 3) (S.max_weighted_flow online.Sim.schedule)

let test_online_opt_beats_mct () =
  (* MCT commits a large job to the fast machine; small jobs arriving just
     after are stuck behind it (or on the far slower machine).  The online
     adaptation preempts. *)
  let inst =
    simple
      ~releases:[| R.zero; ri 1; ri 2 |]
      [| [| 10; 1; 1 |]; [| 40; 20; 20 |] |]
  in
  let mct = Sim.run (module Po.Mct) inst in
  let oo = Sim.run (module Oo.Divisible) inst in
  check_valid "mct" mct.Sim.schedule;
  check_valid "online-opt" oo.Sim.schedule;
  let f_mct = S.max_weighted_flow mct.Sim.schedule in
  let f_oo = S.max_weighted_flow oo.Sim.schedule in
  Alcotest.(check bool)
    (Printf.sprintf "online-opt (%s) strictly beats MCT (%s)" (R.to_string f_oo)
       (R.to_string f_mct))
    true
    (R.compare f_oo f_mct < 0)

(* ------------------------------------------------------------------ *)
(* Properties: every policy produces valid schedules dominated by the
   offline bound.                                                       *)
(* ------------------------------------------------------------------ *)

let instance_gen =
  let open QCheck.Gen in
  let* n = int_range 1 4 in
  let* m = int_range 1 3 in
  let* releases = array_size (return n) (int_range 0 8) in
  let* weights = array_size (return n) (int_range 1 3) in
  let* costs = array_size (return m) (array_size (return n) (int_range 0 5)) in
  let* fallback = array_size (return n) (int_range 1 5) in
  let costs =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j c ->
            if i = 0 && Array.for_all (fun r -> r.(j) = 0) costs then fallback.(j) else c)
          row)
      costs
  in
  return
    (I.make
       ~releases:(Array.map R.of_int releases)
       ~weights:(Array.map R.of_int weights)
       (Array.map (Array.map (fun c -> if c = 0 then None else Some (R.of_int c))) costs))

let arbitrary_instance =
  QCheck.make instance_gen ~print:(fun i -> Format.asprintf "%a" I.pp i)

let policy_property (module P : Sim.POLICY) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: valid schedule, dominated by offline optimum" P.name)
    ~count:25 arbitrary_instance
    (fun inst ->
      let r = Sim.run (module P) inst in
      let offline = (Mf.solve inst).Mf.objective in
      Result.is_ok (S.validate_divisible r.Sim.schedule)
      && R.compare offline (S.max_weighted_flow r.Sim.schedule) <= 0)

let prop_online_opt_matches_offline_when_static =
  QCheck.Test.make ~name:"online-opt achieves F* when all jobs arrive at 0" ~count:20
    (QCheck.make
       (QCheck.Gen.map
          (fun inst ->
            let n = I.num_jobs inst in
            I.make
              ~releases:(Array.make n R.zero)
              ~weights:(Array.init n (I.weight inst))
              (Array.init (I.num_machines inst) (fun i ->
                   Array.init n (fun j -> I.cost inst ~machine:i ~job:j))))
          instance_gen))
    (fun inst ->
      let offline = Mf.solve inst in
      let online = Sim.run (module Oo.Divisible) inst in
      R.equal offline.Mf.objective (S.max_weighted_flow online.Sim.schedule))

let prop_lazy_matches_eager =
  (* The cached plan's horizon is the earliest deadline, where a completion
     occurs anyway, so the lazy re-optimizer refreshes at the same instants
     and must deliver the same quality. *)
  QCheck.Test.make ~name:"lazy re-optimization matches the eager one" ~count:20
    arbitrary_instance (fun inst ->
      let eager = Sim.run (module Oo.Divisible) inst in
      let lazy_ = Sim.run (module Oo.Lazy_divisible) inst in
      R.equal
        (S.max_weighted_flow eager.Sim.schedule)
        (S.max_weighted_flow lazy_.Sim.schedule))

(* ------------------------------------------------------------------ *)
(* Compare harness and adversarial families                            *)
(* ------------------------------------------------------------------ *)

let test_compare_report () =
  let inst = simple ~releases:[| R.zero; ri 1 |] [| [| 3; 1 |]; [| 6; 2 |] |] in
  let report = Online.Compare.run inst in
  Alcotest.(check int) "six policies" 6 (List.length report.Online.Compare.entries);
  List.iter
    (fun (e : Online.Compare.entry) ->
      Alcotest.(check bool) (e.policy ^ " at least offline") true (e.vs_offline >= 0.999);
      Alcotest.(check bool) (e.policy ^ " made decisions") true (e.decisions > 0))
    report.Online.Compare.entries;
  (* online-opt is last in the default list and must be optimal here. *)
  let oo = List.nth report.Online.Compare.entries 5 in
  Alcotest.(check string) "last is online-opt" "online-opt" oo.Online.Compare.policy;
  (* The pretty-printer emits one line per policy. *)
  let txt = Format.asprintf "%a" Online.Compare.pp report in
  List.iter
    (fun (e : Online.Compare.entry) ->
      let occurs =
        let p = e.Online.Compare.policy in
        let rec search i =
          i + String.length p <= String.length txt
          && (String.sub txt i (String.length p) = p || search (i + 1))
        in
        search 0
      in
      Alcotest.(check bool) ("pp mentions " ^ e.Online.Compare.policy) true occurs)
    report.Online.Compare.entries

let test_mct_trap_grows () =
  (* The MCT stretch ratio must grow with the trap scale while online-opt
     stays optimal. *)
  let ratio_at k =
    let inst = I.stretch_weights (Online.Adversarial.mct_trap ~scale:k) in
    let report =
      Online.Compare.run
        ~policies:[ (module Po.Mct); (module Oo.Divisible) ]
        inst
    in
    match report.Online.Compare.entries with
    | [ mct; oo ] -> (mct.Online.Compare.vs_offline, oo.Online.Compare.vs_offline)
    | _ -> Alcotest.fail "two entries expected"
  in
  let mct4, oo4 = ratio_at 4 in
  let mct8, oo8 = ratio_at 8 in
  Alcotest.(check bool) "ratio grows" true (mct8 > mct4 && mct4 > 1.5);
  Alcotest.(check bool) "online-opt optimal at 4" true (oo4 < 1.001);
  Alcotest.(check bool) "online-opt optimal at 8" true (oo8 < 1.001)

let test_srpt_starvation_grows () =
  let ratio_at n =
    let inst = Online.Adversarial.srpt_starvation ~jobs:n in
    let report = Online.Compare.run ~policies:[ (module Po.Srpt) ] inst in
    (List.hd report.Online.Compare.entries).Online.Compare.vs_offline
  in
  Alcotest.(check bool) "starvation worsens" true (ratio_at 8 > ratio_at 3 && ratio_at 3 > 1.2)

let test_adversarial_validation () =
  Alcotest.(check bool) "scale < 2 rejected" true
    (try ignore (Online.Adversarial.mct_trap ~scale:1); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "jobs < 1 rejected" true
    (try ignore (Online.Adversarial.srpt_starvation ~jobs:0); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "online"
    [ ( "engine",
        [ Alcotest.test_case "mct hand case" `Quick test_mct_hand_case;
          Alcotest.test_case "mct affinity" `Quick test_mct_respects_affinity;
          Alcotest.test_case "fcfs order" `Quick test_fcfs_order;
          Alcotest.test_case "srpt preempts" `Quick test_srpt_preempts;
          Alcotest.test_case "fair processor sharing" `Quick test_fair_processor_sharing;
          Alcotest.test_case "evd respects weights" `Quick test_evd_respects_weights;
          Alcotest.test_case "review_at honored" `Quick test_engine_honors_review_at;
          Alcotest.test_case "rejects bad policy" `Quick test_engine_rejects_bad_policy;
          Alcotest.test_case "rejects starvation" `Quick test_engine_rejects_starvation
        ] );
      ( "online-opt",
        [ Alcotest.test_case "equals offline at zero" `Quick
            test_online_opt_equals_offline_at_zero;
          Alcotest.test_case "single job" `Quick test_online_opt_single_job;
          Alcotest.test_case "beats MCT on the motivating case" `Quick
            test_online_opt_beats_mct;
          QCheck_alcotest.to_alcotest prop_online_opt_matches_offline_when_static;
          QCheck_alcotest.to_alcotest prop_lazy_matches_eager
        ] );
      ( "compare",
        [ Alcotest.test_case "report structure" `Quick test_compare_report;
          Alcotest.test_case "mct trap grows" `Quick test_mct_trap_grows;
          Alcotest.test_case "srpt starvation grows" `Quick test_srpt_starvation_grows;
          Alcotest.test_case "adversarial validation" `Quick test_adversarial_validation
        ] );
      ("policy-props", List.map policy_property policies |> List.map QCheck_alcotest.to_alcotest)
    ]
