(* Tests for the scheduling core: instance model, schedules and validators,
   Theorem 1 (makespan), Lemma 1 (deadline feasibility), Theorem 2 (max
   weighted flow), the milestone machinery, the open-shop reconstruction and
   the preemptive solver of Section 4.4.

   The central property tests are optimality certificates: the solvers'
   objective value F* must be feasible while (1 - 1/2^20)·F* must be
   infeasible — with exact rational arithmetic this pins the optimum. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module Mk = Sched_core.Makespan
module Dl = Sched_core.Deadline
module Ms = Sched_core.Milestones
module Mf = Sched_core.Max_flow
module Pre = Sched_core.Preemptive
module Os = Sched_core.Openshop

let rat = Alcotest.testable R.pp R.equal
let q = R.of_ints
let ri = R.of_int

let some_costs rows = Array.map (Array.map (fun c -> if c = 0 then None else Some (ri c))) rows

let simple ?releases ?weights costs =
  let cost = some_costs costs in
  let n = Array.length cost.(0) in
  let releases = Option.value releases ~default:(Array.make n R.zero) in
  let weights = Option.value weights ~default:(Array.make n R.one) in
  I.make ~releases ~weights cost

let check_valid_divisible what sched =
  match S.validate_divisible sched with
  | Ok () -> ()
  | Error e -> Alcotest.fail (what ^ ": invalid divisible schedule: " ^ e)

let check_valid_preemptive what sched =
  match S.validate_preemptive sched with
  | Ok () -> ()
  | Error e -> Alcotest.fail (what ^ ": invalid preemptive schedule: " ^ e)

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

let test_instance_validation () =
  let bad f = Alcotest.(check bool) "rejected" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  bad (fun () -> simple [| [| 1 |]; [| 1; 2 |] |]);
  bad (fun () -> simple ~releases:[| ri (-1) |] [| [| 1 |] |]);
  bad (fun () -> simple ~weights:[| R.zero |] [| [| 1 |] |]);
  bad (fun () -> I.make ~releases:[| R.zero |] ~weights:[| R.one |] [| [| Some (ri (-2)) |] |]);
  (* job 1 cannot run anywhere *)
  bad (fun () -> simple [| [| 1; 0 |]; [| 2; 0 |] |]);
  bad (fun () -> I.make ~releases:[||] ~weights:[||] [||])

let test_instance_uniform () =
  let inst =
    I.uniform
      ~speeds:[| ri 2; ri 3 |] (* seconds per unit *)
      ~sizes:[| ri 5; ri 7 |]
      ~releases:[| R.zero; R.one |]
      ~weights:[| R.one; R.one |]
      ~available:[| [| true; false |]; [| true; true |] |]
  in
  Alcotest.(check (option rat)) "c00" (Some (ri 10)) (I.cost inst ~machine:0 ~job:0);
  Alcotest.(check (option rat)) "c01 masked" None (I.cost inst ~machine:0 ~job:1);
  Alcotest.(check (option rat)) "c11" (Some (ri 21)) (I.cost inst ~machine:1 ~job:1);
  Alcotest.(check rat) "fastest j0" (ri 10) (I.fastest_cost inst ~job:0);
  Alcotest.(check rat) "fastest j1" (ri 21) (I.fastest_cost inst ~job:1);
  Alcotest.(check rat) "max release" R.one (I.max_release inst)

let test_stretch_weights () =
  let inst = simple [| [| 4; 10 |]; [| 2; 5 |] |] in
  let sw = I.stretch_weights inst in
  Alcotest.(check rat) "w0 = 1/2" (q 1 2) (I.weight sw 0);
  Alcotest.(check rat) "w1 = 1/5" (q 1 5) (I.weight sw 1)

(* ------------------------------------------------------------------ *)
(* Schedule representation and validators                              *)
(* ------------------------------------------------------------------ *)

let test_schedule_metrics () =
  let inst = simple ~releases:[| R.zero; ri 2 |] ~weights:[| ri 1; ri 3 |]
      [| [| 4; 2 |] |] in
  let sched =
    S.make inst
      [ { S.machine = 0; job = 0; start = R.zero; stop = ri 4 };
        { S.machine = 0; job = 1; start = ri 4; stop = ri 6 }
      ]
  in
  check_valid_divisible "metrics" sched;
  Alcotest.(check rat) "C0" (ri 4) (S.completion_time sched 0);
  Alcotest.(check rat) "C1" (ri 6) (S.completion_time sched 1);
  Alcotest.(check rat) "makespan" (ri 6) (S.makespan sched);
  Alcotest.(check rat) "flow1" (ri 4) (S.flow sched 1);
  Alcotest.(check rat) "max flow" (ri 4) (S.max_flow sched);
  Alcotest.(check rat) "sum flow" (ri 8) (S.sum_flow sched);
  Alcotest.(check rat) "max wflow" (ri 12) (S.max_weighted_flow sched);
  Alcotest.(check rat) "max stretch" (ri 2) (S.max_stretch sched);
  Alcotest.(check rat) "busy m0" (ri 6) (S.machine_busy_time sched 0)

let test_validator_catches_overlap () =
  let inst = simple [| [| 4; 4 |] |] in
  let sched =
    S.make inst
      [ { S.machine = 0; job = 0; start = R.zero; stop = ri 4 };
        { S.machine = 0; job = 1; start = ri 3; stop = ri 7 }
      ]
  in
  Alcotest.(check bool) "overlap rejected" true (Result.is_error (S.validate_divisible sched))

let test_validator_catches_incomplete () =
  let inst = simple [| [| 4 |] |] in
  let sched = S.make inst [ { S.machine = 0; job = 0; start = R.zero; stop = ri 2 } ] in
  Alcotest.(check bool) "half a job rejected" true
    (Result.is_error (S.validate_divisible sched))

let test_validator_catches_early_start () =
  let inst = simple ~releases:[| ri 5 |] [| [| 4 |] |] in
  let sched = S.make inst [ { S.machine = 0; job = 0; start = ri 1; stop = ri 5 } ] in
  Alcotest.(check bool) "pre-release start rejected" true
    (Result.is_error (S.validate_divisible sched))

let test_validator_intra_job_parallelism () =
  (* Job split across two machines at the same time: fine for divisible,
     rejected for preemptive. *)
  let inst = simple [| [| 4 |]; [| 4 |] |] in
  let sched =
    S.make inst
      [ { S.machine = 0; job = 0; start = R.zero; stop = ri 2 };
        { S.machine = 1; job = 0; start = R.zero; stop = ri 2 }
      ]
  in
  check_valid_divisible "parallel halves" sched;
  Alcotest.(check bool) "preemptive validator rejects" true
    (Result.is_error (S.validate_preemptive sched));
  Alcotest.(check rat) "completes at 2" (ri 2) (S.makespan sched)

let test_pack () =
  let inst = simple ~releases:[| R.zero; R.zero |] [| [| 4; 2 |] |] in
  let sched =
    S.pack inst
      ~intervals:[| (R.zero, ri 6) |]
      ~fractions:[ (0, 0, 0, R.one); (0, 0, 1, R.one) ]
  in
  check_valid_divisible "pack" sched;
  Alcotest.(check rat) "makespan" (ri 6) (S.makespan sched);
  Alcotest.check_raises "overfull interval"
    (Invalid_argument "Schedule.pack: machine 0 overfull in interval 0")
    (fun () ->
      ignore
        (S.pack inst ~intervals:[| (R.zero, ri 5) |]
           ~fractions:[ (0, 0, 0, R.one); (0, 0, 1, R.one) ]))

(* ------------------------------------------------------------------ *)
(* Makespan (Theorem 1)                                                *)
(* ------------------------------------------------------------------ *)

let test_makespan_single () =
  let inst = simple ~releases:[| ri 3 |] [| [| 4 |] |] in
  let { Mk.makespan; schedule } = Mk.solve inst in
  check_valid_divisible "single job" schedule;
  Alcotest.(check rat) "r + c" (ri 7) makespan

let test_makespan_divisible_split () =
  (* One job, two identical machines: divisibility halves the time. *)
  let inst = simple [| [| 6 |]; [| 6 |] |] in
  let { Mk.makespan; schedule } = Mk.solve inst in
  check_valid_divisible "split job" schedule;
  Alcotest.(check rat) "c/2" (ri 3) makespan

let test_makespan_harmonic () =
  (* One job, machines of speeds 2 and 6 time units: rate 1/2 + 1/6 = 2/3,
     so the makespan is exactly 3/2. *)
  let inst = simple [| [| 2 |]; [| 6 |] |] in
  let { Mk.makespan; schedule } = Mk.solve inst in
  check_valid_divisible "harmonic" schedule;
  Alcotest.(check rat) "1/(1/2+1/6)" (q 3 2) makespan;
  Alcotest.(check rat) "equals lower bound" (Mk.lower_bound inst) makespan

let test_makespan_releases () =
  (* Single machine; second job arrives while the first still runs. *)
  let inst = simple ~releases:[| R.zero; ri 2 |] [| [| 4; 1 |] |] in
  let { Mk.makespan; schedule } = Mk.solve inst in
  check_valid_divisible "staggered" schedule;
  Alcotest.(check rat) "busy until 5" (ri 5) makespan

let test_makespan_restricted () =
  (* Job 0 only on machine 0, job 1 only on machine 1 (databank affinity):
     no sharing possible. *)
  let inst = simple [| [| 4; 0 |]; [| 0; 7 |] |] in
  let { Mk.makespan; schedule } = Mk.solve inst in
  check_valid_divisible "restricted" schedule;
  Alcotest.(check rat) "max of the two" (ri 7) makespan

let test_makespan_late_release_dominates () =
  (* A tiny job released very late forces the makespan past its release. *)
  let inst = simple ~releases:[| R.zero; ri 100 |] [| [| 1; 1 |] |] in
  let { Mk.makespan; _ } = Mk.solve inst in
  Alcotest.(check rat) "101" (ri 101) makespan

let prop_makespan_uniform_closed_form =
  (* Uniform machines, common release, full availability: fluid jobs fill
     all machines perfectly, so the optimal makespan has the closed form
     total_work / Σ_i (1/s_i).  A strong independent check of the LP. *)
  QCheck.Test.make ~name:"uniform common-release makespan = W/Σ(1/s)" ~count:40
    (QCheck.make
       QCheck.Gen.(
         let* m = int_range 1 4 in
         let* n = int_range 1 5 in
         let* speeds = array_size (return m) (int_range 1 5) in
         let* sizes = array_size (return n) (int_range 1 9) in
         return (Array.map R.of_int speeds, Array.map R.of_int sizes)))
    (fun (speeds, sizes) ->
      let n = Array.length sizes and m = Array.length speeds in
      let inst =
        I.uniform ~speeds ~sizes
          ~releases:(Array.make n R.zero)
          ~weights:(Array.make n R.one)
          ~available:(Array.make_matrix m n true)
      in
      let total_work = Array.fold_left R.add R.zero sizes in
      let total_rate =
        Array.fold_left (fun acc s -> R.add acc (R.inv s)) R.zero speeds
      in
      R.equal (Mk.solve inst).Mk.makespan (R.div total_work total_rate))

(* Reference single-machine makespan: work-conserving in release order. *)
let greedy_single_machine releases costs =
  let jobs = List.combine (Array.to_list releases) (Array.to_list costs) in
  let jobs = List.sort (fun (r1, _) (r2, _) -> R.compare r1 r2) jobs in
  List.fold_left (fun t (r, c) -> R.add (R.max t r) c) R.zero jobs

(* ------------------------------------------------------------------ *)
(* Random instance generator                                           *)
(* ------------------------------------------------------------------ *)

let instance_gen ?(max_jobs = 4) ?(max_machines = 3) () =
  let open QCheck.Gen in
  let* n = int_range 1 max_jobs in
  let* m = int_range 1 max_machines in
  let* releases = array_size (return n) (int_range 0 8) in
  let* weights = array_size (return n) (int_range 1 4) in
  let* costs = array_size (return m) (array_size (return n) (int_range 0 6)) in
  (* Entry 0 means unavailable; make sure each job can run somewhere. *)
  let* fallback = array_size (return n) (int_range 1 6) in
  let costs =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j c ->
            let orphan = Array.for_all (fun r -> r.(j) = 0) costs in
            if i = 0 && orphan then fallback.(j) else c)
          row)
      costs
  in
  return
    (I.make
       ~releases:(Array.map R.of_int releases)
       ~weights:(Array.map R.of_int weights)
       (Array.map (Array.map (fun c -> if c = 0 then None else Some (R.of_int c))) costs))

let arbitrary_instance =
  QCheck.make
    (instance_gen ())
    ~print:(fun i -> Format.asprintf "%a" I.pp i)

let prop_makespan_valid_and_bounded =
  QCheck.Test.make ~name:"makespan schedule valid, between LB and serial UB" ~count:60
    arbitrary_instance (fun inst ->
      let { Mk.makespan; schedule } = Mk.solve inst in
      Result.is_ok (S.validate_divisible schedule)
      && R.equal (S.makespan schedule) makespan
      && R.compare (Mk.lower_bound inst) makespan <= 0)

let prop_makespan_single_machine_greedy =
  QCheck.Test.make ~name:"single-machine makespan equals greedy" ~count:60
    (QCheck.make (instance_gen ~max_machines:1 ()))
    (fun inst ->
      let n = I.num_jobs inst in
      let releases = Array.init n (I.release inst) in
      let costs =
        Array.init n (fun j ->
            match I.cost inst ~machine:0 ~job:j with Some c -> c | None -> assert false)
      in
      R.equal (Mk.solve inst).Mk.makespan (greedy_single_machine releases costs))

(* ------------------------------------------------------------------ *)
(* Deadline scheduling (Lemma 1)                                       *)
(* ------------------------------------------------------------------ *)

let test_deadline_tight () =
  let inst = simple [| [| 4; 2 |] |] in
  (* Exactly enough time for both jobs. *)
  (match Dl.feasible inst ~deadlines:[| ri 6; ri 6 |] with
   | Some sched ->
     check_valid_divisible "tight" sched;
     Alcotest.(check bool) "meets deadlines" true
       (R.compare (S.completion_time sched 0) (ri 6) <= 0
       && R.compare (S.completion_time sched 1) (ri 6) <= 0)
   | None -> Alcotest.fail "tight instance should be feasible");
  Alcotest.(check bool) "one tick less is infeasible" false
    (Dl.is_feasible inst ~deadlines:[| q 59 10; q 59 10 |])

let test_deadline_individual () =
  (* Job 1 has a tight personal deadline and must preempt job 0's window. *)
  let inst = simple ~releases:[| R.zero; ri 2 |] [| [| 4; 1 |] |] in
  (match Dl.feasible inst ~deadlines:[| ri 6; ri 3 |] with
   | Some sched ->
     check_valid_divisible "individual" sched;
     Alcotest.(check bool) "job1 in [2,3]" true
       (R.compare (S.completion_time sched 1) (ri 3) <= 0)
   | None -> Alcotest.fail "should be feasible");
  (* Job 1's window [2, 5/2] has length 1/2 < its cost 1: impossible. *)
  Alcotest.(check bool) "impossible deadline" false
    (Dl.is_feasible inst ~deadlines:[| ri 6; q 5 2 |])

let test_deadline_before_release () =
  let inst = simple ~releases:[| ri 5 |] [| [| 1 |] |] in
  Alcotest.(check bool) "deadline before release" false
    (Dl.is_feasible inst ~deadlines:[| ri 4 |])

let test_flow_deadlines () =
  let inst = simple ~releases:[| ri 2 |] ~weights:[| ri 4 |] [| [| 1 |] |] in
  let d = Dl.flow_deadlines inst ~objective:(ri 8) in
  Alcotest.(check rat) "r + F/w" (ri 4) d.(0)

let prop_deadline_monotone =
  (* Loosening every deadline can only preserve feasibility. *)
  QCheck.Test.make ~name:"deadline feasibility is monotone" ~count:40
    (QCheck.pair arbitrary_instance (QCheck.int_range 1 10))
    (fun (inst, slack) ->
      let n = I.num_jobs inst in
      let tight =
        Array.init n (fun j ->
            R.add (I.release inst j) (I.fastest_cost inst ~job:j))
      in
      let loose = Array.map (fun d -> R.add d (ri slack)) tight in
      (not (Dl.is_feasible inst ~deadlines:tight))
      || Dl.is_feasible inst ~deadlines:loose)

let prop_deadline_witness_meets_deadlines =
  QCheck.Test.make ~name:"deadline witness schedule meets every deadline" ~count:40
    arbitrary_instance (fun inst ->
      let n = I.num_jobs inst in
      (* Deadlines from a feasible objective: the serial bound. *)
      let f = Mf.feasible_upper_bound inst in
      let deadlines = Dl.flow_deadlines inst ~objective:f in
      match Dl.feasible inst ~deadlines with
      | None -> false (* serial bound is always feasible *)
      | Some sched ->
        Result.is_ok (S.validate_divisible sched)
        && List.for_all
             (fun j -> R.compare (S.completion_time sched j) deadlines.(j) <= 0)
             (List.init n (fun j -> j)))

let prop_cross_solver_sanity =
  (* A max-flow-optimal schedule is still a valid schedule, so its makespan
     cannot beat the optimal makespan. *)
  QCheck.Test.make ~name:"makespan of F*-schedule ≥ optimal makespan" ~count:30
    arbitrary_instance (fun inst ->
      let mk = (Mk.solve inst).Mk.makespan in
      let sched = (Mf.solve inst).Mf.schedule in
      R.compare mk (S.makespan sched) <= 0)

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

let test_intervals_of_epochals () =
  let iv = Sched_core.Intervals.of_epochals [ ri 3; ri 1; ri 2; ri 1 ] in
  Alcotest.(check int) "two intervals" 2 (Array.length iv);
  Alcotest.(check rat) "first lo" (ri 1) (fst iv.(0));
  Alcotest.(check rat) "first hi" (ri 2) (snd iv.(0));
  Alcotest.(check rat) "second hi" (ri 3) (snd iv.(1));
  Alcotest.(check int) "singleton" 0
    (Array.length (Sched_core.Intervals.of_epochals [ ri 5; ri 5 ]));
  Alcotest.(check int) "empty" 0 (Array.length (Sched_core.Intervals.of_epochals []))

let prop_intervals_tile =
  QCheck.Test.make ~name:"intervals tile the epochal range" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 12) (int_range 0 20))
    (fun values ->
      let iv = Sched_core.Intervals.of_epochals (List.map R.of_int values) in
      let rec contiguous k =
        k + 1 >= Array.length iv
        || (R.equal (snd iv.(k)) (fst iv.(k + 1)) && contiguous (k + 1))
      in
      Array.for_all (fun (lo, hi) -> R.compare lo hi < 0) iv && contiguous 0)

(* ------------------------------------------------------------------ *)
(* Milestones                                                          *)
(* ------------------------------------------------------------------ *)

let test_milestones_known () =
  (* Two jobs: r = (0, 6), w = (1, 2).
     d̄_0(F) = F, d̄_1(F) = 6 + F/2.
     d̄_0 crosses r_1 = 6 at F = 6.
     d̄_1 crosses r_0 = 0 at F = 2·(0-6) = -12 (discarded).
     d̄_0 crosses d̄_1 at F = 6/(1 - 1/2) = 12. *)
  let inst = simple ~releases:[| R.zero; ri 6 |] ~weights:[| ri 1; ri 2 |] [| [| 1; 1 |] |] in
  Alcotest.(check (list rat)) "milestones" [ ri 6; ri 12 ] (Ms.compute inst)

let test_milestones_equal_weights () =
  (* Equal weights: deadline functions are parallel, only release crossings
     remain. *)
  let inst = simple ~releases:[| R.zero; ri 3 |] [| [| 1; 1 |] |] in
  Alcotest.(check (list rat)) "only release crossings" [ ri 3 ] (Ms.compute inst)

let prop_milestones_bounded =
  QCheck.Test.make ~name:"milestone count ≤ n² − n, sorted, positive" ~count:100
    arbitrary_instance (fun inst ->
      let ms = Ms.compute inst in
      let rec sorted = function
        | a :: (b :: _ as rest) -> R.compare a b < 0 && sorted rest
        | _ -> true
      in
      List.length ms <= Ms.count_bound inst
      && sorted ms
      && List.for_all (fun f -> R.sign f > 0) ms)

(* ------------------------------------------------------------------ *)
(* Max weighted flow (Theorem 2)                                       *)
(* ------------------------------------------------------------------ *)

let test_maxflow_single_job () =
  (* One job on two machines: divisibility gives flow 1/(1/2 + 1/6) = 3/2,
     weighted by w = 4 → F* = 6. *)
  let inst = simple ~weights:[| ri 4 |] [| [| 2 |]; [| 6 |] |] in
  let r = Mf.solve inst in
  check_valid_divisible "single job" r.Mf.schedule;
  Alcotest.(check rat) "F*" (ri 6) r.Mf.objective;
  Alcotest.(check rat) "metric agrees" r.Mf.objective (S.max_weighted_flow r.Mf.schedule)

let test_maxflow_two_jobs_single_machine () =
  (* Both released at 0 on one machine, equal weights: whatever the order,
     the last completion is at c0 + c1; F* = 6. *)
  let inst = simple [| [| 4; 2 |] |] in
  let r = Mf.solve inst in
  check_valid_divisible "two jobs" r.Mf.schedule;
  Alcotest.(check rat) "F* = total work" (ri 6) r.Mf.objective

let test_maxflow_weights_matter () =
  (* Same two jobs, but job 1 (small) has weight 4: serving it first costs
     job 0 flow 6 (weighted 6); serving job 0 first costs job 1 weighted
     flow 4·6=24... the optimum balances w0·C0 = w1·C1 with C_last = 6.
     Candidates: finish j1 at time x then j0 at 6: F = max(6, 4x), best
     x = c1 = 2 → wait: j1 cannot finish before 2 anyway; F = max(6, 8)=8;
     or j0 first: F = max(4, 24) = 24.  Splitting: give j1 the head: its
     completion ≥ 2.  F* = 8. *)
  let inst = simple ~weights:[| ri 1; ri 4 |] [| [| 4; 2 |] |] in
  let r = Mf.solve inst in
  Alcotest.(check rat) "F* = 8" (ri 8) r.Mf.objective

let test_maxflow_staggered () =
  (* r = (0, 2), c = (4, 1), equal weights, single machine.
     Serving in arrival order with preemption of j0 by j1:
     j1 flow = 1 if served immediately on arrival (complete at 3),
     then j0 completes at 5, flow 5.  Or j0 first: j0 flow 4, j1 completes
     at 5, flow 3.  Or split: the optimum is min over max(C0, C1 - 2)...
     total work 5 means someone finishes at 5.  If j0 last: flow 5; if j1
     last: flow 3.  So F* = max(3, flow of j0 ≤ 4... j0 can complete at 4
     exactly if uninterrupted, flow 4, and j1 completes at 5, flow 3 → 4.
     Better: serve j0 during [0,4), j1 during [4,5): F = max(4,3) = 4?
     Serve j1 first at [2,3): j0 completes at 5 → F = 5.  Split j0 around:
     j0 in [0,2)∪[3,5) flow 5.  So F* = 4? Check balance: give j1 some
     head start δ: j0 completes at 4+δ... no improvement. F* = 4? But wait:
     what about finishing j0 before j1 arrives? impossible (4 > 2).
     F* = 4. *)
  let inst = simple ~releases:[| R.zero; ri 2 |] [| [| 4; 1 |] |] in
  let r = Mf.solve inst in
  Alcotest.(check rat) "F* = 4" (ri 4) r.Mf.objective

let test_maxflow_restricted_availability () =
  (* Two jobs, two machines, each job restricted to its own machine:
     independent. F* = max(w0 c0, w1 c1) = max(4, 7) = 7. *)
  let inst = simple [| [| 4; 0 |]; [| 0; 7 |] |] in
  let r = Mf.solve inst in
  Alcotest.(check rat) "independent" (ri 7) r.Mf.objective

(* Optimality certificate: F* feasible (by construction) and slightly less
   than F* infeasible. *)
let shrink f = R.mul f (q 1048575 1048576)

let prop_maxflow_optimal =
  QCheck.Test.make ~name:"max-flow: F* achieved, F*·(1-ε) infeasible" ~count:40
    arbitrary_instance (fun inst ->
      let r = Mf.solve inst in
      let achieved = R.equal (S.max_weighted_flow r.Mf.schedule) r.Mf.objective in
      let valid = Result.is_ok (S.validate_divisible r.Mf.schedule) in
      let below = shrink r.Mf.objective in
      let tight =
        not (Dl.is_feasible inst ~deadlines:(Dl.flow_deadlines inst ~objective:below))
      in
      achieved && valid && tight)

let prop_maxflow_weight_scaling =
  QCheck.Test.make ~name:"max-flow scales with uniform weight scaling" ~count:30
    (QCheck.pair arbitrary_instance (QCheck.int_range 2 5))
    (fun (inst, k) ->
      let n = I.num_jobs inst in
      let scaled =
        I.make
          ~releases:(Array.init n (I.release inst))
          ~weights:(Array.init n (fun j -> R.mul_int (I.weight inst j) k))
          (Array.init (I.num_machines inst) (fun i ->
               Array.init n (fun j -> I.cost inst ~machine:i ~job:j)))
      in
      R.equal (Mf.solve scaled).Mf.objective (R.mul_int (Mf.solve inst).Mf.objective k))

let prop_maxflow_below_serial =
  QCheck.Test.make ~name:"F* ≤ serial upper bound" ~count:40 arbitrary_instance
    (fun inst ->
      let r = Mf.solve inst in
      R.compare r.Mf.objective (Mf.feasible_upper_bound inst) <= 0)

let prop_bisection_brackets_optimum =
  (* The naive §4.3.1 bisection must sandwich the exact optimum: never
     below it, within (1 + ε) above it. *)
  QCheck.Test.make ~name:"bisection within (1+ε) of the exact optimum" ~count:20
    arbitrary_instance (fun inst ->
      let exact = (Mf.solve inst).Mf.objective in
      let approx = Mf.solve_bisection inst in
      let eps = q 1 1048576 in
      Result.is_ok (S.validate_divisible approx.Mf.schedule)
      && R.compare exact approx.Mf.objective <= 0
      && R.compare approx.Mf.objective (R.mul exact (R.add R.one eps)) <= 0)

let prop_max_stretch_consistent =
  QCheck.Test.make ~name:"max-stretch solver: metric equals objective" ~count:30
    arbitrary_instance (fun inst ->
      let r = Mf.solve_max_stretch inst in
      R.equal (S.max_stretch r.Mf.schedule) r.Mf.objective)

(* ------------------------------------------------------------------ *)
(* Flow origins (the online re-optimization hook)                      *)
(* ------------------------------------------------------------------ *)

let test_flow_origin_shifts_optimum () =
  (* One job, released at 2 but with flow measured from 0: it cannot start
     before 2 and takes 4, so its flow is 6 instead of 4. *)
  let costs = [| [| Some (ri 4) |] |] in
  let base = I.make ~releases:[| ri 2 |] ~weights:[| R.one |] costs in
  let aged =
    I.make ~flow_origins:[| R.zero |] ~releases:[| ri 2 |] ~weights:[| R.one |] costs
  in
  Alcotest.(check rat) "default origin" (ri 4) (Mf.solve base).Mf.objective;
  Alcotest.(check rat) "earlier origin" (ri 6) (Mf.solve aged).Mf.objective

let test_flow_origin_validation () =
  Alcotest.(check bool) "origin after release rejected" true
    (try
       ignore
         (I.make ~flow_origins:[| ri 3 |] ~releases:[| ri 2 |] ~weights:[| R.one |]
            [| [| Some (ri 1) |] |]);
       false
     with Invalid_argument _ -> true)

let test_flow_origin_milestone () =
  (* With o < r, the deadline function crosses the job's own release date:
     d̄(F) = 0 + F/1 = 2 at F = 2. *)
  let inst =
    I.make ~flow_origins:[| R.zero |] ~releases:[| ri 2 |] ~weights:[| R.one |]
      [| [| Some (ri 4) |] |]
  in
  Alcotest.(check (list rat)) "own-release milestone" [ ri 2 ] (Ms.compute inst)

let prop_flow_origin_dominates =
  QCheck.Test.make ~name:"earlier flow origins never decrease F*" ~count:25
    arbitrary_instance (fun inst ->
      let n = I.num_jobs inst in
      let releases = Array.init n (I.release inst) in
      let shifted =
        I.make
          ~flow_origins:(Array.map (fun r -> R.div_int r 2) releases)
          ~releases
          ~weights:(Array.init n (I.weight inst))
          (Array.init (I.num_machines inst) (fun i ->
               Array.init n (fun j -> I.cost inst ~machine:i ~job:j)))
      in
      R.compare (Mf.solve inst).Mf.objective (Mf.solve shifted).Mf.objective <= 0)

(* ------------------------------------------------------------------ *)
(* Flow_search: certified accelerated binary search                    *)
(* ------------------------------------------------------------------ *)

let prop_flow_search_certified =
  (* The float oracle may lie arbitrarily near the boundary; the search
     must still return the exact first-feasible index. *)
  QCheck.Test.make ~name:"flow search immune to approx-oracle lies" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* len = int_range 1 20 in
         let* exact_idx = int_range 0 (len - 1) in
         let* approx_idx = int_range 0 (len - 1) in
         return (len, exact_idx, approx_idx)))
    (fun (len, exact_idx, approx_idx) ->
      let candidates = Array.init len (fun i -> R.of_int i) in
      let exact f =
        if R.compare f (R.of_int exact_idx) >= 0 then Some f else None
      in
      let approx f = R.compare f (R.of_int approx_idx) >= 0 in
      let idx, payload =
        Sched_core.Flow_search.first_feasible ~exact ~approx candidates
      in
      (* The payload must be the winning probe's, not a stale one. *)
      idx = exact_idx && R.equal payload candidates.(idx))

(* ------------------------------------------------------------------ *)
(* Open-shop decomposition                                             *)
(* ------------------------------------------------------------------ *)

let test_openshop_identity () =
  let matrix = [| [| ri 2; R.zero |]; [| R.zero; ri 3 |] |] in
  let slots = Os.decompose ~matrix ~limit:(ri 3) in
  let total = Os.total_assigned slots ~machines:2 ~jobs:2 in
  Alcotest.(check rat) "m0 j0" (ri 2) total.(0).(0);
  Alcotest.(check rat) "m1 j1" (ri 3) total.(1).(1);
  Alcotest.(check rat) "durations sum to limit" (ri 3)
    (List.fold_left (fun acc (s : Os.slot) -> R.add acc s.duration) R.zero slots)

let test_openshop_exchange () =
  (* The classic case where both machines want both jobs: a 2x2 doubly
     stochastic matrix needs two slots. *)
  let matrix = [| [| ri 1; ri 2 |]; [| ri 2; ri 1 |] |] in
  let slots = Os.decompose ~matrix ~limit:(ri 3) in
  let total = Os.total_assigned slots ~machines:2 ~jobs:2 in
  Alcotest.(check rat) "m0 j0" (ri 1) total.(0).(0);
  Alcotest.(check rat) "m0 j1" (ri 2) total.(0).(1);
  Alcotest.(check rat) "m1 j0" (ri 2) total.(1).(0);
  Alcotest.(check rat) "m1 j1" (ri 1) total.(1).(1)

let test_openshop_rejects () =
  Alcotest.(check bool) "row sum over limit" true
    (try ignore (Os.decompose ~matrix:[| [| ri 5 |] |] ~limit:(ri 3)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative entry" true
    (try ignore (Os.decompose ~matrix:[| [| ri (-1) |] |] ~limit:(ri 3)); false
     with Invalid_argument _ -> true)

let matrix_gen =
  let open QCheck.Gen in
  let* m = int_range 1 4 in
  let* n = int_range 1 4 in
  let* entries = array_size (return m) (array_size (return n) (int_range 0 5)) in
  (* With entries ≤ 5 and at most 4 rows/columns, sums never exceed 20. *)
  let matrix = Array.map (Array.map R.of_int) entries in
  return (matrix, R.of_int 20)

let prop_openshop_no_conflicts =
  QCheck.Test.make ~name:"open-shop slots: totals exact, durations positive" ~count:100
    (QCheck.make matrix_gen) (fun (matrix, limit) ->
      let m = Array.length matrix and n = Array.length matrix.(0) in
      let slots = Os.decompose ~matrix ~limit in
      let total = Os.total_assigned slots ~machines:m ~jobs:n in
      let totals_ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          if not (R.equal total.(i).(j) matrix.(i).(j)) then totals_ok := false
        done
      done;
      let sum_durations =
        List.fold_left (fun acc (s : Os.slot) -> R.add acc s.duration) R.zero slots
      in
      !totals_ok
      && List.for_all (fun (s : Os.slot) -> R.sign s.duration > 0) slots
      && R.equal sum_durations limit
      (* Each Birkhoff extraction zeroes an entry of the (m+n)^2 embedding,
         which bounds the preemption count - the polynomiality argument. *)
      && List.length slots <= (m + n) * (m + n))

(* ------------------------------------------------------------------ *)
(* Preemptive solver (Section 4.4)                                     *)
(* ------------------------------------------------------------------ *)

let test_preemptive_single_job_two_machines () =
  (* Without divisibility a single job cannot use two machines at once:
     F* = w · min(c) instead of the harmonic mean. *)
  let inst = simple ~weights:[| ri 4 |] [| [| 2 |]; [| 6 |] |] in
  let r = Pre.solve inst in
  check_valid_preemptive "single job" r.Pre.schedule;
  Alcotest.(check rat) "F* = 4·2" (ri 8) r.Pre.objective

let test_preemptive_equals_divisible_on_one_machine () =
  (* On a single machine the two models coincide. *)
  let inst = simple ~releases:[| R.zero; ri 2 |] ~weights:[| ri 1; ri 3 |] [| [| 4; 1 |] |] in
  let d = Mf.solve inst and p = Pre.solve inst in
  Alcotest.(check rat) "same optimum" d.Mf.objective p.Pre.objective;
  check_valid_preemptive "1-machine preemptive" p.Pre.schedule

let prop_preemptive_valid_and_dominates =
  QCheck.Test.make ~name:"preemptive: valid schedule, F*_div ≤ F*_pre ≤ serial" ~count:25
    arbitrary_instance (fun inst ->
      let d = Mf.solve inst and p = Pre.solve inst in
      Result.is_ok (S.validate_preemptive p.Pre.schedule)
      && R.equal (S.max_weighted_flow p.Pre.schedule) p.Pre.objective
      && R.compare d.Mf.objective p.Pre.objective <= 0
      && R.compare p.Pre.objective (Mf.feasible_upper_bound inst) <= 0)

let prop_preemptive_single_machine_matches_divisible =
  QCheck.Test.make ~name:"preemptive = divisible on one machine" ~count:25
    (QCheck.make (instance_gen ~max_machines:1 ()))
    (fun inst ->
      R.equal (Mf.solve inst).Mf.objective (Pre.solve inst).Pre.objective)

(* ------------------------------------------------------------------ *)
(* Gantt renderings                                                    *)
(* ------------------------------------------------------------------ *)

let test_ascii_gantt () =
  let inst = simple [| [| 4; 2 |]; [| 0; 2 |] |] in
  let sched =
    S.make inst
      [ { S.machine = 0; job = 0; start = R.zero; stop = ri 4 };
        { S.machine = 1; job = 1; start = R.zero; stop = ri 2 }
      ]
  in
  let txt = Format.asprintf "%a" (S.pp_gantt ~width:16) sched in
  Alcotest.(check bool) "has M0 lane" true
    (String.length txt > 0 && String.index_opt txt '0' <> None);
  (* Machine 0 runs job 0 for the whole horizon: its row is full of '0'. *)
  let lines = String.split_on_char '\n' txt in
  (match lines with
   | m0 :: m1 :: _ ->
     Alcotest.(check bool) "M0 busy throughout" true
       (String.length (String.concat "" (String.split_on_char '0' m0)) < String.length m0);
     Alcotest.(check bool) "M1 idle second half" true (String.contains m1 '.')
   | _ -> Alcotest.fail "expected at least two lanes");
  (* Empty schedule renders without crashing. *)
  let empty = S.make inst [] in
  Alcotest.(check bool) "empty ok" true
    (String.length (Format.asprintf "%a" (S.pp_gantt ?width:None) empty) > 0)

let test_svg_gantt () =
  let inst = simple ~releases:[| R.zero; ri 2 |] [| [| 4; 2 |] |] in
  let r = Mf.solve inst in
  let svg = Sched_core.Gantt_svg.render r.Mf.schedule in
  Alcotest.(check bool) "svg header" true
    (String.length svg > 100 && String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) "closed" true
    (let suffix = "</svg>\n" in
     String.sub svg (String.length svg - String.length suffix) (String.length suffix)
     = suffix);
  (* One rect per slice plus lane backgrounds and the white canvas. *)
  let count_rects s =
    let n = ref 0 and i = ref 0 in
    let len = String.length s in
    while !i + 5 <= len do
      if String.sub s !i 5 = "<rect" then incr n;
      incr i
    done;
    !n
  in
  let slices = List.length (S.slices r.Mf.schedule) in
  Alcotest.(check int) "rect count" (slices + 1 + 1) (count_rects svg)

(* ------------------------------------------------------------------ *)
(* Instance_io                                                         *)
(* ------------------------------------------------------------------ *)

let test_io_parse () =
  let inst =
    Sched_core.Instance_io.of_string
      "machines 2\n# comment\njob 0 1 6 12\njob 5/2 2 inf 4\n\n"
  in
  Alcotest.(check int) "jobs" 2 (I.num_jobs inst);
  Alcotest.(check int) "machines" 2 (I.num_machines inst);
  Alcotest.(check rat) "release" (q 5 2) (I.release inst 1);
  Alcotest.(check rat) "weight" (ri 2) (I.weight inst 1);
  Alcotest.(check (option rat)) "inf cost" None (I.cost inst ~machine:0 ~job:1);
  Alcotest.(check (option rat)) "cost" (Some (ri 4)) (I.cost inst ~machine:1 ~job:1)

let test_io_errors () =
  let bad s =
    Alcotest.(check bool) ("rejects " ^ s) true
      (try ignore (Sched_core.Instance_io.of_string s); false
       with Invalid_argument _ -> true)
  in
  bad "";
  bad "job 0 1 2\nmachines 1\n";
  bad "machines 0\n";
  bad "machines 2\njob 0 1 5\n";
  bad "machines 1\njob 0 1 bogus\n";
  bad "machines 1\nfrob 0\n";
  bad "machines 1\njob 0 1 2\norigin 1 0\n" (* origin index out of range *);
  bad "machines 1\njob 2 1 2\norigin 0 3\n" (* origin after release *);
  (* A job-free file is the valid empty instance, not an error. *)
  let empty = Sched_core.Instance_io.of_string "machines 1\n" in
  Alcotest.(check int) "job-free file parses" 0 (I.num_jobs empty)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"instance text roundtrip" ~count:100 arbitrary_instance
    (fun inst ->
      let inst' = Sched_core.Instance_io.of_string (Sched_core.Instance_io.to_string inst) in
      I.num_jobs inst = I.num_jobs inst'
      && I.num_machines inst = I.num_machines inst'
      && List.for_all
           (fun j ->
             R.equal (I.release inst j) (I.release inst' j)
             && R.equal (I.weight inst j) (I.weight inst' j)
             && List.for_all
                  (fun i ->
                    I.cost inst ~machine:i ~job:j = I.cost inst' ~machine:i ~job:j
                    || (match (I.cost inst ~machine:i ~job:j, I.cost inst' ~machine:i ~job:j) with
                        | Some a, Some b -> R.equal a b
                        | None, None -> true
                        | _ -> false))
                  (List.init (I.num_machines inst) (fun i -> i)))
           (List.init (I.num_jobs inst) (fun j -> j)))

let same_instance inst inst' =
  I.num_jobs inst = I.num_jobs inst'
  && I.num_machines inst = I.num_machines inst'
  && List.for_all
       (fun j ->
         R.equal (I.release inst j) (I.release inst' j)
         && R.equal (I.weight inst j) (I.weight inst' j)
         && List.for_all
              (fun i ->
                match (I.cost inst ~machine:i ~job:j, I.cost inst' ~machine:i ~job:j) with
                | Some a, Some b -> R.equal a b
                | None, None -> true
                | _ -> false)
              (List.init (I.num_machines inst) (fun i -> i)))
       (List.init (I.num_jobs inst) (fun j -> j))

(* The solver-oriented generator above only emits small integers; the
   format also has to round-trip rational releases/weights/costs and
   infinite ([inf]) cost entries. *)
let messy_instance_gen =
  let open QCheck.Gen in
  let pos_rat = map2 (fun n d -> q n d) (int_range 1 60) (int_range 1 12) in
  let rat = map2 (fun n d -> q n d) (int_range 0 60) (int_range 1 12) in
  let* n = int_range 1 6 in
  let* m = int_range 1 4 in
  let* releases = array_size (return n) rat in
  let* weights = array_size (return n) pos_rat in
  let* costs =
    array_size (return m)
      (array_size (return n)
         (map2 (fun finite c -> if finite then Some c else None) bool pos_rat))
  in
  let* fallback = array_size (return n) pos_rat in
  for j = 0 to n - 1 do
    if Array.for_all (fun row -> row.(j) = None) costs then
      costs.(0).(j) <- Some fallback.(j)
  done;
  return (I.make ~releases ~weights costs)

let prop_io_roundtrip_messy =
  QCheck.Test.make ~name:"rational/inf instance text roundtrip" ~count:200
    (QCheck.make messy_instance_gen ~print:(fun i -> Format.asprintf "%a" I.pp i))
    (fun inst ->
      same_instance inst
        (Sched_core.Instance_io.of_string (Sched_core.Instance_io.to_string inst)))

let test_io_errors_malformed () =
  let bad s =
    Alcotest.(check bool) ("rejects " ^ String.escaped s) true
      (try ignore (Sched_core.Instance_io.of_string s); false
       with Invalid_argument _ -> true)
  in
  bad "machines 2\nmachines 2\njob 0 1 1 1\n";      (* duplicate header *)
  bad "machines two\njob 0 1 1\n";                  (* non-numeric count *)
  bad "machines 1\njob 0 1 1 7\n";                  (* too many costs *)
  bad "machines 2\njob -1 1 1 1\n";                 (* negative release *)
  bad "machines 2\njob 0 0 1 1\n";                  (* zero weight *)
  bad "machines 2\njob 0 1 -3 1\n";                 (* negative cost *)
  bad "machines 2\njob 0 1 inf inf\n";              (* unrunnable job *)
  bad "machines 2\njob 0 1 1/0 2\n";                (* zero denominator *)
  bad "machines 1\njob 0 1 2 extra words\n"

(* ------------------------------------------------------------------ *)
(* Solver variants: sparse (revised) vs dense (tableau) dispatch       *)
(* ------------------------------------------------------------------ *)

let with_variant v f =
  let saved = !Lp.Solve.variant in
  Lp.Solve.variant := v;
  Fun.protect ~finally:(fun () -> Lp.Solve.variant := saved) f

let with_warm w f =
  let saved = !Lp.Solve.warm in
  Lp.Solve.warm := w;
  Fun.protect ~finally:(fun () -> Lp.Solve.warm := saved) f

(* Bit-identical means the whole schedule matches, not just the objective;
   the printed form is an exact rendering of the rational slice list. *)
let print_sched s = Format.asprintf "%a" S.pp s

let prop_variant_makespan_identical =
  QCheck.Test.make ~name:"makespan: sparse and dense solvers bit-identical"
    ~count:30 arbitrary_instance (fun inst ->
      let rs = with_variant Lp.Solve.Sparse (fun () -> Mk.solve inst) in
      let rd = with_variant Lp.Solve.Dense (fun () -> Mk.solve inst) in
      R.equal rs.Mk.makespan rd.Mk.makespan
      && print_sched rs.Mk.schedule = print_sched rd.Mk.schedule)

let prop_variant_maxflow_identical =
  QCheck.Test.make ~name:"max-flow: sparse and dense solvers bit-identical"
    ~count:20 arbitrary_instance (fun inst ->
      let rs = with_variant Lp.Solve.Sparse (fun () -> Mf.solve inst) in
      let rd = with_variant Lp.Solve.Dense (fun () -> Mf.solve inst) in
      R.equal rs.Mf.objective rd.Mf.objective
      && rs.Mf.search_range = rd.Mf.search_range
      && print_sched rs.Mf.schedule = print_sched rd.Mf.schedule)

let prop_variant_deadline_identical =
  QCheck.Test.make ~name:"deadline feasibility agrees across solver variants"
    ~count:40
    (QCheck.pair arbitrary_instance (QCheck.int_range 1 10))
    (fun (inst, k) ->
      let deadlines =
        Array.init (I.num_jobs inst) (fun j ->
            R.add (I.release inst j) (R.mul_int (I.fastest_cost inst ~job:j) k))
      in
      with_variant Lp.Solve.Sparse (fun () -> Dl.is_feasible inst ~deadlines)
      = with_variant Lp.Solve.Dense (fun () -> Dl.is_feasible inst ~deadlines))

let prop_warm_toggle_identical =
  (* Warm starts only accelerate feasibility probes; disabling them must
     not change anything the solver returns. *)
  QCheck.Test.make ~name:"max-flow identical with warm starts disabled"
    ~count:20 arbitrary_instance (fun inst ->
      let rw = with_warm true (fun () -> Mf.solve inst) in
      let rc = with_warm false (fun () -> Mf.solve inst) in
      R.equal rw.Mf.objective rc.Mf.objective
      && print_sched rw.Mf.schedule = print_sched rc.Mf.schedule)

let prop_variant_preemptive_identical =
  QCheck.Test.make ~name:"preemptive: sparse and dense solvers bit-identical"
    ~count:10 arbitrary_instance (fun inst ->
      let rs = with_variant Lp.Solve.Sparse (fun () -> Pre.solve inst) in
      let rd = with_variant Lp.Solve.Dense (fun () -> Pre.solve inst) in
      R.equal rs.Pre.objective rd.Pre.objective
      && print_sched rs.Pre.schedule = print_sched rd.Pre.schedule)

(* ------------------------------------------------------------------ *)
(* Degeneracy classification and total solvers                         *)
(* ------------------------------------------------------------------ *)

let degeneracy =
  Alcotest.testable
    (fun fmt d -> Format.pp_print_string fmt (I.degeneracy_to_string d))
    ( = )

let check_degenerate what expected ?flow_origins ~releases ~weights cost =
  match I.make_checked ?flow_origins ~releases ~weights cost with
  | Ok _ -> Alcotest.failf "%s: accepted a degenerate instance" what
  | Error d -> Alcotest.check degeneracy what expected d

let test_make_checked_classifies () =
  check_degenerate "no machines" I.No_machines ~releases:[||] ~weights:[||] [||];
  check_degenerate "unrunnable job" (I.Unrunnable_job 1)
    ~releases:[| R.zero; R.zero |] ~weights:[| R.one; R.one |]
    [| [| Some R.one; None |]; [| Some R.one; None |] |];
  check_degenerate "zero weight" (I.Nonpositive_weight 0)
    ~releases:[| R.zero |] ~weights:[| R.zero |] [| [| Some R.one |] |];
  check_degenerate "negative release" (I.Negative_release 0)
    ~releases:[| ri (-1) |] ~weights:[| R.one |] [| [| Some R.one |] |];
  check_degenerate "origin after release" (I.Bad_flow_origin 0)
    ~flow_origins:[| ri 2 |] ~releases:[| R.one |] ~weights:[| R.one |]
    [| [| Some R.one |] |];
  check_degenerate "nonpositive cost" (I.Nonpositive_cost (0, 0))
    ~releases:[| R.zero |] ~weights:[| R.one |] [| [| Some (ri (-2)) |] |];
  (match
     I.make_checked ~releases:[| R.zero |] ~weights:[| R.one; R.one |]
       [| [| Some R.one |] |]
   with
   | Error (I.Shape_mismatch _) -> ()
   | Error d -> Alcotest.failf "shape: classified as %s" (I.degeneracy_to_string d)
   | Ok _ -> Alcotest.fail "shape: accepted mismatched arrays");
  (* A clean instance — including the 0-job edge — passes. *)
  (match I.make_checked ~releases:[| R.zero |] ~weights:[| R.one |] [| [| Some R.one |] |] with
   | Ok _ -> ()
   | Error d -> Alcotest.failf "clean: rejected as %s" (I.degeneracy_to_string d));
  match I.make_checked ~releases:[||] ~weights:[||] [| [||]; [||] |] with
  | Ok inst -> Alcotest.(check int) "0 jobs accepted" 0 (I.num_jobs inst)
  | Error d -> Alcotest.failf "0 jobs: rejected as %s" (I.degeneracy_to_string d)

let test_solve_total_trivial () =
  let empty =
    match I.make_checked ~releases:[||] ~weights:[||] [| [||]; [||] |] with
    | Ok i -> i
    | Error _ -> Alcotest.fail "empty instance rejected"
  in
  (match Mf.solve_total empty with
   | `Trivial sched ->
     Alcotest.(check int) "maxflow: empty schedule" 0 (List.length (S.slices sched));
     check_valid_divisible "maxflow trivial" sched
   | `Solved _ -> Alcotest.fail "maxflow: 0 jobs should be `Trivial");
  (match Mk.solve_total empty with
   | `Trivial sched ->
     Alcotest.(check int) "makespan: empty schedule" 0 (List.length (S.slices sched))
   | `Solved _ -> Alcotest.fail "makespan: 0 jobs should be `Trivial");
  match Pre.solve_total empty with
  | `Trivial sched ->
    Alcotest.(check int) "preemptive: empty schedule" 0 (List.length (S.slices sched));
    check_valid_preemptive "preemptive trivial" sched
  | `Solved _ -> Alcotest.fail "preemptive: 0 jobs should be `Trivial"

let test_solve_total_agrees () =
  let inst = simple ~releases:[| R.zero; R.one |] [| [| 2; 3 |]; [| 4; 2 |] |] in
  (match (Mf.solve_total inst, Mf.solve inst) with
   | `Solved r, r' -> Alcotest.check rat "maxflow objective" r'.Mf.objective r.Mf.objective
   | `Trivial _, _ -> Alcotest.fail "maxflow: nonempty instance cannot be `Trivial");
  (match (Mk.solve_total inst, Mk.solve inst) with
   | `Solved r, r' -> Alcotest.check rat "makespan" r'.Mk.makespan r.Mk.makespan
   | `Trivial _, _ -> Alcotest.fail "makespan: nonempty instance cannot be `Trivial");
  match (Pre.solve_total inst, Pre.solve inst) with
  | `Solved r, r' -> Alcotest.check rat "preemptive objective" r'.Pre.objective r.Pre.objective
  | `Trivial _, _ -> Alcotest.fail "preemptive: nonempty instance cannot be `Trivial"

let () =
  Alcotest.run "sched_core"
    [ ( "instance",
        [ Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "uniform with databanks" `Quick test_instance_uniform;
          Alcotest.test_case "stretch weights" `Quick test_stretch_weights
        ] );
      ( "schedule",
        [ Alcotest.test_case "metrics" `Quick test_schedule_metrics;
          Alcotest.test_case "overlap caught" `Quick test_validator_catches_overlap;
          Alcotest.test_case "incomplete caught" `Quick test_validator_catches_incomplete;
          Alcotest.test_case "early start caught" `Quick test_validator_catches_early_start;
          Alcotest.test_case "intra-job parallelism" `Quick test_validator_intra_job_parallelism;
          Alcotest.test_case "pack" `Quick test_pack
        ] );
      ( "makespan",
        [ Alcotest.test_case "single job" `Quick test_makespan_single;
          Alcotest.test_case "divisible split" `Quick test_makespan_divisible_split;
          Alcotest.test_case "harmonic sharing" `Quick test_makespan_harmonic;
          Alcotest.test_case "release dates" `Quick test_makespan_releases;
          Alcotest.test_case "restricted availability" `Quick test_makespan_restricted;
          Alcotest.test_case "late release" `Quick test_makespan_late_release_dominates;
          QCheck_alcotest.to_alcotest prop_makespan_valid_and_bounded;
          QCheck_alcotest.to_alcotest prop_makespan_uniform_closed_form;
          QCheck_alcotest.to_alcotest prop_makespan_single_machine_greedy
        ] );
      ( "deadline",
        [ Alcotest.test_case "tight window" `Quick test_deadline_tight;
          Alcotest.test_case "individual deadline" `Quick test_deadline_individual;
          Alcotest.test_case "deadline before release" `Quick test_deadline_before_release;
          Alcotest.test_case "flow deadlines" `Quick test_flow_deadlines;
          QCheck_alcotest.to_alcotest prop_deadline_monotone;
          QCheck_alcotest.to_alcotest prop_deadline_witness_meets_deadlines;
          QCheck_alcotest.to_alcotest prop_cross_solver_sanity
        ] );
      ( "intervals",
        [ Alcotest.test_case "of_epochals" `Quick test_intervals_of_epochals;
          QCheck_alcotest.to_alcotest prop_intervals_tile
        ] );
      ( "milestones",
        [ Alcotest.test_case "known crossings" `Quick test_milestones_known;
          Alcotest.test_case "equal weights" `Quick test_milestones_equal_weights;
          QCheck_alcotest.to_alcotest prop_milestones_bounded
        ] );
      ( "max-flow",
        [ Alcotest.test_case "single job harmonic" `Quick test_maxflow_single_job;
          Alcotest.test_case "two jobs one machine" `Quick test_maxflow_two_jobs_single_machine;
          Alcotest.test_case "weights matter" `Quick test_maxflow_weights_matter;
          Alcotest.test_case "staggered releases" `Quick test_maxflow_staggered;
          Alcotest.test_case "restricted availability" `Quick test_maxflow_restricted_availability;
          QCheck_alcotest.to_alcotest prop_maxflow_optimal;
          QCheck_alcotest.to_alcotest prop_maxflow_weight_scaling;
          QCheck_alcotest.to_alcotest prop_maxflow_below_serial;
          QCheck_alcotest.to_alcotest prop_bisection_brackets_optimum;
          QCheck_alcotest.to_alcotest prop_max_stretch_consistent
        ] );
      ( "flow-origins",
        [ Alcotest.test_case "shifts the optimum" `Quick test_flow_origin_shifts_optimum;
          Alcotest.test_case "validation" `Quick test_flow_origin_validation;
          Alcotest.test_case "own-release milestone" `Quick test_flow_origin_milestone;
          QCheck_alcotest.to_alcotest prop_flow_origin_dominates;
          QCheck_alcotest.to_alcotest prop_flow_search_certified
        ] );
      ( "openshop",
        [ Alcotest.test_case "diagonal" `Quick test_openshop_identity;
          Alcotest.test_case "exchange" `Quick test_openshop_exchange;
          Alcotest.test_case "invalid inputs" `Quick test_openshop_rejects;
          QCheck_alcotest.to_alcotest prop_openshop_no_conflicts
        ] );
      ( "gantt",
        [ Alcotest.test_case "ascii" `Quick test_ascii_gantt;
          Alcotest.test_case "svg" `Quick test_svg_gantt
        ] );
      ( "instance-io",
        [ Alcotest.test_case "parse" `Quick test_io_parse;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "malformed inputs" `Quick test_io_errors_malformed;
          QCheck_alcotest.to_alcotest prop_io_roundtrip;
          QCheck_alcotest.to_alcotest prop_io_roundtrip_messy
        ] );
      ( "preemptive",
        [ Alcotest.test_case "no intra-job parallelism" `Quick
            test_preemptive_single_job_two_machines;
          Alcotest.test_case "single machine equals divisible" `Quick
            test_preemptive_equals_divisible_on_one_machine;
          QCheck_alcotest.to_alcotest prop_preemptive_valid_and_dominates;
          QCheck_alcotest.to_alcotest prop_preemptive_single_machine_matches_divisible
        ] );
      ( "degeneracy",
        [ Alcotest.test_case "make_checked classifies" `Quick test_make_checked_classifies;
          Alcotest.test_case "solve_total on 0 jobs" `Quick test_solve_total_trivial;
          Alcotest.test_case "solve_total agrees with solve" `Quick test_solve_total_agrees
        ] );
      ( "solver-variants",
        [ QCheck_alcotest.to_alcotest prop_variant_makespan_identical;
          QCheck_alcotest.to_alcotest prop_variant_maxflow_identical;
          QCheck_alcotest.to_alcotest prop_variant_deadline_identical;
          QCheck_alcotest.to_alcotest prop_warm_toggle_identical;
          QCheck_alcotest.to_alcotest prop_variant_preemptive_identical
        ] )
    ]
