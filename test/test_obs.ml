(* Tests for the observability subsystem: span nesting and attributes,
   JSON-lines output, ring-buffer eviction, the registry's JSON report,
   the server's trace/spans commands, and the contract that tracing never
   changes results. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module W = Gripps.Workload

let ri = R.of_int

(* ------------------------------------------------------------------ *)
(* A minimal JSON validator                                            *)
(* ------------------------------------------------------------------ *)

(* Recursive-descent recognizer for full JSON (objects, arrays, strings
   with escapes, numbers, literals); rejects trailing garbage.  Enough to
   assert "this line is well-formed JSON" without a json dependency. *)
exception Bad_json

let is_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let adv () = incr pos in
  let expect c = if peek () = c then adv () else raise Bad_json in
  let rec ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> adv (); ws () | _ -> ()
  in
  let literal l = String.iter expect l in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | '\000' -> raise Bad_json
      | '"' -> adv ()
      | '\\' ->
        adv ();
        (match peek () with
         | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> adv ()
         | 'u' ->
           adv ();
           for _ = 1 to 4 do
             match peek () with
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> adv ()
             | _ -> raise Bad_json
           done
         | _ -> raise Bad_json);
        go ()
      | _ -> adv (); go ()
    in
    go ()
  in
  let digits () =
    match peek () with
    | '0' .. '9' ->
      while (match peek () with '0' .. '9' -> true | _ -> false) do
        adv ()
      done
    | _ -> raise Bad_json
  in
  let number () =
    if peek () = '-' then adv ();
    digits ();
    if peek () = '.' then (adv (); digits ());
    match peek () with
    | 'e' | 'E' ->
      adv ();
      (match peek () with '+' | '-' -> adv () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    ws ();
    (match peek () with
     | '{' ->
       adv ();
       ws ();
       if peek () = '}' then adv ()
       else
         let rec members () =
           ws ();
           string_ ();
           ws ();
           expect ':';
           value ();
           ws ();
           match peek () with
           | ',' -> adv (); members ()
           | '}' -> adv ()
           | _ -> raise Bad_json
         in
         members ()
     | '[' ->
       adv ();
       ws ();
       if peek () = ']' then adv ()
       else
         let rec items () =
           value ();
           ws ();
           match peek () with
           | ',' -> adv (); items ()
           | ']' -> adv ()
           | _ -> raise Bad_json
         in
         items ()
     | '"' -> string_ ()
     | 't' -> literal "true"
     | 'f' -> literal "false"
     | 'n' -> literal "null"
     | _ -> number ());
    ws ()
  in
  match value () with () -> !pos = n | exception Bad_json -> false

let check_json what s =
  Alcotest.(check bool) (what ^ ": well-formed JSON (" ^ s ^ ")") true (is_json s)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_validator () =
  List.iter
    (fun s -> Alcotest.(check bool) ("accepts " ^ s) true (is_json s))
    [ "{}"; "[]"; "null"; "-1.5e-3"; "\"a\\\"b\\u0001\"";
      "{\"a\":[1,2,{\"b\":null}],\"c\":true}" ];
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) false (is_json s))
    [ ""; "{"; "{}x"; "{\"a\":}"; "[1,]"; "nul"; "1."; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Spans and events                                                    *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let records = ref [] in
  let sink = Obs.Sink.callback (fun r -> records := r :: !records) in
  let result =
    Obs.Sink.with_sink sink (fun () ->
        Obs.Span.with_span "outer" ~attrs:[ ("k", Obs.Sink.Int 1) ] (fun () ->
            Obs.Span.set_int "k" 2;
            Obs.Span.with_span "inner" (fun () ->
                Obs.Span.set_str "who" "in";
                Obs.Event.emit "ping" ~attrs:[ ("n", Obs.Sink.Int 7) ];
                17)))
  in
  Alcotest.(check int) "with_span returns the thunk's value" 17 result;
  (* Emission order is close order: the event fires inside [inner], then
     [inner] closes, then [outer]. *)
  match List.rev !records with
  | [ Obs.Sink.Event ev; Obs.Sink.Span inner; Obs.Sink.Span outer ] ->
    Alcotest.(check string) "outer name" "outer" outer.Obs.Sink.name;
    Alcotest.(check bool) "outer is a root" true (outer.Obs.Sink.parent = None);
    Alcotest.(check bool) "inner nests under outer" true
      (inner.Obs.Sink.parent = Some outer.Obs.Sink.id);
    Alcotest.(check bool) "event attaches to inner" true
      (ev.Obs.Sink.in_span = Some inner.Obs.Sink.id);
    Alcotest.(check bool) "latest attr value wins" true
      (Obs.Sink.attr outer "k" = Some (Obs.Sink.Int 2));
    Alcotest.(check bool) "inner attr" true
      (Obs.Sink.attr inner "who" = Some (Obs.Sink.Str "in"));
    Alcotest.(check bool) "spans are ordered intervals" true
      (outer.Obs.Sink.t_stop >= outer.Obs.Sink.t_start
      && inner.Obs.Sink.t_stop >= inner.Obs.Sink.t_start
      && inner.Obs.Sink.t_start >= outer.Obs.Sink.t_start
      && outer.Obs.Sink.t_stop >= inner.Obs.Sink.t_stop)
  | rs -> Alcotest.failf "expected event+2 spans, got %d records" (List.length rs)

let test_span_disabled () =
  (* No sink installed: nothing is recorded, the set_* helpers are no-ops,
     the thunk still runs and raises pass through. *)
  Alcotest.(check bool) "tracing off by default" false (Obs.Sink.enabled ());
  let before = Obs.Sink.emitted_spans () in
  let r = Obs.Span.with_span "ghost" (fun () -> Obs.Span.set_int "x" 1; 3) in
  Obs.Event.emit "ghost-event";
  Alcotest.(check int) "value through" 3 r;
  Alcotest.(check int) "nothing emitted" before (Obs.Sink.emitted_spans ());
  Alcotest.check_raises "raises propagate" Exit (fun () ->
      Obs.Span.with_span "ghost" (fun () -> raise Exit))

let test_jsonl_roundtrip () =
  (* Nasty attribute payloads must still serialize to one well-formed
     JSON line per record, via both [line_of] and a real file sink. *)
  let nasty = "q\"uote b\\ack\nnl \x01ctrl" in
  let emit_all () =
    Obs.Span.with_span "outer"
      ~attrs:[ ("s", Obs.Sink.Str nasty); ("b", Obs.Sink.Bool true) ]
      (fun () ->
        Obs.Span.set_float "nan" Float.nan;
        Obs.Span.set_float "f" 1.5;
        Obs.Span.set_float "i" 3.0;
        Obs.Event.emit "evt" ~attrs:[ ("s", Obs.Sink.Str nasty) ];
        Obs.Span.with_span "inner" (fun () -> ()))
  in
  let lines = ref [] in
  let sink = Obs.Sink.callback (fun r -> lines := Obs.Sink.line_of r :: !lines) in
  Obs.Sink.with_sink sink emit_all;
  let lines = List.rev !lines in
  Alcotest.(check int) "three records" 3 (List.length lines);
  List.iter (check_json "line_of") lines;
  let all = String.concat "\n" lines in
  Alcotest.(check bool) "escaped string present" true
    (contains all "q\\\"uote b\\\\ack\\nnl \\u0001ctrl");
  Alcotest.(check bool) "nan renders as null" true (contains all "\"nan\":null");
  Alcotest.(check bool) "span typed" true (contains all "\"type\":\"span\"");
  Alcotest.(check bool) "event typed" true (contains all "\"type\":\"event\"");
  (* Same records through the file sink: one JSON object per line. *)
  let path = Filename.temp_file "obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Sink.install (Obs.Sink.file path);
      emit_all ();
      Obs.Sink.uninstall ();
      let ic = open_in path in
      let rec read acc =
        match input_line ic with
        | l -> read (l :: acc)
        | exception End_of_file -> close_in ic; List.rev acc
      in
      let file_lines = read [] in
      Alcotest.(check int) "three file lines" 3 (List.length file_lines);
      List.iter (check_json "file line") file_lines)

let test_ring_eviction () =
  let ring = Obs.Sink.ring ~capacity:2 () in
  Obs.Sink.with_sink ring (fun () ->
      List.iter (fun n -> Obs.Span.with_span n (fun () -> ())) [ "a"; "b"; "c" ]);
  let lines = Obs.Sink.ring_lines ring in
  Alcotest.(check int) "capacity bounds the buffer" 2 (List.length lines);
  Alcotest.(check bool) "oldest evicted" true
    (List.for_all (fun l -> not (contains l "\"name\":\"a\"")) lines);
  Alcotest.(check bool) "newest kept, oldest first" true
    (match lines with
     | [ b; c ] -> contains b "\"name\":\"b\"" && contains c "\"name\":\"c\""
     | _ -> false);
  List.iter (check_json "ring line") lines;
  Alcotest.(check bool) "ring_lines on a non-ring sink" true
    (Obs.Sink.ring_lines Obs.Sink.null = []);
  Alcotest.check_raises "non-positive capacity"
    (Invalid_argument "Obs.Sink.ring: capacity must be positive") (fun () ->
      ignore (Obs.Sink.ring ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_json () =
  let reg = Obs.Registry.create () in
  Alcotest.(check string) "empty registry dumps an empty object"
    "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
    (Obs.Registry.to_json reg);
  check_json "empty registry" (Obs.Registry.to_json reg);
  Obs.Registry.incr (Obs.Registry.counter reg "hits");
  Obs.Registry.set (Obs.Registry.gauge reg "depth") 2.5;
  Obs.Registry.observe (Obs.Registry.histogram reg "lat") Float.nan;
  Obs.Registry.observe (Obs.Registry.histogram reg "lat") 1.0;
  let json = Obs.Registry.to_json reg in
  check_json "populated registry" json;
  Alcotest.(check bool) "counter dumped" true (contains json "\"hits\":1")

(* ------------------------------------------------------------------ *)
(* Server trace/spans commands                                         *)
(* ------------------------------------------------------------------ *)

let mini_platform () =
  {
    W.speeds = [| R.one; R.one |];
    bank_sizes = [| 380 |];
    has_bank = [| [| true |]; [| true |] |];
  }

let test_server_trace () =
  let clock = Serve.Clock.virtual_ () in
  let eng =
    Serve.Engine.create ~clock ~policy:(module Online.Policies.Fair)
      (mini_platform ())
  in
  let srv = Serve.Server.create eng in
  let run cmd =
    let replies, v = Serve.Server.handle_line srv cmd in
    Alcotest.(check bool) (cmd ^ " continues") true (v = `Continue);
    replies
  in
  let expect_ok cmd =
    match List.rev (run cmd) with
    | last :: _ when String.length last >= 2 && String.sub last 0 2 = "ok" -> ()
    | _ -> Alcotest.fail (cmd ^ ": expected ok")
  in
  (* Both JSON commands emit exactly one well-formed line even on a fresh,
     silent server. *)
  (match run "spans" with
   | [ json; "ok" ] ->
     Alcotest.(check string) "no ring -> empty array" "[]" json
   | _ -> Alcotest.fail "spans shape");
  (match run "metrics json" with
   | [ json; "ok" ] -> check_json "metrics json" json
   | _ -> Alcotest.fail "metrics json shape");
  expect_ok "trace on";
  Alcotest.(check bool) "sink installed" true (Obs.Sink.enabled ());
  expect_ok "submit r1 0 20";
  expect_ok "drain";
  (match run "spans" with
   | [ json; "ok" ] ->
     check_json "spans after drain" json;
     Alcotest.(check bool) "decision span captured" true
       (contains json "engine.decide")
   | _ -> Alcotest.fail "spans shape after drain");
  expect_ok "trace off";
  Alcotest.(check bool) "sink removed" false (Obs.Sink.enabled ());
  (match run "spans" with
   | [ "[]"; "ok" ] -> ()
   | _ -> Alcotest.fail "spans after trace off");
  (match run "trace sideways" with
   | [ err ] -> Alcotest.(check bool) "usage error" true (contains err "err usage")
   | _ -> Alcotest.fail "trace usage shape")

(* ------------------------------------------------------------------ *)
(* Tracing must never change results                                   *)
(* ------------------------------------------------------------------ *)

let random_instance rng ~jobs ~machines =
  let releases = Array.init jobs (fun _ -> ri (Gripps.Prng.int rng 20)) in
  let weights = Array.init jobs (fun _ -> ri (1 + Gripps.Prng.int rng 4)) in
  let cost =
    Array.init machines (fun _ ->
        Array.init jobs (fun _ ->
            if Gripps.Prng.int rng 4 = 0 then None
            else Some (ri (1 + Gripps.Prng.int rng 9))))
  in
  for j = 0 to jobs - 1 do
    if Array.for_all (fun row -> row.(j) = None) cost then
      cost.(0).(j) <- Some (ri (1 + Gripps.Prng.int rng 9))
  done;
  I.make ~releases ~weights cost

let slices_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : S.slice) (y : S.slice) ->
         x.machine = y.machine && x.job = y.job && R.equal x.start y.start
         && R.equal x.stop y.stop)
       a b

let prop_tracing_transparent =
  QCheck.Test.make ~name:"solve and replay are bit-identical under tracing"
    ~count:15
    QCheck.(make Gen.(int_range 0 9999) ~print:string_of_int)
    (fun seed ->
      let rng = Gripps.Prng.create seed in
      let jobs = 2 + Gripps.Prng.int rng 4 in
      let machines = 2 + Gripps.Prng.int rng 2 in
      let inst = random_instance rng ~jobs ~machines in
      let plain = Sched_core.Max_flow.solve inst in
      let traced =
        Obs.Sink.with_sink (Obs.Sink.ring ()) (fun () ->
            Sched_core.Max_flow.solve inst)
      in
      let trace = Serve.Trace.poisson ~seed ~machines:2 ~banks:1 ~rate:0.1 ~count:3 () in
      let policy = (module Online.Policies.Srpt : Online.Sim.POLICY) in
      let eng_plain = Serve.Engine.replay ~policy trace in
      let eng_traced =
        Obs.Sink.with_sink
          (Obs.Sink.callback (fun _ -> ()))
          (fun () -> Serve.Engine.replay ~policy trace)
      in
      R.equal plain.Sched_core.Max_flow.objective
        traced.Sched_core.Max_flow.objective
      && List.for_all2 R.equal plain.Sched_core.Max_flow.milestones
           traced.Sched_core.Max_flow.milestones
      && slices_equal
           (S.slices plain.Sched_core.Max_flow.schedule)
           (S.slices traced.Sched_core.Max_flow.schedule)
      && slices_equal
           (S.slices (Serve.Engine.schedule eng_plain))
           (S.slices (Serve.Engine.schedule eng_traced)))

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "validator" `Quick test_validator ]);
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled" `Quick test_span_disabled;
        ] );
      ( "sink",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
        ] );
      ( "registry",
        [
          Alcotest.test_case "json reports" `Quick test_registry_json;
        ] );
      ("server", [ Alcotest.test_case "trace commands" `Quick test_server_trace ]);
      ("transparency", [ qt prop_tracing_transparent ]);
    ]
