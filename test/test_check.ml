(* The correctness harness, tested.

   The validator (Check.Invariants) is itself part of the trusted base of
   the fuzzer, so it gets the adversarial treatment here: every invariant
   must accept schedules produced by the exact solvers (soundness of the
   positive direction, as a qcheck property over generator seeds) and must
   reject a schedule in which that one invariant — and only that one — has
   been deliberately perturbed. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module MF = Sched_core.Max_flow
module Inv = Check.Invariants
module Prng = Gripps.Prng

let rat = R.of_int
let ratq = R.of_ints

let check_ok name = function
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s unexpectedly rejected: %s" name m

let check_err name = function
  | Ok () -> Alcotest.failf "%s accepted a perturbed schedule" name
  | Error _ -> ()

(* Two unit-weight jobs released at 0, every cost 2: the reference
   schedule runs each job whole on its own machine and is optimal with
   objective 2.  Every perturbation below starts from this base. *)
let base_inst =
  I.make
    ~releases:[| R.zero; R.zero |]
    ~weights:[| R.one; R.one |]
    [| [| Some (rat 2); Some (rat 2) |]; [| Some (rat 2); Some (rat 2) |] |]

let slice machine job start stop = { S.machine; job; start; stop }

let base_sched =
  S.make base_inst [ slice 0 0 R.zero (rat 2); slice 1 1 R.zero (rat 2) ]

(* --- positive direction ------------------------------------------------ *)

let test_base_passes () =
  check_ok "divisible" (Inv.divisible base_sched);
  check_ok "preemptive" (Inv.preemptive base_sched);
  check_ok "solution" (Inv.solution ~objective:(rat 2) base_sched)

let test_empty_passes () =
  let empty = I.make ~releases:[||] ~weights:[||] [| [||] |] in
  let sched = S.make empty [] in
  check_ok "divisible(empty)" (Inv.divisible sched);
  check_ok "solution(empty)" (Inv.solution ~objective:R.zero sched)

(* Solved generated instances satisfy every invariant: the solvers and the
   independent sweep validator agree on what a solution is. *)
let prop_solved_instances_pass =
  QCheck.Test.make ~count:60 ~name:"solver output passes the sweep validator"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = Prng.create seed in
      let inst = Check.Gen.instance p in
      match MF.solve_total inst with
      | `Trivial sched -> Inv.divisible sched = Ok ()
      | `Solved r ->
        Inv.solution ~objective:r.MF.objective r.MF.schedule = Ok ())

let prop_preemptive_passes =
  QCheck.Test.make ~count:40 ~name:"preemptive solver output passes LP(5) checks"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = Prng.create seed in
      let inst = Check.Gen.instance p in
      match Sched_core.Preemptive.solve_total inst with
      | `Trivial sched -> Inv.preemptive sched = Ok ()
      | `Solved r ->
        Inv.preemptive r.Sched_core.Preemptive.schedule = Ok ()
        && Inv.objective_consistent ~objective:r.Sched_core.Preemptive.objective
             r.Sched_core.Preemptive.schedule
           = Ok ())

(* --- each invariant catches its own violation -------------------------- *)

let test_shares_sum_catches () =
  (* Job 1 only half processed. *)
  let s = S.make base_inst [ slice 0 0 R.zero (rat 2); slice 1 1 R.zero R.one ] in
  check_err "shares_sum(under)" (Inv.shares_sum s);
  (* Job 1 over-processed. *)
  let s = S.make base_inst [ slice 0 0 R.zero (rat 2); slice 1 1 R.zero (rat 3) ] in
  check_err "shares_sum(over)" (Inv.shares_sum s);
  (* A slice on a machine that cannot run the job. *)
  let inf_inst =
    I.make ~releases:[| R.zero |] ~weights:[| R.one |]
      [| [| Some (rat 2) |]; [| None |] |]
  in
  let s = S.make inf_inst [ slice 0 0 R.zero R.one; slice 1 0 R.zero (rat 5) ] in
  check_err "shares_sum(inf)" (Inv.shares_sum s)

let test_releases_catches () =
  let late =
    I.make ~releases:[| R.one; R.zero |] ~weights:[| R.one; R.one |]
      [| [| Some (rat 2); Some (rat 2) |]; [| Some (rat 2); Some (rat 2) |] |]
  in
  let s = S.make late [ slice 0 0 R.zero (rat 2); slice 1 1 R.zero (rat 2) ] in
  check_err "releases_respected" (Inv.releases_respected s);
  (* The same slices against the base instance are fine. *)
  check_ok "releases_respected(base)" (Inv.releases_respected base_sched)

let test_machine_capacity_catches () =
  (* Both jobs entirely on machine 0, overlapping: each job's shares still
     sum to 1, releases hold — only the capacity sweep objects. *)
  let s = S.make base_inst [ slice 0 0 R.zero (rat 2); slice 0 1 R.zero (rat 2) ] in
  check_ok "shares_sum(overlap)" (Inv.shares_sum s);
  check_err "machine_capacity" (Inv.machine_capacity s)

let test_job_capacity_catches () =
  (* Job 0 on both machines simultaneously: legal for the divisible model,
     illegal for the preemptive one. *)
  let s =
    S.make base_inst
      [ slice 0 0 R.zero R.one; slice 1 0 R.zero R.one; slice 0 1 R.one (rat 3) ]
  in
  check_ok "divisible(parallel job)" (Inv.divisible s);
  check_err "job_capacity" (Inv.job_capacity s)

let test_objective_catches () =
  check_err "objective_consistent(high)"
    (Inv.objective_consistent ~objective:(rat 3) base_sched);
  check_err "objective_consistent(low)"
    (Inv.objective_consistent ~objective:R.one base_sched);
  check_ok "objective_consistent(exact)"
    (Inv.objective_consistent ~objective:(rat 2) base_sched)

let test_deadlines_catches () =
  (* Claimed objective 1: deadline r_j + F/w_j = 1 < C_j = 2. *)
  check_err "deadlines_met" (Inv.deadlines_met ~objective:R.one base_sched);
  check_ok "deadlines_met(true F)" (Inv.deadlines_met ~objective:(rat 2) base_sched)

let test_flow_origin_objective () =
  (* A shifted flow origin moves the objective: job 0 is released at 2 but
     its flow is measured from 0 (it arrived earlier and waited), so its
     weighted flow is 4 — the invariant must demand 4, not the
     from-release value 2. *)
  let shifted =
    I.make
      ~flow_origins:[| R.zero; R.zero |]
      ~releases:[| rat 2; R.zero |]
      ~weights:[| R.one; R.one |]
      [| [| Some (rat 2); Some (rat 2) |]; [| Some (rat 2); Some (rat 2) |] |]
  in
  let s = S.make shifted [ slice 0 0 (rat 2) (rat 4); slice 1 1 R.zero (rat 2) ] in
  check_err "objective_consistent(origin ignored)"
    (Inv.objective_consistent ~objective:(rat 2) s);
  check_ok "objective_consistent(origin honoured)"
    (Inv.objective_consistent ~objective:(rat 4) s)

(* --- totality classification ------------------------------------------ *)

let prop_totality =
  QCheck.Test.make ~count:200 ~name:"make_checked classifies planted degeneracies"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match Check.Fuzz.totality (Prng.create seed) with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_report m)

(* --- shrinking --------------------------------------------------------- *)

let test_shrink_instance () =
  (* "Has at least one job with weight 3" shrinks to exactly that job on
     one machine. *)
  let p = Prng.create 42 in
  let inst =
    I.make
      ~releases:(Array.make 4 R.zero)
      ~weights:[| R.one; rat 3; R.one; rat 3 |]
      (Array.init 3 (fun _ -> Array.init 4 (fun _ -> Some (rat (1 + Prng.int p 4)))))
  in
  let keep i =
    Array.exists (fun j -> R.equal (I.weight i j) (rat 3)) (Array.init (I.num_jobs i) Fun.id)
  in
  let small = Check.Shrink.instance ~keep inst in
  Alcotest.(check int) "one job left" 1 (I.num_jobs small);
  Alcotest.(check int) "one machine left" 1 (I.num_machines small);
  Alcotest.(check bool) "still satisfies keep" true (keep small)

let test_shrink_script () =
  let p = Prng.create 7 in
  let s = Check.Gen.script p in
  let keep (s : Check.Gen.script) =
    List.exists (function Check.Gen.Submit _ -> true | _ -> false) s.Check.Gen.ops
  in
  if keep s then begin
    let small = Check.Shrink.script ~keep s in
    Alcotest.(check int) "one op left" 1 (List.length small.Check.Gen.ops);
    Alcotest.(check bool) "platform untouched" true
      (small.Check.Gen.platform == s.Check.Gen.platform)
  end

(* --- artifact round-trips ---------------------------------------------- *)

let test_script_roundtrip () =
  for seed = 0 to 49 do
    let s = Check.Gen.script (Prng.create seed) in
    let s' = Check.Gen.script_of_string (Check.Gen.script_to_string s) in
    Alcotest.(check string)
      (Printf.sprintf "script %d round-trips" seed)
      (Check.Gen.script_to_string s) (Check.Gen.script_to_string s')
  done

let test_instance_roundtrip_origins () =
  let shifted =
    I.make
      ~flow_origins:[| ratq 1 2; R.zero |]
      ~releases:[| R.one; R.zero |]
      ~weights:[| R.one; rat 2 |]
      [| [| Some (rat 2); None |]; [| Some (rat 3); Some (rat 2) |] |]
  in
  let text = Sched_core.Instance_io.to_string shifted in
  let back = Sched_core.Instance_io.of_string text in
  Alcotest.(check string) "origin lines round-trip" text
    (Sched_core.Instance_io.to_string back);
  Alcotest.(check bool) "flow origin survives" true
    (R.equal (I.flow_origin back 0) (ratq 1 2))

(* --- the fuzzer end to end --------------------------------------------- *)

let test_fuzz_smoke () =
  let out_dir = Filename.concat (Filename.get_temp_dir_name ()) "dlsched-test-fuzz" in
  let report = Check.Fuzz.run ~out_dir ~seed:7 ~cases:20 () in
  Alcotest.(check int) "all cases ran" 20 report.Check.Fuzz.cases;
  List.iter
    (fun (name, n) -> Alcotest.(check int) (name ^ " ran everywhere") 20 n)
    report.Check.Fuzz.oracles_run;
  match report.Check.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "fuzz smoke found a failure: case %d oracle %s: %s"
      f.Check.Fuzz.case f.Check.Fuzz.oracle f.Check.Fuzz.detail

(* The committed repro of the decision-cache resume divergence (the cache
   was dropped from snapshots, so a resumed engine re-solved what the live
   engine remembered).  Replaying it through the crash-resume oracle pins
   the fix; see test_durability for the state-level regression test. *)
let test_cache_resume_repro () =
  (* dune runtest runs from the test directory; `dune exec` may not. *)
  let path =
    if Sys.file_exists "fixtures/cache_resume_divergence.script" then
      "fixtures/cache_resume_divergence.script"
    else "test/fixtures/cache_resume_divergence.script"
  in
  let script =
    Check.Gen.script_of_string (In_channel.with_open_text path In_channel.input_all)
  in
  match Check.Oracles.find "wal-crash-resume" with
  | None -> Alcotest.fail "wal-crash-resume oracle missing from the matrix"
  | Some o -> (
    (* aux 690535 encodes cache=true, snapshot_every=1, crash at op 6 —
       recorded by the fuzzer in the artifact's .sh file. *)
    match Check.Oracles.run_serve o ~aux:690535 script with
    | Check.Oracles.Pass -> ()
    | Check.Oracles.Fail m -> Alcotest.failf "cache-resume repro regressed: %s" m)

let () =
  Alcotest.run "check"
    [
      ( "invariants",
        [
          Alcotest.test_case "base schedule passes" `Quick test_base_passes;
          Alcotest.test_case "empty schedule passes" `Quick test_empty_passes;
          Alcotest.test_case "shares_sum catches" `Quick test_shares_sum_catches;
          Alcotest.test_case "releases catches" `Quick test_releases_catches;
          Alcotest.test_case "machine_capacity catches" `Quick test_machine_capacity_catches;
          Alcotest.test_case "job_capacity catches" `Quick test_job_capacity_catches;
          Alcotest.test_case "objective catches" `Quick test_objective_catches;
          Alcotest.test_case "deadlines catches" `Quick test_deadlines_catches;
          Alcotest.test_case "flow origins honoured" `Quick test_flow_origin_objective;
          QCheck_alcotest.to_alcotest prop_solved_instances_pass;
          QCheck_alcotest.to_alcotest prop_preemptive_passes;
        ] );
      ( "totality",
        [ QCheck_alcotest.to_alcotest prop_totality ] );
      ( "shrink",
        [
          Alcotest.test_case "instance to local minimum" `Quick test_shrink_instance;
          Alcotest.test_case "script to local minimum" `Quick test_shrink_script;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "script round-trip" `Quick test_script_roundtrip;
          Alcotest.test_case "origin lines round-trip" `Quick test_instance_roundtrip_origins;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "smoke: 20 cases clean" `Slow test_fuzz_smoke;
          Alcotest.test_case "cache-resume repro stays fixed" `Quick test_cache_resume_repro;
        ] );
    ]
