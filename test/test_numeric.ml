(* Tests for the exact-arithmetic substrate: Bigint, Rat, Affine.
   Random operations are cross-checked against native int arithmetic on
   ranges where the native result cannot overflow. *)

module B = Numeric.Bigint
module R = Numeric.Rat
module A = Numeric.Affine

let bigint = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable R.pp R.equal

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "one" "1" (B.to_string B.one);
  Alcotest.(check string) "minus_one" "-1" (B.to_string B.minus_one);
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  Alcotest.(check bool) "zero is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "one not zero" false (B.is_zero B.one)

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (B.to_int_opt (B.of_int n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; 1 lsl 30; (1 lsl 30) - 1; 1 lsl 60 ]

let test_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ s) s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999999999999999";
      "1000000000000000000000000000000000000000000000000000000001" ]

let test_string_underscores () =
  Alcotest.(check bigint) "underscores" (B.of_int 1_000_000) (B.of_string "1_000_000")

let test_add_known () =
  let big = B.of_string "99999999999999999999999999999999" in
  Alcotest.(check string) "carry chain" "100000000000000000000000000000000"
    (B.to_string (B.add big B.one));
  Alcotest.(check string) "back down" "99999999999999999999999999999999"
    (B.to_string (B.sub (B.add big B.one) B.one))

let test_mul_known () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  Alcotest.(check string) "big product" "121932631356500531347203169112635269"
    (B.to_string (B.mul a b));
  Alcotest.(check bigint) "sign" (B.neg (B.mul a b)) (B.mul (B.neg a) b)

let test_divmod_known () =
  let a = B.of_string "121932631356500531347203169112635269" in
  let b = B.of_string "123456789123456789" in
  let q, r = B.divmod a b in
  Alcotest.(check string) "quotient" "987654321987654321" (B.to_string q);
  Alcotest.(check bigint) "no remainder" B.zero r;
  let q, r = B.divmod (B.add a B.one) b in
  Alcotest.(check string) "quotient+1" "987654321987654321" (B.to_string q);
  Alcotest.(check bigint) "remainder 1" B.one r

let test_divmod_signs () =
  (* Must match OCaml's native (/) and (mod) conventions. *)
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      Alcotest.(check bigint) (Printf.sprintf "q %d/%d" a b) (B.of_int (a / b)) q;
      Alcotest.(check bigint) (Printf.sprintf "r %d mod %d" a b) (B.of_int (a mod b)) r)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5); (1, 17) ]

let test_div_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_gcd () =
  Alcotest.(check bigint) "gcd 12 18" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  Alcotest.(check bigint) "gcd neg" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18));
  Alcotest.(check bigint) "gcd 0 x" (B.of_int 5) (B.gcd B.zero (B.of_int (-5)));
  Alcotest.(check bigint) "gcd coprime" B.one (B.gcd (B.of_int 35) (B.of_int 64));
  let a = B.of_string "123456789012345678901234567890" in
  Alcotest.(check bigint) "gcd self" (B.abs a) (B.gcd a a)

let test_pow () =
  Alcotest.(check string) "2^100" "1267650600228229401496703205376"
    (B.to_string (B.pow B.two 100));
  Alcotest.(check bigint) "x^0" B.one (B.pow (B.of_int 17) 0);
  Alcotest.(check bigint) "(-3)^3" (B.of_int (-27)) (B.pow (B.of_int (-3)) 3);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

let test_shifts () =
  Alcotest.(check bigint) "1 << 100 >> 100" B.one
    (B.shift_right (B.shift_left B.one 100) 100);
  Alcotest.(check bigint) "shl = *2^k" (B.mul (B.of_int 12345) (B.pow B.two 67))
    (B.shift_left (B.of_int 12345) 67);
  Alcotest.(check bigint) "shr truncates" (B.of_int 2) (B.shift_right (B.of_int 5) 1);
  Alcotest.(check bigint) "neg shr truncates toward zero" (B.of_int (-2))
    (B.shift_right (B.of_int (-5)) 1)

let test_compare () =
  let vals = List.map B.of_string [ "-1000000000000000000000"; "-5"; "0"; "3"; "1000000000000000000000" ] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          Alcotest.(check int)
            (Printf.sprintf "cmp %d %d" i j)
            (compare i j)
            (B.compare a b))
        vals)
    vals

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "bits 255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "bits 256" 9 (B.num_bits (B.of_int 256));
  Alcotest.(check int) "bits 2^100" 101 (B.num_bits (B.pow B.two 100))

let test_float_conversions () =
  Alcotest.(check (float 0.0)) "to_float small" 42.0 (B.to_float (B.of_int 42));
  Alcotest.(check (float 0.0)) "to_float neg" (-42.0) (B.to_float (B.of_int (-42)));
  Alcotest.(check bigint) "of_float exact" (B.of_int 1048576) (B.of_float 1048576.0);
  Alcotest.(check bigint) "of_float truncates" (B.of_int 3) (B.of_float 3.99);
  Alcotest.(check bigint) "of_float neg truncates" (B.of_int (-3)) (B.of_float (-3.99));
  Alcotest.(check bigint) "of_float big" (B.pow B.two 80) (B.of_float (Float.ldexp 1.0 80))

(* ------------------------------------------------------------------ *)
(* Bigint property tests (cross-checked against native ints)           *)
(* ------------------------------------------------------------------ *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) -> B.equal (B.add (B.of_int a) (B.of_int b)) (B.of_int (a + b)))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) -> B.equal (B.mul (B.of_int a) (B.of_int b)) (B.of_int (a * b)))

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bigint divmod matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.equal q (B.of_int (a / b)) && B.equal r (B.of_int (a mod b)))

let big_gen =
  (* Random bigints up to ~400 decimal digits: large enough to exercise
     the Karatsuba multiplication path (threshold 24 limbs ≈ 220 digits),
     small enough for fast tests. *)
  let open QCheck.Gen in
  let* digits = int_range 1 400 in
  let* sign = bool in
  let* s = string_size ~gen:(char_range '0' '9') (return digits) in
  return (B.of_string ((if sign then "-" else "") ^ "1" ^ s))

let arbitrary_big = QCheck.make ~print:B.to_string big_gen

(* Karatsuba vs schoolbook: the identity (a+b)² − (a−b)² = 4ab relates
   products of different sizes, crossing the threshold both ways. *)
let prop_karatsuba_identity =
  QCheck.Test.make ~name:"(a+b)² − (a−b)² = 4ab across size classes" ~count:100
    (QCheck.pair arbitrary_big arbitrary_big)
    (fun (a, b) ->
      let sq x = B.mul x x in
      B.equal
        (B.sub (sq (B.add a b)) (sq (B.sub a b)))
        (B.mul (B.of_int 4) (B.mul a b)))

let prop_divmod_reconstruct =
  QCheck.Test.make ~name:"a = q*b + r with |r| < |b|" ~count:300
    (QCheck.pair arbitrary_big arbitrary_big)
    (fun (a, b) ->
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

(* Adversarial division cases: remainders within one unit of the divisor
   and divisors with minimal normalized top limbs maximize the chance of
   quotient-digit overestimation (the correction and add-back paths of
   Knuth's algorithm D), which uniform random inputs essentially never
   hit. *)
let prop_divmod_adversarial =
  QCheck.Test.make ~name:"divmod reconstructs adversarial (q·v + v−1)" ~count:500
    (QCheck.pair arbitrary_big arbitrary_big)
    (fun (q0, v0) ->
      let q = B.abs q0 and v = B.add (B.abs v0) B.two (* v >= 2 *) in
      let r = B.pred v in
      let a = B.add (B.mul q v) r in
      let q', r' = B.divmod a v in
      B.equal q q' && B.equal r r')

let test_divmod_limb_boundaries () =
  (* Divisors straddling limb boundaries and powers of the base. *)
  let b30 = B.shift_left B.one 30 in
  List.iter
    (fun (a, v) ->
      let q, r = B.divmod a v in
      Alcotest.(check bigint) "reconstruct" a (B.add (B.mul q v) r);
      Alcotest.(check bool) "remainder range" true (B.compare (B.abs r) (B.abs v) < 0))
    [ (B.pred (B.shift_left B.one 90), B.pred b30);
      (B.pred (B.shift_left B.one 90), b30);
      (B.pred (B.shift_left B.one 90), B.succ b30);
      (B.shift_left B.one 120, B.pred (B.shift_left B.one 60));
      (B.pred (B.shift_left B.one 120), B.succ (B.shift_left B.one 60));
      (B.add (B.shift_left B.one 89) B.one, B.add (B.shift_left B.one 59) B.one);
      (* divisor top limb exactly base/2: minimal normalization shift *)
      (B.pred (B.shift_left B.one 93), B.succ (B.shift_left B.one 59))
    ]

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:300 arbitrary_big
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_add_commutative =
  QCheck.Test.make ~name:"bigint add commutative" ~count:300
    (QCheck.pair arbitrary_big arbitrary_big)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"bigint mul distributes over add" ~count:200
    (QCheck.triple arbitrary_big arbitrary_big arbitrary_big)
    (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_sub_antisym =
  QCheck.Test.make ~name:"a - b = -(b - a)" ~count:300
    (QCheck.pair arbitrary_big arbitrary_big)
    (fun (a, b) -> B.equal (B.sub a b) (B.neg (B.sub b a)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:200
    (QCheck.pair arbitrary_big arbitrary_big)
    (fun (a, b) ->
      let g = B.gcd a b in
      B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_compare_consistent_with_sub =
  QCheck.Test.make ~name:"compare a b = sign (a - b)" ~count:300
    (QCheck.pair arbitrary_big arbitrary_big)
    (fun (a, b) ->
      let c = B.compare a b in
      let s = B.sign (B.sub a b) in
      (c > 0) = (s > 0) && (c < 0) = (s < 0) && (c = 0) = (s = 0))

(* ------------------------------------------------------------------ *)
(* Rat unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_rat_normalization () =
  Alcotest.(check rat) "6/4 = 3/2" (R.of_ints 3 2) (R.of_ints 6 4);
  Alcotest.(check rat) "neg den" (R.of_ints (-3) 2) (R.of_ints 3 (-2));
  Alcotest.(check rat) "0/17 = 0" R.zero (R.of_ints 0 17);
  Alcotest.(check string) "den of zero" "1" (Numeric.Bigint.to_string (R.den R.zero));
  Alcotest.(check string) "pp" "3/2" (R.to_string (R.of_ints 6 4));
  Alcotest.(check string) "pp int" "5" (R.to_string (R.of_int 5))

let test_rat_arith () =
  Alcotest.(check rat) "1/2 + 1/3" (R.of_ints 5 6) (R.add (R.of_ints 1 2) (R.of_ints 1 3));
  Alcotest.(check rat) "1/2 - 1/3" (R.of_ints 1 6) (R.sub (R.of_ints 1 2) (R.of_ints 1 3));
  Alcotest.(check rat) "2/3 * 3/4" (R.of_ints 1 2) (R.mul (R.of_ints 2 3) (R.of_ints 3 4));
  Alcotest.(check rat) "(1/2) / (1/4)" (R.of_int 2) (R.div (R.of_ints 1 2) (R.of_ints 1 4));
  Alcotest.(check rat) "inv -2/3" (R.of_ints (-3) 2) (R.inv (R.of_ints (-2) 3));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (R.inv R.zero))

let test_rat_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (R.compare (R.of_ints 1 3) (R.of_ints 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (R.compare (R.of_ints (-1) 2) (R.of_ints 1 3) < 0);
  Alcotest.(check rat) "min" (R.of_ints 1 3) (R.min (R.of_ints 1 3) (R.of_ints 1 2));
  Alcotest.(check rat) "max" (R.of_ints 1 2) (R.max (R.of_ints 1 3) (R.of_ints 1 2))

let test_rat_floor_ceil () =
  let check_fc s f c =
    let x = R.of_string s in
    Alcotest.(check bigint) ("floor " ^ s) (B.of_int f) (R.floor x);
    Alcotest.(check bigint) ("ceil " ^ s) (B.of_int c) (R.ceil x)
  in
  check_fc "7/2" 3 4;
  check_fc "-7/2" (-4) (-3);
  check_fc "4" 4 4;
  check_fc "-4" (-4) (-4);
  check_fc "1/3" 0 1;
  check_fc "-1/3" (-1) 0

let test_rat_of_float () =
  Alcotest.(check rat) "0.5" (R.of_ints 1 2) (R.of_float 0.5);
  Alcotest.(check rat) "0.25" (R.of_ints 1 4) (R.of_float 0.25);
  Alcotest.(check rat) "-1.75" (R.of_ints (-7) 4) (R.of_float (-1.75));
  Alcotest.(check rat) "3.0" (R.of_int 3) (R.of_float 3.0);
  (* 0.1 is not exactly 1/10 in binary; check exactness of conversion. *)
  Alcotest.(check (float 1e-18)) "roundtrip 0.1" 0.1 (R.to_float (R.of_float 0.1));
  Alcotest.(check bool) "0.1 <> 1/10 exactly" false (R.equal (R.of_float 0.1) (R.of_ints 1 10))

let test_rat_of_string () =
  Alcotest.(check rat) "n/d" (R.of_ints 22 7) (R.of_string "22/7");
  Alcotest.(check rat) "decimal" (R.of_ints 5 4) (R.of_string "1.25");
  Alcotest.(check rat) "neg decimal" (R.of_ints (-1) 2) (R.of_string "-0.5");
  Alcotest.(check rat) "int" (R.of_int (-17)) (R.of_string "-17")

(* ------------------------------------------------------------------ *)
(* Rat property tests (field axioms)                                   *)
(* ------------------------------------------------------------------ *)

let rat_gen =
  let open QCheck.Gen in
  let* n = int_range (-10_000) 10_000 in
  let* d = int_range 1 10_000 in
  return (R.of_ints n d)

let arbitrary_rat = QCheck.make ~print:R.to_string rat_gen

let prop_rat_add_assoc =
  QCheck.Test.make ~name:"rat add associative" ~count:300
    (QCheck.triple arbitrary_rat arbitrary_rat arbitrary_rat)
    (fun (a, b, c) -> R.equal (R.add (R.add a b) c) (R.add a (R.add b c)))

let prop_rat_mul_assoc =
  QCheck.Test.make ~name:"rat mul associative" ~count:300
    (QCheck.triple arbitrary_rat arbitrary_rat arbitrary_rat)
    (fun (a, b, c) -> R.equal (R.mul (R.mul a b) c) (R.mul a (R.mul b c)))

let prop_rat_distrib =
  QCheck.Test.make ~name:"rat distributivity" ~count:300
    (QCheck.triple arbitrary_rat arbitrary_rat arbitrary_rat)
    (fun (a, b, c) -> R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)))

let prop_rat_add_inverse =
  QCheck.Test.make ~name:"rat additive inverse" ~count:300 arbitrary_rat
    (fun a -> R.is_zero (R.add a (R.neg a)))

let prop_rat_mul_inverse =
  QCheck.Test.make ~name:"rat multiplicative inverse" ~count:300 arbitrary_rat
    (fun a ->
      QCheck.assume (not (R.is_zero a));
      R.equal R.one (R.mul a (R.inv a)))

let prop_rat_normalized =
  QCheck.Test.make ~name:"rat results normalized" ~count:300
    (QCheck.pair arbitrary_rat arbitrary_rat)
    (fun (a, b) ->
      let r = R.add (R.mul a b) (R.sub a b) in
      B.equal (B.gcd (R.num r) (R.den r)) B.one && B.sign (R.den r) > 0)

let prop_rat_compare_total_order =
  QCheck.Test.make ~name:"rat compare antisymmetric" ~count:300
    (QCheck.pair arbitrary_rat arbitrary_rat)
    (fun (a, b) -> R.compare a b = -R.compare b a)

let prop_rat_to_float_order =
  QCheck.Test.make ~name:"rat order consistent with float order" ~count:300
    (QCheck.pair arbitrary_rat arbitrary_rat)
    (fun (a, b) ->
      (* Floats of moderately-sized rationals preserve strict order or tie. *)
      let c = R.compare a b in
      let fc = Float.compare (R.to_float a) (R.to_float b) in
      c = 0 || fc = 0 || (c > 0) = (fc > 0))

let prop_rat_string_roundtrip =
  QCheck.Test.make ~name:"rat string roundtrip" ~count:300 arbitrary_rat
    (fun a -> R.equal a (R.of_string (R.to_string a)))

let test_rat_approx_known () =
  (* π's classic convergents. *)
  let pi = R.of_string "3.14159265358979" in
  Alcotest.(check rat) "den ≤ 10 → 22/7" (R.of_ints 22 7) (R.approx ~max_den:10 pi);
  Alcotest.(check rat) "den ≤ 150 → 355/113" (R.of_ints 355 113)
    (R.approx ~max_den:150 pi);
  Alcotest.(check rat) "already small is exact" (R.of_ints 3 4)
    (R.approx ~max_den:10 (R.of_ints 3 4));
  Alcotest.(check rat) "negative mirrors" (R.of_ints (-22) 7)
    (R.approx ~max_den:10 (R.neg pi));
  Alcotest.(check bool) "max_den 0 rejected" true
    (try ignore (R.approx ~max_den:0 pi); false with Invalid_argument _ -> true)

let prop_rat_approx_best =
  (* The returned fraction must beat every fraction with denominator up to
     the bound (checked exhaustively for small bounds). *)
  QCheck.Test.make ~name:"approx is the best bounded-denominator fraction" ~count:200
    (QCheck.pair arbitrary_rat (QCheck.int_range 1 12))
    (fun (x, max_den) ->
      let a = R.approx ~max_den x in
      let dist y = R.abs (R.sub x y) in
      Numeric.Bigint.to_int_exn (R.den a) <= max_den
      && List.for_all
           (fun d ->
             (* closest numerator for denominator d *)
             let num =
               Numeric.Bigint.to_int_exn
                 (R.floor (R.add (R.mul_int x d) (R.of_ints 1 2)))
             in
             R.compare (dist a) (dist (R.of_ints num d)) <= 0)
           (List.init max_den (fun d -> d + 1)))

(* ------------------------------------------------------------------ *)
(* Differential oracle: tagged Bigint vs the always-big reference      *)
(* ------------------------------------------------------------------ *)

(* [Bigint_ref] is the pre-fast-path implementation, kept verbatim.
   Random arithmetic expression trees are evaluated through both
   modules; the decimal renderings must be bit-identical, and the
   tagged result must be canonically represented (small iff it fits a
   machine word).  Division and gcd guard a zero divisor by replacing
   it with one — structurally, so both evaluators see the same tree. *)

module BR = Numeric.Bigint_ref

type bexpr =
  | BLeaf of string
  | BNeg of bexpr
  | BAbs of bexpr
  | BAdd of bexpr * bexpr
  | BSub of bexpr * bexpr
  | BMul of bexpr * bexpr
  | BQuot of bexpr * bexpr
  | BRem of bexpr * bexpr
  | BGcd of bexpr * bexpr
  | BShl of bexpr * int
  | BShr of bexpr * int

let rec bexpr_print = function
  | BLeaf s -> s
  | BNeg e -> "(neg " ^ bexpr_print e ^ ")"
  | BAbs e -> "(abs " ^ bexpr_print e ^ ")"
  | BAdd (a, b) -> "(+ " ^ bexpr_print a ^ " " ^ bexpr_print b ^ ")"
  | BSub (a, b) -> "(- " ^ bexpr_print a ^ " " ^ bexpr_print b ^ ")"
  | BMul (a, b) -> "(* " ^ bexpr_print a ^ " " ^ bexpr_print b ^ ")"
  | BQuot (a, b) -> "(quot " ^ bexpr_print a ^ " " ^ bexpr_print b ^ ")"
  | BRem (a, b) -> "(rem " ^ bexpr_print a ^ " " ^ bexpr_print b ^ ")"
  | BGcd (a, b) -> "(gcd " ^ bexpr_print a ^ " " ^ bexpr_print b ^ ")"
  | BShl (e, s) -> Printf.sprintf "(shl %s %d)" (bexpr_print e) s
  | BShr (e, s) -> Printf.sprintf "(shr %s %d)" (bexpr_print e) s

let rec beval_tagged = function
  | BLeaf s -> B.of_string s
  | BNeg e -> B.neg (beval_tagged e)
  | BAbs e -> B.abs (beval_tagged e)
  | BAdd (a, b) -> B.add (beval_tagged a) (beval_tagged b)
  | BSub (a, b) -> B.sub (beval_tagged a) (beval_tagged b)
  | BMul (a, b) -> B.mul (beval_tagged a) (beval_tagged b)
  | BQuot (a, b) ->
    let d = beval_tagged b in
    B.div (beval_tagged a) (if B.is_zero d then B.one else d)
  | BRem (a, b) ->
    let d = beval_tagged b in
    B.rem (beval_tagged a) (if B.is_zero d then B.one else d)
  | BGcd (a, b) -> B.gcd (beval_tagged a) (beval_tagged b)
  | BShl (e, s) -> B.shift_left (beval_tagged e) s
  | BShr (e, s) -> B.shift_right (beval_tagged e) s

let rec beval_ref = function
  | BLeaf s -> BR.of_string s
  | BNeg e -> BR.neg (beval_ref e)
  | BAbs e -> BR.abs (beval_ref e)
  | BAdd (a, b) -> BR.add (beval_ref a) (beval_ref b)
  | BSub (a, b) -> BR.sub (beval_ref a) (beval_ref b)
  | BMul (a, b) -> BR.mul (beval_ref a) (beval_ref b)
  | BQuot (a, b) ->
    let d = beval_ref b in
    BR.div (beval_ref a) (if BR.is_zero d then BR.one else d)
  | BRem (a, b) ->
    let d = beval_ref b in
    BR.rem (beval_ref a) (if BR.is_zero d then BR.one else d)
  | BGcd (a, b) -> BR.gcd (beval_ref a) (beval_ref b)
  | BShl (e, s) -> BR.shift_left (beval_ref e) s
  | BShr (e, s) -> BR.shift_right (beval_ref e) s

(* Leaves concentrate on the overflow frontier of the 63-bit fast path:
   max_int, min_int, 2^31 (the cheap-multiply threshold) and 2^62
   neighbours, plus moderate and genuinely big random literals. *)
let bleaf_pool =
  [ "0"; "1"; "-1"; "2"; "-2";
    string_of_int max_int; string_of_int min_int;
    string_of_int (max_int - 1); string_of_int (-max_int);
    string_of_int (1 lsl 31); string_of_int ((1 lsl 31) - 1);
    string_of_int (-(1 lsl 31)); string_of_int ((1 lsl 31) + 1);
    "4611686018427387904"; "-4611686018427387904"; "4611686018427387905";
    "9223372036854775807"; "-9223372036854775808" ]

let bleaf_gen =
  let open QCheck.Gen in
  frequency
    [ (3, oneofl bleaf_pool);
      (3, map string_of_int (int_range (-1_000_000_000) 1_000_000_000));
      ( 2,
        let* digits = int_range 1 45 in
        let* sign = bool in
        let* s = string_size ~gen:(char_range '0' '9') (return digits) in
        return ((if sign then "-" else "") ^ "1" ^ s) ) ]

let bexpr_gen =
  let open QCheck.Gen in
  sized_size (int_range 0 24)
  @@ QCheck.Gen.fix (fun self n ->
         if n <= 0 then map (fun s -> BLeaf s) bleaf_gen
         else begin
           let sub = self (n / 2) in
           frequency
             [ (1, map (fun s -> BLeaf s) bleaf_gen);
               (1, map (fun e -> BNeg e) sub);
               (1, map (fun e -> BAbs e) sub);
               (3, map2 (fun a b -> BAdd (a, b)) sub sub);
               (3, map2 (fun a b -> BSub (a, b)) sub sub);
               (3, map2 (fun a b -> BMul (a, b)) sub sub);
               (2, map2 (fun a b -> BQuot (a, b)) sub sub);
               (2, map2 (fun a b -> BRem (a, b)) sub sub);
               (1, map2 (fun a b -> BGcd (a, b)) sub sub);
               (1, map2 (fun e s -> BShl (e, s)) sub (int_range 0 70));
               (1, map2 (fun e s -> BShr (e, s)) sub (int_range 0 70)) ]
         end)

let arbitrary_bexpr = QCheck.make ~print:bexpr_print bexpr_gen

(* Canonical tagging: small iff the value fits a machine word other than
   min_int (which the small representation excludes). *)
let canonically_tagged v =
  B.is_small v
  = (match B.to_int_opt v with Some n -> n <> min_int | None -> false)

let prop_bigint_oracle =
  QCheck.Test.make ~name:"tagged Bigint = always-big reference on expression trees"
    ~count:1000 arbitrary_bexpr (fun e ->
      let t = beval_tagged e and r = beval_ref e in
      String.equal (B.to_string t) (BR.to_string r) && canonically_tagged t)

(* ------------------------------------------------------------------ *)
(* Differential oracle: tagged Rat vs a reference over Bigint_ref      *)
(* ------------------------------------------------------------------ *)

(* Minimal always-big rational — the pre-refactor [Rat] restated over
   [Bigint_ref].  Only what the oracle needs. *)
module RRef = struct
  type t = { num : BR.t; den : BR.t }

  let make num den =
    if BR.is_zero den then raise Division_by_zero;
    if BR.is_zero num then { num = BR.zero; den = BR.one }
    else begin
      let num, den =
        if BR.sign den < 0 then (BR.neg num, BR.neg den) else (num, den)
      in
      let g = BR.gcd num den in
      if BR.equal g BR.one then { num; den }
      else { num = BR.div num g; den = BR.div den g }
    end

  let one = { num = BR.one; den = BR.one }
  let is_zero x = BR.is_zero x.num
  let neg x = { x with num = BR.neg x.num }
  let add a b = make (BR.add (BR.mul a.num b.den) (BR.mul b.num a.den)) (BR.mul a.den b.den)
  let sub a b = add a (neg b)
  let mul a b = make (BR.mul a.num b.num) (BR.mul a.den b.den)

  let inv x =
    if is_zero x then raise Division_by_zero;
    if BR.sign x.num < 0 then { num = BR.neg x.den; den = BR.neg x.num }
    else { num = x.den; den = x.num }

  let div a b = mul a (inv b)
  let compare a b = BR.compare (BR.mul a.num b.den) (BR.mul b.num a.den)

  let to_string x =
    if BR.equal x.den BR.one then BR.to_string x.num
    else BR.to_string x.num ^ "/" ^ BR.to_string x.den
end

type rexpr =
  | RLeaf of string * string
  | RNeg of rexpr
  | RInv of rexpr
  | RAdd of rexpr * rexpr
  | RSub of rexpr * rexpr
  | RMul of rexpr * rexpr
  | RDiv of rexpr * rexpr

let rec rexpr_print = function
  | RLeaf (n, d) -> n ^ "/" ^ d
  | RNeg e -> "(neg " ^ rexpr_print e ^ ")"
  | RInv e -> "(inv " ^ rexpr_print e ^ ")"
  | RAdd (a, b) -> "(+ " ^ rexpr_print a ^ " " ^ rexpr_print b ^ ")"
  | RSub (a, b) -> "(- " ^ rexpr_print a ^ " " ^ rexpr_print b ^ ")"
  | RMul (a, b) -> "(* " ^ rexpr_print a ^ " " ^ rexpr_print b ^ ")"
  | RDiv (a, b) -> "(/ " ^ rexpr_print a ^ " " ^ rexpr_print b ^ ")"

let rec reval_tagged = function
  | RLeaf (n, d) -> R.make (B.of_string n) (B.of_string d)
  | RNeg e -> R.neg (reval_tagged e)
  | RInv e ->
    let x = reval_tagged e in
    R.inv (if R.is_zero x then R.one else x)
  | RAdd (a, b) -> R.add (reval_tagged a) (reval_tagged b)
  | RSub (a, b) -> R.sub (reval_tagged a) (reval_tagged b)
  | RMul (a, b) -> R.mul (reval_tagged a) (reval_tagged b)
  | RDiv (a, b) ->
    let d = reval_tagged b in
    R.div (reval_tagged a) (if R.is_zero d then R.one else d)

let rec reval_ref = function
  | RLeaf (n, d) -> RRef.make (BR.of_string n) (BR.of_string d)
  | RNeg e -> RRef.neg (reval_ref e)
  | RInv e ->
    let x = reval_ref e in
    RRef.inv (if RRef.is_zero x then RRef.one else x)
  | RAdd (a, b) -> RRef.add (reval_ref a) (reval_ref b)
  | RSub (a, b) -> RRef.sub (reval_ref a) (reval_ref b)
  | RMul (a, b) -> RRef.mul (reval_ref a) (reval_ref b)
  | RDiv (a, b) ->
    let d = reval_ref b in
    RRef.div (reval_ref a) (if RRef.is_zero d then RRef.one else d)

let rleaf_gen =
  let open QCheck.Gen in
  let* n = bleaf_gen in
  let* d =
    frequency
      [ (4, map string_of_int (int_range 1 1_000_000));
        (1, return (string_of_int max_int));
        ( 1,
          let* digits = int_range 1 30 in
          let* s = string_size ~gen:(char_range '0' '9') (return digits) in
          return ("1" ^ s) ) ]
  in
  return (n, d)

let rexpr_gen =
  let open QCheck.Gen in
  sized_size (int_range 0 16)
  @@ QCheck.Gen.fix (fun self n ->
         if n <= 0 then map (fun (a, b) -> RLeaf (a, b)) rleaf_gen
         else begin
           let sub = self (n / 2) in
           frequency
             [ (1, map (fun (a, b) -> RLeaf (a, b)) rleaf_gen);
               (1, map (fun e -> RNeg e) sub);
               (1, map (fun e -> RInv e) sub);
               (3, map2 (fun a b -> RAdd (a, b)) sub sub);
               (3, map2 (fun a b -> RSub (a, b)) sub sub);
               (3, map2 (fun a b -> RMul (a, b)) sub sub);
               (2, map2 (fun a b -> RDiv (a, b)) sub sub) ]
         end)

let arbitrary_rexpr = QCheck.make ~print:rexpr_print rexpr_gen

let rat_canonically_tagged v =
  let fits b = match B.to_int_opt b with Some n -> n <> min_int | None -> false in
  R.is_small v = (fits (R.num v) && fits (R.den v))

let prop_rat_oracle =
  QCheck.Test.make ~name:"tagged Rat = always-big reference on expression trees"
    ~count:600 arbitrary_rexpr (fun e ->
      let t = reval_tagged e and r = reval_ref e in
      String.equal (R.to_string t) (RRef.to_string r) && rat_canonically_tagged t)

let prop_rat_oracle_compare =
  QCheck.Test.make ~name:"tagged Rat compare agrees with reference" ~count:400
    (QCheck.pair arbitrary_rexpr arbitrary_rexpr)
    (fun (ea, eb) ->
      let c = R.compare (reval_tagged ea) (reval_tagged eb) in
      let cr = RRef.compare (reval_ref ea) (reval_ref eb) in
      (c > 0) = (cr > 0) && (c < 0) = (cr < 0))

(* ------------------------------------------------------------------ *)
(* Overflow frontier of the small-word fast path                       *)
(* ------------------------------------------------------------------ *)

let test_small_overflow_boundaries () =
  (* Sums and products that land exactly on, just under and just over
     the machine-word range; each compared against string arithmetic
     done by the limb path. *)
  Alcotest.(check string) "max_int stays small" (string_of_int max_int)
    (B.to_string (B.of_int max_int));
  Alcotest.(check bool) "max_int is small" true (B.is_small (B.of_int max_int));
  Alcotest.(check bool) "min_int is big" false (B.is_small (B.of_int min_int));
  Alcotest.(check string) "min_int prints" (string_of_int min_int)
    (B.to_string (B.of_int min_int));
  Alcotest.(check string) "max_int + 1" "4611686018427387904"
    (B.to_string (B.add (B.of_int max_int) B.one));
  Alcotest.(check string) "-max_int - 1" "-4611686018427387904"
    (B.to_string (B.sub (B.of_int (-max_int)) B.one));
  Alcotest.(check bool) "true sum of min_int is big" false
    (B.is_small (B.add (B.of_int (-max_int)) B.minus_one));
  Alcotest.(check string) "neg min_int" "4611686018427387904"
    (B.to_string (B.neg (B.of_int min_int)));
  Alcotest.(check string) "abs min_int" "4611686018427387904"
    (B.to_string (B.abs (B.of_int min_int)));
  Alcotest.(check string) "min_int / -1" "4611686018427387904"
    (B.to_string (B.div (B.of_int min_int) (B.of_int (-1))));
  Alcotest.(check string) "2^31 * 2^31" "4611686018427387904"
    (B.to_string (B.mul (B.of_int (1 lsl 31)) (B.of_int (1 lsl 31))));
  Alcotest.(check string) "(2^31-1)^2 stays small" "4611686014132420609"
    (B.to_string (B.mul (B.of_int ((1 lsl 31) - 1)) (B.of_int ((1 lsl 31) - 1))));
  Alcotest.(check bool) "(2^31-1)^2 is small" true
    (B.is_small (B.mul (B.of_int ((1 lsl 31) - 1)) (B.of_int ((1 lsl 31) - 1))));
  (* A big difference that collapses back into the small range must be
     demoted (canonical tagging). *)
  let big = B.add (B.of_int max_int) B.one in
  Alcotest.(check bool) "collapse demotes" true (B.is_small (B.sub big B.one));
  Alcotest.(check string) "collapse value" (string_of_int max_int)
    (B.to_string (B.sub big B.one))

let test_rat_overflow_promotes () =
  let before = Numeric.Counters.promotions () in
  let m = R.of_int max_int in
  let r = R.mul m m in
  Alcotest.(check bool) "promotion counted" true
    (Numeric.Counters.promotions () > before);
  Alcotest.(check string) "max_int^2 exact"
    "21267647932558653957237540927630737409" (R.to_string r);
  Alcotest.(check bool) "promoted result is big" false (R.is_small r);
  (* And the big result collapses back to a small value when divided. *)
  let q = R.div r m in
  Alcotest.(check bool) "quotient demoted" true (R.is_small q);
  Alcotest.(check rat) "quotient value" m q;
  let small_before = Numeric.Counters.small_ops () in
  ignore (R.add (R.of_ints 1 2) (R.of_ints 1 3));
  Alcotest.(check bool) "small op counted" true
    (Numeric.Counters.small_ops () > small_before)

(* ------------------------------------------------------------------ *)
(* Representation independence: small and promoted forms coincide      *)
(* ------------------------------------------------------------------ *)

module RTbl = Hashtbl.Make (struct
  type t = R.t

  let equal = R.equal
  let hash = R.hash
end)

let test_representation_independence () =
  let samples =
    [ R.zero; R.one; R.minus_one; R.of_ints 1 2; R.of_ints (-7) 3;
      R.of_ints 355 113; R.of_int max_int; R.of_ints max_int (max_int - 2) ]
  in
  List.iter
    (fun x ->
      let px = R.promote x in
      let label = R.to_string x in
      Alcotest.(check bool) (label ^ ": small") true (R.is_small x);
      Alcotest.(check bool) (label ^ ": promoted is big") false (R.is_small px);
      Alcotest.(check bool) (label ^ ": equal") true (R.equal x px);
      Alcotest.(check int) (label ^ ": compare") 0 (R.compare x px);
      Alcotest.(check int) (label ^ ": hash") (R.hash x) (R.hash px);
      Alcotest.(check string) (label ^ ": prints alike") (R.to_string x)
        (R.to_string px))
    samples;
  (* Both representations of one value must collide in one table. *)
  let tbl = RTbl.create 16 in
  List.iter (fun x -> RTbl.replace tbl x (R.to_string x)) samples;
  List.iter
    (fun x ->
      match RTbl.find_opt tbl (R.promote x) with
      | Some s ->
        Alcotest.(check string) ("lookup via promoted " ^ s) (R.to_string x) s
      | None -> Alcotest.fail ("promoted " ^ R.to_string x ^ " missed the table"))
    samples;
  Alcotest.(check int) "no duplicate buckets" (List.length samples)
    (RTbl.length tbl);
  (* Same story one layer down, on Bigint. *)
  List.iter
    (fun n ->
      let x = B.of_int n in
      let px = B.promote x in
      Alcotest.(check bool) (string_of_int n ^ ": equal") true (B.equal x px);
      Alcotest.(check int) (string_of_int n ^ ": compare") 0 (B.compare x px);
      Alcotest.(check int) (string_of_int n ^ ": hash") (B.hash x) (B.hash px))
    [ 0; 1; -1; 42; 1 lsl 30; max_int; -max_int ]

(* ------------------------------------------------------------------ *)
(* of_string hardening                                                 *)
(* ------------------------------------------------------------------ *)

let raises_invalid_arg ~prefix f =
  match f () with
  | _ -> false
  | exception Invalid_argument msg ->
    String.length msg >= String.length prefix
    && String.equal (String.sub msg 0 (String.length prefix)) prefix

let test_bigint_of_string_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "Bigint rejects %S" s)
        true
        (raises_invalid_arg ~prefix:"Bigint.of_string" (fun () -> B.of_string s)))
    [ ""; "-"; "+"; " 1"; "1 "; "\t42"; "12a3"; "1.5"; "--3"; "_"; "12 34" ]

let test_rat_of_string_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "Rat rejects %S" s)
        true
        (raises_invalid_arg ~prefix:"Rat.of_string" (fun () -> R.of_string s)))
    [ ""; "-"; "1/"; "/2"; " 1/2"; "1/2 "; "1//2"; "abc"; "1/-"; "."; "1/2/3";
      "1.2.3"; "--1/2" ]

let test_rat_of_string_valid () =
  (* The hardened parser must keep accepting everything it used to. *)
  List.iter
    (fun (s, expect) ->
      Alcotest.(check rat) (Printf.sprintf "parses %S" s) expect (R.of_string s))
    [ ("22/7", R.of_ints 22 7); ("-22/7", R.of_ints (-22) 7);
      ("1.25", R.of_ints 5 4); ("-0.5", R.of_ints (-1) 2);
      (".5", R.of_ints 1 2); ("1.", R.of_int 1); ("-17", R.of_int (-17));
      ("1_000", R.of_int 1000); ("6/4", R.of_ints 3 2); ("0/9", R.zero) ];
  Alcotest.check_raises "1/0 divides by zero" Division_by_zero (fun () ->
      ignore (R.of_string "1/0"))

(* ------------------------------------------------------------------ *)
(* approx bounds on big operands; of_float dyadic roundtrips           *)
(* ------------------------------------------------------------------ *)

let prop_rat_approx_bound_big =
  (* The denominator bound must hold for values whose components live on
     the limb path too, and the result must never be further from x than
     the trivial candidate round(x·d)/d for any sampled d. *)
  QCheck.Test.make ~name:"approx respects max_den on big operands" ~count:200
    (QCheck.pair arbitrary_rexpr (QCheck.int_range 1 997))
    (fun (e, max_den) ->
      QCheck.assume (max_den >= 1);
      let x = reval_tagged e in
      let a = R.approx ~max_den x in
      let dist y = R.abs (R.sub x y) in
      B.compare (R.den a) (B.of_int max_den) <= 0
      && List.for_all
           (fun d ->
             let num = R.floor (R.add (R.mul_int x d) (R.of_ints 1 2)) in
             R.compare (dist a) (dist (R.make num (B.of_int d))) <= 0)
           (List.filter (fun d -> d >= 1) [ 1; 2; 3; max_den / 2; max_den ]))

let dyadic_gen =
  let open QCheck.Gen in
  let* n = int_range (-(1 lsl 50)) (1 lsl 50) in
  let* k = int_range 0 60 in
  return (R.make (B.of_int n) (B.shift_left B.one k))

let prop_of_float_dyadic_roundtrip =
  QCheck.Test.make ~name:"of_float (to_float x) = x for dyadic x" ~count:500
    (QCheck.make ~print:R.to_string dyadic_gen)
    (fun x -> R.equal x (R.of_float (R.to_float x)))

let prop_to_float_of_float_roundtrip =
  QCheck.Test.make ~name:"to_float (of_float f) = f" ~count:500
    (QCheck.make ~print:string_of_float
       QCheck.Gen.(
         let* m = int_range (-(1 lsl 53)) (1 lsl 53) in
         let* e = int_range (-200) 200 in
         return (Float.ldexp (float_of_int m) e)))
    (fun f -> Float.equal (R.to_float (R.of_float f)) f)

(* ------------------------------------------------------------------ *)
(* Affine tests                                                        *)
(* ------------------------------------------------------------------ *)

let test_affine_eval () =
  let f = A.make ~const:(R.of_int 3) ~slope:(R.of_ints 1 2) in
  Alcotest.(check rat) "f(0)" (R.of_int 3) (A.eval f R.zero);
  Alcotest.(check rat) "f(4)" (R.of_int 5) (A.eval f (R.of_int 4));
  Alcotest.(check rat) "var(7)" (R.of_int 7) (A.eval A.var (R.of_int 7));
  Alcotest.(check rat) "const(7) at 9" (R.of_int 7) (A.eval (A.const (R.of_int 7)) (R.of_int 9))

let test_affine_intersection () =
  (* r_j + F/w_j meets r_k: paper's first milestone family. *)
  let deadline r w = A.make ~const:r ~slope:(R.inv w) in
  let d = deadline (R.of_int 1) (R.of_int 2) in
  let release = A.const (R.of_int 5) in
  (match A.intersection d release with
   | Some f -> Alcotest.(check rat) "milestone" (R.of_int 8) f
   | None -> Alcotest.fail "expected intersection");
  (match A.intersection d (deadline (R.of_int 3) (R.of_int 2)) with
   | None -> ()
   | Some _ -> Alcotest.fail "parallel deadlines should not intersect");
  let d2 = deadline (R.of_int 0) (R.of_int 1) in
  (match A.intersection d d2 with
   | Some f ->
     Alcotest.(check rat) "two-deadline milestone" (R.of_int 2) f;
     Alcotest.(check rat) "values agree there" (A.eval d f) (A.eval d2 f)
   | None -> Alcotest.fail "expected intersection")

let test_affine_algebra () =
  let f = A.make ~const:(R.of_int 1) ~slope:(R.of_int 2) in
  let g = A.make ~const:(R.of_int 3) ~slope:(R.of_int (-1)) in
  let x = R.of_ints 7 3 in
  Alcotest.(check rat) "add" (R.add (A.eval f x) (A.eval g x)) (A.eval (A.add f g) x);
  Alcotest.(check rat) "sub" (R.sub (A.eval f x) (A.eval g x)) (A.eval (A.sub f g) x);
  Alcotest.(check rat) "scale" (R.mul (R.of_int 3) (A.eval f x))
    (A.eval (A.scale (R.of_int 3) f) x);
  Alcotest.(check bool) "is_const" true (A.is_const (A.const (R.of_int 4)));
  Alcotest.(check bool) "var not const" false (A.is_const A.var)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "numeric"
    [ ( "bigint-unit",
        [ Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "underscores" `Quick test_string_underscores;
          Alcotest.test_case "add carry chains" `Quick test_add_known;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "float conversions" `Quick test_float_conversions;
          Alcotest.test_case "divmod limb boundaries" `Quick test_divmod_limb_boundaries
        ] );
      ( "bigint-props",
        qsuite
          [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_matches_int;
            prop_divmod_reconstruct; prop_divmod_adversarial; prop_karatsuba_identity;
            prop_string_roundtrip; prop_add_commutative;
            prop_mul_distributes; prop_sub_antisym; prop_gcd_divides;
            prop_compare_consistent_with_sub
          ] );
      ( "rat-unit",
        [ Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "of_float" `Quick test_rat_of_float;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
          Alcotest.test_case "approx known convergents" `Quick test_rat_approx_known
        ] );
      ( "rat-props",
        qsuite
          [ prop_rat_add_assoc; prop_rat_mul_assoc; prop_rat_distrib;
            prop_rat_add_inverse; prop_rat_mul_inverse; prop_rat_normalized;
            prop_rat_compare_total_order; prop_rat_to_float_order;
            prop_rat_string_roundtrip; prop_rat_approx_best
          ] );
      ( "tagged-oracle",
        qsuite [ prop_bigint_oracle; prop_rat_oracle; prop_rat_oracle_compare ] );
      ( "tagged-unit",
        [ Alcotest.test_case "small overflow boundaries" `Quick
            test_small_overflow_boundaries;
          Alcotest.test_case "promotion/demotion counters" `Quick
            test_rat_overflow_promotes;
          Alcotest.test_case "representation independence" `Quick
            test_representation_independence
        ] );
      ( "of-string-hardening",
        [ Alcotest.test_case "bigint rejects malformed" `Quick
            test_bigint_of_string_rejects;
          Alcotest.test_case "rat rejects malformed" `Quick
            test_rat_of_string_rejects;
          Alcotest.test_case "rat still accepts valid" `Quick
            test_rat_of_string_valid
        ] );
      ( "approx-and-floats",
        qsuite
          [ prop_rat_approx_bound_big; prop_of_float_dyadic_roundtrip;
            prop_to_float_of_float_roundtrip
          ] );
      ( "affine",
        [ Alcotest.test_case "eval" `Quick test_affine_eval;
          Alcotest.test_case "intersection (milestones)" `Quick test_affine_intersection;
          Alcotest.test_case "algebra" `Quick test_affine_algebra
        ] )
    ]
