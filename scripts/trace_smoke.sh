#!/bin/sh
# Trace smoke check (run by `make trace-smoke`, part of `make check`):
# --trace runs of the CLI must produce JSON-lines files where every line
# parses, and a max-flow solve must render as one span tree whose LP
# solves carry pivot counts.
set -eu

DLSCHED=${1:-_build/default/bin/dlsched.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "trace_smoke: FAIL: $*" >&2; exit 1; }

"$DLSCHED" generate --jobs 6 --machines 3 --seed 11 -o "$WORK/inst.txt" > /dev/null
"$DLSCHED" max-flow "$WORK/inst.txt" --trace "$WORK/maxflow.jsonl" > /dev/null \
  || fail "max-flow --trace failed"

"$DLSCHED" trace --profile poisson --requests 30 --seed 5 -o "$WORK/trace.txt" \
  > /dev/null
"$DLSCHED" replay "$WORK/trace.txt" --policy srpt --trace "$WORK/replay.jsonl" \
  > /dev/null || fail "replay --trace failed"

python3 - "$WORK/maxflow.jsonl" "$WORK/replay.jsonl" <<'PYEOF' \
  || fail "trace validation failed"
import json, sys

# Every line of every trace must be standalone JSON.
for path in sys.argv[1:]:
    with open(path) as f:
        lines = [l for l in f.read().splitlines() if l]
    if not lines:
        sys.exit(f"{path}: empty trace")
    for i, line in enumerate(lines, 1):
        try:
            json.loads(line)
        except ValueError as e:
            sys.exit(f"{path}:{i}: not JSON: {e}")

# The max-flow trace must be one tree: a single root span whose subtree
# holds the milestone search, the feasibility probes, and LP solves with
# pivot counts.
records = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
spans = {r["id"]: r for r in records if r["type"] == "span"}
events = [r for r in records if r["type"] == "event"]
roots = [s for s in spans.values() if s["parent"] is None]
assert len(roots) == 1 and roots[0]["name"] == "dlsched.max-flow", roots

def depth(s):
    d = 0
    while s["parent"] is not None:
        s = spans[s["parent"]]
        d += 1
    return d

names = {s["name"] for s in spans.values()}
for needed in ("maxflow.solve", "flow.search", "lp.solve"):
    assert needed in names, f"missing {needed} span"
assert any(n.startswith("probe.") for n in names), "no probe spans"
lp = [s for s in spans.values() if s["name"] == "lp.solve"]
assert all("pivots_phase1" in s["attrs"] for s in lp), "lp.solve missing pivots"
assert all(depth(s) >= 2 for s in lp), "lp.solve not nested under the solve tree"
assert any(e["name"] == "milestones.computed" for e in events), "no milestones event"
assert all(s["end"] >= s["start"] for s in spans.values()), "span with end < start"
PYEOF

echo "trace_smoke: PASS"
