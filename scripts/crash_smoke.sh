#!/bin/sh
# Crash-recovery smoke check (run by `make crash-smoke`, part of `make check`):
# a WAL-armed serve daemon is killed with SIGKILL mid-stream, its log tail is
# dirtied with half a record (as a crash mid-append would leave), and
# `--resume` must finish the remaining commands with final status and metrics
# bit-identical to a run that never crashed.  A second scenario kills the
# daemon inside an open admission coalescing window: every acknowledged
# submit carries its future (coalesced) arrival date in the WAL, so the
# resumed run must fire the same batch and drain to the same state.
set -eu

DLSCHED=${1:-_build/default/bin/dlsched.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "crash_smoke: FAIL: $*" >&2; exit 1; }

# The admission valve's own counters (admission.*) are process-local
# bookkeeping: shed requests never reach the WAL (refusal at the door) and
# replayed submits bypass the valve, so they are not — and should not be —
# recovered.  The bit-identity claim is about the engine; compare final
# states with the valve's entries stripped from the metrics document.
strip_admission() {
  python3 -c '
import json, sys
for line in sys.stdin:
    line = line.rstrip("\n")
    if line.startswith("{"):
        doc = json.loads(line)
        for section in doc.values():
            if isinstance(section, dict):
                for k in [k for k in section if k.startswith("admission.")]:
                    del section[k]
        print(json.dumps(doc, sort_keys=True))
    else:
        print(line)
'
}

# The full command stream.  The crash run is SIGKILLed after the first 7
# commands (so the log holds records both covered by the explicit snapshot
# and after it), then resumed with the remaining 7.
ALL="$WORK/all.cmds"
cat > "$ALL" <<'EOF'
submit a 0 40
submit b 1 20
tick 5
fail 1
snapshot
submit c 0 10
tick 3
submit d 1 8
recover 1
tick 4
drain
status
metrics json
quit
EOF

# --- oracle: the same stream, WAL-armed, uninterrupted --------------------

"$DLSCHED" serve --clock virtual --seed 42 --policy mct --wal "$WORK/oracle" \
  < "$ALL" > "$WORK/oracle.out" 2> /dev/null
grep -q '^ok snapshot seq=' "$WORK/oracle.out" || fail "oracle snapshot not taken"
grep -q '^ok drained' "$WORK/oracle.out" || fail "oracle did not drain"
# Final observable state: the status line and the metrics JSON document
# (followed by its `ok` terminator; the very last line is `ok bye`).
tail -n 4 "$WORK/oracle.out" | head -n 3 | strip_admission > "$WORK/oracle.final"
grep -q '"requests_completed": 4\|"requests_completed":4' "$WORK/oracle.final" \
  || fail "oracle final state did not capture the metrics document"

# --- crash run: socket daemon, kill -9 after 7 commands -------------------

SOCK="$WORK/dlsched.sock"
"$DLSCHED" serve --socket "$SOCK" --clock virtual --seed 42 --policy mct \
  --wal "$WORK/crash" > "$WORK/daemon.out" 2>&1 &
DAEMON=$!

head -n 7 "$ALL" > "$WORK/prefix.cmds"
if ! python3 - "$SOCK" "$WORK/prefix.cmds" <<'PYEOF'
import socket, sys, time
path, cmds = sys.argv[1], sys.argv[2]
for _ in range(100):
    try:
        s = socket.socket(socket.AF_UNIX)
        s.connect(path)
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("daemon socket never appeared")
f = s.makefile("rw")
assert f.readline().startswith("hello dlsched proto=2"), "banner"
# Read every reply: a reply means the record hit the fsync'd log before the
# engine applied it, so everything acknowledged here must survive the kill.
for line in open(cmds):
    f.write(line)
    f.flush()
    r = f.readline().strip()
    assert r.startswith("ok"), "command %r got %r" % (line.strip(), r)
s.close()
PYEOF
then
  kill -9 "$DAEMON" 2> /dev/null || true
  fail "could not drive the daemon before the crash"
fi

kill -9 "$DAEMON"
wait "$DAEMON" 2> /dev/null || true
[ -s "$WORK/crash/wal" ] || fail "no write-ahead log left behind"
[ -s "$WORK/crash/snapshot" ] || fail "no snapshot left behind"
# A crash can also land mid-append: leave half a frame at the tail.
printf 'r 99 1234 5678\nsubmi' >> "$WORK/crash/wal"

# --- resume: replay the tail, run the remaining commands ------------------

tail -n +8 "$ALL" | "$DLSCHED" serve --clock virtual --resume "$WORK/crash" \
  > "$WORK/resume.out" 2> "$WORK/resume.err"
grep -q 'resumed from .* (seq [0-9]' "$WORK/resume.err" \
  || fail "no resume banner: $(cat "$WORK/resume.err")"
tail -n 4 "$WORK/resume.out" | head -n 3 | strip_admission > "$WORK/resume.final"

diff -u "$WORK/oracle.final" "$WORK/resume.final" > /dev/null \
  || fail "resumed state differs from the uninterrupted run:
$(diff -u "$WORK/oracle.final" "$WORK/resume.final")"

# --- crash inside an open coalescing window -------------------------------

# With --batch-window 10 every submit is acknowledged with a future
# arrival date (the end of the open window) and WAL-logged with that very
# date, so there is no admission-side buffer to lose.  Kill -9 while the
# window is still open (t=2, batch fires at t=10): the resumed run must
# fire the same single batch and drain bit-identically to an oracle that
# never crashed.  --cache must be passed to the resumed run too (cache
# arming is engine configuration, not recovered state).
ALL2="$WORK/window.cmds"
cat > "$ALL2" <<'EOF'
submit a 0 40
submit b 1 20
tick 2
submit c 0 10
submit d 1 8
drain
status
metrics json
quit
EOF

"$DLSCHED" serve --clock virtual --seed 42 --policy mct --wal "$WORK/oracle2" \
  --batch-window 10 --cache < "$ALL2" > "$WORK/oracle2.out" 2> /dev/null
grep -q '^ok submitted a job=0 fires_at=10' "$WORK/oracle2.out" \
  || fail "window oracle did not coalesce the first submit to t=10"
grep -q '^ok drained' "$WORK/oracle2.out" || fail "window oracle did not drain"
tail -n 4 "$WORK/oracle2.out" | head -n 3 | strip_admission > "$WORK/oracle2.final"
grep -q '"requests_completed": 4\|"requests_completed":4' "$WORK/oracle2.final" \
  || fail "window oracle final state did not capture the metrics document"

SOCK2="$WORK/dlsched-window.sock"
"$DLSCHED" serve --socket "$SOCK2" --clock virtual --seed 42 --policy mct \
  --wal "$WORK/window-crash" --batch-window 10 --cache \
  > "$WORK/daemon2.out" 2>&1 &
DAEMON2=$!

head -n 5 "$ALL2" > "$WORK/window-prefix.cmds"
if ! python3 - "$SOCK2" "$WORK/window-prefix.cmds" <<'PYEOF'
import socket, sys, time
path, cmds = sys.argv[1], sys.argv[2]
for _ in range(100):
    try:
        s = socket.socket(socket.AF_UNIX)
        s.connect(path)
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("daemon socket never appeared")
f = s.makefile("rw")
assert f.readline().startswith("hello dlsched proto=2"), "banner"
for line in open(cmds):
    f.write(line)
    f.flush()
    r = f.readline().strip()
    assert r.startswith("ok"), "command %r got %r" % (line.strip(), r)
    # Every acknowledged submit carries the shared coalesced arrival date.
    if line.startswith("submit"):
        assert r.endswith("fires_at=10"), "not coalesced to the open window: %r" % r
s.close()
PYEOF
then
  kill -9 "$DAEMON2" 2> /dev/null || true
  fail "could not drive the window daemon before the crash"
fi

kill -9 "$DAEMON2"
wait "$DAEMON2" 2> /dev/null || true
[ -s "$WORK/window-crash/wal" ] || fail "no write-ahead log left by the window crash"
# No snapshot was ever taken: recovery starts from DIR/meta.  Dirty the
# tail here too.
printf 'submi' >> "$WORK/window-crash/wal"

tail -n +6 "$ALL2" | "$DLSCHED" serve --clock virtual --resume "$WORK/window-crash" \
  --batch-window 10 --cache > "$WORK/window-resume.out" 2> "$WORK/window-resume.err"
grep -q 'resumed from .* (seq [0-9]' "$WORK/window-resume.err" \
  || fail "no window resume banner: $(cat "$WORK/window-resume.err")"
tail -n 4 "$WORK/window-resume.out" | head -n 3 | strip_admission \
  > "$WORK/window-resume.final"

diff -u "$WORK/oracle2.final" "$WORK/window-resume.final" > /dev/null \
  || fail "window-crash resumed state differs from the uninterrupted run:
$(diff -u "$WORK/oracle2.final" "$WORK/window-resume.final")"

# --- guard rails ----------------------------------------------------------

# Arming a directory that already holds serving state must be refused...
if printf 'quit\n' | "$DLSCHED" serve --clock virtual --wal "$WORK/crash" \
  > /dev/null 2> "$WORK/rearm.err"; then
  fail "re-arming a used durability directory should fail"
fi
grep -q 'already holds' "$WORK/rearm.err" || fail "re-arm error not explanatory"

# ...and --wal X --resume Y with X != Y is a contradiction.
if printf 'quit\n' | "$DLSCHED" serve --clock virtual --wal "$WORK/other" \
  --resume "$WORK/crash" > /dev/null 2> /dev/null; then
  fail "conflicting --wal/--resume directories should fail"
fi

echo "crash_smoke: PASS"
