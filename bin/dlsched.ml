(* dlsched: command-line front end to the library.

     dlsched solve INSTANCE [--objective makespan|maxflow|stretch|preemptive]
     dlsched max-flow INSTANCE [--trace FILE]
     dlsched feasible INSTANCE --deadlines 8,7,6
     dlsched milestones INSTANCE
     dlsched simulate INSTANCE [--policy mct|fcfs|srpt|online-opt] [--stretch]
     dlsched compare INSTANCE [--stretch]
     dlsched generate --jobs N --machines M [--seed S] [-o FILE]
     dlsched gripps [--machines M] [--banks B] [--replication R] [--requests N]
     dlsched trace [--profile poisson|diurnal] [--requests N] [-o FILE]
     dlsched replay TRACE [--policy P] [--batch S] [--report FILE] [--json]
     dlsched serve [--socket PATH] [--clock wall|virtual] [--policy P]

   Instances use the textual format of Sched_core.Instance_io (see
   `dlsched generate` for examples); traces use Serve.Trace's format (see
   `dlsched trace`). *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
open Cmdliner

(* Data-loading errors (missing file, syntax error, bad semantics) are user
   errors: one line on stderr and a nonzero exit, not a backtrace. *)
let or_die f x =
  match f x with
  | v -> v
  | exception (Invalid_argument msg | Sys_error msg | Failure msg) ->
    Format.eprintf "dlsched: %s@." msg;
    exit 2

let load_instance path = or_die Sched_core.Instance_io.load path
let load_trace path = or_die Serve.Trace.load path

let print_schedule ~header sched =
  Format.printf "%s@." header;
  Format.printf "%a" (S.pp_gantt ?width:None) sched;
  Format.printf "@.slices:@.%a@." S.pp sched;
  Format.printf "metrics: makespan=%s max-flow=%s max-weighted-flow=%s max-stretch=%s@."
    (R.to_string (S.makespan sched))
    (R.to_string (S.max_flow sched))
    (R.to_string (S.max_weighted_flow sched))
    (R.to_string (S.max_stretch sched))

let instance_arg =
  let doc = "Instance file (see `dlsched generate` for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc)

(* Shared by every command that solves LPs.  Evaluates to (), setting the
   process-wide engine family and (with [--trace]) installing the trace
   sink as side effects before the command runs. *)
let setup_arg =
  let solver_doc =
    "LP engine: $(b,sparse) (revised simplex on sparse columns, with \
     warm-started re-solves; the default) or $(b,dense) (the original \
     tableau solver, kept as a differential-testing oracle).  Exact \
     results are identical under both." in
  let solver =
    Arg.(value
         & opt (enum [ ("sparse", Lp.Solve.Sparse); ("dense", Lp.Solve.Dense) ])
             Lp.Solve.Sparse
         & info [ "solver" ] ~docv:"ENGINE" ~doc:solver_doc)
  in
  let trace_doc =
    "Write an observability trace to $(docv): one JSON object per line, \
     nested spans (LP solves with pivot counts, feasibility probes, \
     milestone searches) and instant events." in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:trace_doc)
  in
  let jobs_doc =
    "Width of the domain pool used for speculative feasibility probing \
     (and for serving concurrent clients): $(docv) domains work in \
     parallel, with results bit-identical at every width.  Defaults to \
     the $(b,DLSCHED_JOBS) environment variable, else the hardware's \
     recommended domain count.  $(b,--jobs 1) disables parallelism \
     entirely." in
  let jobs =
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc:jobs_doc)
  in
  let setup variant trace jobs =
    Lp.Solve.variant := variant;
    (match jobs with
     | None -> ()
     | Some n when n >= 1 -> Par.Pool.set_jobs n
     | Some n ->
       Format.eprintf "dlsched: --jobs %d: width must be >= 1@." n;
       exit 2);
    match trace with
    | None -> ()
    | Some path ->
      Obs.Sink.install (or_die Obs.Sink.file path);
      (* Flush and close the file even on [exit 1/2] paths. *)
      at_exit Obs.Sink.uninstall
  in
  Term.(const setup $ solver $ trace $ jobs)

(* --- solve ------------------------------------------------------- *)

let svg_arg =
  let doc = "Also write an SVG Gantt chart of the schedule to $(docv)." in
  Cmdliner.Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let maybe_svg svg sched =
  match svg with
  | Some path ->
    Sched_core.Gantt_svg.save path sched;
    Format.printf "wrote %s@." path
  | None -> ()

let solve_run ~root () file objective svg =
  Obs.Span.with_span root (fun () ->
    let inst = load_instance file in
    let schedule =
      match objective with
      | `Makespan ->
        let r = Sched_core.Makespan.solve inst in
        Format.printf "optimal makespan: %s@." (R.to_string r.Sched_core.Makespan.makespan);
        r.Sched_core.Makespan.schedule
      | `Maxflow ->
        let r = Sched_core.Max_flow.solve inst in
        Format.printf "optimal max weighted flow: %s%s (%d milestones)@."
          (R.to_string r.Sched_core.Max_flow.objective)
          (let approx = R.approx ~max_den:1000 r.Sched_core.Max_flow.objective in
           if R.equal approx r.Sched_core.Max_flow.objective then ""
           else Printf.sprintf " (~%s)" (R.to_string approx))
          (List.length r.Sched_core.Max_flow.milestones);
        r.Sched_core.Max_flow.schedule
      | `Stretch ->
        let r = Sched_core.Max_flow.solve_max_stretch inst in
        Format.printf "optimal max stretch: %s (~%.4f)@."
          (R.to_string r.Sched_core.Max_flow.objective)
          (R.to_float r.Sched_core.Max_flow.objective);
        r.Sched_core.Max_flow.schedule
      | `Preemptive ->
        let r = Sched_core.Preemptive.solve inst in
        Format.printf "optimal max weighted flow (preemptive): %s (%d slots)@."
          (R.to_string r.Sched_core.Preemptive.objective)
          r.Sched_core.Preemptive.preemption_slots;
        r.Sched_core.Preemptive.schedule
    in
    print_schedule ~header:"schedule:" schedule;
    maybe_svg svg schedule)

let objective_arg =
  let doc = "Objective: makespan, maxflow (max weighted flow, divisible), \
             stretch (max stretch, divisible), or preemptive (max weighted \
             flow, preemption without divisibility)." in
  Arg.(value & opt (enum [ ("makespan", `Makespan); ("maxflow", `Maxflow);
                           ("stretch", `Stretch); ("preemptive", `Preemptive) ])
         `Maxflow
       & info [ "objective"; "O" ] ~doc)

let solve_cmd =
  let doc = "Solve an offline scheduling problem exactly (Theorems 1/2, Section 4.4)." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(const (solve_run ~root:"dlsched.solve")
          $ setup_arg $ instance_arg $ objective_arg $ svg_arg)

(* Alias for `solve --objective maxflow`, the paper's headline problem —
   with [--trace] the whole milestone search renders as one span tree. *)
let max_flow_cmd =
  let doc = "Minimize the maximum weighted flow (alias for `solve --objective maxflow`)." in
  Cmd.v (Cmd.info "max-flow" ~doc)
    Term.(const (fun () file svg -> solve_run ~root:"dlsched.max-flow" () file `Maxflow svg)
          $ setup_arg $ instance_arg $ svg_arg)

(* --- feasible ----------------------------------------------------- *)

let feasible_cmd =
  let deadlines =
    let doc = "Comma-separated deadlines, one rational per job (e.g. 8,15/2,6)." in
    Arg.(required & opt (some string) None & info [ "deadlines"; "d" ] ~doc)
  in
  let run () file deadlines =
    Obs.Span.with_span "dlsched.feasible" (fun () ->
      let inst = load_instance file in
      let ds =
        String.split_on_char ',' deadlines |> List.map R.of_string |> Array.of_list
      in
      if Array.length ds <> I.num_jobs inst then begin
        Format.eprintf "expected %d deadlines, got %d@." (I.num_jobs inst) (Array.length ds);
        exit 2
      end;
      match Sched_core.Deadline.feasible inst ~deadlines:ds with
      | Some sched ->
        Format.printf "FEASIBLE@.";
        print_schedule ~header:"witness schedule:" sched
      | None ->
        Format.printf "INFEASIBLE@.";
        exit 1)
  in
  let doc = "Decide deadline feasibility (Lemma 1) and print a witness schedule." in
  Cmd.v (Cmd.info "feasible" ~doc)
    Term.(const run $ setup_arg $ instance_arg $ deadlines)

(* --- milestones ---------------------------------------------------- *)

let milestones_cmd =
  let run file =
    let inst = load_instance file in
    let ms = Sched_core.Milestones.compute inst in
    Format.printf "%d milestones (bound n^2 - n = %d):@." (List.length ms)
      (Sched_core.Milestones.count_bound inst);
    List.iter (fun f -> Format.printf "  %s@." (R.to_string f)) ms
  in
  let doc = "List the milestones (critical trial values) of the instance." in
  Cmd.v (Cmd.info "milestones" ~doc) Term.(const run $ instance_arg)

(* --- simulate ------------------------------------------------------ *)

let simulate_cmd =
  let policy =
    let doc = "Online policy: mct, fcfs, srpt or online-opt." in
    Arg.(value & opt (enum [ ("mct", `Mct); ("fcfs", `Fcfs); ("srpt", `Srpt);
                             ("online-opt", `Oo) ])
           `Mct
         & info [ "policy"; "p" ] ~doc)
  in
  let stretch =
    let doc = "Reweight the instance for max-stretch before simulating." in
    Arg.(value & flag & info [ "stretch" ] ~doc)
  in
  let run () file policy stretch =
    Obs.Span.with_span "dlsched.simulate" (fun () ->
      let inst = load_instance file in
      let inst = if stretch then I.stretch_weights inst else inst in
      let m : (module Online.Sim.POLICY) =
        match policy with
        | `Mct -> (module Online.Policies.Mct)
        | `Fcfs -> (module Online.Policies.Fcfs)
        | `Srpt -> (module Online.Policies.Srpt)
        | `Oo -> (module Online.Online_opt.Divisible)
      in
      let r = Online.Sim.run m inst in
      let offline = Sched_core.Max_flow.solve inst in
      print_schedule ~header:(Printf.sprintf "%s schedule:" r.Online.Sim.policy)
        r.Online.Sim.schedule;
      Format.printf "offline optimal max weighted flow: %s; achieved: %s@."
        (R.to_string offline.Sched_core.Max_flow.objective)
        (R.to_string (S.max_weighted_flow r.Online.Sim.schedule)))
  in
  let doc = "Run an online policy on the instance and compare to the offline optimum." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ setup_arg $ instance_arg $ policy $ stretch)

(* --- compare ------------------------------------------------------- *)

let compare_cmd =
  let stretch =
    let doc = "Reweight the instance for max-stretch before comparing." in
    Arg.(value & flag & info [ "stretch" ] ~doc)
  in
  let run () file stretch =
    Obs.Span.with_span "dlsched.compare" (fun () ->
      let inst = load_instance file in
      let inst = if stretch then I.stretch_weights inst else inst in
      let report = Online.Compare.run inst in
      Format.printf "%a@." Online.Compare.pp report)
  in
  let doc = "Run every online policy on the instance and tabulate them              against the offline optimum." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ setup_arg $ instance_arg $ stretch)

(* --- generate ------------------------------------------------------ *)

let generate_cmd =
  let jobs = Arg.(value & opt int 6 & info [ "jobs"; "n" ] ~doc:"Number of jobs.") in
  let machines =
    Arg.(value & opt int 3 & info [ "machines"; "m" ] ~doc:"Number of machines.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"Output file.")
  in
  let run jobs machines seed output =
    let rng = Gripps.Prng.create seed in
    let releases = Array.init jobs (fun _ -> R.of_int (Gripps.Prng.int rng 20)) in
    let weights = Array.init jobs (fun _ -> R.of_int (1 + Gripps.Prng.int rng 4)) in
    let cost =
      Array.init machines (fun _ ->
          Array.init jobs (fun _ ->
              if Gripps.Prng.int rng 4 = 0 then None
              else Some (R.of_int (1 + Gripps.Prng.int rng 9))))
    in
    for j = 0 to jobs - 1 do
      if Array.for_all (fun row -> row.(j) = None) cost then
        cost.(0).(j) <- Some (R.of_int (1 + Gripps.Prng.int rng 9))
    done;
    let inst = I.make ~releases ~weights cost in
    let text = Sched_core.Instance_io.to_string inst in
    match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let doc = "Generate a random instance in the textual format." in
  Cmd.v (Cmd.info "generate" ~doc) Term.(const run $ jobs $ machines $ seed $ output)

(* --- gripps -------------------------------------------------------- *)

let gripps_cmd =
  let machines = Arg.(value & opt int 4 & info [ "machines"; "m" ] ~doc:"Number of servers.") in
  let banks = Arg.(value & opt int 3 & info [ "banks"; "b" ] ~doc:"Number of databanks.") in
  let replication =
    Arg.(value & opt int 2 & info [ "replication"; "r" ] ~doc:"Replicas per databank.")
  in
  let requests = Arg.(value & opt int 8 & info [ "requests" ] ~doc:"Number of requests.") in
  let rate =
    Arg.(value & opt float (1.0 /. 60.0)
         & info [ "rate" ] ~doc:"Poisson arrival rate (requests per second).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"Output file.")
  in
  let run machines banks replication requests rate seed output =
    let rng = Gripps.Prng.create seed in
    let platform = Gripps.Workload.random_platform rng ~machines ~banks ~replication in
    let reqs =
      Gripps.Workload.poisson_requests rng ~rate ~count:requests ~max_motifs:60 ~banks
    in
    let inst = Gripps.Workload.to_instance platform reqs in
    let text = Sched_core.Instance_io.to_string inst in
    match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let doc = "Generate a GriPPS-style instance: heterogeneous servers, replicated              databanks, Poisson motif-comparison requests." in
  Cmd.v (Cmd.info "gripps" ~doc)
    Term.(const run $ machines $ banks $ replication $ requests $ rate $ seed $ output)

(* --- trace --------------------------------------------------------- *)

let trace_machines =
  Arg.(value & opt int 4 & info [ "machines"; "m" ] ~doc:"Number of servers.")
let trace_banks =
  Arg.(value & opt int 3 & info [ "banks"; "b" ] ~doc:"Number of databanks.")
let trace_replication =
  Arg.(value & opt int 2 & info [ "replication"; "r" ] ~doc:"Replicas per databank.")
let trace_seed = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"PRNG seed.")

let trace_cmd =
  let profile =
    let doc = "Arrival profile: poisson (homogeneous) or diurnal (sin^2 day shape)." in
    Arg.(value & opt (enum [ ("poisson", `Poisson); ("diurnal", `Diurnal) ]) `Diurnal
         & info [ "profile" ] ~doc)
  in
  let requests =
    Arg.(value & opt int 200 & info [ "requests"; "n" ] ~doc:"Number of requests.")
  in
  let rate =
    let doc = "Arrival rate in requests per second (the peak rate for diurnal)." in
    Arg.(value & opt float 0.2 & info [ "rate" ] ~doc)
  in
  let day =
    let doc = "Length of the diurnal \"day\" in seconds." in
    Arg.(value & opt float 3600. & info [ "day" ] ~doc)
  in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"Output file.")
  in
  let faults =
    let doc = "Overlay machine failure/recovery events (exponential up/down periods)." in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let mtbf =
    let doc = "Mean time between failures per machine, in seconds (with --faults)." in
    Arg.(value & opt float 300. & info [ "mtbf" ] ~doc)
  in
  let mttr =
    let doc = "Mean time to recovery, in seconds (with --faults)." in
    Arg.(value & opt float 30. & info [ "mttr" ] ~doc)
  in
  let run profile machines banks replication requests rate day seed output faults mtbf
      mttr =
    let trace =
      match profile with
      | `Poisson ->
        Serve.Trace.poisson ~seed ~machines ~banks ~replication ~rate ~count:requests ()
      | `Diurnal ->
        Serve.Trace.diurnal ~seed ~machines ~banks ~replication ~day ~peak_rate:rate
          ~count:requests ()
    in
    let trace =
      if faults then or_die (Serve.Trace.with_faults ~seed:(seed + 1) ~mtbf ~mttr) trace
      else trace
    in
    let text = Serve.Trace.to_string trace in
    match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      Format.printf "wrote %s (%d requests, %d fault events)@." path
        (List.length trace.Serve.Trace.entries)
        (List.length trace.Serve.Trace.events)
    | None -> print_string text
  in
  let doc = "Generate a synthetic workload trace for `dlsched replay`." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ profile $ trace_machines $ trace_banks $ trace_replication
          $ requests $ rate $ day $ trace_seed $ output $ faults $ mtbf $ mttr)

(* --- replay / serve ------------------------------------------------- *)

(* Every policy the CLI knows, keyed by the policy's own name — the same
   name a durability snapshot records, so `serve --resume` resolves the
   snapshot's policy from this one list. *)
let all_policies : (module Online.Sim.POLICY) list =
  [ (module Online.Policies.Mct);
    (module Online.Policies.Fcfs);
    (module Online.Policies.Srpt);
    (module Online.Policies.Evd);
    (module Online.Policies.Fair);
    (module Online.Online_opt.Divisible);
    (module Online.Online_opt.Lazy_divisible) ]

let policy_arg =
  let keyed =
    List.map
      (fun m ->
        let module P = (val m : Online.Sim.POLICY) in
        (P.name, m))
      all_policies
  in
  let doc =
    "Scheduling policy: " ^ String.concat ", " (List.map fst keyed) ^ "."
  in
  Arg.(value
       & opt (enum keyed) (module Online.Policies.Mct : Online.Sim.POLICY)
       & info [ "policy"; "p" ] ~doc)

let batch_arg =
  let doc = "Batch window in seconds: coalesce arrivals within this window after a \
             decision instead of re-consulting the policy on each one." in
  Arg.(value & opt float 0. & info [ "batch" ] ~doc)

let lost_work_arg =
  let doc = "What happens to in-flight work when a machine fails: lost (redone from \
             scratch) or preserved (partial results survive)." in
  Arg.(value
       & opt (enum [ ("lost", `Lost); ("preserved", `Preserved) ]) `Lost
       & info [ "lost-work" ] ~doc)

let replay_cmd =
  let trace_arg =
    let doc = "Trace file (see `dlsched trace`)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let report =
    let doc = "Also write the metrics report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Report metrics as JSON.") in
  let run () file policy batch lost_work report json =
    let trace = load_trace file in
    let wall0 = Unix.gettimeofday () in
    let engine =
      Obs.Span.with_span "dlsched.replay" (fun () ->
          Serve.Engine.replay ~batch_window:(Gripps.Workload.quantize batch)
            ~lost_work ~policy trace)
    in
    let wall = Unix.gettimeofday () -. wall0 in
    let m = Serve.Engine.metrics engine in
    let body = if json then Serve.Metrics.to_json m else Serve.Metrics.to_text m in
    (match report with
     | Some path ->
       Out_channel.with_open_text path (fun oc -> output_string oc (body ^ "\n"));
       Format.printf "wrote %s@." path
     | None -> print_string body; if json then print_newline ());
    if Serve.Engine.submitted engine = 0 then begin
      Format.eprintf "dlsched: %s: trace has no requests@." file;
      exit 2
    end;
    let incomplete = Serve.Engine.submitted engine - Serve.Engine.completed engine in
    if incomplete > 0 then
      (* A trace whose failures are never recovered can leave permanently
         starved requests; the partial schedule cannot pass the fraction
         check, so report instead of validating. *)
      Format.printf
        "note: %d request(s) incomplete (%d starved by machine failures); \
         skipping schedule validation@."
        incomplete (Serve.Engine.starved engine)
    else begin
      let sched = Serve.Engine.schedule engine in
      match S.validate_divisible sched with
      | Ok () ->
        Format.printf "schedule valid (%d slices)@." (List.length sched.S.slices)
      | Error msg ->
        Format.eprintf "dlsched: invalid schedule: %s@." msg;
        exit 1
    end;
    let n = Serve.Engine.completed engine in
    if wall > 0. then
      Format.printf "replayed %d requests in %.3fs wall (%.0f requests/s, %.0f decisions/s)@."
        n wall
        (float_of_int n /. wall)
        (float_of_int (Serve.Metrics.count (Serve.Metrics.counter m "decisions")) /. wall)
  in
  let doc = "Replay a workload trace through the serving engine under a virtual              clock and report per-request flow/stretch metrics." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ setup_arg $ trace_arg $ policy_arg $ batch_arg $ lost_work_arg
          $ report $ json)

let serve_cmd =
  let socket =
    let doc = "Listen on a Unix-domain socket at $(docv) instead of stdin/stdout." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let clock =
    let doc = "Clock: wall (real time) or virtual (advanced by `tick`)." in
    Arg.(value & opt (enum [ ("wall", `Wall); ("virtual", `Virtual) ]) `Wall
         & info [ "clock" ] ~doc)
  in
  let platform_from =
    let doc = "Take the platform (machines, banks, replication) from this trace \
               file instead of generating a random one." in
    Arg.(value & opt (some file) None & info [ "platform" ] ~docv:"TRACE" ~doc)
  in
  let wal_arg =
    let doc = "Arm crash safety: append every event to a write-ahead log under \
               $(docv) (fsync'd before it is applied) and write snapshots there \
               on the `snapshot` command." in
    Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"DIR" ~doc)
  in
  let resume_arg =
    let doc = "Recover a crashed server from the durability directory $(docv): \
               restore the latest snapshot, replay the log tail, and keep \
               logging there.  The platform and policy come from the snapshot; \
               --platform/--policy/--seed are ignored." in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR" ~doc)
  in
  let snapshot_every_arg =
    let doc = "With --wal/--resume: automatically checkpoint after every $(docv) \
               logged events (0 = only on the `snapshot` command)." in
    Arg.(value & opt int 0 & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let run () socket clock platform_from machines banks replication seed policy batch
      lost_work wal resume snapshot_every =
    (* A disconnecting client must never kill the daemon with SIGPIPE —
       writes to a dead peer surface as exceptions the session loop eats. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let clock =
      match clock with `Wall -> Serve.Clock.wall () | `Virtual -> Serve.Clock.virtual_ ()
    in
    let durability, engine =
      match resume with
      | Some dir ->
        (match wal with
         | Some d when d <> dir ->
           Format.eprintf
             "dlsched: --wal %s conflicts with --resume %s (a resumed server keeps \
              logging into the directory it recovered from)@."
             d dir;
           exit 2
         | _ -> ());
        let handle, engine =
          or_die
            (fun () ->
              Serve.Snapshot.resume ~snapshot_every ~dir ~clock
                ~policies:all_policies ())
            ()
        in
        Format.eprintf "dlsched serve: resumed from %s (seq %d, now=%s, %d/%d \
                        requests completed)@."
          dir
          (Serve.Engine.last_seq engine)
          (R.to_string (Serve.Engine.now engine))
          (Serve.Engine.completed engine)
          (Serve.Engine.submitted engine);
        (Some handle, engine)
      | None ->
        let platform =
          match platform_from with
          | Some file -> (load_trace file).Serve.Trace.platform
          | None ->
            Gripps.Workload.random_platform (Gripps.Prng.create seed) ~machines ~banks
              ~replication
        in
        let engine =
          Serve.Engine.create ~batch_window:(Gripps.Workload.quantize batch) ~lost_work
            ~clock ~policy platform
        in
        let durability =
          Option.map
            (fun dir ->
              let h = or_die (fun () -> Serve.Snapshot.arm ~snapshot_every ~dir engine) () in
              Format.eprintf "dlsched serve: write-ahead log armed at %s@." dir;
              h)
            wal
        in
        (durability, engine)
    in
    let platform = Serve.Engine.platform engine in
    let server = Serve.Server.create engine in
    Format.eprintf "dlsched serve: %d machines, %d banks; commands: \
                    submit/status/metrics/trace/spans/fail/recover/tick/drain/snapshot/quit@."
      (Array.length platform.Gripps.Workload.speeds)
      (Array.length platform.Gripps.Workload.bank_sizes);
    Fun.protect
      ~finally:(fun () -> Option.iter Serve.Snapshot.close durability)
      (fun () ->
        match socket with
        | Some path ->
          Format.eprintf "listening on %s@." path;
          Serve.Server.run_socket server ~path
        | None -> Serve.Server.run server stdin stdout)
  in
  let doc = "Run the scheduler as a daemon speaking a newline-delimited command              protocol on stdin/stdout or a Unix socket." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ setup_arg $ socket $ clock $ platform_from $ trace_machines
          $ trace_banks $ trace_replication $ trace_seed $ policy_arg $ batch_arg
          $ lost_work_arg $ wal_arg $ resume_arg $ snapshot_every_arg)

let () =
  let doc = "exact schedulers for divisible requests on heterogeneous databanks" in
  let info = Cmd.info "dlsched" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
          [ solve_cmd; max_flow_cmd; feasible_cmd; milestones_cmd; simulate_cmd;
            compare_cmd; generate_cmd; gripps_cmd; trace_cmd; replay_cmd; serve_cmd ]))
