(* dlsched: command-line front end to the library.

     dlsched solve INSTANCE [--objective makespan|maxflow|stretch|preemptive]
     dlsched max-flow INSTANCE [--trace FILE]
     dlsched feasible INSTANCE --deadlines 8,7,6
     dlsched milestones INSTANCE
     dlsched simulate INSTANCE [--policy mct|fcfs|srpt|online-opt] [--stretch]
     dlsched compare INSTANCE [--stretch]
     dlsched generate --jobs N --machines M [--seed S] [-o FILE]
     dlsched gripps [--machines M] [--banks B] [--replication R] [--requests N]
     dlsched trace [--profile poisson|diurnal] [--requests N] [-o FILE]
     dlsched replay TRACE [--policy P] [--batch S] [--report FILE] [--json]
     dlsched serve [--socket PATH] [--clock wall|virtual] [--policy P]
                   [--batch-window S] [--max-inflight N] [--cache]

   Instances use the textual format of Sched_core.Instance_io (see
   `dlsched generate` for examples); traces use Serve.Trace's format (see
   `dlsched trace`). *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
open Cmdliner

(* Data-loading errors (missing file, syntax error, bad semantics) are user
   errors: one line on stderr and a nonzero exit, not a backtrace. *)
let or_die f x =
  match f x with
  | v -> v
  | exception (Invalid_argument msg | Sys_error msg | Failure msg) ->
    Format.eprintf "dlsched: %s@." msg;
    exit 2

let load_instance path = or_die Sched_core.Instance_io.load path
let load_trace path = or_die Serve.Trace.load path

let print_schedule ~header sched =
  Format.printf "%s@." header;
  Format.printf "%a" (S.pp_gantt ?width:None) sched;
  Format.printf "@.slices:@.%a@." S.pp sched;
  Format.printf "metrics: makespan=%s max-flow=%s max-weighted-flow=%s max-stretch=%s@."
    (R.to_string (S.makespan sched))
    (R.to_string (S.max_flow sched))
    (R.to_string (S.max_weighted_flow sched))
    (R.to_string (S.max_stretch sched))

(* Every policy the CLI knows, keyed by the policy's own name — the same
   name a durability snapshot records, so `serve --resume` resolves the
   snapshot's policy from this one list. *)
let all_policies : (module Online.Sim.POLICY) list =
  [ (module Online.Policies.Mct);
    (module Online.Policies.Fcfs);
    (module Online.Policies.Srpt);
    (module Online.Policies.Evd);
    (module Online.Policies.Fair);
    (module Online.Online_opt.Divisible);
    (module Online.Online_opt.Lazy_divisible) ]

(* --- Flags ---------------------------------------------------------------

   Every flag the CLI parses, defined once.  Each info block funnels
   through [mk]/[req] (option flags), [switch] (boolean flags) or
   [pos_file] (positional file arguments) — the single usage renderer —
   so names, metavariables and doc strings read the same in every
   command's man page, and a flag shared by several commands (seed,
   machines, policy, the WAL trio, ...) cannot drift between them. *)
module Flags = struct
  let mk ?docv names doc kind default =
    Arg.(value & opt kind default & info names ?docv ~doc)

  let req ?docv names doc kind =
    Arg.(required & opt (some kind) None & info names ?docv ~doc)

  let switch names doc = Arg.(value & flag & info names ~doc)

  let pos_file ~docv doc =
    Arg.(required & pos 0 (some file) None & info [] ~docv ~doc)

  let instance =
    pos_file ~docv:"INSTANCE" "Instance file (see `dlsched generate` for the format)."

  let trace_file = pos_file ~docv:"TRACE" "Trace file (see `dlsched trace`)."

  let svg =
    mk [ "svg" ] ~docv:"FILE" "Also write an SVG Gantt chart of the schedule to $(docv)."
      Arg.(some string) None

  let output = mk [ "output"; "o" ] "Output file." Arg.(some string) None
  let seed = mk [ "seed"; "s" ] "PRNG seed." Arg.int 1

  let machines default = mk [ "machines"; "m" ] "Number of servers." Arg.int default
  let banks = mk [ "banks"; "b" ] "Number of databanks." Arg.int 3
  let replication = mk [ "replication"; "r" ] "Replicas per databank." Arg.int 2
  let requests default = mk [ "requests"; "n" ] "Number of requests." Arg.int default
  let rate ~doc default = mk [ "rate" ] doc Arg.float default

  (* Shared by every command that solves LPs.  Evaluates to (), setting the
     process-wide engine family and (with [--trace]) installing the trace
     sink as side effects before the command runs. *)
  let setup =
    let solver =
      mk [ "solver" ] ~docv:"ENGINE"
        "LP engine: $(b,sparse) (revised simplex on sparse columns, with \
         warm-started re-solves; the default) or $(b,dense) (the original \
         tableau solver, kept as a differential-testing oracle).  Exact \
         results are identical under both."
        (Arg.enum [ ("sparse", Lp.Solve.Sparse); ("dense", Lp.Solve.Dense) ])
        Lp.Solve.Sparse
    in
    let trace =
      mk [ "trace" ] ~docv:"FILE"
        "Write an observability trace to $(docv): one JSON object per line, \
         nested spans (LP solves with pivot counts, feasibility probes, \
         milestone searches) and instant events."
        Arg.(some string) None
    in
    let jobs =
      mk [ "jobs"; "j" ] ~docv:"N"
        "Width of the domain pool used for speculative feasibility probing \
         (and for serving concurrent clients): $(docv) domains work in \
         parallel, with results bit-identical at every width.  Defaults to \
         the $(b,DLSCHED_JOBS) environment variable, else the hardware's \
         recommended domain count.  $(b,--jobs 1) disables parallelism \
         entirely."
        Arg.(some int) None
    in
    let setup variant trace jobs =
      Lp.Solve.variant := variant;
      (match jobs with
       | None -> ()
       | Some n when n >= 1 -> Par.Pool.set_jobs n
       | Some n ->
         Format.eprintf "dlsched: --jobs %d: width must be >= 1@." n;
         exit 2);
      match trace with
      | None -> ()
      | Some path ->
        Obs.Sink.install (or_die Obs.Sink.file path);
        (* Flush and close the file even on [exit 1/2] paths. *)
        at_exit Obs.Sink.uninstall
    in
    Term.(const setup $ solver $ trace $ jobs)

  let policy =
    let keyed =
      List.map
        (fun m ->
          let module P = (val m : Online.Sim.POLICY) in
          (P.name, m))
        all_policies
    in
    mk [ "policy"; "p" ]
      ("Scheduling policy: " ^ String.concat ", " (List.map fst keyed) ^ ".")
      (Arg.enum keyed)
      (module Online.Policies.Mct : Online.Sim.POLICY)

  let batch =
    mk [ "batch" ] ~docv:"SECONDS"
      "Engine batch window in seconds: after a decision, coalesce arrivals \
       within this window instead of re-consulting the policy on each one."
      Arg.float 0.

  let lost_work =
    mk [ "lost-work" ]
      "What happens to in-flight work when a machine fails: lost (redone from \
       scratch) or preserved (partial results survive)."
      (Arg.enum [ ("lost", `Lost); ("preserved", `Preserved) ])
      `Lost

  let wal =
    mk [ "wal" ] ~docv:"DIR"
      "Arm crash safety: append every event to a write-ahead log under \
       $(docv) (fsync'd before it is applied) and write snapshots there \
       on the `snapshot` command."
      Arg.(some string) None

  let resume =
    mk [ "resume" ] ~docv:"DIR"
      "Recover a crashed server from the durability directory $(docv): \
       restore the latest snapshot, replay the log tail, and keep \
       logging there.  The platform and policy come from the snapshot; \
       --platform/--policy/--seed are ignored."
      Arg.(some string) None

  let snapshot_every =
    mk [ "snapshot-every" ] ~docv:"N"
      "With --wal/--resume: automatically checkpoint after every $(docv) \
       logged events (0 = only on the `snapshot` command)."
      Arg.int 0

  (* Admission valve (serve).  Distinct from --batch: --batch bounds how
     often a *standing* decision is revised, --batch-window coalesces
     *submissions* into one shared arrival so the engine plans once per
     burst. *)
  let batch_window =
    mk [ "batch-window" ] ~docv:"SECONDS"
      "Admission coalescing window: submissions accepted within $(docv) of \
       each other share one future arrival date, so the engine re-plans once \
       per batch instead of once per request (0 = plan per request)."
      Arg.float 0.

  let max_inflight =
    mk [ "max-inflight" ] ~docv:"N"
      "Load shedding: once $(docv) admitted requests are in flight, new \
       submissions get `err shed retry_after=T` instead of growing the \
       backlog (0 = unlimited)."
      Arg.int 0

  let max_per_client =
    mk [ "max-per-client" ] ~docv:"N"
      "Per-client in-flight cap, counted per connection (0 = unlimited)."
      Arg.int 0

  let admit_priority =
    mk [ "admit-priority" ]
      "Drain bias under load shedding: $(b,fifo) (over the cap, everyone is \
       shed alike) or $(b,smallest) (a request strictly smaller than the \
       largest in flight may overflow the global cap by 25%, so cheap \
       requests keep flowing while heavy ones drain)."
      (Arg.enum [ ("fifo", `Fifo); ("smallest", `Smallest) ])
      `Fifo

  let cache =
    switch [ "cache" ]
      "Cache scheduling decisions, keyed by the masked decision instance \
       (availability overlay + active job shapes): recurring workload shapes \
       replay remembered plans instead of re-consulting the policy.  With \
       --resume this must match the crashed run's setting."
end

(* --- solve ------------------------------------------------------- *)

let maybe_svg svg sched =
  match svg with
  | Some path ->
    Sched_core.Gantt_svg.save path sched;
    Format.printf "wrote %s@." path
  | None -> ()

let solve_run ~root () file objective svg =
  Obs.Span.with_span root (fun () ->
    let inst = load_instance file in
    let schedule =
      match objective with
      | `Makespan ->
        let r = Sched_core.Makespan.solve inst in
        Format.printf "optimal makespan: %s@." (R.to_string r.Sched_core.Makespan.makespan);
        r.Sched_core.Makespan.schedule
      | `Maxflow ->
        let r = Sched_core.Max_flow.solve inst in
        Format.printf "optimal max weighted flow: %s%s (%d milestones)@."
          (R.to_string r.Sched_core.Max_flow.objective)
          (let approx = R.approx ~max_den:1000 r.Sched_core.Max_flow.objective in
           if R.equal approx r.Sched_core.Max_flow.objective then ""
           else Printf.sprintf " (~%s)" (R.to_string approx))
          (List.length r.Sched_core.Max_flow.milestones);
        r.Sched_core.Max_flow.schedule
      | `Stretch ->
        let r = Sched_core.Max_flow.solve_max_stretch inst in
        Format.printf "optimal max stretch: %s (~%.4f)@."
          (R.to_string r.Sched_core.Max_flow.objective)
          (R.to_float r.Sched_core.Max_flow.objective);
        r.Sched_core.Max_flow.schedule
      | `Preemptive ->
        let r = Sched_core.Preemptive.solve inst in
        Format.printf "optimal max weighted flow (preemptive): %s (%d slots)@."
          (R.to_string r.Sched_core.Preemptive.objective)
          r.Sched_core.Preemptive.preemption_slots;
        r.Sched_core.Preemptive.schedule
    in
    print_schedule ~header:"schedule:" schedule;
    maybe_svg svg schedule)

let objective_arg =
  Flags.mk [ "objective"; "O" ]
    "Objective: makespan, maxflow (max weighted flow, divisible), \
     stretch (max stretch, divisible), or preemptive (max weighted \
     flow, preemption without divisibility)."
    (Arg.enum [ ("makespan", `Makespan); ("maxflow", `Maxflow);
                ("stretch", `Stretch); ("preemptive", `Preemptive) ])
    `Maxflow

let solve_cmd =
  let doc = "Solve an offline scheduling problem exactly (Theorems 1/2, Section 4.4)." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(const (solve_run ~root:"dlsched.solve")
          $ Flags.setup $ Flags.instance $ objective_arg $ Flags.svg)

(* Alias for `solve --objective maxflow`, the paper's headline problem —
   with [--trace] the whole milestone search renders as one span tree. *)
let max_flow_cmd =
  let doc = "Minimize the maximum weighted flow (alias for `solve --objective maxflow`)." in
  Cmd.v (Cmd.info "max-flow" ~doc)
    Term.(const (fun () file svg -> solve_run ~root:"dlsched.max-flow" () file `Maxflow svg)
          $ Flags.setup $ Flags.instance $ Flags.svg)

(* --- feasible ----------------------------------------------------- *)

let feasible_cmd =
  let deadlines =
    Flags.req [ "deadlines"; "d" ]
      "Comma-separated deadlines, one rational per job (e.g. 8,15/2,6)."
      Arg.string
  in
  let run () file deadlines =
    Obs.Span.with_span "dlsched.feasible" (fun () ->
      let inst = load_instance file in
      let ds =
        String.split_on_char ',' deadlines |> List.map R.of_string |> Array.of_list
      in
      if Array.length ds <> I.num_jobs inst then begin
        Format.eprintf "expected %d deadlines, got %d@." (I.num_jobs inst) (Array.length ds);
        exit 2
      end;
      match Sched_core.Deadline.feasible inst ~deadlines:ds with
      | Some sched ->
        Format.printf "FEASIBLE@.";
        print_schedule ~header:"witness schedule:" sched
      | None ->
        Format.printf "INFEASIBLE@.";
        exit 1)
  in
  let doc = "Decide deadline feasibility (Lemma 1) and print a witness schedule." in
  Cmd.v (Cmd.info "feasible" ~doc)
    Term.(const run $ Flags.setup $ Flags.instance $ deadlines)

(* --- milestones ---------------------------------------------------- *)

let milestones_cmd =
  let run file =
    let inst = load_instance file in
    let ms = Sched_core.Milestones.compute inst in
    Format.printf "%d milestones (bound n^2 - n = %d):@." (List.length ms)
      (Sched_core.Milestones.count_bound inst);
    List.iter (fun f -> Format.printf "  %s@." (R.to_string f)) ms
  in
  let doc = "List the milestones (critical trial values) of the instance." in
  Cmd.v (Cmd.info "milestones" ~doc) Term.(const run $ Flags.instance)

(* --- simulate ------------------------------------------------------ *)

let simulate_cmd =
  let policy =
    Flags.mk [ "policy"; "p" ] "Online policy: mct, fcfs, srpt or online-opt."
      (Arg.enum [ ("mct", `Mct); ("fcfs", `Fcfs); ("srpt", `Srpt); ("online-opt", `Oo) ])
      `Mct
  in
  let stretch =
    Flags.switch [ "stretch" ] "Reweight the instance for max-stretch before simulating."
  in
  let run () file policy stretch =
    Obs.Span.with_span "dlsched.simulate" (fun () ->
      let inst = load_instance file in
      let inst = if stretch then I.stretch_weights inst else inst in
      let m : (module Online.Sim.POLICY) =
        match policy with
        | `Mct -> (module Online.Policies.Mct)
        | `Fcfs -> (module Online.Policies.Fcfs)
        | `Srpt -> (module Online.Policies.Srpt)
        | `Oo -> (module Online.Online_opt.Divisible)
      in
      let r = Online.Sim.run m inst in
      let offline = Sched_core.Max_flow.solve inst in
      print_schedule ~header:(Printf.sprintf "%s schedule:" r.Online.Sim.policy)
        r.Online.Sim.schedule;
      Format.printf "offline optimal max weighted flow: %s; achieved: %s@."
        (R.to_string offline.Sched_core.Max_flow.objective)
        (R.to_string (S.max_weighted_flow r.Online.Sim.schedule)))
  in
  let doc = "Run an online policy on the instance and compare to the offline optimum." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ Flags.setup $ Flags.instance $ policy $ stretch)

(* --- compare ------------------------------------------------------- *)

let compare_cmd =
  let stretch =
    Flags.switch [ "stretch" ] "Reweight the instance for max-stretch before comparing."
  in
  let run () file stretch =
    Obs.Span.with_span "dlsched.compare" (fun () ->
      let inst = load_instance file in
      let inst = if stretch then I.stretch_weights inst else inst in
      let report = Online.Compare.run inst in
      Format.printf "%a@." Online.Compare.pp report)
  in
  let doc = "Run every online policy on the instance and tabulate them              against the offline optimum." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ Flags.setup $ Flags.instance $ stretch)

(* --- generate ------------------------------------------------------ *)

let generate_cmd =
  let jobs = Flags.mk [ "jobs"; "n" ] "Number of jobs." Arg.int 6 in
  let run jobs machines seed output =
    let rng = Gripps.Prng.create seed in
    let releases = Array.init jobs (fun _ -> R.of_int (Gripps.Prng.int rng 20)) in
    let weights = Array.init jobs (fun _ -> R.of_int (1 + Gripps.Prng.int rng 4)) in
    let cost =
      Array.init machines (fun _ ->
          Array.init jobs (fun _ ->
              if Gripps.Prng.int rng 4 = 0 then None
              else Some (R.of_int (1 + Gripps.Prng.int rng 9))))
    in
    for j = 0 to jobs - 1 do
      if Array.for_all (fun row -> row.(j) = None) cost then
        cost.(0).(j) <- Some (R.of_int (1 + Gripps.Prng.int rng 9))
    done;
    let inst = I.make ~releases ~weights cost in
    let text = Sched_core.Instance_io.to_string inst in
    match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let doc = "Generate a random instance in the textual format." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ jobs $ Flags.machines 3 $ Flags.seed $ Flags.output)

(* --- gripps -------------------------------------------------------- *)

let gripps_cmd =
  let rate =
    Flags.rate ~doc:"Poisson arrival rate (requests per second)." (1.0 /. 60.0)
  in
  let run machines banks replication requests rate seed output =
    let rng = Gripps.Prng.create seed in
    let platform = Gripps.Workload.random_platform rng ~machines ~banks ~replication in
    let reqs =
      Gripps.Workload.poisson_requests rng ~rate ~count:requests ~max_motifs:60 ~banks
    in
    let inst = Gripps.Workload.to_instance platform reqs in
    let text = Sched_core.Instance_io.to_string inst in
    match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let doc = "Generate a GriPPS-style instance: heterogeneous servers, replicated              databanks, Poisson motif-comparison requests." in
  Cmd.v (Cmd.info "gripps" ~doc)
    Term.(const run $ Flags.machines 4 $ Flags.banks $ Flags.replication
          $ Flags.requests 8 $ rate $ Flags.seed $ Flags.output)

(* --- trace --------------------------------------------------------- *)

let trace_cmd =
  let profile =
    Flags.mk [ "profile" ]
      "Arrival profile: poisson (homogeneous) or diurnal (sin^2 day shape)."
      (Arg.enum [ ("poisson", `Poisson); ("diurnal", `Diurnal) ])
      `Diurnal
  in
  let rate =
    Flags.rate ~doc:"Arrival rate in requests per second (the peak rate for diurnal)."
      0.2
  in
  let day =
    Flags.mk [ "day" ] "Length of the diurnal \"day\" in seconds." Arg.float 3600.
  in
  let faults =
    Flags.switch [ "faults" ]
      "Overlay machine failure/recovery events (exponential up/down periods)."
  in
  let mtbf =
    Flags.mk [ "mtbf" ]
      "Mean time between failures per machine, in seconds (with --faults)."
      Arg.float 300.
  in
  let mttr =
    Flags.mk [ "mttr" ] "Mean time to recovery, in seconds (with --faults)."
      Arg.float 30.
  in
  let run profile machines banks replication requests rate day seed output faults mtbf
      mttr =
    let trace =
      match profile with
      | `Poisson ->
        Serve.Trace.poisson ~seed ~machines ~banks ~replication ~rate ~count:requests ()
      | `Diurnal ->
        Serve.Trace.diurnal ~seed ~machines ~banks ~replication ~day ~peak_rate:rate
          ~count:requests ()
    in
    let trace =
      if faults then or_die (Serve.Trace.with_faults ~seed:(seed + 1) ~mtbf ~mttr) trace
      else trace
    in
    let text = Serve.Trace.to_string trace in
    match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      Format.printf "wrote %s (%d requests, %d fault events)@." path
        (List.length trace.Serve.Trace.entries)
        (List.length trace.Serve.Trace.events)
    | None -> print_string text
  in
  let doc = "Generate a synthetic workload trace for `dlsched replay`." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ profile $ Flags.machines 4 $ Flags.banks $ Flags.replication
          $ Flags.requests 200 $ rate $ day $ Flags.seed $ Flags.output
          $ faults $ mtbf $ mttr)

(* --- replay / serve ------------------------------------------------- *)

let replay_cmd =
  let report =
    Flags.mk [ "report" ] ~docv:"FILE" "Also write the metrics report to $(docv)."
      Arg.(some string) None
  in
  let json = Flags.switch [ "json" ] "Report metrics as JSON." in
  let run () file policy batch lost_work report json =
    let trace = load_trace file in
    let wall0 = Unix.gettimeofday () in
    let engine =
      Obs.Span.with_span "dlsched.replay" (fun () ->
          Serve.Engine.replay ~batch_window:(Gripps.Workload.quantize batch)
            ~lost_work ~policy trace)
    in
    let wall = Unix.gettimeofday () -. wall0 in
    let m = Serve.Engine.metrics engine in
    let body = if json then Obs.Registry.to_json m else Obs.Registry.to_text m in
    (match report with
     | Some path ->
       Out_channel.with_open_text path (fun oc -> output_string oc (body ^ "\n"));
       Format.printf "wrote %s@." path
     | None -> print_string body; if json then print_newline ());
    if Serve.Engine.submitted engine = 0 then begin
      Format.eprintf "dlsched: %s: trace has no requests@." file;
      exit 2
    end;
    let incomplete = Serve.Engine.submitted engine - Serve.Engine.completed engine in
    if incomplete > 0 then
      (* A trace whose failures are never recovered can leave permanently
         starved requests; the partial schedule cannot pass the fraction
         check, so report instead of validating. *)
      Format.printf
        "note: %d request(s) incomplete (%d starved by machine failures); \
         skipping schedule validation@."
        incomplete (Serve.Engine.starved engine)
    else begin
      let sched = Serve.Engine.schedule engine in
      match S.validate_divisible sched with
      | Ok () ->
        Format.printf "schedule valid (%d slices)@." (List.length sched.S.slices)
      | Error msg ->
        Format.eprintf "dlsched: invalid schedule: %s@." msg;
        exit 1
    end;
    let n = Serve.Engine.completed engine in
    if wall > 0. then
      Format.printf "replayed %d requests in %.3fs wall (%.0f requests/s, %.0f decisions/s)@."
        n wall
        (float_of_int n /. wall)
        (float_of_int (Obs.Registry.count (Obs.Registry.counter m "decisions")) /. wall)
  in
  let doc = "Replay a workload trace through the serving engine under a virtual              clock and report per-request flow/stretch metrics." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ Flags.setup $ Flags.trace_file $ Flags.policy $ Flags.batch
          $ Flags.lost_work $ report $ json)

let serve_cmd =
  let socket =
    Flags.mk [ "socket" ] ~docv:"PATH"
      "Listen on a Unix-domain socket at $(docv) instead of stdin/stdout."
      Arg.(some string) None
  in
  let clock =
    Flags.mk [ "clock" ] "Clock: wall (real time) or virtual (advanced by `tick`)."
      (Arg.enum [ ("wall", `Wall); ("virtual", `Virtual) ])
      `Wall
  in
  let platform_from =
    Flags.mk [ "platform" ] ~docv:"TRACE"
      "Take the platform (machines, banks, replication) from this trace \
       file instead of generating a random one."
      Arg.(some file) None
  in
  let run () socket clock platform_from machines banks replication seed policy batch
      lost_work wal resume snapshot_every batch_window max_inflight max_per_client
      admit_priority cache =
    (* A disconnecting client must never kill the daemon with SIGPIPE —
       writes to a dead peer surface as exceptions the session loop eats. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let clock =
      match clock with `Wall -> Serve.Clock.wall () | `Virtual -> Serve.Clock.virtual_ ()
    in
    let durability, engine =
      match resume with
      | Some dir ->
        (match wal with
         | Some d when d <> dir ->
           Format.eprintf
             "dlsched: --wal %s conflicts with --resume %s (a resumed server keeps \
              logging into the directory it recovered from)@."
             d dir;
           exit 2
         | _ -> ());
        let handle, engine =
          or_die
            (fun () ->
              Serve.Snapshot.resume ~snapshot_every ~decision_cache:cache ~dir ~clock
                ~policies:all_policies ())
            ()
        in
        Format.eprintf "dlsched serve: resumed from %s (seq %d, now=%s, %d/%d \
                        requests completed)@."
          dir
          (Serve.Engine.last_seq engine)
          (R.to_string (Serve.Engine.now engine))
          (Serve.Engine.completed engine)
          (Serve.Engine.submitted engine);
        (Some handle, engine)
      | None ->
        let platform =
          match platform_from with
          | Some file -> (load_trace file).Serve.Trace.platform
          | None ->
            Gripps.Workload.random_platform (Gripps.Prng.create seed) ~machines ~banks
              ~replication
        in
        let engine =
          Serve.Engine.create ~batch_window:(Gripps.Workload.quantize batch) ~lost_work
            ~clock ~policy platform
        in
        let durability =
          Option.map
            (fun dir ->
              let h = or_die (fun () -> Serve.Snapshot.arm ~snapshot_every ~dir engine) () in
              Format.eprintf "dlsched serve: write-ahead log armed at %s@." dir;
              h)
            wal
        in
        (durability, engine)
    in
    let admission_config =
      { Serve.Admission.window = Gripps.Workload.quantize batch_window;
        max_inflight; max_per_client; cache; priority = admit_priority }
    in
    let admission =
      or_die (fun () -> Serve.Admission.create ~config:admission_config engine) ()
    in
    if admission_config <> Serve.Admission.default_config then
      Format.eprintf
        "dlsched serve: admission valve: window=%ss max-inflight=%d \
         max-per-client=%d cache=%b priority=%s@."
        (R.to_string admission_config.Serve.Admission.window)
        max_inflight max_per_client cache
        (match admit_priority with `Fifo -> "fifo" | `Smallest -> "smallest");
    let platform = Serve.Engine.platform engine in
    let server = Serve.Server.create ~admission engine in
    Format.eprintf "dlsched serve: %d machines, %d banks; commands: \
                    submit/status/metrics/trace/spans/fail/recover/tick/drain/\
                    snapshot/help/quit@."
      (Array.length platform.Gripps.Workload.speeds)
      (Array.length platform.Gripps.Workload.bank_sizes);
    Fun.protect
      ~finally:(fun () -> Option.iter Serve.Snapshot.close durability)
      (fun () ->
        match socket with
        | Some path ->
          Format.eprintf "listening on %s@." path;
          Serve.Server.run_socket server ~path
        | None -> Serve.Server.run server stdin stdout)
  in
  let doc = "Run the scheduler as a daemon speaking a newline-delimited command              protocol on stdin/stdout or a Unix socket." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ Flags.setup $ socket $ clock $ platform_from $ Flags.machines 4
          $ Flags.banks $ Flags.replication $ Flags.seed $ Flags.policy $ Flags.batch
          $ Flags.lost_work $ Flags.wal $ Flags.resume $ Flags.snapshot_every
          $ Flags.batch_window $ Flags.max_inflight $ Flags.max_per_client
          $ Flags.admit_priority $ Flags.cache)

(* --- fuzz ----------------------------------------------------------- *)

let fuzz_cmd =
  let cases =
    Flags.mk [ "cases"; "n" ] "Number of generated cases per run." Arg.int 200
  in
  let out =
    Flags.mk [ "out" ] ~docv:"DIR"
      "Directory for shrunk failing cases (created only on failure)."
      Arg.string "_fuzz"
  in
  let replay =
    Flags.mk [ "replay" ] ~docv:"FILE"
      "Replay a saved artifact (an $(b,.inst) instance or $(b,.script) serve \
       script) against one oracle instead of generating cases; requires \
       $(b,--oracle)."
      Arg.(some file) None
  in
  let oracle =
    Flags.mk [ "oracle" ] ~docv:"NAME"
      "Oracle to replay against (see $(b,--list))." Arg.(some string) None
  in
  let aux =
    Flags.mk [ "aux" ] ~docv:"N"
      "Auxiliary oracle knob recorded in the artifact's $(b,.sh) file \
       (crash index, snapshot cadence, ...)."
      Arg.int 0
  in
  let list = Flags.switch [ "list" ] "List the oracle matrix and exit." in
  let run () seed cases out replay oracle aux list =
    if list then
      List.iter (fun o -> Format.printf "%s@." (Check.Oracles.name o)) Check.Oracles.all
    else
      match replay with
      | Some path -> (
        let o =
          match oracle with
          | None ->
            Format.eprintf "dlsched fuzz: --replay requires --oracle@.";
            exit 2
          | Some name -> (
            match Check.Oracles.find name with
            | Some o -> o
            | None ->
              Format.eprintf "dlsched fuzz: unknown oracle %S (try --list)@." name;
              exit 2)
        in
        match or_die (fun () -> Check.Fuzz.replay ~oracle:o ~aux ~path) () with
        | Ok () -> Format.printf "PASS: %s on %s@." (Check.Oracles.name o) path
        | Error detail ->
          Format.printf "FAIL: %s on %s@.  %s@." (Check.Oracles.name o) path detail;
          exit 1)
      | None ->
        let report = Check.Fuzz.run ~out_dir:out ~seed ~cases () in
        List.iter
          (fun (name, n) -> Format.printf "%-24s %d cases@." name n)
          (("totality", report.Check.Fuzz.cases) :: report.Check.Fuzz.oracles_run);
        if report.Check.Fuzz.failures = [] then
          Format.printf "fuzz: %d cases clean (seed %d)@." report.Check.Fuzz.cases seed
        else begin
          List.iter
            (fun f ->
              Format.printf "FAIL case %d oracle %s: %s@." f.Check.Fuzz.case
                f.Check.Fuzz.oracle f.Check.Fuzz.detail;
              Option.iter (Format.printf "  repro: %s@.") f.Check.Fuzz.repro)
            report.Check.Fuzz.failures;
          Format.printf "fuzz: %d/%d cases FAILED (seed %d)@."
            (List.length report.Check.Fuzz.failures)
            report.Check.Fuzz.cases seed;
          exit 1
        end
  in
  let doc = "Differential fuzzing: run the oracle matrix on random cases, shrink and \
             save failures as replayable artifacts." in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ Flags.setup $ Flags.seed $ cases $ out $ replay $ oracle $ aux
          $ list)

let () =
  let doc = "exact schedulers for divisible requests on heterogeneous databanks" in
  let info = Cmd.info "dlsched" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
          [ solve_cmd; max_flow_cmd; feasible_cmd; milestones_cmd; simulate_cmd;
            compare_cmd; generate_cmd; gripps_cmd; trace_cmd; replay_cmd; serve_cmd;
            fuzz_cmd ]))
