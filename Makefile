# Convenience targets; everything real lives in dune.

.PHONY: all build test bench bench-smoke check fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Fails if LP solve/pivot counts regress past bench/solve_budget.txt.
bench-smoke:
	dune exec bench/main.exe -- smoke

# What CI would run: full build + every test, the solve-count smoke
# check, plus formatting when the formatter is installed (ocamlformat is
# optional in the dev image).
check: build test bench-smoke fmt

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping @fmt"; \
	fi

clean:
	dune clean
