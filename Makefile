# Convenience targets; everything real lives in dune.

.PHONY: all build test bench check fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# What CI would run: full build + every test, plus formatting when the
# formatter is installed (ocamlformat is optional in the dev image).
check: build test fmt

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping @fmt"; \
	fi

clean:
	dune clean
