# Convenience targets; everything real lives in dune.

.PHONY: all build test bench bench-smoke bench-numeric bench-speedup trace-smoke bench-durability bench-admission crash-smoke fuzz-smoke fuzz check fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Fails if LP solve/pivot counts regress past bench/solve_budget.txt.
# --json drops a BENCH_smoke.json envelope (CI uploads it as an artifact).
bench-smoke:
	dune exec bench/main.exe -- --json smoke

# Fails if the tagged numeric representation stops keeping solver
# arithmetic on the machine-word fast path (hit-rate floor) or perturbs
# the exact pivot sequence (ceiling) — see bench/numeric_budget.txt.
# --json drops a BENCH_numeric.json envelope (CI uploads it).
bench-numeric:
	dune exec bench/main.exe -- --json numeric

# Fails if the parallel solver (jobs=2) diverges bitwise from the jobs=1
# oracle on a small instance grid.  The full `speedup` experiment (jobs
# 1/2/4/8 with timings and a BENCH_speedup.json envelope) runs under
# plain `make bench`.
bench-speedup:
	dune exec bench/main.exe -- speedup-smoke

# Fails if a --trace run emits anything that is not one JSON record per
# line, or if the max-flow span tree loses its nesting or pivot counts.
trace-smoke:
	dune build bin/dlsched.exe
	sh scripts/trace_smoke.sh _build/default/bin/dlsched.exe

# Fails unless a serve run resumed after kill -9 (WAL + snapshot + torn
# log tail) finishes with status/metrics bit-identical to an
# uninterrupted run.  The in-process equivalent (crash at a random event
# index, qcheck) runs under `dune runtest`.
crash-smoke:
	dune build bin/dlsched.exe
	sh scripts/crash_smoke.sh _build/default/bin/dlsched.exe

# WAL overhead + in-process crash/resume identity; drops a
# BENCH_durability.json envelope (CI uploads it).
bench-durability:
	dune exec bench/main.exe -- --json durability

# Admission-control gates: the zero-window valve must be bit-identical
# to no valve, batching must complete the same request set with
# decides/submit < 0.5 on the bursty trace.  Drops BENCH_admission.json
# (CI uploads it).
bench-admission:
	dune exec bench/main.exe -- --json admission

# Differential fuzzing (lib/check): the full oracle matrix on a fixed
# seed.  Fails if any oracle catches a divergence; the shrunk repro and
# its `dlsched fuzz --replay` invocation land in _fuzz/.
fuzz-smoke:
	dune build bin/dlsched.exe
	dune exec bin/dlsched.exe -- fuzz --seed 1 --cases 500

# Longer fuzz at an arbitrary seed: `make fuzz SEED=42 CASES=5000`.
SEED ?= 1
CASES ?= 2000
fuzz:
	dune build bin/dlsched.exe
	dune exec bin/dlsched.exe -- fuzz --seed $(SEED) --cases $(CASES)

# What CI would run: full build + every test, the solve-count, parallel
# bit-equality, admission-control, trace, crash-recovery and fuzzing
# smoke checks, plus formatting when the formatter is installed
# (ocamlformat is optional in the dev image).
check: build test bench-smoke bench-numeric bench-speedup bench-admission trace-smoke crash-smoke fuzz-smoke fmt

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping @fmt"; \
	fi

clean:
	dune clean
