(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig1a online   -- run selected experiments

   Experiments (see DESIGN.md section 4 for the experiment index):
     fig1a      -- Figure 1a: sequence-databank divisibility
     fig1b      -- Figure 1b: motif-set divisibility
     makespan   -- Theorem 1: optimal makespan vs bounds, scaling
     maxflow    -- Theorem 2: optimal max weighted flow, milestone counts
     preemptive -- Section 4.4: preemptive vs divisible optima
     online     -- Conclusion: online heuristics vs offline optimum
     lp         -- ablation: exact-rational vs float simplex
     search     -- ablation: accelerated vs pure-exact milestone search
     speedup    -- parallel search speedup + bit-equality across --jobs
     serve      -- serving engine replay throughput vs trace size
     micro      -- Bechamel micro-benchmarks of the core operations

   Absolute numbers are machine- and substrate-dependent; EXPERIMENTS.md
   records how the *shapes* compare with the paper. *)

module R = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module Dv = Gripps.Divisibility
module W = Gripps.Workload

let ri = R.of_int

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Random unrelated-machines instances for the theory experiments. *)
let random_instance rng ~jobs ~machines =
  let releases = Array.init jobs (fun _ -> ri (Gripps.Prng.int rng 20)) in
  let weights = Array.init jobs (fun _ -> ri (1 + Gripps.Prng.int rng 4)) in
  let cost =
    Array.init machines (fun _ ->
        Array.init jobs (fun _ ->
            if Gripps.Prng.int rng 4 = 0 then None
            else Some (ri (1 + Gripps.Prng.int rng 9))))
  in
  for j = 0 to jobs - 1 do
    if Array.for_all (fun row -> row.(j) = None) cost then
      cost.(0).(j) <- Some (ri (1 + Gripps.Prng.int rng 9))
  done;
  I.make ~releases ~weights cost

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let averaged points =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (p : Dv.point) ->
      let sum, count = try Hashtbl.find tbl p.Dv.size with Not_found -> (0.0, 0) in
      Hashtbl.replace tbl p.Dv.size (sum +. p.Dv.time, count + 1))
    points;
  Hashtbl.fold (fun size (sum, count) l -> (size, sum /. float_of_int count) :: l) tbl []
  |> List.sort compare

let figure ~name ~xlabel ~paper_intercept points =
  section name;
  Printf.printf "%14s %14s\n" xlabel "time (s)";
  List.iter (fun (size, t) -> Printf.printf "%14d %14.2f\n" size t) (averaged points);
  let r = Dv.linear_regression points in
  Printf.printf "regression: time = %.4g*size + %.2f, r^2 = %.4f\n" r.Dv.slope r.Dv.intercept
    r.Dv.r2;
  Printf.printf "paper: fixed overhead ~%.1f s; measured here: %.2f s\n" paper_intercept
    r.Dv.intercept

let run_fig1a () =
  figure ~name:"Figure 1a: sequence databank divisibility" ~xlabel:"block (seqs)"
    ~paper_intercept:1.1
    (Dv.sequence_experiment ())

let run_fig1b () =
  figure ~name:"Figure 1b: motif set divisibility" ~xlabel:"block (motifs)"
    ~paper_intercept:10.5
    (Dv.motif_experiment ())

(* ------------------------------------------------------------------ *)
(* Theorem 1: makespan                                                 *)
(* ------------------------------------------------------------------ *)

let run_makespan () =
  section "Theorem 1: makespan minimization (LP system 1)";
  Printf.printf "%4s %4s %12s %12s %8s %10s\n" "n" "m" "makespan" "lower bnd" "ratio"
    "time (ms)";
  let rng = Gripps.Prng.create 101 in
  List.iter
    (fun (n, m) ->
      let inst = random_instance rng ~jobs:n ~machines:m in
      let r, elapsed = time_it (fun () -> Sched_core.Makespan.solve inst) in
      (match S.validate_divisible r.Sched_core.Makespan.schedule with
       | Ok () -> ()
       | Error e -> failwith ("invalid makespan schedule: " ^ e));
      let lb = Sched_core.Makespan.lower_bound inst in
      Printf.printf "%4d %4d %12s %12s %8.3f %10.1f\n" n m
        (R.to_string r.Sched_core.Makespan.makespan)
        (R.to_string lb)
        (R.to_float r.Sched_core.Makespan.makespan /. R.to_float lb)
        (elapsed *. 1000.0))
    [ (2, 2); (4, 2); (6, 3); (8, 3); (12, 4); (16, 4); (24, 6); (32, 8) ]

(* ------------------------------------------------------------------ *)
(* Theorem 2: max weighted flow                                        *)
(* ------------------------------------------------------------------ *)

let run_maxflow () =
  section "Theorem 2: max weighted flow (milestones + parametric LP)";
  Printf.printf "%4s %4s %6s %6s %12s %12s %8s %10s\n" "n" "m" "miles" "bound" "F*"
    "serial UB" "UB/F*" "time (ms)";
  let rng = Gripps.Prng.create 102 in
  List.iter
    (fun (n, m) ->
      let inst = random_instance rng ~jobs:n ~machines:m in
      let r, elapsed = time_it (fun () -> Sched_core.Max_flow.solve inst) in
      (match S.validate_divisible r.Sched_core.Max_flow.schedule with
       | Ok () -> ()
       | Error e -> failwith ("invalid max-flow schedule: " ^ e));
      let ub = Sched_core.Max_flow.feasible_upper_bound inst in
      Printf.printf "%4d %4d %6d %6d %12s %12s %8.3f %10.1f\n" n m
        (List.length r.Sched_core.Max_flow.milestones)
        (Sched_core.Milestones.count_bound inst)
        (R.to_string r.Sched_core.Max_flow.objective)
        (R.to_string ub)
        (R.to_float ub /. R.to_float r.Sched_core.Max_flow.objective)
        (elapsed *. 1000.0))
    [ (2, 2); (4, 2); (6, 3); (8, 3); (10, 4); (12, 4); (16, 5) ]

(* ------------------------------------------------------------------ *)
(* Section 4.4: preemptive vs divisible                                *)
(* ------------------------------------------------------------------ *)

let run_preemptive () =
  section "Section 4.4: preemptive (no divisibility) vs divisible optima";
  Printf.printf "%4s %4s %12s %12s %8s %6s %10s\n" "n" "m" "F* div" "F* pre" "gap %"
    "slots" "time (ms)";
  let rng = Gripps.Prng.create 103 in
  List.iter
    (fun (n, m) ->
      let inst = random_instance rng ~jobs:n ~machines:m in
      let d = Sched_core.Max_flow.solve inst in
      let p, elapsed = time_it (fun () -> Sched_core.Preemptive.solve inst) in
      (match S.validate_preemptive p.Sched_core.Preemptive.schedule with
       | Ok () -> ()
       | Error e -> failwith ("invalid preemptive schedule: " ^ e));
      let fd = R.to_float d.Sched_core.Max_flow.objective in
      let fp = R.to_float p.Sched_core.Preemptive.objective in
      Printf.printf "%4d %4d %12s %12s %8.2f %6d %10.1f\n" n m
        (R.to_string d.Sched_core.Max_flow.objective)
        (R.to_string p.Sched_core.Preemptive.objective)
        (100.0 *. ((fp /. fd) -. 1.0))
        p.Sched_core.Preemptive.preemption_slots
        (elapsed *. 1000.0))
    [ (2, 2); (4, 2); (6, 3); (8, 3); (10, 4); (12, 4) ]

(* ------------------------------------------------------------------ *)
(* Conclusion: online policies vs offline optimum                      *)
(* ------------------------------------------------------------------ *)

let run_online () =
  section "Conclusion: online scheduling vs offline optimum (max stretch)";
  Printf.printf
    "GriPPS platform: 4 machines, 3 databanks, replication 2; Poisson requests.\n";
  Printf.printf "%8s %-12s %12s %12s %12s\n" "load" "policy" "mean ratio" "worst ratio"
    "mean stretch";
  let seeds = [| 1; 2; 3; 4; 5 |] in
  List.iter
    (fun (load_name, rate, count) ->
      let per_policy = Hashtbl.create 8 in
      (* Seeds are independent end-to-end runs, so the grid goes through
         the domain pool; reports come back in seed order, so the
         accumulation below matches the sequential run exactly. *)
      let reports =
        Par.Pool.map
          (fun seed ->
            let rng = Gripps.Prng.create seed in
            let platform = W.random_platform rng ~machines:4 ~banks:3 ~replication:2 in
            let requests = W.poisson_requests rng ~rate ~count ~max_motifs:60 ~banks:3 in
            let inst = I.stretch_weights (W.to_instance platform requests) in
            Online.Compare.run inst)
          seeds
      in
      Array.iter
        (fun report ->
          List.iter
            (fun (e : Online.Compare.entry) ->
              let ratios, stretches =
                try Hashtbl.find per_policy e.policy with Not_found -> ([], [])
              in
              Hashtbl.replace per_policy e.policy
                (e.vs_offline :: ratios, R.to_float e.max_stretch :: stretches))
            report.Online.Compare.entries)
        reports;
      List.iter
        (fun (module P : Online.Sim.POLICY) ->
          let ratios, stretches = Hashtbl.find per_policy P.name in
          let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
          let worst = List.fold_left max 0.0 ratios in
          Printf.printf "%8s %-12s %12.3f %12.3f %12.3f\n" load_name P.name (mean ratios)
            worst (mean stretches))
        Online.Compare.default_policies)
    [ ("light", 1.0 /. 120.0, 8); ("medium", 1.0 /. 60.0, 10); ("heavy", 1.0 /. 30.0, 12) ]

(* ------------------------------------------------------------------ *)
(* Adversarial families: unbounded heuristic ratios                    *)
(* ------------------------------------------------------------------ *)

let run_adversary () =
  section "Adversarial families: heuristic ratios grow without bound";
  Printf.printf "MCT trap (max stretch vs offline optimum):\n";
  Printf.printf "%8s %10s %12s %12s\n" "scale" "mct" "online-opt" "srpt";
  List.iter
    (fun k ->
      let inst = I.stretch_weights (Online.Adversarial.mct_trap ~scale:k) in
      let report =
        Online.Compare.run
          ~policies:
            [ (module Online.Policies.Mct); (module Online.Online_opt.Divisible);
              (module Online.Policies.Srpt) ]
          inst
      in
      match report.Online.Compare.entries with
      | [ mct; oo; srpt ] ->
        Printf.printf "%8d %10.2f %12.2f %12.2f\n" k mct.Online.Compare.vs_offline
          oo.Online.Compare.vs_offline srpt.Online.Compare.vs_offline
      | _ -> assert false)
    [ 2; 4; 8; 12 ];
  Printf.printf "SRPT starvation (max flow vs offline optimum):\n";
  Printf.printf "%8s %10s %12s\n" "jobs" "srpt" "online-opt";
  List.iter
    (fun n ->
      let inst = Online.Adversarial.srpt_starvation ~jobs:n in
      let report =
        Online.Compare.run
          ~policies:
            [ (module Online.Policies.Srpt); (module Online.Online_opt.Divisible) ]
          inst
      in
      match report.Online.Compare.entries with
      | [ srpt; oo ] ->
        Printf.printf "%8d %10.2f %12.2f\n" n srpt.Online.Compare.vs_offline
          oo.Online.Compare.vs_offline
      | _ -> assert false)
    [ 2; 4; 8; 12 ]

(* ------------------------------------------------------------------ *)
(* Ablation: re-optimization frequency of the online adaptation        *)
(* ------------------------------------------------------------------ *)

let run_reopt () =
  section "Ablation: eager vs lazy re-optimization of the online adaptation";
  Printf.printf
    "Finding: the two coincide — the plan's first epochal boundary is the\n\
     earliest deadline, where a job completes anyway, so the lazy variant\n\
     refreshes at the same instants the eager one does.\n";
  Printf.printf "%6s %-16s %12s %12s %8s\n" "seed" "policy" "max stretch" "vs offline"
    "events";
  List.iter
    (fun seed ->
      let rng = Gripps.Prng.create seed in
      let platform = W.random_platform rng ~machines:4 ~banks:3 ~replication:2 in
      let requests = W.poisson_requests rng ~rate:(1.0 /. 15.0) ~count:14 ~max_motifs:60 ~banks:3 in
      let inst = I.stretch_weights (W.to_instance platform requests) in
      let report =
        Online.Compare.run
          ~policies:
            [ (module Online.Online_opt.Divisible);
              (module Online.Online_opt.Lazy_divisible) ]
          inst
      in
      List.iter
        (fun (e : Online.Compare.entry) ->
          Printf.printf "%6d %-16s %12.3f %12.3f %8d\n" seed e.Online.Compare.policy
            (R.to_float e.Online.Compare.max_stretch)
            e.Online.Compare.vs_offline e.Online.Compare.decisions)
        report.Online.Compare.entries)
    [ 11; 12; 13 ]

(* ------------------------------------------------------------------ *)
(* Ablation: exact vs float simplex                                    *)
(* ------------------------------------------------------------------ *)

let run_lp () =
  section "Ablation: exact-rational vs float simplex";
  Printf.printf "%6s %6s %12s %12s %12s %10s %10s\n" "vars" "cons" "rational(ms)"
    "frac-free" "float (ms)" "rat/ff" "agree";
  let rng = Gripps.Prng.create 104 in
  List.iter
    (fun (nv, nc) ->
      (* Feasible-by-construction minimization, as in the LP tests. *)
      let x0 = Array.init nv (fun _ -> Gripps.Prng.int rng 10) in
      let st = Lp.Problem.Builder.create () in
      for i = 0 to nv - 1 do
        ignore (Lp.Problem.Builder.fresh_var st ~name:(Printf.sprintf "x%d" i))
      done;
      for _ = 1 to nc do
        let row = Array.init nv (fun _ -> Gripps.Prng.int rng 5) in
        let rhs = Array.fold_left ( + ) 0 (Array.mapi (fun v k -> k * x0.(v)) row) in
        Lp.Problem.Builder.add_constr st
          (Array.to_list (Array.mapi (fun v k -> (v, ri k)) row))
          Lp.Problem.Ge (ri rhs)
      done;
      Lp.Problem.Builder.set_objective st Lp.Problem.Minimize
        (List.init nv (fun v -> (v, ri (1 + Gripps.Prng.int rng 5))));
      let p = Lp.Problem.Builder.finish st in
      let pf = Lp.Problem.map R.to_float p in
      let exact, t_exact = time_it (fun () -> Lp.Simplex.Exact.solve p) in
      let ff, t_ff = time_it (fun () -> Lp.Simplex_ff.solve p) in
      let approx, t_float = time_it (fun () -> Lp.Simplex.Approx.solve pf) in
      let agree =
        match (exact, ff, approx) with
        | Lp.Simplex.Exact.Optimal a, Lp.Simplex.Exact.Optimal b, Lp.Simplex.Approx.Optimal c ->
          R.equal a.objective b.objective
          && Float.abs (R.to_float a.objective -. c.objective) < 1e-6
        | _ -> false
      in
      Printf.printf "%6d %6d %12.2f %12.2f %12.2f %10.1f %10b\n" nv nc
        (t_exact *. 1000.0) (t_ff *. 1000.0) (t_float *. 1000.0)
        (t_exact /. Float.max 1e-9 t_ff)
        agree)
    [ (5, 5); (10, 10); (15, 15); (20, 20); (25, 25); (30, 30) ]

(* ------------------------------------------------------------------ *)
(* Ablation: accelerated vs pure-exact milestone search                *)
(* ------------------------------------------------------------------ *)

let run_search () =
  section "Ablation: accelerated vs pure-exact milestone search, and naive bisection";
  Printf.printf "%4s %4s %12s %12s %12s %12s %10s\n" "n" "m" "accel (ms)" "exact (ms)"
    "bisect (ms)" "bisect gap" "same F*";
  let rng = Gripps.Prng.create 105 in
  List.iter
    (fun (n, m) ->
      let inst = random_instance rng ~jobs:n ~machines:m in
      let accel, t_accel = time_it (fun () -> Sched_core.Max_flow.solve inst) in
      let pure, t_exact =
        time_it (fun () -> Sched_core.Max_flow.solve ~accelerate:false inst)
      in
      (* The naive bounded-precision bisection of Section 4.3.1. *)
      let bisect, t_bisect = time_it (fun () -> Sched_core.Max_flow.solve_bisection inst) in
      let gap =
        (R.to_float bisect.Sched_core.Max_flow.objective
        /. R.to_float accel.Sched_core.Max_flow.objective)
        -. 1.0
      in
      let same =
        R.equal accel.Sched_core.Max_flow.objective pure.Sched_core.Max_flow.objective
      in
      Printf.printf "%4d %4d %12.1f %12.1f %12.1f %12.2e %10b\n" n m (t_accel *. 1000.0)
        (t_exact *. 1000.0) (t_bisect *. 1000.0) gap same)
    [ (4, 2); (6, 3); (8, 3); (10, 4); (12, 4); (16, 5) ]

(* ------------------------------------------------------------------ *)
(* Warm-start ablation: basis reuse across the milestone search         *)
(* ------------------------------------------------------------------ *)

(* One milestone search, with per-solve records captured from the
   ["lp.solve"] trace spans via a scoped callback sink.  The last exact
   solve is the final parametric LP — always cold by design (see
   Max_flow.solve), so it is reported separately from the search-phase
   feasibility probes that warm-starting targets. *)
type solve_rec = { went_warm : bool; pivots : int }

let measure_search ~warm inst =
  let saved = !Lp.Solve.warm in
  Lp.Solve.warm := warm;
  Fun.protect
    ~finally:(fun () -> Lp.Solve.warm := saved)
    (fun () ->
      let attr_int sp key =
        match Obs.Sink.attr sp key with Some (Obs.Sink.Int i) -> i | _ -> 0
      in
      let attr_bool sp key =
        match Obs.Sink.attr sp key with Some (Obs.Sink.Bool b) -> b | _ -> false
      in
      let recs = ref [] in
      let sink =
        Obs.Sink.callback (function
          | Obs.Sink.Span sp
            when sp.Obs.Sink.name = "lp.solve" && attr_bool sp "exact" ->
            recs :=
              {
                went_warm = attr_bool sp "warm";
                pivots =
                  attr_int sp "pivots_phase1" + attr_int sp "pivots_phase2"
                  + attr_int sp "pivots_dual";
              }
              :: !recs
          | _ -> ())
      in
      let r = Obs.Sink.with_sink sink (fun () -> Sched_core.Max_flow.solve inst) in
      (* Spans close in solve-completion order, so the final parametric LP
         is the head of the (reversed) list. *)
      match !recs with
      | final :: probes_rev -> (r, List.rev probes_rev, final)
      | [] -> assert false)

let run_warmstart () =
  section "Warm-start ablation: exact probe pivots, cold vs basis reuse";
  if !Lp.Solve.variant <> Lp.Solve.Sparse then
    failwith "warmstart: requires --solver=sparse (hints are sparse-only)";
  Printf.printf
    "Milestone search feasibility probes (final parametric solve excluded;\n\
     it is cold under both configurations and identical by construction).\n";
  Printf.printf "%4s %4s %7s | %12s | %12s %6s | %7s\n" "n" "m" "probes"
    "cold pivots" "warm pivots" "hits" "ratio";
  let rng = Gripps.Prng.create 108 in
  let rows =
    List.map
      (fun (n, m) ->
        let inst = random_instance rng ~jobs:n ~machines:m in
        let rc, probes_c, final_c = measure_search ~warm:false inst in
        let rw, probes_w, final_w = measure_search ~warm:true inst in
        if
          not
            (R.equal rc.Sched_core.Max_flow.objective
               rw.Sched_core.Max_flow.objective)
        then failwith "warmstart: objectives diverge between configurations";
        if final_c.pivots <> final_w.pivots then
          failwith "warmstart: final parametric solve was not cold-identical";
        let sum l = List.fold_left (fun a i -> a + i.pivots) 0 l in
        let cold = sum probes_c and warmp = sum probes_w in
        let hits =
          List.length (List.filter (fun i -> i.went_warm) probes_w)
        in
        let ratio = float_of_int cold /. Float.max 1.0 (float_of_int warmp) in
        Printf.printf "%4d %4d %7d | %12d | %12d %6d | %6.1fx\n" n m
          (List.length probes_w) cold warmp hits ratio;
        (n, m, List.length probes_w, cold, warmp, hits))
      [ (4, 2); (6, 3); (8, 3); (10, 4); (12, 4); (16, 5) ]
  in
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  let cold = total (fun (_, _, _, c, _, _) -> c) in
  let warmp = total (fun (_, _, _, _, w, _) -> w) in
  let probes = total (fun (_, _, p, _, _, _) -> p) in
  let hits = total (fun (_, _, _, _, _, h) -> h) in
  let ratio = float_of_int cold /. Float.max 1.0 (float_of_int warmp) in
  Printf.printf
    "total: %d probes, %d warm hits; search pivots %d cold -> %d warm (%.1fx)\n"
    probes hits cold warmp ratio;
  Json_out.write ~experiment:"warmstart"
    (Json_out.Obj
       [
         ( "instances",
           Json_out.List
             (List.map
                (fun (n, m, p, c, w, h) ->
                  Json_out.Obj
                    [
                      ("jobs", Json_out.Int n);
                      ("machines", Json_out.Int m);
                      ("probes", Json_out.Int p);
                      ("cold_pivots", Json_out.Int c);
                      ("warm_pivots", Json_out.Int w);
                      ("warm_hits", Json_out.Int h);
                    ])
                rows) );
         ("total_probes", Json_out.Int probes);
         ("total_warm_hits", Json_out.Int hits);
         ("total_cold_pivots", Json_out.Int cold);
         ("total_warm_pivots", Json_out.Int warmp);
         ("pivot_reduction", Json_out.Float ratio);
       ])

(* ------------------------------------------------------------------ *)
(* Solve-budget smoke check                                            *)
(* ------------------------------------------------------------------ *)

(* Deterministic fixed workload; counts exact/approx solves and pivots
   and compares them to the checked-in ceilings in bench/solve_budget.txt.
   A regression in warm-starting, probe caching or pivot rules that blows
   a ceiling fails the run (and `make check` through `bench-smoke`). *)
let budget_file = "bench/solve_budget.txt"

let read_budget path =
  if not (Sys.file_exists path) then
    failwith
      (Printf.sprintf
         "smoke: missing %s; run `dune exec bench/main.exe -- smoke` from the \
          repo root (or regenerate the budget from its output)"
         path);
  let ic = open_in path in
  let tbl = Hashtbl.create 8 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         Scanf.sscanf line "%s %d" (fun k v -> Hashtbl.replace tbl k v)
     done
   with End_of_file -> close_in ic);
  tbl

let run_smoke () =
  section "Solve-budget smoke check (vs bench/solve_budget.txt)";
  let rng = Gripps.Prng.create 109 in
  let insts =
    List.map
      (fun (n, m) -> random_instance rng ~jobs:n ~machines:m)
      [ (4, 2); (6, 3); (8, 3); (10, 4) ]
  in
  let b_ex = Lp.Instrument.exact_totals () in
  let b_ap = Lp.Instrument.approx_totals () in
  (* The budget ceilings are a contract on the *sequential* search: the
     parallel k-section deliberately probes extra speculative candidates,
     so the smoke always measures at width 1 whatever DLSCHED_JOBS says. *)
  Par.Pool.with_jobs 1 (fun () ->
      List.iter
        (fun inst ->
          ignore (Sched_core.Max_flow.solve inst);
          ignore (Sched_core.Makespan.solve inst))
        insts);
  let d_ex = Lp.Instrument.diff ~before:b_ex (Lp.Instrument.exact_totals ()) in
  let d_ap = Lp.Instrument.diff ~before:b_ap (Lp.Instrument.approx_totals ()) in
  let measured =
    [
      ("exact_solves", d_ex.Lp.Instrument.solves);
      ("exact_pivots", Lp.Instrument.total_pivots d_ex);
      ("approx_solves", d_ap.Lp.Instrument.solves);
      ("approx_pivots", Lp.Instrument.total_pivots d_ap);
    ]
  in
  (* Warm solves are a floor, not a ceiling: losing them is the regression. *)
  let floors = [ ("exact_warm_solves", d_ex.Lp.Instrument.warm_solves) ] in
  let budget = read_budget budget_file in
  let ok = ref true in
  Printf.printf "%-24s %10s %10s %8s\n" "metric" "measured" "budget" "ok";
  let check ~ceiling (key, v) =
    match Hashtbl.find_opt budget key with
    | None ->
      ok := false;
      Printf.printf "%-24s %10d %10s %8s\n" key v "missing" "FAIL"
    | Some b ->
      let pass = if ceiling then v <= b else v >= b in
      if not pass then ok := false;
      Printf.printf "%-24s %10d %10s %8s\n" key v
        ((if ceiling then "<= " else ">= ") ^ string_of_int b)
        (if pass then "ok" else "FAIL")
  in
  List.iter (check ~ceiling:true) measured;
  List.iter (check ~ceiling:false) floors;
  Json_out.write ~experiment:"smoke"
    (Json_out.Obj
       (("passed", Json_out.Bool !ok)
       :: List.map (fun (k, v) -> (k, Json_out.Int v)) (measured @ floors)));
  if not !ok then failwith "smoke: solve budget exceeded (see table above)";
  Printf.printf "solve budget respected.\n"

(* ------------------------------------------------------------------ *)
(* Numeric tower: fast-path hit rate and micro-latency                 *)
(* ------------------------------------------------------------------ *)

(* Exercises the tagged Rat representation (DESIGN §10) two ways: raw
   ns/op on machine-word vs limb-representation operands, and the
   fast-path hit rate over the same deterministic workload the solve
   budget uses.  The checked-in floors/ceilings in
   bench/numeric_budget.txt turn the hit rate into a regression gate: a
   change that silently sends solver arithmetic to the limb path fails
   `make check` here even if it stays value-correct. *)
let numeric_budget_file = "bench/numeric_budget.txt"

let run_numeric () =
  section "Numeric tower: small-word fast path (vs bench/numeric_budget.txt)";
  (* Micro: median-free single-batch timing is noisy but only printed for
     orientation; the gate below uses counted operations, not time. *)
  let iters = 200_000 in
  let time_ns_per_op f =
    let t0 = Lp.Instrument.now () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Lp.Instrument.now () -. t0) *. 1e9 /. float_of_int iters
  in
  let sa = R.of_ints 355 113 and sb = R.of_ints 22 7 in
  let big_digits = String.make 45 '7' and big_digits' = String.make 41 '3' in
  let ba = R.make (Numeric.Bigint.of_string big_digits) (Numeric.Bigint.of_string big_digits') in
  let bb = R.make (Numeric.Bigint.of_string big_digits') (Numeric.Bigint.of_string "1234567891234567891") in
  let micro =
    [
      ("rat-add-small", time_ns_per_op (fun () -> R.add sa sb));
      ("rat-mul-small", time_ns_per_op (fun () -> R.mul sa sb));
      ("rat-compare-small", time_ns_per_op (fun () -> R.compare sa sb));
      ("rat-add-big", time_ns_per_op (fun () -> R.add ba bb));
      ("rat-mul-big", time_ns_per_op (fun () -> R.mul ba bb));
    ]
  in
  Printf.printf "%-24s %12s\n" "micro" "ns/op";
  List.iter (fun (k, ns) -> Printf.printf "%-24s %12.1f\n" k ns) micro;
  (* Hit rate over the budget workload (same seed and instances as the
     smoke check, sequential width). *)
  let rng = Gripps.Prng.create 109 in
  let insts =
    List.map
      (fun (n, m) -> random_instance rng ~jobs:n ~machines:m)
      [ (4, 2); (6, 3); (8, 3); (10, 4) ]
  in
  let b_small = Numeric.Counters.small_ops () in
  let b_big = Numeric.Counters.big_ops () in
  let b_promoted = Numeric.Counters.promotions () in
  let b_demoted = Numeric.Counters.demotions () in
  let b_ex = Lp.Instrument.exact_totals () in
  let _, seconds =
    Par.Pool.with_jobs 1 (fun () ->
        time_it (fun () ->
            List.iter
              (fun inst ->
                ignore (Sched_core.Max_flow.solve inst);
                ignore (Sched_core.Makespan.solve inst))
              insts))
  in
  let d_ex = Lp.Instrument.diff ~before:b_ex (Lp.Instrument.exact_totals ()) in
  let small = Numeric.Counters.small_ops () - b_small in
  let big = Numeric.Counters.big_ops () - b_big in
  let promoted = Numeric.Counters.promotions () - b_promoted in
  let demoted = Numeric.Counters.demotions () - b_demoted in
  let hit_rate =
    if small + big = 0 then 1.0
    else float_of_int small /. float_of_int (small + big)
  in
  Printf.printf
    "workload: %d rat ops (%d small, %d big), %d promotions, %d demotions\n"
    (small + big) small big promoted demoted;
  Printf.printf "fast-path hit rate: %.2f%%  (exact solver: %.4fs, %d pivots)\n"
    (hit_rate *. 100.) d_ex.Lp.Instrument.seconds
    (Lp.Instrument.total_pivots d_ex);
  let budget = read_budget numeric_budget_file in
  let hit_pct = int_of_float (Float.round (hit_rate *. 10_000.)) in
  let measured =
    (* basis-point floor so the text file stays integer-only *)
    [ ("min_hit_rate_bp", hit_pct, false); ("exact_pivots", Lp.Instrument.total_pivots d_ex, true) ]
  in
  let ok = ref true in
  Printf.printf "%-24s %10s %10s %8s\n" "metric" "measured" "budget" "ok";
  List.iter
    (fun (key, v, ceiling) ->
      match Hashtbl.find_opt budget key with
      | None ->
        ok := false;
        Printf.printf "%-24s %10d %10s %8s\n" key v "missing" "FAIL"
      | Some b ->
        let pass = if ceiling then v <= b else v >= b in
        if not pass then ok := false;
        Printf.printf "%-24s %10d %10s %8s\n" key v
          ((if ceiling then "<= " else ">= ") ^ string_of_int b)
          (if pass then "ok" else "FAIL"))
    measured;
  Json_out.write ~experiment:"numeric"
    (Json_out.Obj
       [
         ("passed", Json_out.Bool !ok);
         ("hit_rate", Json_out.Float hit_rate);
         ("small_ops", Json_out.Int small);
         ("big_ops", Json_out.Int big);
         ("promotions", Json_out.Int promoted);
         ("demotions", Json_out.Int demoted);
         ("exact_solver_seconds", Json_out.Float d_ex.Lp.Instrument.seconds);
         ("exact_pivots", Json_out.Int (Lp.Instrument.total_pivots d_ex));
         ("workload_seconds", Json_out.Float seconds);
         ( "micro_ns",
           Json_out.Obj (List.map (fun (k, ns) -> (k, Json_out.Float ns)) micro) );
       ]);
  if not !ok then failwith "numeric: fast-path budget violated (see table above)";
  Printf.printf "numeric fast-path budget respected.\n"

(* ------------------------------------------------------------------ *)
(* Parallel search: speedup and bit-equality across pool widths        *)
(* ------------------------------------------------------------------ *)

(* Structural equality of two max-flow results, field by field on exact
   rationals — the check behind the determinism contract: any pool width
   must reproduce the jobs=1 solve bit for bit. *)
let same_result (a : Sched_core.Max_flow.result) (b : Sched_core.Max_flow.result) =
  let same_slices xs ys =
    List.length xs = List.length ys
    && List.for_all2
         (fun (x : S.slice) (y : S.slice) ->
           x.S.machine = y.S.machine && x.S.job = y.S.job
           && R.equal x.S.start y.S.start && R.equal x.S.stop y.S.stop)
         xs ys
  in
  let alo, ahi = a.Sched_core.Max_flow.search_range
  and blo, bhi = b.Sched_core.Max_flow.search_range in
  R.equal a.Sched_core.Max_flow.objective b.Sched_core.Max_flow.objective
  && List.length a.Sched_core.Max_flow.milestones
     = List.length b.Sched_core.Max_flow.milestones
  && List.for_all2 R.equal a.Sched_core.Max_flow.milestones
       b.Sched_core.Max_flow.milestones
  && R.equal alo blo && R.equal ahi bhi
  && same_slices
       (S.slices a.Sched_core.Max_flow.schedule)
       (S.slices b.Sched_core.Max_flow.schedule)

let run_speedup () =
  section "Parallel milestone search: speedup and bit-equality across --jobs";
  let rec_count = Domain.recommended_domain_count () in
  Printf.printf
    "Probe-heavy instances, each width re-solving the same batch.  Speedup\n\
     above 1 requires real cores: this host recommends %d domain(s).\n"
    rec_count;
  let rng = Gripps.Prng.create 110 in
  let insts =
    List.map
      (fun (n, m) -> random_instance rng ~jobs:n ~machines:m)
      [ (10, 4); (12, 4); (14, 5); (16, 5) ]
  in
  let solve_all () = List.map Sched_core.Max_flow.solve insts in
  (* jobs=1 is the oracle: plain sequential search, no pool at all. *)
  let base, t1 = Par.Pool.with_jobs 1 (fun () -> time_it solve_all) in
  Printf.printf "%6s %12s %10s %10s\n" "jobs" "time (ms)" "speedup" "identical";
  Printf.printf "%6d %12.1f %10.2f %10s\n" 1 (t1 *. 1000.) 1.0 "oracle";
  let rows =
    List.map
      (fun jobs ->
        let results, t = Par.Pool.with_jobs jobs (fun () -> time_it solve_all) in
        let identical = List.for_all2 same_result base results in
        Printf.printf "%6d %12.1f %10.2f %10b\n" jobs (t *. 1000.)
          (t1 /. Float.max 1e-9 t)
          identical;
        (jobs, t, identical))
      [ 2; 4; 8 ]
  in
  Par.Pool.shutdown ();
  let all_identical = List.for_all (fun (_, _, id) -> id) rows in
  Json_out.write ~experiment:"speedup"
    (Json_out.Obj
       [
         ("recommended_domain_count", Json_out.Int rec_count);
         ("jobs_1_seconds", Json_out.Float t1);
         ( "widths",
           Json_out.List
             (List.map
                (fun (jobs, t, id) ->
                  Json_out.Obj
                    [
                      ("jobs", Json_out.Int jobs);
                      ("seconds", Json_out.Float t);
                      ("speedup_vs_jobs1", Json_out.Float (t1 /. Float.max 1e-9 t));
                      ("identical_to_jobs1", Json_out.Bool id);
                    ])
                rows) );
         ("all_identical", Json_out.Bool all_identical);
       ]);
  if not all_identical then
    failwith "speedup: parallel result diverged from the jobs=1 oracle";
  Printf.printf "parallel solves bit-identical to jobs=1 at every width.\n"

(* Small jobs=1-vs-jobs=2 equality check, fast enough for `make check`. *)
let run_speedup_smoke () =
  section "Speedup smoke: jobs=1 vs jobs=2 bit-equality";
  let rng = Gripps.Prng.create 111 in
  let insts =
    List.map
      (fun (n, m) -> random_instance rng ~jobs:n ~machines:m)
      [ (8, 3); (10, 4) ]
  in
  let solve_all () = List.map Sched_core.Max_flow.solve insts in
  let seq = Par.Pool.with_jobs 1 solve_all in
  let par = Par.Pool.with_jobs 2 solve_all in
  Par.Pool.shutdown ();
  if not (List.for_all2 same_result seq par) then
    failwith "speedup-smoke: jobs=2 result diverged from the jobs=1 oracle";
  Printf.printf "jobs=2 bit-identical to jobs=1 on %d instances.\n"
    (List.length insts)

(* ------------------------------------------------------------------ *)
(* Section 2, third experiment: communication overheads are negligible *)
(* ------------------------------------------------------------------ *)

let run_comm () =
  section "Section 2: communication overhead vs computation (full request)";
  Printf.printf "%-14s %12s %12s %12s %12s %12s\n" "network" "req bytes" "req (ms)"
    "resp bytes" "resp (ms)" "overhead";
  List.iter
    (fun (name, net) ->
      let a = Gripps.Network.full_request_accounting ~network:net () in
      Printf.printf "%-14s %12d %12.2f %12d %12.2f %11.4f%%\n" name
        a.Gripps.Network.request_bytes
        (a.Gripps.Network.request_time *. 1000.0)
        a.Gripps.Network.response_bytes
        (a.Gripps.Network.response_time *. 1000.0)
        (a.Gripps.Network.overhead_fraction *. 100.0))
    [ ("fast-ethernet", Gripps.Network.fast_ethernet); ("gigabit", Gripps.Network.gigabit) ];
  Printf.printf
    "paper: \"communication overhead costs are negligible, compared to the\n\
     computational workload\" — hence data transfers are ignored by the model.\n"

(* ------------------------------------------------------------------ *)
(* Ablation: uniform-case feasibility via max flow vs LP               *)
(* ------------------------------------------------------------------ *)

let run_uniform () =
  section "Ablation: uniform-machines deadline feasibility, max flow vs LP";
  Printf.printf "%4s %4s %14s %14s %10s %8s\n" "n" "m" "flow (ms)" "LP (ms)" "speedup"
    "agree";
  let rng = Gripps.Prng.create 107 in
  List.iter
    (fun (n, m) ->
      let speeds = Array.init m (fun _ -> ri (1 + Gripps.Prng.int rng 3)) in
      let sizes = Array.init n (fun _ -> ri (1 + Gripps.Prng.int rng 6)) in
      let releases = Array.init n (fun _ -> ri (Gripps.Prng.int rng 10)) in
      let available =
        Array.init m (fun _ -> Array.init n (fun _ -> Gripps.Prng.int rng 3 > 0))
      in
      for j = 0 to n - 1 do
        if Array.for_all (fun row -> not row.(j)) available then available.(0).(j) <- true
      done;
      let u =
        Sched_core.Uniform.make ~speeds ~sizes ~releases ~weights:(Array.make n R.one)
          ~available
      in
      (* Deadlines around the feasibility boundary. *)
      let deadlines =
        Array.init n (fun j ->
            R.add releases.(j) (R.mul_int sizes.(j) (1 + Gripps.Prng.int rng m)))
      in
      let via_flow, t_flow =
        time_it (fun () -> Sched_core.Uniform.is_feasible u ~deadlines)
      in
      let via_lp, t_lp =
        time_it (fun () ->
            Sched_core.Deadline.is_feasible (Sched_core.Uniform.to_instance u) ~deadlines)
      in
      Printf.printf "%4d %4d %14.2f %14.2f %10.1f %8b\n" n m (t_flow *. 1000.0)
        (t_lp *. 1000.0)
        (t_lp /. Float.max 1e-9 t_flow)
        (via_flow = via_lp))
    [ (4, 2); (8, 3); (12, 4); (16, 5); (24, 6); (32, 8) ]

(* ------------------------------------------------------------------ *)
(* Serving engine: replay throughput vs trace size                     *)
(* ------------------------------------------------------------------ *)

let run_serve () =
  section "Serving engine: virtual-clock replay throughput vs trace size";
  Printf.printf
    "Diurnal GriPPS traces (4 machines, 3 banks); engine + incremental\n\
     validation end to end, batch window 0.\n";
  Printf.printf "%6s %-12s %10s %10s %8s %8s %12s %10s\n" "reqs" "policy" "decisions"
    "slices" "lp" "lp warm" "req/s" "time (ms)";
  let json_rows = ref [] in
  List.iter
    (fun count ->
      let trace =
        Serve.Trace.diurnal ~seed:(1000 + count) ~peak_rate:0.2 ~count ()
      in
      let policies =
        ([ (module Online.Policies.Mct); (module Online.Policies.Fair);
           (module Online.Policies.Srpt) ]
          : (module Online.Sim.POLICY) list)
        (* The LP-driven policy is quadratic-ish in queue depth; keep it to
           the smaller traces so the bench stays interactive. *)
        @ (if count <= 100 then [ (module Online.Online_opt.Divisible) ] else [])
      in
      List.iter
        (fun (module P : Online.Sim.POLICY) ->
          let engine, elapsed =
            time_it (fun () -> Serve.Engine.replay ~policy:(module P) trace)
          in
          let m = Serve.Engine.metrics engine in
          let count_of name = Obs.Registry.count (Obs.Registry.counter m name) in
          let decisions = count_of "decisions" in
          let slices = count_of "slices" in
          let lp_solves = count_of "lp_solves" in
          let lp_warm = count_of "lp_solves_warm" in
          Printf.printf "%6d %-12s %10d %10d %8d %8d %12.0f %10.1f\n" count P.name
            decisions slices lp_solves lp_warm
            (float_of_int count /. Float.max 1e-9 elapsed)
            (elapsed *. 1000.0);
          json_rows :=
            Json_out.Obj
              [
                ("requests", Json_out.Int count);
                ("policy", Json_out.Str P.name);
                ("decisions", Json_out.Int decisions);
                ("slices", Json_out.Int slices);
                ("lp_solves", Json_out.Int lp_solves);
                ("lp_solves_warm", Json_out.Int lp_warm);
                ("lp_pivots_phase1", Json_out.Int (count_of "lp_pivots_phase1"));
                ("lp_pivots_phase2", Json_out.Int (count_of "lp_pivots_phase2"));
                ("lp_pivots_dual", Json_out.Int (count_of "lp_pivots_dual"));
                ("seconds", Json_out.Float elapsed);
              ]
            :: !json_rows)
        policies)
    [ 50; 100; 200; 400 ];
  Json_out.write ~experiment:"serve" (Json_out.List (List.rev !json_rows))

(* ------------------------------------------------------------------ *)
(* Serving engine under machine failures                               *)
(* ------------------------------------------------------------------ *)

let run_faults () =
  section "Serving engine under machine failures: healthy vs degraded replay";
  Printf.printf
    "Poisson GriPPS trace replayed twice per policy: as-is, and under an\n\
     exponential failure/recovery overlay (in-flight work lost).  A final\n\
     never-recovered failure of bank 0's sole holder shows starvation\n\
     surfacing as incomplete requests rather than a livelock.\n";
  let trace = Serve.Trace.poisson ~seed:77 ~machines:4 ~banks:3 ~rate:0.3 ~count:60 () in
  let faulted = Serve.Trace.with_faults ~seed:78 ~mtbf:120. ~mttr:15. trace in
  (* Starvation scenario: kill every holder of bank 0 after 10 s, forever. *)
  let open Serve.Trace in
  let holders =
    List.filteri
      (fun i _ -> trace.platform.Gripps.Workload.has_bank.(i).(0))
      (Array.to_list trace.platform.Gripps.Workload.speeds |> List.mapi (fun i _ -> i))
  in
  let starving =
    { trace with events = List.map (fun i -> { at = R.of_ints 10 1; fault = Fail i }) holders }
  in
  Printf.printf "%-8s %-10s %9s %9s %7s %7s %9s %9s %8s\n" "run" "policy" "completed"
    "starved" "fails" "lost" "p95 flow" "p95 str" "time(ms)";
  let json_rows = ref [] in
  let one label (tr : Serve.Trace.t) (module P : Online.Sim.POLICY) =
    let engine, elapsed = time_it (fun () -> Serve.Engine.replay ~policy:(module P) tr) in
    let m = Serve.Engine.metrics engine in
    let count_of name = Obs.Registry.count (Obs.Registry.counter m name) in
    let q name p = Obs.Registry.quantile (Obs.Registry.histogram m name) p in
    let completed = Serve.Engine.completed engine in
    let starved = Serve.Engine.starved engine in
    Printf.printf "%-8s %-10s %9d %9d %7d %7d %9.2f %9.2f %8.1f\n" label P.name completed
      starved
      (count_of "machine_failures")
      (count_of "slices_lost")
      (q "flow_seconds" 0.95) (q "stretch" 0.95) (elapsed *. 1000.);
    json_rows :=
      Json_out.Obj
        [
          ("run", Json_out.Str label);
          ("policy", Json_out.Str P.name);
          ("submitted", Json_out.Int (Serve.Engine.submitted engine));
          ("completed", Json_out.Int completed);
          ("starved", Json_out.Int starved);
          ("failures", Json_out.Int (count_of "machine_failures"));
          ("recoveries", Json_out.Int (count_of "machine_recoveries"));
          ("slices_lost", Json_out.Int (count_of "slices_lost"));
          ("policy_rebuilds", Json_out.Int (count_of "policy_rebuilds"));
          ("p95_flow_seconds", Json_out.Float (q "flow_seconds" 0.95));
          ("p95_stretch", Json_out.Float (q "stretch" 0.95));
          ("seconds", Json_out.Float elapsed);
        ]
      :: !json_rows
  in
  let policies =
    ([ (module Online.Policies.Mct); (module Online.Policies.Srpt);
       (module Online.Policies.Fair) ]
      : (module Online.Sim.POLICY) list)
  in
  List.iter
    (fun p ->
      one "healthy" trace p;
      one "faulted" faulted p;
      one "starving" starving p)
    policies;
  Json_out.write ~experiment:"faults" (Json_out.List (List.rev !json_rows))

(* ------------------------------------------------------------------ *)
(* Durability: WAL overhead and recovery fidelity                      *)
(* ------------------------------------------------------------------ *)

let run_durability () =
  section "Durability: write-ahead log overhead and recovery fidelity";
  Printf.printf
    "Poisson GriPPS trace driven through the serving engine three ways:\n\
     bare, write-ahead logged (fsync per event, snapshot every 50), and\n\
     crashed at the midpoint then resumed.  The resumed state must match\n\
     the uninterrupted logged run bit for bit.\n";
  let count = 150 in
  let trace = Serve.Trace.poisson ~seed:42 ~machines:4 ~banks:3 ~rate:0.3 ~count () in
  let policy = (module Online.Policies.Mct : Online.Sim.POLICY) in
  let submit_entry engine (e : Serve.Trace.entry) =
    ignore
      (Serve.Engine.submit engine ~id:e.Serve.Trace.id
         ~arrival:e.Serve.Trace.request.W.arrival ~bank:e.Serve.Trace.request.W.bank
         ~num_motifs:e.Serve.Trace.request.W.num_motifs ())
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  let tmp name =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dlsched-bench-%s-%d" name (Unix.getpid ()))
    in
    rm_rf dir;
    dir
  in
  let wal_counter name = Obs.Registry.counter Obs.Registry.global name in
  let counts () =
    List.map
      (fun n -> (n, Obs.Registry.count (wal_counter n)))
      [ "wal.appends"; "wal.append_bytes"; "wal.fsyncs"; "wal.records_replayed";
        "wal.snapshots"; "wal.snapshot_bytes" ]
  in
  (* Bare run: no durability. *)
  let bare, bare_s =
    time_it (fun () ->
        let e = Serve.Engine.create ~clock:(Serve.Clock.virtual_ ()) ~policy trace.Serve.Trace.platform in
        List.iter (submit_entry e) trace.Serve.Trace.entries;
        Serve.Engine.drain e;
        e)
  in
  (* Logged run: every event fsync'd, checkpoint every 50 records. *)
  let dir_oracle = tmp "durability-oracle" in
  let before = counts () in
  let (oracle, oracle_handle), logged_s =
    time_it (fun () ->
        let e = Serve.Engine.create ~clock:(Serve.Clock.virtual_ ()) ~policy trace.Serve.Trace.platform in
        let h = Serve.Snapshot.arm ~snapshot_every:50 ~dir:dir_oracle e in
        List.iter (submit_entry e) trace.Serve.Trace.entries;
        Serve.Engine.drain e;
        (e, h))
  in
  Serve.Snapshot.close oracle_handle;
  let logged = List.map2 (fun (n, b) (_, a) -> (n, a - b)) before (counts ()) in
  let logged_count n = List.assoc n logged in
  (* Crash at the midpoint, resume, finish. *)
  let dir_crash = tmp "durability-crash" in
  let half = count / 2 in
  let firsts = List.filteri (fun i _ -> i < half) trace.Serve.Trace.entries in
  let rests = List.filteri (fun i _ -> i >= half) trace.Serve.Trace.entries in
  let e0 = Serve.Engine.create ~clock:(Serve.Clock.virtual_ ()) ~policy trace.Serve.Trace.platform in
  let h0 = Serve.Snapshot.arm ~snapshot_every:50 ~dir:dir_crash e0 in
  List.iter (submit_entry e0) firsts;
  (* kill -9: the process vanishes; nothing is flushed beyond the WAL. *)
  Serve.Snapshot.close h0;
  let (h1, e1), resume_s =
    time_it (fun () ->
        Serve.Snapshot.resume ~snapshot_every:50 ~dir:dir_crash
          ~clock:(Serve.Clock.virtual_ ()) ~policies:[ policy ] ())
  in
  List.iter (submit_entry e1) rests;
  Serve.Engine.drain e1;
  Serve.Snapshot.close h1;
  let dump e =
    Serve.Snapshot.state_to_string ~seq:0 ~platform:trace.Serve.Trace.platform
      (Serve.Engine.dump e)
  in
  let identical = dump e1 = dump oracle in
  let bare_done = Serve.Engine.completed bare = count in
  rm_rf dir_oracle;
  rm_rf dir_crash;
  Printf.printf "%-28s %12s\n" "run" "seconds";
  Printf.printf "%-28s %12.4f\n" "bare" bare_s;
  Printf.printf "%-28s %12.4f\n" "write-ahead logged" logged_s;
  Printf.printf "%-28s %12.4f\n" "resume (restore+replay)" resume_s;
  Printf.printf
    "logged: %d appends, %d bytes, %d fsyncs, %d snapshots (%d bytes); overhead %.2fx\n"
    (logged_count "wal.appends")
    (logged_count "wal.append_bytes")
    (logged_count "wal.fsyncs")
    (logged_count "wal.snapshots")
    (logged_count "wal.snapshot_bytes")
    (logged_s /. Float.max 1e-9 bare_s);
  Printf.printf "resumed state %s the uninterrupted run\n"
    (if identical then "IDENTICAL to" else "DIVERGES from");
  if not (identical && bare_done) then exit 1;
  Json_out.write ~experiment:"durability"
    (Json_out.Obj
       [
         ("passed", Json_out.Bool identical);
         ("requests", Json_out.Int count);
         ("bare_seconds", Json_out.Float bare_s);
         ("logged_seconds", Json_out.Float logged_s);
         ("resume_seconds", Json_out.Float resume_s);
         ("overhead_ratio", Json_out.Float (logged_s /. Float.max 1e-9 bare_s));
         ("appends", Json_out.Int (logged_count "wal.appends"));
         ("append_bytes", Json_out.Int (logged_count "wal.append_bytes"));
         ("fsyncs", Json_out.Int (logged_count "wal.fsyncs"));
         ("snapshots", Json_out.Int (logged_count "wal.snapshots"));
         ("snapshot_bytes", Json_out.Int (logged_count "wal.snapshot_bytes"));
         ("resume_identical", Json_out.Bool identical);
       ])

(* ------------------------------------------------------------------ *)
(* Admission control: batched re-decides vs per-request re-decides     *)
(* ------------------------------------------------------------------ *)

let run_admission () =
  section "Admission control: batched vs unbatched re-decides on a bursty stream";
  Printf.printf
    "A bursty open stream (%d bursts of %d submits, 0.2 s apart within a\n\
     burst) drives the engine through the admission valve three ways:\n\
     direct (no valve), unbatched (window 0), and batched (2 s coalescing\n\
     window).  Batching must cut decides per submit below 0.5 during the\n\
     submit phase while completing the same request set; the window-0\n\
     valve must be bit-identical to no valve at all.\n" 40 5;
  let bursts = 40 and per_burst = 5 in
  let window = 2.0 in
  let rng = Gripps.Prng.create 9 in
  let events =
    List.concat
      (List.init bursts (fun b ->
           List.init per_burst (fun k ->
               ( (3.0 *. float_of_int b) +. (0.2 *. float_of_int k),
                 Printf.sprintf "r%d-%d" b k,
                 Gripps.Prng.int rng 3,
                 100 + Gripps.Prng.int rng 100 ))))
  in
  let n = List.length events in
  let platform =
    W.random_platform (Gripps.Prng.create 42) ~machines:4 ~banks:3 ~replication:2
  in
  let policy = (module Online.Policies.Mct : Online.Sim.POLICY) in
  let p99 lats =
    let a = Array.of_list lats in
    Array.sort compare a;
    a.(99 * (Array.length a - 1) / 100)
  in
  (* One run: drive the event stream, measuring per-submit reply latency
     (clock catch-up + admission + engine submit, the work a server does
     before answering), then snapshot the decide counter before draining
     the backlog — completions re-decide identically in every regime, so
     the contrast lives in the submit phase. *)
  let run label valve =
    let engine = Serve.Engine.create ~clock:(Serve.Clock.virtual_ ()) ~policy platform in
    let admission =
      Option.map
        (fun w ->
          Serve.Admission.create
            ~config:
              { Serve.Admission.default_config with Serve.Admission.window = W.quantize w }
            engine)
        valve
    in
    let lats = ref [] in
    List.iter
      (fun (t, id, bank, num_motifs) ->
        let t0 = Unix.gettimeofday () in
        Serve.Engine.run_until engine (W.quantize t);
        (match admission with
         | Some adm -> (
           Serve.Admission.poll adm;
           match Serve.Admission.submit adm ~id ~bank ~num_motifs () with
           | Serve.Admission.Admitted _ -> ()
           | Serve.Admission.Shed _ -> failwith "shed with no caps configured")
         | None ->
           ignore
             (Serve.Engine.submit engine ~id ~arrival:(Serve.Engine.now engine) ~bank
                ~num_motifs ()));
        lats := (Unix.gettimeofday () -. t0) :: !lats)
      events;
    let m = Serve.Engine.metrics engine in
    let decides () = Obs.Registry.count (Obs.Registry.counter m "decisions") in
    let submit_phase = decides () in
    Serve.Engine.drain engine;
    let completed_ids =
      List.filter_map
        (fun (_, id, _, _) ->
          match Serve.Engine.find engine id with
          | Some j when Serve.Engine.job_completed engine j -> Some id
          | _ -> None)
        events
    in
    let valid =
      match S.validate_divisible (Serve.Engine.schedule engine) with
      | Ok () -> true
      | Error _ -> false
    in
    let dump =
      (* The valve records its own accounting ("admission." entries) in
         the shared registry; the transparency claim is about the engine's
         state and metrics, so compare modulo the valve's bookkeeping. *)
      let st = Serve.Engine.dump engine in
      let st =
        { st with
          Serve.Engine.st_metrics =
            List.filter
              (fun (k, _) -> not (String.starts_with ~prefix:"admission." k))
              st.Serve.Engine.st_metrics
        }
      in
      Serve.Snapshot.state_to_string ~seq:0 ~platform st
    in
    (label, submit_phase, decides (), p99 !lats, completed_ids, valid, dump)
  in
  let direct = run "direct" None in
  let unbatched = run "unbatched" (Some 0.0) in
  let batched = run "batched" (Some window) in
  let runs = [ direct; unbatched; batched ] in
  Printf.printf "%-10s %9s %9s %14s %12s %9s %6s\n" "run" "decides" "total"
    "decides/1k sub" "p99 reply" "completed" "valid";
  List.iter
    (fun (label, d, total, p99, completed, valid, _) ->
      Printf.printf "%-10s %9d %9d %14.1f %10.3fms %9d %6s\n" label d total
        (1000.0 *. float_of_int d /. float_of_int n)
        (p99 *. 1000.0) (List.length completed)
        (if valid then "ok" else "BAD"))
    runs;
  let ratio (_, d, _, _, _, _, _) = float_of_int d /. float_of_int n in
  let dump_of (_, _, _, _, _, _, dump) = dump in
  let completed_of (_, _, _, _, c, _, _) = List.sort compare c in
  let transparent = dump_of direct = dump_of unbatched in
  let same_completed =
    completed_of unbatched = completed_of batched
    && List.length (completed_of batched) = n
  in
  let all_valid = List.for_all (fun (_, _, _, _, _, v, _) -> v) runs in
  let passed =
    transparent && same_completed && all_valid && ratio batched < 0.5
    && ratio batched < ratio unbatched
  in
  Printf.printf
    "window-0 valve %s no valve; completed sets %s; batched decides/submit %.3f \
     (unbatched %.3f)\n"
    (if transparent then "IDENTICAL to" else "DIVERGES from")
    (if same_completed then "identical" else "DIFFER")
    (ratio batched) (ratio unbatched);
  Json_out.write ~experiment:"admission"
    (Json_out.Obj
       [
         ("passed", Json_out.Bool passed);
         ("submits", Json_out.Int n);
         ("window_seconds", Json_out.Float window);
         ("unbatched_bit_identical_to_direct", Json_out.Bool transparent);
         ("completed_sets_identical", Json_out.Bool same_completed);
         ("unbatched_decides_per_submit", Json_out.Float (ratio unbatched));
         ("batched_decides_per_submit", Json_out.Float (ratio batched));
         ( "runs",
           Json_out.List
             (List.map
                (fun (label, d, total, p99, completed, valid, _) ->
                  Json_out.Obj
                    [
                      ("run", Json_out.Str label);
                      ("decides_submit_phase", Json_out.Int d);
                      ("decides_total", Json_out.Int total);
                      ( "decides_per_1k_submits",
                        Json_out.Float (1000.0 *. float_of_int d /. float_of_int n) );
                      ("p99_reply_seconds", Json_out.Float p99);
                      ("completed", Json_out.Int (List.length completed));
                      ("schedule_valid", Json_out.Bool valid);
                    ])
                runs) );
       ]);
  if not passed then exit 1

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  section "Micro-benchmarks (Bechamel, ns/run)";
  let open Bechamel in
  let rng = Gripps.Prng.create 106 in
  let big_a = Numeric.Bigint.of_string (String.make 60 '7') in
  let big_b = Numeric.Bigint.of_string (String.make 55 '3') in
  let rat_a = R.of_ints 355 113 and rat_b = R.of_ints 22 7 in
  let small_inst = random_instance rng ~jobs:4 ~machines:2 in
  let bank =
    Gripps.Databank.generate (Gripps.Prng.create 1) ~name:"micro" ~num_sequences:20
      ~mean_length:80
  in
  let motif = Gripps.Motif.of_string "C-x(2,4)-[ST]-{P}-G" in
  let tests =
    [ Test.make ~name:"bigint-mul-60x55-digits"
        (Staged.stage (fun () -> Numeric.Bigint.mul big_a big_b));
      Test.make ~name:"bigint-divmod"
        (Staged.stage (fun () -> Numeric.Bigint.divmod big_a big_b));
      Test.make ~name:"rat-add" (Staged.stage (fun () -> R.add rat_a rat_b));
      Test.make ~name:"maxflow-n4-m2"
        (Staged.stage (fun () -> Sched_core.Max_flow.solve small_inst));
      Test.make ~name:"makespan-n4-m2"
        (Staged.stage (fun () -> Sched_core.Makespan.solve small_inst));
      Test.make ~name:"scanner-20seq"
        (Staged.stage (fun () -> Gripps.Scanner.scan [ motif ] bank))
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"dlsched" tests) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  Printf.printf "%-40s %16s\n" "benchmark" "ns/run";
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, r) ->
         match Analyze.OLS.estimates r with
         | Some [ ns ] -> Printf.printf "%-40s %16.1f\n" name ns
         | _ -> Printf.printf "%-40s %16s\n" name "n/a")

(* ------------------------------------------------------------------ *)
(* Correctness-harness throughput: the whole differential-oracle       *)
(* matrix (lib/check) over a fixed seed, as a gate and a rate          *)
(* ------------------------------------------------------------------ *)

let run_fuzz () =
  section "Fuzz: differential-oracle matrix throughput";
  let seed = 5 and cases = 200 in
  let t0 = Unix.gettimeofday () in
  let report = Check.Fuzz.run ~out_dir:"_fuzz" ~seed ~cases () in
  let dt = Unix.gettimeofday () -. t0 in
  let failures = List.length report.Check.Fuzz.failures in
  Printf.printf "%d cases x %d oracles in %.2fs (%.0f cases/s), %d failures\n"
    report.Check.Fuzz.cases
    (List.length report.Check.Fuzz.oracles_run)
    dt
    (float_of_int report.Check.Fuzz.cases /. dt)
    failures;
  Json_out.write ~experiment:"fuzz"
    (Json_out.Obj
       [ ("passed", Json_out.Bool (failures = 0));
         ("seed", Json_out.Int seed);
         ("cases", Json_out.Int report.Check.Fuzz.cases);
         ("oracles", Json_out.Int (List.length report.Check.Fuzz.oracles_run));
         ("seconds", Json_out.Float dt);
         ("failures", Json_out.Int failures)
       ]);
  if failures > 0 then failwith "fuzz: oracle matrix caught a divergence"

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig1a", run_fig1a);
    ("fig1b", run_fig1b);
    ("comm", run_comm);
    ("makespan", run_makespan);
    ("maxflow", run_maxflow);
    ("preemptive", run_preemptive);
    ("online", run_online);
    ("adversary", run_adversary);
    ("reopt", run_reopt);
    ("lp", run_lp);
    ("search", run_search);
    ("warmstart", run_warmstart);
    ("smoke", run_smoke);
    ("numeric", run_numeric);
    ("speedup", run_speedup);
    ("speedup-smoke", run_speedup_smoke);
    ("uniform", run_uniform);
    ("serve", run_serve);
    ("faults", run_faults);
    ("durability", run_durability);
    ("admission", run_admission);
    ("fuzz", run_fuzz);
    ("micro", run_micro)
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Flags: --json enables BENCH_*.json emission; --solver=dense|sparse
     selects the engine family for everything that follows; --jobs=N
     fixes the domain-pool width (overriding DLSCHED_JOBS; the smoke and
     speedup experiments pin their own widths regardless);
     --trace=FILE streams a JSON-lines trace of every span and event the
     experiments emit (the warmstart ablation briefly shadows it with its
     own in-process sink while it measures). *)
  let names =
    List.filter
      (fun a ->
        if a = "--json" then begin
          Json_out.enabled := true;
          false
        end
        else if String.length a > 8 && String.sub a 0 8 = "--trace=" then begin
          let path = String.sub a 8 (String.length a - 8) in
          (match Obs.Sink.file path with
           | sink ->
             Obs.Sink.install sink;
             at_exit Obs.Sink.uninstall
           | exception Sys_error msg ->
             Printf.eprintf "--trace: %s\n" msg;
             exit 1);
          false
        end
        else if String.length a > 7 && String.sub a 0 7 = "--jobs=" then begin
          let v = String.sub a 7 (String.length a - 7) in
          (match int_of_string_opt v with
           | Some n when n >= 1 -> Par.Pool.set_jobs n
           | Some _ | None ->
             Printf.eprintf "--jobs: expected a positive integer, got %S\n" v;
             exit 1);
          false
        end
        else if String.length a > 9 && String.sub a 0 9 = "--solver=" then begin
          let v = String.sub a 9 (String.length a - 9) in
          (match Lp.Solve.variant_of_string v with
           | Some variant -> Lp.Solve.variant := variant
           | None ->
             Printf.eprintf "unknown solver %S (dense|sparse)\n" v;
             exit 1);
          false
        end
        else true)
      args
  in
  let requested = if names = [] then List.map fst experiments else names in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        (* Scope the envelope's trace/rat deltas to this experiment: work
           done by earlier experiments (or between writes) must not leak
           into this one's BENCH_*.json. *)
        Json_out.mark ();
        f ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested;
  Printf.printf "\nAll requested experiments completed.\n"
