(* Machine-readable bench output.

   Every experiment that calls [write] drops a `BENCH_<name>.json` file in
   the current directory (repo root under `make bench`) when the harness
   runs with `--json`.  Files carry a schema/version envelope plus the
   solver configuration they were measured under, so downstream tooling
   can refuse data from a mismatched harness or solver variant. *)

type v =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | List of v list
  | Obj of (string * v) list

let enabled = ref false

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        emit buf item)
      fields;
    Buffer.add_char buf '}'

(* The schema version is bumped whenever the envelope or any experiment's
   [data] layout changes incompatibly.  v3 added the [jobs] /
   [recommended_domain_count] fields recording the domain-pool width the
   numbers were measured under; v4 added the [rat] block (numeric-tower
   fast-path tallies over the experiment's slice); v5 scoped the [trace] /
   [rat] deltas to the experiment proper ([mark] at experiment start, so
   work done between two [write]s no longer leaks into the next
   envelope). *)
let schema = "dlsched-bench"
let version = 5

(* Trace summary attached to every envelope: spans/events emitted and wall
   seconds spent inside the LP engines since the previous [write] (or
   program start), so each experiment's file carries its own slice of the
   process-wide counters. *)
let last_spans = ref 0
let last_events = ref 0
let last_solver_s = ref 0.
let last_rat_small = ref 0
let last_rat_big = ref 0
let last_rat_promoted = ref 0
let last_rat_demoted = ref 0

(* Numeric-tower summary, differenced the same way as the trace block:
   each envelope reports the rational-arithmetic traffic of its own
   experiment, not the process lifetime.  Read straight from
   [Numeric.Counters] (the live refs), not the registry mirror, so the
   numbers are current even when the slice ends outside a solve. *)
let rat_summary () =
  let small = Numeric.Counters.small_ops () in
  let big = Numeric.Counters.big_ops () in
  let promoted = Numeric.Counters.promotions () in
  let demoted = Numeric.Counters.demotions () in
  let d_small = small - !last_rat_small and d_big = big - !last_rat_big in
  let hit_rate =
    if d_small + d_big = 0 then 1.0
    else float_of_int d_small /. float_of_int (d_small + d_big)
  in
  let d =
    Obj
      [
        ("small_ops", Int d_small);
        ("big_ops", Int d_big);
        ("promotions", Int (promoted - !last_rat_promoted));
        ("demotions", Int (demoted - !last_rat_demoted));
        ("hit_rate", Float hit_rate);
      ]
  in
  last_rat_small := small;
  last_rat_big := big;
  last_rat_promoted := promoted;
  last_rat_demoted := demoted;
  d

let trace_summary () =
  let spans = Obs.Sink.emitted_spans () in
  let events = Obs.Sink.emitted_events () in
  let solver_s = (Lp.Instrument.combined ()).Lp.Instrument.seconds in
  let d =
    Obj
      [
        ("spans", Int (spans - !last_spans));
        ("events", Int (events - !last_events));
        ("time_in_solver_s", Float (solver_s -. !last_solver_s));
      ]
  in
  last_spans := spans;
  last_events := events;
  last_solver_s := solver_s;
  d

(* Rebase every differenced baseline to "now".  The harness calls this as
   each experiment starts; without it the [trace]/[rat] blocks of an
   envelope also absorb whatever ran between the previous experiment's
   [write] and this one (setup, warmups, experiments that don't write
   JSON), crediting foreign solver seconds and rational ops to the wrong
   experiment. *)
let mark () =
  last_spans := Obs.Sink.emitted_spans ();
  last_events := Obs.Sink.emitted_events ();
  last_solver_s := (Lp.Instrument.combined ()).Lp.Instrument.seconds;
  last_rat_small := Numeric.Counters.small_ops ();
  last_rat_big := Numeric.Counters.big_ops ();
  last_rat_promoted := Numeric.Counters.promotions ();
  last_rat_demoted := Numeric.Counters.demotions ()

let write ~experiment data =
  if !enabled then begin
    let doc =
      Obj
        [
          ("schema", Str schema);
          ("version", Int version);
          ("experiment", Str experiment);
          ("solver", Str (Lp.Solve.variant_name !Lp.Solve.variant));
          ("warm", Bool !Lp.Solve.warm);
          ("jobs", Int (Par.Pool.jobs ()));
          ("recommended_domain_count", Int (Domain.recommended_domain_count ()));
          ("trace", trace_summary ());
          ("rat", rat_summary ());
          ("data", data);
        ]
    in
    let buf = Buffer.create 1024 in
    emit buf doc;
    Buffer.add_char buf '\n';
    let path = Printf.sprintf "BENCH_%s.json" experiment in
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "json: wrote %s\n" path
  end
