(** Timestamped workload traces for the serving engine.

    A trace is a platform description plus a stream of identified,
    timestamped GriPPS requests — what a production front-end would log,
    and what {!Engine.replay} consumes.  The format is line-oriented;
    blank lines and [#] comments are ignored:

    {v
    trace v1
    machines 2
    banks 2
    speed 0 1            # relative slowdown of machine 0 (rational)
    speed 1 3/2
    bank 0 3800          # sequences in databank 0
    bank 1 1900
    holds 0 0 1          # machine 0 holds banks 0 and 1
    holds 1 1
    req r0001 27/100 0 12   # id, arrival (s, rational), bank, motif count
    fail 40 1               # machine 1 goes down at t = 40 s
    recover 55 1            # ... and comes back at t = 55 s
    v}

    [speed] lines default to 1; every bank needs a [bank] size line and at
    least one holding machine reachable from every request.  Requests are
    kept sorted by arrival (ties keep file order).  Request ids are
    whitespace-free and unique. *)

module Rat = Numeric.Rat

type entry = { id : string; request : Gripps.Workload.request }

type fault = Fail of int | Recover of int  (** machine index *)

type event = { at : Rat.t; fault : fault }
(** A timed availability change: [fail T I] / [recover T I] lines in the
    trace file (time [T] as a rational, machine index [I]). *)

type t = {
  platform : Gripps.Workload.platform;
  entries : entry list;  (** sorted by arrival *)
  events : event list;
      (** sorted by time; a fail and its recovery at the same instant keep
          file order *)
}

val of_string : string -> t
(** @raise Invalid_argument with a line-numbered message on syntax or
    semantic errors (bad index, duplicate id, request on an unheld bank,
    negative arrival, non-positive motif count…). *)

val to_string : t -> string
(** Canonical form; round-trips through {!of_string}. *)

val load : string -> t
val save : string -> t -> unit

val to_instance : t -> Sched_core.Instance.t
(** Offline instance of the whole trace (unit weights), request [k] of
    {!entries} becoming job [k] — the bridge to the offline solvers and to
    {!Online.Sim}. *)

val ids : t -> string array

(** {1 Synthetic generators}

    Both generators draw platform and requests from {!Gripps.Prng}, so a
    seed pins the trace bit-for-bit. *)

val poisson :
  seed:int ->
  ?machines:int ->
  ?banks:int ->
  ?replication:int ->
  ?max_motifs:int ->
  rate:float ->
  count:int ->
  unit ->
  t
(** Homogeneous Poisson arrivals at [rate] requests per second —
    {!Gripps.Workload.poisson_requests} on a
    {!Gripps.Workload.random_platform}.  Defaults: 4 machines, 3 banks,
    replication 2, motif sets up to 60. *)

val diurnal :
  seed:int ->
  ?machines:int ->
  ?banks:int ->
  ?replication:int ->
  ?max_motifs:int ->
  ?day:float ->
  ?trough_fraction:float ->
  peak_rate:float ->
  count:int ->
  unit ->
  t
(** A GriPPS working day: a non-homogeneous Poisson stream (thinning)
    whose rate follows a diurnal profile
    [rate(t) = peak_rate · (trough + (1 − trough) · sin²(π·t/day))] —
    near-silent at the day boundaries, peaking mid-day.  [day] defaults to
    [3600.] (a compressed one-hour "day" keeps exact solvers and replays
    fast; pass [86400.] for real-time realism); [trough_fraction] defaults
    to [0.05]. *)

val with_faults : seed:int -> ?mtbf:float -> ?mttr:float -> t -> t
(** Overlay the trace with machine failure/recovery events: each machine
    alternates exponential up periods (mean [mtbf], default 300 s) and
    down periods (mean [mttr], default 30 s), starting up at time 0.
    Failures are drawn within the trace's arrival span and every failure
    is eventually recovered (the recovery may fall past the last arrival),
    so replaying the result can always complete all requests.  Replaces
    any existing events; deterministic in [seed].
    @raise Invalid_argument if [mtbf] or [mttr] is not positive. *)
