module Rat = Numeric.Rat
module Metrics = Obs.Registry

type priority = [ `Fifo | `Smallest ]

type config = {
  window : Rat.t;
  max_inflight : int;
  max_per_client : int;
  cache : bool;
  priority : priority;
}

let default_config =
  {
    window = Rat.zero;
    max_inflight = 0;
    max_per_client = 0;
    cache = false;
    priority = `Fifo;
  }

type reply =
  | Admitted of { job : int; fires_at : Rat.t }
  | Shed of { retry_after : Rat.t }

(* One admitted-but-not-yet-retired request.  The list is swept lazily
   against [Engine.job_completed]; admission volumes are bounded by the
   in-flight caps themselves, so a list is plenty. *)
type entry = { job : int; client : string; motifs : int }

type t = {
  eng : Engine.t;
  cfg : config;
  mutable live : entry list;  (* newest first *)
  (* The open coalescing window: arrival date shared by every request
     admitted until the engine moves past it, plus how many joined. *)
  mutable batch_closes : Rat.t;
  mutable batch_size : int;
  c_submits : Metrics.counter;
  c_sheds : Metrics.counter;
  c_batches : Metrics.counter;
  h_batch : Metrics.histogram;
}

let create ?(config = default_config) eng =
  if Rat.sign config.window < 0 then
    invalid_arg "Admission.create: negative coalescing window";
  if config.max_inflight < 0 || config.max_per_client < 0 then
    invalid_arg "Admission.create: negative in-flight cap";
  Engine.set_decision_cache eng config.cache;
  let m = Engine.metrics eng in
  {
    eng;
    cfg = config;
    live = [];
    batch_closes = Rat.zero;
    batch_size = 0;
    c_submits = Metrics.counter m "admission.submits";
    c_sheds = Metrics.counter m "admission.sheds";
    c_batches = Metrics.counter m "admission.batches";
    h_batch = Metrics.histogram m "admission.batch_size";
  }

let engine t = t.eng
let config t = t.cfg

let sweep t =
  t.live <- List.filter (fun e -> not (Engine.job_completed t.eng e.job)) t.live

let inflight t =
  sweep t;
  List.length t.live

let inflight_for t client =
  sweep t;
  List.length (List.filter (fun e -> e.client = client) t.live)

(* Close the open window once the engine has moved past it: its batch is
   fired (or firing), so the next submit opens a fresh one.  One histogram
   sample per closed non-empty window. *)
let close_expired t =
  if t.batch_size > 0 && Rat.compare t.batch_closes (Engine.now t.eng) <= 0 then begin
    Metrics.incr t.c_batches;
    Metrics.observe t.h_batch (float_of_int t.batch_size);
    t.batch_size <- 0
  end

let poll t = close_expired t

(* Under [`Smallest], pressure at the global cap still admits a request
   strictly smaller than the largest in-flight one — small fry drain past
   a backlog of whales — up to a 25% overflow. *)
let over_global_cap t ~motifs =
  t.cfg.max_inflight > 0
  &&
  let n = List.length t.live in
  if n < t.cfg.max_inflight then false
  else
    match t.cfg.priority with
    | `Fifo -> true
    | `Smallest ->
      let largest = List.fold_left (fun acc e -> Stdlib.max acc e.motifs) 0 t.live in
      motifs >= largest || n >= t.cfg.max_inflight + ((t.cfg.max_inflight + 3) / 4)

let over_client_cap t ~client =
  t.cfg.max_per_client > 0
  && List.length (List.filter (fun e -> e.client = client) t.live)
     >= t.cfg.max_per_client

let retry_after t =
  (* The soonest anything can change for the better: the end of the
     current window if one is open, else one window from now; never less
     than a second so callers do not spin. *)
  let w = if Rat.sign t.cfg.window > 0 then t.cfg.window else Rat.of_int 1 in
  let open_left =
    if t.batch_size > 0 then Rat.sub t.batch_closes (Engine.now t.eng) else Rat.zero
  in
  if Rat.sign open_left > 0 then Rat.add open_left t.cfg.window else w

let submit t ?(client = "anon") ~id ~bank ~num_motifs () =
  Obs.Span.with_span "admission.submit" (fun () ->
      Obs.Span.set_str "client" client;
      sweep t;
      close_expired t;
      if over_client_cap t ~client || over_global_cap t ~motifs:num_motifs then begin
        Metrics.incr t.c_sheds;
        Obs.Span.set_str "outcome" "shed";
        Shed { retry_after = retry_after t }
      end
      else begin
        let now = Engine.now t.eng in
        let fires_at =
          if Rat.sign t.cfg.window <= 0 then now
          else if t.batch_size > 0 then t.batch_closes
          else Rat.add now t.cfg.window
        in
        (* Durable before acknowledged: [Engine.submit] WAL-logs the
           request with this very arrival date, so a crash inside the open
           window replays the whole batch bit-identically. *)
        let job = Engine.submit t.eng ~id ~arrival:fires_at ~bank ~num_motifs () in
        if Rat.sign t.cfg.window > 0 then begin
          t.batch_closes <- fires_at;
          t.batch_size <- t.batch_size + 1
        end
        else begin
          (* Unbatched: every submit is its own batch of one. *)
          Metrics.incr t.c_batches;
          Metrics.observe t.h_batch 1.
        end;
        t.live <- { job; client; motifs = num_motifs } :: t.live;
        Metrics.incr t.c_submits;
        Obs.Span.set_str "outcome" "admitted";
        Admitted { job; fires_at }
      end)
