(* Deprecated alias: the implementation moved to [Obs.Registry] when the
   observability subsystem unified the serving metrics with the solver
   instrumentation.  Kept so existing callers (and the server protocol)
   keep compiling; new code should use [Obs.Registry] directly. *)

include Obs.Registry
