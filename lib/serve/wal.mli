(** Write-ahead event log for {!Engine} durability.

    The serving engine is deterministic in its sequence of externally
    visible events — submissions, fault injections, time advances, drains
    (the fault and multicore suites enforce bit-identical replay).  The
    WAL makes that sequence durable: each event is appended as one
    length-prefixed, checksummed, fsync'd record {e before} the engine
    applies it, so replaying the log into a fresh engine reproduces the
    crashed engine's state exactly (see {!Snapshot} for the recovery
    orchestration and DESIGN.md §11 for the invariant).

    Record framing is [r <seq> <len> <adler32>\n<payload>\n]; payloads use
    the exact rational text encoding ({!Numeric.Rat.to_string}).  Seqs
    start at 1 and increase by one per append; they survive log
    truncation, which is what lets a snapshot name the prefix it covers.

    Appends emit [wal.append] / [wal.fsync] spans when tracing is on, and
    tally [wal.appends], [wal.append_bytes], [wal.fsyncs],
    [wal.records_replayed] and [wal.torn_tails] counters in
    {!Obs.Registry.global}. *)

module Rat = Numeric.Rat

type record =
  | Submit of { id : string; arrival : Rat.t; bank : int; num_motifs : int }
      (** an admitted request, with its arrival date resolved — replay
          never re-reads the clock *)
  | Inject of { at : Rat.t; fault : Trace.fault }
  | Advance of Rat.t
      (** [run_until] target: a virtual-clock [tick] or a wall-clock
          catch-up, with the observed date made explicit *)
  | Drain

val adler32 : string -> int
(** The checksum used for record frames — shared with {!Snapshot}'s file
    trailer so both artifacts are verified the same way. *)

val encodable_id : string -> bool
(** Whether a request id survives the text encodings (non-empty, no
    whitespace). *)

val encode : record -> string
(** One-line payload text.
    @raise Invalid_argument on a [Submit] whose id is empty or contains
    whitespace (such an id cannot round-trip the text encoding). *)

val decode : string -> record
(** @raise Invalid_argument on a malformed payload. *)

(** {1 Reading} *)

val replay : string -> (int * record) list * int * bool
(** [replay path] is [(records, valid_length, torn)]: the valid records
    with their seqs, the byte length of the valid prefix, and whether a
    torn tail (partial frame, checksum mismatch — a crash mid-append) was
    found after it.  A missing file reads as [([], 0, false)]. *)

(** {1 Writing} *)

type writer

val open_append : ?valid_length:int -> next_seq:int -> string -> writer
(** Open (creating if needed) for appending.  [valid_length] — from
    {!replay} — truncates a torn tail first so new records never follow
    garbage; [next_seq] is one past the highest durable seq (1 on a fresh
    log). *)

val append : writer -> record -> int
(** Frame, write, flush and [fsync] one record; returns its seq.  When
    this returns, the record is durable; the caller applies the event to
    the engine only after. *)

val truncate : writer -> unit
(** Drop every record — called after a snapshot covering the whole log
    was durably written.  Seq numbering continues; a crash that loses the
    truncation is harmless because resume skips records at or below the
    snapshot's covered seq. *)

val next_seq : writer -> int

val close : writer -> unit
