module Rat = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module Sim = Online.Sim
module W = Gripps.Workload

module Metrics = Obs.Registry

type objective = [ `Flow | `Stretch ]

type lost_work = [ `Lost | `Preserved ]

type job = {
  id : string;
  arrival : Rat.t;
  bank : int;  (* kept for durability snapshots; costs derive from it *)
  num_motifs : int;
  column : Rat.t option array;  (* cost per machine, healthy platform *)
  weight : Rat.t;
  fastest : Rat.t;  (* min finite cost, for stretch accounting *)
  mutable arrived : bool;  (* arrival date has passed *)
  mutable parked : bool;  (* arrived but starved: no live machine can run it *)
  mutable completed_at : Rat.t option;
}

(* The policy's abstract state, packed with its module. *)
type runner = Runner : (module Sim.POLICY with type state = 's) * 's -> runner

(* A cached decision in canonical form: shares name jobs by their
   *position* in announcement order (not by absolute index, which differs
   between recurrences of the same workload shape) and [review_at] is
   stored as an offset from the decision date (absolute dates never
   recur).  [decide] reconstitutes a [Sim.decision] against the current
   census on a hit. *)
type cached_decision = {
  cd_shares : (int * int * Rat.t) list;  (* machine, census position, share *)
  cd_review_offset : Rat.t option;
}

type t = {
  platform : W.platform;
  policy : (module Sim.POLICY);
  clock : Clock.t;
  mutable origin : float;  (* clock date of engine time 0; rebased on restore *)
  batch_window : Rat.t;
  objective : objective;
  lost_work : lost_work;
  (* Machine availability.  [overlay] is mutated in place; [faults] is the
     pending injection queue, sorted by date. *)
  overlay : W.overlay;
  mutable faults : (Rat.t * Trace.fault) list;
  (* Growable job store; index = policy job index. *)
  mutable jobs : job array;
  mutable n : int;
  ids : (string, int) Hashtbl.t;  (* request id -> job index *)
  mutable remaining : Rat.t array;  (* parallel to [jobs], fraction left *)
  mutable inst : I.t option;  (* cache over jobs.(0..n-1), healthy costs *)
  mutable masked : I.t option;  (* [inst] under the overlay, for decisions *)
  mutable runner : runner option;
  mutable now : Rat.t;
  (* Current validated decision and its batching state. *)
  mutable decision : Sim.decision option;
  mutable decided_at : Rat.t;
  mutable dirty : bool;
  mutable batch_deadline : Rat.t option;
  (* Decision cache (DESIGN.md §13).  Keyed by an exact fingerprint of
     every serializable input a rebuilt policy's decision is a function
     of; consulted only at rebuild barriers ([runner = None]), where that
     functional dependence is the quiesce/restore invariant itself. *)
  mutable cache_enabled : bool;
  decision_cache : (string, cached_decision) Hashtbl.t;
  (* Output. *)
  mutable slices : S.slice list;  (* reverse order *)
  last_stop : Rat.t array;  (* per machine, incremental validation *)
  mutable num_completed : int;
  (* Metrics. *)
  metrics : Metrics.t;
  c_submitted : Metrics.counter;
  c_completed : Metrics.counter;
  c_decisions : Metrics.counter;
  c_segments : Metrics.counter;
  c_slices : Metrics.counter;
  c_coalesced : Metrics.counter;
  c_cache_hits : Metrics.counter;
  c_cache_misses : Metrics.counter;
  c_rebuilds : Metrics.counter;
  c_failures : Metrics.counter;
  c_recoveries : Metrics.counter;
  c_slices_lost : Metrics.counter;
  g_machines_up : Metrics.gauge;
  g_queue : Metrics.gauge;
  h_flow : Metrics.histogram;
  h_weighted : Metrics.histogram;
  h_stretch : Metrics.histogram;
  (* Solver instrumentation: per-decision deltas of the global LP
     instruments ([Lp.Instrument]) attributed to this engine (LP-free
     policies leave these at zero). *)
  c_lp_solves : Metrics.counter;
  c_lp_warm : Metrics.counter;
  c_lp_pivots1 : Metrics.counter;
  c_lp_pivots2 : Metrics.counter;
  c_lp_pivots_dual : Metrics.counter;
  h_lp_seconds : Metrics.histogram;
  (* Numeric-tower fast-path telemetry, same per-decision delta scheme
     (DESIGN.md §10). *)
  c_rat_small : Metrics.counter;
  c_rat_big : Metrics.counter;
  c_rat_promoted : Metrics.counter;
  c_rat_demoted : Metrics.counter;
  (* Durability (DESIGN.md §11).  When armed, every externally visible
     event is appended to a write-ahead log *before* it is applied, and a
     checkpoint closure serializes the whole state every [wal_every]
     records. *)
  mutable wal_log : (Wal.record -> int) option;  (* append + fsync; returns seq *)
  mutable wal_checkpoint : (unit -> unit) option;  (* write a snapshot *)
  mutable wal_truncate : (unit -> unit) option;  (* drop the covered log *)
  mutable wal_every : int;  (* auto-checkpoint threshold; 0 = manual only *)
  mutable wal_since : int;  (* records applied since the last checkpoint *)
  mutable wal_last_seq : int;  (* seq of the last record applied *)
  mutable wal_replaying : bool;  (* recovery replay: records are already durable *)
}

let bug fmt = Printf.ksprintf (fun s -> failwith ("Serve.Engine: " ^ s)) fmt

let policy_name t =
  let (module P : Sim.POLICY) = t.policy in
  P.name

let create ?(batch_window = Rat.zero) ?(objective = `Stretch) ?(lost_work = `Lost) ~clock
    ~policy platform =
  if Rat.sign batch_window < 0 then invalid_arg "Engine.create: negative batch window";
  let m = Array.length platform.W.speeds in
  let metrics = Metrics.create () in
  let t =
    {
      platform;
      policy;
      clock;
      origin = Clock.now clock;
      batch_window;
      objective;
      lost_work;
      overlay = W.all_up platform;
      faults = [];
      jobs = [||];
      n = 0;
      ids = Hashtbl.create 64;
      remaining = [||];
      inst = None;
      masked = None;
      runner = None;
      now = Rat.zero;
    decision = None;
    decided_at = Rat.zero;
    dirty = true;
    batch_deadline = None;
    cache_enabled = false;
    decision_cache = Hashtbl.create 16;
    slices = [];
    last_stop = Array.make m Rat.zero;
    num_completed = 0;
    metrics;
    c_submitted = Metrics.counter metrics "requests_submitted";
    c_completed = Metrics.counter metrics "requests_completed";
    c_decisions = Metrics.counter metrics "decisions";
    c_segments = Metrics.counter metrics "segments";
    c_slices = Metrics.counter metrics "slices";
      c_coalesced = Metrics.counter metrics "arrivals_coalesced";
      c_cache_hits = Metrics.counter metrics "decision_cache_hits";
      c_cache_misses = Metrics.counter metrics "decision_cache_misses";
      c_rebuilds = Metrics.counter metrics "policy_rebuilds";
      c_failures = Metrics.counter metrics "machine_failures";
      c_recoveries = Metrics.counter metrics "machine_recoveries";
      c_slices_lost = Metrics.counter metrics "slices_lost";
      g_machines_up = Metrics.gauge metrics "machines_up";
      g_queue = Metrics.gauge metrics "queue_depth";
    h_flow = Metrics.histogram metrics "flow_seconds";
    h_weighted = Metrics.histogram metrics "weighted_flow_seconds";
    h_stretch = Metrics.histogram metrics "stretch";
    c_lp_solves = Metrics.counter metrics "lp_solves";
    c_lp_warm = Metrics.counter metrics "lp_solves_warm";
    c_lp_pivots1 = Metrics.counter metrics "lp_pivots_phase1";
    c_lp_pivots2 = Metrics.counter metrics "lp_pivots_phase2";
      c_lp_pivots_dual = Metrics.counter metrics "lp_pivots_dual";
      h_lp_seconds = Metrics.histogram metrics "lp_solve_seconds";
      c_rat_small = Metrics.counter metrics "rat.small_ops";
      c_rat_big = Metrics.counter metrics "rat.big_ops";
      c_rat_promoted = Metrics.counter metrics "rat.promotions";
      c_rat_demoted = Metrics.counter metrics "rat.demotions";
      wal_log = None;
      wal_checkpoint = None;
      wal_truncate = None;
      wal_every = 0;
      wal_since = 0;
      wal_last_seq = 0;
      wal_replaying = false;
    }
  in
  Metrics.set t.g_machines_up (float_of_int m);
  t

let submitted t = t.n
let completed t = t.num_completed

let active t =
  let k = ref 0 in
  for j = 0 to t.n - 1 do
    if t.jobs.(j).arrived && t.jobs.(j).completed_at = None then incr k
  done;
  !k

let starved t =
  let k = ref 0 in
  for j = 0 to t.n - 1 do
    let job = t.jobs.(j) in
    if job.arrived && job.parked && job.completed_at = None then incr k
  done;
  !k

(* Arrived, incomplete and not starved: the jobs the policy may schedule. *)
let schedulable t =
  let k = ref 0 in
  for j = 0 to t.n - 1 do
    let job = t.jobs.(j) in
    if job.arrived && (not job.parked) && job.completed_at = None then incr k
  done;
  !k

let machine_up t i =
  if i < 0 || i >= Array.length t.overlay then
    invalid_arg (Printf.sprintf "Engine.machine_up: machine %d out of range" i);
  W.machine_live t.overlay.(i)

let machines_up t =
  Array.fold_left (fun k s -> if W.machine_live s then k + 1 else k) 0 t.overlay

let find t id = Hashtbl.find_opt t.ids id

let job_completed t j =
  if j < 0 || j >= t.n then
    invalid_arg (Printf.sprintf "Engine.job_completed: job %d out of range" j);
  t.jobs.(j).completed_at <> None

let set_decision_cache t enabled =
  t.cache_enabled <- enabled;
  if not enabled then Hashtbl.reset t.decision_cache

let now t = t.now
let metrics t = t.metrics
let clock t = t.clock
let platform t = t.platform

let clock_date t = W.quantize (Clock.now t.clock -. t.origin)

let instance t =
  match t.inst with
  | Some i -> i
  | None ->
    if t.n = 0 then bug "no jobs submitted";
    let jobs = Array.sub t.jobs 0 t.n in
    let releases = Array.map (fun j -> j.arrival) jobs in
    let weights = Array.map (fun j -> j.weight) jobs in
    let m = Array.length t.platform.W.speeds in
    let cost = Array.init m (fun i -> Array.map (fun j -> j.column.(i)) jobs) in
    let inst = I.make ~releases ~weights cost in
    t.inst <- Some inst;
    inst

(* No live machine holds the job's bank: the masked column is all-[None],
   the paper's "every c_{i,j} = +∞" row. *)
let starved_column t column =
  let runnable = ref false in
  Array.iteri
    (fun i c -> if W.machine_live t.overlay.(i) && c <> None then runnable := true)
    column;
  not !runnable

(* The instance decisions are made against: [instance t] with down
   machines' costs masked to [None] (the paper's +∞).  Physically the base
   instance while the platform is healthy, so failure-free runs are
   bit-identical to the fault-unaware engine.  Starved jobs keep their
   healthy column — {!Sched_core.Instance.make} rejects all-[None] columns
   — but are parked out of the policy's sight, so nothing is ever
   scheduled against those phantom costs. *)
let decision_instance t =
  if W.healthy t.overlay then instance t
  else
    match t.masked with
    | Some i -> i
    | None ->
      if t.n = 0 then bug "no jobs submitted";
      let jobs = Array.sub t.jobs 0 t.n in
      let releases = Array.map (fun j -> j.arrival) jobs in
      let weights = Array.map (fun j -> j.weight) jobs in
      let columns =
        Array.map
          (fun j ->
            if starved_column t j.column then j.column
            else W.mask_column t.overlay j.column)
          jobs
      in
      let m = Array.length t.platform.W.speeds in
      let cost = Array.init m (fun i -> Array.map (fun col -> col.(i)) columns) in
      let inst = I.make ~releases ~weights cost in
      t.masked <- Some inst;
      inst

let push t job =
  if t.n = Array.length t.jobs then begin
    let cap = Stdlib.max 8 (2 * t.n) in
    let jobs = Array.make cap job in
    Array.blit t.jobs 0 jobs 0 t.n;
    t.jobs <- jobs;
    let remaining = Array.make cap Rat.one in
    Array.blit t.remaining 0 remaining 0 t.n;
    t.remaining <- remaining
  end;
  t.jobs.(t.n) <- job;
  t.remaining.(t.n) <- Rat.one;
  t.n <- t.n + 1;
  t.n - 1

(* --- durability ------------------------------------------------------ *)

(* Scheduling barrier: discard the opaque policy runner and the cached
   decision, exactly as a live submission does.  A snapshot taken right
   after [quiesce] therefore captures the *complete* engine state — the
   one piece that cannot be serialized (the policy's abstract state) has
   been reset to a function of the serializable rest — which is what makes
   a resumed engine bit-identical to the uninterrupted one: both rebuild
   the policy from the same jobs at the same point. *)
let quiesce t =
  if t.runner <> None then begin
    t.runner <- None;
    Metrics.incr t.c_rebuilds
  end;
  t.decision <- None;
  t.dirty <- true;
  t.batch_deadline <- None

let checkpoint t =
  match t.wal_checkpoint with
  | None -> false
  | Some save ->
    (* Barrier first: the snapshot must capture the post-barrier state the
       surviving run continues from. *)
    quiesce t;
    save ();
    (* The snapshot covers every record in the log; drop them.  Skipped
       during recovery replay — the tail still in the log after this point
       has not been re-appended, so wiping it would lose it.  (Stale
       records a crash leaves behind are skipped by seq on resume.) *)
    if not t.wal_replaying then Option.iter (fun f -> f ()) t.wal_truncate;
    t.wal_since <- 0;
    true

let set_durability t ~log ~checkpoint:save ~truncate ~every ~last_seq =
  if every < 0 then invalid_arg "Engine.set_durability: negative snapshot interval";
  t.wal_log <- Some log;
  t.wal_checkpoint <- Some save;
  t.wal_truncate <- Some truncate;
  t.wal_every <- every;
  t.wal_since <- 0;
  t.wal_last_seq <- last_seq

let last_seq t = t.wal_last_seq

let log_record t record =
  match t.wal_log with
  | Some log when not t.wal_replaying -> t.wal_last_seq <- log record
  | Some _ | None -> ()

(* One durable record was applied (live or replayed): advance the
   checkpoint cadence.  Counting replayed records too keeps the snapshot
   points of a resumed run aligned with the uninterrupted one — including
   re-taking a snapshot whose write was lost to the crash. *)
let bump t =
  if t.wal_log <> None then begin
    t.wal_since <- t.wal_since + 1;
    if t.wal_every > 0 && t.wal_since >= t.wal_every then ignore (checkpoint t)
  end

(* --- admission -------------------------------------------------------- *)

let make_job t ~id ~arrival ~bank ~num_motifs =
  let request = { W.arrival; bank; num_motifs } in
  let column = W.cost_column t.platform request in
  let fastest =
    Array.fold_left
      (fun acc c -> match (acc, c) with
        | None, c -> c
        | Some a, Some b -> Some (Rat.min a b)
        | Some a, None -> Some a)
      None column
    |> Option.get
  in
  let weight = match t.objective with `Flow -> Rat.one | `Stretch -> Rat.inv fastest in
  {
    id;
    arrival;
    bank;
    num_motifs;
    column;
    weight;
    fastest;
    arrived = false;
    parked = false;
    completed_at = None;
  }

let submit t ~id ?arrival ~bank ~num_motifs () =
  if num_motifs <= 0 then invalid_arg "Engine.submit: motif count must be positive";
  if bank < 0 || bank >= Array.length t.platform.W.bank_sizes then
    invalid_arg (Printf.sprintf "Engine.submit: bank %d out of range" bank);
  if Hashtbl.mem t.ids id then
    invalid_arg (Printf.sprintf "Engine.submit: duplicate request id %S" id);
  let arrival = match arrival with Some a -> a | None -> clock_date t in
  if Rat.compare arrival t.now < 0 then
    invalid_arg
      (Printf.sprintf "Engine.submit: arrival %s precedes engine time %s"
         (Rat.to_string arrival) (Rat.to_string t.now));
  let job = make_job t ~id ~arrival ~bank ~num_motifs in
  (* Validation done; the arrival date is resolved.  Make the event
     durable before any state changes. *)
  log_record t (Wal.Submit { id; arrival; bank; num_motifs });
  let idx = push t job in
  Hashtbl.add t.ids id idx;
  (* The instance grew: caches over the old job set are stale.  A live
     rebuild mid-run is counted; replay submits everything up front. *)
  t.inst <- None;
  t.masked <- None;
  if t.runner <> None then begin
    t.runner <- None;
    Metrics.incr t.c_rebuilds
    (* The current *decision* stays: it is validated shares over jobs that
       all still exist (indices are stable under growth), and executing it
       needs no policy state.  The newcomer forces a re-decision only when
       its arrival date fires — which is where the batch window coalesces
       a burst into one consultation instead of one per submit. *)
  end;
  Metrics.incr t.c_submitted;
  bump t;
  idx

(* --- policy plumbing ------------------------------------------------ *)

(* Parked (starved) jobs are withheld from the policy entirely: not in the
   views, not eligible, never announced.  They re-enter when a recovery
   makes them runnable again. *)
let views t =
  let rec go j acc =
    if j < 0 then acc
    else
      go (j - 1)
        (if t.jobs.(j).arrived && (not t.jobs.(j).parked) && t.jobs.(j).completed_at = None
         then
           { Sim.id = j; release = t.jobs.(j).arrival; weight = t.jobs.(j).weight;
             remaining = t.remaining.(j) }
           :: acc
         else acc)
  in
  go (t.n - 1) []

(* Schedulable jobs in announcement order (arrival date, then index) — the
   exact sequence a rebuilt policy state is re-announced, and therefore the
   canonical job enumeration the decision cache keys on. *)
let announced t =
  List.filter
    (fun j ->
      t.jobs.(j).arrived && (not t.jobs.(j).parked) && t.jobs.(j).completed_at = None)
    (List.init t.n (fun j -> j))
  |> List.sort (fun a b ->
         let c = Rat.compare t.jobs.(a).arrival t.jobs.(b).arrival in
         if c <> 0 then c else compare a b)

let runner t =
  match t.runner with
  | Some r -> r
  | None ->
    let (module P : Sim.POLICY) = t.policy in
    let state = P.init (decision_instance t) in
    (* Re-announce the surviving schedulable jobs, in arrival order. *)
    List.iter (fun j -> P.on_arrival state ~now:t.now ~job:j) (announced t);
    let r = Runner ((module P), state) in
    t.runner <- Some r;
    t.dirty <- true;
    r

let eligible_for t j =
  j < t.n && t.jobs.(j).arrived && (not t.jobs.(j).parked) && t.jobs.(j).completed_at = None

(* Canonical fingerprint of the masked decision instance: availability
   overlay plus the *shape* of every schedulable job — arrival age, bank,
   motif count, remaining fraction — in announcement order, rendered as
   exact strings, never lossy hashes.  At a rebuild barrier
   ([t.runner = None]) the policy state about to decide is [init] +
   re-announcements of exactly these jobs, so under the policy contract
   (honest, index-relative, time-translation equivariant — see
   DESIGN.md §13) equal fingerprints yield the same decision up to job
   renumbering and a [review_at] time shift, which is precisely the
   normalization [cached_decision] stores.  The cache is never consulted
   while a long-lived policy state (with history a fingerprint cannot
   see) is driving. *)
let fingerprint t =
  let b = Buffer.create 256 in
  Buffer.add_string b (policy_name t);
  Buffer.add_char b '|';
  Buffer.add_string b (match t.objective with `Flow -> "flow" | `Stretch -> "stretch");
  Buffer.add_char b '|';
  Array.iter
    (fun s ->
      match s with
      | W.Up -> Buffer.add_char b 'u'
      | W.Down -> Buffer.add_char b 'd'
      | W.Degraded f ->
        Buffer.add_char b 'g';
        Buffer.add_string b (Rat.to_string f))
    t.overlay;
  List.iter
    (fun j ->
      let job = t.jobs.(j) in
      Buffer.add_char b '|';
      Buffer.add_string b (Rat.to_string (Rat.sub t.now job.arrival));
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int job.bank);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int job.num_motifs);
      Buffer.add_char b ':';
      Buffer.add_string b (Rat.to_string t.remaining.(j)))
    (announced t);
  Buffer.contents b

let decide_fresh t =
  let (Runner ((module P), state)) = runner t in
  (* Every LP solve triggered by the policy — exact or float, cold or
     warm — is accounted to this engine by differencing the global solver
     instruments around the call, without the policy knowing about
     metrics.  [lp_solve_seconds] gets one sample per LP-using decision
     (the decision's total solver time), not one per solve. *)
  let before = Lp.Instrument.combined () in
  let module NC = Numeric.Counters in
  let rat_small0 = NC.small_ops () and rat_big0 = NC.big_ops () in
  let rat_promoted0 = NC.promotions () and rat_demoted0 = NC.demotions () in
  let d =
    Obs.Span.with_span "engine.decide" (fun () ->
        Obs.Span.set_str "policy" P.name;
        Obs.Span.set_int "active" (active t);
        P.decide state ~now:t.now ~active:(views t))
  in
  let delta = Lp.Instrument.(diff ~before (combined ())) in
  Metrics.add t.c_lp_solves delta.Lp.Instrument.solves;
  Metrics.add t.c_lp_warm delta.Lp.Instrument.warm_solves;
  Metrics.add t.c_lp_pivots1 delta.Lp.Instrument.pivots_phase1;
  Metrics.add t.c_lp_pivots2 delta.Lp.Instrument.pivots_phase2;
  Metrics.add t.c_lp_pivots_dual delta.Lp.Instrument.pivots_dual;
  if delta.Lp.Instrument.solves > 0 then
    Metrics.observe t.h_lp_seconds delta.Lp.Instrument.seconds;
  Metrics.add t.c_rat_small (NC.small_ops () - rat_small0);
  Metrics.add t.c_rat_big (NC.big_ops () - rat_big0);
  Metrics.add t.c_rat_promoted (NC.promotions () - rat_promoted0);
  Metrics.add t.c_rat_demoted (NC.demotions () - rat_demoted0);
  Sim.check_decision ~where:"Serve.Engine" ~name:P.name (decision_instance t)
    ~up:(fun i -> W.machine_live t.overlay.(i))
    ~eligible:(fun j ->
      j < t.n
      && t.jobs.(j).arrived
      && (not t.jobs.(j).parked)
      && t.jobs.(j).completed_at = None)
    ~now:t.now d;
  t.decision <- Some d;
  t.decided_at <- t.now;
  t.dirty <- false;
  t.batch_deadline <- None;
  Metrics.incr t.c_decisions;
  d

let decide t =
  if not (t.cache_enabled && t.runner = None) then decide_fresh t
  else begin
    let order = Array.of_list (announced t) in
    let key = fingerprint t in
    match Hashtbl.find_opt t.decision_cache key with
    | Some cd ->
      (* Hit: reconstitute against the current census without consulting
         the policy — or even building its state.  Re-validate
         defensively: a bad entry must fail loudly, not corrupt the
         schedule. *)
      let shares =
        List.map
          (fun (machine, pos, share) -> { Sim.machine; job = order.(pos); share })
          cd.cd_shares
      in
      let d =
        { Sim.shares; review_at = Option.map (Rat.add t.now) cd.cd_review_offset }
      in
      Metrics.incr t.c_cache_hits;
      Sim.check_decision ~where:"Serve.Engine" ~name:(policy_name t)
        (decision_instance t)
        ~up:(fun i -> W.machine_live t.overlay.(i))
        ~eligible:(eligible_for t) ~now:t.now d;
      t.decision <- Some d;
      t.decided_at <- t.now;
      t.dirty <- false;
      t.batch_deadline <- None;
      d
    | None ->
      Metrics.incr t.c_cache_misses;
      let d = decide_fresh t in
      (* Canonicalize and insert.  Every share names an eligible job
         (validated above), so the position lookup is total. *)
      let pos = Hashtbl.create (Array.length order) in
      Array.iteri (fun p j -> Hashtbl.replace pos j p) order;
      let cd =
        {
          cd_shares =
            List.map
              (fun (s : Sim.share) -> (s.machine, Hashtbl.find pos s.job, s.share))
              d.Sim.shares;
          cd_review_offset =
            Option.map (fun r -> Rat.sub r t.now) d.Sim.review_at;
        }
      in
      (* Entries under a retired overlay are purged eagerly
         ([platform_changed]); this bound only guards pathological
         same-overlay churn. *)
      if Hashtbl.length t.decision_cache >= 128 then Hashtbl.reset t.decision_cache;
      Hashtbl.replace t.decision_cache key cd;
      d
  end

let fire_due_arrivals t =
  let due = ref [] in
  for j = t.n - 1 downto 0 do
    if (not t.jobs.(j).arrived) && Rat.compare t.jobs.(j).arrival t.now <= 0 then
      due := j :: !due
  done;
  match !due with
  | [] -> ()
  | due ->
    let parked, runnable =
      List.partition (fun j -> starved_column t t.jobs.(j).column) due
    in
    (* Nothing live can run a starved job: park it instead of announcing
       it — Mct's arrival handler, for one, asserts some machine can take
       the job. *)
    List.iter
      (fun j ->
        t.jobs.(j).arrived <- true;
        t.jobs.(j).parked <- true)
      parked;
    (match runnable with
     | [] -> ()
     | runnable ->
       (* Build the runner before flipping [arrived], or a fresh rebuild
          would announce the batch a second time. *)
       let (Runner ((module P), state)) = runner t in
       List.iter (fun j -> t.jobs.(j).arrived <- true) runnable;
       (* The whole instant's arrivals are one batch: policies hear about
          the burst in a single callback and can rebalance once. *)
       P.on_batch_arrival state ~now:t.now ~jobs:runnable;
       (* Batching: within one window of the last decision the current
          plan keeps running and the newcomers wait for the coalesced
          re-decision. *)
       if t.dirty || t.decision = None || Rat.is_zero t.batch_window then
         t.dirty <- true
       else begin
         let deadline = Rat.add t.decided_at t.batch_window in
         if Rat.compare deadline t.now <= 0 then t.dirty <- true
         else begin
           (match t.batch_deadline with
            | None -> t.batch_deadline <- Some deadline
            | Some _ -> ());
           Metrics.add t.c_coalesced (List.length runnable)
         end
       end);
    Metrics.set t.g_queue (float_of_int (active t))

let complete t j =
  let job = t.jobs.(j) in
  job.completed_at <- Some t.now;
  t.num_completed <- t.num_completed + 1;
  t.dirty <- true;
  (* The finishing decision may have outlived its policy state: a live
     submission (or a decision-cache hit) leaves the validated shares
     running with [runner = None].  There is nothing to retract then —
     the eventual rebuild announces only surviving jobs — so the
     completion callback fires only on a runner that announced [j]. *)
  (match t.runner with
   | Some (Runner ((module P), state)) -> P.on_completion state ~now:t.now ~job:j
   | None -> ());
  let flow = Rat.sub t.now job.arrival in
  Metrics.incr t.c_completed;
  Metrics.observe t.h_flow (Rat.to_float flow);
  Metrics.observe t.h_weighted (Rat.to_float (Rat.mul job.weight flow));
  Metrics.observe t.h_stretch (Rat.to_float (Rat.div flow job.fastest));
  Metrics.set t.g_queue (float_of_int (active t))

(* --- machine failures ----------------------------------------------- *)

(* In-flight work on a machine that just died is lost: re-credit every
   incomplete job with the fraction it had processed there and drop those
   slices from the output.  Slices of *completed* jobs stay — their
   responses already left the building.  The decision's segments were
   clipped at the failure instant, so every dropped slice lies entirely in
   the machine's up period and its fraction is exact. *)
let drop_lost_slices t i =
  let lost = ref 0 in
  let keep (s : S.slice) =
    let job = t.jobs.(s.job) in
    if s.machine = i && job.completed_at = None then begin
      incr lost;
      let c = Option.get job.column.(i) in
      t.remaining.(s.job) <-
        Rat.add t.remaining.(s.job) (Rat.div (Rat.sub s.stop s.start) c);
      false
    end
    else true
  in
  t.slices <- List.filter keep t.slices;
  Metrics.add t.c_slices_lost !lost

(* The overlay changed under us: recompute which jobs are starved, tell
   the policy, and force the next step to re-decide against the reduced
   (or re-grown) platform. *)
let platform_changed t =
  t.masked <- None;
  (* Eager invalidation.  The overlay is part of every cache key, so stale
     entries could never *hit* — but a fail/recover cycle returning to a
     previous overlay must re-consult the policy, not resurrect plans made
     before the disruption, and the table should not hoard entries for
     overlays that may never recur. *)
  Hashtbl.reset t.decision_cache;
  let unparked = ref [] in
  for j = 0 to t.n - 1 do
    let job = t.jobs.(j) in
    if job.arrived && job.completed_at = None then begin
      let s = starved_column t job.column in
      if s && not job.parked then job.parked <- true
      else if (not s) && job.parked then begin
        job.parked <- false;
        unparked := j :: !unparked
      end
    end
  done;
  let unparked =
    List.sort
      (fun a b ->
        let c = Rat.compare t.jobs.(a).arrival t.jobs.(b).arrival in
        if c <> 0 then c else compare a b)
      !unparked
  in
  (match t.runner with
   | None -> ()  (* the next [runner] builds against the new platform *)
   | Some (Runner ((module P), state)) -> (
     match P.on_platform_change state ~now:t.now ~inst:(decision_instance t) with
     | `Adapted ->
       (* The policy kept its state; jobs that were parked the whole time
          were never announced, so introduce the rescued ones now. *)
       List.iter (fun j -> P.on_arrival state ~now:t.now ~job:j) unparked
     | `Rebuild ->
       t.runner <- None;
       Metrics.incr t.c_rebuilds));
  t.decision <- None;
  t.dirty <- true;
  t.batch_deadline <- None;
  Metrics.set t.g_queue (float_of_int (active t))

(* Apply a fault at the current engine time.  Idempotent: failing a dead
   machine or recovering a live one is a no-op. *)
let apply_fault t fault =
  let changed =
    match fault with
    | Trace.Fail i ->
      if not (W.machine_live t.overlay.(i)) then false
      else begin
        t.overlay.(i) <- W.Down;
        Metrics.incr t.c_failures;
        (match t.lost_work with `Lost -> drop_lost_slices t i | `Preserved -> ());
        true
      end
    | Trace.Recover i ->
      if W.machine_live t.overlay.(i) then false
      else begin
        t.overlay.(i) <- W.Up;
        Metrics.incr t.c_recoveries;
        true
      end
  in
  if changed then begin
    if Obs.Sink.enabled () then begin
      let kind, machine =
        match fault with
        | Trace.Fail i -> ("fail", i)
        | Trace.Recover i -> ("recover", i)
      in
      Obs.Event.emit "engine.fault"
        ~attrs:
          [
            ("kind", Obs.Sink.Str kind);
            ("machine", Obs.Sink.Int machine);
            ("at", Obs.Sink.Str (Rat.to_string t.now));
          ]
    end;
    Metrics.set t.g_machines_up (float_of_int (machines_up t));
    platform_changed t
  end

let inject t ~at fault =
  let m = Array.length t.platform.W.speeds in
  (match fault with
   | Trace.Fail i | Trace.Recover i ->
     if i < 0 || i >= m then
       invalid_arg (Printf.sprintf "Engine.inject: machine %d out of range" i));
  log_record t (Wal.Inject { at; fault });
  (if Rat.compare at t.now <= 0 then
     (* The date is already past (e.g. a live [fail] command racing the
        clock): apply it right now rather than rewriting history. *)
     apply_fault t fault
   else begin
     let rec insert = function
       | ((a, _) as hd) :: tl when Rat.compare a at <= 0 -> hd :: insert tl
       | rest -> (at, fault) :: rest
     in
     t.faults <- insert t.faults
   end);
  bump t

let fire_due_faults t =
  let rec go () =
    match t.faults with
    | (at, fault) :: rest when Rat.compare at t.now <= 0 ->
      t.faults <- rest;
      apply_fault t fault;
      go ()
    | _ -> ()
  in
  go ()

let next_fault t = match t.faults with [] -> None | (at, _) :: _ -> Some at

let next_arrival_after t date =
  let best = ref None in
  for j = 0 to t.n - 1 do
    if not t.jobs.(j).arrived then begin
      let a = t.jobs.(j).arrival in
      if Rat.compare a date > 0 then
        match !best with
        | None -> best := Some a
        | Some b -> if Rat.compare a b < 0 then best := Some a
    end
  done;
  !best

let advance_time t date =
  (* During recovery replay the events being applied happened in the past:
     engine time advances logically without waiting on the wall clock
     (Snapshot.resume rebases the clock once replay is done). *)
  if not t.wal_replaying then Clock.advance_to t.clock (t.origin +. Rat.to_float date);
  t.now <- date

let append_slices t segment_slices =
  List.iter
    (fun (s : S.slice) ->
      (* Defensive incremental validation: machine-disjoint, release-
         respecting, no over-processing.  Violations are engine bugs. *)
      if Rat.compare s.start t.last_stop.(s.machine) < 0 then
        bug "slice overlaps on machine %d" s.machine;
      if Rat.compare s.start t.jobs.(s.job).arrival < 0 then
        bug "slice starts before release of job %d" s.job;
      if Rat.sign (t.remaining.(s.job)) < 0 then bug "job %d over-processed" s.job;
      t.last_stop.(s.machine) <- s.stop;
      t.slices <- s :: t.slices;
      Metrics.incr t.c_slices)
    segment_slices

(* One pass of the event loop: process everything up to [limit] (None =
   until all jobs complete).  Mirrors Sim.run's loop, with the clock in
   charge of real time and batching folded into the event set. *)
let step t ~limit =
  let guard = ref (100_000 + (1000 * t.n) + (10 * List.length t.faults)) in
  let within date = match limit with None -> true | Some l -> Rat.compare date l <= 0 in
  let min_opt a b =
    match (a, b) with
    | None, c | c, None -> c
    | Some a, Some b -> Some (Rat.min a b)
  in
  let continue = ref true in
  while !continue do
    decr guard;
    if !guard < 0 then
      invalid_arg
        (Printf.sprintf "Serve.Engine(%s): no progress (possible livelock)" (policy_name t));
    (* Faults strictly before arrivals at the same instant: a request
       arriving as its last capable machine dies must be parked, and one
       arriving at the recovery must be announced. *)
    fire_due_faults t;
    fire_due_arrivals t;
    if schedulable t = 0 then begin
      (* Idle: empty, or only starved jobs waiting for a recovery.  Sleep
         until something changes — an arrival or an injected fault — and
         stop (even mid-drain) when nothing ever will: a permanently
         starved job surfaces as incomplete, it does not livelock. *)
      match min_opt (next_arrival_after t t.now) (next_fault t) with
      | Some a when within a -> advance_time t a
      | Some _ | None ->
        (match limit with
         | Some l when Rat.compare l t.now > 0 -> advance_time t l
         | _ -> ());
        continue := false
    end
    else begin
      let d =
        match t.decision with
        | Some d when not t.dirty -> d
        | _ -> decide t
      in
      let inst = decision_instance t in
      let rate = Sim.progress_rates inst d in
      let completion_candidate =
        List.fold_left
          (fun acc (v : Sim.job_view) ->
            if Rat.sign rate.(v.id) > 0 then begin
              let c = Rat.add t.now (Rat.div v.remaining rate.(v.id)) in
              match acc with None -> Some c | Some b -> Some (Rat.min b c)
            end
            else acc)
          None (views t)
      in
      let arrival_candidate = next_arrival_after t t.now in
      let event =
        List.fold_left
          (fun acc c ->
            match (acc, c) with
            | None, c -> c
            | Some a, Some b -> Some (Rat.min a b)
            | Some a, None -> Some a)
          None
          [
            completion_candidate;
            arrival_candidate;
            next_fault t;
            d.Sim.review_at;
            t.batch_deadline;
          ]
      in
      match event with
      | None ->
        invalid_arg
          (Printf.sprintf
             "Serve.Engine(%s): active jobs but no progress and no future event"
             (policy_name t))
      | Some event ->
        if Rat.compare event t.now <= 0 then
          invalid_arg
            (Printf.sprintf "Serve.Engine(%s): time did not advance" (policy_name t));
        let te, clipped =
          match limit with
          | Some l when Rat.compare l event < 0 -> (l, true)
          | _ -> (event, false)
        in
        if Rat.compare te t.now > 0 then begin
          let segment = Sim.materialize inst ~now:t.now ~horizon:te d ~remaining:t.remaining in
          advance_time t te;
          append_slices t segment;
          Metrics.incr t.c_segments;
          (* A partial segment consumed part of the plan's shares in time
             but the share *rates* are unchanged, so the decision stays
             valid for the rest of its window. *)
          for j = 0 to t.n - 1 do
            if t.jobs.(j).arrived && t.jobs.(j).completed_at = None then begin
              if Rat.sign t.remaining.(j) < 0 then bug "job %d over-processed" j;
              if Rat.is_zero t.remaining.(j) then complete t j
            end
          done
        end;
        if not clipped then begin
          (match d.Sim.review_at with
           | Some r when Rat.compare r t.now <= 0 -> t.dirty <- true
           | _ -> ());
          match t.batch_deadline with
          | Some b when Rat.compare b t.now <= 0 ->
            t.dirty <- true;
            t.batch_deadline <- None
          | _ -> ()
        end
        else continue := false
    end
  done

let run_until t date =
  if Rat.compare date t.now > 0 then begin
    (* The resolved target date goes in the record, so replay never
       re-reads a clock: [Advance] covers virtual ticks and wall catch-ups
       alike. *)
    log_record t (Wal.Advance date);
    step t ~limit:(Some date);
    bump t
  end

let catch_up t =
  if not (Clock.is_virtual t.clock) then begin
    let d = Clock.now t.clock -. t.origin in
    (* A deranged wall clock (NaN or infinite) must never become an engine
       date — the same guard the server applies to [tick] seconds. *)
    if Float.is_finite d && d > 0. then run_until t (W.quantize d)
  end

let drain t =
  if t.num_completed < t.n then begin
    log_record t Wal.Drain;
    step t ~limit:None;
    bump t
  end

let schedule t =
  if t.n = 0 then invalid_arg "Engine.schedule: nothing submitted";
  S.make (instance t) (List.rev t.slices)

(* --- recovery --------------------------------------------------------- *)

let apply_record t ~seq record =
  t.wal_replaying <- true;
  Fun.protect
    ~finally:(fun () -> t.wal_replaying <- false)
    (fun () ->
      t.wal_last_seq <- seq;
      match record with
      | Wal.Submit { id; arrival; bank; num_motifs } ->
        ignore (submit t ~id ~arrival ~bank ~num_motifs ())
      | Wal.Inject { at; fault } -> inject t ~at fault
      | Wal.Advance date -> run_until t date
      | Wal.Drain -> drain t)

let rebase t = t.origin <- Clock.now t.clock -. Rat.to_float t.now

(* --- snapshot state --------------------------------------------------- *)

type job_state = {
  js_id : string;
  js_arrival : Rat.t;
  js_bank : int;
  js_num_motifs : int;
  js_remaining : Rat.t;
  js_arrived : bool;
  js_parked : bool;
  js_completed_at : Rat.t option;
}

type state = {
  st_policy : string;
  st_batch_window : Rat.t;
  st_objective : objective;
  st_lost_work : lost_work;
  st_now : Rat.t;
  st_jobs : job_state list;  (* in submission (= policy index) order *)
  st_overlay : W.machine_state array;
  st_faults : (Rat.t * Trace.fault) list;  (* pending, sorted by date *)
  st_slices : S.slice list;  (* chronological *)
  st_last_stop : Rat.t array;
  st_num_completed : int;
  st_metrics : (string * Metrics.dump_item) list;
  st_cache : (string * cached_decision) list;  (* sorted by fingerprint *)
}

let dump t =
  {
    st_policy = policy_name t;
    st_batch_window = t.batch_window;
    st_objective = t.objective;
    st_lost_work = t.lost_work;
    st_now = t.now;
    st_jobs =
      List.init t.n (fun j ->
          let job = t.jobs.(j) in
          {
            js_id = job.id;
            js_arrival = job.arrival;
            js_bank = job.bank;
            js_num_motifs = job.num_motifs;
            js_remaining = t.remaining.(j);
            js_arrived = job.arrived;
            js_parked = job.parked;
            js_completed_at = job.completed_at;
          });
    st_overlay = Array.copy t.overlay;
    st_faults = t.faults;
    st_slices = List.rev t.slices;
    st_last_stop = Array.copy t.last_stop;
    st_num_completed = t.num_completed;
    st_metrics = Metrics.dump t.metrics;
    (* The cache survives a checkpoint in the live engine (quiescing drops
       the policy runner, not remembered plans), so a resumed engine must
       get it back or its hit/miss counters — and therefore its state
       dump — diverge from an uninterrupted run.  Sorted so equal caches
       dump identically regardless of hash-table iteration order. *)
    st_cache =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.decision_cache []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let restore ~clock ~policy platform st =
  let (module P : Sim.POLICY) = policy in
  if P.name <> st.st_policy then
    invalid_arg
      (Printf.sprintf "Engine.restore: snapshot was taken under policy %s, not %s"
         st.st_policy P.name);
  let m = Array.length platform.W.speeds in
  if Array.length st.st_overlay <> m then
    invalid_arg "Engine.restore: overlay size does not match the platform";
  if Array.length st.st_last_stop <> m then
    invalid_arg "Engine.restore: machine count does not match the platform";
  let t =
    create ~batch_window:st.st_batch_window ~objective:st.st_objective
      ~lost_work:st.st_lost_work ~clock ~policy platform
  in
  t.now <- st.st_now;
  rebase t;
  List.iter
    (fun js ->
      if js.js_bank < 0 || js.js_bank >= Array.length platform.W.bank_sizes then
        invalid_arg
          (Printf.sprintf "Engine.restore: job %S references bank %d out of range"
             js.js_id js.js_bank);
      if Hashtbl.mem t.ids js.js_id then
        invalid_arg (Printf.sprintf "Engine.restore: duplicate request id %S" js.js_id);
      let job =
        make_job t ~id:js.js_id ~arrival:js.js_arrival ~bank:js.js_bank
          ~num_motifs:js.js_num_motifs
      in
      job.arrived <- js.js_arrived;
      job.parked <- js.js_parked;
      job.completed_at <- js.js_completed_at;
      let idx = push t job in
      t.remaining.(idx) <- js.js_remaining;
      Hashtbl.add t.ids js.js_id idx)
    st.st_jobs;
  Array.blit st.st_overlay 0 t.overlay 0 m;
  t.faults <- st.st_faults;
  t.slices <- List.rev st.st_slices;
  Array.blit st.st_last_stop 0 t.last_stop 0 m;
  t.num_completed <- st.st_num_completed;
  List.iter (fun (k, cd) -> Hashtbl.replace t.decision_cache k cd) st.st_cache;
  (* Last: the dump holds the exact instrument contents (including the
     gauges [create] pre-set), so loading it reproduces reports bit for
     bit. *)
  Metrics.load t.metrics st.st_metrics;
  t

let replay ?batch_window ?objective ?lost_work ~policy (trace : Trace.t) =
  let clock = Clock.virtual_ () in
  let t =
    create ?batch_window ?objective ?lost_work ~clock ~policy trace.Trace.platform
  in
  List.iter
    (fun (e : Trace.entry) ->
      ignore
        (submit t ~id:e.Trace.id ~arrival:e.Trace.request.W.arrival
           ~bank:e.Trace.request.W.bank ~num_motifs:e.Trace.request.W.num_motifs ()))
    trace.Trace.entries;
  List.iter (fun (e : Trace.event) -> inject t ~at:e.Trace.at e.Trace.fault) trace.Trace.events;
  drain t;
  t
