(** Line-protocol front-end over an {!Engine}.

    The protocol is newline-delimited, human-typable, and identical on
    stdin/stdout and on a Unix-domain socket.  Every command produces zero
    or more data lines followed by exactly one terminator line starting
    with [ok] or [err]:

    {v
    submit ID BANK MOTIFS   admit a request now; ok submitted ID job=K
    status                  ok now=T submitted=N active=A completed=C
                            up=U/M starved=S
    metrics [json]          dump the metrics registry, then ok
    trace on [PATH]         start tracing: to an in-memory ring buffer,
                            or as JSON lines to PATH
    trace off               stop tracing (flushes and closes a file sink)
    spans                   dump the ring-buffered trace records as one
                            JSON array line ([] when not ring-tracing)
    fail MACHINE            take a machine down now; ok machine I down ...
    recover MACHINE         bring a machine back up; ok machine I up ...
    tick SECONDS            advance a virtual clock; err on a wall clock
    drain                   run until every admitted request completes
                            (or only starved requests remain)
    snapshot                checkpoint the engine state and truncate the
                            write-ahead log; err when --wal is not armed
    quit                    ok bye, then the connection/loop ends
    v}

    [tick] rejects non-positive and non-finite seconds ([nan], [inf]) —
    only a finite positive duration can become an engine date.

    [metrics json] and [spans] each emit exactly one well-formed JSON
    line before their [ok], whatever the engine state — an empty registry
    dumps [{"counters":{},"gauges":{},"histograms":{}}], an empty or
    absent ring dumps [[]].  [trace] installs the process-wide
    [Obs.Sink], so traces cover every engine in the process.

    On a wall clock the server catches the engine up to the current date
    before executing each command, so [status] and [metrics] reflect real
    elapsed time.  [#]-prefixed lines and blank lines are ignored. *)

type t

val create : Engine.t -> t

val handle_line : t -> string -> string list * [ `Continue | `Quit ]
(** Execute one command; protocol logic only, no I/O — the unit the
    scripted tests drive.  Serialized on the server's internal lock, so
    concurrent sessions interleave whole commands, never partial engine
    updates. *)

val run : t -> in_channel -> out_channel -> unit
(** Serve until [quit] or end of input, one command per line. *)

val run_socket : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (atomically replacing any stale
    file: the socket is bound under a temporary name and renamed into
    place, so a racing daemon can never unlink a peer's live socket) and
    serve until a client sends [quit] or the process receives SIGTERM.
    Each connection is served by its own domain, with commands serialized
    on the engine lock, so an idle client never blocks another client's
    session.  On exit every client is hung up, all sessions are joined,
    and the socket file is removed — but only if it is still this
    daemon's (a later daemon that took over the name keeps its socket).
    SIGPIPE is ignored for the process and per-client I/O errors are
    contained: a client that vanishes mid-session (even mid-write) only
    ends its own session, the daemon keeps accepting. *)
