(** Line-protocol front-end over an {!Engine} — protocol version 2.

    The protocol is newline-delimited, human-typable, and identical on
    stdin/stdout and on a Unix-domain socket.  On connect the server sends
    one banner line, [hello dlsched proto=2].  Every command then produces
    zero or more data lines followed by exactly one terminator line
    starting with [ok] or [err]:

    {v
    submit ID BANK MOTIFS   admit a request now; ok submitted ID job=K
                            (with an admission valve: ... fires_at=T, or
                            err shed retry_after=T under backpressure)
    status                  ok now=T submitted=N active=A completed=C
                            up=U/M starved=S
    metrics [json]          dump the metrics registry, then ok
    trace on [PATH]         start tracing: to an in-memory ring buffer,
                            or as JSON lines to PATH
    trace off               stop tracing (flushes and closes a file sink)
    spans                   dump the ring-buffered trace records as one
                            JSON array line ([] when not ring-tracing)
    fail MACHINE            take a machine down now; ok machine I down ...
    recover MACHINE         bring a machine back up; ok machine I up ...
    tick SECONDS            advance a virtual clock; err on a wall clock
    drain                   run until every admitted request completes
                            (or only starved requests remain)
    snapshot                checkpoint the engine state and truncate the
                            write-ahead log; err when --wal is not armed
    help                    list the commands and error codes, then ok
    quit                    ok bye, then the connection/loop ends
    v}

    {b Error grammar.}  Every error reply is [err CODE detail...] with a
    stable snake_case [CODE] from {!error_codes}: [usage] (malformed
    arguments), [bad_request] (well-formed but rejected — duplicate id,
    bad bank, out-of-range machine), [io] (sink file errors),
    [wall_clock] ([tick] outside a virtual clock), [no_wal] ([snapshot]
    with no log armed), [shed] (admission backpressure, with a
    [retry_after=SECONDS] hint), [unknown_command].  Scripts dispatch on
    the code; the free-text detail after it is for humans and may change.
    Input stays proto=1-compatible: the command grammar is unchanged, so
    clients that merely send commands and pattern-match on [ok]/[err]
    prefixes keep working once they skip the banner.

    [tick] rejects non-positive and non-finite seconds ([nan], [inf]) —
    only a finite positive duration can become an engine date.

    [metrics json] and [spans] each emit exactly one well-formed JSON
    line before their [ok], whatever the engine state — an empty registry
    dumps [{"counters":{},"gauges":{},"histograms":{}}], an empty or
    absent ring dumps [[]].  [trace] installs the process-wide
    [Obs.Sink], so traces cover every engine in the process.

    On a wall clock the server catches the engine up to the current date
    before executing each command, so [status] and [metrics] reflect real
    elapsed time.  [#]-prefixed lines and blank lines are ignored. *)

type t

val create : ?admission:Admission.t -> Engine.t -> t
(** [admission], when given, must wrap the same engine; [submit] commands
    then pass through its batching and load-shedding valve (and its
    bookkeeping is polled as part of every command). *)

val banner : string
(** The [hello dlsched proto=2] greeting, sent once per connection. *)

val error_codes : string list
(** Every CODE an [err] reply may carry.  The protocol-grammar lint test
    checks each [errf] call site in the implementation against this
    list. *)

val ok_heads : string list
(** First token of every [ok ...] payload the server emits (bare [ok]
    terminators aside); same lint contract as {!error_codes}. *)

val handle_line : t -> ?client:string -> string -> string list * [ `Continue | `Quit ]
(** Execute one command; protocol logic only, no I/O (the banner is the
    transport's job) — the unit the scripted tests drive.  [client]
    (default ["anon"]) names the submitter for per-client admission
    accounting.  Serialized on the server's internal lock, so concurrent
    sessions interleave whole commands, never partial engine updates. *)

val run : t -> in_channel -> out_channel -> unit
(** Send the banner, then serve until [quit] or end of input, one command
    per line (all under client name ["stdio"]). *)

val run_socket : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (atomically replacing any stale
    file: the socket is bound under a temporary name and renamed into
    place, so a racing daemon can never unlink a peer's live socket) and
    serve until a client sends [quit] or the process receives SIGTERM.
    Each connection is served by its own domain and greeted with the
    banner; commands are serialized on the engine lock, so an idle client
    never blocks another client's session.  Connections are named
    [client-1], [client-2], ... in accept order for per-client admission
    accounting.  On exit every client is hung up, all sessions are
    joined, and the socket file is removed — but only if it is still this
    daemon's (a later daemon that took over the name keeps its socket).
    SIGPIPE is ignored for the process and per-client I/O errors are
    contained: a client that vanishes mid-session (even mid-write) only
    ends its own session, the daemon keeps accepting. *)
