(** Deprecated alias for {!Obs.Registry}.

    The metrics implementation moved into the observability subsystem;
    this module remains as a compatibility shim — every type is an alias,
    so registries flow freely between the two names ([Engine.metrics]
    returns an [Obs.Registry.t]).  New code should call [Obs.Registry]
    directly. *)

type t = Obs.Registry.t
type counter = Obs.Registry.counter
type gauge = Obs.Registry.gauge
type histogram = Obs.Registry.histogram

val create : unit -> t

val global : t
(** [Obs.Registry.global], the process-wide default registry. *)

val counter : t -> string -> counter
(** Find-or-create; the same name always returns the same instrument. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
(** Sets the current value; the all-time peak is tracked on the side. *)

val value : gauge -> float
val peak : gauge -> float

val observe : histogram -> float -> unit

(** {1 Reading histograms} *)

val samples : histogram -> int

val quantile : histogram -> float -> float
(** Exact quantile with linear interpolation between order statistics;
    [quantile h 0.5] is the median.  [nan] on an empty histogram.
    @raise Invalid_argument if the level is outside [\[0, 1\]]. *)

val mean : histogram -> float
(** [nan] on an empty histogram. *)

val hsum : histogram -> float
(** Sum of all samples; [0.] on an empty histogram. *)

val hmin : histogram -> float
val hmax : histogram -> float

(** {1 Reports} *)

val to_text : t -> string
(** One instrument per line; histograms report
    [count/min/mean/p50/p95/p99/max]. *)

val to_json : t -> string
(** [{"counters":{...},"gauges":{...},"histograms":{...}}] with the same
    fields as the text report. *)
