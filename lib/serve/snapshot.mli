(** Engine snapshots and [--resume] recovery orchestration.

    A durability directory ([dlsched serve --wal DIR]) holds [DIR/meta]
    (the engine state at arm time, recovery base before any checkpoint),
    [DIR/snapshot] (the latest checkpoint, atomically replaced) and
    [DIR/wal] (the {!Wal} event log).  Snapshots are line-oriented ASCII —
    rationals in exact {!Numeric.Rat} text, floats in lossless hexadecimal
    — closed by an Adler-32 trailer; they embed the platform in {!Trace}'s
    canonical text form and the engine state as {!Engine.dump} produces
    it.

    Recovery loads the newest base, restores the engine
    ({!Engine.restore}) and replays the WAL tail through the live code
    paths ({!Engine.apply_record}), yielding an engine bit-identical to
    one that never crashed (DESIGN.md §11).

    Checkpoint writes emit a [snapshot.write] span and tally
    [wal.snapshots] / [wal.snapshot_bytes] in {!Obs.Registry.global}. *)

type handle
(** An armed durability directory: the open WAL writer plus its paths.
    {!close} it when the engine shuts down. *)

val arm : ?snapshot_every:int -> dir:string -> Engine.t -> handle
(** Create [dir] if needed, write [DIR/meta] from the engine's current
    state, open the WAL and {!Engine.set_durability} the engine.  Call on
    a freshly created engine, before any event.  [snapshot_every] > 0
    checkpoints automatically after that many logged records (default [0]:
    checkpoints only on the server's [snapshot] command).
    @raise Invalid_argument if [dir] already holds serving state (resume
    it instead of silently overwriting). *)

val resume :
  ?snapshot_every:int ->
  ?decision_cache:bool ->
  dir:string ->
  clock:Clock.t ->
  policies:(module Online.Sim.POLICY) list ->
  unit ->
  handle * Engine.t
(** Recover: load [DIR/snapshot] (or [DIR/meta] if no checkpoint was ever
    taken), resolve the recorded policy by name from [policies], restore
    the engine, replay the WAL tail (skipping records a lost truncation
    left below the snapshot's seq; truncating any torn tail a mid-append
    crash left), re-arm durability, and {!Engine.rebase} the clock so the
    downtime is excised.  [decision_cache] (default [false]) must match
    the crashed run's setting — like [snapshot_every], it is engine
    configuration, not logged state — or the replayed cache counters
    diverge from the uninterrupted run's.
    @raise Invalid_argument on a missing/corrupt directory, a checksum
    mismatch, or an unknown policy name. *)

val close : handle -> unit

val dir : handle -> string

(** {1 Snapshot files}

    Exposed for tests and tooling; [arm]/[resume] are the normal entry
    points. *)

val state_to_string :
  seq:int -> platform:Gripps.Workload.platform -> Engine.state -> string
(** Canonical text form (checksum trailer included).  Bit-identity of two
    engine states can be checked by comparing these strings.
    @raise Invalid_argument on state that cannot round-trip (a request id
    or metric name containing whitespace). *)

val state_of_string : string -> int * Gripps.Workload.platform * Engine.state
(** Inverse of {!state_to_string}.
    @raise Invalid_argument with a line-numbered message on malformed
    input or a checksum mismatch. *)

val save_file :
  string -> seq:int -> platform:Gripps.Workload.platform -> Engine.state -> unit
(** Atomic write: temp file, [fsync], rename, directory [fsync]. *)

val load_file : string -> int * Gripps.Workload.platform * Engine.state

val meta_file : string -> string
val snapshot_file : string -> string
val wal_file : string -> string
