(** Pluggable time source for the serving engine.

    The engine never reads time directly: it asks a clock.  A {!virtual_}
    clock only moves when the engine advances it — replay of a recorded
    trace and the test-suite both finish in microseconds of wall time
    regardless of the simulated span.  A {!wall} clock is backed by
    [Unix.gettimeofday] and {e sleeps} through advances, which is what a
    live daemon wants.

    Times are float seconds since the clock's epoch (0 for a virtual
    clock, the Unix epoch for a wall clock).  The engine quantizes them to
    exact centisecond rationals at the admission boundary
    ({!Gripps.Workload.quantize}); inside the engine all arithmetic is
    exact. *)

type t

val virtual_ : ?start:float -> unit -> t
(** A clock that moves only through {!advance_to}.  [start] defaults
    to [0.]. *)

val wall : unit -> t
(** The system clock.  {!advance_to} sleeps until the target date
    (interruption-tolerant); advancing to a past date is a no-op.

    Wall time is {e monotonized}: [Unix.gettimeofday] may step backwards
    (NTP corrections), but {!now} folds every observed backwards step
    into an internal offset and never regresses, and {!advance_to}
    credits each completed sleep to that monotonic view — so a clock
    stepped back mid-sleep cannot make the loop oversleep unboundedly,
    and the engine's catch-up never observes time running in reverse. *)

val wall_with : now:(unit -> float) -> sleep:(float -> unit) -> unit -> t
(** A wall clock over injected time and sleep functions — a test hook
    for exercising the monotonization logic against scripted clock
    steps; [sleep] may raise [Unix_error (EINTR, _, _)] to simulate
    interruptions.  [wall ()] is
    [wall_with ~now:Unix.gettimeofday ~sleep:Unix.sleepf ()]. *)

val now : t -> float

val advance_to : t -> float -> unit
(** Move the clock forward to the given date.  Monotonic: a target earlier
    than {!now} leaves the clock where it is (never moves backwards). *)

val is_virtual : t -> bool
(** True for {!virtual_} clocks — replay mode; lets front-ends refuse
    commands that only make sense on one kind of clock. *)
