(** Admission control in front of {!Engine}: batched re-decides, decision
    caching and load shedding.

    The engine is happy to re-plan on every arrival; under a bursty open
    stream that is both wasteful (the re-optimizing policies solve LPs)
    and unbounded (every request is accepted no matter the backlog).  This
    front-end is the policy-free valve between the wire protocol and the
    engine:

    {b Batching.}  Submits accepted within one coalescing [window] are
    given the {e same future arrival date} — the end of the currently open
    window — so the engine fires them as a single batch
    ({!Online.Sim.POLICY.on_batch_arrival}) and re-plans once per window
    instead of once per request.  Because the batch is expressed purely as
    arrival dates on ordinary {!Engine.submit} calls, every queued request
    is already WAL-durable the moment it is acknowledged: a crash in the
    middle of an open window replays to the same state, with no
    admission-side buffer to lose ({!Wal}, DESIGN.md §13).

    {b Decision caching.}  [cache = true] arms {!Engine.set_decision_cache}
    on the wrapped engine, so recurring workload shapes replay remembered
    plans instead of re-consulting the policy (see {!Engine} and
    DESIGN.md §13 for the key and its soundness contract).

    {b Load shedding.}  At most [max_inflight] admitted-but-incomplete
    requests globally and [max_per_client] per client; beyond that
    {!submit} answers {!reply.Shed} with a retry hint instead of growing
    the queue without bound.  The [priority] knob biases {e drains} under
    pressure: [`Smallest] lets a request strictly smaller than the largest
    in-flight job overflow the global cap by 25%, so cheap requests keep
    flowing while the backlog of heavy ones drains.  Shedding is refusal
    at the door: a shed request never reaches the engine or the WAL. *)

module Rat = Numeric.Rat

type priority =
  [ `Fifo  (** strict: over the cap, everyone is shed alike *)
  | `Smallest
    (** small jobs may jump the closed door: a newcomer strictly smaller
        (fewer motifs) than the largest in-flight request is admitted up
        to 125% of [max_inflight] *) ]

type config = {
  window : Rat.t;  (** coalescing window in seconds; zero = no batching *)
  max_inflight : int;  (** global in-flight cap; 0 = unlimited *)
  max_per_client : int;  (** per-client in-flight cap; 0 = unlimited *)
  cache : bool;  (** arm the engine's decision cache *)
  priority : priority;
}

val default_config : config
(** No batching, no caps, cache off, [`Fifo] — a transparent valve. *)

type reply =
  | Admitted of { job : int; fires_at : Rat.t }
      (** admitted; the engine will schedule it at [fires_at] (the end of
          the coalescing window it joined; its own arrival date) *)
  | Shed of { retry_after : Rat.t }
      (** refused by backpressure; try again in [retry_after] seconds *)

type t

val create : ?config:config -> Engine.t -> t
(** Wrap an engine.  Applies [config.cache] to the engine's decision
    cache immediately.
    @raise Invalid_argument on a negative window or negative cap. *)

val engine : t -> Engine.t
val config : t -> config

val submit : t -> ?client:string -> id:string -> bank:int -> num_motifs:int -> unit -> reply
(** Admit or shed one request arriving {e now} (at the wrapped engine's
    current time).  [client] (default ["anon"]) is the unit of per-client
    accounting.  On admission the request is submitted to the engine —
    and therefore WAL-logged, when durability is armed — with its
    coalesced arrival date.
    @raise Invalid_argument for the same malformed requests as
    {!Engine.submit} (duplicate id, bad bank, non-positive motifs). *)

val inflight : t -> int
(** Admitted-but-incomplete requests, globally (after retiring completed
    jobs). *)

val inflight_for : t -> string -> int
(** Same, for one client. *)

val poll : t -> unit
(** Bookkeeping tick: close the open coalescing window if the engine has
    moved past it, recording the batch-size sample.  Call after advancing
    the engine (the server does, on every {!Engine.catch_up}); submits
    close expired windows on their own. *)

(** Metrics, recorded in the wrapped engine's registry: counters
    [admission.submits], [admission.sheds], [admission.batches];
    histogram [admission.batch_size] (one sample per closed window).
    Each submit runs under an ["admission.submit"] span. *)
