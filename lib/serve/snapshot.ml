(* Snapshots and recovery orchestration for the serving engine.

   A durability directory (--wal DIR) holds three files:

     DIR/meta      engine state at arm time (seq 0) — the recovery base
                   when no checkpoint has been taken yet
     DIR/snapshot  the latest checkpoint, atomically replaced
     DIR/wal       the write-ahead log (Wal framing)

   A snapshot file is line-oriented ASCII: a version line, the covered WAL
   seq, the platform embedded in Trace's canonical text form, then the
   engine state (Engine.dump) — jobs, availability overlay, pending
   faults, slices, metrics — all rationals in exact Rat text form and all
   floats in lossless hexadecimal (%h), closed by an Adler-32 trailer over
   every preceding byte.  Files are written to a temp name, fsync'd and
   renamed, so a crash leaves either the old snapshot or the new one,
   never a torn file.

   Recovery (resume) loads DIR/snapshot if present (else DIR/meta),
   restores the engine, then replays the WAL records with seq beyond the
   snapshot's — records at or below it are stale leftovers of a lost
   post-checkpoint truncation and are skipped.  Replayed records re-drive
   the exact live code paths (Engine.apply_record), including re-taking
   automatic checkpoints at the same record counts, so the resumed engine
   is bit-identical to one that never crashed. *)

module Rat = Numeric.Rat
module W = Gripps.Workload

let meta_file dir = Filename.concat dir "meta"
let snapshot_file dir = Filename.concat dir "snapshot"
let wal_file dir = Filename.concat dir "wal"

let c_snapshots = Obs.Registry.counter Obs.Registry.global "wal.snapshots"
let c_snapshot_bytes = Obs.Registry.counter Obs.Registry.global "wal.snapshot_bytes"

let fail fmt = Printf.ksprintf (fun s -> invalid_arg ("Snapshot: " ^ s)) fmt

(* Lossless float text: hexadecimal significand ("%h"), which
   float_of_string round-trips exactly (nan and infinity included). *)
let float_repr = Printf.sprintf "%h"

let no_ws s =
  s <> ""
  && not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s)

(* --- serialization ---------------------------------------------------- *)

let state_to_string ~seq ~platform (st : Engine.state) =
  let b = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "dlsched-snapshot v2";
  line "seq %d" seq;
  line "platform-begin";
  let ptext = Trace.to_string { Trace.platform; entries = []; events = [] } in
  Buffer.add_string b ptext;
  if ptext <> "" && ptext.[String.length ptext - 1] <> '\n' then Buffer.add_char b '\n';
  line "platform-end";
  if not (no_ws st.Engine.st_policy) then fail "unencodable policy name %S" st.st_policy;
  line "policy %s" st.st_policy;
  line "batch_window %s" (Rat.to_string st.st_batch_window);
  line "objective %s" (match st.st_objective with `Flow -> "flow" | `Stretch -> "stretch");
  line "lost_work %s"
    (match st.st_lost_work with `Lost -> "lost" | `Preserved -> "preserved");
  line "now %s" (Rat.to_string st.st_now);
  line "jobs %d" (List.length st.st_jobs);
  List.iter
    (fun (js : Engine.job_state) ->
      if not (Wal.encodable_id js.js_id) then fail "unencodable request id %S" js.js_id;
      line "job %s %s %d %d %s %d %d %s" js.js_id (Rat.to_string js.js_arrival)
        js.js_bank js.js_num_motifs
        (Rat.to_string js.js_remaining)
        (if js.js_arrived then 1 else 0)
        (if js.js_parked then 1 else 0)
        (match js.js_completed_at with None -> "none" | Some r -> Rat.to_string r))
    st.st_jobs;
  line "overlay %d" (Array.length st.st_overlay);
  Array.iter
    (fun ms ->
      match ms with
      | W.Up -> line "avail up"
      | W.Down -> line "avail down"
      | W.Degraded r -> line "avail degraded %s" (Rat.to_string r))
    st.st_overlay;
  line "faults %d" (List.length st.st_faults);
  List.iter
    (fun (at, fault) ->
      let kind, i =
        match fault with Trace.Fail i -> ("fail", i) | Trace.Recover i -> ("recover", i)
      in
      line "fault %s %s %d" (Rat.to_string at) kind i)
    st.st_faults;
  line "slices %d" (List.length st.st_slices);
  List.iter
    (fun (s : Sched_core.Schedule.slice) ->
      line "slice %d %d %s %s" s.machine s.job (Rat.to_string s.start)
        (Rat.to_string s.stop))
    st.st_slices;
  line "last_stop %d" (Array.length st.st_last_stop);
  Array.iter (fun r -> line "stop %s" (Rat.to_string r)) st.st_last_stop;
  line "completed %d" st.st_num_completed;
  line "metrics %d" (List.length st.st_metrics);
  List.iter
    (fun (name, item) ->
      if not (no_ws name) then fail "unencodable metric name %S" name;
      match item with
      | Obs.Registry.Dump_counter n -> line "counter %s %d" name n
      | Obs.Registry.Dump_gauge { value; peak } ->
        line "gauge %s %s %s" name (float_repr value) (float_repr peak)
      | Obs.Registry.Dump_histogram samples ->
        let b2 = Buffer.create 64 in
        Array.iter
          (fun f ->
            Buffer.add_char b2 ' ';
            Buffer.add_string b2 (float_repr f))
          samples;
        line "hist %s %d%s" name (Array.length samples) (Buffer.contents b2))
    st.st_metrics;
  line "cache %d" (List.length st.st_cache);
  List.iter
    (fun (key, (cd : Engine.cached_decision)) ->
      (* Fingerprint keys are built from whitespace-free atoms (policy
         name, overlay letters, exact rational text) joined by '|'/':';
         enforce that here so the line stays parseable. *)
      if not (no_ws key) then fail "unencodable cache key %S" key;
      let b2 = Buffer.create 64 in
      List.iter
        (fun (machine, pos, share) ->
          Buffer.add_string b2
            (Printf.sprintf " %d %d %s" machine pos (Rat.to_string share)))
        cd.Engine.cd_shares;
      line "centry %s %s %d%s" key
        (match cd.Engine.cd_review_offset with
         | None -> "none"
         | Some r -> Rat.to_string r)
        (List.length cd.Engine.cd_shares)
        (Buffer.contents b2))
    st.st_cache;
  let body = Buffer.contents b in
  body ^ Printf.sprintf "checksum %d\n" (Wal.adler32 body)

(* --- parsing ---------------------------------------------------------- *)

let split_checksum text =
  let len = String.length text in
  if len = 0 then fail "empty snapshot file";
  let stop = if text.[len - 1] = '\n' then len - 1 else len in
  if stop = 0 then fail "empty snapshot file";
  let start =
    match String.rindex_from_opt text (stop - 1) '\n' with Some i -> i + 1 | None -> 0
  in
  let body = String.sub text 0 start in
  match
    String.sub text start (stop - start) |> String.split_on_char ' '
  with
  | [ "checksum"; n ] -> (
    match int_of_string_opt n with
    | Some n -> (body, n)
    | None -> fail "malformed checksum trailer")
  | _ -> fail "missing checksum trailer"

type cursor = { mutable rest : string list; mutable lineno : int }

let next c =
  match c.rest with
  | [] -> fail "line %d: unexpected end of snapshot" c.lineno
  | l :: tl ->
    c.rest <- tl;
    c.lineno <- c.lineno + 1;
    l

let tokens c = next c |> String.split_on_char ' ' |> List.filter (fun s -> s <> "")

let perr c fmt = Printf.ksprintf (fun s -> fail "line %d: %s" c.lineno s) fmt

let int_tok c s =
  match int_of_string_opt s with Some n -> n | None -> perr c "bad integer %S" s

let rat_tok c s =
  match Rat.of_string s with r -> r | exception _ -> perr c "bad rational %S" s

let float_tok c s =
  match float_of_string_opt s with Some f -> f | None -> perr c "bad float %S" s

let keyed c key =
  match tokens c with
  | k :: rest when k = key -> rest
  | k :: _ -> perr c "expected %S, found %S" key k
  | [] -> perr c "expected %S, found a blank line" key

let keyed1 c key =
  match keyed c key with [ v ] -> v | _ -> perr c "expected exactly one %s value" key

let count_of c key = int_tok c (keyed1 c key)

let state_of_string text =
  let body, sum = split_checksum text in
  if Wal.adler32 body <> sum then fail "checksum mismatch (corrupt snapshot file)";
  let lines = String.split_on_char '\n' body in
  (* [body] ends with '\n'; drop the empty tail that split produces. *)
  let lines =
    match List.rev lines with "" :: rev -> List.rev rev | _ -> lines
  in
  let c = { rest = lines; lineno = 0 } in
  (match next c with
   | "dlsched-snapshot v2" -> ()
   | l -> perr c "not a dlsched snapshot (header %S)" l);
  let seq = count_of c "seq" in
  (match next c with
   | "platform-begin" -> ()
   | l -> perr c "expected platform-begin, found %S" l);
  let pbuf = Buffer.create 256 in
  let rec platform_lines () =
    match next c with
    | "platform-end" -> ()
    | l ->
      Buffer.add_string pbuf l;
      Buffer.add_char pbuf '\n';
      platform_lines ()
  in
  platform_lines ();
  let platform =
    match Trace.of_string (Buffer.contents pbuf) with
    | t -> t.Trace.platform
    | exception Invalid_argument m -> fail "embedded platform: %s" m
  in
  let st_policy = keyed1 c "policy" in
  let st_batch_window = rat_tok c (keyed1 c "batch_window") in
  let st_objective =
    match keyed1 c "objective" with
    | "flow" -> `Flow
    | "stretch" -> `Stretch
    | s -> perr c "bad objective %S" s
  in
  let st_lost_work =
    match keyed1 c "lost_work" with
    | "lost" -> `Lost
    | "preserved" -> `Preserved
    | s -> perr c "bad lost_work %S" s
  in
  let st_now = rat_tok c (keyed1 c "now") in
  let num_jobs = count_of c "jobs" in
  let bool_tok s = match s with "0" -> false | "1" -> true | _ -> perr c "bad flag %S" s in
  let st_jobs =
    List.init num_jobs (fun _ ->
        match keyed c "job" with
        | [ id; arrival; bank; motifs; remaining; arrived; parked; completed ] ->
          {
            Engine.js_id = id;
            js_arrival = rat_tok c arrival;
            js_bank = int_tok c bank;
            js_num_motifs = int_tok c motifs;
            js_remaining = rat_tok c remaining;
            js_arrived = bool_tok arrived;
            js_parked = bool_tok parked;
            js_completed_at =
              (if completed = "none" then None else Some (rat_tok c completed));
          }
        | _ -> perr c "malformed job line")
  in
  let num_machines = count_of c "overlay" in
  let st_overlay =
    Array.init num_machines (fun _ ->
        match keyed c "avail" with
        | [ "up" ] -> W.Up
        | [ "down" ] -> W.Down
        | [ "degraded"; r ] -> W.Degraded (rat_tok c r)
        | _ -> perr c "malformed avail line")
  in
  let num_faults = count_of c "faults" in
  let st_faults =
    List.init num_faults (fun _ ->
        match keyed c "fault" with
        | [ at; "fail"; i ] -> (rat_tok c at, Trace.Fail (int_tok c i))
        | [ at; "recover"; i ] -> (rat_tok c at, Trace.Recover (int_tok c i))
        | _ -> perr c "malformed fault line")
  in
  let num_slices = count_of c "slices" in
  let st_slices =
    List.init num_slices (fun _ ->
        match keyed c "slice" with
        | [ machine; job; start; stop ] ->
          {
            Sched_core.Schedule.machine = int_tok c machine;
            job = int_tok c job;
            start = rat_tok c start;
            stop = rat_tok c stop;
          }
        | _ -> perr c "malformed slice line")
  in
  let num_stops = count_of c "last_stop" in
  let st_last_stop = Array.init num_stops (fun _ -> rat_tok c (keyed1 c "stop")) in
  let st_num_completed = count_of c "completed" in
  let num_metrics = count_of c "metrics" in
  let st_metrics =
    List.init num_metrics (fun _ ->
        match tokens c with
        | [ "counter"; name; n ] -> (name, Obs.Registry.Dump_counter (int_tok c n))
        | [ "gauge"; name; value; peak ] ->
          ( name,
            Obs.Registry.Dump_gauge
              { value = float_tok c value; peak = float_tok c peak } )
        | "hist" :: name :: n :: samples ->
          let n = int_tok c n in
          if List.length samples <> n then perr c "histogram %S sample count mismatch" name;
          ( name,
            Obs.Registry.Dump_histogram
              (Array.of_list (List.map (float_tok c) samples)) )
        | _ -> perr c "malformed metric line")
  in
  let num_cache = count_of c "cache" in
  let st_cache =
    List.init num_cache (fun _ ->
        match keyed c "centry" with
        | key :: review :: n :: rest ->
          let n = int_tok c n in
          if List.length rest <> 3 * n then perr c "cache entry share count mismatch";
          let rec shares = function
            | [] -> []
            | machine :: pos :: share :: tl ->
              (int_tok c machine, int_tok c pos, rat_tok c share) :: shares tl
            | _ -> perr c "malformed cache entry"
          in
          ( key,
            {
              Engine.cd_shares = shares rest;
              cd_review_offset =
                (if review = "none" then None else Some (rat_tok c review));
            } )
        | _ -> perr c "malformed cache entry")
  in
  if c.rest <> [] then perr c "trailing garbage after cache entries";
  ( seq,
    platform,
    {
      Engine.st_policy;
      st_batch_window;
      st_objective;
      st_lost_work;
      st_now;
      st_jobs;
      st_overlay;
      st_faults;
      st_slices;
      st_last_stop;
      st_num_completed;
      st_metrics;
      st_cache;
    } )

(* --- files ------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Temp + fsync + rename: readers see either the previous file or the
   complete new one.  The directory is fsync'd too so the rename itself
   survives a crash. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd content;
      Unix.fsync fd);
  Unix.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    (try Unix.close dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let save_file path ~seq ~platform st =
  let text = state_to_string ~seq ~platform st in
  Obs.Span.with_span "snapshot.write" (fun () ->
      Obs.Span.set_int "seq" seq;
      Obs.Span.set_int "bytes" (String.length text);
      write_atomic path text);
  Obs.Registry.incr c_snapshots;
  Obs.Registry.add c_snapshot_bytes (String.length text)

let load_file path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  state_of_string text

(* --- orchestration ---------------------------------------------------- *)

type handle = { dir : string; writer : Wal.writer }

let dir h = h.dir
let close h = Wal.close h.writer

let take_snapshot dir engine =
  save_file (snapshot_file dir) ~seq:(Engine.last_seq engine)
    ~platform:(Engine.platform engine) (Engine.dump engine)

let arm ?(snapshot_every = 0) ~dir engine =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  if Sys.file_exists (meta_file dir) then
    fail "%s already holds serving state; resume from it (--resume) or point --wal at a fresh directory"
      dir;
  save_file (meta_file dir) ~seq:0 ~platform:(Engine.platform engine)
    (Engine.dump engine);
  let w = Wal.open_append ~next_seq:1 (wal_file dir) in
  Engine.set_durability engine ~log:(Wal.append w)
    ~checkpoint:(fun () -> take_snapshot dir engine)
    ~truncate:(fun () -> Wal.truncate w)
    ~every:snapshot_every ~last_seq:0;
  { dir; writer = w }

let resume ?(snapshot_every = 0) ?(decision_cache = false) ~dir ~clock ~policies () =
  let base =
    if Sys.file_exists (snapshot_file dir) then snapshot_file dir
    else if Sys.file_exists (meta_file dir) then meta_file dir
    else fail "%s holds no snapshot or meta file — was it armed with --wal?" dir
  in
  let seq0, platform, st = load_file base in
  let policy =
    let matches m =
      let module P = (val m : Online.Sim.POLICY) in
      P.name = st.Engine.st_policy
    in
    match List.find_opt matches policies with
    | Some p -> p
    | None -> fail "snapshot was taken under unknown policy %S" st.Engine.st_policy
  in
  let engine = Engine.restore ~clock ~policy platform st in
  (* Arm the cache before the tail replays: the crashed run's decides past
     the snapshot ran with it on, and the cache counters must replay
     bit-identically.  (A checkpoint quiesces the policy runner but keeps
     remembered plans, so the snapshot carries the cache contents and
     [restore] has already reloaded them; arming with [false] drops them
     again, matching a crashed run that had the cache off.) *)
  Engine.set_decision_cache engine decision_cache;
  let records, valid_length, _torn = Wal.replay (wal_file dir) in
  let top = List.fold_left (fun acc (s, _) -> Stdlib.max acc s) seq0 records in
  let w = Wal.open_append ~valid_length ~next_seq:(top + 1) (wal_file dir) in
  Engine.set_durability engine ~log:(Wal.append w)
    ~checkpoint:(fun () -> take_snapshot dir engine)
    ~truncate:(fun () -> Wal.truncate w)
    ~every:snapshot_every ~last_seq:seq0;
  (* Replay the tail.  Records at or below [seq0] are stale leftovers of a
     truncation the crash swallowed; the snapshot already contains them. *)
  List.iter (fun (s, r) -> if s > seq0 then Engine.apply_record engine ~seq:s r) records;
  Engine.rebase engine;
  ({ dir; writer = w }, engine)
