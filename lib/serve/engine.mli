(** Wall-clock serving engine: the online simulator turned into a daemon.

    {!Online.Sim.run} solves a closed problem — every job is known up
    front and simulated time is free.  This engine serves an {e open}
    stream: requests are admitted while it runs, time is owned by a
    pluggable {!Clock} (virtual for replay and tests, the system clock for
    a live daemon), and every decision, segment and completed request is
    recorded in a {!Metrics} registry.  The scheduling semantics are
    shared with the simulator through its exposed hooks
    ({!Online.Sim.check_decision}, {!Online.Sim.progress_rates},
    {!Online.Sim.materialize}): a virtual-clock replay of a trace with a
    zero batch window produces {e exactly} the schedule [Sim.run] produces
    on the equivalent offline instance.

    {b Batching under load.}  Consulting the policy on every arrival is
    wasteful when arrivals burst (the re-optimizing policies solve LPs).
    With a positive [batch_window], an arrival less than one window after
    the last decision does not trigger an immediate re-evaluation: the
    engine keeps executing the current decision and re-consults the policy
    at [last_decision + window], admitting every request that arrived in
    between at once.  Completions and policy-requested reviews always
    re-evaluate immediately.

    {b Live submissions.}  Jobs submitted after the engine has started
    (the [serve] front-end) extend the instance, so the policy state is
    rebuilt from the surviving active jobs; queue-based policies lose
    their queue estimates at that point (counted by the
    [policy_rebuilds] metric).  Trace replay submits everything before the
    first step and never rebuilds.

    {b Machine failures.}  Faults ({!Trace.fault}) can be injected at any
    date, live ([fail]/[recover] server commands) or from a trace's event
    stream.  A failure masks the machine's costs to [None] (the paper's
    +∞) in the instance decisions are made against, clips the running
    segment at the failure instant, notifies the policy
    ({!Online.Sim.POLICY.on_platform_change}) and forces a re-decision;
    in-flight work on the dead machine is by default lost and re-credited
    to the affected jobs ([`Lost]; [`Preserved] keeps it).  A job whose
    every capable machine is down is {e parked} — withheld from the policy
    rather than scheduled against phantom costs — and re-announced when a
    recovery makes it runnable again; a permanently starved job surfaces
    as incomplete instead of livelocking the drain.  While every machine
    is up the engine is bit-identical to its fault-unaware self. *)

module Rat = Numeric.Rat

type objective =
  [ `Flow  (** unit weights: the policy optimizes max flow *)
  | `Stretch
    (** weight [1/fastest_cost] per job: the policy optimizes max
        stretch *) ]

type lost_work =
  [ `Lost  (** in-flight work on a failed machine is lost and redone *)
  | `Preserved  (** partial results survive the failure (checkpointing) *) ]

type t

val create :
  ?batch_window:Rat.t ->
  ?objective:objective ->
  ?lost_work:lost_work ->
  clock:Clock.t ->
  policy:(module Online.Sim.POLICY) ->
  Gripps.Workload.platform ->
  t
(** [batch_window] defaults to zero (re-evaluate on every arrival);
    [objective] defaults to [`Stretch]; [lost_work] defaults to [`Lost].
    Engine time starts at 0 at the clock's current date, with every
    machine up. *)

val submit :
  t -> id:string -> ?arrival:Rat.t -> bank:int -> num_motifs:int -> unit -> int
(** Admit a request; returns its job index.  [arrival] defaults to the
    clock's current date (quantized to centiseconds) and must not precede
    the engine's current time — the engine never rewrites history.
    @raise Invalid_argument on a duplicate id, an out-of-range bank, a
    bank held by no machine, a non-positive motif count, or an [arrival]
    in the engine's past. *)

val run_until : t -> Rat.t -> unit
(** Process all events up to the given engine time and advance the clock
    with them (a virtual clock jumps, a wall clock sleeps).  No-op if the
    date is in the past.
    @raise Invalid_argument if the policy misbehaves (see
    {!Online.Sim.run}). *)

val catch_up : t -> unit
(** [run_until] the clock's current date — how a live server absorbs the
    time that passed while it waited for input.  No-op on a virtual
    clock. *)

val drain : t -> unit
(** Run until every submitted job has completed — or, under faults, until
    only permanently starved jobs remain (no pending fault or arrival can
    unpark them).  Under a virtual clock this fast-forwards; under a wall
    clock it really waits. *)

val inject : t -> at:Rat.t -> Trace.fault -> unit
(** Schedule a machine failure or recovery at engine time [at]; a date at
    or before the current time applies immediately.  Idempotent per state:
    failing a dead machine or recovering a live one is a no-op when the
    date arrives.
    @raise Invalid_argument if the machine index is out of range. *)

val machine_up : t -> int -> bool
(** Whether the machine is currently live (up or merely degraded).
    @raise Invalid_argument if the index is out of range. *)

val machines_up : t -> int
(** Number of currently live machines. *)

val now : t -> Rat.t
(** Current engine time (seconds since the engine's epoch). *)

val submitted : t -> int
val active : t -> int

val starved : t -> int
(** Arrived, incomplete jobs currently parked because no live machine
    holds their bank. *)

val completed : t -> int

val find : t -> string -> int option
(** Job index of a submitted request id, if any. *)

val clock : t -> Clock.t
val platform : t -> Gripps.Workload.platform

val metrics : t -> Obs.Registry.t
(** Live registry: counters [requests_submitted], [requests_completed],
    [decisions], [segments], [slices], [arrivals_coalesced],
    [policy_rebuilds], [machine_failures], [machine_recoveries],
    [slices_lost]; gauges [queue_depth], [machines_up]; histograms
    [flow_seconds], [weighted_flow_seconds], [stretch] (one sample per
    completed request).  Solver counters [lp_solves], [lp_solves_warm],
    [lp_pivots_phase1], [lp_pivots_phase2], [lp_pivots_dual] attribute
    per-decision deltas of the global [Lp.Instrument] totals to this
    engine; the [lp_solve_seconds] histogram records one sample per
    LP-using decision (that decision's total solver seconds), not one
    per solve.  ({!Metrics.t} is an alias of [Obs.Registry.t], so the
    legacy [Serve.Metrics] accessors keep working.) *)

val schedule : t -> Sched_core.Schedule.t
(** The slices materialized so far, over the instance of every submitted
    job (healthy costs; under [`Lost] the slices wasted on failed machines
    have already been dropped).  Passes
    {!Sched_core.Schedule.validate_divisible} once all jobs have completed
    (e.g. after a {!drain} with no starved leftovers).
    @raise Invalid_argument if nothing was ever submitted. *)

val replay :
  ?batch_window:Rat.t ->
  ?objective:objective ->
  ?lost_work:lost_work ->
  policy:(module Online.Sim.POLICY) ->
  Trace.t ->
  t
(** Submit the whole trace to a fresh virtual-clock engine, {!inject} its
    fault events, and {!drain} it. *)
