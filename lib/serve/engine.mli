(** Wall-clock serving engine: the online simulator turned into a daemon.

    {!Online.Sim.run} solves a closed problem — every job is known up
    front and simulated time is free.  This engine serves an {e open}
    stream: requests are admitted while it runs, time is owned by a
    pluggable {!Clock} (virtual for replay and tests, the system clock for
    a live daemon), and every decision, segment and completed request is
    recorded in an {!Obs.Registry}.  The scheduling semantics are
    shared with the simulator through its exposed hooks
    ({!Online.Sim.check_decision}, {!Online.Sim.progress_rates},
    {!Online.Sim.materialize}): a virtual-clock replay of a trace with a
    zero batch window produces {e exactly} the schedule [Sim.run] produces
    on the equivalent offline instance.

    {b Batching under load.}  Consulting the policy on every arrival is
    wasteful when arrivals burst (the re-optimizing policies solve LPs).
    With a positive [batch_window], an arrival less than one window after
    the last decision does not trigger an immediate re-evaluation: the
    engine keeps executing the current decision and re-consults the policy
    at [last_decision + window], admitting every request that arrived in
    between at once.  Completions and policy-requested reviews always
    re-evaluate immediately.

    {b Live submissions.}  Jobs submitted after the engine has started
    (the [serve] front-end) extend the instance, so the policy state is
    rebuilt from the surviving active jobs; queue-based policies lose
    their queue estimates at that point (counted by the
    [policy_rebuilds] metric).  The current {e decision} survives the
    submission — its shares name jobs whose indices are stable under
    growth and executing it needs no policy state — so the plan keeps
    running and the newcomer only forces a re-decision when its arrival
    date fires, which is where the batch window coalesces a burst into a
    single consultation.  Trace replay submits everything before the
    first step and never rebuilds.

    {b Decision caching.}  {!set_decision_cache} arms a cache of past
    decisions keyed by a canonical fingerprint of the masked decision
    instance — availability overlay plus the shape (arrival age, bank,
    motif count, remaining fraction) of every schedulable job, in
    announcement order.  It is consulted only at rebuild barriers (no
    live policy state), where the upcoming decision is a pure function of
    exactly the fingerprinted state; a hit replays the remembered plan
    without consulting the policy (counted by [decision_cache_hits], with
    [decisions] untouched), a miss ([decision_cache_misses]) computes and
    remembers.  Every reused plan is re-validated with
    {!Online.Sim.check_decision} before it drives the schedule.  The
    cache is cleared on every availability change.  DESIGN.md §13 states
    the soundness contract policies must honor.

    {b Machine failures.}  Faults ({!Trace.fault}) can be injected at any
    date, live ([fail]/[recover] server commands) or from a trace's event
    stream.  A failure masks the machine's costs to [None] (the paper's
    +∞) in the instance decisions are made against, clips the running
    segment at the failure instant, notifies the policy
    ({!Online.Sim.POLICY.on_platform_change}) and forces a re-decision;
    in-flight work on the dead machine is by default lost and re-credited
    to the affected jobs ([`Lost]; [`Preserved] keeps it).  A job whose
    every capable machine is down is {e parked} — withheld from the policy
    rather than scheduled against phantom costs — and re-announced when a
    recovery makes it runnable again; a permanently starved job surfaces
    as incomplete instead of livelocking the drain.  While every machine
    is up the engine is bit-identical to its fault-unaware self. *)

module Rat = Numeric.Rat

type objective =
  [ `Flow  (** unit weights: the policy optimizes max flow *)
  | `Stretch
    (** weight [1/fastest_cost] per job: the policy optimizes max
        stretch *) ]

type lost_work =
  [ `Lost  (** in-flight work on a failed machine is lost and redone *)
  | `Preserved  (** partial results survive the failure (checkpointing) *) ]

type t

val create :
  ?batch_window:Rat.t ->
  ?objective:objective ->
  ?lost_work:lost_work ->
  clock:Clock.t ->
  policy:(module Online.Sim.POLICY) ->
  Gripps.Workload.platform ->
  t
(** [batch_window] defaults to zero (re-evaluate on every arrival);
    [objective] defaults to [`Stretch]; [lost_work] defaults to [`Lost].
    Engine time starts at 0 at the clock's current date, with every
    machine up. *)

val submit :
  t -> id:string -> ?arrival:Rat.t -> bank:int -> num_motifs:int -> unit -> int
(** Admit a request; returns its job index.  [arrival] defaults to the
    clock's current date (quantized to centiseconds) and must not precede
    the engine's current time — the engine never rewrites history.
    @raise Invalid_argument on a duplicate id, an out-of-range bank, a
    bank held by no machine, a non-positive motif count, or an [arrival]
    in the engine's past. *)

val run_until : t -> Rat.t -> unit
(** Process all events up to the given engine time and advance the clock
    with them (a virtual clock jumps, a wall clock sleeps).  No-op if the
    date is in the past.
    @raise Invalid_argument if the policy misbehaves (see
    {!Online.Sim.run}). *)

val catch_up : t -> unit
(** [run_until] the clock's current date — how a live server absorbs the
    time that passed while it waited for input.  No-op on a virtual
    clock. *)

val drain : t -> unit
(** Run until every submitted job has completed — or, under faults, until
    only permanently starved jobs remain (no pending fault or arrival can
    unpark them).  Under a virtual clock this fast-forwards; under a wall
    clock it really waits. *)

val inject : t -> at:Rat.t -> Trace.fault -> unit
(** Schedule a machine failure or recovery at engine time [at]; a date at
    or before the current time applies immediately.  Idempotent per state:
    failing a dead machine or recovering a live one is a no-op when the
    date arrives.
    @raise Invalid_argument if the machine index is out of range. *)

val machine_up : t -> int -> bool
(** Whether the machine is currently live (up or merely degraded).
    @raise Invalid_argument if the index is out of range. *)

val machines_up : t -> int
(** Number of currently live machines. *)

val now : t -> Rat.t
(** Current engine time (seconds since the engine's epoch). *)

val submitted : t -> int
val active : t -> int

val starved : t -> int
(** Arrived, incomplete jobs currently parked because no live machine
    holds their bank. *)

val completed : t -> int

val find : t -> string -> int option
(** Job index of a submitted request id, if any. *)

val job_completed : t -> int -> bool
(** Whether the job at this index has completed — how an admission
    front-end ({!Admission}) retires its in-flight accounting.
    @raise Invalid_argument if the index is out of range. *)

val set_decision_cache : t -> bool -> unit
(** Enable or disable the decision cache (disabled by default; see the
    module preamble).  Disabling also drops every cached entry.  A
    resumed engine must be armed identically to the crashed one
    ({!Snapshot.resume}'s [decision_cache]) for bit-identical replay of
    the cache counters. *)

val clock : t -> Clock.t
val platform : t -> Gripps.Workload.platform

val metrics : t -> Obs.Registry.t
(** Live registry: counters [requests_submitted], [requests_completed],
    [decisions], [segments], [slices], [arrivals_coalesced],
    [decision_cache_hits], [decision_cache_misses], [policy_rebuilds],
    [machine_failures], [machine_recoveries], [slices_lost]; gauges
    [queue_depth], [machines_up]; histograms [flow_seconds],
    [weighted_flow_seconds], [stretch] (one sample per completed
    request).  Solver counters [lp_solves], [lp_solves_warm],
    [lp_pivots_phase1], [lp_pivots_phase2], [lp_pivots_dual] attribute
    per-decision deltas of the global [Lp.Instrument] totals to this
    engine; the [lp_solve_seconds] histogram records one sample per
    LP-using decision (that decision's total solver seconds), not one
    per solve. *)

val schedule : t -> Sched_core.Schedule.t
(** The slices materialized so far, over the instance of every submitted
    job (healthy costs; under [`Lost] the slices wasted on failed machines
    have already been dropped).  Passes
    {!Sched_core.Schedule.validate_divisible} once all jobs have completed
    (e.g. after a {!drain} with no starved leftovers).
    @raise Invalid_argument if nothing was ever submitted. *)

val replay :
  ?batch_window:Rat.t ->
  ?objective:objective ->
  ?lost_work:lost_work ->
  policy:(module Online.Sim.POLICY) ->
  Trace.t ->
  t
(** Submit the whole trace to a fresh virtual-clock engine, {!inject} its
    fault events, and {!drain} it. *)

(** {1 Durability}

    The engine is deterministic in its sequence of externally visible
    events, so crash consistency reduces to logging that sequence: when
    armed ({!set_durability}), every {!submit}, {!inject}, {!run_until} /
    {!catch_up} advance and {!drain} is appended to a write-ahead log
    {e before} it is applied.  Snapshots ({!checkpoint}) serialize the
    whole engine state ({!dump}) and let the covered log prefix be
    dropped.  {!Snapshot} owns the on-disk formats and the [--resume]
    orchestration; DESIGN.md §11 states the invariant. *)

val set_durability :
  t ->
  log:(Wal.record -> int) ->
  checkpoint:(unit -> unit) ->
  truncate:(unit -> unit) ->
  every:int ->
  last_seq:int ->
  unit
(** Arm write-ahead logging.  [log] must make the record durable and
    return its seq; [checkpoint] must persist {!dump}; [truncate] drops
    the log once a snapshot covers it (never invoked during recovery
    replay — the un-reappended tail must survive).  [every] > 0 takes an
    automatic checkpoint after that many logged records ([0] = only on
    explicit {!checkpoint}); [last_seq] seeds {!last_seq} (the highest seq
    already applied — [0] on a fresh log).
    @raise Invalid_argument on a negative [every]. *)

val checkpoint : t -> bool
(** Take a snapshot now: quiesce the policy (a scheduling barrier — the
    opaque policy state is discarded and will be rebuilt from the
    serializable state, exactly as a live submission forces), invoke the
    armed checkpoint closure, and truncate the covered log.  Returns
    [false] when durability is not armed. *)

val last_seq : t -> int
(** Seq of the last WAL record logged or replayed; what a snapshot records
    as the prefix it covers. *)

val apply_record : t -> seq:int -> Wal.record -> unit
(** Recovery replay: apply one already-durable record.  Nothing is
    re-appended and nothing sleeps — time advances logically even on a
    wall clock (call {!rebase} when the tail is exhausted).  Automatic
    checkpoints still fire at the same record counts as in the original
    run, re-taking any snapshot whose write the crash lost. *)

val rebase : t -> unit
(** Re-anchor the engine epoch so the clock's {e current} date maps to the
    current engine time — the downtime between crash and resume is excised
    rather than replayed as idle time. *)

(** {2 Snapshot state}

    Everything {!restore} needs, as plain serializable values (the policy
    by name, jobs by their admission parameters, metrics as an
    {!Obs.Registry.dump}).  Meaningful as a bit-identity capture only at a
    barrier — {!checkpoint} quiesces before calling {!dump}. *)

type cached_decision = {
  cd_shares : (int * int * Rat.t) list;
      (** machine, position in announcement order, share *)
  cd_review_offset : Rat.t option;  (** [review_at] relative to the decision date *)
}
(** One remembered decision, in the census-relative normal form the
    decision cache stores (see the module preamble).  Snapshot state
    carries the cache because the live engine keeps it across a
    checkpoint: a resumed engine without it would miss where the
    uninterrupted one hits, splitting the [decision_cache_hits] /
    [decision_cache_misses] counters and with them bit-identity. *)

type job_state = {
  js_id : string;
  js_arrival : Rat.t;
  js_bank : int;
  js_num_motifs : int;
  js_remaining : Rat.t;
  js_arrived : bool;
  js_parked : bool;
  js_completed_at : Rat.t option;
}

type state = {
  st_policy : string;
  st_batch_window : Rat.t;
  st_objective : objective;
  st_lost_work : lost_work;
  st_now : Rat.t;
  st_jobs : job_state list;  (** in submission (= policy index) order *)
  st_overlay : Gripps.Workload.machine_state array;
  st_faults : (Rat.t * Trace.fault) list;  (** pending, sorted by date *)
  st_slices : Sched_core.Schedule.slice list;  (** chronological *)
  st_last_stop : Rat.t array;
  st_num_completed : int;
  st_metrics : (string * Obs.Registry.dump_item) list;
  st_cache : (string * cached_decision) list;
      (** live decision-cache entries, sorted by fingerprint key *)
}

val dump : t -> state

val restore :
  clock:Clock.t ->
  policy:(module Online.Sim.POLICY) ->
  Gripps.Workload.platform ->
  state ->
  t
(** Rebuild an engine from a dumped state: jobs are re-admitted with their
    recorded flags and remaining fractions, the availability overlay,
    pending faults, slices and metrics are restored exactly, and the
    engine epoch is anchored so the clock's current date maps to
    [st_now].  The policy runner is rebuilt lazily on the first decision,
    mirroring the quiesce on the snapshot side.
    @raise Invalid_argument if the policy's name, the machine count or a
    job's bank index does not match the given platform/policy. *)
