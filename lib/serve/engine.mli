(** Wall-clock serving engine: the online simulator turned into a daemon.

    {!Online.Sim.run} solves a closed problem — every job is known up
    front and simulated time is free.  This engine serves an {e open}
    stream: requests are admitted while it runs, time is owned by a
    pluggable {!Clock} (virtual for replay and tests, the system clock for
    a live daemon), and every decision, segment and completed request is
    recorded in a {!Metrics} registry.  The scheduling semantics are
    shared with the simulator through its exposed hooks
    ({!Online.Sim.check_decision}, {!Online.Sim.progress_rates},
    {!Online.Sim.materialize}): a virtual-clock replay of a trace with a
    zero batch window produces {e exactly} the schedule [Sim.run] produces
    on the equivalent offline instance.

    {b Batching under load.}  Consulting the policy on every arrival is
    wasteful when arrivals burst (the re-optimizing policies solve LPs).
    With a positive [batch_window], an arrival less than one window after
    the last decision does not trigger an immediate re-evaluation: the
    engine keeps executing the current decision and re-consults the policy
    at [last_decision + window], admitting every request that arrived in
    between at once.  Completions and policy-requested reviews always
    re-evaluate immediately.

    {b Live submissions.}  Jobs submitted after the engine has started
    (the [serve] front-end) extend the instance, so the policy state is
    rebuilt from the surviving active jobs; queue-based policies lose
    their queue estimates at that point (counted by the
    [policy_rebuilds] metric).  Trace replay submits everything before the
    first step and never rebuilds. *)

module Rat = Numeric.Rat

type objective =
  [ `Flow  (** unit weights: the policy optimizes max flow *)
  | `Stretch
    (** weight [1/fastest_cost] per job: the policy optimizes max
        stretch *) ]

type t

val create :
  ?batch_window:Rat.t ->
  ?objective:objective ->
  clock:Clock.t ->
  policy:(module Online.Sim.POLICY) ->
  Gripps.Workload.platform ->
  t
(** [batch_window] defaults to zero (re-evaluate on every arrival);
    [objective] defaults to [`Stretch].  Engine time starts at 0 at the
    clock's current date. *)

val submit :
  t -> id:string -> ?arrival:Rat.t -> bank:int -> num_motifs:int -> unit -> int
(** Admit a request; returns its job index.  [arrival] defaults to the
    clock's current date (quantized to centiseconds) and must not precede
    the engine's current time — the engine never rewrites history.
    @raise Invalid_argument on a duplicate id, an out-of-range bank, a
    bank held by no machine, a non-positive motif count, or an [arrival]
    in the engine's past. *)

val run_until : t -> Rat.t -> unit
(** Process all events up to the given engine time and advance the clock
    with them (a virtual clock jumps, a wall clock sleeps).  No-op if the
    date is in the past.
    @raise Invalid_argument if the policy misbehaves (see
    {!Online.Sim.run}). *)

val catch_up : t -> unit
(** [run_until] the clock's current date — how a live server absorbs the
    time that passed while it waited for input.  No-op on a virtual
    clock. *)

val drain : t -> unit
(** Run until every submitted job has completed.  Under a virtual clock
    this fast-forwards; under a wall clock it really waits. *)

val now : t -> Rat.t
(** Current engine time (seconds since the engine's epoch). *)

val submitted : t -> int
val active : t -> int
val completed : t -> int

val clock : t -> Clock.t

val metrics : t -> Metrics.t
(** Live registry: counters [requests_submitted], [requests_completed],
    [decisions], [segments], [slices], [arrivals_coalesced],
    [policy_rebuilds]; gauge [queue_depth]; histograms [flow_seconds],
    [weighted_flow_seconds], [stretch] (one sample per completed
    request). *)

val schedule : t -> Sched_core.Schedule.t
(** The slices materialized so far, over the instance of every submitted
    job.  Passes {!Sched_core.Schedule.validate_divisible} once all jobs
    have completed (e.g. after {!drain}).
    @raise Invalid_argument if nothing was ever submitted. *)

val replay :
  ?batch_window:Rat.t ->
  ?objective:objective ->
  policy:(module Online.Sim.POLICY) ->
  Trace.t ->
  t
(** Submit the whole trace to a fresh virtual-clock engine and {!drain}
    it. *)
