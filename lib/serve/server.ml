module Rat = Numeric.Rat
module Registry = Obs.Registry

type t = {
  engine : Engine.t;
  (* Admission valve, when the server fronts the engine with batching /
     shedding (--batch-window / --max-inflight).  [None] = every submit
     goes straight to the engine, proto=1 behavior. *)
  admission : Admission.t option;
  (* Sink installed by [trace on] without a path: a ring buffer whose
     recent records the [spans] command dumps.  [trace on PATH] streams to
     a file instead and leaves this [None]. *)
  mutable trace_ring : Obs.Sink.t option;
  (* Names socket sessions for per-client admission accounting. *)
  mutable next_client : int;
  (* Serializes command execution: the engine (and [trace_ring]) are
     single-threaded objects, and concurrent socket sessions take this
     lock around each command, so commands interleave per line — never
     mid-solve. *)
  lock : Mutex.t;
}

let create ?admission engine =
  { engine; admission; trace_ring = None; next_client = 0; lock = Mutex.create () }

let banner = "hello dlsched proto=2"

(* The proto=2 reply grammar, in machine-checkable form: every error is
   [err CODE detail...] with CODE drawn from [error_codes], and every [ok]
   with a payload starts with one of [ok_heads].  A lint test scans this
   file's [okf]/[errf] call sites against these lists, so adding a reply
   shape means registering it here. *)
let error_codes =
  [ "usage"; "bad_request"; "io"; "wall_clock"; "no_wal"; "shed"; "unknown_command" ]

let ok_heads =
  [ "submitted"; "now="; "machine"; "tracing"; "snapshot"; "drained"; "bye" ]

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let okf fmt = Printf.ksprintf (fun s -> [ "ok " ^ s ]) fmt
let errf code fmt = Printf.ksprintf (fun s -> [ "err " ^ code ^ " " ^ s ]) fmt

let help_lines =
  [
    "commands:";
    "  submit ID BANK MOTIFS   admit a request now";
    "  status                  engine time and queue counts";
    "  metrics [json]          dump the metrics registry";
    "  trace on [PATH]         trace to a ring buffer, or as JSON lines to PATH";
    "  trace off               stop tracing";
    "  spans                   dump ring-buffered trace records as a JSON array";
    "  fail MACHINE            take a machine down now";
    "  recover MACHINE         bring a machine back up";
    "  tick SECONDS            advance a virtual clock";
    "  snapshot                checkpoint state, truncate the write-ahead log";
    "  drain                   run until every admitted request completes";
    "  help                    this text";
    "  quit                    close the session";
    "replies: 'ok ...' or 'err CODE ...' with CODE one of";
    "  " ^ String.concat " " error_codes;
  ]

let handle_line_unlocked t ?(client = "anon") line =
  let e = t.engine in
  Engine.catch_up e;
  Option.iter Admission.poll t.admission;
  match tokens line with
  | [] -> ([], `Continue)
  | comment :: _ when String.length comment > 0 && comment.[0] = '#' -> ([], `Continue)
  | [ "submit"; id; bank; motifs ] -> (
    match (int_of_string_opt bank, int_of_string_opt motifs) with
    (* Reject sign errors at the door: behind an admission valve the cap /
       shed accounting runs before the engine's own validation, so a
       malformed request must not reach it (a shed reply and a bumped
       [admission.sheds] for a request that could never be admitted), nor
       count against the client's in-flight quota. *)
    | Some bank, _ when bank < 0 ->
      (errf "bad_request" "bank must be non-negative, got %d" bank, `Continue)
    | _, Some motifs when motifs <= 0 ->
      (errf "bad_request" "motif count must be positive, got %d" motifs, `Continue)
    | Some bank, Some motifs -> (
      try
        match t.admission with
        | None ->
          let k = Engine.submit e ~id ~bank ~num_motifs:motifs () in
          (okf "submitted %s job=%d" id k, `Continue)
        | Some adm -> (
          match Admission.submit adm ~client ~id ~bank ~num_motifs:motifs () with
          | Admission.Admitted { job; fires_at } ->
            ( okf "submitted %s job=%d fires_at=%s" id job (Rat.to_string fires_at),
              `Continue )
          | Admission.Shed { retry_after } ->
            (errf "shed" "retry_after=%s" (Rat.to_string retry_after), `Continue))
      with Invalid_argument msg -> (errf "bad_request" "%s" msg, `Continue))
    | _ -> (errf "usage" "submit ID BANK MOTIFS", `Continue))
  | [ "status" ] ->
    ( okf "now=%s submitted=%d active=%d completed=%d up=%d/%d starved=%d"
        (Rat.to_string (Engine.now e))
        (Engine.submitted e) (Engine.active e) (Engine.completed e) (Engine.machines_up e)
        (Array.length (Engine.platform e).Gripps.Workload.speeds)
        (Engine.starved e),
      `Continue )
  | [ (("fail" | "recover") as kind); machine ] -> (
    match int_of_string_opt machine with
    | Some i when i < 0 ->
      (errf "bad_request" "machine must be non-negative, got %d" i, `Continue)
    | Some i -> (
      let fault = if kind = "fail" then Trace.Fail i else Trace.Recover i in
      try
        Engine.inject e ~at:(Engine.now e) fault;
        (okf "machine %d %s up=%d/%d" i
           (if kind = "fail" then "down" else "up")
           (Engine.machines_up e)
           (Array.length (Engine.platform e).Gripps.Workload.speeds),
         `Continue)
      with Invalid_argument msg -> (errf "bad_request" "%s" msg, `Continue))
    | None -> (errf "usage" "%s MACHINE" kind, `Continue))
  | (("fail" | "recover") as kind) :: _ -> (errf "usage" "%s MACHINE" kind, `Continue)
  | "submit" :: _ -> (errf "usage" "submit ID BANK MOTIFS", `Continue)
  | [ "metrics" ] ->
    let body = String.split_on_char '\n' (Registry.to_text (Engine.metrics e)) in
    (List.filter (fun l -> l <> "") body @ [ "ok" ], `Continue)
  | [ "metrics"; "json" ] -> ([ Registry.to_json (Engine.metrics e); "ok" ], `Continue)
  | [ "trace"; "on" ] ->
    let ring = Obs.Sink.ring () in
    Obs.Sink.install ring;
    t.trace_ring <- Some ring;
    (okf "tracing to ring buffer (dump with spans)", `Continue)
  | [ "trace"; "on"; path ] -> (
    match Obs.Sink.file path with
    | sink ->
      Obs.Sink.install sink;
      t.trace_ring <- None;
      (okf "tracing to %s" path, `Continue)
    | exception Sys_error msg -> (errf "io" "%s" msg, `Continue))
  | [ "trace"; "off" ] ->
    Obs.Sink.uninstall ();
    t.trace_ring <- None;
    (okf "tracing off", `Continue)
  | "trace" :: _ -> (errf "usage" "trace on [PATH] | trace off", `Continue)
  | [ "spans" ] ->
    (* Always exactly one well-formed JSON line: the buffered records as
       an array ([[]] when tracing is off or streaming to a file). *)
    let lines =
      match t.trace_ring with
      | Some ring -> Obs.Sink.ring_lines ring
      | None -> []
    in
    ([ "[" ^ String.concat "," lines ^ "]"; "ok" ], `Continue)
  | "tick" :: _ when not (Clock.is_virtual (Engine.clock e)) ->
    ( errf "wall_clock" "tick only makes sense on a virtual clock (the wall clock ticks itself)",
      `Continue )
  | [ "tick"; seconds ] -> (
    match float_of_string_opt seconds with
    (* Finiteness matters: [inf] satisfies [> 0.] and would quantize into
       a nonsense engine date. *)
    | Some s when Float.is_finite s && s > 0. -> (
      try
        Engine.run_until e (Rat.add (Engine.now e) (Gripps.Workload.quantize s));
        Option.iter Admission.poll t.admission;
        (okf "now=%s" (Rat.to_string (Engine.now e)), `Continue)
      with Invalid_argument msg -> (errf "bad_request" "%s" msg, `Continue))
    | _ -> (errf "usage" "tick SECONDS (positive, finite)", `Continue))
  | "tick" :: _ -> (errf "usage" "tick SECONDS (positive, finite)", `Continue)
  | [ "snapshot" ] -> (
    match Engine.checkpoint e with
    | true -> (okf "snapshot seq=%d" (Engine.last_seq e), `Continue)
    | false ->
      (errf "no_wal" "no write-ahead log armed (start the server with --wal DIR)", `Continue)
    | exception Invalid_argument msg -> (errf "bad_request" "%s" msg, `Continue))
  | [ "drain" ] -> (
    try
      Engine.drain e;
      Option.iter Admission.poll t.admission;
      (okf "drained now=%s completed=%d" (Rat.to_string (Engine.now e)) (Engine.completed e),
       `Continue)
    with Invalid_argument msg -> (errf "bad_request" "%s" msg, `Continue))
  | [ "help" ] -> (help_lines @ [ "ok" ], `Continue)
  | [ "quit" ] -> (okf "bye", `Quit)
  | cmd :: _ -> (errf "unknown_command" "%S (try help)" cmd, `Continue)

let handle_line t ?client line =
  Mutex.protect t.lock (fun () -> handle_line_unlocked t ?client line)

let run t ic oc =
  output_string oc (banner ^ "\n");
  flush oc;
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      let replies, verdict = handle_line t ~client:"stdio" line in
      List.iter (fun r -> output_string oc (r ^ "\n")) replies;
      flush oc;
      (match verdict with `Continue -> loop () | `Quit -> ())
  in
  loop ()

(* --- socket serving --------------------------------------------------- *)

(* One connected client, served by its own domain.  The main loop owns the
   descriptor: a session signals completion through [s_done] and never
   closes [s_client] itself, so the reaper can join-then-close without a
   use-after-close (or fd-reuse) race, and a forced shutdown can
   [Unix.shutdown] a descriptor that is guaranteed still open to unblock a
   session parked in [input_line]. *)
type session = {
  s_client : Unix.file_descr;
  s_domain : unit Domain.t;
  s_done : bool Atomic.t;
}

let session_loop t stop client ~name s_done =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      let replies, verdict = handle_line t ~client:name line in
      (* Honor quit before writing: the farewell write may fail if the
         client is already gone, but the daemon must still stop. *)
      (match verdict with `Quit -> Atomic.set stop true | `Continue -> ());
      List.iter (fun r -> output_string oc (r ^ "\n")) replies;
      flush oc;
      (match verdict with `Continue -> loop () | `Quit -> ())
  in
  Fun.protect
    ~finally:(fun () -> Atomic.set s_done true)
    (fun () ->
      (* Any I/O failure — EPIPE surfacing as Sys_error or Unix_error, a
         torn connection mid-line — ends this client's session only; the
         accept loop keeps serving the next client.  A failed banner write
         (the client already hung up) must not even end the session: its
         pipelined commands are still in the socket buffer and must be
         executed, exactly as for any other mid-session vanishing act. *)
      (try
         output_string oc (banner ^ "\n");
         flush oc
       with Sys_error _ | Unix.Unix_error _ -> ());
      try loop () with Sys_error _ | End_of_file | Unix.Unix_error _ -> ())

let reap_finished sessions =
  let finished, live = List.partition (fun s -> Atomic.get s.s_done) !sessions in
  List.iter
    (fun s ->
      Domain.join s.s_domain;
      (try Unix.shutdown s.s_client Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close s.s_client with Unix.Unix_error _ -> ()))
    finished;
  sessions := live

let shutdown_sessions sessions =
  (* Hang up every client first — that turns a blocked [input_line] into
     end-of-file — then join; joining first would deadlock on any idle
     session. *)
  List.iter
    (fun s ->
      try Unix.shutdown s.s_client Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    !sessions;
  List.iter
    (fun s ->
      Domain.join s.s_domain;
      try Unix.close s.s_client with Unix.Unix_error _ -> ())
    !sessions;
  sessions := []

let run_socket t ~path =
  (* A client that disconnects mid-write must kill its session, not the
     daemon: without this, the first write after the hangup raises SIGPIPE
     and takes the whole process down. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop = Atomic.make false in
  (* SIGTERM asks for the same orderly exit as [quit]: finish in-flight
     commands, hang up the clients, remove the socket file. *)
  let saved_sigterm =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Bind-then-rename: binding directly to [path] needs the old file
     unlinked first, and between that unlink and the bind a concurrent
     daemon's live socket can be destroyed.  Binding to a unique temporary
     name and renaming it into place is atomic — whoever renames last owns
     the name, and nobody's bound socket is ever unlinked by a peer. *)
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  (try Unix.unlink tmp with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX tmp);
  let inode = (Unix.lstat tmp).Unix.st_ino in
  (try Unix.rename tmp path
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 8;
  let sessions = ref [] in
  Fun.protect
    ~finally:(fun () ->
      shutdown_sessions sessions;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (* Remove the socket file only while it is still ours: a daemon that
         lost [path] to a later rename must not delete the winner's
         socket. *)
      (match Unix.lstat path with
       | st -> if st.Unix.st_ino = inode then Unix.unlink path
       | exception Unix.Unix_error _ -> ());
      match saved_sigterm with
      | Some prev -> (
        try Sys.set_signal Sys.sigterm prev with Invalid_argument _ | Sys_error _ -> ())
      | None -> ())
    (fun () ->
      while not (Atomic.get stop) do
        (* Poll-accept so the loop notices [stop] (quit from a session,
           SIGTERM) within 100ms even with no connection activity. *)
        (match Unix.select [ sock ] [] [] 0.1 with
         | [], _, _ -> ()
         | _ :: _, _, _ ->
           let client, _ = Unix.accept sock in
           let s_done = Atomic.make false in
           t.next_client <- t.next_client + 1;
           let name = Printf.sprintf "client-%d" t.next_client in
           let s_domain =
             Domain.spawn (fun () -> session_loop t stop client ~name s_done)
           in
           sessions := { s_client = client; s_domain; s_done } :: !sessions
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        reap_finished sessions
      done)
