module Rat = Numeric.Rat

type t = {
  engine : Engine.t;
  (* Sink installed by [trace on] without a path: a ring buffer whose
     recent records the [spans] command dumps.  [trace on PATH] streams to
     a file instead and leaves this [None]. *)
  mutable trace_ring : Obs.Sink.t option;
  (* Serializes command execution: the engine (and [trace_ring]) are
     single-threaded objects, and concurrent socket sessions take this
     lock around each command, so commands interleave per line — never
     mid-solve. *)
  lock : Mutex.t;
}

let create engine = { engine; trace_ring = None; lock = Mutex.create () }

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let okf fmt = Printf.ksprintf (fun s -> [ "ok " ^ s ]) fmt
let errf fmt = Printf.ksprintf (fun s -> [ "err " ^ s ]) fmt

let handle_line_unlocked t line =
  let e = t.engine in
  Engine.catch_up e;
  match tokens line with
  | [] -> ([], `Continue)
  | comment :: _ when String.length comment > 0 && comment.[0] = '#' -> ([], `Continue)
  | [ "submit"; id; bank; motifs ] -> (
    match (int_of_string_opt bank, int_of_string_opt motifs) with
    | Some bank, Some motifs -> (
      try
        let k = Engine.submit e ~id ~bank ~num_motifs:motifs () in
        (okf "submitted %s job=%d" id k, `Continue)
      with Invalid_argument msg -> (errf "%s" msg, `Continue))
    | _ -> (errf "usage: submit ID BANK MOTIFS", `Continue))
  | [ "status" ] ->
    ( okf "now=%s submitted=%d active=%d completed=%d up=%d/%d starved=%d"
        (Rat.to_string (Engine.now e))
        (Engine.submitted e) (Engine.active e) (Engine.completed e) (Engine.machines_up e)
        (Array.length (Engine.platform e).Gripps.Workload.speeds)
        (Engine.starved e),
      `Continue )
  | [ (("fail" | "recover") as kind); machine ] -> (
    match int_of_string_opt machine with
    | Some i -> (
      let fault = if kind = "fail" then Trace.Fail i else Trace.Recover i in
      try
        Engine.inject e ~at:(Engine.now e) fault;
        (okf "machine %d %s up=%d/%d" i
           (if kind = "fail" then "down" else "up")
           (Engine.machines_up e)
           (Array.length (Engine.platform e).Gripps.Workload.speeds),
         `Continue)
      with Invalid_argument msg -> (errf "%s" msg, `Continue))
    | None -> (errf "usage: %s MACHINE" kind, `Continue))
  | [ "metrics" ] ->
    let body = String.split_on_char '\n' (Metrics.to_text (Engine.metrics e)) in
    (List.filter (fun l -> l <> "") body @ [ "ok" ], `Continue)
  | [ "metrics"; "json" ] -> ([ Metrics.to_json (Engine.metrics e); "ok" ], `Continue)
  | [ "trace"; "on" ] ->
    let ring = Obs.Sink.ring () in
    Obs.Sink.install ring;
    t.trace_ring <- Some ring;
    (okf "tracing to ring buffer (dump with spans)", `Continue)
  | [ "trace"; "on"; path ] -> (
    match Obs.Sink.file path with
    | sink ->
      Obs.Sink.install sink;
      t.trace_ring <- None;
      (okf "tracing to %s" path, `Continue)
    | exception Sys_error msg -> (errf "%s" msg, `Continue))
  | [ "trace"; "off" ] ->
    Obs.Sink.uninstall ();
    t.trace_ring <- None;
    (okf "tracing off", `Continue)
  | "trace" :: _ -> (errf "usage: trace on [PATH] | trace off", `Continue)
  | [ "spans" ] ->
    (* Always exactly one well-formed JSON line: the buffered records as
       an array ([[]] when tracing is off or streaming to a file). *)
    let lines =
      match t.trace_ring with
      | Some ring -> Obs.Sink.ring_lines ring
      | None -> []
    in
    ([ "[" ^ String.concat "," lines ^ "]"; "ok" ], `Continue)
  | "tick" :: _ when not (Clock.is_virtual (Engine.clock e)) ->
    (errf "tick only makes sense on a virtual clock (the wall clock ticks itself)",
     `Continue)
  | [ "tick"; seconds ] -> (
    match float_of_string_opt seconds with
    (* Finiteness matters: [inf] satisfies [> 0.] and would quantize into
       a nonsense engine date. *)
    | Some s when Float.is_finite s && s > 0. -> (
      try
        Engine.run_until e (Rat.add (Engine.now e) (Gripps.Workload.quantize s));
        (okf "now=%s" (Rat.to_string (Engine.now e)), `Continue)
      with Invalid_argument msg -> (errf "%s" msg, `Continue))
    | _ -> (errf "usage: tick SECONDS (positive, finite)", `Continue))
  | [ "snapshot" ] -> (
    match Engine.checkpoint e with
    | true -> (okf "snapshot seq=%d" (Engine.last_seq e), `Continue)
    | false -> (errf "no write-ahead log armed (start the server with --wal DIR)", `Continue)
    | exception Invalid_argument msg -> (errf "%s" msg, `Continue))
  | [ "drain" ] -> (
    try
      Engine.drain e;
      (okf "drained now=%s completed=%d" (Rat.to_string (Engine.now e)) (Engine.completed e),
       `Continue)
    with Invalid_argument msg -> (errf "%s" msg, `Continue))
  | [ "quit" ] -> (okf "bye", `Quit)
  | cmd :: _ ->
    (errf
       "unknown command %S (try submit/status/metrics/trace/spans/fail/recover/tick/drain/snapshot/quit)"
       cmd,
     `Continue)

let handle_line t line = Mutex.protect t.lock (fun () -> handle_line_unlocked t line)

let run t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      let replies, verdict = handle_line t line in
      List.iter (fun r -> output_string oc (r ^ "\n")) replies;
      flush oc;
      (match verdict with `Continue -> loop () | `Quit -> ())
  in
  loop ()

(* --- socket serving --------------------------------------------------- *)

(* One connected client, served by its own domain.  The main loop owns the
   descriptor: a session signals completion through [s_done] and never
   closes [s_client] itself, so the reaper can join-then-close without a
   use-after-close (or fd-reuse) race, and a forced shutdown can
   [Unix.shutdown] a descriptor that is guaranteed still open to unblock a
   session parked in [input_line]. *)
type session = {
  s_client : Unix.file_descr;
  s_domain : unit Domain.t;
  s_done : bool Atomic.t;
}

let session_loop t stop client s_done =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      let replies, verdict = handle_line t line in
      (* Honor quit before writing: the farewell write may fail if the
         client is already gone, but the daemon must still stop. *)
      (match verdict with `Quit -> Atomic.set stop true | `Continue -> ());
      List.iter (fun r -> output_string oc (r ^ "\n")) replies;
      flush oc;
      (match verdict with `Continue -> loop () | `Quit -> ())
  in
  Fun.protect
    ~finally:(fun () -> Atomic.set s_done true)
    (fun () ->
      (* Any I/O failure — EPIPE surfacing as Sys_error or Unix_error, a
         torn connection mid-line — ends this client's session only; the
         accept loop keeps serving the next client. *)
      try loop () with Sys_error _ | End_of_file | Unix.Unix_error _ -> ())

let reap_finished sessions =
  let finished, live = List.partition (fun s -> Atomic.get s.s_done) !sessions in
  List.iter
    (fun s ->
      Domain.join s.s_domain;
      (try Unix.shutdown s.s_client Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close s.s_client with Unix.Unix_error _ -> ()))
    finished;
  sessions := live

let shutdown_sessions sessions =
  (* Hang up every client first — that turns a blocked [input_line] into
     end-of-file — then join; joining first would deadlock on any idle
     session. *)
  List.iter
    (fun s ->
      try Unix.shutdown s.s_client Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    !sessions;
  List.iter
    (fun s ->
      Domain.join s.s_domain;
      try Unix.close s.s_client with Unix.Unix_error _ -> ())
    !sessions;
  sessions := []

let run_socket t ~path =
  (* A client that disconnects mid-write must kill its session, not the
     daemon: without this, the first write after the hangup raises SIGPIPE
     and takes the whole process down. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop = Atomic.make false in
  (* SIGTERM asks for the same orderly exit as [quit]: finish in-flight
     commands, hang up the clients, remove the socket file. *)
  let saved_sigterm =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Bind-then-rename: binding directly to [path] needs the old file
     unlinked first, and between that unlink and the bind a concurrent
     daemon's live socket can be destroyed.  Binding to a unique temporary
     name and renaming it into place is atomic — whoever renames last owns
     the name, and nobody's bound socket is ever unlinked by a peer. *)
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  (try Unix.unlink tmp with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX tmp);
  let inode = (Unix.lstat tmp).Unix.st_ino in
  (try Unix.rename tmp path
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 8;
  let sessions = ref [] in
  Fun.protect
    ~finally:(fun () ->
      shutdown_sessions sessions;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (* Remove the socket file only while it is still ours: a daemon that
         lost [path] to a later rename must not delete the winner's
         socket. *)
      (match Unix.lstat path with
       | st -> if st.Unix.st_ino = inode then Unix.unlink path
       | exception Unix.Unix_error _ -> ());
      match saved_sigterm with
      | Some prev -> (
        try Sys.set_signal Sys.sigterm prev with Invalid_argument _ | Sys_error _ -> ())
      | None -> ())
    (fun () ->
      while not (Atomic.get stop) do
        (* Poll-accept so the loop notices [stop] (quit from a session,
           SIGTERM) within 100ms even with no connection activity. *)
        (match Unix.select [ sock ] [] [] 0.1 with
         | [], _, _ -> ()
         | _ :: _, _, _ ->
           let client, _ = Unix.accept sock in
           let s_done = Atomic.make false in
           let s_domain =
             Domain.spawn (fun () -> session_loop t stop client s_done)
           in
           sessions := { s_client = client; s_domain; s_done } :: !sessions
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        reap_finished sessions
      done)
