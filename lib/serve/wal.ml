(* Write-ahead event log for the serving engine.

   Every externally visible engine event is encoded as one framed record
   and appended — flushed and fsync'd — *before* the engine applies it, so
   a crash at any instant leaves a log whose replay reproduces the engine
   state bit for bit (the engine is deterministic in its external event
   sequence; DESIGN.md §11).

   Frame layout, all ASCII:

     r <seq> <len> <adler32>\n<payload>\n

   [seq] is a strictly increasing record number starting at 1 (snapshots
   record the highest seq they cover, so a resume can skip records already
   folded into the snapshot even when the post-snapshot truncation was
   lost to a crash).  [len] is the byte length of [payload]; the Adler-32
   checksum is over the payload bytes.  A torn tail — a partial header, a
   short payload, a checksum mismatch — marks the end of the valid prefix:
   readers stop there, and {!open_append} truncates the file back to it so
   new records never follow garbage. *)

module Rat = Numeric.Rat

type record =
  | Submit of { id : string; arrival : Rat.t; bank : int; num_motifs : int }
  | Inject of { at : Rat.t; fault : Trace.fault }
  | Advance of Rat.t
  | Drain

(* wal.* telemetry lives in the process-global registry, next to the lp.*
   and rat.* families. *)
let c_appends = Obs.Registry.counter Obs.Registry.global "wal.appends"
let c_bytes = Obs.Registry.counter Obs.Registry.global "wal.append_bytes"
let c_fsyncs = Obs.Registry.counter Obs.Registry.global "wal.fsyncs"
let c_replayed = Obs.Registry.counter Obs.Registry.global "wal.records_replayed"
let c_torn = Obs.Registry.counter Obs.Registry.global "wal.torn_tails"

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

let encodable_id id =
  id <> ""
  && not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') id)

let encode = function
  | Submit { id; arrival; bank; num_motifs } ->
    if not (encodable_id id) then
      invalid_arg
        (Printf.sprintf "Wal: request id %S is empty or contains whitespace" id);
    Printf.sprintf "submit %s %s %d %d" id (Rat.to_string arrival) bank num_motifs
  | Inject { at; fault } ->
    let kind, machine =
      match fault with Trace.Fail i -> ("fail", i) | Trace.Recover i -> ("recover", i)
    in
    Printf.sprintf "inject %s %s %d" (Rat.to_string at) kind machine
  | Advance date -> Printf.sprintf "advance %s" (Rat.to_string date)
  | Drain -> "drain"

let decode payload =
  let bad () = invalid_arg (Printf.sprintf "Wal: bad record payload %S" payload) in
  let rat s = match Rat.of_string s with r -> r | exception _ -> bad () in
  let int s = match int_of_string_opt s with Some v -> v | None -> bad () in
  match String.split_on_char ' ' payload |> List.filter (fun s -> s <> "") with
  | [ "submit"; id; arrival; bank; motifs ] ->
    Submit { id; arrival = rat arrival; bank = int bank; num_motifs = int motifs }
  | [ "inject"; at; "fail"; machine ] ->
    Inject { at = rat at; fault = Trace.Fail (int machine) }
  | [ "inject"; at; "recover"; machine ] ->
    Inject { at = rat at; fault = Trace.Recover (int machine) }
  | [ "advance"; date ] -> Advance (rat date)
  | [ "drain" ] -> Drain
  | _ -> bad ()

(* --- reading ---------------------------------------------------------- *)

(* Returns the valid records (with their seqs) and the byte length of the
   valid prefix; [torn] reports whether trailing garbage was skipped. *)
let read_file path =
  if not (Sys.file_exists path) then ([], 0, false)
  else
    In_channel.with_open_bin path (fun ic ->
        let records = ref [] in
        let valid = ref 0 in
        let torn = ref false in
        let rec loop () =
          match In_channel.input_line ic with
          | None -> ()
          | Some header -> (
            match String.split_on_char ' ' header with
            | [ "r"; seq; len; sum ] -> (
              match (int_of_string_opt seq, int_of_string_opt len, int_of_string_opt sum)
              with
              | Some seq, Some len, Some sum when len >= 0 -> (
                let payload = Bytes.create len in
                match In_channel.really_input ic payload 0 len with
                | None -> torn := true
                | Some () -> (
                  match In_channel.input_char ic with
                  | Some '\n' ->
                    let payload = Bytes.to_string payload in
                    if adler32 payload <> sum then torn := true
                    else begin
                      match decode payload with
                      | record ->
                        records := (seq, record) :: !records;
                        (* header + '\n' + payload + '\n' *)
                        valid := !valid + String.length header + 1 + len + 1;
                        loop ()
                      | exception Invalid_argument _ -> torn := true
                    end
                  | Some _ | None -> torn := true))
              | _ -> torn := true)
            | _ -> torn := true)
        in
        loop ();
        (* Anything between the valid prefix and end-of-file is a torn
           record from a crash mid-append. *)
        if (not !torn) && In_channel.length ic > Int64.of_int !valid then torn := true;
        (List.rev !records, !valid, !torn))

let replay path =
  let records, valid, torn = read_file path in
  if torn then Obs.Registry.incr c_torn;
  Obs.Registry.add c_replayed (List.length records);
  (records, valid, torn)

(* --- writing ---------------------------------------------------------- *)

type writer = { fd : Unix.file_descr; mutable next_seq : int; path : string }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Open for appending after the valid prefix.  [valid_length] (from
   {!replay}) truncates a torn tail away first; [next_seq] is one past the
   highest seq already durable (1 on a fresh log). *)
let open_append ?valid_length ~next_seq path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (match valid_length with
   | Some len ->
     Unix.ftruncate fd len;
     ignore (Unix.lseek fd len Unix.SEEK_SET)
   | None -> ignore (Unix.lseek fd 0 Unix.SEEK_END));
  { fd; next_seq; path }

let append w record =
  let payload = encode record in
  let seq = w.next_seq in
  let frame =
    Printf.sprintf "r %d %d %d\n%s\n" seq (String.length payload) (adler32 payload)
      payload
  in
  Obs.Span.with_span "wal.append" (fun () ->
      Obs.Span.set_int "seq" seq;
      Obs.Span.set_int "bytes" (String.length frame);
      write_all w.fd frame;
      Obs.Span.with_span "wal.fsync" (fun () -> Unix.fsync w.fd));
  Obs.Registry.incr c_appends;
  Obs.Registry.add c_bytes (String.length frame);
  Obs.Registry.incr c_fsyncs;
  w.next_seq <- seq + 1;
  seq

(* Drop every record: called right after a snapshot made the prefix
   redundant.  Seqs keep counting up — a resume that finds a stale
   (pre-truncation) log simply skips records at or below the snapshot's
   covered seq. *)
let truncate w =
  Unix.ftruncate w.fd 0;
  ignore (Unix.lseek w.fd 0 Unix.SEEK_SET)

let next_seq w = w.next_seq

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()
