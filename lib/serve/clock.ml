type t = Virtual of float ref | Wall

let virtual_ ?(start = 0.) () = Virtual (ref start)
let wall () = Wall

let now = function
  | Virtual r -> !r
  | Wall -> Unix.gettimeofday ()

let advance_to t target =
  match t with
  | Virtual r -> if target > !r then r := target
  | Wall ->
    let rec sleep () =
      let dt = target -. Unix.gettimeofday () in
      if dt > 0. then begin
        (try Unix.sleepf dt with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        sleep ()
      end
    in
    sleep ()

let is_virtual = function Virtual _ -> true | Wall -> false
