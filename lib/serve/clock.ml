(* Wall time is monotonized: [Unix.gettimeofday] may step backwards (NTP
   slew, manual resets), and both the engine's catch-up and the sleep loop
   below assume time only moves forward.  The wall record tracks an
   additive [offset] that absorbs every observed backwards step, so [now]
   never regresses, and [advance_to] credits each completed sleep to the
   monotonic view, so the loop terminates after one full sleep instead of
   chasing a receding target. *)

type wall = {
  src : unit -> float;  (* raw clock, normally Unix.gettimeofday *)
  sleep : float -> unit;  (* may raise Unix_error (EINTR, _, _) *)
  mutable offset : float;  (* monotonic correction added to [src ()] *)
  mutable last : float;  (* last value [now] returned *)
}

type t = Virtual of float ref | Wall of wall

let virtual_ ?(start = 0.) () = Virtual (ref start)

let wall_with ~now ~sleep () =
  Wall { src = now; sleep; offset = 0.; last = neg_infinity }

let wall () = wall_with ~now:Unix.gettimeofday ~sleep:Unix.sleepf ()

let wall_now w =
  let v = w.src () +. w.offset in
  (* A non-finite reading (a broken source) is reported as-is but must not
     poison [offset]/[last] — folding an infinite step into the offset
     would pin the clock forever. *)
  if not (Float.is_finite v) then v
  else begin
    let v =
      if v < w.last then begin
        (* The raw clock stepped backwards: fold the step into the offset
           so observed time stays put instead of regressing. *)
        w.offset <- w.offset +. (w.last -. v);
        w.last
      end
      else v
    in
    w.last <- v;
    v
  end

let now = function Virtual r -> !r | Wall w -> wall_now w

let advance_to t target =
  match t with
  | Virtual r -> if target > !r then r := target
  | Wall w ->
    let rec loop () =
      let before = wall_now w in
      let dt = target -. before in
      if dt > 0. then begin
        match w.sleep dt with
        | () ->
          (* Credit the full sleep even if the raw clock stepped back
             meanwhile: monotonic time advances by at least [dt], so the
             next iteration sees the target reached and the total time
             slept is bounded by the initial gap (plus interruptions). *)
          let after = wall_now w in
          if after < before +. dt then begin
            w.offset <- w.offset +. (before +. dt -. after);
            w.last <- before +. dt
          end;
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      end
    in
    loop ()

let is_virtual = function Virtual _ -> true | Wall _ -> false
