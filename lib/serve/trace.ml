module Rat = Numeric.Rat
module W = Gripps.Workload

type entry = { id : string; request : W.request }

type fault = Fail of int | Recover of int

type event = { at : Rat.t; fault : fault }

type t = { platform : W.platform; entries : entry list; events : event list }

let fail line fmt =
  Printf.ksprintf (fun s -> invalid_arg (Printf.sprintf "Trace: line %d: %s" line s)) fmt

let parse_rat line s =
  match Rat.of_string s with
  | r -> r
  | exception _ -> fail line "bad rational %S" s

let parse_int line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "bad %s %S" what s

let index line what bound s =
  let v = parse_int line what s in
  if v < 0 || v >= bound then fail line "%s %d out of range [0, %d)" what v bound;
  v

let sort_entries entries =
  (* Stable: ties keep input order. *)
  List.stable_sort
    (fun a b -> Rat.compare a.request.W.arrival b.request.W.arrival)
    entries

let sort_events events =
  (* Stable: a fail and its recovery at the same instant keep their order. *)
  List.stable_sort (fun a b -> Rat.compare a.at b.at) events

let of_string text =
  let machines = ref None and banks = ref None in
  let speeds = ref [||] and bank_sizes = ref [||] and has_bank = ref [||] in
  let entries = ref [] in
  let events = ref [] in
  let seen_header = ref false in
  let seen_ids = Hashtbl.create 64 in
  let dims line =
    match (!machines, !banks) with
    | Some m, Some b -> (m, b)
    | _ -> fail line "'machines' and 'banks' must come before this directive"
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let content =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match
        String.split_on_char ' ' content
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun tok -> tok <> "")
      with
      | [] -> ()
      | [ "trace"; "v1" ] -> seen_header := true
      | "trace" :: v :: _ -> fail line "unsupported trace version %S" v
      | [ "machines"; m ] -> (
        (* Redeclaring the dimensions would silently reset speeds/holds
           and — worse — invalidate machine/bank indices already range-
           checked against the first declaration, deferring the error to
           an array access deep in the engine. *)
        if !machines <> None then fail line "duplicate 'machines' line";
        match int_of_string_opt m with
        | Some m when m > 0 ->
          machines := Some m;
          speeds := Array.make m Rat.one;
          (match !banks with
           | Some b -> has_bank := Array.make_matrix m b false
           | None -> ())
        | _ -> fail line "bad machine count %S" m)
      | [ "banks"; b ] -> (
        if !banks <> None then fail line "duplicate 'banks' line";
        match int_of_string_opt b with
        | Some b when b > 0 ->
          banks := Some b;
          bank_sizes := Array.make b 0;
          (match !machines with
           | Some m -> has_bank := Array.make_matrix m b false
           | None -> ())
        | _ -> fail line "bad bank count %S" b)
      | [ "speed"; i; s ] ->
        let m, _ = dims line in
        let i = index line "machine" m i in
        let s = parse_rat line s in
        if Rat.sign s <= 0 then fail line "speed must be positive";
        !speeds.(i) <- s
      | [ "bank"; b; size ] ->
        let _, nb = dims line in
        let b = index line "bank" nb b in
        let size = parse_int line "bank size" size in
        if size <= 0 then fail line "bank size must be positive";
        !bank_sizes.(b) <- size
      | "holds" :: i :: bs ->
        let m, nb = dims line in
        let i = index line "machine" m i in
        List.iter (fun b -> !has_bank.(i).(index line "bank" nb b) <- true) bs
      | [ "req"; id; arrival; bank; motifs ] ->
        let _, nb = dims line in
        if Hashtbl.mem seen_ids id then fail line "duplicate request id %S" id;
        Hashtbl.add seen_ids id ();
        let arrival = parse_rat line arrival in
        if Rat.sign arrival < 0 then fail line "negative arrival";
        let bank = index line "bank" nb bank in
        let num_motifs = parse_int line "motif count" motifs in
        if num_motifs <= 0 then fail line "motif count must be positive";
        entries := { id; request = { W.arrival; bank; num_motifs } } :: !entries
      | [ (("fail" | "recover") as kind); at; machine ] ->
        let m, _ = dims line in
        let at = parse_rat line at in
        if Rat.sign at < 0 then fail line "negative %s time" kind;
        let machine = index line "machine" m machine in
        let fault = if kind = "fail" then Fail machine else Recover machine in
        events := { at; fault } :: !events
      | tok :: _ -> fail line "unknown directive %S" tok)
    (String.split_on_char '\n' text);
  if not !seen_header then invalid_arg "Trace: missing 'trace v1' header";
  match (!machines, !banks) with
  | None, _ -> invalid_arg "Trace: missing 'machines' line"
  | _, None -> invalid_arg "Trace: missing 'banks' line"
  | Some _, Some _ ->
    Array.iteri
      (fun b size ->
        if size = 0 then
          invalid_arg (Printf.sprintf "Trace: bank %d has no 'bank %d SIZE' line" b b))
      !bank_sizes;
    let platform =
      { W.speeds = !speeds; bank_sizes = !bank_sizes; has_bank = !has_bank }
    in
    let held b = Array.exists (fun row -> row.(b)) !has_bank in
    List.iter
      (fun e ->
        if not (held e.request.W.bank) then
          invalid_arg
            (Printf.sprintf "Trace: request %S targets bank %d, held by no machine" e.id
               e.request.W.bank))
      !entries;
    {
      platform;
      entries = sort_entries (List.rev !entries);
      events = sort_events (List.rev !events);
    }

let to_string t =
  let buf = Buffer.create 1024 in
  let m = Array.length t.platform.W.speeds in
  let b = Array.length t.platform.W.bank_sizes in
  Buffer.add_string buf "trace v1\n";
  Buffer.add_string buf (Printf.sprintf "machines %d\n" m);
  Buffer.add_string buf (Printf.sprintf "banks %d\n" b);
  Array.iteri
    (fun i s -> Buffer.add_string buf (Printf.sprintf "speed %d %s\n" i (Rat.to_string s)))
    t.platform.W.speeds;
  Array.iteri
    (fun k size -> Buffer.add_string buf (Printf.sprintf "bank %d %d\n" k size))
    t.platform.W.bank_sizes;
  Array.iteri
    (fun i row ->
      let held =
        Array.to_list (Array.mapi (fun k h -> if h then Some (string_of_int k) else None) row)
        |> List.filter_map Fun.id
      in
      if held <> [] then
        Buffer.add_string buf (Printf.sprintf "holds %d %s\n" i (String.concat " " held)))
    t.platform.W.has_bank;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "req %s %s %d %d\n" e.id
           (Rat.to_string e.request.W.arrival)
           e.request.W.bank e.request.W.num_motifs))
    t.entries;
  List.iter
    (fun e ->
      let kind, machine =
        match e.fault with Fail i -> ("fail", i) | Recover i -> ("recover", i)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s %d\n" kind (Rat.to_string e.at) machine))
    t.events;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let to_instance t = W.to_instance t.platform (List.map (fun e -> e.request) t.entries)

let ids t = Array.of_list (List.map (fun e -> e.id) t.entries)

let named_entries requests =
  List.mapi (fun k r -> { id = Printf.sprintf "r%04d" k; request = r }) requests

let poisson ~seed ?(machines = 4) ?(banks = 3) ?(replication = 2) ?(max_motifs = 60) ~rate
    ~count () =
  let rng = Gripps.Prng.create seed in
  let platform = W.random_platform rng ~machines ~banks ~replication in
  let requests = W.poisson_requests rng ~rate ~count ~max_motifs ~banks in
  { platform; entries = sort_entries (named_entries requests); events = [] }

let diurnal ~seed ?(machines = 4) ?(banks = 3) ?(replication = 2) ?(max_motifs = 60)
    ?(day = 3600.) ?(trough_fraction = 0.05) ~peak_rate ~count () =
  if peak_rate <= 0. || day <= 0. then invalid_arg "Trace.diurnal: bad rate or day";
  if trough_fraction < 0. || trough_fraction > 1. then
    invalid_arg "Trace.diurnal: trough_fraction outside [0, 1]";
  let rng = Gripps.Prng.create seed in
  let platform = W.random_platform rng ~machines ~banks ~replication in
  let profile t =
    let s = sin (Float.pi *. Float.rem t day /. day) in
    trough_fraction +. ((1. -. trough_fraction) *. s *. s)
  in
  (* Thinning (Lewis–Shedler): homogeneous candidates at [peak_rate],
     accepted with probability [profile t]. *)
  let now = ref 0.0 in
  let rec next_arrival () =
    now := !now +. Gripps.Prng.exponential rng ~mean:(1. /. peak_rate);
    if Gripps.Prng.float rng <= profile !now then !now else next_arrival ()
  in
  let requests =
    List.init count (fun _ ->
        let t = next_arrival () in
        {
          W.arrival = W.quantize t;
          bank = Gripps.Prng.int rng banks;
          num_motifs = 1 + Gripps.Prng.int rng max_motifs;
        })
  in
  { platform; entries = sort_entries (named_entries requests); events = [] }

let horizon t =
  List.fold_left (fun acc e -> Rat.max acc e.request.W.arrival) Rat.zero t.entries

let with_faults ~seed ?(mtbf = 300.) ?(mttr = 30.) t =
  if mtbf <= 0. || mttr <= 0. then invalid_arg "Trace.with_faults: bad mtbf or mttr";
  let rng = Gripps.Prng.create seed in
  let stop = Rat.to_float (horizon t) in
  let machines = Array.length t.platform.W.speeds in
  let events = ref [] in
  (* Per machine, alternate exponential up and down periods starting up at
     time 0.  Failures are only drawn inside the trace's arrival span, and
     every failure gets its recovery — possibly past the span — so a drain
     of the replayed trace can always finish the work. *)
  for i = 0 to machines - 1 do
    let now = ref 0.0 in
    let continue = ref true in
    while !continue do
      let fail_at = !now +. Gripps.Prng.exponential rng ~mean:mtbf in
      if fail_at >= stop then continue := false
      else begin
        let recover_at = fail_at +. Gripps.Prng.exponential rng ~mean:mttr in
        events :=
          { at = W.quantize recover_at; fault = Recover i }
          :: { at = W.quantize fail_at; fault = Fail i }
          :: !events;
        now := recover_at
      end
    done
  done;
  { t with events = sort_events (List.rev !events) }
