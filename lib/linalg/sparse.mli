(** Column-major sparse matrices (CSC), polymorphic in the value type.

    Built incrementally by the LP formulations and consumed column-wise by
    the revised simplex engine.  No field operations are performed here:
    duplicate coordinates are rejected, not combined. *)

type 'f t

val nrows : 'f t -> int
val ncols : 'f t -> int
val nnz : 'f t -> int

val density : 'f t -> float
(** Fraction of stored entries over [nrows * ncols]; 0 for empty shapes. *)

module Builder : sig
  type 'f state

  val create : nrows:int -> ncols:int -> 'f state

  val add : 'f state -> row:int -> col:int -> 'f -> unit
  (** Entries within a column must be added in strictly increasing row
      order; [finish] raises [Invalid_argument] otherwise. *)

  val finish : 'f state -> 'f t
end

val iter_col : 'f t -> int -> (int -> 'f -> unit) -> unit
(** [iter_col t j f] calls [f row value] for each stored entry of column
    [j], in increasing row order. *)

val fold_col : 'f t -> int -> ('a -> int -> 'f -> 'a) -> 'a -> 'a
val col_nnz : 'f t -> int -> int
