(* Ordered-field abstraction shared by the dense linear algebra and the
   simplex solver.  Two instances matter in this project:
   - [Rational]: exact arithmetic, used by every offline solver so that the
     paper's polynomial-time exactness claims actually hold;
   - [Approx]: IEEE doubles with an epsilon tolerance, used by the online
     simulator which re-solves an LP at every event. *)

module type S = sig
  type t

  val zero : t
  val one : t

  val of_int : int -> t
  val of_rat : Numeric.Rat.t -> t
  val to_float : t -> float

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t

  val compare : t -> t -> int
  val equal : t -> t -> bool

  val is_zero : t -> bool
  (** Within the field's tolerance: exact zero for [Rational], [|x| < eps]
      for [Approx].  The simplex pivoting rules only use this predicate and
      [compare], so numerical robustness is confined here. *)

  val sign : t -> int
  (** [-1], [0] (within tolerance) or [1]. *)

  val exact : bool
  (** Whether arithmetic in this field is exact.  Solver instrumentation
      uses it to split statistics between exact and approximate solves. *)

  val pp : Format.formatter -> t -> unit
end

(* Inherits the tagged two-representation fast path (DESIGN.md §10): as
   long as a solve's rationals fit a machine word, every field operation
   below stays allocation-light native arithmetic, promoting to limbs
   only on overflow.  Nothing here needs to know which representation a
   value is in. *)
module Rational : S with type t = Numeric.Rat.t = struct
  include Numeric.Rat

  let of_rat x = x
  let exact = true
end

module Approx : S with type t = float = struct
  type t = float

  let eps = 1e-9
  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let of_rat = Numeric.Rat.to_float
  let to_float x = x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let abs = Float.abs
  let is_zero x = Float.abs x < eps
  let sign x = if x > eps then 1 else if x < -.eps then -1 else 0
  let exact = false
  let compare a b = if is_zero (a -. b) then 0 else Float.compare a b
  let equal a b = compare a b = 0
  let pp fmt x = Format.fprintf fmt "%g" x
end
