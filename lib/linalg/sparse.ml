(* Column-major sparse matrices (CSC: compressed sparse columns).

   The scheduling formulations emit constraint matrices where one variable
   exists per machine×interval, so each row touches only a handful of the
   columns and the dense representation is ~95% zeros on realistic
   instances.  The revised simplex engine only ever walks whole columns
   (pricing a candidate entering column, forming B⁻¹·A_j), which is exactly
   the access pattern CSC makes cheap.

   The representation is polymorphic in the coefficient type: the builder
   never combines entries, so no field operations are needed here.  Callers
   that may feed duplicate (row, col) coordinates must combine them
   themselves (see [Lp.Revised.prepare]). *)

type 'f t = {
  nrows : int;
  ncols : int;
  col_ptr : int array; (* length ncols + 1; column j spans [col_ptr.(j), col_ptr.(j+1)) *)
  row_idx : int array; (* length nnz; row index of each stored entry *)
  vals : 'f array; (* length nnz; value of each stored entry *)
}

let nrows t = t.nrows
let ncols t = t.ncols
let nnz t = Array.length t.vals

let density t =
  let cells = t.nrows * t.ncols in
  if cells = 0 then 0.0 else float_of_int (nnz t) /. float_of_int cells

(* Incremental builder: entries are appended per column and materialized
   into CSC arrays by [finish].  Within a column, entries must arrive in
   strictly increasing row order (the natural order when scanning
   constraint rows top to bottom), which [finish] checks. *)
module Builder = struct
  type 'f state = {
    b_nrows : int;
    b_ncols : int;
    mutable entries : (int * int * 'f) list; (* (col, row, value), reversed *)
    mutable count : int;
  }

  let create ~nrows ~ncols =
    if nrows < 0 || ncols < 0 then invalid_arg "Sparse.Builder.create";
    { b_nrows = nrows; b_ncols = ncols; entries = []; count = 0 }

  let add st ~row ~col v =
    if row < 0 || row >= st.b_nrows || col < 0 || col >= st.b_ncols then
      invalid_arg "Sparse.Builder.add: index out of range";
    st.entries <- (col, row, v) :: st.entries;
    st.count <- st.count + 1

  let finish st : 'f t =
    let n = st.count in
    let counts = Array.make (st.b_ncols + 1) 0 in
    List.iter (fun (c, _, _) -> counts.(c + 1) <- counts.(c + 1) + 1) st.entries;
    for j = 1 to st.b_ncols do
      counts.(j) <- counts.(j) + counts.(j - 1)
    done;
    let col_ptr = Array.copy counts in
    let row_idx = Array.make n (-1) in
    let vals_opt = Array.make n None in
    (* [entries] is reversed insertion order; walk it backwards-compatible
       by filling columns from their ends. *)
    let next = Array.make st.b_ncols 0 in
    Array.blit col_ptr 1 next 0 st.b_ncols;
    List.iter
      (fun (c, r, v) ->
        let pos = next.(c) - 1 in
        next.(c) <- pos;
        row_idx.(pos) <- r;
        vals_opt.(pos) <- Some v)
      st.entries;
    let vals =
      Array.map (function Some v -> v | None -> assert false) vals_opt
    in
    (* Enforce sorted, duplicate-free rows within each column. *)
    for j = 0 to st.b_ncols - 1 do
      for k = col_ptr.(j) + 1 to col_ptr.(j + 1) - 1 do
        if row_idx.(k - 1) >= row_idx.(k) then
          invalid_arg "Sparse.Builder.finish: column entries not strictly increasing"
      done
    done;
    { nrows = st.b_nrows; ncols = st.b_ncols; col_ptr; row_idx; vals }
end

let iter_col t j f =
  if j < 0 || j >= t.ncols then invalid_arg "Sparse.iter_col";
  for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
    f t.row_idx.(k) t.vals.(k)
  done

let fold_col t j f acc =
  if j < 0 || j >= t.ncols then invalid_arg "Sparse.fold_col";
  let acc = ref acc in
  for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
    acc := f !acc t.row_idx.(k) t.vals.(k)
  done;
  !acc

let col_nnz t j =
  if j < 0 || j >= t.ncols then invalid_arg "Sparse.col_nnz";
  t.col_ptr.(j + 1) - t.col_ptr.(j)
