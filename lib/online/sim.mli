(** Event-driven online scheduling simulator.

    The paper's conclusion reports "preliminary simulations" in which an
    online adaptation of the offline algorithm, enhanced by a simple
    preemption scheme, beats classical heuristics such as Minimum
    Completion Time.  This engine reproduces that experiment: jobs arrive
    at their release dates, the policy is consulted at every event
    (arrival, completion, or self-requested review) and answers with
    machine shares; the engine advances simulated time exactly (rational
    arithmetic) and materializes a legal divisible schedule.

    Between two events each machine [i] devotes a constant share
    [s_{i,j} ∈ \[0,1\]] of its time to job [j] ([Σ_j s_{i,j} ≤ 1]); job [j]
    then progresses at rate [Σ_i s_{i,j}/c_{i,j}].  Within the event
    segment the engine lays the shares out sequentially on each machine, so
    the resulting schedule is machine-disjoint and passes
    {!Sched_core.Schedule.validate_divisible}. *)

module Rat = Numeric.Rat

type job_view = {
  id : int;
  release : Rat.t;
  weight : Rat.t;
  remaining : Rat.t;  (** fraction of the job still to process, in (0, 1] *)
}

type share = {
  machine : int;
  job : int;
  share : Rat.t;  (** fraction of the machine's time, in (0, 1] *)
}

type decision = {
  shares : share list;
  review_at : Rat.t option;
      (** ask to be consulted again at this date even if no event occurs *)
}

(** Online scheduling policy.  The engine passes the full instance to
    [init] for convenience (cost matrix, weights), but an honest online
    policy must only ever inspect jobs that have been announced through
    [on_arrival]. *)
module type POLICY = sig
  type state

  val name : string
  val init : Sched_core.Instance.t -> state
  val on_arrival : state -> now:Rat.t -> job:int -> unit
  val on_completion : state -> now:Rat.t -> job:int -> unit

  val on_platform_change :
    state -> now:Rat.t -> inst:Sched_core.Instance.t -> [ `Adapted | `Rebuild ]
  (** Machine availability changed: [inst] is the same job set under the
      new cost matrix (down machines masked to [None], the paper's +∞;
      degraded machines proportionally slower).  Return [`Adapted] after
      updating the state in place to schedule against [inst]; return
      [`Rebuild] (the {!rebuild_on_platform_change} shim) to have the
      engine discard the state, [init] a fresh one from [inst], and
      re-announce the live jobs.  Policies that cache per-platform data —
      warm-start bases, machine queues — must either refresh those caches
      or rebuild: stale shapes are useless and stale queues may point at
      down machines. *)

  val on_batch_arrival : state -> now:Rat.t -> jobs:int list -> unit
  (** A coalesced batch of arrivals, all at the same instant [now], in
      announcement order.  Driving engines that batch admissions
      ([Serve.Admission]) fire this once per batch instead of calling
      [on_arrival] k times, so a policy can rebalance its queues once for
      the whole burst.  The {!announce_each} shim — announce each job via
      [on_arrival] — is behaviorally identical for policies whose arrival
      handler is independent of its siblings, which is every policy in
      this repository. *)

  val decide : state -> now:Rat.t -> active:job_view list -> decision
end

val rebuild_on_platform_change :
  'a -> now:Rat.t -> inst:Sched_core.Instance.t -> [ `Adapted | `Rebuild ]
(** The default [on_platform_change]: always [`Rebuild].  Sound for every
    policy (availability changes are rare, so rebuilding is never hot);
    alias it when the state holds nothing worth preserving. *)

val announce_each :
  ('a -> now:Rat.t -> job:int -> unit) -> 'a -> now:Rat.t -> jobs:int list -> unit
(** The default [on_batch_arrival], built from the policy's own
    [on_arrival]; alias it (eta-expanded, for the value restriction):
    [let on_batch_arrival s ~now ~jobs = Sim.announce_each on_arrival s ~now ~jobs]. *)

type result = {
  policy : string;
  schedule : Sched_core.Schedule.t;
      (** legal divisible schedule of the whole run *)
  decisions : int;  (** number of times the policy was consulted *)
}

val run : (module POLICY) -> Sched_core.Instance.t -> result
(** Simulate the policy on the instance until all jobs complete.
    @raise Invalid_argument if the policy emits an inconsistent decision
    (share on an inactive job or unavailable machine, machine over
    capacity) or starves active jobs forever. *)

(** {1 Engine hooks}

    The building blocks of {!run}, exposed so other event loops — notably
    the wall-clock serving engine of [Serve.Engine] — can drive the same
    policies with identical validation and slice-materialization semantics. *)

val check_decision :
  ?where:string ->
  ?up:(int -> bool) ->
  name:string ->
  Sched_core.Instance.t ->
  eligible:(int -> bool) ->
  now:Rat.t ->
  decision ->
  unit
(** Validate a policy decision: machine/job indices in range, shares only on
    [eligible] jobs, [up] machines (defaults to all machines up) and
    available machines, positive shares, per-machine capacity at most 1,
    and [review_at] strictly in the future.  The serving engine passes the
    platform's live-machine predicate as [up] so a decision placing work on
    a failed machine is rejected even if the instance it was checked
    against predates the failure.
    @raise Invalid_argument with a ["where(name): ..."] message ([where]
    defaults to ["Sim.run"]). *)

val progress_rates : Sched_core.Instance.t -> decision -> Rat.t array
(** Per-job progress rate [Σ_i s_{i,j}/c_{i,j}] implied by the decision;
    length [num_jobs]. *)

val materialize :
  Sched_core.Instance.t ->
  now:Rat.t ->
  horizon:Rat.t ->
  decision ->
  remaining:Rat.t array ->
  Sched_core.Schedule.slice list
(** Lay the decision's shares out sequentially per machine over
    [\[now, horizon)] (share [s] becomes a slice of duration
    [s·(horizon−now)] starting at the machine's cursor), debiting each
    job's entry of [remaining] by the fraction processed.  The result is
    machine-disjoint within the segment; slices are returned in decision
    order. *)
