module Rat = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module Mf = Sched_core.Max_flow

(* Sub-instance of the active jobs: released now, original flow origin,
   cost scaled by the remaining fraction (processing the whole sub-job
   processes exactly the remaining work). *)
let sub_instance inst ~now ~active =
  let jobs = Array.of_list active in
  let k = Array.length jobs in
  let releases = Array.make k now in
  let flow_origins = Array.map (fun (v : Sim.job_view) -> I.flow_origin inst v.id) jobs in
  let weights = Array.map (fun (v : Sim.job_view) -> v.weight) jobs in
  let cost =
    Array.init (I.num_machines inst) (fun i ->
        Array.map
          (fun (v : Sim.job_view) ->
            Option.map (Rat.mul v.remaining) (I.cost inst ~machine:i ~job:v.id))
          jobs)
  in
  (jobs, I.make ~flow_origins ~releases ~weights cost)

(* Re-solve the offline problem on the remaining work and extract the
   machine shares of the plan's first epochal interval, plus its horizon.
   [cache] carries warm-start bases across arrivals: successive re-solves
   see structurally identical deadline systems (same active-job count),
   so their feasibility probes resume from the previous plan's bases. *)
let compute_plan ?cache inst ~now ~active =
  Obs.Span.with_span "online_opt.plan" (fun () ->
  Obs.Span.set_int "active_jobs" (List.length active);
  let jobs, sub = sub_instance inst ~now ~active in
  let r = Mf.solve ?cache sub in
  (* First epochal boundary after [now]: the earliest deadline at F*. *)
  let horizon =
    Array.fold_left
      (fun acc (v : Sim.job_view) ->
        let d = Rat.add (I.flow_origin inst v.id) (Rat.div r.Mf.objective v.weight) in
        match acc with None -> Some d | Some b -> Some (Rat.min b d))
      None jobs
  in
  let horizon = Option.get horizon (* active is non-empty *) in
  let window = Rat.sub horizon now in
  if Rat.sign window <= 0 then
    (* Cannot happen: every active job needs positive time to finish, so
       every deadline is strictly in the future.  Guard anyway. *)
    ([], None)
  else begin
    (* Machine-time spent per (machine, sub-job) inside [now, horizon). *)
    let m = I.num_machines inst in
    let spent = Array.make_matrix m (Array.length jobs) Rat.zero in
    List.iter
      (fun (s : S.slice) ->
        if Rat.compare s.start horizon < 0 then
          spent.(s.machine).(s.job) <-
            Rat.add spent.(s.machine).(s.job) (Rat.sub (Rat.min s.stop horizon) s.start))
      (S.slices r.Mf.schedule);
    let shares = ref [] in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun jk d ->
            if Rat.sign d > 0 then
              shares :=
                { Sim.machine = i; job = jobs.(jk).Sim.id; share = Rat.div d window }
                :: !shares)
          row)
      spent;
    (!shares, Some horizon)
  end)

module Divisible = struct
  (* The solver session outlives any single decision: the basis cache is
     part of the policy state, so each re-solve warm-starts from the last. *)
  type state = { mutable inst : I.t; cache : Lp.Solve.cache }

  let name = "online-opt"
  let init inst = { inst; cache = Lp.Solve.cache () }
  let on_arrival _ ~now:_ ~job:_ = ()
  let on_completion _ ~now:_ ~job:_ = ()

  (* An availability change rewrites whole cost columns, so every cached
     basis describes a system that no longer exists; re-solves after the
     change must run cold rather than chase a stale vertex. *)
  let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
  let on_platform_change st ~now:_ ~inst =
    st.inst <- inst;
    Obs.Event.emit "basis.cache.cleared";
    Lp.Solve.cache_clear st.cache;
    `Adapted

  let decide st ~now ~active =
    let shares, review_at = compute_plan ~cache:st.cache st.inst ~now ~active in
    { Sim.shares; review_at }
end

module Lazy_divisible = struct
  (* Ablation on the re-optimization frequency: re-solve the offline
     problem only when a new job arrives or the cached plan window runs
     out — completions merely drop the finished job's shares and leave the
     freed capacity idle until the next re-solve.  Cheaper in LP solves
     than {!Divisible}, laxer in quality; the [reopt] bench quantifies the
     trade. *)
  type state = {
    mutable inst : I.t;
    cache : Lp.Solve.cache;
    mutable cached : (Sim.share list * Rat.t) option;  (* shares, horizon *)
    mutable dirty : bool;
  }

  let name = "online-opt-lazy"
  let init inst = { inst; cache = Lp.Solve.cache (); cached = None; dirty = true }
  let on_arrival st ~now:_ ~job:_ = st.dirty <- true
  let on_completion _ ~now:_ ~job:_ = ()

  (* Same invalidation as {!Divisible}, plus the cached plan itself: its
     shares may sit on machines that just went down. *)
  let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
  let on_platform_change st ~now:_ ~inst =
    st.inst <- inst;
    Obs.Event.emit "basis.cache.cleared";
    Lp.Solve.cache_clear st.cache;
    st.cached <- None;
    st.dirty <- true;
    `Adapted

  let decide st ~now ~active =
    let live (s : Sim.share) =
      List.exists (fun (v : Sim.job_view) -> v.id = s.job) active
    in
    let refresh () =
      match compute_plan ~cache:st.cache st.inst ~now ~active with
      | shares, Some horizon ->
        st.cached <- Some (shares, horizon);
        st.dirty <- false;
        { Sim.shares; review_at = Some horizon }
      | shares, None ->
        st.cached <- None;
        st.dirty <- false;
        { Sim.shares; review_at = None }
    in
    match st.cached with
    | Some (shares, horizon)
      when (not st.dirty) && Rat.compare now horizon < 0 ->
      let shares = List.filter live shares in
      if shares = [] then refresh ()
      else { Sim.shares; review_at = Some horizon }
    | _ -> refresh ()
end
