module Rat = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule

type job_view = { id : int; release : Rat.t; weight : Rat.t; remaining : Rat.t }

type share = { machine : int; job : int; share : Rat.t }

type decision = { shares : share list; review_at : Rat.t option }

module type POLICY = sig
  type state

  val name : string
  val init : Sched_core.Instance.t -> state
  val on_arrival : state -> now:Rat.t -> job:int -> unit
  val on_completion : state -> now:Rat.t -> job:int -> unit

  val on_platform_change :
    state -> now:Rat.t -> inst:Sched_core.Instance.t -> [ `Adapted | `Rebuild ]

  val on_batch_arrival : state -> now:Rat.t -> jobs:int list -> unit
  val decide : state -> now:Rat.t -> active:job_view list -> decision
end

(* The default shim for [on_platform_change]: ask the driving engine to
   throw the state away and [init] a fresh one against the new instance.
   Always sound — availability changes are rare enough that rebuilding is
   never a hot path — so policies only adapt in place when they have
   caches worth preserving. *)
let rebuild_on_platform_change :
    'a -> now:Rat.t -> inst:Sched_core.Instance.t -> [ `Adapted | `Rebuild ] =
 fun _ ~now:_ ~inst:_ -> `Rebuild

(* The default shim for [on_batch_arrival]: announce each job of the
   coalesced batch individually, in the order given.  Policies that can
   exploit seeing a whole burst at once (bin-pack the batch, one queue
   rebalance instead of k) override this with something smarter. *)
let announce_each (on_arrival : 'a -> now:Rat.t -> job:int -> unit) :
    'a -> now:Rat.t -> jobs:int list -> unit =
 fun state ~now ~jobs -> List.iter (fun job -> on_arrival state ~now ~job) jobs

type result = { policy : string; schedule : S.t; decisions : int }

let bad ?(where = "Sim.run") name fmt =
  Printf.ksprintf (fun s -> invalid_arg (Printf.sprintf "%s(%s): %s" where name s)) fmt

let check_decision ?where ?(up = fun _ -> true) ~name inst ~eligible ~now d =
  let n = I.num_jobs inst and m = I.num_machines inst in
  let per_machine = Array.make m Rat.zero in
  List.iter
    (fun s ->
      if s.machine < 0 || s.machine >= m then bad ?where name "bad machine %d" s.machine;
      if s.job < 0 || s.job >= n || not (eligible s.job) then
        bad ?where name "share on inactive job %d" s.job;
      if Rat.sign s.share <= 0 then bad ?where name "non-positive share";
      if not (up s.machine) then bad ?where name "share on down machine %d" s.machine;
      if I.cost inst ~machine:s.machine ~job:s.job = None then
        bad ?where name "share on unavailable machine %d for job %d" s.machine s.job;
      per_machine.(s.machine) <- Rat.add per_machine.(s.machine) s.share)
    d.shares;
  Array.iteri
    (fun i total ->
      if Rat.compare total Rat.one > 0 then bad ?where name "machine %d over capacity" i)
    per_machine;
  match d.review_at with
  | Some r when Rat.compare r now <= 0 -> bad ?where name "review_at not in the future"
  | _ -> ()

let progress_rates inst d =
  let rate = Array.make (I.num_jobs inst) Rat.zero in
  List.iter
    (fun s ->
      match I.cost inst ~machine:s.machine ~job:s.job with
      | Some c -> rate.(s.job) <- Rat.add rate.(s.job) (Rat.div s.share c)
      | None -> assert false)
    d.shares;
  rate

let materialize inst ~now ~horizon d ~remaining =
  let dt = Rat.sub horizon now in
  let cursor = Array.make (I.num_machines inst) now in
  List.map
    (fun s ->
      let duration = Rat.mul s.share dt in
      let start = cursor.(s.machine) in
      let stop = Rat.add start duration in
      cursor.(s.machine) <- stop;
      (match I.cost inst ~machine:s.machine ~job:s.job with
       | Some c -> remaining.(s.job) <- Rat.sub remaining.(s.job) (Rat.div duration c)
       | None -> assert false);
      { S.machine = s.machine; job = s.job; start; stop })
    d.shares

let run (module P : POLICY) inst =
  let n = I.num_jobs inst in
  let state = P.init inst in
  let remaining = Array.make n Rat.one in
  let completed = Array.make n false in
  let arrived = Array.make n false in
  (* Arrival queue ordered by release date. *)
  let arrival_order =
    List.sort
      (fun a b ->
        let c = Rat.compare (I.release inst a) (I.release inst b) in
        if c <> 0 then c else compare a b)
      (List.init n (fun j -> j))
  in
  let pending = ref arrival_order in
  let slices = ref [] in
  let decisions = ref 0 in
  let active_views now =
    ignore now;
    List.filter_map
      (fun j ->
        if arrived.(j) && not (completed.(j)) then
          Some { id = j; release = I.release inst j; weight = I.weight inst j;
                 remaining = remaining.(j) }
        else None)
      (List.init n (fun j -> j))
  in
  let fire_arrivals now =
    let rec go () =
      match !pending with
      | j :: rest when Rat.compare (I.release inst j) now <= 0 ->
        pending := rest;
        arrived.(j) <- true;
        P.on_arrival state ~now ~job:j;
        go ()
      | _ -> ()
    in
    go ()
  in
  let validate_decision now d =
    check_decision ~name:P.name inst
      ~eligible:(fun j -> arrived.(j) && not completed.(j))
      ~now d
  in
  let rec loop now guard =
    if guard <= 0 then bad P.name "no progress (possible livelock)";
    let active = active_views now in
    if active = [] then begin
      match !pending with
      | [] -> () (* done *)
      | j :: _ ->
        let now = I.release inst j in
        fire_arrivals now;
        loop now (guard - 1)
    end
    else begin
      incr decisions;
      let d = P.decide state ~now ~active in
      validate_decision now d;
      let rate = progress_rates inst d in
      (* Earliest of: job completion, next arrival, requested review. *)
      let completion_candidate =
        List.fold_left
          (fun acc v ->
            if Rat.sign rate.(v.id) > 0 then begin
              let t = Rat.add now (Rat.div v.remaining rate.(v.id)) in
              match acc with
              | None -> Some t
              | Some best -> Some (Rat.min best t)
            end
            else acc)
          None active
      in
      let arrival_candidate =
        match !pending with [] -> None | j :: _ -> Some (I.release inst j)
      in
      let te =
        List.fold_left
          (fun acc c ->
            match (acc, c) with
            | None, c -> c
            | Some a, Some b -> Some (Rat.min a b)
            | Some a, None -> Some a)
          None
          [ completion_candidate; arrival_candidate; d.review_at ]
      in
      match te with
      | None -> bad P.name "active jobs but no progress and no future event"
      | Some te ->
        if Rat.compare te now <= 0 then bad P.name "time did not advance";
        (* Materialize shares sequentially per machine and update progress. *)
        slices := List.rev_append (materialize inst ~now ~horizon:te d ~remaining) !slices;
        for j = 0 to n - 1 do
          if (not completed.(j)) && arrived.(j) then begin
            if Rat.sign remaining.(j) < 0 then
              bad P.name "job %d over-processed (engine invariant broken)" j;
            if Rat.is_zero remaining.(j) then begin
              completed.(j) <- true;
              P.on_completion state ~now:te ~job:j
            end
          end
        done;
        fire_arrivals te;
        loop te (guard - 1)
    end
  in
  let start_time = match arrival_order with [] -> Rat.zero | j :: _ -> I.release inst j in
  fire_arrivals start_time;
  loop start_time (100_000 + (1000 * n));
  { policy = P.name; schedule = S.make inst !slices; decisions = !decisions }
