module Rat = Numeric.Rat
module I = Sched_core.Instance

let full_share machine job = { Sim.machine; job; share = Rat.one }

module Mct = struct
  type state = {
    inst : I.t;
    avail : Rat.t array;  (* estimated drain time of each machine's queue *)
    queues : int Queue.t array;
    machine_of : int array;  (* -1 when unassigned *)
  }

  let name = "mct"

  let init inst =
    let m = I.num_machines inst in
    {
      inst;
      avail = Array.make m Rat.zero;
      queues = Array.init m (fun _ -> Queue.create ());
      machine_of = Array.make (I.num_jobs inst) (-1);
    }

  let on_arrival st ~now ~job =
    (* Pick the machine minimizing estimated completion time. *)
    let best = ref None in
    for i = 0 to Array.length st.avail - 1 do
      match I.cost st.inst ~machine:i ~job with
      | Some c ->
        let finish = Rat.add (Rat.max st.avail.(i) now) c in
        (match !best with
         | None -> best := Some (finish, i)
         | Some (f, _) -> if Rat.compare finish f < 0 then best := Some (finish, i))
      | None -> ()
    done;
    (match !best with
     | Some (finish, i) ->
       st.avail.(i) <- finish;
       st.machine_of.(job) <- i;
       Queue.push job st.queues.(i)
     | None -> assert false (* every job can run somewhere *))

  let on_completion st ~now:_ ~job =
    let i = st.machine_of.(job) in
    (* FIFO completion order within a machine. *)
    let head = Queue.pop st.queues.(i) in
    assert (head = job)

  (* Queue assignments and drain estimates may point at machines that just
     went down; start over against the new platform. *)
  let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
  let on_platform_change = Sim.rebuild_on_platform_change

  let decide st ~now:_ ~active =
    ignore active;
    let shares = ref [] in
    Array.iteri
      (fun i q ->
        match Queue.peek_opt q with
        | Some job -> shares := full_share i job :: !shares
        | None -> ())
      st.queues;
    { Sim.shares = !shares; review_at = None }
end

module Fcfs = struct
  type state = {
    inst : I.t;
    mutable waiting : int list;  (* arrival order, not yet started *)
    machine_of : int array;  (* -1 until started *)
    running : int array;  (* job per machine, -1 when idle *)
  }

  let name = "fcfs"

  let init inst =
    {
      inst;
      waiting = [];
      machine_of = Array.make (I.num_jobs inst) (-1);
      running = Array.make (I.num_machines inst) (-1);
    }

  let on_arrival st ~now:_ ~job = st.waiting <- st.waiting @ [ job ]

  let on_completion st ~now:_ ~job =
    let i = st.machine_of.(job) in
    if i >= 0 && st.running.(i) = job then st.running.(i) <- -1

  (* Running jobs may be pinned to machines that just went down. *)
  let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
  let on_platform_change = Sim.rebuild_on_platform_change

  let decide st ~now:_ ~active =
    ignore active;
    (* Give idle machines the oldest compatible waiting jobs. *)
    let claim job =
      let rec try_machines i =
        if i >= Array.length st.running then false
        else if st.running.(i) = -1 && I.cost st.inst ~machine:i ~job <> None then begin
          st.running.(i) <- job;
          st.machine_of.(job) <- i;
          true
        end
        else try_machines (i + 1)
      in
      try_machines 0
    in
    st.waiting <- List.filter (fun job -> not (claim job)) st.waiting;
    let shares = ref [] in
    Array.iteri (fun i job -> if job >= 0 then shares := full_share i job :: !shares) st.running;
    { Sim.shares = !shares; review_at = None }
end

(* Rank active jobs with [rank], then greedily hand each its fastest idle
   compatible machine — the shared skeleton of SRPT and EVD. *)
let greedy_by_rank inst ~rank active =
  let ranked =
    List.sort
      (fun (a : Sim.job_view) b ->
        let c = Rat.compare (rank a) (rank b) in
        if c <> 0 then c else compare a.id b.id)
      active
  in
  let m = I.num_machines inst in
  let busy = Array.make m false in
  let shares = ref [] in
  List.iter
    (fun (v : Sim.job_view) ->
      let best = ref None in
      for i = 0 to m - 1 do
        if not busy.(i) then
          match I.cost inst ~machine:i ~job:v.id with
          | Some c -> (
            match !best with
            | None -> best := Some (c, i)
            | Some (c', _) -> if Rat.compare c c' < 0 then best := Some (c, i))
          | None -> ()
      done;
      match !best with
      | Some (_, i) ->
        busy.(i) <- true;
        shares := full_share i v.id :: !shares
      | None -> ())
    ranked;
  { Sim.shares = !shares; review_at = None }

(* Srpt, Evd and Fair keep no per-machine state beyond the cost matrix, so
   an availability change only needs the instance swapped in place. *)
let adapt_instance st ~now:_ ~inst =
  st := inst;
  `Adapted

module Srpt = struct
  type state = I.t ref

  let name = "srpt"
  let init inst = ref inst
  let on_arrival _ ~now:_ ~job:_ = ()
  let on_completion _ ~now:_ ~job:_ = ()
  let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
  let on_platform_change = adapt_instance

  let decide st ~now:_ ~active =
    (* Rank by remaining processing time on the job's fastest machine. *)
    greedy_by_rank !st active ~rank:(fun (v : Sim.job_view) ->
        Rat.mul v.remaining (I.fastest_cost !st ~job:v.id))
end

module Evd = struct
  type state = I.t ref

  let name = "evd"
  let init inst = ref inst
  let on_arrival _ ~now:_ ~job:_ = ()
  let on_completion _ ~now:_ ~job:_ = ()
  let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
  let on_platform_change = adapt_instance

  let decide st ~now:_ ~active =
    (* Virtual deadline for a unit objective: o_j + 1/w_j. *)
    greedy_by_rank !st active ~rank:(fun (v : Sim.job_view) ->
        Rat.add (I.flow_origin !st v.id) (Rat.inv v.weight))
end

module Fair = struct
  type state = I.t ref

  let name = "fair"
  let init inst = ref inst
  let on_arrival _ ~now:_ ~job:_ = ()
  let on_completion _ ~now:_ ~job:_ = ()
  let on_batch_arrival state ~now ~jobs = Sim.announce_each on_arrival state ~now ~jobs
  let on_platform_change = adapt_instance

  let decide st ~now:_ ~active =
    (* Each machine splits its time equally among the active jobs it can
       run. *)
    let inst = !st in
    let m = I.num_machines inst in
    let shares = ref [] in
    for i = 0 to m - 1 do
      let runnable =
        List.filter (fun (v : Sim.job_view) -> I.can_run inst ~machine:i ~job:v.id) active
      in
      let k = List.length runnable in
      if k > 0 then begin
        let share = Rat.of_ints 1 k in
        List.iter
          (fun (v : Sim.job_view) ->
            shares := { Sim.machine = i; job = v.id; share } :: !shares)
          runnable
      end
    done;
    { Sim.shares = !shares; review_at = None }
end
