(* Reference implementation: the always-big numeric substrate that
   [Bigint] used before it grew the tagged small-word fast path.  Kept
   verbatim, limb representation for every value, as the differential
   oracle the qcheck suites run the tagged tower against — a fast-path
   bug (overflow check, promotion, demotion) shows up as a divergence
   from this module on random arithmetic expression trees.  Test-only:
   nothing outside test/ may depend on it.

   Sign-magnitude arbitrary-precision integers, limbs in base 2^30.

   Invariants:
   - [sign] is -1, 0 or 1;
   - [mag] is little-endian, each limb in [0, 2^30), no trailing zero limb;
   - [sign = 0] iff [mag] is empty.

   Base 2^30 is chosen so that a limb product plus carries stays below
   2^62, within OCaml's 63-bit native [int]. *)

type t = { sign : int; mag : int array }

let limb_bits = 30
let base = 1 lsl limb_bits
let mask = base - 1

(* ------------------------------------------------------------------ *)
(* Magnitude primitives (arrays of limbs, no sign)                    *)
(* ------------------------------------------------------------------ *)

let mag_zero = [||]

let mag_is_zero m = Array.length m = 0

(* Strip trailing zero limbs; returns a fresh or shared array. *)
let mag_normalize m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do decr n done;
  if !n = Array.length m then m else Array.sub m 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(l) <- !carry;
  mag_normalize r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then mag_zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai * b.(j) < 2^60; adding r and carry stays below 2^62. *)
          let p = ai * b.(j) + r.(i + j) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let p = r.(!k) + !carry in
          r.(!k) <- p land mask;
          carry := p lsr limb_bits;
          incr k
        done
      end
    done;
    mag_normalize r
  end

(* Prepend [k] zero limbs (multiply by base^k). *)
let mag_shift_limbs m k =
  if mag_is_zero m || k = 0 then m else Array.append (Array.make k 0) m

(* Karatsuba threshold, in limbs: below this, the O(n^2) inner loop wins. *)
let karatsuba_threshold = 24

(* Karatsuba multiplication: split at half the longer operand,
   a = a0 + a1*B^h, b = b0 + b1*B^h, and combine three recursive products.
   The exact rational LP solvers routinely produce thousand-bit
   numerators, where this is a substantial win over schoolbook. *)
let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if Stdlib.min la lb <= karatsuba_threshold then mag_mul_schoolbook a b
  else begin
    let h = Stdlib.max la lb / 2 in
    let split m =
      let l = Array.length m in
      if l <= h then (m, mag_zero)
      else (mag_normalize (Array.sub m 0 h), Array.sub m h (l - h))
    in
    let a0, a1 = split a and b0, b1 = split b in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 =
      (* (a0+a1)(b0+b1) - z0 - z2; the subtrahend never exceeds the
         product, so [mag_sub]'s precondition holds. *)
      mag_sub (mag_sub (mag_mul (mag_add a0 a1) (mag_add b0 b1)) z0) z2
    in
    mag_add (mag_add z0 (mag_shift_limbs z1 h)) (mag_shift_limbs z2 (2 * h))
  end

(* Multiply magnitude by a small (< base) nonnegative int. *)
let mag_mul_small a s =
  if s = 0 || mag_is_zero a then mag_zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = a.(i) * s + !carry in
      r.(i) <- p land mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

(* Add a small (< base) nonnegative int to a magnitude. *)
let mag_add_small a s =
  if s = 0 then a else mag_add a [| s |]

(* Divide magnitude by a small positive int; returns (quotient, remainder). *)
let mag_divmod_small a d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (mag_normalize q, !rem)

(* Shift left by s bits, 0 <= s < limb_bits. *)
let mag_shift_left_small a s =
  if s = 0 || mag_is_zero a then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land mask;
      carry := v lsr limb_bits
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

(* Shift right by s bits, 0 <= s < limb_bits. *)
let mag_shift_right_small a s =
  if s = 0 || mag_is_zero a then a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    let carry = ref 0 in
    for i = la - 1 downto 0 do
      r.(i) <- (a.(i) lsr s) lor (!carry lsl (limb_bits - s));
      carry := a.(i) land ((1 lsl s) - 1)
    done;
    mag_normalize r
  end

(* Knuth's algorithm D (TAOCP vol. 2, 4.3.1) on magnitudes.
   Requires v nonzero.  Returns (quotient, remainder). *)
let mag_divmod u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if mag_compare u v < 0 then (mag_zero, u)
  else if lv = 1 then begin
    let q, r = mag_divmod_small u v.(0) in
    (q, if r = 0 then mag_zero else [| r |])
  end else begin
    (* Normalize so that the top limb of v is >= base/2. *)
    let s =
      let top = v.(lv - 1) in
      let rec go s = if top lsl s >= base / 2 then s else go (s + 1) in
      go 0
    in
    let vn = mag_shift_left_small v s in
    let un0 = mag_shift_left_small u s in
    let lu = Array.length un0 in
    let n = Array.length vn in
    let m = lu - n in
    (* Working copy of u with one extra high limb. *)
    let w = Array.make (lu + 1) 0 in
    Array.blit un0 0 w 0 lu;
    let q = Array.make (m + 1) 0 in
    let vtop = vn.(n - 1) and vsnd = if n >= 2 then vn.(n - 2) else 0 in
    for j = m downto 0 do
      let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let continue = ref true in
      while !continue do
        if !qhat >= base
           || !qhat * vsnd > (!rhat lsl limb_bits) lor (if j + n - 2 >= 0 then w.(j + n - 2) else 0)
        then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then continue := false
        end
        else continue := false
      done;
      (* Multiply and subtract: w[j .. j+n] -= qhat * vn. *)
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * vn.(i) + !borrow in
        let d = w.(j + i) - (p land mask) in
        if d < 0 then begin w.(j + i) <- d + base; borrow := (p lsr limb_bits) + 1 end
        else begin w.(j + i) <- d; borrow := p lsr limb_bits end
      done;
      let d = w.(j + n) - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        w.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let sum = w.(j + i) + vn.(i) + !carry in
          w.(j + i) <- sum land mask;
          carry := sum lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry) land mask
      end
      else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = mag_shift_right_small (mag_normalize (Array.sub w 0 n)) s in
    (mag_normalize q, r)
  end

let mag_num_bits m =
  let l = Array.length m in
  if l = 0 then 0
  else begin
    let top = m.(l - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    (l - 1) * limb_bits + bits top 0
  end

(* ------------------------------------------------------------------ *)
(* Signed layer                                                        *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mag_normalize mag in
  if mag_is_zero mag then { sign = 0; mag = mag_zero } else { sign; mag }

let zero = { sign = 0; mag = mag_zero }
let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let sign x = x.sign
let is_zero x = x.sign = 0

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then { x with sign = 1 } else x

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* |min_int| = 2^62 does not fit positively in an int; hard-code it. *)
    { sign = -1; mag = [| 0; 0; 4 |] }
  else begin
    let s = if n < 0 then -1 else 1 in
    let n = Stdlib.abs n in
    let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
    { sign = s; mag = Array.of_list (limbs n) }
  end

let to_int_opt x =
  (* A native int holds 62 magnitude bits, plus min_int = -2^62 exactly. *)
  if mag_num_bits x.mag > 63 then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) x.mag 0 in
    if v >= 0 then Some (if x.sign < 0 then -v else v)
    else if x.sign < 0 && v = min_int then Some min_int
    else None (* magnitude overflowed the native range *)
  end

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value out of native int range"

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = a.sign = b.sign && a.mag = b.mag

let hash x = Hashtbl.hash (x.sign, x.mag)

let num_bits x = mag_num_bits x.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let succ x = add x one
let pred x = sub x one

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q, r = mag_divmod a.mag b.mag in
    (make (a.sign * b.sign) q, make a.sign r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a
  else if is_zero a then b
  else gcd b (rem a b)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
    end
  in
  go one x k

let shift_left x s =
  if s < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if x.sign = 0 || s = 0 then x
  else begin
    let limbs = s / limb_bits and bits = s mod limb_bits in
    let shifted = mag_shift_left_small x.mag bits in
    let mag =
      if limbs = 0 then shifted
      else Array.append (Array.make limbs 0) shifted
    in
    make x.sign mag
  end

let shift_right x s =
  if s < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if x.sign = 0 || s = 0 then x
  else begin
    let limbs = s / limb_bits and bits = s mod limb_bits in
    let l = Array.length x.mag in
    if limbs >= l then zero
    else begin
      let dropped = Array.sub x.mag limbs (l - limbs) in
      make x.sign (mag_shift_right_small dropped bits)
    end
  end

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Decimal conversions                                                 *)
(* ------------------------------------------------------------------ *)

let chunk_pow = 9
let chunk_base = 1_000_000_000 (* 10^9 < 2^30 *)

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks m acc =
      if mag_is_zero m then acc
      else begin
        let q, r = mag_divmod_small m chunk_base in
        chunks q (r :: acc)
      end
    in
    (match chunks x.mag [] with
     | [] -> assert false
     | first :: rest ->
       if x.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let s = String.concat "" (String.split_on_char '_' s) in
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let mag = ref mag_zero in
  let i = ref start in
  while !i < len do
    let upto = Stdlib.min len (!i + chunk_pow) in
    let chunk_len = upto - !i in
    let chunk = ref 0 in
    for j = !i to upto - 1 do
      match s.[j] with
      | '0' .. '9' as c -> chunk := (!chunk * 10) + (Char.code c - Char.code '0')
      | _ -> invalid_arg "Bigint.of_string: invalid digit"
    done;
    let scale =
      let rec p k acc = if k = 0 then acc else p (k - 1) (acc * 10) in
      p chunk_len 1
    in
    mag := mag_add_small (mag_mul_small !mag scale) !chunk;
    i := upto
  done;
  make sign !mag

let to_float x =
  let f = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) x.mag 0.0 in
  if x.sign < 0 then -.f else f

let of_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    invalid_arg "Bigint.of_float: not finite";
  let f = Float.trunc f in
  if Float.abs f < 1.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* f = m * 2^e with 0.5 <= |m| < 1; scale the 53-bit mantissa out. *)
    let mantissa = Int64.of_float (Float.ldexp m 53) in
    let mag_int = Int64.abs mantissa in
    let hi = Int64.to_int (Int64.shift_right_logical mag_int limb_bits) in
    let lo = Int64.to_int (Int64.logand mag_int (Int64.of_int mask)) in
    let base_val = make (if f < 0.0 then -1 else 1) [| lo; hi |] in
    let shift = e - 53 in
    if shift >= 0 then shift_left base_val shift else shift_right base_val (-shift)
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)
