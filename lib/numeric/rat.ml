(* Normalized rationals with a machine-word fast path.

   A value is either [S (num, den)] — both components native ints, with
   den > 0, gcd (num, den) = 1, zero as [S (0, 1)], and [min_int]
   excluded from both slots so negation and division can never trap —
   or [L {bnum; bden}], the same normalization invariants over
   [Bigint.t].  Tagging is canonical: every arithmetic result whose
   reduced components fit machine words is built as [S], so one value
   has one representation ([promote] is the deliberate, test-only
   exception, and [equal]/[compare]/[hash] stay value-based across
   tags to keep even that unobservable).

   Small arithmetic overflow-checks every intermediate 63-bit product
   and sum ([Overflow] aborts the attempt) and redoes the operation on
   the limb path; limb results are demoted on construction.  [Counters]
   records which path each operation took — the exact LP pipeline is
   dominated by tiny coefficients, so the small-path hit rate is the
   number that justifies this entire design (see DESIGN §10). *)

module B = Bigint
module C = Counters

type t = S of int * int | L of { bnum : B.t; bden : B.t }

exception Overflow

(* Checked native add: no wrap iff operand signs differ or the sum
   keeps the left operand's sign; a true sum of [min_int] must also
   leave the small range. *)
let add_chk a b =
  let s = a + b in
  if (a lxor b < 0 || a lxor s >= 0) && s <> min_int then s else raise Overflow

(* Checked native mul: both magnitudes below 2^31 cannot overflow;
   otherwise divide back.  [r = min_int] is rejected before the
   division both because it is outside the small range and because
   [min_int / -1] itself traps. *)
let mul_chk a b =
  if a = 0 || b = 0 then 0
  else if Stdlib.abs a lor Stdlib.abs b < 1 lsl 31 then a * b
  else begin
    let r = a * b in
    if r <> min_int && r / b = a then r else raise Overflow
  end

(* gcd on nonnegative native ints. *)
let rec igcd a b = if b = 0 then a else igcd b (a mod b)

let zero = S (0, 1)
let one = S (1, 1)
let two = S (2, 1)
let minus_one = S (-1, 1)

let is_small = function S _ -> true | L _ -> false

(* Both components as bigints, for the limb path. *)
let parts = function
  | S (n, d) -> (B.of_int n, B.of_int d)
  | L { bnum; bden } -> (bnum, bden)

(* Normalize a small pair; requires d <> 0 and neither component
   [min_int]. *)
let norm_small n d =
  if n = 0 then zero
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = igcd (Stdlib.abs n) d in
    S (n / g, d / g)
  end

(* Normalize a bigint pair; demotes to [S] when the reduced components
   fit machine words — this is the single point where values leave the
   limb representation. *)
let make_big num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    let num, den =
      if B.equal g B.one then (num, den) else (B.div num g, B.div den g)
    in
    match (B.to_int_opt num, B.to_int_opt den) with
    | Some n, Some d when n <> min_int && d <> min_int ->
      C.note_demotion ();
      S (n, d)
    | _ -> L { bnum = num; bden = den }
  end

let make num den =
  if B.is_zero den then raise Division_by_zero;
  match (B.to_int_opt num, B.to_int_opt den) with
  | Some n, Some d when n <> min_int && d <> min_int -> norm_small n d
  | _ -> make_big num den

let of_bigint n =
  match B.to_int_opt n with
  | Some v when v <> min_int -> S (v, 1)
  | _ -> L { bnum = n; bden = B.one }

let of_int n = if n = min_int then of_bigint (B.of_int n) else S (n, 1)

let of_ints a b =
  if b = 0 then raise Division_by_zero;
  if a = min_int || b = min_int then make (B.of_int a) (B.of_int b)
  else norm_small a b

let promote = function
  | S (n, d) -> L { bnum = B.promote (B.of_int n); bden = B.promote (B.of_int d) }
  | L _ as x -> x

let num = function S (n, _) -> B.of_int n | L { bnum; _ } -> bnum
let den = function S (_, d) -> B.of_int d | L { bden; _ } -> bden
let sign = function S (n, _) -> Stdlib.compare n 0 | L { bnum; _ } -> B.sign bnum
let is_zero = function S (n, _) -> n = 0 | L { bnum; _ } -> B.is_zero bnum

let is_integer = function
  | S (_, d) -> d = 1
  | L { bden; _ } -> B.equal bden B.one

(* Mixed tags only arise from [promote]; compare by value so even those
   are indistinguishable from their canonical form. *)
let equal a b =
  match (a, b) with
  | S (an, ad), S (bn, bd) -> an = bn && ad = bd
  | L a, L b -> B.equal a.bnum b.bnum && B.equal a.bden b.bden
  | S (n, d), L { bnum; bden } | L { bnum; bden }, S (n, d) ->
    B.equal bnum (B.of_int n) && B.equal bden (B.of_int d)

let big_compare a b =
  let an, ad = parts a and bn, bd = parts b in
  B.compare (B.mul an bd) (B.mul bn ad)

let compare a b =
  match (a, b) with
  | S (an, ad), S (bn, bd) ->
    let sa = Stdlib.compare an 0 and sb = Stdlib.compare bn 0 in
    if sa <> sb then begin
      C.note_small ();
      Stdlib.compare sa sb
    end
    else begin
      (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den
         (dens > 0) *)
      try
        let l = mul_chk an bd and r = mul_chk bn ad in
        C.note_small ();
        Stdlib.compare l r
      with Overflow ->
        C.note_promotion ();
        C.note_big ();
        big_compare a b
    end
  | _ ->
    C.note_big ();
    big_compare a b

(* [Bigint.hash] of a machine-word value is [Hashtbl.hash] of that
   word, so the two arms agree on promoted values by construction. *)
let hash = function
  | S (n, d) -> Hashtbl.hash (Hashtbl.hash n, Hashtbl.hash d)
  | L { bnum; bden } -> Hashtbl.hash (B.hash bnum, B.hash bden)

let neg = function
  | S (n, d) -> S (-n, d)
  | L { bnum; bden } -> L { bnum = B.neg bnum; bden }

let abs = function
  | S (n, d) -> S (Stdlib.abs n, d)
  | L { bnum; bden } -> L { bnum = B.abs bnum; bden }

let big_add a b =
  let an, ad = parts a and bn, bd = parts b in
  make_big (B.add (B.mul an bd) (B.mul bn ad)) (B.mul ad bd)

(* Knuth's fraction addition (TAOCP 4.5.1): pre-reducing by
   g = gcd (ad, bd) keeps the intermediates roughly half the width of
   the naive cross-multiplication, and the final gcd shrinks to
   gcd (t, g).  When g = 1 the result is already in lowest terms. *)
let small_add an ad bn bd =
  if an = 0 then S (bn, bd)
  else if bn = 0 then S (an, ad)
  else if ad = bd then begin
    let n = add_chk an bn in
    if n = 0 then zero
    else begin
      let g = igcd (Stdlib.abs n) ad in
      S (n / g, ad / g)
    end
  end
  else begin
    let g = igcd ad bd in
    if g = 1 then begin
      let n = add_chk (mul_chk an bd) (mul_chk bn ad) in
      if n = 0 then zero else S (n, mul_chk ad bd)
    end
    else begin
      let ad' = ad / g and bd' = bd / g in
      let t = add_chk (mul_chk an bd') (mul_chk bn ad') in
      if t = 0 then zero
      else begin
        let g2 = igcd (Stdlib.abs t) g in
        S (t / g2, mul_chk ad' (bd / g2))
      end
    end
  end

let add a b =
  match (a, b) with
  | S (an, ad), S (bn, bd) -> (
    try
      let r = small_add an ad bn bd in
      C.note_small ();
      r
    with Overflow ->
      C.note_promotion ();
      C.note_big ();
      big_add a b)
  | a, b ->
    C.note_big ();
    if is_zero a then b else if is_zero b then a else big_add a b

let sub a b = add a (neg b)

let big_mul a b =
  let an, ad = parts a and bn, bd = parts b in
  make_big (B.mul an bn) (B.mul ad bd)

let mul a b =
  match (a, b) with
  | S (an, ad), S (bn, bd) -> (
    try
      let r =
        if an = 0 || bn = 0 then zero
        else begin
          (* Cross-reduce before multiplying: with both input pairs
             coprime, (an/g1)(bn/g2) and (ad/g2)(bd/g1) are coprime,
             so no final gcd is needed. *)
          let g1 = igcd (Stdlib.abs an) bd and g2 = igcd (Stdlib.abs bn) ad in
          S (mul_chk (an / g1) (bn / g2), mul_chk (ad / g2) (bd / g1))
        end
      in
      C.note_small ();
      r
    with Overflow ->
      C.note_promotion ();
      C.note_big ();
      big_mul a b)
  | a, b ->
    C.note_big ();
    if is_zero a || is_zero b then zero else big_mul a b

let inv = function
  | S (0, _) -> raise Division_by_zero
  | S (n, d) -> if n > 0 then S (d, n) else S (-d, -n)
  | L { bnum; bden } ->
    if B.is_zero bnum then raise Division_by_zero;
    if B.sign bnum < 0 then L { bnum = B.neg bden; bden = B.neg bnum }
    else L { bnum = bden; bden = bnum }

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | L { bnum; bden } -> B.to_float bnum /. B.to_float bden

let of_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    invalid_arg "Rat.of_float: not finite";
  if Float.is_integer f then of_bigint (B.of_float f)
  else begin
    let m, e = Float.frexp f in
    let mantissa = B.of_float (Float.ldexp m 53) in
    let shift = e - 53 in
    if shift >= 0 then of_bigint (B.shift_left mantissa shift)
    else make mantissa (B.shift_left B.one (-shift))
  end

let floor = function
  | S (n, d) ->
    let q = n / d in
    B.of_int (if n mod d < 0 then q - 1 else q)
  | L { bnum; bden } ->
    let q, r = B.divmod bnum bden in
    if B.sign r < 0 then B.pred q else q

let ceil = function
  | S (n, d) ->
    let q = n / d in
    B.of_int (if n mod d > 0 then q + 1 else q)
  | L { bnum; bden } ->
    let q, r = B.divmod bnum bden in
    if B.sign r > 0 then B.succ q else q

(* Best approximation with bounded denominator, by the Stern–Brocot walk:
   continued-fraction convergents interleaved with the last admissible
   semiconvergent.  The result q/d with d ≤ max_den minimizes |x − q/d|. *)
let approx ~max_den x =
  if max_den < 1 then invalid_arg "Rat.approx: max_den must be at least 1";
  let bound = B.of_int max_den in
  if B.compare (den x) bound <= 0 then x
  else begin
    let target = abs x in
    (* Convergents p/q of the continued fraction of |x|. *)
    let rec walk n d p0 q0 p1 q1 =
      (* invariant: p1/q1 is the latest convergent, q1 <= bound *)
      if B.is_zero d then (p1, q1)
      else begin
        let a, r = B.divmod n d in
        let p2 = B.add (B.mul a p1) p0 and q2 = B.add (B.mul a q1) q0 in
        if B.compare q2 bound > 0 then begin
          (* The full step overshoots: take the best semiconvergent
             p1*k + p0 / q1*k + q0 with the largest k keeping q <= bound,
             then pick the closer of it and the last convergent. *)
          let k = B.div (B.sub bound q0) q1 in
          if B.is_zero k then (p1, q1)
          else begin
            let ps = B.add (B.mul k p1) p0 and qs = B.add (B.mul k q1) q0 in
            let conv = make p1 q1 and semi = make ps qs in
            (* Semiconvergents closer than the previous convergent require
               k > a/2; comparing distances directly is simplest. *)
            if compare (abs (sub semi target)) (abs (sub conv target)) < 0 then
              (ps, qs)
            else (p1, q1)
          end
        end
        else walk d r p1 q1 p2 q2
      end
    in
    (* Seeds: p_{-2}/q_{-2} = 0/1 and p_{-1}/q_{-1} = 1/0, so the first
       step yields the convergent a0/1 (and 1 ≤ max_den, so the walk never
       returns the formal 1/0). *)
    let p, q = walk (B.abs (num x)) (den x) B.zero B.one B.one B.zero in
    let r = make p q in
    if sign x < 0 then neg r else r
  end

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | L { bnum; bden } ->
    if B.equal bden B.one then B.to_string bnum
    else B.to_string bnum ^ "/" ^ B.to_string bden

let of_string s =
  let fail msg = invalid_arg (Printf.sprintf "Rat.of_string: %S: %s" s msg) in
  if s = "" then fail "empty string";
  if String.trim s <> s then fail "surrounding whitespace";
  let parse what part =
    if part = "" then fail ("missing " ^ what);
    try B.of_string part with Invalid_argument _ -> fail ("malformed " ^ what)
  in
  match String.index_opt s '/' with
  | Some i ->
    let n = parse "numerator" (String.sub s 0 i) in
    let d = parse "denominator" (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None -> (
    match String.index_opt s '.' with
    | None -> of_bigint (parse "number" s)
    | Some i ->
      let int_part = String.sub s 0 i in
      let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
      if frac_part = "" then of_bigint (parse "number" int_part)
      else begin
        let digits = String.length frac_part in
        let whole = parse "number" (int_part ^ frac_part) in
        make whole (B.pow (B.of_int 10) digits)
      end)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
