(** Test-only reference integers: the always-big implementation that
    [Bigint] used before the tagged small-word fast path, kept verbatim
    (every value in limb representation, no native-int shortcut).  The
    qcheck oracle in [test_numeric] evaluates random arithmetic
    expression trees through both this module and the tagged [Bigint]
    and requires bit-identical decimal renderings — any divergence is a
    fast-path bug.  Nothing outside test/ may depend on this module.

    All functions are pure; values are immutable. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] iff [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optionally signed decimal literal.  Underscores are allowed as
    digit separators.  @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val of_float : float -> t
(** Truncates toward zero.  @raise Invalid_argument on NaN or infinity. *)

val to_float : t -> float
(** Nearest-double approximation (may overflow to [infinity]). *)

(** {1 Inspection} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val num_bits : t -> int
(** Number of bits of the magnitude; [num_bits zero = 0]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero
    and [sign r = sign a] (or [r = zero]); this matches OCaml's [(/)] and
    [(mod)] on native integers.  @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val mul_int : t -> int -> t
val add_int : t -> int -> t

val gcd : t -> t -> t
(** Greatest common divisor of the magnitudes; [gcd zero x = abs x]. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0].  @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (truncates toward zero for negatives). *)

val min : t -> t -> t
val max : t -> t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
