(* Fast-path instrumentation for the tagged numeric tower.

   Plain (non-atomic) increments: a counter bump sits on the hottest
   arithmetic path in the process, where even an atomic fetch-and-add
   would cost a measurable fraction of a small-word operation.  Under
   parallel domains concurrent bumps may occasionally lose an update —
   counts are best-effort telemetry, never torn and never used for
   control flow.  The instruments are published into [Obs.Registry] by
   [Lp.Instrument] (the numeric library itself stays dependency-free). *)

let small = ref 0
let big = ref 0
let promoted = ref 0
let demoted = ref 0

let note_small () = incr small
let note_big () = incr big
let note_promotion () = incr promoted
let note_demotion () = incr demoted

let small_ops () = !small
let big_ops () = !big
let promotions () = !promoted
let demotions () = !demoted

let hit_rate () =
  let s = !small and b = !big in
  if s + b = 0 then 1.0 else float_of_int s /. float_of_int (s + b)

let reset () =
  small := 0;
  big := 0;
  promoted := 0;
  demoted := 0
