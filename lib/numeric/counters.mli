(** Process-wide counters for the numeric tower's two-representation
    dispatch (see [Rat]): how many rational operations ran entirely on
    the native-int fast path, how many had to use the limb
    representation, and how many values crossed between the two.

    Counts are best-effort under parallel domains (plain increments, so
    concurrent bumps may lose an update; they are never torn).  The
    [lp] layer mirrors them into [Obs.Registry.global] as the
    [rat.small_ops] / [rat.big_ops] / [rat.promotions] /
    [rat.demotions] counters after every solve, and the bench harness
    embeds them in every [BENCH_*.json] envelope. *)

val small_ops : unit -> int
(** Rational operations completed on the native-int fast path. *)

val big_ops : unit -> int
(** Rational operations that ran on the limb representation — either
    because an operand was already big, or because the fast path
    overflowed mid-operation (counted in {!promotions} too). *)

val promotions : unit -> int
(** Fast-path attempts that overflowed 63-bit arithmetic and were
    redone on the limb representation. *)

val demotions : unit -> int
(** Limb-representation results that normalized back into machine
    words and were re-tagged small. *)

val hit_rate : unit -> float
(** [small_ops / (small_ops + big_ops)]; [1.0] when no operations have
    been recorded. *)

val reset : unit -> unit

(**/**)

(* Recording entry points, called by [Rat] on every arithmetic
   operation; not meant for user code. *)

val note_small : unit -> unit
val note_big : unit -> unit
val note_promotion : unit -> unit
val note_demotion : unit -> unit
