(** Arbitrary-precision rational numbers with a machine-word fast path.

    Values are kept normalized: the denominator is positive, numerator and
    denominator are coprime, and zero is represented as [0/1].  Release
    dates, weights, processing times, LP coefficients and the optimal
    maximum weighted flow are all values of this type: the milestone search
    of the paper (Section 4.3.2) is only correct under exact comparison.

    Internally a rational whose reduced numerator and denominator both fit
    native ints is carried as two machine words; arithmetic on that form is
    overflow-checked and transparently promoted to the limb representation
    ([Bigint]) when a 63-bit intermediate would wrap, and limb results are
    demoted back on construction.  The representation is canonical and
    never observable — results are bit-identical to the always-big
    implementation (enforced by a differential qcheck oracle against
    [Bigint_ref]).  [Counters] tallies fast-path hits, promotions and
    demotions; see DESIGN §10. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b].  @raise Division_by_zero if [b = 0]. *)

val of_float : float -> t
(** Exact conversion of a finite float (every finite double is a dyadic
    rational).  @raise Invalid_argument on NaN or infinity. *)

val of_string : string -> t
(** Accepts ["n"], ["n/d"] and decimal notation ["1.25"].
    @raise Invalid_argument on malformed input. *)

(** {1 Inspection} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Representation-independent: a value hashes the same whether it holds
    the machine-word or the limb form, so both collide in one hash
    table. *)

val is_small : t -> bool
(** [true] iff the value currently holds the machine-word representation.
    Diagnostic only. *)

val promote : t -> t
(** Re-tag a machine-word value into the limb representation without
    changing its value.  Test hook for the representation-independence
    suites; [equal]/[compare]/[hash] treat the result identically. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero. *)

val inv : t -> t
(** @raise Division_by_zero. *)

val min : t -> t -> t
val max : t -> t -> t

val mul_int : t -> int -> t
val div_int : t -> int -> t

(** {1 Rounding and conversion} *)

val to_float : t -> float
val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val approx : max_den:int -> t -> t
(** Best rational approximation with denominator at most [max_den]
    (continued-fraction convergents/semiconvergents).  Exact solvers
    produce exact but unwieldy values like [1441734/258269]; this gives a
    readable nearby fraction for display without touching the exact value
    used in computation.  @raise Invalid_argument if [max_den < 1]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Infix operators}

    [open Rat.Infix] locally for formula-heavy code. *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
