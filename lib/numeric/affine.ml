type t = { const : Rat.t; slope : Rat.t }

let make ~const ~slope = { const; slope }
let const c = { const = c; slope = Rat.zero }
let var = { const = Rat.zero; slope = Rat.one }
let zero = const Rat.zero

(* Constants are common (milestone endpoints, zero rows): skip the
   multiply so a big [x] never forces [const] through the limb path. *)
let eval f x = if Rat.is_zero f.slope then f.const else Rat.add f.const (Rat.mul f.slope x)

let add f g = { const = Rat.add f.const g.const; slope = Rat.add f.slope g.slope }
let sub f g = { const = Rat.sub f.const g.const; slope = Rat.sub f.slope g.slope }
let neg f = { const = Rat.neg f.const; slope = Rat.neg f.slope }
let scale k f = { const = Rat.mul k f.const; slope = Rat.mul k f.slope }

let is_const f = Rat.is_zero f.slope
let equal f g = Rat.equal f.const g.const && Rat.equal f.slope g.slope

let compare_at x f g = Rat.compare (eval f x) (eval g x)

let intersection f g =
  let dslope = Rat.sub f.slope g.slope in
  if Rat.is_zero dslope then None
  else Some (Rat.div (Rat.sub g.const f.const) dslope)

let pp fmt f =
  if is_const f then Rat.pp fmt f.const
  else Format.fprintf fmt "%a + %a*F" Rat.pp f.const Rat.pp f.slope
