(* Solver sessions: a problem plus the reusable basis from its last solve.

   A session wraps [Revised] so that callers re-solving a *family* of LPs
   (binary-search probes over deadline bounds, online re-solves on every
   arrival) keep the optimal basis across calls instead of cold-solving.

   Basis-reuse contract:
   - [solve] records the final basis; the next [solve]/[resolve] on the
     same session passes it as a warm-start hint.
   - A hint is *verified*, never trusted: the engine refactorizes B⁻¹ from
     the current coefficients, so a stale basis can cost pivots but never
     correctness.
   - [resolve] invalidates the stored basis automatically when the new
     problem's structural shape (variable count, row count, normalized
     relation pattern — everything that determines the column layout)
     differs from the current one.  Coefficient or rhs changes keep it.
   - [invalidate] drops the basis manually. *)

module Make (F : Linalg.Field.S) = struct
  module E = Revised.Make (F)

  type outcome = F.t Solution.outcome

  type t = {
    mutable prep : E.prepared;
    mutable basis : int array option;
    mutable solves : int;
    mutable warm_hits : int;
  }

  let create (p : F.t Problem.t) : t =
    { prep = E.prepare p; basis = None; solves = 0; warm_hits = 0 }

  let invalidate t = t.basis <- None
  let solves t = t.solves
  let warm_hits t = t.warm_hits

  (* The structural signature of the current problem — the exact value
     [resolve] compares to decide whether the stored basis survives.
     Exposed so admission-level decision caches ([Serve.Admission]) can
     fingerprint "same LP shape" with the same notion the warm-start
     machinery already uses, instead of inventing a parallel one. *)
  let shape_key t = E.shape (t.prep : E.prepared)

  (* Whether the session holds a reusable basis: a [solve] after this
     returns [true] will be warm-started (still verified, never trusted). *)
  let warm_ready t = t.basis <> None

  let solve t : outcome =
    let warm_before = Instrument.warm_solves ~exact:F.exact in
    let outcome, basis = E.solve_prepared ?warm:t.basis t.prep in
    if Instrument.warm_solves ~exact:F.exact > warm_before then
      t.warm_hits <- t.warm_hits + 1;
    t.solves <- t.solves + 1;
    t.basis <- Some basis;
    outcome

  (* Re-solve with a new problem, reusing the basis when the structural
     shape is unchanged. *)
  let resolve t (p : F.t Problem.t) : outcome =
    let prep = E.prepare p in
    if E.shape prep <> E.shape t.prep then begin
      t.basis <- None;
      if Obs.Sink.enabled () then
        Obs.Event.emit "basis.invalidated"
          ~attrs:[ ("exact", Obs.Sink.Bool F.exact) ]
    end;
    t.prep <- prep;
    solve t

  (* Re-solve after substituting right-hand sides: [updates] maps
     constraint indices (in problem order) to new rhs values.  The shape
     only changes if an rhs crosses zero (the normalization flips the
     relation), which [resolve] detects and handles. *)
  let resolve_rhs t (updates : (int * F.t) list) : outcome =
    let p = (t.prep : E.prepared).E.src in
    let constraints =
      List.mapi
        (fun i (c : F.t Problem.constr) ->
          match List.assoc_opt i updates with
          | None -> c
          | Some rhs -> { c with rhs })
        p.Problem.constraints
    in
    resolve t { p with Problem.constraints }
end

module Exact = Make (Linalg.Field.Rational)
module Approx = Make (Linalg.Field.Approx)
