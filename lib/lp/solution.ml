(* Solver-independent result types.

   Every engine in this library (dense tableau, fraction-free tableau,
   revised simplex) re-exports these with a type equation, so outcomes
   flow freely between engines and the [Solve] dispatcher without
   conversion — in particular the differential tests compare a dense and a
   sparse solve with plain [=] on the payload. *)

type 'f solution = {
  values : 'f array; (* one per problem variable *)
  objective : 'f;
  duals : 'f array;
      (* one per constraint, in problem order, for the original problem:
         at optimality Σ_i duals_i · rhs_i = objective (strong duality),
         and for a minimization duals_i ≤ 0 on Le rows, ≥ 0 on Ge rows
         (reversed for a maximization; Eq rows are unconstrained) *)
}

type 'f outcome =
  | Optimal of 'f solution
  | Infeasible
  | Unbounded

let pp_outcome pp_coeff fmt = function
  | Optimal s -> Format.fprintf fmt "optimal (objective %a)" pp_coeff s.objective
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Unbounded -> Format.pp_print_string fmt "unbounded"
