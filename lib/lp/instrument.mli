(** Solver instrumentation over [Obs.Registry.global].

    Each engine records one solve into the [lp.exact.*] or [lp.approx.*]
    instrument family (counters for solves, warm solves and pivots per
    phase; a histogram of per-solve wall seconds).  The milestone
    searches drive both families: float probes land under [lp.approx],
    their exact certifications under [lp.exact].

    This module replaces the old [Lp.Stats] accumulators and its hook.
    Aggregate consumers snapshot {!totals} before and after the work of
    interest and {!diff} the two; per-solve consumers install an
    [Obs.Sink.callback] and read the ["lp.solve"] spans emitted when
    tracing is enabled. *)

type totals = {
  solves : int;
  warm_solves : int;  (** solves where a supplied basis was reused *)
  pivots_phase1 : int;
  pivots_phase2 : int;
  pivots_dual : int;  (** dual-simplex pivots (warm restarts only) *)
  seconds : float;  (** total wall seconds across the solves *)
}

val exact_totals : unit -> totals
(** Snapshot of the [lp.exact.*] instruments (process lifetime). *)

val approx_totals : unit -> totals
val totals_for : exact:bool -> totals

val combined : unit -> totals
(** Exact and approximate totals summed. *)

val total_pivots : totals -> int

val diff : before:totals -> totals -> totals
(** Component-wise difference of two snapshots of the same family. *)

val warm_solves : exact:bool -> int
(** Current warm-solve count for one arithmetic — a cheap single-counter
    read for callers (e.g. [Session]) that only need to detect whether a
    solve they just issued went warm. *)

val record :
  exact:bool ->
  warm:bool ->
  pivots_phase1:int ->
  pivots_phase2:int ->
  pivots_dual:int ->
  seconds:float ->
  unit
(** Fold one finished solve into its instrument family.  Called by the
    engines; not meant for user code. *)

val now : unit -> float
(** [Unix.gettimeofday], shared so all engines time solves the same way. *)

val sync_rat_counters : unit -> unit
(** Mirror the numeric tower's fast-path tallies ([Numeric.Counters])
    into [Obs.Registry.global] as the [rat.small_ops] / [rat.big_ops] /
    [rat.promotions] / [rat.demotions] counters.  Runs automatically at
    the end of every {!record}; callers that want the counters current
    outside any solve (e.g. a metrics dump at shutdown) may call it
    directly.  Registry counters are monotonic, so a [Counters.reset]
    only stalls the mirrored values until the live tallies catch back
    up. *)
