module B = Numeric.Bigint
module R = Numeric.Rat
module Sx = Simplex.Exact

let lcm a b =
  if B.is_zero a || B.is_zero b then B.one
  else B.abs (B.div (B.mul a b) (B.gcd a b))

(* Exact division with a safety check: the Bareiss/Edmonds identity
   guarantees divisibility, so any nonzero remainder is a solver bug. *)
let exact_div a b =
  let q, r = B.divmod a b in
  assert (B.is_zero r);
  q

type tableau = {
  rows : B.t array array; (* m rows of width [width]; last column = rhs *)
  basis : int array;
  obj : R.t array; (* reduced costs (real values), same width *)
  mutable den : B.t; (* common denominator: real entry = int / den; > 0 *)
  width : int;
  art_start : int;
}

let real_entry t i j = R.make t.rows.(i).(j) t.den

(* Entering rules mirror Simplex.Make so both solvers walk the same path. *)
let entering_bland t ~allowed_up_to =
  let rec go j =
    if j >= allowed_up_to then None
    else if R.sign t.obj.(j) < 0 then Some j
    else go (j + 1)
  in
  go 0

let entering_dantzig t ~allowed_up_to =
  let best = ref None in
  for j = 0 to allowed_up_to - 1 do
    if R.sign t.obj.(j) < 0 then
      match !best with
      | None -> best := Some j
      | Some b -> if R.compare t.obj.(j) t.obj.(b) < 0 then best := Some j
  done;
  !best

(* Leaving row: min RHS_i / T[i][col] over positive T[i][col] (the common
   denominator cancels), compared by integer cross-multiplication; ties by
   smallest basic variable. *)
let leaving t col =
  let m = Array.length t.rows in
  let best = ref None in
  for i = 0 to m - 1 do
    let coeff = t.rows.(i).(col) in
    if B.sign coeff > 0 then begin
      let rhs = t.rows.(i).(t.width - 1) in
      match !best with
      | None -> best := Some (rhs, coeff, i)
      | Some (brhs, bcoeff, bi) ->
        (* rhs/coeff ? brhs/bcoeff  <=>  rhs·bcoeff ? brhs·coeff *)
        let c = B.compare (B.mul rhs bcoeff) (B.mul brhs coeff) in
        if c < 0 || (c = 0 && t.basis.(i) < t.basis.(bi)) then
          best := Some (rhs, coeff, i)
    end
  done;
  Option.map (fun (_, _, i) -> i) !best

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  assert (B.sign piv > 0);
  let prow = t.rows.(row) in
  (* Integer update: new[i][j] = (piv·old[i][j] − old[i][col]·prow[j]) / den.
     The pivot row itself is left untouched; the denominator becomes piv. *)
  Array.iteri
    (fun i r ->
      if i <> row then begin
        let factor = r.(col) in
        for j = 0 to t.width - 1 do
          r.(j) <- exact_div (B.sub (B.mul piv r.(j)) (B.mul factor prow.(j))) t.den
        done
      end)
    t.rows;
  (* Rational update of the reduced-cost row: subtract
     obj[col] · (pivot row / piv). *)
  let factor = t.obj.(col) in
  if not (R.is_zero factor) then begin
    let scale = R.div factor (R.make piv B.one) in
    for j = 0 to t.width - 1 do
      t.obj.(j) <- R.sub t.obj.(j) (R.mul scale (R.make prow.(j) B.one))
    done
  end;
  t.den <- piv;
  t.basis.(row) <- col

let set_costs t (cost : R.t array) =
  Array.fill t.obj 0 t.width R.zero;
  Array.blit cost 0 t.obj 0 (t.width - 1);
  Array.iteri
    (fun i b ->
      let cb = cost.(b) in
      if not (R.is_zero cb) then
        for j = 0 to t.width - 1 do
          t.obj.(j) <- R.sub t.obj.(j) (R.mul cb (real_entry t i j))
        done)
    t.basis

exception Iteration_limit

let optimize ?(count = ref 0) t ~allowed_up_to ~max_iters =
  let dantzig_budget = 50 + (4 * (Array.length t.rows + t.width)) in
  let iters = ref 0 in
  let rec loop () =
    incr iters;
    if !iters > max_iters then raise Iteration_limit;
    let enter =
      if !iters <= dantzig_budget then entering_dantzig t ~allowed_up_to
      else entering_bland t ~allowed_up_to
    in
    match enter with
    | None -> `Optimal
    | Some j -> (
      match leaving t j with
      | None -> `Unbounded
      | Some i ->
        pivot t ~row:i ~col:j;
        incr count;
        loop ())
  in
  loop ()

let solve_untraced (p : R.t Problem.t) : Sx.outcome =
  let t_start = Instrument.now () in
  let pivots1 = ref 0 and pivots2 = ref 0 in
  let record () =
    Instrument.record ~exact:true ~warm:false ~pivots_phase1:!pivots1
      ~pivots_phase2:!pivots2 ~pivots_dual:0
      ~seconds:(Instrument.now () -. t_start);
    Obs.Span.set_int "pivots_phase1" !pivots1;
    Obs.Span.set_int "pivots_phase2" !pivots2
  in
  let n = p.Problem.num_vars in
  let constrs = Array.of_list p.Problem.constraints in
  let m = Array.length constrs in
  let normalized =
    Array.map
      (fun (c : R.t Problem.constr) ->
        if R.sign c.rhs < 0 then
          let flip = function Problem.Le -> Problem.Ge | Ge -> Le | Eq -> Eq in
          (List.map (fun (v, k) -> (v, R.neg k)) c.terms, flip c.rel, R.neg c.rhs)
        else (c.terms, c.rel, c.rhs))
      constrs
  in
  let num_slack =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Problem.Le | Ge -> acc + 1 | Eq -> acc)
      0 normalized
  in
  let num_art =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Problem.Ge | Eq -> acc + 1 | Le -> acc)
      0 normalized
  in
  let art_start = n + num_slack in
  let total = n + num_slack + num_art in
  let width = total + 1 in
  let rows = Array.init m (fun _ -> Array.make width B.zero) in
  let basis = Array.make m (-1) in
  (* Dual bookkeeping: the unit column of each row (slack for Le,
     artificial for Ge/Eq), the row's integer scaling factor, and whether
     its rhs sign was flipped during normalization. *)
  let dual_col = Array.make m (-1) in
  let row_scale = Array.make m B.one in
  let flipped =
    Array.map (fun (c : R.t Problem.constr) -> R.sign c.rhs < 0) constrs
  in
  let next_slack = ref n and next_art = ref art_start in
  Array.iteri
    (fun i (terms, rel, rhs) ->
      (* Scale the row to integers: multiply by the lcm of denominators.
         Scaling by a positive constant does not change the constraint. *)
      let scale =
        List.fold_left (fun acc (_, k) -> lcm acc (R.den k)) (R.den rhs) terms
      in
      let int_of k = B.div (B.mul (R.num k) scale) (R.den k) in
      row_scale.(i) <- scale;
      let row = rows.(i) in
      List.iter (fun (v, k) -> row.(v) <- B.add row.(v) (int_of k)) terms;
      row.(total) <- int_of rhs;
      (* Slack/surplus/artificial coefficients stay ±1 (they just measure
         slack in the row's scaled units), so the initial basic columns are
         exact unit columns — the invariant pivoting maintains. *)
      (match rel with
       | Problem.Le ->
         row.(!next_slack) <- B.one;
         basis.(i) <- !next_slack;
         dual_col.(i) <- !next_slack;
         incr next_slack
       | Problem.Ge ->
         row.(!next_slack) <- B.minus_one;
         incr next_slack;
         row.(!next_art) <- B.one;
         basis.(i) <- !next_art;
         dual_col.(i) <- !next_art;
         incr next_art
       | Problem.Eq ->
         row.(!next_art) <- B.one;
         basis.(i) <- !next_art;
         dual_col.(i) <- !next_art;
         incr next_art))
    normalized;
  let t = { rows; basis; obj = Array.make width R.zero; den = B.one; width; art_start } in
  let max_iters = 1000 + (100 * (m + total)) in
  let outcome =
    if num_art = 0 then `Optimal
    else begin
      (* Phase 1: minimize the sum of artificials. *)
      let cost = Array.make total R.zero in
      for j = art_start to total - 1 do
        cost.(j) <- R.one
      done;
      set_costs t cost;
      match optimize ~count:pivots1 t ~allowed_up_to:total ~max_iters with
      | `Unbounded -> assert false
      | `Optimal ->
        if not (R.is_zero t.obj.(total)) then `Infeasible
        else begin
          (* Drive basic artificials out wherever the row has a nonzero
             real-column entry.  This must not be skipped when only
             negative entries exist: a zero-valued basic artificial whose
             row has a negative coefficient in a later entering column
             would silently grow positive again during phase 2.  The pivot
             entry must be positive to preserve den > 0, so negate the row
             first when needed (the row is an equation with rhs 0, so
             negation is an equivalent rewrite).  Rows that are entirely
             zero on real columns are redundant and harmless to keep. *)
          Array.iteri
            (fun i b ->
              if b >= art_start then begin
                let rec find_nonzero j =
                  if j >= art_start then None
                  else if not (B.is_zero t.rows.(i).(j)) then Some j
                  else find_nonzero (j + 1)
                in
                match find_nonzero 0 with
                | Some j ->
                  if B.sign t.rows.(i).(j) < 0 then begin
                    assert (B.is_zero t.rows.(i).(t.width - 1));
                    for k = 0 to t.width - 1 do
                      t.rows.(i).(k) <- B.neg t.rows.(i).(k)
                    done
                  end;
                  pivot t ~row:i ~col:j
                | None -> ()
              end)
            t.basis;
          `Feasible
        end
    end
  in
  match outcome with
  | `Infeasible ->
    record ();
    Sx.Infeasible
  | `Optimal | `Feasible -> (
    let cost = Array.make total R.zero in
    let negate = p.Problem.direction = Problem.Maximize in
    List.iter
      (fun (v, k) ->
        let k = if negate then R.neg k else k in
        cost.(v) <- R.add cost.(v) k)
      p.Problem.objective;
    set_costs t cost;
    match optimize ~count:pivots2 t ~allowed_up_to:art_start ~max_iters with
    | `Unbounded ->
      record ();
      Sx.Unbounded
    | `Optimal ->
      let values = Array.make n R.zero in
      Array.iteri
        (fun i b -> if b < n then values.(b) <- real_entry t i (t.width - 1))
        t.basis;
      let objective =
        List.fold_left
          (fun acc (v, k) -> R.add acc (R.mul k values.(v)))
          R.zero p.Problem.objective
      in
      (* Dual of scaled row i is −c̄ on its unit column; the original row
         was multiplied by [row_scale], so its dual gets the same factor;
         undo the rhs flip and the Maximize negation. *)
      let duals =
        Array.init m (fun i ->
            let y =
              R.mul (R.neg t.obj.(dual_col.(i))) (R.make row_scale.(i) B.one)
            in
            let y = if flipped.(i) then R.neg y else y in
            if negate then R.neg y else y)
      in
      record ();
      Sx.Optimal { values; objective; duals })

let solve (p : R.t Problem.t) : Sx.outcome =
  if not (Obs.Sink.enabled ()) then solve_untraced p
  else
    Obs.Span.with_span "lp.solve"
      ~attrs:
        [
          ("exact", Obs.Sink.Bool true);
          ("engine", Obs.Sink.Str "fraction_free");
          ("warm", Obs.Sink.Bool false);
        ]
      (fun () -> solve_untraced p)
