(* Solver instrumentation over the global metric registry.

   Every engine records one solve into the [lp.exact.*] or [lp.approx.*]
   instrument family of [Obs.Registry.global] (exact vs approximate
   arithmetic, as declared by the engine's field).  Consumers that used
   to install an [Lp.Stats] hook now difference {!totals} snapshots
   around the work they care about; per-solve detail is available by
   installing an [Obs.Sink.callback] and reading the ["lp.solve"] spans
   the engines emit when tracing is on. *)

module R = Obs.Registry

type handles = {
  c_solves : R.counter;
  c_warm : R.counter;
  c_p1 : R.counter;
  c_p2 : R.counter;
  c_dual : R.counter;
  h_seconds : R.histogram;
}

let make prefix =
  let g = R.global in
  {
    c_solves = R.counter g (prefix ^ ".solves");
    c_warm = R.counter g (prefix ^ ".solves_warm");
    c_p1 = R.counter g (prefix ^ ".pivots_phase1");
    c_p2 = R.counter g (prefix ^ ".pivots_phase2");
    c_dual = R.counter g (prefix ^ ".pivots_dual");
    h_seconds = R.histogram g (prefix ^ ".solve_seconds");
  }

let exact_h = make "lp.exact"
let approx_h = make "lp.approx"
let handles ~exact = if exact then exact_h else approx_h

type totals = {
  solves : int;
  warm_solves : int;
  pivots_phase1 : int;
  pivots_phase2 : int;
  pivots_dual : int;
  seconds : float;
}

let totals_of h =
  {
    solves = R.count h.c_solves;
    warm_solves = R.count h.c_warm;
    pivots_phase1 = R.count h.c_p1;
    pivots_phase2 = R.count h.c_p2;
    pivots_dual = R.count h.c_dual;
    seconds = R.hsum h.h_seconds;
  }

let exact_totals () = totals_of exact_h
let approx_totals () = totals_of approx_h
let totals_for ~exact = totals_of (handles ~exact)

let combined () =
  let e = exact_totals () and a = approx_totals () in
  {
    solves = e.solves + a.solves;
    warm_solves = e.warm_solves + a.warm_solves;
    pivots_phase1 = e.pivots_phase1 + a.pivots_phase1;
    pivots_phase2 = e.pivots_phase2 + a.pivots_phase2;
    pivots_dual = e.pivots_dual + a.pivots_dual;
    seconds = e.seconds +. a.seconds;
  }

let total_pivots t = t.pivots_phase1 + t.pivots_phase2 + t.pivots_dual

let diff ~before after =
  {
    solves = after.solves - before.solves;
    warm_solves = after.warm_solves - before.warm_solves;
    pivots_phase1 = after.pivots_phase1 - before.pivots_phase1;
    pivots_phase2 = after.pivots_phase2 - before.pivots_phase2;
    pivots_dual = after.pivots_dual - before.pivots_dual;
    seconds = after.seconds -. before.seconds;
  }

let warm_solves ~exact = R.count (handles ~exact).c_warm

(* Numeric fast-path telemetry.  [Numeric.Counters] keeps plain refs on
   the arithmetic hot path (the numeric library cannot depend on [obs]);
   this is the bridge that mirrors them into the registry as the
   [rat.*] counter family.  Registry counters are monotonic, so each
   sync adds the delta against what the registry already holds. *)

let c_rat_small = R.counter R.global "rat.small_ops"
let c_rat_big = R.counter R.global "rat.big_ops"
let c_rat_promotions = R.counter R.global "rat.promotions"
let c_rat_demotions = R.counter R.global "rat.demotions"

let sync_rat_counters () =
  let mirror c v =
    let d = v - R.count c in
    if d > 0 then R.add c d
  in
  mirror c_rat_small (Numeric.Counters.small_ops ());
  mirror c_rat_big (Numeric.Counters.big_ops ());
  mirror c_rat_promotions (Numeric.Counters.promotions ());
  mirror c_rat_demotions (Numeric.Counters.demotions ())

let record ~exact ~warm ~pivots_phase1 ~pivots_phase2 ~pivots_dual ~seconds =
  let h = handles ~exact in
  R.incr h.c_solves;
  if warm then R.incr h.c_warm;
  R.add h.c_p1 pivots_phase1;
  R.add h.c_p2 pivots_phase2;
  R.add h.c_dual pivots_dual;
  R.observe h.h_seconds seconds;
  sync_rat_counters ()

let now () = Unix.gettimeofday ()
