(* Two-phase primal simplex on a dense tableau, functorized over the
   coefficient field.

   Pivoting uses Bland's anti-cycling rule (smallest-index entering column,
   smallest-ratio leaving row with ties broken by smallest basic variable
   index), so termination is guaranteed even on the degenerate LPs that the
   scheduling formulations produce (intervals of zero duration at milestone
   boundaries make degeneracy the common case, not the exception).

   Exact instance [Exact] (rationals) backs all offline solvers; [Approx]
   (floats with tolerance) backs the online simulator. *)

module Make (F : Linalg.Field.S) = struct
  (* Result types are shared across engines (see [Solution]); the type
     equations keep [Sx.Optimal]-style constructors working while letting
     dense and revised results be compared with [=].  The re-exports must
     keep the original arity, hence the polymorphic aliases. *)
  type 'f poly_solution = 'f Solution.solution = {
    values : 'f array; (* one per problem variable *)
    objective : 'f;
    duals : 'f array;
        (* one per constraint, in problem order, for the original problem:
           at optimality Σ_i duals_i · rhs_i = objective (strong duality),
           and for a minimization duals_i ≤ 0 on Le rows, ≥ 0 on Ge rows
           (reversed for a maximization; Eq rows are unconstrained) *)
  }

  type solution = F.t poly_solution

  type 'f poly_outcome = 'f Solution.outcome =
    | Optimal of 'f poly_solution
    | Infeasible
    | Unbounded

  type outcome = F.t poly_outcome

  let pp_outcome fmt o = Solution.pp_outcome F.pp fmt o

  type tableau = {
    rows : F.t array array; (* m rows of width [width]; last column = rhs *)
    basis : int array; (* basic variable of each row *)
    obj : F.t array; (* reduced-cost row, same width *)
    width : int; (* total columns including rhs *)
    art_start : int; (* first artificial column *)
  }

  (* Entering column under Bland's rule: smallest index among allowed
     columns with negative reduced cost.  Guarantees no cycling. *)
  let entering_bland t ~allowed_up_to =
    let rec go j =
      if j >= allowed_up_to then None
      else if F.sign t.obj.(j) < 0 then Some j
      else go (j + 1)
    in
    go 0

  (* Entering column under Dantzig's rule: most negative reduced cost.
     Usually needs far fewer pivots than Bland but can cycle on degenerate
     problems, so [optimize] falls back to Bland after a pivot budget. *)
  let entering_dantzig t ~allowed_up_to =
    let best = ref None in
    for j = 0 to allowed_up_to - 1 do
      if F.sign t.obj.(j) < 0 then
        match !best with
        | None -> best := Some j
        | Some b -> if F.compare t.obj.(j) t.obj.(b) < 0 then best := Some j
    done;
    !best

  (* Leaving row for entering column [j]: minimum ratio rhs / coeff over
     positive coefficients; ties broken by smallest basic variable index. *)
  let leaving t j =
    let m = Array.length t.rows in
    let best = ref None in
    for i = 0 to m - 1 do
      let coeff = t.rows.(i).(j) in
      if F.sign coeff > 0 then begin
        let ratio = F.div t.rows.(i).(t.width - 1) coeff in
        match !best with
        | None -> best := Some (ratio, i)
        | Some (r, i') ->
          let c = F.compare ratio r in
          if c < 0 || (c = 0 && t.basis.(i) < t.basis.(i')) then best := Some (ratio, i)
      end
    done;
    Option.map snd !best

  let pivot t ~row ~col =
    let piv = t.rows.(row).(col) in
    let prow = t.rows.(row) in
    for j = 0 to t.width - 1 do
      prow.(j) <- F.div prow.(j) piv
    done;
    let eliminate target =
      let factor = target.(col) in
      if not (F.is_zero factor) then
        for j = 0 to t.width - 1 do
          target.(j) <- F.sub target.(j) (F.mul factor prow.(j))
        done
    in
    Array.iteri (fun i r -> if i <> row then eliminate r) t.rows;
    eliminate t.obj;
    t.basis.(row) <- col

  (* Rebuild the reduced-cost row for cost vector [cost] (indexed over all
     columns except rhs) given the current basis. *)
  let set_costs t cost =
    Array.fill t.obj 0 t.width F.zero;
    Array.blit cost 0 t.obj 0 (t.width - 1);
    Array.iteri
      (fun i b ->
        let cb = cost.(b) in
        if not (F.is_zero cb) then
          for j = 0 to t.width - 1 do
            t.obj.(j) <- F.sub t.obj.(j) (F.mul cb t.rows.(i).(j))
          done)
      t.basis

  exception Iteration_limit

  let optimize ?(count = ref 0) t ~allowed_up_to ~max_iters =
    (* Dantzig pivoting until the budget is spent, then Bland (which cannot
       cycle) for as long as it takes.  The budget is generous enough that
       the fallback only triggers on genuinely degenerate stalls. *)
    let dantzig_budget = 50 + (4 * (Array.length t.rows + t.width)) in
    let iters = ref 0 in
    let rec loop () =
      incr iters;
      if !iters > max_iters then raise Iteration_limit;
      let enter =
        if !iters <= dantzig_budget then entering_dantzig t ~allowed_up_to
        else entering_bland t ~allowed_up_to
      in
      match enter with
      | None -> `Optimal
      | Some j -> (
        match leaving t j with
        | None -> `Unbounded
        | Some i ->
          pivot t ~row:i ~col:j;
          incr count;
          loop ())
    in
    loop ()

  let solve_untraced (p : F.t Problem.t) : outcome =
    let t_start = Instrument.now () in
    let pivots1 = ref 0 and pivots2 = ref 0 in
    let record () =
      Instrument.record ~exact:F.exact ~warm:false ~pivots_phase1:!pivots1
        ~pivots_phase2:!pivots2 ~pivots_dual:0
        ~seconds:(Instrument.now () -. t_start);
      Obs.Span.set_int "pivots_phase1" !pivots1;
      Obs.Span.set_int "pivots_phase2" !pivots2
    in
    let n = p.Problem.num_vars in
    let constrs = Array.of_list p.Problem.constraints in
    let m = Array.length constrs in
    (* Normalize right-hand sides to be nonnegative. *)
    let normalized =
      Array.map
        (fun (c : F.t Problem.constr) ->
          if F.sign c.rhs < 0 then
            let flip = function Problem.Le -> Problem.Ge | Ge -> Le | Eq -> Eq in
            ( List.map (fun (v, k) -> (v, F.neg k)) c.terms,
              flip c.rel,
              F.neg c.rhs )
          else (c.terms, c.rel, c.rhs))
        constrs
    in
    (* Column layout: originals, then one slack/surplus per inequality,
       then one artificial per Ge/Eq row, then rhs. *)
    let num_slack =
      Array.fold_left
        (fun acc (_, rel, _) -> match rel with Problem.Le | Ge -> acc + 1 | Eq -> acc)
        0 normalized
    in
    let num_art =
      Array.fold_left
        (fun acc (_, rel, _) -> match rel with Problem.Ge | Eq -> acc + 1 | Le -> acc)
        0 normalized
    in
    let art_start = n + num_slack in
    let total = n + num_slack + num_art in
    let width = total + 1 in
    let rows = Array.init m (fun _ -> Array.make width F.zero) in
    let basis = Array.make m (-1) in
    (* Per-row unit column used to read the dual value off the final
       reduced-cost row: the slack for Le, the artificial for Ge/Eq. *)
    let dual_col = Array.make m (-1) in
    let flipped =
      Array.mapi
        (fun i (c : F.t Problem.constr) ->
          ignore i;
          F.sign c.rhs < 0)
        constrs
    in
    let next_slack = ref n and next_art = ref art_start in
    Array.iteri
      (fun i (terms, rel, rhs) ->
        let row = rows.(i) in
        List.iter (fun (v, k) -> row.(v) <- F.add row.(v) k) terms;
        row.(total) <- rhs;
        (match rel with
         | Problem.Le ->
           row.(!next_slack) <- F.one;
           basis.(i) <- !next_slack;
           dual_col.(i) <- !next_slack;
           incr next_slack
         | Problem.Ge ->
           row.(!next_slack) <- F.neg F.one;
           incr next_slack;
           row.(!next_art) <- F.one;
           basis.(i) <- !next_art;
           dual_col.(i) <- !next_art;
           incr next_art
         | Problem.Eq ->
           row.(!next_art) <- F.one;
           basis.(i) <- !next_art;
           dual_col.(i) <- !next_art;
           incr next_art))
      normalized;
    let t = { rows; basis; obj = Array.make width F.zero; width; art_start } in
    let max_iters = 1000 + (100 * (m + total)) in
    (* Phase 1: minimize the sum of artificials. *)
    let outcome =
      if num_art = 0 then `Optimal
      else begin
        let cost = Array.make total F.zero in
        for j = art_start to total - 1 do
          cost.(j) <- F.one
        done;
        set_costs t cost;
        match optimize ~count:pivots1 t ~allowed_up_to:total ~max_iters with
        | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
        | `Optimal ->
          (* Objective cell holds the negated phase-1 value. *)
          if not (F.is_zero t.obj.(total)) then `Infeasible
          else begin
            (* Drive remaining artificials out of the basis where possible;
               rows where it is impossible are redundant (all-zero on real
               columns) and harmless. *)
            Array.iteri
              (fun i b ->
                if b >= art_start then begin
                  let rec find j =
                    if j >= art_start then None
                    else if not (F.is_zero t.rows.(i).(j)) then Some j
                    else find (j + 1)
                  in
                  match find 0 with
                  | Some j -> pivot t ~row:i ~col:j
                  | None -> ()
                end)
              t.basis;
            `Feasible
          end
      end
    in
    match outcome with
    | `Infeasible ->
      record ();
      Infeasible
    | `Optimal | `Feasible -> (
      (* Phase 2: the real objective (internally always a minimization). *)
      let cost = Array.make total F.zero in
      let negate = p.Problem.direction = Problem.Maximize in
      List.iter
        (fun (v, k) ->
          let k = if negate then F.neg k else k in
          cost.(v) <- F.add cost.(v) k)
        p.Problem.objective;
      set_costs t cost;
      match optimize ~count:pivots2 t ~allowed_up_to:art_start ~max_iters with
      | `Unbounded ->
        record ();
        Unbounded
      | `Optimal ->
        let values = Array.make n F.zero in
        Array.iteri
          (fun i b -> if b < n then values.(b) <- t.rows.(i).(t.width - 1))
          t.basis;
        let objective =
          List.fold_left
            (fun acc (v, k) -> F.add acc (F.mul k values.(v)))
            F.zero p.Problem.objective
        in
        (* Dual of normalized row i: −c̄ on its unit column; undo the rhs
           flip and the Maximize negation to express it for the original
           problem. *)
        let duals =
          Array.init m (fun i ->
              let y = F.neg t.obj.(dual_col.(i)) in
              let y = if flipped.(i) then F.neg y else y in
              if negate then F.neg y else y)
        in
        record ();
        Optimal { values; objective; duals })

  let solve (p : F.t Problem.t) : outcome =
    if not (Obs.Sink.enabled ()) then solve_untraced p
    else
      Obs.Span.with_span "lp.solve"
        ~attrs:
          [
            ("exact", Obs.Sink.Bool F.exact);
            ("engine", Obs.Sink.Str "tableau");
            ("warm", Obs.Sink.Bool false);
          ]
        (fun () -> solve_untraced p)

  (* Check that [values] satisfies every constraint of [p] (within the
     field's tolerance) and is componentwise nonnegative. *)
  let check_feasible (p : F.t Problem.t) (values : F.t array) : (unit, string) result =
    let buf = Buffer.create 0 in
    Array.iteri
      (fun i v ->
        if F.sign v < 0 then
          Buffer.add_string buf
            (Printf.sprintf "variable %s negative; " p.Problem.var_names.(i)))
      values;
    List.iter
      (fun (c : F.t Problem.constr) ->
        let lhs =
          List.fold_left (fun acc (v, k) -> F.add acc (F.mul k values.(v))) F.zero c.terms
        in
        let ok =
          match c.rel with
          | Problem.Le -> F.sign (F.sub lhs c.rhs) <= 0
          | Problem.Ge -> F.sign (F.sub lhs c.rhs) >= 0
          | Problem.Eq -> F.is_zero (F.sub lhs c.rhs)
        in
        if not ok then Buffer.add_string buf (Printf.sprintf "constraint %s violated; " c.cname))
      p.Problem.constraints;
    if Buffer.length buf = 0 then Ok () else Error (Buffer.contents buf)
end

module Exact = Make (Linalg.Field.Rational)
module Approx = Make (Linalg.Field.Approx)
