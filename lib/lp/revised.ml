(* Revised simplex over a sparse (CSC) constraint matrix, functorized over
   the coefficient field, with an explicit basis object that supports warm
   starts.

   Where the dense tableau rewrites all m×(n+m) entries per pivot, this
   engine keeps only the basis inverse B⁻¹ (m×m) and the basic solution
   x_B, prices candidate columns against the sparse matrix (y = c_B·B⁻¹,
   d_j = c_j − y·A_j), and updates B⁻¹ in O(m²) per pivot — the win grows
   with the number of variables, and the scheduling formulations have one
   variable per machine×interval.

   Pivot-rule parity: cold solves use exactly the rules of [Simplex.Make] —
   Dantzig entering with the same budget formula and first-index tie-break,
   Bland fallback, minimum-ratio leaving with ties broken by smallest basic
   variable, the same normalization and phase-1 artificial drive-out scan
   order.  In exact arithmetic the reduced costs computed here equal the
   dense tableau's objective row entry for entry, so a cold solve visits
   the same sequence of bases and returns bit-identical values and duals.
   The dense solvers are kept as a differential-testing oracle behind
   [Solve.Dense].

   Warm starts ([solve_prepared ?warm]) re-solve a problem starting from a
   previously optimal basis: refactorize B⁻¹ from scratch (so stale hints
   are *verified*, never trusted), drive out zero-valued artificials, then
   either resume primal phase 2 (basis still primal feasible), run the dual
   simplex (basis dual feasible — always the case for the zero-objective
   deadline-feasibility probes), or give up and fall back to a cold solve.
   A warm start can change which optimal vertex is returned (the objective
   value is unique; the argmax need not be), so callers that require
   bit-identical schedules simply do not pass [?warm]. *)

module Sp = Linalg.Sparse

module Make (F : Linalg.Field.S) = struct
  type 'f poly_solution = 'f Solution.solution = {
    values : 'f array;
    objective : 'f;
    duals : 'f array;
  }

  type solution = F.t poly_solution

  type 'f poly_outcome = 'f Solution.outcome =
    | Optimal of 'f poly_solution
    | Infeasible
    | Unbounded

  type outcome = F.t poly_outcome

  let pp_outcome fmt o = Solution.pp_outcome F.pp fmt o

  type prepared = {
    src : F.t Problem.t;
    m : int;
    n : int; (* original variables *)
    total : int; (* structural columns: originals, slack/surplus, artificials *)
    art_start : int;
    num_art : int;
    cols : F.t Sp.t; (* m × total *)
    b : F.t array; (* normalized (nonnegative) right-hand sides *)
    cost2 : F.t array; (* phase-2 costs over all columns (minimization) *)
    negate : bool; (* original problem was a maximization *)
    dual_col : int array; (* unit column used to read each row's dual *)
    flipped : bool array; (* rows whose rhs sign was flipped *)
    shape : string; (* structural signature; see [shape] *)
  }

  let shape prep = prep.shape
  let num_cols prep = prep.total
  let matrix prep = prep.cols

  (* Normalize and build the CSC matrix.  The layout matches the dense
     solvers exactly: originals, then one slack/surplus per inequality,
     then one artificial per Ge/Eq row; rhs is kept separately. *)
  let prepare (p : F.t Problem.t) : prepared =
    let n = p.Problem.num_vars in
    let constrs = Array.of_list p.Problem.constraints in
    let m = Array.length constrs in
    let normalized =
      Array.map
        (fun (c : F.t Problem.constr) ->
          if F.sign c.rhs < 0 then
            let flip = function Problem.Le -> Problem.Ge | Ge -> Le | Eq -> Eq in
            (List.map (fun (v, k) -> (v, F.neg k)) c.terms, flip c.rel, F.neg c.rhs)
          else (c.terms, c.rel, c.rhs))
        constrs
    in
    let num_slack =
      Array.fold_left
        (fun acc (_, rel, _) -> match rel with Problem.Le | Ge -> acc + 1 | Eq -> acc)
        0 normalized
    in
    let num_art =
      Array.fold_left
        (fun acc (_, rel, _) -> match rel with Problem.Ge | Eq -> acc + 1 | Le -> acc)
        0 normalized
    in
    let art_start = n + num_slack in
    let total = n + num_slack + num_art in
    let builder = Sp.Builder.create ~nrows:m ~ncols:total in
    let b = Array.make m F.zero in
    let dual_col = Array.make m (-1) in
    let flipped =
      Array.map (fun (c : F.t Problem.constr) -> F.sign c.rhs < 0) constrs
    in
    (* Scratch row for combining duplicate terms; [touched] lists the
       columns written, in first-touch order. *)
    let scratch = Array.make (max n 1) F.zero in
    let next_slack = ref n and next_art = ref art_start in
    let shape_buf = Buffer.create (m + 32) in
    Buffer.add_string shape_buf (Printf.sprintf "%d/%d/%d/%d:" m n total art_start);
    Array.iteri
      (fun i (terms, rel, rhs) ->
        let touched = ref [] in
        List.iter
          (fun (v, k) ->
            if not (List.mem v !touched) then touched := v :: !touched;
            scratch.(v) <- F.add scratch.(v) k)
          terms;
        (* Columns must be fed in increasing order within the row so that
           CSC columns come out row-sorted; sort the touched set. *)
        let cols_touched = List.sort_uniq compare !touched in
        List.iter
          (fun v ->
            if not (F.is_zero scratch.(v)) then
              Sp.Builder.add builder ~row:i ~col:v scratch.(v);
            scratch.(v) <- F.zero)
          cols_touched;
        b.(i) <- rhs;
        (match rel with
         | Problem.Le ->
           Sp.Builder.add builder ~row:i ~col:!next_slack F.one;
           dual_col.(i) <- !next_slack;
           incr next_slack;
           Buffer.add_char shape_buf 'l'
         | Problem.Ge ->
           Sp.Builder.add builder ~row:i ~col:!next_slack (F.neg F.one);
           incr next_slack;
           Sp.Builder.add builder ~row:i ~col:!next_art F.one;
           dual_col.(i) <- !next_art;
           incr next_art;
           Buffer.add_char shape_buf 'g'
         | Problem.Eq ->
           Sp.Builder.add builder ~row:i ~col:!next_art F.one;
           dual_col.(i) <- !next_art;
           incr next_art;
           Buffer.add_char shape_buf 'e'))
      normalized;
    let cols = Sp.Builder.finish builder in
    let negate = p.Problem.direction = Problem.Maximize in
    let cost2 = Array.make (max total 1) F.zero in
    List.iter
      (fun (v, k) ->
        let k = if negate then F.neg k else k in
        cost2.(v) <- F.add cost2.(v) k)
      p.Problem.objective;
    {
      src = p;
      m;
      n;
      total;
      art_start;
      num_art;
      cols;
      b;
      cost2;
      negate;
      dual_col;
      flipped;
      shape = Buffer.contents shape_buf;
    }

  (* The initial basic column of each normalized row: the slack for Le,
     the artificial for Ge/Eq — i.e. exactly [dual_col]. *)
  let initial_basis prep = Array.copy prep.dual_col

  type state = {
    prep : prepared;
    basis : int array; (* basic column of each row *)
    in_basis : bool array; (* over all [total] columns *)
    binv : F.t array array; (* B⁻¹, m×m, row-major *)
    xb : F.t array; (* current basic values, = B⁻¹·b *)
  }

  let make_in_basis prep basis =
    let in_basis = Array.make (max prep.total 1) false in
    Array.iter (fun j -> in_basis.(j) <- true) basis;
    in_basis

  let cold_state prep =
    let m = prep.m in
    let basis = initial_basis prep in
    {
      prep;
      basis;
      in_basis = make_in_basis prep basis;
      binv = Array.init m (fun i -> Array.init m (fun j -> if i = j then F.one else F.zero));
      xb = Array.copy prep.b;
    }

  (* Rebuild B⁻¹ and x_B for an arbitrary candidate basis by Gauss–Jordan
     elimination with partial pivoting on [B | I].  Returns [None] when the
     candidate columns are (numerically) singular — the warm-start caller
     then falls back to a cold solve, so a bad hint can never produce a
     wrong answer, only a slower one. *)
  let refactor prep basis0 : state option =
    let m = prep.m in
    if Array.length basis0 <> m then None
    else if Array.exists (fun j -> j < 0 || j >= prep.total) basis0 then None
    else begin
      let duplicate =
        let seen = Array.make (max prep.total 1) false in
        Array.exists
          (fun j ->
            if seen.(j) then true
            else begin
              seen.(j) <- true;
              false
            end)
          basis0
      in
      if duplicate then None
      else begin
        let aug = Array.init m (fun _ -> Array.make (2 * m) F.zero) in
        Array.iteri
          (fun k j -> Sp.iter_col prep.cols j (fun r v -> aug.(r).(k) <- v))
          basis0;
        for i = 0 to m - 1 do
          aug.(i).(m + i) <- F.one
        done;
        let singular = ref false in
        (try
           for c = 0 to m - 1 do
             let pr = ref c in
             for r = c + 1 to m - 1 do
               if F.compare (F.abs aug.(r).(c)) (F.abs aug.(!pr).(c)) > 0 then pr := r
             done;
             if F.is_zero aug.(!pr).(c) then raise Exit;
             if !pr <> c then begin
               let tmp = aug.(c) in
               aug.(c) <- aug.(!pr);
               aug.(!pr) <- tmp
             end;
             let piv = aug.(c).(c) in
             for j = 0 to (2 * m) - 1 do
               aug.(c).(j) <- F.div aug.(c).(j) piv
             done;
             for r = 0 to m - 1 do
               if r <> c && not (F.is_zero aug.(r).(c)) then begin
                 let f = aug.(r).(c) in
                 for j = 0 to (2 * m) - 1 do
                   aug.(r).(j) <- F.sub aug.(r).(j) (F.mul f aug.(c).(j))
                 done
               end
             done
           done
         with Exit -> singular := true);
        if !singular then None
        else begin
          let binv = Array.init m (fun i -> Array.sub aug.(i) m m) in
          let xb =
            Array.init m (fun i ->
                let acc = ref F.zero in
                for k = 0 to m - 1 do
                  if not (F.is_zero prep.b.(k)) then
                    acc := F.add !acc (F.mul binv.(i).(k) prep.b.(k))
                done;
                !acc)
          in
          let basis = Array.copy basis0 in
          Some { prep; basis; in_basis = make_in_basis prep basis; binv; xb }
        end
      end
    end

  (* w = B⁻¹ · A_j, the entering column expressed in the current basis. *)
  let column st j =
    let m = st.prep.m in
    let w = Array.make m F.zero in
    Sp.iter_col st.prep.cols j (fun r v ->
        for i = 0 to m - 1 do
          let c = st.binv.(i).(r) in
          if not (F.is_zero c) then w.(i) <- F.add w.(i) (F.mul c v)
        done);
    w

  (* Row r of B⁻¹·A at column j (used by the dual ratio test). *)
  let row_entry st r j =
    Sp.fold_col st.prep.cols j
      (fun acc row v -> F.add acc (F.mul st.binv.(r).(row) v))
      F.zero

  (* Simplex multipliers y = c_B · B⁻¹ for cost vector [cost]. *)
  let multipliers st cost =
    let m = st.prep.m in
    let y = Array.make m F.zero in
    for i = 0 to m - 1 do
      let cb = cost.(st.basis.(i)) in
      if not (F.is_zero cb) then begin
        let bi = st.binv.(i) in
        for k = 0 to m - 1 do
          if not (F.is_zero bi.(k)) then y.(k) <- F.add y.(k) (F.mul cb bi.(k))
        done
      end
    done;
    y

  let reduced_cost st cost y j =
    Sp.fold_col st.prep.cols j
      (fun acc r v -> F.sub acc (F.mul y.(r) v))
      cost.(j)

  (* Basis change: column [col] enters at row [row]; [w] = B⁻¹·A_col.
     Updates B⁻¹ and x_B in O(m²). *)
  let pivot st ~row ~col ~w =
    let m = st.prep.m in
    let piv = w.(row) in
    let brow = st.binv.(row) in
    for k = 0 to m - 1 do
      brow.(k) <- F.div brow.(k) piv
    done;
    st.xb.(row) <- F.div st.xb.(row) piv;
    for i = 0 to m - 1 do
      if i <> row then begin
        let f = w.(i) in
        if not (F.is_zero f) then begin
          let bi = st.binv.(i) in
          for k = 0 to m - 1 do
            bi.(k) <- F.sub bi.(k) (F.mul f brow.(k))
          done;
          st.xb.(i) <- F.sub st.xb.(i) (F.mul f st.xb.(row))
        end
      end
    done;
    st.in_basis.(st.basis.(row)) <- false;
    st.basis.(row) <- col;
    st.in_basis.(col) <- true

  (* Leaving row: minimum ratio x_B / w over positive w entries, ties
     broken by smallest basic variable index — identical to the dense
     solvers' rule. *)
  let leaving st w =
    let m = st.prep.m in
    let best = ref None in
    for i = 0 to m - 1 do
      if F.sign w.(i) > 0 then begin
        let ratio = F.div st.xb.(i) w.(i) in
        match !best with
        | None -> best := Some (ratio, i)
        | Some (r, i') ->
          let c = F.compare ratio r in
          if c < 0 || (c = 0 && st.basis.(i) < st.basis.(i')) then
            best := Some (ratio, i)
      end
    done;
    Option.map snd !best

  exception Iteration_limit

  (* Primal simplex from the current (primal-feasible) state.  Entering
     rules and the Dantzig budget mirror [Simplex.optimize] so that cold
     runs traverse the same bases as the dense tableau. *)
  let primal ?(count = ref 0) st ~cost ~allowed_up_to ~max_iters =
    let m = st.prep.m in
    let width = st.prep.total + 1 in
    let dantzig_budget = 50 + (4 * (m + width)) in
    let iters = ref 0 in
    let rec loop () =
      incr iters;
      if !iters > max_iters then raise Iteration_limit;
      let y = multipliers st cost in
      let enter =
        if !iters <= dantzig_budget then begin
          (* Dantzig: most negative reduced cost, first index on ties.
             Basic columns have reduced cost exactly zero, so skipping
             them matches the dense scan. *)
          let best = ref None in
          for j = 0 to allowed_up_to - 1 do
            if not st.in_basis.(j) then begin
              let d = reduced_cost st cost y j in
              if F.sign d < 0 then
                match !best with
                | None -> best := Some (j, d)
                | Some (_, bd) -> if F.compare d bd < 0 then best := Some (j, d)
            end
          done;
          Option.map fst !best
        end
        else begin
          (* Bland: smallest index with negative reduced cost. *)
          let rec go j =
            if j >= allowed_up_to then None
            else if
              (not st.in_basis.(j)) && F.sign (reduced_cost st cost y j) < 0
            then Some j
            else go (j + 1)
          in
          go 0
        end
      in
      match enter with
      | None -> `Optimal
      | Some j -> (
        let w = column st j in
        match leaving st w with
        | None -> `Unbounded
        | Some i ->
          pivot st ~row:i ~col:j ~w;
          incr count;
          loop ())
    in
    loop ()

  (* Drive zero-valued basic artificials out of the basis, mirroring the
     dense phase-1 epilogue: scan rows in order, pivot on the first real
     column with a nonzero entry; rows with none are redundant. *)
  let drive_out_artificials st =
    let prep = st.prep in
    for i = 0 to prep.m - 1 do
      if st.basis.(i) >= prep.art_start then begin
        let rec find j =
          if j >= prep.art_start then None
          else if
            (not st.in_basis.(j)) && not (F.is_zero (row_entry st i j))
          then Some j
          else find (j + 1)
        in
        match find 0 with
        | Some j ->
          let w = column st j in
          pivot st ~row:i ~col:j ~w
        | None -> ()
      end
    done

  let phase1_value st cost1 =
    let acc = ref F.zero in
    Array.iteri
      (fun i b ->
        if not (F.is_zero cost1.(b)) then
          acc := F.add !acc (F.mul cost1.(b) st.xb.(i)))
      st.basis;
    !acc

  let extract st =
    let prep = st.prep in
    let values = Array.make prep.n F.zero in
    Array.iteri
      (fun i b -> if b < prep.n then values.(b) <- st.xb.(i))
      st.basis;
    let objective =
      List.fold_left
        (fun acc (v, k) -> F.add acc (F.mul k values.(v)))
        F.zero prep.src.Problem.objective
    in
    (* Dual of normalized row i is y at its unit column; undo the rhs flip
       and the Maximize negation, exactly as the dense extraction does. *)
    let y = multipliers st prep.cost2 in
    let duals =
      Array.init prep.m (fun i ->
          let v = y.(i) in
          let v = if prep.flipped.(i) then F.neg v else v in
          if prep.negate then F.neg v else v)
    in
    Optimal { values; objective; duals }

  let max_iters_for prep = 1000 + (100 * (prep.m + prep.total))

  (* Dual simplex: restores primal feasibility while keeping all reduced
     costs nonnegative.  Only used on warm restarts; artificial columns
     are never eligible to enter.  Returns [`Limit] when the iteration cap
     trips, letting the caller fall back to a cold solve — so termination
     is guaranteed without a dedicated anti-cycling proof. *)
  let dual_simplex ?(count = ref 0) st ~max_iters =
    let prep = st.prep in
    let m = prep.m in
    let budget = 50 + (4 * (m + prep.total + 1)) in
    let iters = ref 0 in
    let rec loop () =
      incr iters;
      if !iters > max_iters then `Limit
      else begin
        (* Leaving row: most negative x_B (ties by smallest basic
           variable); after the budget, smallest basic variable among the
           negatives (Bland-style). *)
        let leave = ref None in
        for i = 0 to m - 1 do
          if F.sign st.xb.(i) < 0 then
            match !leave with
            | None -> leave := Some i
            | Some i' ->
              let better =
                if !iters <= budget then
                  let c = F.compare st.xb.(i) st.xb.(i') in
                  c < 0 || (c = 0 && st.basis.(i) < st.basis.(i'))
                else st.basis.(i) < st.basis.(i')
              in
              if better then leave := Some i
        done;
        match !leave with
        | None -> `Feasible
        | Some r -> (
          let y = multipliers st prep.cost2 in
          let best = ref None in
          for j = 0 to prep.art_start - 1 do
            if not st.in_basis.(j) then begin
              let alpha = row_entry st r j in
              if F.sign alpha < 0 then begin
                let d = reduced_cost st prep.cost2 y j in
                let ratio = F.div d (F.neg alpha) in
                match !best with
                | None -> best := Some (ratio, j)
                | Some (br, _) -> if F.compare ratio br < 0 then best := Some (ratio, j)
              end
            end
          done;
          match !best with
          | None -> `Infeasible (* row r certifies primal infeasibility *)
          | Some (_, j) ->
            let w = column st j in
            pivot st ~row:r ~col:j ~w;
            incr count;
            loop ())
      end
    in
    loop ()

  (* Cold two-phase solve; returns the outcome plus the final state. *)
  let cold_solve prep ~count1 ~count2 =
    let st = cold_state prep in
    let max_iters = max_iters_for prep in
    let feasible =
      if prep.num_art = 0 then `Feasible
      else begin
        let cost1 = Array.make (max prep.total 1) F.zero in
        for j = prep.art_start to prep.total - 1 do
          cost1.(j) <- F.one
        done;
        match primal ~count:count1 st ~cost:cost1 ~allowed_up_to:prep.total ~max_iters with
        | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
        | `Optimal ->
          if not (F.is_zero (phase1_value st cost1)) then `Infeasible
          else begin
            drive_out_artificials st;
            `Feasible
          end
      end
    in
    match feasible with
    | `Infeasible -> (Infeasible, st)
    | `Feasible -> (
      match
        primal ~count:count2 st ~cost:prep.cost2 ~allowed_up_to:prep.art_start
          ~max_iters
      with
      | `Unbounded -> (Unbounded, st)
      | `Optimal -> (extract st, st))

  (* Attempt a warm restart from [basis0].  [None] means "fall back to a
     cold solve"; [Some] is a fully verified outcome. *)
  let warm_solve prep basis0 ~count2 ~countd =
    match refactor prep basis0 with
    | None -> None
    | Some st ->
      let max_iters = max_iters_for prep in
      (* A basic artificial with nonzero value means the hinted basis does
         not reach a feasible point of the real problem; phase 1 would be
         needed, which a cold solve does anyway. *)
      let bad_artificial = ref false in
      Array.iteri
        (fun i b ->
          if b >= prep.art_start && not (F.is_zero st.xb.(i)) then
            bad_artificial := true)
        st.basis;
      if !bad_artificial then None
      else begin
        drive_out_artificials st;
        let primal_feasible =
          Array.for_all (fun v -> F.sign v >= 0) st.xb
        in
        if primal_feasible then begin
          match
            primal ~count:count2 st ~cost:prep.cost2
              ~allowed_up_to:prep.art_start ~max_iters
          with
          | `Unbounded -> Some (Unbounded, st)
          | `Optimal -> Some (extract st, st)
        end
        else begin
          (* Primal infeasible at the hint: usable only if dual feasible
             (true by construction for zero-objective feasibility probes,
             where every reduced cost is ≥ 0). *)
          let y = multipliers st prep.cost2 in
          let dual_feasible = ref true in
          (try
             for j = 0 to prep.art_start - 1 do
               if
                 (not st.in_basis.(j))
                 && F.sign (reduced_cost st prep.cost2 y j) < 0
               then begin
                 dual_feasible := false;
                 raise Exit
               end
             done
           with Exit -> ());
          if not !dual_feasible then None
          else
            match dual_simplex ~count:countd st ~max_iters with
            | `Limit -> None
            | `Infeasible -> Some (Infeasible, st)
            | `Feasible -> (
              match
                primal ~count:count2 st ~cost:prep.cost2
                  ~allowed_up_to:prep.art_start ~max_iters
              with
              | `Unbounded -> Some (Unbounded, st)
              | `Optimal -> Some (extract st, st))
        end
      end

  (* Solve a prepared problem, optionally warm-starting from a previous
     basis.  Returns the outcome together with the final basis (a plain
     int array, safe to store and pass to a later [solve_prepared]). *)
  let solve_prepared ?warm prep : outcome * int array =
    let body () =
      let t_start = Instrument.now () in
      let p1 = ref 0 and p2 = ref 0 and pd = ref 0 in
      let warm_used = ref false in
      let finish (outcome, st) =
        Instrument.record ~exact:F.exact ~warm:!warm_used ~pivots_phase1:!p1
          ~pivots_phase2:!p2 ~pivots_dual:!pd
          ~seconds:(Instrument.now () -. t_start);
        Obs.Span.set_bool "warm" !warm_used;
        Obs.Span.set_int "pivots_phase1" !p1;
        Obs.Span.set_int "pivots_phase2" !p2;
        Obs.Span.set_int "pivots_dual" !pd;
        (outcome, Array.copy st.basis)
      in
      let attempt =
        match warm with
        | None -> None
        | Some basis0 ->
          (* [warm_solve] refactorizes B⁻¹ from the hint exactly once. *)
          Obs.Span.set_bool "warm_attempted" true;
          Obs.Span.set_int "refactorizations" 1;
          warm_solve prep basis0 ~count2:p2 ~countd:pd
      in
      match attempt with
      | Some result ->
        warm_used := true;
        finish result
      | None -> finish (cold_solve prep ~count1:p1 ~count2:p2)
    in
    if not (Obs.Sink.enabled ()) then body ()
    else
      Obs.Span.with_span "lp.solve"
        ~attrs:[ ("exact", Obs.Sink.Bool F.exact); ("engine", Obs.Sink.Str "revised") ]
        body

  let solve (p : F.t Problem.t) : outcome =
    fst (solve_prepared (prepare p))
end

module Exact = Make (Linalg.Field.Rational)
module Approx = Make (Linalg.Field.Approx)
