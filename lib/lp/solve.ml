(* Solver dispatch: one entry point for the rest of the codebase.

   [variant] selects the engine family process-wide:
   - [Sparse] (default): the revised simplex over CSC columns.  Cold
     solves follow the dense pivot rules exactly, so exact-arithmetic
     results are bit-identical to [Dense].
   - [Dense]: the original tableau solvers ([Simplex.Exact] for rationals,
     [Simplex.Approx] for floats), kept as a differential-testing oracle
     (CLI flag [--solver=dense]).  Note this is the rational tableau, not
     [Simplex_ff]: the fraction-free solver agrees on objectives but can
     land on a different optimal vertex under degeneracy, while the
     revised engine replicates the tableau's pivot rules vertex-for-vertex.

   Warm-start hints are only honored by the sparse engines and only when
   the caller supplies them ([?hint] for a one-shot basis, [?cache] for a
   shape-keyed basis store).  Paths that pass neither get cold solves and
   therefore identical results under both variants. *)

module R = Numeric.Rat

type variant = Dense | Sparse

let variant = ref Sparse
let variant_name = function Dense -> "dense" | Sparse -> "sparse"

let variant_of_string = function
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | _ -> None

(* Global warm-start enable: flipping this off makes even hinted solves
   run cold.  The bench uses it to measure the warm-start payoff with
   everything else held fixed. *)
let warm = ref true

(* A basis cache keyed by the problem's structural shape.  Bounded: when
   full, the whole table is dropped (shape families in one search are few,
   so eviction is rare in practice).  The lock makes lookups and stores
   domain-safe — a deadline prober shared by concurrent feasibility
   probes (Par.Pool) reaches this table from several domains at once. *)
type cache = { tbl : (string, int array) Hashtbl.t; lock : Mutex.t }

let cache_capacity = 64
let cache () : cache = { tbl = Hashtbl.create 16; lock = Mutex.create () }

(* Drop every stored basis.  Callers invalidate when the *problem family*
   changes shape-incompatibly — e.g. a machine failure rewrites the cost
   matrix, so bases keyed by the old columns would only mislead the
   crash-recovery logic of the first warm solve after the change. *)
let cache_clear (c : cache) =
  let bases = Mutex.protect c.lock (fun () ->
      let n = Hashtbl.length c.tbl in
      Hashtbl.reset c.tbl;
      n)
  in
  if Obs.Sink.enabled () then
    Obs.Event.emit "lp.cache.cleared" ~attrs:[ ("bases", Obs.Sink.Int bases) ]

let cache_store (c : cache) shape basis =
  Mutex.protect c.lock (fun () ->
      if Hashtbl.length c.tbl >= cache_capacity && not (Hashtbl.mem c.tbl shape)
      then Hashtbl.reset c.tbl;
      Hashtbl.replace c.tbl shape basis)

let pick_hint ?cache ?hint shape =
  if not !warm then None
  else
    match hint with
    | Some _ -> hint
    | None ->
      Option.bind cache (fun c ->
          Mutex.protect c.lock (fun () -> Hashtbl.find_opt c.tbl shape))

(* Exact (rational) solve.  [exact_basis] additionally returns the final
   basis under the sparse variant, for callers that hand bases across
   engines (e.g. float probe → exact certification). *)
let exact_basis ?cache ?hint (p : R.t Problem.t) :
    R.t Solution.outcome * int array option =
  match !variant with
  | Dense -> (Simplex.Exact.solve p, None)
  | Sparse ->
    let prep = Revised.Exact.prepare p in
    let shape = Revised.Exact.shape prep in
    let warm = pick_hint ?cache ?hint shape in
    let outcome, basis = Revised.Exact.solve_prepared ?warm prep in
    Option.iter (fun c -> cache_store c shape basis) cache;
    (outcome, Some basis)

let exact ?cache ?hint p = fst (exact_basis ?cache ?hint p)

(* Approximate (float) solve, same dispatch. *)
let approx_basis ?cache ?hint (p : float Problem.t) :
    float Solution.outcome * int array option =
  match !variant with
  | Dense -> (Simplex.Approx.solve p, None)
  | Sparse ->
    let prep = Revised.Approx.prepare p in
    let shape = Revised.Approx.shape prep in
    let warm = pick_hint ?cache ?hint shape in
    let outcome, basis = Revised.Approx.solve_prepared ?warm prep in
    Option.iter (fun c -> cache_store c shape basis) cache;
    (outcome, Some basis)

let approx ?cache ?hint p = fst (approx_basis ?cache ?hint p)
