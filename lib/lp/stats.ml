(* Solver instrumentation.

   Every engine records one [info] per [solve] call.  Records are folded
   into two global accumulators (exact vs approximate arithmetic, as
   declared by the engine's field) and passed to an optional hook, which
   [Serve.Engine] uses to feed per-solve wall-time histograms without the
   engines knowing anything about metrics. *)

type info = {
  exact : bool; (* Field.exact of the engine that produced this solve *)
  warm : bool; (* true iff a supplied basis was successfully reused *)
  pivots_phase1 : int;
  pivots_phase2 : int;
  pivots_dual : int; (* dual-simplex pivots (warm restarts only) *)
  seconds : float;
}

type t = {
  mutable solves : int;
  mutable warm_solves : int;
  mutable pivots_phase1 : int;
  mutable pivots_phase2 : int;
  mutable pivots_dual : int;
  mutable seconds : float;
}

let create () =
  {
    solves = 0;
    warm_solves = 0;
    pivots_phase1 = 0;
    pivots_phase2 = 0;
    pivots_dual = 0;
    seconds = 0.0;
  }

let reset t =
  t.solves <- 0;
  t.warm_solves <- 0;
  t.pivots_phase1 <- 0;
  t.pivots_phase2 <- 0;
  t.pivots_dual <- 0;
  t.seconds <- 0.0

let copy t = { t with solves = t.solves }
let total_pivots t = t.pivots_phase1 + t.pivots_phase2 + t.pivots_dual

(* Accumulators for every solve performed by this process, split by
   arithmetic.  The milestone searches drive both: float probes land in
   [approx], their exact certifications in [exact]. *)
let exact = create ()
let approx = create ()

let add t (i : info) =
  t.solves <- t.solves + 1;
  if i.warm then t.warm_solves <- t.warm_solves + 1;
  t.pivots_phase1 <- t.pivots_phase1 + i.pivots_phase1;
  t.pivots_phase2 <- t.pivots_phase2 + i.pivots_phase2;
  t.pivots_dual <- t.pivots_dual + i.pivots_dual;
  t.seconds <- t.seconds +. i.seconds

(* [diff ~before after] with both snapshots of the same accumulator. *)
let diff ~before after =
  {
    solves = after.solves - before.solves;
    warm_solves = after.warm_solves - before.warm_solves;
    pivots_phase1 = after.pivots_phase1 - before.pivots_phase1;
    pivots_phase2 = after.pivots_phase2 - before.pivots_phase2;
    pivots_dual = after.pivots_dual - before.pivots_dual;
    seconds = after.seconds -. before.seconds;
  }

let hook : (info -> unit) option ref = ref None

let record (i : info) =
  add (if i.exact then exact else approx) i;
  match !hook with None -> () | Some f -> f i

(* Scoped hook installation; restores the previous hook on exit. *)
let with_hook f body =
  let saved = !hook in
  hook := Some f;
  Fun.protect ~finally:(fun () -> hook := saved) body

let now () = Unix.gettimeofday ()

let pp fmt t =
  Format.fprintf fmt
    "solves=%d warm=%d pivots(p1=%d p2=%d dual=%d) %.3fms" t.solves
    t.warm_solves t.pivots_phase1 t.pivots_phase2 t.pivots_dual
    (t.seconds *. 1e3)
