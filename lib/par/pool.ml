(* Fixed-size domain pool with deterministic fork/join combinators.

   Work distribution is an atomic index counter: workers (and the
   submitting domain, which participates) grab the next unclaimed input
   index, run the task, and commit the result into a slot owned by that
   index.  Completion order is therefore free to vary with scheduling,
   but the *observable* result — the result array, the fold order of
   [map_reduce], which exception wins — depends only on input order.

   The pool is a monitor: [m] guards the published job and the generation
   counter; [work] wakes idle workers when a job is published (or the
   pool shuts down); [idle] wakes the submitter when the last task of the
   current job completes.  Tasks themselves run outside the lock. *)

let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_parallel_task () = Domain.DLS.get in_task_key

let enter_task ctx body =
  Domain.DLS.set in_task_key true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_task_key false)
    (fun () -> Obs.Span.with_context ctx body)

(* One published [map]: [run i] computes input [i] and stores its result
   (or exception) into the slot for [i]; it never raises. *)
type job = {
  run : int -> unit;
  length : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

type pool = {
  size : int;
  m : Mutex.t;
  work : Condition.t; (* a job was published, or [stop] was set *)
  idle : Condition.t; (* the current job's last task completed *)
  mutable generation : int; (* bumped once per published job *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let run_tasks job =
  let rec grab () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.length then begin
      job.run i;
      ignore (Atomic.fetch_and_add job.completed 1);
      grab ()
    end
  in
  grab ()

(* Whoever completes the job's last task broadcasts [idle]; a worker that
   merely finds the index space exhausted skips the wakeup. *)
let finish_if_last pool job =
  if Atomic.get job.completed = job.length then begin
    Mutex.lock pool.m;
    Condition.broadcast pool.idle;
    Mutex.unlock pool.m
  end

let worker pool =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while pool.generation = !seen && not pool.stop do
      Condition.wait pool.work pool.m
    done;
    let stop = pool.stop in
    let generation = pool.generation in
    let job = pool.job in
    Mutex.unlock pool.m;
    if not stop then begin
      seen := generation;
      (match job with
       | Some j ->
         run_tasks j;
         finish_if_last pool j
       | None -> ());
      loop ()
    end
  in
  loop ()

let create size =
  let pool =
    {
      size;
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      generation = 0;
      job = None;
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let shutdown_pool pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* --- result slots ---------------------------------------------------- *)

type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

(* Distinct tasks write distinct indices, so the slot array needs no
   lock; the completion count (read under [m] by the submitter) orders
   the writes before the collection scan. *)
let collect slots =
  let n = Array.length slots in
  (* The smallest-index exception wins, deterministically. *)
  let rec scan i =
    if i < n then
      match slots.(i) with
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false (* all tasks completed before collection *)
      | Done _ -> scan (i + 1)
  in
  scan 0;
  Array.map (function Done v -> v | Pending | Raised _ -> assert false) slots

let exec pool f input =
  let n = Array.length input in
  let slots = Array.make n Pending in
  let ctx = Obs.Span.context () in
  let job =
    {
      run =
        (fun i ->
          slots.(i) <-
            (match enter_task ctx (fun () -> f input.(i)) with
             | v -> Done v
             | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
      length = n;
      next = Atomic.make 0;
      completed = Atomic.make 0;
    }
  in
  Mutex.lock pool.m;
  pool.job <- Some job;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  (* The submitter works too: a width-k pool is k computing domains. *)
  run_tasks job;
  Mutex.lock pool.m;
  while Atomic.get job.completed < job.length do
    Condition.wait pool.idle pool.m
  done;
  pool.job <- None;
  Mutex.unlock pool.m;
  collect slots

(* --- ambient configuration ------------------------------------------- *)

let default_jobs () =
  match Option.bind (Sys.getenv_opt "DLSCHED_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> Domain.recommended_domain_count ()

let requested = ref None
let live : pool option ref = ref None

let jobs () =
  match !requested with Some n -> n | None -> default_jobs ()

let shutdown () =
  match !live with
  | Some pool ->
    shutdown_pool pool;
    live := None
  | None -> ()

let set_jobs n =
  if n < 1 then invalid_arg "Par.Pool.set_jobs: width must be >= 1";
  if jobs () <> n then shutdown ();
  requested := Some n

let with_jobs n f =
  if in_parallel_task () then
    invalid_arg "Par.Pool.with_jobs: not available inside a pool task";
  let saved = !requested in
  set_jobs n;
  Fun.protect
    ~finally:(fun () ->
      (* The mismatched pool (if any) is torn down lazily by the next
         [map]; only the configuration is restored here. *)
      requested := saved)
    f

let ambient () =
  let width = jobs () in
  match !live with
  | Some pool when pool.size = width -> pool
  | Some _ | None ->
    shutdown ();
    let pool = create width in
    live := Some pool;
    pool

(* --- combinators ----------------------------------------------------- *)

let seq_map f input =
  (* Same nesting semantics as the parallel path: [f] observes itself
     inside a task, so code guarded by [in_parallel_task] behaves
     identically at every width. *)
  let ctx = Obs.Span.context () in
  Array.map (fun x -> enter_task ctx (fun () -> f x)) input

(* The pool holds one published job at a time, so independent top-level
   submitters (e.g. two socket sessions that both reach a solver) take
   turns.  No deadlock is possible through this lock: code running inside
   a task never reaches [exec] (nested [map] raises first, [map_or_seq]
   goes sequential). *)
let submit_lock = Mutex.create ()

let map f input =
  if in_parallel_task () then
    invalid_arg "Par.Pool.map: nested parallel map (use map_or_seq)";
  if jobs () <= 1 || Array.length input <= 1 then seq_map f input
  else Mutex.protect submit_lock (fun () -> exec (ambient ()) f input)

let map_or_seq f input =
  if in_parallel_task () then Array.map f input else map f input

let map_reduce ~map:fm ~reduce ~init input =
  Array.fold_left reduce init (map fm input)

(* --- dispatch-overhead gate ------------------------------------------ *)

(* Per-task dispatch cost of the live pool, measured once per width and
   cached.  (width, nanoseconds per task.) *)
let measured_overhead : (int * float) option ref = ref None

let overhead_ns () =
  let width = jobs () in
  match !measured_overhead with
  | Some (w, ns) when w = width -> ns
  | _ ->
    (* Publish a batch of no-op tasks and average the wall time: that is
       exactly the cost a caller pays per task before any useful work
       happens (index handoff, slot commit, condition-variable traffic).
       Width <= 1 runs the sequential path and measures (near) zero. *)
    let tasks = 256 in
    let input = Array.init tasks Fun.id in
    let t0 = Obs.Sink.elapsed () in
    ignore (map ignore input);
    let t1 = Obs.Sink.elapsed () in
    let ns = Float.max 1.0 ((t1 -. t0) *. 1e9 /. float_of_int tasks) in
    measured_overhead := Some (width, ns);
    ns

let worthwhile ~tasks ~task_ns =
  tasks > 1
  && (not (in_parallel_task ()))
  (* More configured jobs than cores is pure oversubscription: the
     effective width is what the hardware can actually run. *)
  && Stdlib.min (jobs ()) (Domain.recommended_domain_count ()) > 1
  (* A task must amortize its own dispatch several times over before
     splitting can win; below that the sequential path is faster even
     with idle cores available. *)
  && task_ns >= 4.0 *. overhead_ns ()
