(** Deterministic fork/join execution over a fixed-size domain pool.

    One pool serves the whole process.  Its width is decided, in order of
    precedence, by {!set_jobs} / {!with_jobs} (the CLI's [--jobs N]), the
    [DLSCHED_JOBS] environment variable, and
    [Domain.recommended_domain_count ()].  Width 1 bypasses domains
    entirely — no pool is ever created, every combinator degenerates to
    its sequential meaning — and is the bit-identity oracle the parallel
    paths are tested against.

    {b Determinism contract.}  {!map} commits results by {e input index},
    never by completion order, and {!map_reduce} folds the mapped values
    left to right in index order; for a pure [f] every width produces the
    same value, bit for bit (including the order of float rounding in a
    reduction).  Exceptions follow the same rule: if several tasks raise,
    the exception re-raised in the caller is the one from the {e
    smallest} input index, whatever finished first.

    {b Nesting.}  Worker tasks must not themselves call {!map} — the pool
    has a fixed width and a nested fork/join from inside a task would
    deadlock it under load, so {!map} raises [Invalid_argument] instead.
    Library layers that can legitimately run either at top level or
    inside someone else's task (LP formulation assembly, milestone
    generation) use {!map_or_seq}, which degrades to the sequential path
    when called from a task.

    {b Tracing.}  Tasks inherit the submitting domain's innermost open
    [Obs] span as their ambient parent, so spans opened inside worker
    domains attach to the caller's span tree instead of floating as
    roots; every span carries a [domain] attribute (see [Obs.Span]). *)

val default_jobs : unit -> int
(** [DLSCHED_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val jobs : unit -> int
(** The width the next {!map} will use. *)

val set_jobs : int -> unit
(** Fix the pool width, overriding the environment and the hardware
    default.  Shuts the live pool down first when the width changes.
    @raise Invalid_argument on a width < 1. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run the thunk under a temporary width, restoring the previous
    configuration (and tearing down any mismatched pool lazily) on exit.
    Used by the oracle checks (jobs=1 vs jobs=N) and the speedup bench.
    Not reentrant from worker tasks. *)

val in_parallel_task : unit -> bool
(** Whether the calling domain is currently executing a pool task (also
    true inside the sequential fallback of a width-1 [map], so nesting
    behavior does not depend on the width). *)

val map : ('a -> 'b) -> 'a array -> 'b array
(** [map f a] is [Array.map f a], evaluated by the pool.  Results are
    committed by input index; see the determinism contract above.
    @raise Invalid_argument when called from inside a pool task. *)

val map_or_seq : ('a -> 'b) -> 'a array -> 'b array
(** {!map}, except that from inside a pool task it quietly runs
    sequentially instead of raising — for layers that are reached both
    from top level and from within parallel probes. *)

val map_reduce :
  map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c
(** [map_reduce ~map ~reduce ~init a]: map through the pool, then fold
    the results left to right in index order on the calling domain. *)

val overhead_ns : unit -> float
(** Measured per-task dispatch cost of the pool at the current width, in
    nanoseconds — the price of handing one task to the pool and
    committing its result, before any useful work.  Measured once per
    width (a short batch of no-op tasks) and cached; at width 1 it
    measures the sequential path, i.e. (near) zero.  The first call at a
    given width creates the pool. *)

val worthwhile : tasks:int -> task_ns:float -> bool
(** [worthwhile ~tasks ~task_ns] decides whether handing [tasks] pieces
    of work of roughly [task_ns] nanoseconds each to the pool can beat
    running them sequentially.  False when the effective width
    [min (jobs ()) (Domain.recommended_domain_count ())] is 1 (notably:
    any single-core host, regardless of [--jobs]) — checked {e before}
    any measurement, so gated callers never create a pool there — when
    called from inside a pool task, or when [task_ns] does not amortize
    the measured {!overhead_ns} several times over.  Callers time one
    representative task sequentially and gate the rest on the answer;
    both branches are bit-identical by the determinism contract, so the
    gate affects time only. *)

val shutdown : unit -> unit
(** Join and discard the live pool, if any.  The next {!map} recreates
    one on demand; width configuration is unaffected.  Tests use this to
    check teardown; normal programs never need it (an idle pool's workers
    block on a condition variable and cost nothing). *)
