(** Workload and platform generators for the scheduling experiments.

    A platform is a set of heterogeneous sequence-comparison servers, each
    holding a subset of the databanks (Section 3: "uniform machines with
    restricted availabilities").  A request compares a motif set against
    one databank and may only run on servers that hold it. *)

module Rat = Numeric.Rat

type platform = {
  speeds : Rat.t array;
      (** relative slowdown per machine: 1 = reference machine of
          {!Cost_model}, 2 = twice slower *)
  bank_sizes : int array;  (** sequences per databank *)
  has_bank : bool array array;  (** [has_bank.(machine).(bank)] *)
}

type request = {
  arrival : Rat.t;  (** seconds *)
  bank : int;
  num_motifs : int;
}

val random_platform :
  Prng.t -> machines:int -> banks:int -> replication:int -> platform
(** Speeds uniform in [{1, …, 4}] (quantized quarters); every databank is
    placed on [replication] distinct machines (at least one); bank sizes
    vary within ×4 around 1/10 of the reference databank.
    @raise Invalid_argument if [replication > machines] or any count is
    not positive. *)

val poisson_requests :
  Prng.t -> rate:float -> count:int -> max_motifs:int -> banks:int -> request list
(** [count] requests with exponential inter-arrival times of rate [rate]
    (requests per second), uniform target bank, motif-set sizes uniform in
    [\[1, max_motifs\]].  Arrival times are quantized to centiseconds so
    the exact solvers stay fast. *)

val request_cost : platform -> machine:int -> request -> Rat.t option
(** Processing time of the request on the machine ([None] when the bank is
    absent), from {!Cost_model.default} scaled by the machine speed,
    quantized to centiseconds. *)

val cost_column : platform -> request -> Rat.t option array
(** [request_cost] on every machine of the platform, in machine order — the
    instance column one request contributes.  This is the trace-to-cost
    bridge the serving layer uses to grow an instance one admitted request
    at a time.
    @raise Invalid_argument if the request's bank is held by no machine
    (the request could never be served). *)

val quantize : float -> Rat.t
(** Seconds, quantized to exact centiseconds — the time grain of every
    generated arrival and cost (rational arithmetic downstream stays
    cheap). *)

val to_instance : platform -> request list -> Sched_core.Instance.t
(** Offline instance with unit weights (maximum flow).  Use
    {!Sched_core.Instance.stretch_weights} on the result for max-stretch
    experiments. *)
