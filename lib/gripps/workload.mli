(** Workload and platform generators for the scheduling experiments.

    A platform is a set of heterogeneous sequence-comparison servers, each
    holding a subset of the databanks (Section 3: "uniform machines with
    restricted availabilities").  A request compares a motif set against
    one databank and may only run on servers that hold it. *)

module Rat = Numeric.Rat

type platform = {
  speeds : Rat.t array;
      (** relative slowdown per machine: 1 = reference machine of
          {!Cost_model}, 2 = twice slower *)
  bank_sizes : int array;  (** sequences per databank *)
  has_bank : bool array array;  (** [has_bank.(machine).(bank)] *)
}

type request = {
  arrival : Rat.t;  (** seconds *)
  bank : int;
  num_motifs : int;
}

(** {1 Availability overlay}

    The paper's cost matrix encodes a machine that lacks a databank as
    [c_{i,j} = +∞] ([None] here).  An overlay extends that encoding to
    {e time-varying} availability: a machine that is down behaves exactly
    like one that holds no databank at all, and a degraded machine behaves
    like a proportionally slower one.  The serving engine masks each
    request's cost column through the current overlay before every
    scheduling decision. *)

type machine_state =
  | Up
  | Down  (** every cost on this machine becomes [None] — the paper's +∞ *)
  | Degraded of Rat.t
      (** costs are multiplied by this factor (> 0); [Degraded 2] runs at
          half speed, factors < 1 model a temporary speed-up *)

type overlay = machine_state array
(** One state per machine, in platform machine order. *)

val all_up : platform -> overlay
(** The identity overlay: every machine up at full speed. *)

val healthy : overlay -> bool
(** Whether the overlay is the identity (all machines [Up]). *)

val machine_live : machine_state -> bool
(** [true] for [Up] and [Degraded _], [false] for [Down]. *)

val mask_column : overlay -> Rat.t option array -> Rat.t option array
(** Apply the overlay to a base cost column ({!cost_column}): [Down]
    machines are masked to [None], [Degraded f] costs are scaled by [f].
    The result may be all-[None] — a request starved by the current
    outages; callers decide how to handle that (the serving engine parks
    such requests until a holder recovers).
    @raise Invalid_argument on a length mismatch or a non-positive
    degradation factor. *)

val random_platform :
  Prng.t -> machines:int -> banks:int -> replication:int -> platform
(** Speeds uniform in [{1, …, 4}] (quantized quarters); every databank is
    placed on [replication] distinct machines (at least one); bank sizes
    vary within ×4 around 1/10 of the reference databank.
    @raise Invalid_argument if [replication > machines] or any count is
    not positive. *)

val poisson_requests :
  Prng.t -> rate:float -> count:int -> max_motifs:int -> banks:int -> request list
(** [count] requests with exponential inter-arrival times of rate [rate]
    (requests per second), uniform target bank, motif-set sizes uniform in
    [\[1, max_motifs\]].  Arrival times are quantized to centiseconds so
    the exact solvers stay fast. *)

val request_cost : platform -> machine:int -> request -> Rat.t option
(** Processing time of the request on the machine ([None] when the bank is
    absent), from {!Cost_model.default} scaled by the machine speed,
    quantized to centiseconds. *)

val cost_column : platform -> request -> Rat.t option array
(** [request_cost] on every machine of the platform, in machine order — the
    instance column one request contributes.  This is the trace-to-cost
    bridge the serving layer uses to grow an instance one admitted request
    at a time.
    @raise Invalid_argument if the request's bank is held by no machine
    (the request could never be served). *)

val quantize : float -> Rat.t
(** Seconds, quantized to exact centiseconds — the time grain of every
    generated arrival and cost (rational arithmetic downstream stays
    cheap). *)

val to_instance : platform -> request list -> Sched_core.Instance.t
(** Offline instance with unit weights (maximum flow).  Use
    {!Sched_core.Instance.stretch_weights} on the result for max-stretch
    experiments. *)
