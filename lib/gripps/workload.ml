module Rat = Numeric.Rat

type platform = {
  speeds : Rat.t array;
  bank_sizes : int array;
  has_bank : bool array array;
}

type request = { arrival : Rat.t; bank : int; num_motifs : int }

type machine_state = Up | Down | Degraded of Rat.t

type overlay = machine_state array

let all_up platform = Array.make (Array.length platform.speeds) Up

let healthy overlay = Array.for_all (fun s -> s = Up) overlay

let machine_live = function Up | Degraded _ -> true | Down -> false

let check_state = function
  | Up | Down -> ()
  | Degraded f ->
    if Rat.sign f <= 0 then
      invalid_arg "Workload: degraded speed factor must be positive"

let mask_cost state cost =
  check_state state;
  match state with
  | Up -> cost
  | Down -> None
  | Degraded f -> Option.map (Rat.mul f) cost

let mask_column overlay column =
  if Array.length overlay <> Array.length column then
    invalid_arg "Workload.mask_column: overlay and column lengths disagree";
  Array.map2 mask_cost overlay column

(* Quantize a float of seconds to an exact number of centiseconds: exact
   rational arithmetic downstream stays cheap. *)
let centi f = Rat.of_ints (int_of_float (Float.round (f *. 100.0))) 100

let random_platform rng ~machines ~banks ~replication =
  if machines <= 0 || banks <= 0 then
    invalid_arg "Workload.random_platform: counts must be positive";
  if replication <= 0 || replication > machines then
    invalid_arg "Workload.random_platform: bad replication factor";
  let speeds =
    Array.init machines (fun _ -> Rat.of_ints (4 + Prng.int rng 13) 4)
    (* 1.0 to 4.0 in quarters *)
  in
  let has_bank = Array.make_matrix machines banks false in
  for b = 0 to banks - 1 do
    let order = Array.init machines (fun i -> i) in
    Prng.shuffle rng order;
    for k = 0 to replication - 1 do
      has_bank.(order.(k)).(b) <- true
    done
  done;
  let reference = Cost_model.reference_sequences / 10 in
  let bank_sizes =
    Array.init banks (fun _ -> reference / 2 + Prng.int rng (2 * reference))
  in
  { speeds; bank_sizes; has_bank }

let poisson_requests rng ~rate ~count ~max_motifs ~banks =
  let now = ref 0.0 in
  List.init count (fun _ ->
      now := !now +. Prng.exponential rng ~mean:(1.0 /. rate);
      {
        arrival = centi !now;
        bank = Prng.int rng banks;
        num_motifs = 1 + Prng.int rng max_motifs;
      })

let request_cost platform ~machine req =
  if not platform.has_bank.(machine).(req.bank) then None
  else begin
    let seconds =
      Cost_model.block_time Cost_model.default
        ~num_sequences:platform.bank_sizes.(req.bank)
        ~num_motifs:req.num_motifs
    in
    let quantized = Rat.mul (centi seconds) platform.speeds.(machine) in
    (* Guard against degenerate zero costs after quantization. *)
    Some (Rat.max quantized (Rat.of_ints 1 100))
  end

let cost_column platform req =
  let column =
    Array.init (Array.length platform.speeds) (fun i -> request_cost platform ~machine:i req)
  in
  if Array.for_all (fun c -> c = None) column then
    invalid_arg
      (Printf.sprintf "Workload.cost_column: bank %d is held by no machine" req.bank);
  column

let quantize = centi

let to_instance platform requests =
  let requests = Array.of_list requests in
  let n = Array.length requests in
  let m = Array.length platform.speeds in
  let releases = Array.map (fun r -> r.arrival) requests in
  let weights = Array.make n Rat.one in
  let cost =
    Array.init m (fun i -> Array.init n (fun j -> request_cost platform ~machine:i requests.(j)))
  in
  Sched_core.Instance.make ~releases ~weights cost
