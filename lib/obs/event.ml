(* Instant events: a point in time, attached to the innermost open span.
   The enabled check runs before any allocation, but callers that build
   an [attrs] list should still guard the call site on [Sink.enabled]. *)

let emit ?(attrs = []) name =
  if Sink.enabled () then
    Sink.emit
      (Sink.Event
         {
           Sink.in_span = Span.current_id ();
           ev_name = name;
           at = Sink.elapsed ();
           ev_attrs = List.rev attrs;
         })
