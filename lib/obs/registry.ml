(* Domain-safety: one module-wide mutex serializes every mutation and
   every read that observes multi-field state (find-or-create, histogram
   append/sort, report rendering).  Contention is irrelevant here —
   instruments record one value per solve or per request — so a single
   lock beats per-instrument locks in both simplicity and deadlock
   surface.  Internal [_unlocked] helpers let the report functions hold
   the lock once instead of re-entering it per statistic. *)

let lock = Mutex.create ()

type counter = { mutable count : int }

type gauge = { mutable value : float; mutable peak : float }

type histogram = {
  mutable buf : float array;
  mutable len : int;
  mutable sorted : bool;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable items : (string * instrument) list (* reverse creation order *) }

let create () = { items = [] }

let global = create ()

let find_or_create t name make =
  Mutex.protect lock (fun () ->
      match List.assoc_opt name t.items with
      | Some i -> i
      | None ->
        let i = make () in
        t.items <- (name, i) :: t.items;
        i)

let counter t name =
  match find_or_create t name (fun () -> Counter { count = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Registry.counter: %S is not a counter" name)

let gauge t name =
  match find_or_create t name (fun () -> Gauge { value = 0.; peak = 0. }) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Registry.gauge: %S is not a gauge" name)

let histogram t name =
  match
    find_or_create t name (fun () -> Histogram { buf = Array.make 64 0.; len = 0; sorted = true })
  with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Registry.histogram: %S is not a histogram" name)

let incr c = Mutex.protect lock (fun () -> c.count <- c.count + 1)
let add c n = Mutex.protect lock (fun () -> c.count <- c.count + n)
let count c = Mutex.protect lock (fun () -> c.count)

let set g v =
  Mutex.protect lock (fun () ->
      g.value <- v;
      if v > g.peak then g.peak <- v)

let value g = Mutex.protect lock (fun () -> g.value)
let peak g = Mutex.protect lock (fun () -> g.peak)

let observe h v =
  Mutex.protect lock (fun () ->
      if h.len = Array.length h.buf then begin
        let bigger = Array.make (2 * h.len) 0. in
        Array.blit h.buf 0 bigger 0 h.len;
        h.buf <- bigger
      end;
      h.buf.(h.len) <- v;
      h.len <- h.len + 1;
      h.sorted <- false)

let samples h = Mutex.protect lock (fun () -> h.len)

let ensure_sorted_unlocked h =
  if not h.sorted then begin
    let live = Array.sub h.buf 0 h.len in
    Array.sort compare live;
    Array.blit live 0 h.buf 0 h.len;
    h.sorted <- true
  end

let quantile_unlocked h q =
  if q < 0. || q > 1. then invalid_arg "Registry.quantile: level outside [0, 1]";
  if h.len = 0 then nan
  else begin
    ensure_sorted_unlocked h;
    (* Linear interpolation between closest order statistics (type 7). *)
    let pos = q *. float_of_int (h.len - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (h.len - 1) in
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. h.buf.(lo)) +. (frac *. h.buf.(hi))
  end

let quantile h q = Mutex.protect lock (fun () -> quantile_unlocked h q)

let mean_unlocked h =
  if h.len = 0 then nan
  else begin
    let sum = ref 0. in
    for i = 0 to h.len - 1 do
      sum := !sum +. h.buf.(i)
    done;
    !sum /. float_of_int h.len
  end

let mean h = Mutex.protect lock (fun () -> mean_unlocked h)

let hsum h =
  Mutex.protect lock (fun () ->
      let sum = ref 0. in
      for i = 0 to h.len - 1 do
        sum := !sum +. h.buf.(i)
      done;
      !sum)

let hmin_unlocked h = if h.len = 0 then nan else (ensure_sorted_unlocked h; h.buf.(0))
let hmax_unlocked h = if h.len = 0 then nan else (ensure_sorted_unlocked h; h.buf.(h.len - 1))
let hmin h = Mutex.protect lock (fun () -> hmin_unlocked h)
let hmax h = Mutex.protect lock (fun () -> hmax_unlocked h)

let ordered_unlocked t = List.rev t.items

(* --- snapshot / restore ----------------------------------------------- *)

type dump_item =
  | Dump_counter of int
  | Dump_gauge of { value : float; peak : float }
  | Dump_histogram of float array

let dump t =
  Mutex.protect lock (fun () ->
      List.rev_map
        (fun (name, i) ->
          ( name,
            match i with
            | Counter c -> Dump_counter c.count
            | Gauge g -> Dump_gauge { value = g.value; peak = g.peak }
            | Histogram h -> Dump_histogram (Array.sub h.buf 0 h.len) ))
        t.items)

let load t items =
  List.iter
    (fun (name, item) ->
      match item with
      | Dump_counter n -> (
        match find_or_create t name (fun () -> Counter { count = 0 }) with
        | Counter c -> Mutex.protect lock (fun () -> c.count <- n)
        | _ -> invalid_arg (Printf.sprintf "Registry.load: %S is not a counter" name))
      | Dump_gauge { value; peak } -> (
        match find_or_create t name (fun () -> Gauge { value = 0.; peak = 0. }) with
        | Gauge g ->
          Mutex.protect lock (fun () ->
              g.value <- value;
              g.peak <- peak)
        | _ -> invalid_arg (Printf.sprintf "Registry.load: %S is not a gauge" name))
      | Dump_histogram samples -> (
        match
          find_or_create t name (fun () ->
              Histogram { buf = Array.make 64 0.; len = 0; sorted = true })
        with
        | Histogram h ->
          Mutex.protect lock (fun () ->
              let n = Array.length samples in
              (* Keep a non-empty backing array: [observe] doubles the
                 capacity when full, and doubling 0 would stay 0. *)
              h.buf <- (if n = 0 then Array.make 64 0. else Array.copy samples);
              h.len <- n;
              h.sorted <- false)
        | _ -> invalid_arg (Printf.sprintf "Registry.load: %S is not a histogram" name)))
    items

let to_text t =
  Mutex.protect lock (fun () ->
      let buf = Buffer.create 512 in
      List.iter
        (fun (name, i) ->
          match i with
          | Counter c -> Buffer.add_string buf (Printf.sprintf "%-32s %d\n" name c.count)
          | Gauge g ->
            Buffer.add_string buf (Printf.sprintf "%-32s %g (peak %g)\n" name g.value g.peak)
          | Histogram h ->
            if h.len = 0 then Buffer.add_string buf (Printf.sprintf "%-32s empty\n" name)
            else
              Buffer.add_string buf
                (Printf.sprintf
                   "%-32s count=%d min=%.3f mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n"
                   name h.len (hmin_unlocked h) (mean_unlocked h) (quantile_unlocked h 0.5)
                   (quantile_unlocked h 0.95) (quantile_unlocked h 0.99) (hmax_unlocked h)))
        (ordered_unlocked t);
      Buffer.contents buf)

let to_json t =
  Mutex.protect lock (fun () ->
      let buf = Buffer.create 512 in
      let section kind filter =
        let first = ref true in
        Buffer.add_string buf (Printf.sprintf "\"%s\":{" kind);
        List.iter
          (fun (name, i) ->
            match filter i with
            | None -> ()
            | Some body ->
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (Encode.escape name) body))
          (ordered_unlocked t);
        Buffer.add_char buf '}'
      in
      Buffer.add_char buf '{';
      section "counters" (function Counter c -> Some (string_of_int c.count) | _ -> None);
      Buffer.add_char buf ',';
      section "gauges" (function
        | Gauge g ->
          Some
            (Printf.sprintf "{\"value\":%s,\"peak\":%s}" (Encode.float_repr g.value)
               (Encode.float_repr g.peak))
        | _ -> None);
      Buffer.add_char buf ',';
      section "histograms" (function
        | Histogram h ->
          Some
            (if h.len = 0 then "{\"count\":0}"
             else
               Printf.sprintf
                 "{\"count\":%d,\"min\":%s,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}"
                 h.len
                 (Encode.float_repr (hmin_unlocked h))
                 (Encode.float_repr (mean_unlocked h))
                 (Encode.float_repr (quantile_unlocked h 0.5))
                 (Encode.float_repr (quantile_unlocked h 0.95))
                 (Encode.float_repr (quantile_unlocked h 0.99))
                 (Encode.float_repr (hmax_unlocked h)))
        | _ -> None);
      Buffer.add_char buf '}';
      Buffer.contents buf)
