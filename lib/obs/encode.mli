(** JSON text fragments shared by {!Sink} and {!Registry}. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes in JSON. *)

val float_repr : float -> string
(** Render a float as a JSON number; every non-finite value becomes
    [null] (JSON has no NaN or infinities). *)
