(** Metric registries: counters, gauges and quantile histograms.

    A registry owns named instruments in creation order.  Histograms keep
    every sample (instrumented call sites observe one value per solve or
    per request — thousands, not millions), so the quantiles reported are
    {e exact} order statistics, not sketch approximations.  Reports dump
    as aligned text (for humans and the server's [metrics] command) or as
    a single JSON object (for scrapers); both are stable under
    re-dumping.

    This module absorbs what used to be [Serve.Metrics] and the ad-hoc
    [Lp.Stats] accumulators; [Serve.Metrics] survives as a thin alias for
    compatibility.

    Every operation is domain-safe: mutations and reports are serialized
    by one module-wide lock, so concurrent pool workers may record into
    the same instruments and a report rendered mid-run is a consistent
    snapshot. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val global : t
(** The process-wide default registry.  The LP layer's instrument set
    ([lp.exact.*], [lp.approx.*] — see [Lp.Instrument]) lives here; other
    components may register instruments of their own under distinct
    prefixes. *)

val counter : t -> string -> counter
(** Find-or-create; the same name always returns the same instrument. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
(** Sets the current value; the all-time peak is tracked on the side. *)

val value : gauge -> float
val peak : gauge -> float

val observe : histogram -> float -> unit

(** {1 Reading histograms} *)

val samples : histogram -> int

val quantile : histogram -> float -> float
(** Exact quantile with linear interpolation between order statistics;
    [quantile h 0.5] is the median.  [nan] on an empty histogram.
    @raise Invalid_argument if the level is outside [\[0, 1\]]. *)

val mean : histogram -> float
(** [nan] on an empty histogram. *)

val hsum : histogram -> float
(** Sum of all samples; [0.] on an empty histogram.  Counter-like reads
    of a histogram (e.g. total seconds spent in the solver) difference
    this across two points in time. *)

val hmin : histogram -> float
val hmax : histogram -> float

(** {1 Snapshot / restore}

    A registry can be dumped to a plain value and loaded back exactly —
    the serving layer's durability subsystem persists engine metrics this
    way.  Histograms dump {e every} sample in buffer order, so a loaded
    registry reproduces not just the same quantiles but the same report
    text bit for bit. *)

type dump_item =
  | Dump_counter of int
  | Dump_gauge of { value : float; peak : float }
  | Dump_histogram of float array  (** samples, in insertion order *)

val dump : t -> (string * dump_item) list
(** Every instrument with its current contents, in creation order. *)

val load : t -> (string * dump_item) list -> unit
(** Find-or-create each named instrument and overwrite its contents.
    Instruments present in the registry but absent from the dump are left
    untouched.
    @raise Invalid_argument if a name already exists with a different
    instrument kind. *)

(** {1 Reports} *)

val to_text : t -> string
(** One instrument per line; histograms report
    [count/min/mean/p50/p95/p99/max]. *)

val to_json : t -> string
(** [{"counters":{...},"gauges":{...},"histograms":{...}}] with the same
    fields as the text report.  Always a single well-formed JSON object,
    including on an empty registry
    ([{"counters":{},"gauges":{},"histograms":{}}]). *)
