(** Trace sinks and the ambient tracer state.

    A sink receives the completed {!Span.t}s and instant {!Event}s the
    instrumented code emits.  Exactly one sink is installed per process
    (default {!null}); the instrumentation layer checks {!enabled} — one
    ref read — before building any record, so the null-sink path is
    allocation-free and tracing-off costs nothing.

    Sink kinds:
    - {!null}: drop everything (the default);
    - {!jsonl} / {!file}: one JSON object per line, a "JSON lines" trace;
    - {!ring}: keep the serialized lines of the most recent records in a
      bounded in-memory buffer (the server's [spans] command dumps it);
    - {!callback}: hand each structured record to a function, for
      in-process consumers such as the bench harness.

    Emission is domain-safe: the write to a non-null sink happens under a
    process-wide lock, so records from concurrent pool workers never
    interleave mid-line.  A {!callback} runs under that lock and
    therefore must not itself emit spans or events. *)

(** Attribute values attached to spans and events. *)
type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;  (** unique per process, assigned at span open *)
  parent : int option;  (** enclosing span, if any *)
  name : string;
  t_start : float;  (** seconds since process start *)
  mutable t_stop : float;  (** >= [t_start] *)
  mutable attrs : (string * value) list;  (** reverse insertion order *)
}

type event = {
  in_span : int option;  (** innermost open span at emission, if any *)
  ev_name : string;
  at : float;  (** seconds since process start *)
  ev_attrs : (string * value) list;  (** reverse insertion order *)
}

type emitted = Span of span | Event of event

type t

val null : t
val jsonl : out_channel -> t

val file : string -> t
(** [jsonl] over a freshly opened (truncated) file. *)

val ring : ?capacity:int -> unit -> t
(** Bounded in-memory buffer of serialized lines; the oldest lines are
    overwritten once [capacity] (default 4096) records have been kept.
    @raise Invalid_argument on a non-positive capacity. *)

val callback : (emitted -> unit) -> t

val line_of : emitted -> string
(** The record as a single JSON line (no trailing newline).  Span
    attributes render in insertion order; when a key was set twice the
    latest value wins under {!attr}. *)

val attr : span -> string -> value option
(** Latest value set for the key, if any. *)

val ring_lines : t -> string list
(** Buffered lines of a {!ring} sink, oldest first; [[]] for any other
    sink kind. *)

(** {1 Ambient tracer state} *)

val enabled : unit -> bool
(** Whether a non-null sink is installed.  Instrumentation sites use this
    to skip attribute construction entirely when tracing is off. *)

val current : unit -> t

val elapsed : unit -> float
(** Seconds since process start — the clock span/event timestamps use. *)

val install : t -> unit
(** Make the sink the process-wide destination.  A previously installed
    {!jsonl}/{!file} sink is flushed and closed. *)

val uninstall : unit -> unit
(** Back to {!null}; flushes and closes a {!jsonl}/{!file} sink. *)

val with_sink : t -> (unit -> 'a) -> 'a
(** Scoped install: run the thunk with the sink installed, restoring the
    previous sink (and flushing a [jsonl] sink, without closing it) on
    exit.  The caller keeps ownership of the sink. *)

val emit : emitted -> unit
(** Emit a record to the installed sink.  Normally called by {!Span} and
    {!Event}, not user code. *)

val emitted_spans : unit -> int
(** Spans emitted by this process so far (sites only emit while a sink is
    installed).  The bench harness uses the deltas to attach span counts
    to its result envelopes. *)

val emitted_events : unit -> int
