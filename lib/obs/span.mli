(** Nested tracing spans.

    A span is a named interval of execution with key/value attributes;
    spans nest by dynamic scope (a span opened inside another records it
    as its parent), so one [Max_flow.solve] call renders as a tree:
    milestone search, feasibility probes, LP solves.

    {b Overhead contract.}  With the null sink installed (the default),
    [with_span name f] is [f ()] after one ref read, and every [set_*]
    helper returns without allocating.  Instrumentation left in hot paths
    therefore costs nothing when tracing is off; sites that must compute
    an attribute value (e.g. a rational rendered to a string) should
    additionally guard on {!Sink.enabled}. *)

val with_span : ?attrs:(string * Sink.value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a fresh span and emit the span to the installed
    sink when the thunk returns or raises.  [attrs] are initial
    attributes; more can be added from inside via the [set_*] helpers.
    With no sink installed this is exactly [f ()]. *)

val current_id : unit -> int option
(** Id of the innermost open span, if any (used by {!Event}). *)

val set_attr : string -> Sink.value -> unit
(** Attach an attribute to the innermost open span; no-op when no span is
    open (in particular whenever tracing is off).  The latest value set
    for a key wins. *)

val set_bool : string -> bool -> unit
val set_int : string -> int -> unit
val set_float : string -> float -> unit
val set_str : string -> string -> unit
