(** Nested tracing spans.

    A span is a named interval of execution with key/value attributes;
    spans nest by dynamic scope (a span opened inside another records it
    as its parent), so one [Max_flow.solve] call renders as a tree:
    milestone search, feasibility probes, LP solves.

    {b Overhead contract.}  With the null sink installed (the default),
    [with_span name f] is [f ()] after one ref read, and every [set_*]
    helper returns without allocating.  Instrumentation left in hot paths
    therefore costs nothing when tracing is off; sites that must compute
    an attribute value (e.g. a rational rendered to a string) should
    additionally guard on {!Sink.enabled}. *)

val with_span : ?attrs:(string * Sink.value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a fresh span and emit the span to the installed
    sink when the thunk returns or raises.  [attrs] are initial
    attributes; more can be added from inside via the [set_*] helpers.
    Every span additionally records the opening domain as a [domain]
    attribute.  With no sink installed this is exactly [f ()]. *)

val current_id : unit -> int option
(** Id of the innermost open span on the calling domain's stack, falling
    back to the inherited {!with_context} parent when the stack is empty
    (used by {!Event} and as the parent of new spans). *)

(** {1 Cross-domain context}

    Span stacks are domain-local (each domain nests its own spans), and
    span ids are allocated from one process-wide atomic counter, so
    concurrent domains can trace simultaneously.  A fork/join layer that
    ships tasks to worker domains captures {!context} at submission and
    wraps each task in {!with_context}, so the spans a task opens attach
    to the submitting domain's span tree. *)

val context : unit -> int option
(** The id a span opened right now would take as parent (alias of
    {!current_id}, named for capture-and-ship call sites). *)

val with_context : int option -> (unit -> 'a) -> 'a
(** Run the thunk with the given span id as the ambient parent for spans
    (and events) emitted while the calling domain's own stack is empty;
    restores the previous ambient parent on exit. *)

val set_attr : string -> Sink.value -> unit
(** Attach an attribute to the innermost open span; no-op when no span is
    open (in particular whenever tracing is off).  The latest value set
    for a key wins. *)

val set_bool : string -> bool -> unit
val set_int : string -> int -> unit
val set_float : string -> float -> unit
val set_str : string -> string -> unit
