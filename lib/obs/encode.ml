(* Shared JSON text fragments for the sinks and the registry. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN or infinities; emitting a bare [inf] breaks every
   consumer, so all non-finite values map to null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f
