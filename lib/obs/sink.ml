(* Trace sinks and the ambient tracer state.

   A sink is where completed spans and instant events go.  [Null] is the
   default and the fast path: every instrumentation site checks
   [enabled ()] (one ref read and a tag test) before allocating anything,
   so a process that never installs a sink pays nothing for being
   instrumented.  The other sinks serialize each record to one JSON line
   ([Jsonl], [Ring]) or hand the structured record to a callback
   ([Callback], for in-process consumers such as the bench harness). *)

type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;
  parent : int option;
  name : string;
  t_start : float; (* seconds since process start *)
  mutable t_stop : float;
  mutable attrs : (string * value) list; (* reverse insertion order *)
}

type event = {
  in_span : int option;
  ev_name : string;
  at : float;
  ev_attrs : (string * value) list; (* reverse insertion order *)
}

type emitted = Span of span | Event of event

type ring = {
  capacity : int;
  lines : string array;
  mutable length : int;
  mutable next : int;
}

type t =
  | Null
  | Jsonl of out_channel
  | Ring of ring
  | Callback of (emitted -> unit)

let null = Null
let jsonl oc = Jsonl oc
let file path = Jsonl (open_out path)

let ring ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Obs.Sink.ring: capacity must be positive";
  Ring { capacity; lines = Array.make capacity ""; length = 0; next = 0 }

let callback f = Callback f

(* --- serialization -------------------------------------------------- *)

let value_json = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Encode.float_repr f
  | Str s -> "\"" ^ Encode.escape s ^ "\""

let attrs_json attrs =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (Encode.escape k);
      Buffer.add_string buf "\":";
      Buffer.add_string buf (value_json v))
    attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let line_of = function
  | Span s ->
    Printf.sprintf
      "{\"type\":\"span\",\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"start\":%s,\"end\":%s,\"attrs\":%s}"
      s.id
      (match s.parent with None -> "null" | Some p -> string_of_int p)
      (Encode.escape s.name)
      (Encode.float_repr s.t_start)
      (Encode.float_repr s.t_stop)
      (attrs_json (List.rev s.attrs))
  | Event e ->
    Printf.sprintf
      "{\"type\":\"event\",\"span\":%s,\"name\":\"%s\",\"at\":%s,\"attrs\":%s}"
      (match e.in_span with None -> "null" | Some p -> string_of_int p)
      (Encode.escape e.ev_name)
      (Encode.float_repr e.at)
      (attrs_json (List.rev e.ev_attrs))

let attr (s : span) name = List.assoc_opt name s.attrs

(* --- ambient tracer state ------------------------------------------- *)

(* Domain-safety: the installed sink lives in an [Atomic] (the [enabled]
   fast path stays one load), emission counters are atomic, and the
   actual write to a non-null sink — channel output, ring push, callback
   invocation — happens under one process-wide mutex so concurrent
   emitters produce whole, interleaving-free records.  Callbacks run
   under that mutex and therefore must not emit. *)

let installed = Atomic.make Null
let epoch = Unix.gettimeofday ()
let n_spans = Atomic.make 0
let n_events = Atomic.make 0
let emit_mutex = Mutex.create ()

let enabled () = match Atomic.get installed with Null -> false | _ -> true
let current () = Atomic.get installed
let elapsed () = Unix.gettimeofday () -. epoch
let emitted_spans () = Atomic.get n_spans
let emitted_events () = Atomic.get n_events

let ring_push r line =
  r.lines.(r.next) <- line;
  r.next <- (r.next + 1) mod r.capacity;
  if r.length < r.capacity then r.length <- r.length + 1

let ring_lines = function
  | Ring r ->
    Mutex.protect emit_mutex (fun () ->
        List.init r.length (fun i ->
            r.lines.((r.next - r.length + i + r.capacity) mod r.capacity)))
  | Null | Jsonl _ | Callback _ -> []

let emit e =
  (match e with
   | Span _ -> Atomic.incr n_spans
   | Event _ -> Atomic.incr n_events);
  match Atomic.get installed with
  | Null -> ()
  | sink ->
    Mutex.protect emit_mutex (fun () ->
        match sink with
        | Null -> ()
        | Jsonl oc ->
          output_string oc (line_of e);
          output_char oc '\n'
        | Ring r -> ring_push r (line_of e)
        | Callback f -> f e)

(* A [Jsonl] channel is owned by the tracer once installed: replacing or
   uninstalling it flushes and closes the channel. *)
let release = function
  | Jsonl oc -> ( try flush oc; close_out_noerr oc with Sys_error _ -> ())
  | Null | Ring _ | Callback _ -> ()

let install s =
  let old = Atomic.exchange installed s in
  Mutex.protect emit_mutex (fun () -> release old)

let uninstall () = install Null

let with_sink s f =
  let saved = Atomic.exchange installed s in
  Fun.protect
    ~finally:(fun () ->
      (match s with
       | Jsonl oc ->
         Mutex.protect emit_mutex (fun () ->
             try flush oc with Sys_error _ -> ())
       | Null | Ring _ | Callback _ -> ());
      Atomic.set installed saved)
    f
