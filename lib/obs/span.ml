(* Nested spans over the ambient sink.

   The span stack is dynamic scoping *per domain*: [with_span] pushes
   onto the calling domain's stack (domain-local storage), runs the body,
   pops and emits.  Span ids come from one process-wide atomic counter,
   so ids stay unique when several domains trace concurrently, and every
   span records the domain that opened it as a [domain] attribute.

   A worker domain starts with an empty stack; [with_context] lets a
   fork/join layer (Par.Pool) graft the tasks it runs onto the
   submitter's innermost span, so a parallel probe's spans land inside
   the search's span tree instead of floating as extra roots.

   When no sink is installed [with_span] is just [f ()] and the stacks
   stay empty, which makes every [set_*] helper a no-op that allocates
   nothing — the contract the hot solver paths rely on. *)

let next_id = Atomic.make 0

let stack_key : Sink.span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Inherited parent for spans opened while this domain's own stack is
   empty (set by Par.Pool around each task). *)
let ambient_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let stack () = Domain.DLS.get stack_key

let current_id () =
  match !(stack ()) with
  | [] -> Domain.DLS.get ambient_key
  | s :: _ -> Some s.Sink.id

let context = current_id

let with_context parent f =
  let saved = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key parent;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key saved) f

let set_attr name v =
  match !(stack ()) with
  | [] -> ()
  | s :: _ -> s.Sink.attrs <- (name, v) :: s.Sink.attrs

let set_bool name b = set_attr name (Sink.Bool b)
let set_int name i = set_attr name (Sink.Int i)
let set_float name f = set_attr name (Sink.Float f)
let set_str name v = set_attr name (Sink.Str v)

let with_span ?(attrs = []) name f =
  if not (Sink.enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 + 1 in
    let sp =
      {
        Sink.id;
        parent = current_id ();
        name;
        t_start = Sink.elapsed ();
        t_stop = 0.;
        attrs =
          ("domain", Sink.Int (Domain.self () :> int)) :: List.rev attrs;
      }
    in
    let stack = stack () in
    stack := sp :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
         | s :: rest when s == sp -> stack := rest
         | _ -> stack := List.filter (fun s -> s != sp) !stack);
        (* Wall-clock can step backwards; never emit a negative-length
           span. *)
        sp.Sink.t_stop <- Float.max sp.Sink.t_start (Sink.elapsed ());
        Sink.emit (Sink.Span sp))
      f
  end
