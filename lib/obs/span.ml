(* Nested spans over the ambient sink.

   The span stack is plain dynamic scoping: [with_span] pushes, runs the
   body, pops and emits.  When no sink is installed [with_span] is just
   [f ()] and the stack stays empty, which makes every [set_*] helper a
   no-op that allocates nothing — the contract the hot solver paths rely
   on. *)

let next_id = ref 0
let stack : Sink.span list ref = ref []

let current_id () =
  match !stack with [] -> None | s :: _ -> Some s.Sink.id

let set_attr name v =
  match !stack with
  | [] -> ()
  | s :: _ -> s.Sink.attrs <- (name, v) :: s.Sink.attrs

let set_bool name b =
  match !stack with
  | [] -> ()
  | s :: _ -> s.Sink.attrs <- (name, Sink.Bool b) :: s.Sink.attrs

let set_int name i =
  match !stack with
  | [] -> ()
  | s :: _ -> s.Sink.attrs <- (name, Sink.Int i) :: s.Sink.attrs

let set_float name f =
  match !stack with
  | [] -> ()
  | s :: _ -> s.Sink.attrs <- (name, Sink.Float f) :: s.Sink.attrs

let set_str name v =
  match !stack with
  | [] -> ()
  | s :: _ -> s.Sink.attrs <- (name, Sink.Str v) :: s.Sink.attrs

let with_span ?(attrs = []) name f =
  if not (Sink.enabled ()) then f ()
  else begin
    incr next_id;
    let sp =
      {
        Sink.id = !next_id;
        parent = current_id ();
        name;
        t_start = Sink.elapsed ();
        t_stop = 0.;
        attrs = List.rev attrs;
      }
    in
    stack := sp :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
         | s :: rest when s == sp -> stack := rest
         | _ -> stack := List.filter (fun s -> s != sp) !stack);
        (* Wall-clock can step backwards; never emit a negative-length
           span. *)
        sp.Sink.t_stop <- Float.max sp.Sink.t_start (Sink.elapsed ());
        Sink.emit (Sink.Span sp))
      f
  end
