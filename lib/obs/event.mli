(** Instant trace events.

    An event marks a point in time — a fault injected, a milestone search
    bracketed, a basis invalidated — and is attached to the innermost
    open {!Span} (if any).  With the null sink installed the call returns
    after one ref read; callers that construct an [attrs] list should
    guard the whole call on {!Sink.enabled} to keep the disabled path
    allocation-free. *)

val emit : ?attrs:(string * Sink.value) list -> string -> unit
