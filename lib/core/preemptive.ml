module Rat = Numeric.Rat
module Sx = Lp.Simplex.Exact

type result = {
  objective : Rat.t;
  schedule : Schedule.t;
  milestones : Rat.t list;
  search_range : Rat.t * Rat.t;
  preemption_slots : int;
}

(* Feasibility of objective [f] in the preemptive model: system (5) at a
   fixed F is the deadline system (2) plus the per-job constraint (5b).
   Probes share a non-divisible {!Deadline.prober}, so the exact
   certifications warm-start from the float probes' bases. *)
let first_feasible inst candidates =
  let pr = Deadline.prober ~divisible:false inst in
  fst
    (Flow_search.first_feasible
       ~exact:(fun f ->
         if Deadline.probe_exact pr ~objective:f then Some () else None)
       ~approx:(fun f -> Deadline.probe_approx pr ~objective:f)
       candidates)

(* Rebuild a preemptive schedule from interval fractions: per interval,
   decompose the processing-time matrix into synchronized slots. *)
let reconstruct inst ~intervals ~fractions =
  let m = Instance.num_machines inst and n = Instance.num_jobs inst in
  let slices = ref [] and slot_count = ref 0 in
  Array.iteri
    (fun t (lo, hi) ->
      let len = Rat.sub hi lo in
      if Rat.sign len > 0 then begin
        let matrix = Array.make_matrix m n Rat.zero in
        let nonempty = ref false in
        List.iter
          (fun (t', i, j, frac) ->
            if t' = t then begin
              let c =
                match Instance.cost inst ~machine:i ~job:j with
                | Some c -> c
                | None -> assert false
              in
              matrix.(i).(j) <- Rat.add matrix.(i).(j) (Rat.mul frac c);
              nonempty := true
            end)
          fractions;
        if !nonempty then begin
          let slots = Openshop.decompose ~matrix ~limit:len in
          let cursor = ref lo in
          List.iter
            (fun (slot : Openshop.slot) ->
              let stop = Rat.add !cursor slot.duration in
              Array.iteri
                (fun i assn ->
                  match assn with
                  | Some j ->
                    slices :=
                      { Schedule.machine = i; job = j; start = !cursor; stop } :: !slices
                  | None -> ())
                slot.assignment;
              incr slot_count;
              cursor := stop)
            slots
        end
      end)
    intervals;
  (Schedule.make inst !slices, !slot_count)

let solve inst =
  if Instance.num_jobs inst = 0 then invalid_arg "Preemptive.solve: empty instance";
  (* The serial schedule runs one job at a time, so it is also a valid
     preemptive schedule: its weighted flow is a feasible objective. *)
  let f_ub = Max_flow.feasible_upper_bound inst in
  let milestones = Milestones.compute inst in
  let candidates = Milestones.candidates ~milestones inst ~upper:f_ub in
  let idx = first_feasible inst candidates in
  let f_hi = candidates.(idx) in
  let f_lo = if idx = 0 then Rat.zero else candidates.(idx - 1) in
  (* Cold final solve, as in {!Max_flow.solve}: schedules stay independent
     of probe history and identical across solver variants. *)
  let form = Formulations.parametric_system ~divisible:false inst ~f_lo ~f_hi in
  match Lp.Solve.exact form.pf_problem with
  | Sx.Optimal sol ->
    let f_star, fractions = form.pf_decode sol.values in
    let intervals =
      Array.init
        (Array.length form.pf_bounds - 1)
        (fun t ->
          ( Numeric.Affine.eval form.pf_bounds.(t) f_star,
            Numeric.Affine.eval form.pf_bounds.(t + 1) f_star ))
    in
    let schedule, preemption_slots = reconstruct inst ~intervals ~fractions in
    { objective = f_star; schedule; milestones; search_range = (f_lo, f_hi); preemption_slots }
  | Sx.Infeasible -> assert false
  | Sx.Unbounded -> assert false

let solve_total inst =
  if Instance.num_jobs inst = 0 then `Trivial (Schedule.make inst [])
  else `Solved (solve inst)

let solve_max_stretch inst = solve (Instance.stretch_weights inst)
