module Rat = Numeric.Rat
module Sx = Lp.Simplex.Exact

type result = {
  objective : Rat.t;
  schedule : Schedule.t;
  milestones : Rat.t list;
  search_range : Rat.t * Rat.t;
}

let feasible_upper_bound inst =
  let n = Instance.num_jobs inst in
  let order = List.init n (fun j -> j) in
  let order =
    List.sort
      (fun a b ->
        let c = Rat.compare (Instance.release inst a) (Instance.release inst b) in
        if c <> 0 then c else compare a b)
      order
  in
  let finish = ref Rat.zero and worst = ref Rat.zero in
  List.iter
    (fun j ->
      let start = Rat.max !finish (Instance.release inst j) in
      let stop = Rat.add start (Instance.fastest_cost inst ~job:j) in
      finish := stop;
      let wflow =
        Rat.mul (Instance.weight inst j) (Rat.sub stop (Instance.flow_origin inst j))
      in
      worst := Rat.max !worst wflow)
    order;
  !worst

(* Smallest index [i] in [candidates] (sorted increasing, last one known
   feasible) such that the objective [candidates.(i)] is feasible.
   Feasibility is monotone in F: larger F only loosens every deadline.
   The search is float-driven and exactly certified (see {!Flow_search});
   probes share a {!Deadline.prober} so exact certifications warm-start
   from the float bases. *)
let first_feasible ~accelerate ?cache inst candidates =
  let pr = Deadline.prober ?cache inst in
  let exact f = if Deadline.probe_exact pr ~objective:f then Some () else None in
  let approx =
    if accelerate then fun f -> Deadline.probe_approx pr ~objective:f
    else fun f -> Deadline.probe_exact pr ~objective:f
  in
  fst (Flow_search.first_feasible ~exact ~approx candidates)

let solve_untraced ?(accelerate = true) ?cache inst =
  if Instance.num_jobs inst = 0 then invalid_arg "Max_flow.solve: empty instance";
  let f_ub = feasible_upper_bound inst in
  let milestones = Milestones.compute inst in
  (* Only milestones at most [f_ub] matter: the optimum is ≤ f_ub, and
     [f_ub] itself is appended as a feasible sentinel so the binary search
     is always well-defined. *)
  let candidates = Milestones.candidates ~milestones inst ~upper:f_ub in
  let idx = first_feasible ~accelerate ?cache inst candidates in
  let f_hi = candidates.(idx) in
  let f_lo = if idx = 0 then Rat.zero else candidates.(idx - 1) in
  (* The open range (f_lo, f_hi) contains no milestone; minimize F there.
     This final parametric solve intentionally takes no warm-start hint:
     cold solves are bit-identical across solver variants, so the returned
     schedule never depends on probe history. *)
  let outcome =
    Obs.Span.with_span "parametric.solve" (fun () ->
        let form = Formulations.parametric_system ~divisible:true inst ~f_lo ~f_hi in
        match Lp.Solve.exact form.pf_problem with
        | Sx.Optimal sol -> Some (form, sol)
        | Sx.Infeasible ->
          assert false (* f_hi is feasible, so the range contains a solution *)
        | Sx.Unbounded -> assert false (* F is bounded below by f_lo ≥ 0 *))
  in
  match outcome with
  | Some (form, sol) ->
    let f_star, fractions = form.pf_decode sol.values in
    let intervals =
      Array.init
        (Array.length form.pf_bounds - 1)
        (fun t ->
          ( Numeric.Affine.eval form.pf_bounds.(t) f_star,
            Numeric.Affine.eval form.pf_bounds.(t + 1) f_star ))
    in
    let schedule = Schedule.pack inst ~intervals ~fractions in
    { objective = f_star; schedule; milestones; search_range = (f_lo, f_hi) }
  | None -> assert false

let solve ?accelerate ?cache inst =
  if not (Obs.Sink.enabled ()) then solve_untraced ?accelerate ?cache inst
  else
    Obs.Span.with_span "maxflow.solve"
      ~attrs:
        [
          ("jobs", Obs.Sink.Int (Instance.num_jobs inst));
          ("machines", Obs.Sink.Int (Instance.num_machines inst));
        ]
      (fun () ->
        let r = solve_untraced ?accelerate ?cache inst in
        let f_lo, f_hi = r.search_range in
        Obs.Span.set_str "f_star" (Format.asprintf "%a" Rat.pp r.objective);
        Obs.Span.set_str "f_lo" (Format.asprintf "%a" Rat.pp f_lo);
        Obs.Span.set_str "f_hi" (Format.asprintf "%a" Rat.pp f_hi);
        r)

(* Total entry point: the empty instance is a valid input with a trivial
   optimum (no jobs, objective 0, empty schedule) rather than an
   exception.  Degenerate *construction* inputs never reach here — they
   are typed out by [Instance.make_checked]. *)
let solve_total ?accelerate ?cache inst =
  if Instance.num_jobs inst = 0 then `Trivial (Schedule.make inst [])
  else `Solved (solve ?accelerate ?cache inst)

let solve_max_stretch inst = solve (Instance.stretch_weights inst)

let default_epsilon = Rat.of_ints 1 1048576 (* 2^-20 *)

let solve_bisection ?(epsilon = default_epsilon) inst =
  if Instance.num_jobs inst = 0 then invalid_arg "Max_flow.solve_bisection: empty instance";
  if Rat.sign epsilon <= 0 then invalid_arg "Max_flow.solve_bisection: epsilon must be positive";
  let pr = Deadline.prober inst in
  let lo = ref Rat.zero and hi = ref (feasible_upper_bound inst) in
  (* invariant: hi feasible, lo infeasible (or zero) *)
  while Rat.compare (Rat.sub !hi !lo) (Rat.mul epsilon !hi) > 0 do
    let mid = Rat.div_int (Rat.add !lo !hi) 2 in
    if Deadline.probe_exact pr ~objective:mid then hi := mid else lo := mid
  done;
  (* The probe at [hi] cached its LP solution, so the schedule is decoded
     without solving the winning system a second time. *)
  match Deadline.schedule_at pr ~objective:!hi with
  | Some schedule ->
    { objective = !hi; schedule; milestones = []; search_range = (!lo, !hi) }
  | None -> assert false (* hi is feasible by the loop invariant *)
