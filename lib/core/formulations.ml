module Rat = Numeric.Rat
module Affine = Numeric.Affine
module P = Lp.Problem

type alloc = (int * int * int * Rat.t) list

let var_name t i j = Printf.sprintf "a_t%d_m%d_j%d" t i j

(* Register α variables for all admissible (t, i, j) and return them with
   their LP indices.  [admissible t j] decides (release/deadline) timing;
   machine admissibility is the finiteness of c_{i,j}. *)
let alpha_variables st inst ~num_intervals ~admissible =
  let n = Instance.num_jobs inst and m = Instance.num_machines inst in
  let vars = ref [] in
  for t = 0 to num_intervals - 1 do
    for j = 0 to n - 1 do
      if admissible t j then
        for i = 0 to m - 1 do
          match Instance.cost inst ~machine:i ~job:j with
          | Some c ->
            let v = P.Builder.fresh_var st ~name:(var_name t i j) in
            vars := (v, t, i, j, c) :: !vars
          | None -> ()
        done
    done
  done;
  List.rev !vars

(* Completion constraints (1d)/(2d)/(3e)/(5a): Σ_t Σ_i α = 1 per job.
   A job with no admissible variable yields the infeasible [0 = 1], which
   is exactly the right outcome (its deadline precedes any processing
   opportunity). *)
let add_completion_constraints st inst vars =
  let n = Instance.num_jobs inst in
  let terms = Array.make n [] in
  List.iter (fun (v, _, _, j, _) -> terms.(j) <- (v, Rat.one) :: terms.(j)) vars;
  for j = 0 to n - 1 do
    P.Builder.add_constr st ~name:(Printf.sprintf "complete_j%d" j) terms.(j) P.Eq Rat.one
  done

(* Group the work terms (α·c) by key for resource constraints. *)
let work_terms_by vars ~key =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (v, t, i, j, c) ->
      let k = key t i j in
      let cur = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k ((v, c) :: cur))
    vars;
  tbl

let decode_alloc vars values =
  List.filter_map
    (fun (v, t, i, j, _) ->
      let x = values.(v) in
      if Rat.sign x > 0 then Some (t, i, j, x) else None)
    vars

(* ------------------------------------------------------------------ *)
(* System (1): makespan                                                *)
(* ------------------------------------------------------------------ *)

type makespan_form = {
  mk_problem : Rat.t P.t;
  mk_bounded_intervals : (Rat.t * Rat.t) array;
  mk_decode : Rat.t array -> Rat.t * alloc;
}

let makespan_system inst =
  let releases =
    Array.to_list (Array.map (fun (j : Instance.job) -> j.release) inst.Instance.jobs)
  in
  (* Bounded intervals between consecutive distinct release dates; the
     final interval starts at the last release and has LP-variable length
     Δ (constraint (1c)). *)
  let bounded = Intervals.of_epochals releases in
  let nb = Array.length bounded in
  let num_intervals = nb + 1 in
  let st = P.Builder.create () in
  let delta = P.Builder.fresh_var st ~name:"delta" in
  let admissible t j =
    if t = nb then true (* every job is released by the last release date *)
    else Rat.compare (fst bounded.(t)) (Instance.release inst j) >= 0
  in
  let vars = alpha_variables st inst ~num_intervals ~admissible in
  (* Resource constraints (1b) for bounded intervals, (1c) for the final. *)
  let by_ti = work_terms_by vars ~key:(fun t i _ -> (t, i)) in
  Hashtbl.iter
    (fun (t, i) terms ->
      let terms = List.map (fun (v, c) -> (v, c)) terms in
      if t < nb then begin
        let lo, hi = bounded.(t) in
        P.Builder.add_constr st
          ~name:(Printf.sprintf "res_t%d_m%d" t i)
          terms P.Le (Rat.sub hi lo)
      end
      else
        P.Builder.add_constr st
          ~name:(Printf.sprintf "final_m%d" i)
          ((delta, Rat.minus_one) :: terms)
          P.Le Rat.zero)
    by_ti;
  add_completion_constraints st inst vars;
  P.Builder.set_objective st P.Minimize [ (delta, Rat.one) ];
  {
    mk_problem = P.Builder.finish st;
    mk_bounded_intervals = bounded;
    mk_decode = (fun values -> (values.(delta), decode_alloc vars values));
  }

(* ------------------------------------------------------------------ *)
(* System (2): deadline feasibility                                    *)
(* ------------------------------------------------------------------ *)

type deadline_form = {
  dl_problem : Rat.t P.t;
  dl_intervals : (Rat.t * Rat.t) array;
  dl_decode : Rat.t array -> alloc;
}

let deadline_system ?(divisible = true) inst ~deadlines =
  let n = Instance.num_jobs inst in
  if Array.length deadlines <> n then
    invalid_arg "Formulations.deadline_system: deadlines length mismatch";
  let intervals =
    Intervals.of_epochals
      (Array.to_list (Array.map (fun (j : Instance.job) -> j.release) inst.Instance.jobs)
      @ Array.to_list deadlines)
  in
  let st = P.Builder.create () in
  let admissible t j =
    let lo, hi = intervals.(t) in
    Rat.compare lo (Instance.release inst j) >= 0 && Rat.compare hi deadlines.(j) <= 0
  in
  (* The admissibility grid is the formulation's rational-comparison hot
     spot (intervals × jobs cells, two Rat comparisons each); on large
     systems the per-interval rows are tabulated on the domain pool.  The
     table is a pure function of the instance and deadlines, so the
     builder below consumes identical bits at every pool width. *)
  let admissible =
    let nt = Array.length intervals in
    if nt * n < 512 || not (Par.Pool.worthwhile ~tasks:nt ~task_ns:Float.infinity)
    then admissible
    else begin
      let row t = Array.init n (fun j -> admissible t j) in
      (* Time one interval row; tabulate on the pool only when a row
         amortizes its dispatch cost, otherwise evaluate cells lazily as
         before (identical bits either way). *)
      let t0 = Obs.Sink.elapsed () in
      let r0 = row 0 in
      let t1 = Obs.Sink.elapsed () in
      if Par.Pool.worthwhile ~tasks:(nt - 1) ~task_ns:((t1 -. t0) *. 1e9) then begin
        let rows =
          Array.append [| r0 |]
            (Par.Pool.map_or_seq row (Array.init (nt - 1) (fun t -> t + 1)))
        in
        fun t j -> rows.(t).(j)
      end
      else admissible
    end
  in
  let vars = alpha_variables st inst ~num_intervals:(Array.length intervals) ~admissible in
  let add_capacity_constraints ~key ~name_of =
    Hashtbl.iter
      (fun k terms ->
        let t, _ = k in
        let lo, hi = intervals.(t) in
        P.Builder.add_constr st ~name:(name_of k) terms P.Le (Rat.sub hi lo))
      (work_terms_by vars ~key)
  in
  add_capacity_constraints
    ~key:(fun t i _ -> (t, i))
    ~name_of:(fun (t, i) -> Printf.sprintf "res_t%d_m%d" t i);
  if not divisible then
    (* Constraint (5b) of Section 4.4: each job receives at most the
       interval length across all machines. *)
    add_capacity_constraints
      ~key:(fun t _ j -> (t, j))
      ~name_of:(fun (t, j) -> Printf.sprintf "job_t%d_j%d" t j);
  add_completion_constraints st inst vars;
  P.Builder.set_objective st P.Minimize [];
  {
    dl_problem = P.Builder.finish st;
    dl_intervals = intervals;
    dl_decode = (fun values -> decode_alloc vars values);
  }

(* ------------------------------------------------------------------ *)
(* Systems (3) and (5): parametric in F                                *)
(* ------------------------------------------------------------------ *)

type parametric_form = {
  pf_problem : Rat.t P.t;
  pf_bounds : Affine.t array;
  pf_decode : Rat.t array -> Rat.t * alloc;
}

let deadline_fn inst j =
  (* d̄_j(F) = o_j + F / w_j, with o_j the flow origin (= r_j offline) *)
  Affine.make ~const:(Instance.flow_origin inst j)
    ~slope:(Rat.inv (Instance.weight inst j))

let parametric_system ~divisible inst ~f_lo ~f_hi =
  if Rat.sign f_lo < 0 then invalid_arg "Formulations.parametric_system: negative f_lo";
  if Rat.compare f_lo f_hi >= 0 then
    invalid_arg "Formulations.parametric_system: empty objective range";
  let n = Instance.num_jobs inst in
  (* Reference point strictly inside the milestone-free range: the relative
     order of epochal times anywhere in the open range is their order
     everywhere in it. *)
  let mid = Rat.div_int (Rat.add f_lo f_hi) 2 in
  let epochals =
    List.init n (fun j -> Affine.const (Instance.release inst j))
    @ List.init n (fun j -> deadline_fn inst j)
  in
  (* Distinct epochal functions, ordered by value at the reference point.
     Two functions equal at [mid] are identical on the whole range (they
     would otherwise cross strictly inside it, contradicting the
     milestone-free hypothesis), so deduplication by value is sound. *)
  let bounds =
    epochals
    |> List.map (fun e -> (Affine.eval e mid, e))
    |> List.sort_uniq (fun (a, _) (b, _) -> Rat.compare a b)
    |> List.map snd
    |> Array.of_list
  in
  let num_intervals = Array.length bounds - 1 in
  let st = P.Builder.create () in
  let f_var = P.Builder.fresh_var st ~name:"F" in
  let admissible t j =
    let lo = Affine.eval bounds.(t) mid and hi = Affine.eval bounds.(t + 1) mid in
    Rat.compare lo (Instance.release inst j) >= 0
    && Rat.compare hi (Affine.eval (deadline_fn inst j) mid) <= 0
  in
  let vars = alpha_variables st inst ~num_intervals ~admissible in
  (* Length of interval t as an affine function of F. *)
  let length t = Affine.sub bounds.(t + 1) bounds.(t) in
  (* Σ work − slope·F ≤ const encodes Σ work ≤ length(F). *)
  let add_capacity name t terms =
    let len = length t in
    P.Builder.add_constr st ~name
      ((f_var, Rat.neg len.Affine.slope) :: terms)
      P.Le len.Affine.const
  in
  let by_ti = work_terms_by vars ~key:(fun t i _ -> (t, i)) in
  Hashtbl.iter
    (fun (t, i) terms -> add_capacity (Printf.sprintf "res_t%d_m%d" t i) t terms)
    by_ti;
  if not divisible then begin
    (* Constraint (5b): a single job cannot receive more than the interval
       length in total across machines — necessary for the Lawler–Labetoulle
       reconstruction. *)
    let by_tj = work_terms_by vars ~key:(fun t _ j -> (t, j)) in
    Hashtbl.iter
      (fun (t, j) terms -> add_capacity (Printf.sprintf "job_t%d_j%d" t j) t terms)
      by_tj
  end;
  add_completion_constraints st inst vars;
  (* Constraint (3a): f_lo ≤ F ≤ f_hi. *)
  P.Builder.add_constr st ~name:"F_lo" [ (f_var, Rat.one) ] P.Ge f_lo;
  P.Builder.add_constr st ~name:"F_hi" [ (f_var, Rat.one) ] P.Le f_hi;
  P.Builder.set_objective st P.Minimize [ (f_var, Rat.one) ];
  {
    pf_problem = P.Builder.finish st;
    pf_bounds = bounds;
    pf_decode = (fun values -> (values.(f_var), decode_alloc vars values));
  }

(* ------------------------------------------------------------------ *)
(* Constraint-matrix sparsity                                          *)
(* ------------------------------------------------------------------ *)

type sparsity = {
  sp_rows : int;
  sp_cols : int; (* structural columns incl. slack/artificial *)
  sp_nnz : int;
  sp_density : float;
}

(* The formulations emit one variable per admissible machine×interval
   triple, so rows touch few columns; this reports the CSC build of a
   system's constraint matrix (what the revised simplex engine actually
   iterates), for the bench reports and DESIGN numbers. *)
let sparsity (p : Rat.t P.t) =
  let prep = Lp.Revised.Exact.prepare p in
  let m = Lp.Revised.Exact.matrix prep in
  {
    sp_rows = Linalg.Sparse.nrows m;
    sp_cols = Linalg.Sparse.ncols m;
    sp_nnz = Linalg.Sparse.nnz m;
    sp_density = Linalg.Sparse.density m;
  }
