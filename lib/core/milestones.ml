module Rat = Numeric.Rat

(* d̄_j(F) = o_j + F/w_j (with o_j the flow origin, equal to r_j in the
   paper's offline problem) crosses the release date r_k at
   F = w_j (r_k − o_j), and crosses d̄_k(F) (for w_j ≠ w_k) at
   F = (o_k − o_j) / (1/w_j − 1/w_k). *)
let compute inst =
  let n = Instance.num_jobs inst in
  (* One row of the (j, k) candidate grid; rows are independent, so large
     instances generate them on the domain pool.  The final [sort_uniq]
     makes the result insensitive to row order — the parallel and
     sequential runs build the same candidate multiset and hence the same
     sorted list. *)
  let row j =
    let acc = ref [] in
    let push f = if Rat.sign f > 0 then acc := f :: !acc in
    let oj = Instance.flow_origin inst j and wj = Instance.weight inst j in
    for k = 0 to n - 1 do
      push (Rat.mul wj (Rat.sub (Instance.release inst k) oj));
      if k > j then begin
        let wk = Instance.weight inst k in
        let dslope = Rat.sub (Rat.inv wj) (Rat.inv wk) in
        if not (Rat.is_zero dslope) then
          push (Rat.div (Rat.sub (Instance.flow_origin inst k) oj) dslope)
      end
    done;
    !acc
  in
  let rows =
    if n < 8 || not (Par.Pool.worthwhile ~tasks:n ~task_ns:Float.infinity) then
      Array.init n row
    else begin
      (* Time row 0 on the calling domain; pool the remaining rows only
         if a row amortizes the pool's per-task dispatch cost.  The
         timed row is reused, so no work is repeated either way. *)
      let t0 = Obs.Sink.elapsed () in
      let r0 = row 0 in
      let t1 = Obs.Sink.elapsed () in
      if Par.Pool.worthwhile ~tasks:(n - 1) ~task_ns:((t1 -. t0) *. 1e9) then
        Array.append [| r0 |]
          (Par.Pool.map_or_seq row (Array.init (n - 1) (fun i -> i + 1)))
      else Array.init n (fun j -> if j = 0 then r0 else row j)
    end
  in
  let candidates = Array.fold_left (fun acc r -> List.rev_append r acc) [] rows in
  let ms = List.sort_uniq Rat.compare candidates in
  if Obs.Sink.enabled () then
    Obs.Event.emit "milestones.computed"
      ~attrs:[ ("count", Obs.Sink.Int (List.length ms)) ];
  ms

let count_bound inst =
  let n = Instance.num_jobs inst in
  (n * n) - n

(* Search candidates for an upper-bounded objective search: milestones
   strictly below [upper], with [upper] appended as the feasible sentinel
   that keeps the binary search well-defined.  [milestones] avoids
   recomputing when the caller already has them. *)
let candidates ?milestones inst ~upper =
  let ms = match milestones with Some ms -> ms | None -> compute inst in
  let below = List.filter (fun m -> Rat.compare m upper < 0) ms in
  Array.of_list (below @ [ upper ])
