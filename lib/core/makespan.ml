module Rat = Numeric.Rat
module Sx = Lp.Simplex.Exact

type result = { makespan : Rat.t; schedule : Schedule.t }

let solve_untraced inst =
  if Instance.num_jobs inst = 0 then invalid_arg "Makespan.solve: empty instance";
  let form = Formulations.makespan_system inst in
  match Lp.Solve.exact form.mk_problem with
  | Sx.Optimal sol ->
    let delta, fractions = form.mk_decode sol.values in
    let r_max = Instance.max_release inst in
    let intervals =
      Array.append form.mk_bounded_intervals [| (r_max, Rat.add r_max delta) |]
    in
    let schedule = Schedule.pack inst ~intervals ~fractions in
    { makespan = Rat.add r_max delta; schedule }
  | Sx.Infeasible ->
    assert false (* system (1) is always feasible: process everything in I_n *)
  | Sx.Unbounded -> assert false (* Δ ≥ 0 and the objective is minimized *)

let solve inst =
  if not (Obs.Sink.enabled ()) then solve_untraced inst
  else
    Obs.Span.with_span "makespan.solve"
      ~attrs:
        [
          ("jobs", Obs.Sink.Int (Instance.num_jobs inst));
          ("machines", Obs.Sink.Int (Instance.num_machines inst));
        ]
      (fun () ->
        let r = solve_untraced inst in
        Obs.Span.set_str "makespan" (Format.asprintf "%a" Rat.pp r.makespan);
        r)

let solve_total inst =
  if Instance.num_jobs inst = 0 then `Trivial (Schedule.make inst [])
  else `Solved (solve inst)

let lower_bound inst =
  let n = Instance.num_jobs inst and m = Instance.num_machines inst in
  let bound = ref Rat.zero in
  for j = 0 to n - 1 do
    let rate = ref Rat.zero in
    for i = 0 to m - 1 do
      match Instance.cost inst ~machine:i ~job:j with
      | Some c -> rate := Rat.add !rate (Rat.inv c)
      | None -> ()
    done;
    bound := Rat.max !bound (Rat.add (Instance.release inst j) (Rat.inv !rate))
  done;
  !bound
