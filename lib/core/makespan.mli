(** Makespan minimization in the divisible-load model (Section 4.1 of the
    paper, Theorem 1): the optimal makespan is [r_n + Δ_n] where [Δ_n] is
    the optimal value of LP system (1). *)

module Rat = Numeric.Rat

type result = {
  makespan : Rat.t;
  schedule : Schedule.t;  (** an optimal schedule achieving it *)
}

val solve : Instance.t -> result
(** Always succeeds (every valid instance admits a schedule).
    @raise Invalid_argument on an empty instance. *)

val solve_total : Instance.t -> [ `Solved of result | `Trivial of Schedule.t ]
(** Total variant of {!solve}: the empty instance (no jobs) yields
    [`Trivial] with an empty schedule instead of raising. *)

val lower_bound : Instance.t -> Rat.t
(** A combinatorial lower bound used by tests and benches:
    [max_j (r_j + 1 / Σ_i 1/c_{i,j})] — after its release date, job [j]
    cannot finish faster than by monopolizing every machine able to run it
    (divisibility allows simultaneous execution, hence the harmonic sum). *)
