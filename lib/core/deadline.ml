module Rat = Numeric.Rat
module Sx = Lp.Simplex.Exact
module Sf = Lp.Simplex.Approx

let solve_form inst (form : Formulations.deadline_form) =
  match Lp.Solve.exact form.dl_problem with
  | Sx.Optimal sol ->
    let fractions = form.dl_decode sol.values in
    Some (Schedule.pack inst ~intervals:form.dl_intervals ~fractions)
  | Sx.Infeasible -> None
  | Sx.Unbounded -> assert false (* feasibility system: bounded by construction *)

let feasible inst ~deadlines =
  solve_form inst (Formulations.deadline_system inst ~deadlines)

let is_feasible ?divisible inst ~deadlines =
  let form = Formulations.deadline_system ?divisible inst ~deadlines in
  match Lp.Solve.exact form.dl_problem with
  | Sx.Optimal _ -> true
  | Sx.Infeasible -> false
  | Sx.Unbounded -> assert false

let is_feasible_approx ?divisible inst ~deadlines =
  let form = Formulations.deadline_system ?divisible inst ~deadlines in
  match Lp.Solve.approx (Lp.Problem.map Rat.to_float form.dl_problem) with
  | Sf.Optimal _ -> true
  | Sf.Infeasible -> false
  | Sf.Unbounded -> assert false

let flow_deadlines inst ~objective =
  Array.init (Instance.num_jobs inst) (fun j ->
      Rat.add (Instance.flow_origin inst j)
        (Rat.div objective (Instance.weight inst j)))

(* ------------------------------------------------------------------ *)
(* Warm-started feasibility probes                                     *)
(* ------------------------------------------------------------------ *)

(* A prober amortizes a family of flow-deadline feasibility questions on
   one instance (the milestone binary search, online re-solves):
   - formulations are memoized per objective, so the approx pre-check and
     the exact certification of the same F build the LP once;
   - the float probe's final basis seeds the exact solve of the same
     system (verified warm start — see [Lp.Revised]);
   - exact bases are kept in a shape-keyed [Lp.Solve.cache], warm-starting
     later probes whose interval structure coincides (pass [?cache] to
     share it across probers, e.g. across online arrivals);
   - feasible exact probes keep their LP solution, so the winning
     objective's schedule is decoded without another solve
     ([schedule_at]).

   One prober may be shared by concurrent probes (Par.Pool runs the
   k-section's candidates on worker domains): [p_lock] guards every
   memo table.  The tables are caches of deterministic functions of the
   objective, so whichever domain populates an entry first, later
   readers see the same value the sequential run would have computed. *)
type prober = {
  p_inst : Instance.t;
  p_divisible : bool;
  p_cache : Lp.Solve.cache;
  p_lock : Mutex.t;
  p_forms : (string, Formulations.deadline_form) Hashtbl.t;
  p_bases : (string, int array) Hashtbl.t; (* float bases, keyed by objective *)
  p_solutions : (string, Rat.t array) Hashtbl.t; (* feasible exact solutions *)
}

let prober ?(divisible = true) ?cache inst =
  {
    p_inst = inst;
    p_divisible = divisible;
    p_cache = (match cache with Some c -> c | None -> Lp.Solve.cache ());
    p_lock = Mutex.create ();
    p_forms = Hashtbl.create 16;
    p_bases = Hashtbl.create 16;
    p_solutions = Hashtbl.create 8;
  }

let obj_key f = Format.asprintf "%a" Rat.pp f

let form_at pr ~objective =
  let key = obj_key objective in
  match Mutex.protect pr.p_lock (fun () -> Hashtbl.find_opt pr.p_forms key) with
  | Some form -> form
  | None ->
    (* Built outside the lock — formulation assembly is the expensive
       part and holding [p_lock] across it would serialize the probes.
       Two domains may race to build the same form; both build the same
       value, and the first store wins. *)
    let form =
      Obs.Span.with_span "deadline.form" (fun () ->
          let deadlines = flow_deadlines pr.p_inst ~objective in
          Formulations.deadline_system ~divisible:pr.p_divisible pr.p_inst
            ~deadlines)
    in
    Mutex.protect pr.p_lock (fun () ->
        match Hashtbl.find_opt pr.p_forms key with
        | Some earlier -> earlier
        | None ->
          Hashtbl.replace pr.p_forms key form;
          form)

let probe_approx pr ~objective =
  let body () =
    let form = form_at pr ~objective in
    let outcome, basis =
      Lp.Solve.approx_basis (Lp.Problem.map Rat.to_float form.dl_problem)
    in
    Option.iter
      (fun b ->
        Mutex.protect pr.p_lock (fun () ->
            Hashtbl.replace pr.p_bases (obj_key objective) b))
      basis;
    match outcome with
    | Sf.Optimal _ -> true
    | Sf.Infeasible -> false
    | Sf.Unbounded -> assert false
  in
  if not (Obs.Sink.enabled ()) then body ()
  else
    Obs.Span.with_span "probe.approx"
      ~attrs:[ ("objective", Obs.Sink.Str (obj_key objective)) ]
      (fun () ->
        let feasible = body () in
        Obs.Span.set_bool "feasible" feasible;
        feasible)

let probe_exact pr ~objective =
  let body () =
    let form = form_at pr ~objective in
    let hint =
      Mutex.protect pr.p_lock (fun () ->
          Hashtbl.find_opt pr.p_bases (obj_key objective))
    in
    Obs.Span.set_bool "float_basis_hint" (hint <> None);
    match Lp.Solve.exact ~cache:pr.p_cache ?hint form.dl_problem with
    | Sx.Optimal sol ->
      Mutex.protect pr.p_lock (fun () ->
          Hashtbl.replace pr.p_solutions (obj_key objective) sol.values);
      true
    | Sx.Infeasible -> false
    | Sx.Unbounded -> assert false
  in
  if not (Obs.Sink.enabled ()) then body ()
  else
    Obs.Span.with_span "probe.exact"
      ~attrs:[ ("objective", Obs.Sink.Str (obj_key objective)) ]
      (fun () ->
        let feasible = body () in
        Obs.Span.set_bool "feasible" feasible;
        feasible)

let schedule_at pr ~objective =
  let key = obj_key objective in
  let lookup () =
    Mutex.protect pr.p_lock (fun () -> Hashtbl.find_opt pr.p_solutions key)
  in
  let values =
    match lookup () with
    | Some v -> Some v
    | None -> if probe_exact pr ~objective then lookup () else None
  in
  match values with
  | None -> None
  | Some values ->
    let form = form_at pr ~objective in
    let fractions = form.dl_decode values in
    Some (Schedule.pack pr.p_inst ~intervals:form.dl_intervals ~fractions)
