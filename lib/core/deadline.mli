(** Deadline scheduling in the divisible-load model (Section 4.2 of the
    paper, Lemma 1): there is a schedule meeting every job's release date
    and deadline if, and only if, LP system (2) is feasible. *)

module Rat = Numeric.Rat

val feasible : Instance.t -> deadlines:Rat.t array -> Schedule.t option
(** [Some schedule] iff every job [J_j] can be fully processed within
    [\[r_j, deadlines.(j)\]].  The returned schedule is valid for
    {!Schedule.validate_divisible} and meets all deadlines. *)

val is_feasible : ?divisible:bool -> Instance.t -> deadlines:Rat.t array -> bool
(** Feasibility only, skipping schedule construction.  [divisible] (default
    [true]) selects system (2) or, when [false], system (5) at a fixed
    objective (the preemptive model of Section 4.4). *)

val is_feasible_approx : ?divisible:bool -> Instance.t -> deadlines:Rat.t array -> bool
(** Same question answered with the float simplex: much faster, possibly
    wrong near the feasibility boundary.  The milestone search uses it as a
    pre-check and verifies the answer exactly at the decision points. *)

val flow_deadlines : Instance.t -> objective:Rat.t -> Rat.t array
(** The deadlines [d̄_j(F) = r_j + F/w_j] induced by a maximum weighted
    flow objective [F] (Section 4.3.1). *)

(** {2 Warm-started feasibility probes}

    A prober answers a family of "is objective [F] feasible?" questions on
    one instance, reusing work across probes: memoized formulations, the
    float probe's basis seeding the exact solve of the same system, a
    shape-keyed basis cache across objectives, and cached solutions so the
    winning probe's schedule needs no extra solve.  Every reuse is
    verified by the solver (see {!Lp.Session}), so answers are identical
    to cold solves — only cheaper. *)

type prober

val prober : ?divisible:bool -> ?cache:Lp.Solve.cache -> Instance.t -> prober
(** [divisible] defaults to [true] (system (2)); [false] selects the
    preemptive system (5) at fixed objective.  Pass [?cache] to share a
    basis cache across probers (e.g. across online re-solves). *)

val probe_approx : prober -> objective:Rat.t -> bool
(** Float feasibility pre-check at [objective]; records the float basis
    for {!probe_exact} to warm-start from. *)

val probe_exact : prober -> objective:Rat.t -> bool
(** Exact feasibility at [objective], warm-started when a float basis or
    a shape-compatible cached basis is available. *)

val schedule_at : prober -> objective:Rat.t -> Schedule.t option
(** The schedule of the (divisible) deadline system at [objective],
    decoded from the cached probe solution when [probe_exact] already ran
    there — the winning milestone's LP is not solved twice. *)
