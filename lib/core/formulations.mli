(** LP formulations of the paper's four systems.

    Variables are the fractions [α^{(t)}_{i,j}] of job [j] processed on
    machine [i] during time interval [I_t].  A variable is only created when
    the triple is admissible — the job is released by the start of the
    interval, its deadline (if any) is not before the end of the interval,
    and [c_{i,j}] is finite; the paper's constraints (1a), (2a), (2b), (3b),
    (3c), (5d), (5e) are thus enforced structurally rather than as explicit
    equations. *)

module Rat = Numeric.Rat
module Affine = Numeric.Affine

type alloc = (int * int * int * Rat.t) list
(** [(t, i, j, α)] with [α > 0]: fraction of job [j] on machine [i] during
    interval [t]. *)

(** {1 System (1): makespan} *)

type makespan_form = {
  mk_problem : Rat.t Lp.Problem.t;
  mk_bounded_intervals : (Rat.t * Rat.t) array;
      (** the [nint - 1] intervals delimited by distinct release dates *)
  mk_decode : Rat.t array -> Rat.t * alloc;
      (** optimal [Δ_n] (length of the final, open-ended interval) and the
          fractions; interval index [Array.length mk_bounded_intervals]
          denotes the final interval *)
}

val makespan_system : Instance.t -> makespan_form

(** {1 System (2): deadline feasibility} *)

type deadline_form = {
  dl_problem : Rat.t Lp.Problem.t;
  dl_intervals : (Rat.t * Rat.t) array;
  dl_decode : Rat.t array -> alloc;
}

val deadline_system :
  ?divisible:bool -> Instance.t -> deadlines:Rat.t array -> deadline_form
(** With [divisible = false] (default [true]), the per-job interval-capacity
    constraint (5b) of Section 4.4 is added: this is system (5) at a fixed
    objective value, the feasibility test of the preemptive model. *)

(** {1 Systems (3) and (5): parametric in the flow objective F} *)

type parametric_form = {
  pf_problem : Rat.t Lp.Problem.t;
  pf_bounds : Affine.t array;
      (** epochal times as affine functions of [F]; interval [t] is
          [\[pf_bounds.(t), pf_bounds.(t+1))] *)
  pf_decode : Rat.t array -> Rat.t * alloc;  (** optimal [F] and fractions *)
}

val parametric_system :
  divisible:bool -> Instance.t -> f_lo:Rat.t -> f_hi:Rat.t -> parametric_form
(** Minimize [F] over [\[f_lo, f_hi\]] given that the relative order of
    release dates and deadlines [d̄_j(F) = r_j + F/w_j] is constant on the
    open range — i.e. no milestone lies strictly between [f_lo] and [f_hi].
    With [divisible = false] the per-job-per-interval constraint (5b) of
    Section 4.4 is added, making the solution reconstructible as a
    preemptive schedule without intra-job parallelism.
    @raise Invalid_argument if [f_lo >= f_hi] or either bound is negative. *)

(** {1 Constraint-matrix sparsity} *)

type sparsity = {
  sp_rows : int;
  sp_cols : int;  (** structural columns, incl. slack/artificial *)
  sp_nnz : int;
  sp_density : float;
}

val sparsity : Rat.t Lp.Problem.t -> sparsity
(** Sparsity of the system's constraint matrix as the revised simplex
    engine sees it (CSC over originals + slacks + artificials).  Used by
    the bench reports; on realistic instances density is a few percent. *)
