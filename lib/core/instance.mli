(** Problem instances: jobs with release dates and weights on unrelated
    machines (Section 3 of the paper).

    [cost i j] is the time machine [M_i] would need to process the whole of
    job [J_j]; [None] encodes the paper's infinite [c_{i,j}] — the databank
    required by [J_j] is not present on [M_i], so no fraction of the job may
    run there. *)

module Rat = Numeric.Rat

type job = {
  release : Rat.t;  (** release date [r_j >= 0]: no processing before it *)
  weight : Rat.t;  (** priority [w_j > 0] *)
  flow_origin : Rat.t;
      (** the date flow is measured from: the weighted flow of the job is
          [w_j (C_j - flow_origin)].  Equal to [release] in the paper's
          offline problem; strictly earlier when the online adaptation
          re-optimizes mid-flight jobs whose remaining work is re-released
          "now" but whose flow still counts from the original arrival.
          Every result of Section 4 carries over: deadlines become
          [d̄_j(F) = flow_origin_j + F/w_j], still affine in [F]. *)
}

type t = private {
  jobs : job array;
  num_machines : int;
  cost : Rat.t option array array;  (** [cost.(i).(j)], [num_machines × n] *)
}

type degeneracy =
  | No_machines  (** [m = 0] *)
  | Unrunnable_job of int  (** all-[+∞] cost column: [c_{i,j} = ∞] for every [i] *)
  | Nonpositive_weight of int  (** [w_j <= 0] *)
  | Negative_release of int  (** [r_j < 0] *)
  | Bad_flow_origin of int  (** flow origin negative or after the release date *)
  | Nonpositive_cost of int * int  (** finite [c_{i,j} <= 0] (machine, job) *)
  | Shape_mismatch of string  (** array dimensions disagree *)
(** Every way a would-be instance can violate the model of Section 3.  The
    paper's algorithms are only defined away from these; the fuzzing
    generators ({!Check}) deliberately produce them and classify the
    rejection by this type rather than by exception message. *)

val degeneracy_to_string : degeneracy -> string

val make_checked :
  ?flow_origins:Rat.t array ->
  releases:Rat.t array ->
  weights:Rat.t array ->
  Rat.t option array array ->
  (t, degeneracy) result
(** Total variant of {!make}: a degenerate input is a value, not an
    exception.  [n = 0] (no jobs) is {e not} degenerate — the empty
    instance is valid and solvers return their [`Trivial] case on it. *)

val make :
  ?flow_origins:Rat.t array ->
  releases:Rat.t array ->
  weights:Rat.t array ->
  Rat.t option array array ->
  t
(** [flow_origins] defaults to [releases].
    @raise Invalid_argument on any {!degeneracy} (the message carries
    {!degeneracy_to_string}). *)

val uniform :
  speeds:Rat.t array ->
  sizes:Rat.t array ->
  releases:Rat.t array ->
  weights:Rat.t array ->
  available:bool array array ->
  t
(** Uniform machines with restricted availabilities (the GriPPS situation,
    Section 3): [cost.(i).(j) = sizes.(j) * speeds.(i)] where [speeds.(i)]
    is in seconds per unit of work, masked by databank [available.(i).(j)].
    This is a special case of [make]. *)

val num_jobs : t -> int
val num_machines : t -> int
val job : t -> int -> job
val release : t -> int -> Rat.t
val weight : t -> int -> Rat.t
val flow_origin : t -> int -> Rat.t
val cost : t -> machine:int -> job:int -> Rat.t option

val can_run : t -> machine:int -> job:int -> bool

val fastest_cost : t -> job:int -> Rat.t
(** Minimum finite [c_{i,j}] over machines; total work of the job if it runs
    on its best machine. *)

val max_release : t -> Rat.t
(** Latest release date; zero for an empty instance. *)

val stretch_weights : t -> t
(** The same instance with every weight replaced by [1 / fastest_cost j]:
    with these weights, maximum weighted flow is maximum stretch (each job's
    flow is measured relative to its best-case processing time, the standard
    stretch of Bender et al. which the paper adopts). *)

val pp : Format.formatter -> t -> unit
