(** Verified accelerated binary search over milestone candidates.

    Feasibility of a flow objective is monotone (a larger [F] only loosens
    deadlines), so the optimal objective lies between the last infeasible
    and the first feasible candidate.  The exact LP feasibility test is
    expensive; this module drives the binary search with the float LP and
    then certifies the answer with at most two exact tests — falling back
    to a fully exact binary search in the (rare) case the float search was
    fooled by a near-boundary instance.  The result is therefore exactly
    the one a purely exact search would produce.

    Exact probes return a payload (typically the probe's LP solution or
    schedule), and [first_feasible] returns the winning candidate's payload
    along with its index — so the winner's LP is never solved twice.

    {b Parallel probing.}  When the ambient pool width ([Par.Pool.jobs])
    is above 1, the bisection generalizes to a k-section: each round
    probes up to [jobs] interior candidates concurrently (float rounds
    and exact fallback rounds alike), and the certification batch tests
    both boundary candidates at once.  Because exact feasibility is
    monotone, the boundary index — and hence the payload — is identical
    at every width; only wall-clock and the number of speculative probes
    change.  Width 1, a call from inside a pool task, or a candidate
    array too small to split all take the sequential path unchanged. *)

module Rat = Numeric.Rat

val binary_search :
  feasible:(Rat.t -> bool) -> Rat.t array -> int -> int -> int
(** [binary_search ~feasible candidates lo hi] is the underlying monotone
    search: smallest index in [\[lo, hi\]] that is feasible, assuming
    [candidates.(hi)] is. *)

val first_feasible :
  exact:(Rat.t -> 'a option) ->
  approx:(Rat.t -> bool) ->
  Rat.t array ->
  int * 'a
(** [first_feasible ~exact ~approx candidates] returns the smallest index
    [i] with [exact candidates.(i) <> None] together with that probe's
    payload, given that feasibility is monotone increasing and the last
    candidate is feasible.  [approx] must answer the same question
    approximately.  Raises [Invalid_argument] if the last candidate turns
    out infeasible (broken contract). *)
