module Rat = Numeric.Rat

let binary_search ~feasible candidates lo hi =
  (* invariant: candidates.(hi) feasible, everything below lo infeasible *)
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if feasible candidates.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* k-section: the batched generalization of the bisection above.  Each
   round picks up to [width] interior points of the unknown range
   [lo, hi), probes them all at once ([probe] maps an index array to a
   verdict array), and re-brackets on the outcome: the smallest feasible
   probed point becomes [hi], everything up to the largest infeasible
   point below it is discarded.  With [width = 1] the single probe point
   [lo + u/2] is exactly the bisection midpoint, and for a monotone
   [probe] any width returns the same boundary index — which is what
   makes the parallel search bit-compatible with the sequential one. *)
let ksection ~width ~probe lo0 hi0 =
  let lo = ref lo0 and hi = ref hi0 in
  while !lo < !hi do
    let u = !hi - !lo in
    let k = min width u in
    let points = Array.init k (fun t -> !lo + (u * (t + 1) / (k + 1))) in
    (* Probe points are nondecreasing; drop duplicates (small ranges map
       several t onto the same index). *)
    let points =
      if k = 1 then points
      else begin
        let uniq = ref [] in
        Array.iter
          (fun p -> match !uniq with q :: _ when q = p -> () | _ -> uniq := p :: !uniq)
          points;
        Array.of_list (List.rev !uniq)
      end
    in
    let verdicts = probe points in
    let n = Array.length points in
    let first_feasible = ref n in
    (let t = ref 0 in
     while !t < n && !first_feasible = n do
       if verdicts.(!t) then first_feasible := !t;
       incr t
     done);
    if !first_feasible < n then hi := points.(!first_feasible);
    (* Largest probed infeasible point below the new [hi] advances [lo]. *)
    let t = !first_feasible - 1 in
    if !first_feasible = n then lo := points.(n - 1) + 1
    else if t >= 0 then lo := points.(t) + 1
  done;
  !lo

let first_feasible_seq ~exact ~approx candidates =
  let last = Array.length candidates - 1 in
  (* Cache each exact probe's payload so the winning candidate's LP
     solution is returned instead of being solved a second time. *)
  let payloads = Hashtbl.create 8 in
  let exact_idx i =
    match exact candidates.(i) with
    | Some payload ->
      Hashtbl.replace payloads i payload;
      true
    | None -> false
  in
  let exact_search lo hi =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if exact_idx mid then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let guess = binary_search ~feasible:approx candidates 0 last in
  (* Certify the float answer with exact tests at the boundary. *)
  let idx =
    if exact_idx guess then begin
      if guess = 0 || not (exact_idx (guess - 1)) then guess
      else
        (* Float search overshot: the exact boundary is at or below guess-1. *)
        exact_search 0 (guess - 1)
    end
    else
      (* Float search undershot: the exact boundary is above guess. *)
      exact_search (guess + 1) last
  in
  let payload =
    match Hashtbl.find_opt payloads idx with
    | Some p -> p
    | None -> (
      (* Only reachable when the winner was never probed (the search
         collapsed onto the unprobed sentinel): probe it now. *)
      match exact candidates.(idx) with
      | Some p -> p
      | None ->
        invalid_arg "Flow_search.first_feasible: last candidate not feasible")
  in
  (idx, payload)

(* Parallel variant: the same certify-the-float-guess plan, with every
   probe round batched through the domain pool.  The float k-section may
   bracket a different guess than the float bisection would (float
   verdicts need not be monotone near the boundary), but certification
   always lands on the unique exact-monotone boundary, so index and
   payload match the sequential result for any width.  Payloads are
   recorded on the submitting domain after each batch returns — the
   probe closures themselves never touch shared state of this module. *)
let first_feasible_par ~width ~exact ~approx candidates =
  let last = Array.length candidates - 1 in
  let payloads = Hashtbl.create 8 in
  let probe_approx points =
    Par.Pool.map (fun i -> approx candidates.(i)) points
  in
  let probe_exact points =
    let results = Par.Pool.map (fun i -> exact candidates.(i)) points in
    Array.iteri
      (fun t r ->
        match r with
        | Some payload -> Hashtbl.replace payloads points.(t) payload
        | None -> ())
      results;
    Array.map Option.is_some results
  in
  let exact_idx i = (probe_exact [| i |]).(0) in
  let guess = ksection ~width ~probe:probe_approx 0 last in
  let idx =
    (* One batch certifies both boundary candidates at once. *)
    if guess = 0 then
      if exact_idx 0 then 0 else ksection ~width ~probe:probe_exact 1 last
    else begin
      let v = probe_exact [| guess - 1; guess |] in
      match (v.(0), v.(1)) with
      | false, true -> guess
      | true, _ ->
        (* Float search overshot: the exact boundary is at or below guess-1. *)
        ksection ~width ~probe:probe_exact 0 (guess - 1)
      | false, false ->
        (* Float search undershot: the exact boundary is above guess. *)
        ksection ~width ~probe:probe_exact (guess + 1) last
    end
  in
  let payload =
    match Hashtbl.find_opt payloads idx with
    | Some p -> p
    | None -> (
      match exact candidates.(idx) with
      | Some p -> p
      | None ->
        invalid_arg "Flow_search.first_feasible: last candidate not feasible")
  in
  (idx, payload)

let first_feasible_untraced ~exact ~approx candidates =
  let n = Array.length candidates in
  let width = Par.Pool.jobs () in
  if
    width <= 1
    || Par.Pool.in_parallel_task ()
    || n <= 2
    (* [task_ns:infinity] asks only the width question: can this host
       run more than one probe at a time at all?  False on any
       single-core machine, whatever [--jobs] says, without measuring
       anything. *)
    || not (Par.Pool.worthwhile ~tasks:n ~task_ns:Float.infinity)
  then first_feasible_seq ~exact ~approx candidates
  else begin
    (* Time one float probe (the bisection's first midpoint; probes are
       pure, so the verdict can be discarded) and batch the search only
       when a probe amortizes the pool's dispatch cost. *)
    let t0 = Obs.Sink.elapsed () in
    ignore (approx candidates.((n - 1) / 2));
    let t1 = Obs.Sink.elapsed () in
    if Par.Pool.worthwhile ~tasks:n ~task_ns:((t1 -. t0) *. 1e9) then
      first_feasible_par ~width ~exact ~approx candidates
    else first_feasible_seq ~exact ~approx candidates
  end

let first_feasible ~exact ~approx candidates =
  if not (Obs.Sink.enabled ()) then
    first_feasible_untraced ~exact ~approx candidates
  else
    Obs.Span.with_span "flow.search"
      ~attrs:
        [
          ("candidates", Obs.Sink.Int (Array.length candidates));
          ("jobs", Obs.Sink.Int (Par.Pool.jobs ()));
        ]
      (fun () ->
        let idx, payload = first_feasible_untraced ~exact ~approx candidates in
        Obs.Span.set_int "index" idx;
        Obs.Event.emit "search.bracketed" ~attrs:[ ("index", Obs.Sink.Int idx) ];
        (idx, payload))
