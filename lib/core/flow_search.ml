module Rat = Numeric.Rat

let binary_search ~feasible candidates lo hi =
  (* invariant: candidates.(hi) feasible, everything below lo infeasible *)
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if feasible candidates.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let first_feasible_untraced ~exact ~approx candidates =
  let last = Array.length candidates - 1 in
  (* Cache each exact probe's payload so the winning candidate's LP
     solution is returned instead of being solved a second time. *)
  let payloads = Hashtbl.create 8 in
  let exact_idx i =
    match exact candidates.(i) with
    | Some payload ->
      Hashtbl.replace payloads i payload;
      true
    | None -> false
  in
  let exact_search lo hi =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if exact_idx mid then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let guess = binary_search ~feasible:approx candidates 0 last in
  (* Certify the float answer with exact tests at the boundary. *)
  let idx =
    if exact_idx guess then begin
      if guess = 0 || not (exact_idx (guess - 1)) then guess
      else
        (* Float search overshot: the exact boundary is at or below guess-1. *)
        exact_search 0 (guess - 1)
    end
    else
      (* Float search undershot: the exact boundary is above guess. *)
      exact_search (guess + 1) last
  in
  let payload =
    match Hashtbl.find_opt payloads idx with
    | Some p -> p
    | None -> (
      (* Only reachable when the winner was never probed (the search
         collapsed onto the unprobed sentinel): probe it now. *)
      match exact candidates.(idx) with
      | Some p -> p
      | None ->
        invalid_arg "Flow_search.first_feasible: last candidate not feasible")
  in
  (idx, payload)

let first_feasible ~exact ~approx candidates =
  if not (Obs.Sink.enabled ()) then
    first_feasible_untraced ~exact ~approx candidates
  else
    Obs.Span.with_span "flow.search"
      ~attrs:[ ("candidates", Obs.Sink.Int (Array.length candidates)) ]
      (fun () ->
        let idx, payload = first_feasible_untraced ~exact ~approx candidates in
        Obs.Span.set_int "index" idx;
        Obs.Event.emit "search.bracketed" ~attrs:[ ("index", Obs.Sink.Int idx) ];
        (idx, payload))
