module Rat = Numeric.Rat

type job = { release : Rat.t; weight : Rat.t; flow_origin : Rat.t }

type t = {
  jobs : job array;
  num_machines : int;
  cost : Rat.t option array array;
}

type degeneracy =
  | No_machines
  | Unrunnable_job of int
  | Nonpositive_weight of int
  | Negative_release of int
  | Bad_flow_origin of int
  | Nonpositive_cost of int * int
  | Shape_mismatch of string

let degeneracy_to_string = function
  | No_machines -> "no machines"
  | Unrunnable_job j -> Printf.sprintf "job %d cannot run on any machine" j
  | Nonpositive_weight j -> Printf.sprintf "job %d: weight must be positive" j
  | Negative_release j -> Printf.sprintf "job %d: negative release date" j
  | Bad_flow_origin j ->
    Printf.sprintf "job %d: flow origin negative or after release date" j
  | Nonpositive_cost (i, j) ->
    Printf.sprintf "machine %d, job %d: finite cost must be positive" i j
  | Shape_mismatch what -> what ^ " length mismatch"

(* Total construction: every way an input can be degenerate is reported as
   a typed value instead of an exception, so callers generating adversarial
   instances (lib/check) can classify rejects without parsing messages. *)
let make_checked ?flow_origins ~releases ~weights cost =
  let ( let* ) = Result.bind in
  let n = Array.length releases in
  let* () =
    if Array.length weights <> n then Error (Shape_mismatch "weights") else Ok ()
  in
  let flow_origins = Option.value flow_origins ~default:releases in
  let* () =
    if Array.length flow_origins <> n then Error (Shape_mismatch "flow_origins")
    else Ok ()
  in
  let m = Array.length cost in
  let* () = if m = 0 then Error No_machines else Ok () in
  let* () =
    if Array.exists (fun row -> Array.length row <> n) cost then
      Error (Shape_mismatch "cost row")
    else Ok ()
  in
  let first_err f =
    let rec go j = if j >= n then Ok () else match f j with Ok () -> go (j + 1) | e -> e in
    go 0
  in
  let* () = first_err (fun j ->
      if Rat.sign releases.(j) < 0 then Error (Negative_release j) else Ok ())
  in
  let* () = first_err (fun j ->
      if Rat.sign flow_origins.(j) < 0
         || Rat.compare flow_origins.(j) releases.(j) > 0
      then Error (Bad_flow_origin j)
      else Ok ())
  in
  let* () = first_err (fun j ->
      if Rat.sign weights.(j) <= 0 then Error (Nonpositive_weight j) else Ok ())
  in
  let* () =
    let rec rows i =
      if i >= m then Ok ()
      else
        match
          first_err (fun j ->
              match cost.(i).(j) with
              | Some c when Rat.sign c <= 0 -> Error (Nonpositive_cost (i, j))
              | _ -> Ok ())
        with
        | Ok () -> rows (i + 1)
        | e -> e
    in
    rows 0
  in
  let* () = first_err (fun j ->
      let runnable = ref false in
      for i = 0 to m - 1 do
        if cost.(i).(j) <> None then runnable := true
      done;
      if !runnable then Ok () else Error (Unrunnable_job j))
  in
  Ok
    {
      jobs =
        Array.init n (fun j ->
            { release = releases.(j); weight = weights.(j); flow_origin = flow_origins.(j) });
      num_machines = m;
      cost = Array.map Array.copy cost;
    }

let make ?flow_origins ~releases ~weights cost =
  match make_checked ?flow_origins ~releases ~weights cost with
  | Ok t -> t
  | Error d -> invalid_arg ("Instance.make: " ^ degeneracy_to_string d)

let uniform ~speeds ~sizes ~releases ~weights ~available =
  let m = Array.length speeds and n = Array.length sizes in
  if Array.length available <> m then invalid_arg "Instance.uniform: availability rows";
  let cost =
    Array.init m (fun i ->
        if Array.length available.(i) <> n then
          invalid_arg "Instance.uniform: availability cols";
        Array.init n (fun j ->
            if available.(i).(j) then Some (Rat.mul sizes.(j) speeds.(i)) else None))
  in
  make ~releases ~weights cost

let num_jobs t = Array.length t.jobs
let num_machines t = t.num_machines
let job t j = t.jobs.(j)
let release t j = t.jobs.(j).release
let weight t j = t.jobs.(j).weight
let flow_origin t j = t.jobs.(j).flow_origin
let cost t ~machine ~job = t.cost.(machine).(job)
let can_run t ~machine ~job = t.cost.(machine).(job) <> None

let fastest_cost t ~job =
  let best = ref None in
  for i = 0 to t.num_machines - 1 do
    match t.cost.(i).(job) with
    | Some c -> (
      match !best with
      | None -> best := Some c
      | Some b -> if Rat.compare c b < 0 then best := Some c)
    | None -> ()
  done;
  match !best with
  | Some c -> c
  | None -> assert false (* ruled out by [make] *)

let max_release t =
  Array.fold_left (fun acc j -> Rat.max acc j.release) Rat.zero t.jobs

let stretch_weights t =
  let n = Array.length t.jobs in
  {
    t with
    jobs =
      Array.init n (fun j ->
          { t.jobs.(j) with weight = Rat.inv (fastest_cost t ~job:j) });
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>%d jobs on %d machines@," (num_jobs t) t.num_machines;
  Array.iteri
    (fun j job ->
      Format.fprintf fmt "  J%d: r=%a w=%a" j Rat.pp job.release Rat.pp job.weight;
      if not (Rat.equal job.flow_origin job.release) then
        Format.fprintf fmt " o=%a" Rat.pp job.flow_origin;
      Format.fprintf fmt " costs=[";
      for i = 0 to t.num_machines - 1 do
        (match t.cost.(i).(j) with
         | Some c -> Format.fprintf fmt "%a" Rat.pp c
         | None -> Format.pp_print_string fmt "∞");
        if i < t.num_machines - 1 then Format.pp_print_string fmt "; "
      done;
      Format.fprintf fmt "]@,")
    t.jobs;
  Format.fprintf fmt "@]"
