module Rat = Numeric.Rat

let fail line fmt =
  Printf.ksprintf (fun s -> invalid_arg (Printf.sprintf "Instance_io: line %d: %s" line s)) fmt

let parse_cost line s =
  if String.lowercase_ascii s = "inf" then None
  else
    match Rat.of_string s with
    | c -> Some c
    | exception _ -> fail line "bad cost %S" s

let parse_rat line s =
  match Rat.of_string s with
  | r -> r
  | exception _ -> fail line "bad rational %S" s

let of_string text =
  let lines = String.split_on_char '\n' text in
  let machines = ref None in
  let jobs = ref [] in
  let origins = ref [] in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let content =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match
        String.split_on_char ' ' content
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      with
      | [] -> ()
      | [ "machines"; m ] -> (
        if !machines <> None then fail line "duplicate 'machines' line";
        match int_of_string_opt m with
        | Some m when m > 0 -> machines := Some m
        | _ -> fail line "bad machine count %S" m)
      | "job" :: release :: weight :: costs -> (
        match !machines with
        | None -> fail line "the 'machines' line must come before jobs"
        | Some m ->
          if List.length costs <> m then
            fail line "expected %d costs, got %d" m (List.length costs);
          jobs :=
            ( parse_rat line release,
              parse_rat line weight,
              List.map (parse_cost line) costs )
            :: !jobs)
      | [ "origin"; j; o ] -> (
        match int_of_string_opt j with
        | Some j when j >= 0 -> origins := (line, j, parse_rat line o) :: !origins
        | _ -> fail line "bad job index %S" j)
      | tok :: _ -> fail line "unknown directive %S" tok)
    lines;
  match !machines with
  | None -> invalid_arg "Instance_io: missing 'machines' line"
  | Some m ->
    let jobs = Array.of_list (List.rev !jobs) in
    let releases = Array.map (fun (r, _, _) -> r) jobs in
    let weights = Array.map (fun (_, w, _) -> w) jobs in
    let cost =
      Array.init m (fun i -> Array.map (fun (_, _, costs) -> List.nth costs i) jobs)
    in
    let flow_origins =
      if !origins = [] then None
      else begin
        let fo = Array.copy releases in
        List.iter
          (fun (line, j, o) ->
            if j >= Array.length jobs then fail line "origin index %d out of range" j;
            fo.(j) <- o)
          !origins;
        Some fo
      end
    in
    Instance.make ?flow_origins ~releases ~weights cost

let to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "machines %d\n" (Instance.num_machines inst));
  for j = 0 to Instance.num_jobs inst - 1 do
    Buffer.add_string buf
      (Printf.sprintf "job %s %s"
         (Rat.to_string (Instance.release inst j))
         (Rat.to_string (Instance.weight inst j)));
    for i = 0 to Instance.num_machines inst - 1 do
      Buffer.add_string buf
        (match Instance.cost inst ~machine:i ~job:j with
         | Some c -> " " ^ Rat.to_string c
         | None -> " inf")
    done;
    Buffer.add_char buf '\n'
  done;
  for j = 0 to Instance.num_jobs inst - 1 do
    let o = Instance.flow_origin inst j in
    if not (Rat.equal o (Instance.release inst j)) then
      Buffer.add_string buf (Printf.sprintf "origin %d %s\n" j (Rat.to_string o))
  done;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let save path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))
