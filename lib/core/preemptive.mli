(** Minimization of the maximum weighted flow with preemption but without
    divisibility (Section 4.4 of the paper).

    In this model a job may be interrupted and resumed, possibly on another
    machine, but never runs on two machines simultaneously.  Feasibility of
    an objective value is LP system (5) — system (3) plus the per-job
    interval-capacity constraint (5b) — and a witness schedule is rebuilt
    interval by interval with the Lawler–Labetoulle construction
    ({!Openshop}).  The milestone machinery is shared with {!Max_flow}.

    The paper notes that Bender, Chakrabarti and Muthukrishnan gave an
    FPTAS for this problem; this module solves it exactly in polynomial
    time. *)

module Rat = Numeric.Rat

type result = {
  objective : Rat.t;  (** optimal maximum weighted flow [F*] *)
  schedule : Schedule.t;
      (** a preemptive schedule achieving it; passes
          {!Schedule.validate_preemptive} *)
  milestones : Rat.t list;
  search_range : Rat.t * Rat.t;
  preemption_slots : int;  (** total open-shop slots over all intervals *)
}

val solve : Instance.t -> result
(** @raise Invalid_argument on an empty instance. *)

val solve_total : Instance.t -> [ `Solved of result | `Trivial of Schedule.t ]
(** Total variant of {!solve}: the empty instance (no jobs) yields
    [`Trivial] with an empty schedule instead of raising. *)

val solve_max_stretch : Instance.t -> result
